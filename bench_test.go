// Benchmark harness: one benchmark per experiment of DESIGN.md §4, covering
// every figure of the paper (Figure 1a/1b), its theorems (scaling of the
// exact polynomial algorithms), the conclusion's online comparison, and the
// ablations. Custom metrics report the quantities the paper publishes
// (regression intercepts/slopes, competitive ratios) so `go test -bench .`
// regenerates the paper's numbers alongside timing data.
package divflow

import (
	"fmt"
	"math/big"
	"testing"

	"divflow/internal/core"
	"divflow/internal/gripps"
	"divflow/internal/lp"
	"divflow/internal/model"
	"divflow/internal/schedule"
	"divflow/internal/sim"
	"divflow/internal/workload"
)

// benchConfig builds a reproducible random instance of the given shape.
func benchConfig(jobs, machines int, seed int64) *model.Instance {
	cfg := workload.Default()
	cfg.Jobs = jobs
	cfg.Machines = machines
	cfg.Databanks = machines
	cfg.Replication = 2
	cfg.Seed = seed
	return workload.MustGenerate(cfg)
}

// --- Experiment fig1a: Figure 1(a), sequence-partitioning divisibility ---

func BenchmarkFig1aSequenceDivisibility(b *testing.B) {
	cfg := gripps.ExperimentConfig{
		NumSequences: 1000, MeanLen: 80, NumMotifs: 15, Steps: 8, Reps: 3, Seed: 42,
	}
	var last *gripps.FigureResult
	for i := 0; i < b.N; i++ {
		res, err := gripps.Figure1a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Fit.Intercept, "intercept-s") // paper: 1.1
	b.ReportMetric(last.Fit.R2, "R2")                 // paper: near-perfect linearity
}

// --- Experiment fig1b: Figure 1(b), motif-partitioning divisibility ---

func BenchmarkFig1bMotifDivisibility(b *testing.B) {
	cfg := gripps.ExperimentConfig{
		NumSequences: 600, MeanLen: 80, NumMotifs: 15, Steps: 6, Reps: 2, Seed: 42,
	}
	var last *gripps.FigureResult
	for i := 0; i < b.N; i++ {
		res, err := gripps.Figure1b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Fit.Intercept, "intercept-s") // paper: 10.5
	b.ReportMetric(last.Fit.R2, "R2")
}

// --- Experiment thm1: makespan minimization scaling (Theorem 1) ---

func BenchmarkMakespanLP(b *testing.B) {
	for _, shape := range []struct{ n, m int }{{4, 2}, {6, 3}, {8, 4}, {12, 4}} {
		b.Run(fmt.Sprintf("n%dm%d", shape.n, shape.m), func(b *testing.B) {
			inst := benchConfig(shape.n, shape.m, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.MinMakespan(inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Experiment thm2: exact max weighted flow scaling (Theorem 2) ---

func BenchmarkMaxWeightedFlow(b *testing.B) {
	for _, shape := range []struct{ n, m int }{{4, 2}, {6, 3}, {8, 4}} {
		b.Run(fmt.Sprintf("n%dm%d", shape.n, shape.m), func(b *testing.B) {
			inst := benchConfig(shape.n, shape.m, 2)
			var solves, milestones, fallbacks int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.MinMaxWeightedFlow(inst)
				if err != nil {
					b.Fatal(err)
				}
				solves, milestones = res.LPSolves, res.NumMilestones
				fallbacks = res.Solver.Fallbacks + res.Solver.Crossovers
			}
			b.ReportMetric(float64(milestones), "milestones")
			b.ReportMetric(float64(solves), "LP-solves")
			b.ReportMetric(float64(fallbacks), "hybrid-fallbacks")
		})
	}
}

// --- Experiment sec44: preemptive variant (System 5 + Lawler–Labetoulle) ---

func BenchmarkPreemptiveMWF(b *testing.B) {
	for _, shape := range []struct{ n, m int }{{4, 2}, {6, 3}} {
		b.Run(fmt.Sprintf("n%dm%d", shape.n, shape.m), func(b *testing.B) {
			inst := benchConfig(shape.n, shape.m, 3)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.MinMaxWeightedFlowPreemptive(inst)
				if err != nil {
					b.Fatal(err)
				}
				if err := res.Schedule.Validate(inst, schedule.Preemptive, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Experiment lem1: deadline feasibility (System 2) ---

func BenchmarkDeadlineFeasibility(b *testing.B) {
	inst := benchConfig(8, 3, 4)
	// Deadlines from a solved makespan: feasible but tight.
	res, err := core.MinMakespan(inst)
	if err != nil {
		b.Fatal(err)
	}
	dls := make([]*big.Rat, inst.N())
	for j := range dls {
		dls[j] = res.Makespan
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, _, err := core.DeadlineFeasible(inst, dls, schedule.Divisible)
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.Fatal("deadline at optimal makespan must be feasible")
		}
	}
}

// --- Experiment concl: online policies vs offline optimum ---

func BenchmarkOnlinePolicies(b *testing.B) {
	policies := map[string]func() sim.Policy{
		"online-mwf":   func() sim.Policy { return sim.NewOnlineMWF() },
		"mct":          func() sim.Policy { return sim.NewMCT() },
		"fcfs":         func() sim.Policy { return sim.NewFCFS() },
		"srpt":         func() sim.Policy { return sim.NewSRPT() },
		"greedy-wflow": func() sim.Policy { return sim.NewGreedyWeightedFlow() },
	}
	inst := benchConfig(6, 3, 5)
	opt, err := core.MinMaxWeightedFlow(inst)
	if err != nil {
		b.Fatal(err)
	}
	optF, _ := opt.Objective.Float64()
	for name, mk := range policies {
		b.Run(name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(inst, mk())
				if err != nil {
					b.Fatal(err)
				}
				v, _ := res.MaxWeightedFlow.Float64()
				ratio = v / optF
			}
			b.ReportMetric(ratio, "vs-optimal") // paper: online-mwf beats mct
		})
	}
}

// --- Experiment ablat: exact rational vs float64 LP backend ---

func BenchmarkAblationLPBackend(b *testing.B) {
	// The same medium LP through both solver backends.
	build := func() *lp.Problem {
		inst := benchConfig(8, 3, 6)
		// Reuse the makespan LP shape: minimize total completion span via
		// a feasibility-style problem. Simplest faithful proxy: solve the
		// whole makespan problem for rat, and rebuild its LP for float.
		// Here we synthesize a comparable dense LP directly.
		p := lp.NewProblem()
		n, m := inst.N(), inst.M()
		cols := make([][]int, m)
		for i := 0; i < m; i++ {
			cols[i] = make([]int, n)
			for j := 0; j < n; j++ {
				cols[i][j] = -1
			}
		}
		obj := p.AddVar("T", big.NewRat(1, 1))
		one := big.NewRat(1, 1)
		for i := 0; i < m; i++ {
			var terms []lp.Term
			for j := 0; j < n; j++ {
				if c, ok := inst.Cost(i, j); ok {
					cols[i][j] = p.AddVar(fmt.Sprintf("a%d_%d", i, j), nil)
					terms = append(terms, lp.Term{Col: cols[i][j], Coef: c})
				}
			}
			terms = append(terms, lp.Term{Col: obj, Coef: big.NewRat(-1, 1)})
			p.AddRow(fmt.Sprintf("cap%d", i), terms, lp.LE, new(big.Rat))
		}
		for j := 0; j < n; j++ {
			var terms []lp.Term
			for i := 0; i < m; i++ {
				if cols[i][j] >= 0 {
					terms = append(terms, lp.Term{Col: cols[i][j], Coef: one})
				}
			}
			p.AddRow(fmt.Sprintf("done%d", j), terms, lp.EQ, one)
		}
		return p
	}
	b.Run("exact-rational", func(b *testing.B) {
		p := build()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := lp.SolveRat(p)
			if err != nil || sol.Status != lp.Optimal {
				b.Fatalf("%v %v", err, sol)
			}
		}
	})
	b.Run("hybrid", func(b *testing.B) {
		p := build()
		var fallbacks int
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := lp.SolveHybrid(p)
			if err != nil || sol.Status != lp.Optimal {
				b.Fatalf("%v %v", err, sol)
			}
			if sol.Method != lp.MethodFloatVerified {
				fallbacks++
			}
		}
		b.ReportMetric(float64(fallbacks), "hybrid-fallbacks")
	})
	b.Run("float64", func(b *testing.B) {
		p := build()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := lp.SolveFloat(p)
			if err != nil || sol.Status != lp.Optimal {
				b.Fatalf("%v %v", err, sol)
			}
		}
	})
}

// --- Warm starts: perturb-and-resolve with and without the previous basis ---

func BenchmarkWarmStartResolve(b *testing.B) {
	// The schedulable-capacity LP of the ablation benchmark, re-solved
	// after a small RHS perturbation of one capacity row: the shape
	// divflowd faces between events. The warm path re-verifies the previous
	// optimal basis instead of re-searching.
	build := func() *lp.Problem {
		inst := benchConfig(8, 3, 6)
		p := lp.NewProblem()
		n, m := inst.N(), inst.M()
		obj := p.AddVar("T", big.NewRat(1, 1))
		one := big.NewRat(1, 1)
		cols := make([][]int, m)
		for i := 0; i < m; i++ {
			cols[i] = make([]int, n)
			var terms []lp.Term
			for j := 0; j < n; j++ {
				cols[i][j] = -1
				if c, ok := inst.Cost(i, j); ok {
					cols[i][j] = p.AddVar(fmt.Sprintf("a%d_%d", i, j), nil)
					terms = append(terms, lp.Term{Col: cols[i][j], Coef: c})
				}
			}
			terms = append(terms, lp.Term{Col: obj, Coef: big.NewRat(-1, 1)})
			p.AddRow(fmt.Sprintf("cap%d", i), terms, lp.LE, new(big.Rat))
		}
		for j := 0; j < n; j++ {
			var terms []lp.Term
			for i := 0; i < m; i++ {
				if cols[i][j] >= 0 {
					terms = append(terms, lp.Term{Col: cols[i][j], Coef: one})
				}
			}
			p.AddRow(fmt.Sprintf("done%d", j), terms, lp.EQ, one)
		}
		return p
	}
	perturb := func(p *lp.Problem, i int) *lp.Problem {
		q := p.Clone()
		q.SetRHS(0, big.NewRat(int64(i%7), 100))
		return q
	}
	b.Run("cold", func(b *testing.B) {
		p := build()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := lp.SolveHybrid(perturb(p, i))
			if err != nil || sol.Status != lp.Optimal {
				b.Fatalf("%v %v", err, sol)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		p := build()
		base, err := lp.SolveHybrid(p)
		if err != nil || base.Status != lp.Optimal {
			b.Fatalf("%v %v", err, base)
		}
		basis := base.Basis
		var warmHits int
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sol, err := lp.SolveHybridWarm(perturb(p, i), basis)
			if err != nil || sol.Status != lp.Optimal {
				b.Fatalf("%v %v", err, sol)
			}
			if sol.Method.WarmStart() {
				warmHits++
			}
			basis = sol.Basis
		}
		b.ReportMetric(float64(warmHits)/float64(b.N), "warm-hit-rate")
	})
}

// --- Experiment ablat: milestone binary search vs ε-precision search ---

func BenchmarkAblationSearchStrategy(b *testing.B) {
	inst := benchConfig(5, 3, 7)
	b.Run("milestone-exact", func(b *testing.B) {
		var solves int
		for i := 0; i < b.N; i++ {
			res, err := core.MinMaxWeightedFlow(inst)
			if err != nil {
				b.Fatal(err)
			}
			solves = res.LPSolves
		}
		b.ReportMetric(float64(solves), "LP-solves")
	})
	b.Run("eps-search", func(b *testing.B) {
		eps := big.NewRat(1, 1000)
		var checks int
		for i := 0; i < b.N; i++ {
			res, err := core.ApproxMinMaxWeightedFlow(inst, schedule.Divisible, eps)
			if err != nil {
				b.Fatal(err)
			}
			checks = res.FeasibilityChecks
		}
		b.ReportMetric(float64(checks), "LP-solves")
	})
}

// --- Experiment ablat: re-solve frequency of the online adaptation ---

func BenchmarkAblationResolveFrequency(b *testing.B) {
	inst := benchConfig(6, 3, 9)
	run := func(b *testing.B, mk func() *sim.OnlineMWF) {
		var solves int
		for i := 0; i < b.N; i++ {
			p := mk()
			if _, err := sim.Run(inst, p); err != nil {
				b.Fatal(err)
			}
			solves = p.Solves()
		}
		b.ReportMetric(float64(solves), "LP-solves")
	}
	b.Run("every-event", func(b *testing.B) { run(b, sim.NewOnlineMWF) })
	b.Run("arrivals-only", func(b *testing.B) { run(b, sim.NewOnlineMWFLazy) })
}

// --- Experiment thm1+: preemptive makespan (System 4 with releases) ---

func BenchmarkPreemptiveMakespan(b *testing.B) {
	for _, shape := range []struct{ n, m int }{{4, 2}, {8, 3}} {
		b.Run(fmt.Sprintf("n%dm%d", shape.n, shape.m), func(b *testing.B) {
			inst := benchConfig(shape.n, shape.m, 10)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.MinMakespanPreemptive(inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Float64 fast path: scaling beyond exact-arithmetic comfort ---

func BenchmarkEstimateMWF(b *testing.B) {
	for _, shape := range []struct{ n, m int }{{8, 4}, {16, 4}, {24, 6}} {
		b.Run(fmt.Sprintf("n%dm%d", shape.n, shape.m), func(b *testing.B) {
			inst := benchConfig(shape.n, shape.m, 11)
			b.ReportAllocs()
			var obj float64
			for i := 0; i < b.N; i++ {
				est, err := core.EstimateMinMaxWeightedFlow(inst, schedule.Divisible)
				if err != nil {
					b.Fatal(err)
				}
				obj = est.Objective
			}
			b.ReportMetric(obj, "objective")
		})
	}
}

// --- Milestone enumeration scaling ---

func BenchmarkMilestones(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			inst := benchConfig(n, 4, 8)
			var count int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				count = len(core.Milestones(inst))
			}
			b.ReportMetric(float64(count), "milestones")
		})
	}
}
