// Command benchcmp is the CI bench-regression gate: it compares a smoke-run
// benchmark JSON (produced by cmd/benchjson) against the committed
// trajectory file and fails when the suite drifted — a benchmark present in
// the committed file but missing from the smoke run (renamed, deleted, or
// silently skipped), a benchmark the smoke run found that the committed file
// never recorded (added but not re-recorded), a custom metric that vanished,
// or insane fields (zero iterations, non-positive ns/op). Values are NOT
// compared: a 1x smoke iteration says nothing about speed, only about the
// harness still measuring what the committed file claims it measures.
//
//	go run ./cmd/benchjson -benchtime 1x -out /tmp/smoke.json
//	go run ./cmd/benchcmp -committed BENCH_lp.json -smoke /tmp/smoke.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
)

// benchmark mirrors cmd/benchjson's per-benchmark record (the committed
// schema; keep in sync with cmd/benchjson).
type benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// run mirrors cmd/benchjson's labelled result set.
type run struct {
	Label      string      `json:"label"`
	Benchmarks []benchmark `json:"benchmarks"`
}

// file mirrors the committed BENCH_*.json document.
type file struct {
	Bench    string `json:"bench"`
	Baseline *run   `json:"baseline,omitempty"`
	Current  *run   `json:"current"`
}

func load(path string) (*file, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f file
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchcmp: %s: %w", path, err)
	}
	if f.Current == nil || len(f.Current.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchcmp: %s has no current benchmarks", path)
	}
	return &f, nil
}

func index(r *run) map[string]benchmark {
	out := make(map[string]benchmark, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		out[b.Name] = b
	}
	return out
}

// sane reports field-level problems of one benchmark record.
func sane(where string, b benchmark) []string {
	var probs []string
	if b.Iterations <= 0 {
		probs = append(probs, fmt.Sprintf("%s: %s: iterations = %d, want > 0", where, b.Name, b.Iterations))
	}
	if b.NsPerOp <= 0 {
		probs = append(probs, fmt.Sprintf("%s: %s: ns_per_op = %g, want > 0", where, b.Name, b.NsPerOp))
	}
	for metric, v := range b.Metrics {
		if v < 0 {
			probs = append(probs, fmt.Sprintf("%s: %s: metric %q = %g, want >= 0", where, b.Name, metric, v))
		}
	}
	return probs
}

// compare returns every schema drift between the committed file and the
// smoke run, sorted for stable output.
func compare(committed, smoke *file) []string {
	var probs []string
	want := index(committed.Current)
	got := index(smoke.Current)
	for name, cb := range want {
		sb, ok := got[name]
		if !ok {
			probs = append(probs, fmt.Sprintf("benchmark %q committed but missing from the smoke run (renamed or silently skipped?)", name))
			continue
		}
		for metric := range cb.Metrics {
			if _, ok := sb.Metrics[metric]; !ok {
				probs = append(probs, fmt.Sprintf("benchmark %q no longer reports committed metric %q", name, metric))
			}
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			probs = append(probs, fmt.Sprintf("benchmark %q ran in the smoke suite but is not committed (re-run scripts/bench.sh and commit the JSON)", name))
		}
	}
	for _, b := range committed.Current.Benchmarks {
		probs = append(probs, sane("committed", b)...)
	}
	for _, b := range smoke.Current.Benchmarks {
		probs = append(probs, sane("smoke", b)...)
	}
	sort.Strings(probs)
	return probs
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcmp: ")
	var (
		committedPath = flag.String("committed", "", "committed BENCH_*.json to gate against (required)")
		smokePath     = flag.String("smoke", "", "smoke-run JSON produced by cmd/benchjson (required)")
	)
	flag.Parse()
	if *committedPath == "" || *smokePath == "" {
		flag.Usage()
		log.Fatal("need both -committed and -smoke")
	}
	committed, err := load(*committedPath)
	if err != nil {
		log.Fatal(err)
	}
	smoke, err := load(*smokePath)
	if err != nil {
		log.Fatal(err)
	}
	if probs := compare(committed, smoke); len(probs) > 0 {
		for _, p := range probs {
			log.Print(p)
		}
		log.Fatalf("%d problem(s): %s drifted from %s", len(probs), *smokePath, *committedPath)
	}
	log.Printf("%s matches the committed schema of %s (%d benchmarks)",
		*smokePath, *committedPath, len(committed.Current.Benchmarks))
}
