package main

import (
	"strings"
	"testing"
)

func mkFile(names ...string) *file {
	f := &file{Current: &run{Label: "x"}}
	for _, n := range names {
		f.Current.Benchmarks = append(f.Current.Benchmarks, benchmark{
			Name: n, Iterations: 1, NsPerOp: 100,
			Metrics: map[string]float64{"jobs/s": 10},
		})
	}
	return f
}

func TestCompareAcceptsMatchingSuites(t *testing.T) {
	committed := mkFile("BenchmarkA/x", "BenchmarkB")
	smoke := mkFile("BenchmarkA/x", "BenchmarkB")
	if probs := compare(committed, smoke); len(probs) != 0 {
		t.Fatalf("identical suites flagged: %v", probs)
	}
}

func TestCompareFlagsMissingBenchmark(t *testing.T) {
	committed := mkFile("BenchmarkA", "BenchmarkGone")
	smoke := mkFile("BenchmarkA")
	probs := compare(committed, smoke)
	if len(probs) != 1 || !strings.Contains(probs[0], "BenchmarkGone") || !strings.Contains(probs[0], "missing") {
		t.Fatalf("dropped benchmark not flagged: %v", probs)
	}
}

func TestCompareFlagsUncommittedBenchmark(t *testing.T) {
	committed := mkFile("BenchmarkA")
	smoke := mkFile("BenchmarkA", "BenchmarkNew")
	probs := compare(committed, smoke)
	if len(probs) != 1 || !strings.Contains(probs[0], "BenchmarkNew") || !strings.Contains(probs[0], "not committed") {
		t.Fatalf("uncommitted benchmark not flagged: %v", probs)
	}
}

func TestCompareFlagsVanishedMetric(t *testing.T) {
	committed := mkFile("BenchmarkA")
	smoke := mkFile("BenchmarkA")
	smoke.Current.Benchmarks[0].Metrics = nil
	probs := compare(committed, smoke)
	if len(probs) != 1 || !strings.Contains(probs[0], `"jobs/s"`) {
		t.Fatalf("vanished metric not flagged: %v", probs)
	}
}

func TestCompareFlagsInsaneFields(t *testing.T) {
	committed := mkFile("BenchmarkA")
	smoke := mkFile("BenchmarkA")
	smoke.Current.Benchmarks[0].Iterations = 0
	smoke.Current.Benchmarks[0].NsPerOp = 0
	probs := compare(committed, smoke)
	if len(probs) != 2 {
		t.Fatalf("zero iterations + zero ns/op produced %d problems, want 2: %v", len(probs), probs)
	}
	for _, p := range probs {
		if !strings.HasPrefix(p, "smoke:") {
			t.Errorf("problem not attributed to the smoke run: %s", p)
		}
	}
}
