// Command benchjson runs a benchmark suite of this repository and renders it
// as machine-readable JSON, so performance trajectories are committed
// alongside the code (BENCH_lp.json for the exact solvers,
// BENCH_server.json for the sharded service throughput) instead of living
// in commit messages. It records ns/op, B/op, allocs/op and every custom
// metric the benchmarks report (LP-solves, hybrid-fallbacks, jobs/s, ...),
// and computes per-benchmark speedups against a baseline section.
//
//	go run ./cmd/benchjson -out BENCH_lp.json                  # run LP suite, keep committed baseline
//	go run ./cmd/benchjson -pkg ./internal/server -bench BenchmarkServerThroughput -out BENCH_server.json
//	go run ./cmd/benchjson -raw current.txt -out BENCH_lp.json # parse an existing run
//	go run ./cmd/benchjson -baseline-raw seed.txt ...          # install a new baseline
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// defaultBench selects the LP-heavy benchmarks whose trajectory this file
// tracks.
const defaultBench = "BenchmarkMakespanLP|BenchmarkMaxWeightedFlow$|BenchmarkPreemptiveMWF|" +
	"BenchmarkDeadlineFeasibility|BenchmarkAblationLPBackend|BenchmarkWarmStartResolve|" +
	"BenchmarkAblationSearchStrategy|BenchmarkPreemptiveMakespan|BenchmarkOnlinePolicies/online-mwf"

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Run is one labelled set of benchmark results.
type Run struct {
	Label      string      `json:"label"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the committed BENCH_lp.json document.
type File struct {
	Bench     string `json:"bench"`
	Benchtime string `json:"benchtime"`
	Baseline  *Run   `json:"baseline,omitempty"`
	Current   *Run   `json:"current"`
	// SpeedupNs maps benchmark name to baseline ns/op divided by current
	// ns/op (>1 means faster now); AllocRatio likewise for allocs/op.
	SpeedupNs  map[string]float64 `json:"speedup_ns_per_op,omitempty"`
	AllocRatio map[string]float64 `json:"alloc_reduction,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parseBench parses `go test -bench` output into a Run.
func parseBench(out []byte, label string) (*Run, error) {
	run := &Run{Label: label}
	for _, line := range strings.Split(string(out), "\n") {
		line = strings.TrimSpace(line)
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			run.CPU = cpu
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: m[1], Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = val
			}
		}
		run.Benchmarks = append(run.Benchmarks, b)
	}
	if len(run.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark lines found")
	}
	return run, nil
}

// runSuite executes the benchmark suite in the given package of the current
// module.
func runSuite(bench, benchtime, pkg string) ([]byte, error) {
	cmd := exec.Command("go", "test", "-bench", bench, "-benchmem", "-benchtime", benchtime, "-run", "^$", pkg)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("benchjson: go test: %w", err)
	}
	return out.Bytes(), nil
}

func ratios(baseline, current *Run, pick func(Benchmark) float64) map[string]float64 {
	if baseline == nil {
		return nil
	}
	base := make(map[string]float64, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = pick(b)
	}
	out := make(map[string]float64)
	for _, b := range current.Benchmarks {
		if bv, ok := base[b.Name]; ok && bv > 0 && pick(b) > 0 {
			out[b.Name] = round2(bv / pick(b))
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		bench       = flag.String("bench", defaultBench, "benchmark regex to run")
		pkg         = flag.String("pkg", ".", "package to benchmark (e.g. ./internal/server)")
		benchtime   = flag.String("benchtime", "10x", "benchtime passed to go test")
		raw         = flag.String("raw", "", "parse this go-test output file instead of running the suite")
		baselineRaw = flag.String("baseline-raw", "", "install a new baseline from this go-test output file")
		label       = flag.String("label", "current", "label for the current run")
		baseLabel   = flag.String("baseline-label", "baseline", "label when installing a new baseline")
		out         = flag.String("out", "BENCH_lp.json", "output JSON path (existing baseline section is kept)")
	)
	flag.Parse()

	var baseline *Run
	if *baselineRaw != "" {
		data, err := os.ReadFile(*baselineRaw)
		if err != nil {
			log.Fatal(err)
		}
		baseline, err = parseBench(data, *baseLabel)
		if err != nil {
			log.Fatal(err)
		}
	} else if prev, err := os.ReadFile(*out); err == nil {
		var f File
		if err := json.Unmarshal(prev, &f); err == nil {
			baseline = f.Baseline
		}
	}

	var curOut []byte
	var err error
	if *raw != "" {
		curOut, err = os.ReadFile(*raw)
	} else {
		curOut, err = runSuite(*bench, *benchtime, *pkg)
	}
	if err != nil {
		log.Fatal(err)
	}
	current, err := parseBench(curOut, *label)
	if err != nil {
		log.Fatal(err)
	}

	f := File{
		Bench:      *bench,
		Benchtime:  *benchtime,
		Baseline:   baseline,
		Current:    current,
		SpeedupNs:  ratios(baseline, current, func(b Benchmark) float64 { return b.NsPerOp }),
		AllocRatio: ratios(baseline, current, func(b Benchmark) float64 { return b.AllocsPerOp }),
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d benchmarks)", *out, len(current.Benchmarks))
}
