// Command divflowd is the divflow scheduling daemon: it owns a machine
// fleet described by a platform JSON, accepts divisible-job submissions
// over HTTP, and schedules them online with the paper's exact
// max-weighted-flow machinery (or a classical heuristic). The fleet runs
// partitioned into independent scheduling shards — by databank-connectivity
// components, or -shards N (or the platform's "shards" field) for uniform
// fleets — with submissions routed to the eligible shard with the least
// exact residual work.
//
//	divflowd -platform testdata/platform.json -addr :8080
//
// API (all JSON, exact rationals as strings):
//
//	POST /v1/jobs          {"name":"blast","size":"40","weight":"1","databanks":["swissprot"]}
//	GET  /v1/jobs/{id}     job state, completion, flow / weighted flow / stretch
//	GET  /v1/schedule      executed Gantt so far (?since=<rat> to window)
//	GET  /v1/stats         solve/batch/cache counters and flow metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"math/big"

	"divflow/internal/model"
	"divflow/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("divflowd: ")
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		platform = flag.String("platform", "", "platform JSON describing the machine fleet (required)")
		policy   = flag.String("policy", server.DefaultPolicy,
			fmt.Sprintf("scheduling policy: %s", strings.Join(server.Policies(), ", ")))
		retention = flag.String("retention", "",
			"drop executed history older than this many seconds (exact rational, e.g. 3600); empty keeps everything")
		shards = flag.Int("shards", 0,
			"number of scheduling shards (round-robin over the fleet); 0 partitions by databank-connectivity components (or the platform's \"shards\" field)")
		steal = flag.Bool("steal", true,
			"cross-shard work stealing: an idle shard migrates queued or live jobs (exact remaining fractions, original IDs and flow origins) from the largest-backlog shard; false pins jobs to the shard they were routed to")
	)
	flag.Parse()
	if *platform == "" {
		flag.Usage()
		log.Fatal("missing -platform")
	}
	data, err := os.ReadFile(*platform)
	if err != nil {
		log.Fatal(err)
	}
	plat, err := model.ParsePlatformConfig(data)
	if err != nil {
		log.Fatal(err)
	}
	machines := plat.Machines
	if *shards < 0 {
		log.Fatalf("bad -shards %d: want >= 0", *shards)
	}
	cfg := server.Config{Machines: machines, Policy: *policy, Shards: plat.Shards, DisableSteal: !*steal}
	if *shards > 0 {
		cfg.Shards = *shards
	}
	if *retention != "" {
		r, ok := new(big.Rat).SetString(*retention)
		if !ok || r.Sign() <= 0 {
			log.Fatalf("bad -retention %q: want a positive rational", *retention)
		}
		cfg.Retention = r
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()
	log.Printf("serving %d machines in %d shards on %s (policy %s)", len(machines), srv.ShardCount(), *addr, *policy)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
