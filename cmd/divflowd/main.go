// Command divflowd is the divflow scheduling daemon: it owns a machine
// fleet described by a platform JSON, accepts divisible-job submissions
// over HTTP, and schedules them online with the paper's exact
// max-weighted-flow machinery (or a classical heuristic). The fleet runs
// partitioned into independent scheduling shards — by databank-connectivity
// components, or -shards N (or the platform's "shards" field) for uniform
// fleets — with submissions routed to the eligible shard with the least
// exact residual work.
//
//	divflowd -platform testdata/platform.json -addr :8080
//
// API (all JSON, exact rationals as strings; errors arrive as a versioned
// envelope {"error":{"code","message",...}}):
//
//	POST /v1/jobs          {"name":"blast","size":"40","weight":"1","databanks":["swissprot"]}
//	                       optional "deadline","tenant","slaClass"; or {"jobs":[...]} batch
//	GET  /v1/jobs/{id}     job state, completion, flow / weighted flow / stretch
//	GET  /v1/schedule      executed Gantt so far (?since=<rat> to window)
//	GET  /v1/stats         solve/batch/cache counters and flow metrics
//	GET  /v1/tenants       per-tenant weighted-flow accounting (submitted/shed/backlog/p95)
//	POST /v1/platform      admin: live re-shard against an updated platform JSON
//	GET  /healthz          200 healthy / 503 naming the stalled shards
//	GET  /metrics          Prometheus text exposition (-metrics=false removes it)
//	GET  /v1/events        structured scheduling-event journal (?since=&type=&shard=)
//
// Jobs may carry an absolute deadline: the routed shard runs the paper's
// exact feasibility test against its residual workload and returns an
// admission certificate — accept, reject, or a best-achievable
// counter-offer deadline. -admission selects strict (infeasible submits
// rejected), advisory (certificate returned, job admitted anyway), or off.
// -tenants names a JSON file of per-tenant weights; tenants exceeding
// their weighted share of the fleet backlog are shed with
// tenant_over_quota (premium-class jobs are exempt).
//
// -events-log mirrors every journaled event to an NDJSON file, and
// -debug-addr serves net/http/pprof on a second, operator-only listener.
//
// The fleet can span processes: `divflowd -worker -listen :9090` runs a bare
// shard host (no HTTP API), and a router started with
// `-workers 1=host:9090` provisions that partition's shard inside the worker
// and drives it over net/rpc — submissions, reads, stats, and two-phase work
// stealing all cross the socket with exact rationals intact.
//
// The platform is live: a replication event that changes databank placement
// is applied at runtime either by POSTing the updated platform JSON to
// /v1/platform or by rewriting the -platform file and sending SIGHUP — the
// service recomputes the databank-connectivity partition and migrates
// affected jobs (exact remaining fractions, stable IDs) onto the new shard
// topology. -reshard=false pins the startup partition for the process's
// whole life.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // -debug-addr serves DefaultServeMux
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"math/big"

	"divflow/internal/model"
	"divflow/internal/server"
)

// parseWorkers parses the -workers flag: comma-separated pos=host:port
// pairs, one per worker-hosted shard position.
func parseWorkers(spec string) (map[int]string, error) {
	out := make(map[int]string)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		pos, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -workers entry %q: want pos=host:port", part)
		}
		p, err := strconv.Atoi(pos)
		if err != nil || p < 0 {
			return nil, fmt.Errorf("bad -workers position %q: want a shard position >= 0", pos)
		}
		if _, dup := out[p]; dup {
			return nil, fmt.Errorf("duplicate -workers position %d", p)
		}
		out[p] = addr
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -workers spec %q", spec)
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("divflowd: ")
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		platform = flag.String("platform", "", "platform JSON describing the machine fleet (required)")
		policy   = flag.String("policy", server.DefaultPolicy,
			fmt.Sprintf("scheduling policy: %s", strings.Join(server.Policies(), ", ")))
		retention = flag.String("retention", "",
			"drop executed history older than this many seconds (exact rational, e.g. 3600); empty keeps everything")
		shards = flag.Int("shards", 0,
			"number of scheduling shards (round-robin over the fleet); 0 partitions by databank-connectivity components (or the platform's \"shards\" field)")
		steal = flag.Bool("steal", true,
			"cross-shard work stealing: an idle shard migrates queued or live jobs (exact remaining fractions, original IDs and flow origins) from the largest-backlog shard; false pins jobs to the shard they were routed to")
		reshard = flag.Bool("reshard", true,
			"live re-sharding: POST /v1/platform (or rewrite the -platform file and send SIGHUP) repartitions the running fleet when databank placement changes; false pins the startup partition")
		metrics = flag.Bool("metrics", true,
			"telemetry: GET /metrics (Prometheus text) and GET /v1/events (scheduling-event journal); false removes both and every telemetry cost from the scheduling paths")
		eventsLog = flag.String("events-log", "",
			"append every journaled scheduling event to this NDJSON file (requires -metrics)")
		debugAddr = flag.String("debug-addr", "",
			"serve net/http/pprof on this address (operator-only; empty disables profiling)")
		walDir = flag.String("wal-dir", "",
			"durable crash recovery: append every state change to a write-ahead log in this directory and restore from it at startup; empty runs in-memory only")
		fsync = flag.Bool("fsync", false,
			"sync the write-ahead log after every append (requires -wal-dir); off, tail durability is bounded by the OS page cache")
		snapshotEvery = flag.Int("snapshot-every", 0,
			"write a fleet snapshot (and truncate the log behind it) every N WAL appends; 0 selects the default (1024)")
		admission = flag.String("admission", server.AdmissionStrict,
			"deadline admission control: strict rejects submissions whose deadline is infeasible against the routed shard's residual workload (with an exact counter-offer), advisory admits them but returns the certificate, off skips the feasibility solve entirely")
		tenants = flag.String("tenants", "",
			"multi-tenant weighted fairness: JSON file {\"tenants\":[{\"name\":\"acme\",\"weight\":\"3\"}]} of per-tenant weights; tenants over their weighted share of the fleet backlog are shed with tenant_over_quota (empty disables quota enforcement; unlisted tenants weigh 1)")
		restartStalled = flag.Bool("restart-stalled", false,
			"rebuild a shard whose loop latched an error or panicked, in place from its intact engine state (bounded retries per shard)")
		worker = flag.Bool("worker", false,
			"run as a shard worker instead of a router: listen on -listen for a router to provision shards over net/rpc; no HTTP API, no -platform")
		listen = flag.String("listen", ":9090",
			"RPC listen address in -worker mode")
		workers = flag.String("workers", "",
			"comma-separated pos=host:port pairs mapping startup-partition shard positions to divflowd -worker processes; those shards run remotely, driven over net/rpc with two-phase work stealing (incompatible with -wal-dir; live re-sharding is rejected while workers are attached)")
	)
	flag.Parse()
	if *worker {
		// Worker mode is a bare RPC shard host: the router provisions shards
		// (fleet slice, policy, clock epoch) over Worker.Install, so every
		// router-side flag is meaningless here.
		if *workers != "" {
			log.Fatal("-worker and -workers are mutually exclusive (one process is either a shard host or a router)")
		}
		if *walDir != "" {
			log.Fatal("-worker does not support -wal-dir (worker shard state is in-memory for the process's life)")
		}
		lis, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
			<-sig
			log.Print("worker shutting down")
			lis.Close()
		}()
		log.Printf("worker awaiting shard installs on %s", lis.Addr())
		if err := server.ServeWorker(lis); err != nil && !errors.Is(err, net.ErrClosed) {
			log.Fatal(err)
		}
		return
	}
	if *platform == "" {
		flag.Usage()
		log.Fatal("missing -platform")
	}
	data, err := os.ReadFile(*platform)
	if err != nil {
		log.Fatal(err)
	}
	plat, err := model.ParsePlatformConfig(data)
	if err != nil {
		log.Fatal(err)
	}
	machines := plat.Machines
	if *shards < 0 {
		log.Fatalf("bad -shards %d: want >= 0", *shards)
	}
	cfg := server.Config{Machines: machines, Policy: *policy, Shards: plat.Shards,
		DisableSteal: !*steal, DisableReshard: !*reshard, DisableObs: !*metrics,
		WALDir: *walDir, Fsync: *fsync, SnapshotEvery: *snapshotEvery,
		RestartStalled: *restartStalled, Admission: *admission}
	if *tenants != "" {
		data, err := os.ReadFile(*tenants)
		if err != nil {
			log.Fatal(err)
		}
		tc, err := model.ParseTenantConfig(data)
		if err != nil {
			log.Fatalf("bad -tenants file %s: %v", *tenants, err)
		}
		cfg.Tenants = tc
	}
	if *workers != "" {
		w, err := parseWorkers(*workers)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Workers = w
	}
	if *walDir == "" && (*fsync || *snapshotEvery > 0) {
		log.Fatal("-fsync and -snapshot-every need -wal-dir")
	}
	if *shards > 0 {
		cfg.Shards = *shards
	}
	if *eventsLog != "" {
		if !*metrics {
			log.Fatal("-events-log needs -metrics (the journal is disabled)")
		}
		f, err := os.OpenFile(*eventsLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		cfg.EventSink = f
	}
	if *retention != "" {
		r, ok := new(big.Rat).SetString(*retention)
		if !ok || r.Sign() <= 0 {
			log.Fatalf("bad -retention %q: want a positive rational", *retention)
		}
		cfg.Retention = r
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *walDir != "" {
		if replayed := srv.ReplayedRecords(); replayed > 0 || srv.RestoredNow().Sign() > 0 {
			log.Printf("restored durable state from %s: %d WAL records replayed, resuming at virtual time %s",
				*walDir, replayed, srv.RestoredNow().RatString())
		}
	}
	srv.Start()
	defer srv.Close()

	if *debugAddr != "" {
		// pprof registers on http.DefaultServeMux; serving that mux on a
		// separate listener keeps the profiling surface off the service
		// address, so exposing the API never exposes the profiler.
		go func() {
			log.Printf("pprof on %s/debug/pprof/", *debugAddr)
			// Same slowloris bounds as the API listener: operator-only does
			// not mean unreachable, and a handful of stuck header reads would
			// pin goroutines for the life of the process.
			dbg := &http.Server{
				Addr:              *debugAddr,
				ReadHeaderTimeout: 10 * time.Second,
				IdleTimeout:       2 * time.Minute,
			}
			if err := dbg.ListenAndServe(); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// A client that dribbles its header bytes (or parks an idle
		// keep-alive connection forever) must not hold a goroutine and an fd
		// open indefinitely. Body reads stay untimed: submissions are capped
		// by MaxBytesReader, but a platform upload on a slow link can be
		// legitimately large.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()
	if *reshard {
		// SIGHUP reloads the platform file and live-reshards against it: the
		// operator's replication event needs only a file rewrite and a
		// signal, no client tooling.
		go func() {
			hup := make(chan os.Signal, 1)
			signal.Notify(hup, syscall.SIGHUP)
			for range hup {
				data, err := os.ReadFile(*platform)
				if err != nil {
					log.Printf("SIGHUP reload: %v", err)
					continue
				}
				plat, err := model.ParsePlatformConfig(data)
				if err != nil {
					log.Printf("SIGHUP reload: %v", err)
					continue
				}
				// The -shards CLI override outranks the file at startup; a
				// reload must apply the same precedence, or an unchanged
				// file would repartition the fleet to the file's (absent)
				// shard count instead of being the no-op it looks like.
				if *shards > 0 {
					plat.Shards = *shards
				}
				resp, err := srv.Reshard(plat)
				switch {
				case err != nil:
					log.Printf("SIGHUP reshard rejected: %v", err)
				case resp.Noop:
					log.Printf("SIGHUP reshard: platform unchanged, partition kept (%d shards, generation %d)",
						resp.ShardCount, resp.Generation)
				default:
					log.Printf("SIGHUP reshard: generation %d, %d shards (%d spawned, %d retired, %d kept), %d jobs migrated",
						resp.Generation, resp.ShardCount, len(resp.SpawnedShards), len(resp.RetiredShards),
						len(resp.KeptShards), resp.MigratedJobs)
				}
			}
		}()
	}
	// Listen explicitly (rather than ListenAndServe) so the log line carries
	// the bound address even for -addr :0 — scripted deployments and the
	// end-to-end tests learn the port from it.
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %d machines in %d shards on %s (policy %s)", len(machines), srv.ShardCount(), lis.Addr(), *policy)
	if err := httpSrv.Serve(lis); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
