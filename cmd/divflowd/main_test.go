package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/big"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"divflow/internal/model"
	"divflow/internal/schedule"
)

// proc wraps a divflowd child process with a line-buffered view of its
// stderr, so tests can wait for the startup log lines that announce bound
// addresses.
type proc struct {
	cmd   *exec.Cmd
	lines chan string
}

func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd, lines: make(chan string, 256)}
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			select {
			case p.lines <- sc.Text():
			default: // never block the child on a slow test reader
			}
		}
		close(p.lines)
	}()
	t.Cleanup(func() {
		_ = cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { _ = cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	})
	return p
}

// waitLine returns the first stderr line containing substr.
func (p *proc) waitLine(t *testing.T, substr string) string {
	t.Helper()
	deadline := time.After(15 * time.Second)
	for {
		select {
		case line, ok := <-p.lines:
			if !ok {
				t.Fatalf("process exited before logging %q", substr)
			}
			if strings.Contains(line, substr) {
				return line
			}
		case <-deadline:
			t.Fatalf("timed out waiting for log line containing %q", substr)
		}
	}
}

// buildDivflowd builds the real binary once into a temp dir.
func buildDivflowd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "divflowd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestWorkerAdmissionCertificates runs deadline admission across a real
// two-process fleet: the single shard lives in a -worker process, so the
// feasibility check and its exact certificate cross the RPC socket. An
// impossible deadline must come back as a typed deadline_infeasible envelope
// with a counter-offer, and resubmitting past the counter-offer must be
// accepted with a feasible certificate.
func TestWorkerAdmissionCertificates(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the divflowd binary")
	}
	bin := buildDivflowd(t)
	platform := filepath.Join(t.TempDir(), "platform.json")
	if err := os.WriteFile(platform, []byte(`{
		"shards": 1,
		"machines": [{"name": "m", "inverseSpeed": "1", "databanks": ["shared"]}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}

	worker := startProc(t, bin, "-worker", "-listen", "127.0.0.1:0")
	wline := worker.waitLine(t, "worker awaiting shard installs on ")
	workerAddr := wline[strings.LastIndex(wline, " on ")+len(" on "):]
	router := startProc(t, bin,
		"-addr", "127.0.0.1:0",
		"-platform", platform,
		"-workers", "0="+workerAddr,
	)
	rline := router.waitLine(t, "serving 1 machines in 1 shards on ")
	rest := rline[strings.Index(rline, " shards on ")+len(" shards on "):]
	base := "http://" + strings.TrimSpace(strings.Split(rest, " ")[0])

	// The worker anchors a real clock, so any sub-millisecond deadline is
	// already hopeless for 9 units of work at speed 1.
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(
		`{"size":"9","deadline":"1/1000","databanks":["shared"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var env model.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity || env.Error.Code != "deadline_infeasible" {
		t.Fatalf("worker-shard infeasible submit = %d %q, want 422 deadline_infeasible", resp.StatusCode, env.Error.Code)
	}
	cert := env.Error.Admission
	if cert == nil || cert.Feasible || cert.CounterOffer == "" {
		t.Fatalf("certificate over RPC = %+v, want infeasible with a counter-offer", cert)
	}
	counter, ok := new(big.Rat).SetString(cert.CounterOffer)
	if !ok || counter.Cmp(big.NewRat(9, 1)) < 0 {
		t.Fatalf("counter-offer %q, want an exact rational >= 9 (release + 9 work / speed 1)", cert.CounterOffer)
	}

	// Real time moved on since the counter-offer was computed; resubmit with
	// a minute of slack so the promise is still open when the check reruns.
	counter.Add(counter, big.NewRat(60, 1))
	body, _ := json.Marshal(model.SubmitRequest{
		Size: "9", Deadline: counter.RatString(), Databanks: []string{"shared"}})
	resp, err = http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub model.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit past counter-offer = %d, want 202", resp.StatusCode)
	}
	if sub.Admission == nil || !sub.Admission.Feasible || sub.Admission.ResidualJobs != 1 {
		t.Fatalf("accept certificate over RPC = %+v, want feasible covering 1 job", sub.Admission)
	}
}

// TestDistributedFleetSmoke builds the real binary and runs a two-process
// fleet: a worker hosting shard 1 and a router hosting shard 0, wired over
// loopback TCP RPC. It submits a burst of jobs over HTTP, waits for the
// fleet to finish them, and checks that (a) at least one job crossed the
// socket via the two-phase steal, (b) every job is readable through the
// forwarding chain, and (c) the merged executed schedule accounts for
// exactly the whole of every job.
func TestDistributedFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the divflowd binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "divflowd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Shard 0 (router-local) gets the slow machine, shard 1 (worker) the
	// fast one: the worker drains its half of the burst quickly, goes idle,
	// and the router's steal loop migrates queued work to it over RPC.
	platform := filepath.Join(dir, "platform.json")
	if err := os.WriteFile(platform, []byte(`{
		"shards": 2,
		"machines": [
			{"name": "slow", "inverseSpeed": "4", "databanks": ["shared"]},
			{"name": "fast", "inverseSpeed": "1/2", "databanks": ["shared"]}
		]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}

	worker := startProc(t, bin, "-worker", "-listen", "127.0.0.1:0")
	wline := worker.waitLine(t, "worker awaiting shard installs on ")
	workerAddr := wline[strings.LastIndex(wline, " on ")+len(" on "):]

	router := startProc(t, bin,
		"-addr", "127.0.0.1:0",
		"-platform", platform,
		"-policy", "srpt",
		"-workers", "1="+workerAddr,
	)
	rline := router.waitLine(t, "serving 2 machines in 2 shards on ")
	rest := rline[strings.Index(rline, " shards on ")+len(" shards on "):]
	base := "http://" + strings.TrimSpace(strings.Split(rest, " ")[0])

	const jobs = 10
	ids := make([]int, 0, jobs)
	for i := 0; i < jobs; i++ {
		body, _ := json.Marshal(model.SubmitRequest{
			Name: fmt.Sprintf("j%d", i), Size: "1/2", Weight: "1",
			Databanks: []string{"shared"},
		})
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var sub model.SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, sub.ID)
	}

	getJSON := func(path string, into any) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}

	var st model.StatsResponse
	deadline := time.Now().Add(60 * time.Second)
	for {
		getJSON("/v1/stats", &st)
		if st.JobsCompleted == jobs {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet did not finish: %d/%d jobs completed (stalled=%v lastError=%q)",
				st.JobsCompleted, jobs, st.Stalled, st.LastError)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if st.StolenJobs == 0 {
		t.Fatalf("no job crossed the RPC boundary via steal; stats: %+v", st)
	}

	// Every submitted ID must resolve through the forwarding chain, even
	// after its job migrated over the socket.
	for _, id := range ids {
		var js model.JobStatus
		getJSON(fmt.Sprintf("/v1/jobs/%d", id), &js)
		if js.State != "done" {
			t.Fatalf("job %d: state %q, want done", id, js.State)
		}
	}

	// The merged trace must account for exactly the whole of every job:
	// fraction sums of 1 across both processes' pieces.
	var sr model.ScheduleResponse
	getJSON("/v1/schedule", &sr)
	var sched schedule.Schedule
	if err := json.Unmarshal(sr.Schedule, &sched); err != nil {
		t.Fatal(err)
	}
	sums := make(map[int]*big.Rat)
	for i := range sched.Pieces {
		p := &sched.Pieces[i]
		if sums[p.Job] == nil {
			sums[p.Job] = new(big.Rat)
		}
		sums[p.Job].Add(sums[p.Job], p.Fraction)
	}
	one := big.NewRat(1, 1)
	for _, id := range ids {
		got := sums[id]
		if got == nil || got.Cmp(one) != 0 {
			t.Fatalf("job %d: merged schedule fractions sum to %v, want 1", id, got)
		}
	}
}
