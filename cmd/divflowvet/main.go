// Command divflowvet runs divflow's repo-specific static analyzers: the
// wall-clock, big.Rat-aliasing, lock-order, emission-contract, and
// float-exactness invariants the paper reproduction depends on but generic
// vet/staticcheck cannot see.
//
// Standalone (the CI gate):
//
//	divflowvet ./...
//
// As a vet tool, so diagnostics land incrementally with the build cache:
//
//	go vet -vettool=$(which divflowvet) ./...
//
// Flags: -analyzers=a,b,c restricts the suite; -list prints it.
package main

import (
	"flag"
	"fmt"
	"os"

	"divflow/internal/analysis"
)

func main() {
	// The go vet driver protocol: `tool -V=full` prints an identity line,
	// `tool -flags` describes tool flags as JSON (none), and
	// `tool <file>.cfg` analyzes one compiled package.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		printVersion()
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(os.Args) == 2 && isVetCfg(os.Args[1]) {
		os.Exit(unitchecker(os.Args[1]))
	}

	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "divflowvet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "divflowvet:", err)
		os.Exit(2)
	}
	prog, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "divflowvet:", err)
		os.Exit(2)
	}
	diags := analysis.RunAnalyzers(prog, analyzers)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
