package main

import (
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"strings"

	"divflow/internal/analysis"
)

// The minimal `go vet -vettool` driver protocol, reimplemented without
// x/tools/go/analysis/unitchecker: the go command invokes the tool once per
// package with a JSON .cfg describing the compiled unit (sources, import map,
// export-data files, fact files of dependencies), expects facts written to
// VetxOutput, diagnostics on stderr, and exit status 2 when any diagnostic
// fired.

func isVetCfg(arg string) bool {
	return strings.HasSuffix(arg, ".cfg")
}

// printVersion answers `-V=full` with a line whose last field is a content
// hash of the executable, so the build cache invalidates vet results when
// the tool changes — the same contract unitchecker implements.
func printVersion() {
	name, sum := "divflowvet", [sha256.Size]byte{}
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			_, _ = io.Copy(h, f)
			f.Close()
			h.Sum(sum[:0])
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, sum)
}

func unitchecker(cfgPath string) int {
	cfg, err := analysis.ReadVetCfg(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "divflowvet:", err)
		return 1
	}
	// Only divflow packages carry lock annotations or analyzable code; for
	// everything else (stdlib fact passes) emit an empty fact file and move
	// on without typechecking.
	if !strings.HasPrefix(cfg.ImportPath, "divflow") || strings.Contains(cfg.ImportPath, ".test") {
		if err := writeFacts(cfg.VetxOutput, analysis.NewWorld()); err != nil {
			fmt.Fprintln(os.Stderr, "divflowvet:", err)
			return 1
		}
		return 0
	}
	prog, pkg, err := analysis.LoadVetUnit(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			_ = writeFacts(cfg.VetxOutput, analysis.NewWorld())
			return 0
		}
		fmt.Fprintln(os.Stderr, "divflowvet:", err)
		return 1
	}
	world := analysis.NewWorld()
	for _, vetx := range cfg.PackageVetx {
		if err := readFacts(vetx, world); err != nil {
			fmt.Fprintln(os.Stderr, "divflowvet:", err)
			return 1
		}
	}
	diags := analysis.RunVetUnit(prog, pkg, world, analysis.All())
	if err := writeFacts(cfg.VetxOutput, world); err != nil {
		fmt.Fprintln(os.Stderr, "divflowvet:", err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// factFile is the serialized fact payload: the world fragments contributed by
// one package (and, transitively, what it merged from its own deps — merging
// is idempotent, so over-sharing is harmless).
type factFile struct {
	FieldClass map[string]string
	Before     map[string]map[string]bool
	Funcs      map[string]*analysis.FuncLocks
}

func writeFacts(path string, w *analysis.World) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewEncoder(f).Encode(factFile{FieldClass: w.FieldClass, Before: w.Before, Funcs: w.Funcs})
}

func readFacts(path string, w *analysis.World) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var ff factFile
	if err := gob.NewDecoder(f).Decode(&ff); err != nil {
		if err == io.EOF {
			return nil // empty fact file from a non-divflow package
		}
		return err
	}
	for k, v := range ff.FieldClass {
		w.FieldClass[k] = v
	}
	for k, v := range ff.Before {
		if w.Before[k] == nil {
			w.Before[k] = make(map[string]bool)
		}
		for b := range v {
			w.Before[k][b] = true
		}
	}
	for k, v := range ff.Funcs {
		w.Funcs[k] = v
	}
	return nil
}
