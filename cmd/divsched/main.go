// Command divsched solves offline scheduling problems on instances given as
// JSON documents (see internal/model for the format):
//
//	divsched -in instance.json -objective mwf -model divisible -gantt
//
// Objectives:
//
//	mwf       minimize the maximum weighted flow (Theorem 2 / Section 4.4)
//	makespan  minimize the makespan (Theorem 1)
//	deadline  decide feasibility of per-job deadlines (Lemma 1); deadlines
//	          are read from -deadlines as comma-separated rationals ("" = none)
//
// With -stretch, job weights are replaced by 1/Size so the mwf objective
// becomes the max-stretch of the paper.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/big"
	"os"
	"strings"

	"divflow/internal/core"
	"divflow/internal/model"
	"divflow/internal/schedule"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("divsched: ")
	var (
		inPath    = flag.String("in", "-", "instance JSON file ('-' for stdin)")
		objective = flag.String("objective", "mwf", "mwf | makespan | deadline")
		execModel = flag.String("model", "divisible", "divisible | preemptive")
		stretch   = flag.Bool("stretch", false, "use stretch weights (w_j = 1/W_j)")
		deadlines = flag.String("deadlines", "", "comma-separated deadlines for -objective deadline")
		gantt     = flag.Bool("gantt", false, "print the schedule")
		chart     = flag.Int("chart", 0, "print an ASCII Gantt chart this many cells wide")
	)
	flag.Parse()

	inst, err := readInstance(*inPath)
	if err != nil {
		log.Fatal(err)
	}
	if *stretch {
		inst.WeightsForStretch()
	}
	mode := schedule.Divisible
	switch *execModel {
	case "divisible":
	case "preemptive":
		mode = schedule.Preemptive
	default:
		log.Fatalf("unknown -model %q", *execModel)
	}

	show := func(s *schedule.Schedule) {
		if *gantt {
			fmt.Print(s)
		}
		if *chart > 0 {
			fmt.Print(s.Gantt(*chart))
		}
	}
	switch *objective {
	case "mwf":
		runMWF(inst, mode, show)
	case "makespan":
		runMakespan(inst, mode, show)
	case "deadline":
		runDeadline(inst, mode, *deadlines, show)
	default:
		log.Fatalf("unknown -objective %q", *objective)
	}
}

func readInstance(path string) (*model.Instance, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var inst model.Instance
	if err := json.Unmarshal(data, &inst); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &inst, nil
}

func runMWF(inst *model.Instance, mode schedule.Model, show func(*schedule.Schedule)) {
	var res *core.Result
	var err error
	if mode == schedule.Preemptive {
		res, err = core.MinMaxWeightedFlowPreemptive(inst)
	} else {
		res, err = core.MinMaxWeightedFlow(inst)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal max weighted flow: %s (~%.6g)\n", res.Objective.RatString(), ratF(res.Objective))
	fmt.Printf("milestones: %d, LP solves: %d, optimum in range %s\n",
		res.NumMilestones, res.LPSolves, res.Range)
	printMetrics(inst, res.Schedule)
	show(res.Schedule)
}

func runMakespan(inst *model.Instance, mode schedule.Model, show func(*schedule.Schedule)) {
	var res *core.MakespanResult
	var err error
	if mode == schedule.Preemptive {
		res, err = core.MinMakespanPreemptive(inst)
	} else {
		res, err = core.MinMakespan(inst)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal makespan: %s (~%.6g)\n", res.Makespan.RatString(), ratF(res.Makespan))
	printMetrics(inst, res.Schedule)
	show(res.Schedule)
}

func runDeadline(inst *model.Instance, mode schedule.Model, spec string, show func(*schedule.Schedule)) {
	dls := make([]*big.Rat, inst.N())
	if spec != "" {
		parts := strings.Split(spec, ",")
		if len(parts) != inst.N() {
			log.Fatalf("-deadlines has %d entries for %d jobs", len(parts), inst.N())
		}
		for j, p := range parts {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			d, ok := new(big.Rat).SetString(p)
			if !ok {
				log.Fatalf("bad deadline %q", p)
			}
			dls[j] = d
		}
	}
	ok, s, err := core.DeadlineFeasible(inst, dls, mode)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		fmt.Println("infeasible")
		os.Exit(1)
	}
	fmt.Println("feasible")
	printMetrics(inst, s)
	show(s)
}

func printMetrics(inst *model.Instance, s *schedule.Schedule) {
	flows, err := s.Flows(inst)
	if err != nil {
		log.Fatal(err)
	}
	cs := s.Completions(inst.N())
	for j := range inst.Jobs {
		wf := new(big.Rat).Mul(inst.Jobs[j].Weight, flows[j])
		fmt.Printf("  %-12s C=%-10s flow=%-10s w*flow=%s\n",
			inst.Jobs[j].Name, cs[j].RatString(), flows[j].RatString(), wf.RatString())
	}
}

func ratF(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}
