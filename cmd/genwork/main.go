// Command genwork emits a random scheduling instance as exact-rational JSON
// on stdout, in the format consumed by divsched. It exposes the workload
// model used throughout the benchmarks: heterogeneous machines, replicated
// databanks with Zipf popularity, Poisson-like arrivals.
//
//	genwork -jobs 8 -machines 4 -databanks 3 -seed 7 > inst.json
//	divsched -in inst.json -objective mwf -chart 60
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"divflow/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genwork: ")
	var (
		jobs         = flag.Int("jobs", 6, "number of jobs")
		machines     = flag.Int("machines", 3, "number of machines")
		banks        = flag.Int("databanks", 3, "number of databanks (0 = unconstrained)")
		replication  = flag.Int("replication", 2, "replicas per databank")
		interarrival = flag.Float64("interarrival", 4, "mean interarrival time in seconds (0 = all at t=0)")
		minSize      = flag.Int("min-size", 1, "minimum job size")
		maxSize      = flag.Int("max-size", 20, "maximum job size")
		minSpeed     = flag.Int("min-speed", 1, "minimum machine speed")
		maxSpeed     = flag.Int("max-speed", 4, "maximum machine speed")
		unrelated    = flag.Bool("unrelated", false, "draw unrelated (per-pair) costs instead of uniform speeds")
		seed         = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := workload.Config{
		Jobs:             *jobs,
		Machines:         *machines,
		Databanks:        *banks,
		Replication:      *replication,
		MeanInterarrival: *interarrival,
		MinSize:          *minSize,
		MaxSize:          *maxSize,
		MinSpeed:         *minSpeed,
		MaxSpeed:         *maxSpeed,
		Unrelated:        *unrelated,
		Seed:             *seed,
	}
	inst, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(inst); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %d jobs on %d machines (seed %d)\n", inst.N(), inst.M(), *seed)
}
