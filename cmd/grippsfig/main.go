// Command grippsfig regenerates the divisibility studies of Figure 1 of
// RR-5386: block execution time as a function of the sequence block size
// (Figure 1a, small fixed overhead) and of the motif set size (Figure 1b,
// large fixed overhead), on a synthetic GriPPS workload with a cost model
// calibrated to the paper's published anchors (1.1 s / 10.5 s / 110 s).
//
//	grippsfig -part both -scale default
//	grippsfig -part seq -scale paper        # full 38,000-sequence protocol
package main

import (
	"flag"
	"fmt"
	"log"

	"divflow/internal/gripps"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("grippsfig: ")
	var (
		part  = flag.String("part", "both", "seq | motif | both")
		scale = flag.String("scale", "default", "default | paper")
		seqs  = flag.Int("sequences", 0, "override databank size")
		mots  = flag.Int("motifs", 0, "override motif count")
		steps = flag.Int("steps", 0, "override partition steps")
		reps  = flag.Int("reps", 0, "override repetitions per step")
		seed  = flag.Int64("seed", 0, "override seed")
	)
	flag.Parse()

	cfg := gripps.DefaultConfig()
	if *scale == "paper" {
		cfg = gripps.PaperConfig()
	} else if *scale != "default" {
		log.Fatalf("unknown -scale %q", *scale)
	}
	if *seqs > 0 {
		cfg.NumSequences = *seqs
	}
	if *mots > 0 {
		cfg.NumMotifs = *mots
	}
	if *steps > 0 {
		cfg.Steps = *steps
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	if *part == "seq" || *part == "both" {
		res, err := gripps.Figure1a(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Table())
		fmt.Println()
	}
	if *part == "motif" || *part == "both" {
		res, err := gripps.Figure1b(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Table())
	}
	if *part != "seq" && *part != "motif" && *part != "both" {
		log.Fatalf("unknown -part %q", *part)
	}
}
