// Command onlinesim reproduces the comparison sketched in the conclusion of
// RR-5386: on randomly generated databank workloads, the online adaptation
// of the offline max-weighted-flow algorithm is compared against classical
// heuristics (Minimum Completion Time, FCFS, SRPT, greedy weighted flow).
// Every run is also compared to the clairvoyant offline optimum, which is a
// lower bound for any online policy.
//
//	onlinesim -seeds 10 -jobs 6 -machines 3 -loads 2,4,8 -stretch
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"

	"divflow/internal/core"
	"divflow/internal/sim"
	"divflow/internal/stats"
	"divflow/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("onlinesim: ")
	var (
		seeds       = flag.Int("seeds", 10, "number of random workloads")
		jobs        = flag.Int("jobs", 6, "jobs per workload")
		machines    = flag.Int("machines", 3, "machines")
		banks       = flag.Int("databanks", 3, "databanks")
		replication = flag.Int("replication", 2, "replicas per databank")
		loads       = flag.String("loads", "3", "comma-separated mean interarrival times (s); several values sweep the load")
		stretch     = flag.Bool("stretch", false, "optimize and report max-stretch instead of max weighted flow")
		preemptive  = flag.Bool("preemptive-adaptation", false, "also run the preemptive-model online adaptation")
		verbose     = flag.Bool("v", false, "print per-seed results")
	)
	flag.Parse()

	var interarrivals []float64
	for _, part := range strings.Split(*loads, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			log.Fatalf("bad -loads entry %q", part)
		}
		interarrivals = append(interarrivals, v)
	}
	objective := "max weighted flow"
	if *stretch {
		objective = "max stretch"
	}

	for _, interarrival := range interarrivals {
		policies := []sim.Policy{
			sim.NewOnlineMWF(),
			sim.NewMCT(),
			sim.NewFCFS(),
			sim.NewSRPT(),
			sim.NewGreedyWeightedFlow(),
		}
		if *preemptive {
			policies = append(policies, sim.NewOnlineMWFPreemptive())
		}
		ratios := make(map[string][]float64)

		for seed := 0; seed < *seeds; seed++ {
			cfg := workload.Default()
			cfg.Seed = int64(seed)
			cfg.Jobs = *jobs
			cfg.Machines = *machines
			cfg.Databanks = *banks
			cfg.Replication = *replication
			cfg.MeanInterarrival = interarrival
			inst, err := workload.Generate(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if *stretch {
				inst.WeightsForStretch()
			}
			opt, err := core.MinMaxWeightedFlow(inst)
			if err != nil {
				log.Fatal(err)
			}
			optF, _ := opt.Objective.Float64()
			if *verbose {
				fmt.Printf("seed %d: offline optimum %.4f\n", seed, optF)
			}
			for _, p := range policies {
				res, err := sim.Run(inst, p)
				if err != nil {
					log.Fatalf("seed %d, policy %s: %v", seed, p.Name(), err)
				}
				val, _ := res.MaxWeightedFlow.Float64()
				ratio := val / optF
				ratios[p.Name()] = append(ratios[p.Name()], ratio)
				if *verbose {
					fmt.Printf("  %-18s %.4f  (ratio %.3f, %d preemptions)\n",
						p.Name(), val, ratio, res.Preemptions)
				}
			}
		}

		fmt.Printf("\n# online policies vs clairvoyant offline optimum (%s)\n", objective)
		fmt.Printf("# %d workloads: %d jobs, %d machines, %d databanks (replication %d), mean interarrival %.3gs\n",
			*seeds, *jobs, *machines, *banks, *replication, interarrival)
		fmt.Printf("%-18s %10s %10s %10s\n", "policy", "geo-mean", "mean", "worst")
		names := make([]string, 0, len(ratios))
		for name := range ratios {
			names = append(names, name)
		}
		sort.Slice(names, func(a, b int) bool {
			return stats.GeoMean(ratios[names[a]]) < stats.GeoMean(ratios[names[b]])
		})
		for _, name := range names {
			rs := ratios[name]
			fmt.Printf("%-18s %10.4f %10.4f %10.4f\n", name, stats.GeoMean(rs), stats.Mean(rs), stats.Max(rs))
		}
	}
}
