// Package divflow is an exact, pure-Go implementation of the scheduling
// results of "Off-line scheduling of divisible requests on an heterogeneous
// collection of databanks" (Arnaud Legrand, Alan Su, Frédéric Vivien, INRIA
// RR-5386 / IPDPS 2005 HiCOMB workshop).
//
// The paper studies the scheduling of divisible requests — genomic motif
// searches against replicated protein databanks — on unrelated machines,
// and proves that the following problems are solvable exactly in polynomial
// time:
//
//   - makespan minimization in the divisible-load model (Theorem 1);
//   - deadline feasibility (Lemma 1);
//   - minimization of the maximum weighted flow max_j w_j (C_j − r_j) in
//     the divisible-load model (Theorem 2), via an exact binary search over
//     "milestone" objective values;
//   - the same objective with preemption but no divisibility (Section 4.4),
//     via the Lawler–Labetoulle schedule reconstruction.
//
// This package is the public facade: it re-exports the platform/application
// model and the solvers. Supporting subsystems live in internal/ packages
// (exact rational simplex, interval machinery, Lawler–Labetoulle
// decomposition, online simulator, synthetic GriPPS workload).
//
// # Quick start
//
//	jobs := []divflow.Job{{
//	    Name:    "blast-vs-swissprot",
//	    Release: big.NewRat(0, 1),
//	    Weight:  big.NewRat(1, 1),
//	    Size:    big.NewRat(40, 1),
//	    Databanks: []string{"swissprot"},
//	}}
//	machines := []divflow.Machine{{
//	    Name:         "node-a",
//	    InverseSpeed: big.NewRat(1, 2),
//	    Databanks:    []string{"swissprot"},
//	}}
//	inst, err := divflow.NewInstance(jobs, machines)
//	...
//	res, err := divflow.MinMaxWeightedFlow(inst)
//	fmt.Println(res.Objective, res.Schedule)
//
// All quantities are exact rationals (math/big.Rat); every returned
// schedule passes an exact validator for its execution model.
package divflow

import (
	"math/big"

	"divflow/internal/core"
	"divflow/internal/model"
	"divflow/internal/schedule"
	"divflow/internal/sim"
)

// Job is one divisible request (see model.Job).
type Job = model.Job

// Machine is one compute resource hosting databanks (see model.Machine).
type Machine = model.Machine

// Instance is a complete problem instance (see model.Instance).
type Instance = model.Instance

// Schedule is an executable plan; see its Validate method for the exact
// invariants of each execution model.
type Schedule = schedule.Schedule

// Piece is one maximal run of a job on a machine.
type Piece = schedule.Piece

// ExecutionModel selects between the paper's two execution models.
type ExecutionModel = schedule.Model

// Execution models.
const (
	// Divisible allows concurrent execution of one job's parts on several
	// machines (Section 3).
	Divisible = schedule.Divisible
	// Preemptive allows interrupting jobs but never runs one job on two
	// machines at once (Section 4.4).
	Preemptive = schedule.Preemptive
)

// Result is the outcome of max-weighted-flow minimization.
type Result = core.Result

// MakespanResult is the outcome of makespan minimization.
type MakespanResult = core.MakespanResult

// ApproxResult is the outcome of the ε-precision baseline search.
type ApproxResult = core.ApproxResult

// NewInstance builds a uniform-machines-with-restricted-availabilities
// instance: c_{i,j} = Size_j · InverseSpeed_i where machine i hosts job j's
// databanks, +∞ elsewhere.
func NewInstance(jobs []Job, machines []Machine) (*Instance, error) {
	return model.NewInstance(jobs, machines)
}

// NewUnrelated builds a fully unrelated instance from an explicit cost
// matrix cost[machine][job]; nil entries mean the job cannot run there.
func NewUnrelated(jobs []Job, machines []Machine, cost [][]*big.Rat) (*Instance, error) {
	return model.NewUnrelated(jobs, machines, cost)
}

// MinMakespan solves makespan minimization exactly (Theorem 1).
func MinMakespan(inst *Instance) (*MakespanResult, error) {
	return core.MinMakespan(inst)
}

// MinMakespanPreemptive solves makespan minimization when jobs are
// preemptible but not divisible — the Lawler–Labetoulle System (4) the
// paper builds on, generalized to release dates.
func MinMakespanPreemptive(inst *Instance) (*MakespanResult, error) {
	return core.MinMakespanPreemptive(inst)
}

// DeadlineFeasible decides deadline feasibility exactly (Lemma 1 /
// System (2)); nil deadlines are unconstrained. On success it returns a
// schedule meeting every deadline in the requested execution model.
func DeadlineFeasible(inst *Instance, deadlines []*big.Rat, m ExecutionModel) (bool, *Schedule, error) {
	return core.DeadlineFeasible(inst, deadlines, m)
}

// MinMaxWeightedFlow minimizes max_j w_j (C_j − r_j) exactly in the
// divisible-load model (Theorem 2).
func MinMaxWeightedFlow(inst *Instance) (*Result, error) {
	return core.MinMaxWeightedFlow(inst)
}

// MinMaxWeightedFlowPreemptive minimizes the same objective with preemption
// but no divisibility (Section 4.4).
func MinMaxWeightedFlowPreemptive(inst *Instance) (*Result, error) {
	return core.MinMaxWeightedFlowPreemptive(inst)
}

// Milestones enumerates the critical objective values of Section 4.3.2.
func Milestones(inst *Instance) []*big.Rat {
	return core.Milestones(inst)
}

// ApproxMinMaxWeightedFlow is the naive ε-precision binary search the paper
// improves upon; kept as a baseline and cross-check.
func ApproxMinMaxWeightedFlow(inst *Instance, m ExecutionModel, eps *big.Rat) (*ApproxResult, error) {
	return core.ApproxMinMaxWeightedFlow(inst, m, eps)
}

// Estimate is the outcome of the float64 fast path.
type Estimate = core.Estimate

// EstimateMinMaxWeightedFlow approximates the optimum with a float64 LP
// backend (milestones stay exact); no schedule is produced. Use it at
// scales where the exact rational simplex is too slow.
func EstimateMinMaxWeightedFlow(inst *Instance, m ExecutionModel) (*Estimate, error) {
	return core.EstimateMinMaxWeightedFlow(inst, m)
}

// OnlinePolicy is an online scheduling strategy for SimulateOnline.
type OnlinePolicy = sim.Policy

// OnlineResult is the outcome of one simulated online run.
type OnlineResult = sim.Result

// SimulateOnline replays the instance through an online policy (jobs are
// revealed at their release dates) and returns exact metrics of the
// resulting execution.
func SimulateOnline(inst *Instance, p OnlinePolicy) (*OnlineResult, error) {
	return sim.Run(inst, p)
}

// Online policy constructors (see internal/sim for semantics).
var (
	// NewFCFS is first-come-first-served.
	NewFCFS = func() OnlinePolicy { return sim.NewFCFS() }
	// NewMCT is the Minimum Completion Time heuristic the paper compares
	// against.
	NewMCT = func() OnlinePolicy { return sim.NewMCT() }
	// NewSRPT is shortest-remaining-processing-time-first.
	NewSRPT = func() OnlinePolicy { return sim.NewSRPT() }
	// NewGreedyWeightedFlow serves the currently worst weighted flow first.
	NewGreedyWeightedFlow = func() OnlinePolicy { return sim.NewGreedyWeightedFlow() }
	// NewOnlineMWF is the paper's online adaptation of the offline
	// algorithm (conclusion).
	NewOnlineMWF = func() OnlinePolicy { return sim.NewOnlineMWF() }
	// NewOnlineMWFPreemptive uses the Section 4.4 preemptive solver inside
	// the online adaptation.
	NewOnlineMWFPreemptive = func() OnlinePolicy { return sim.NewOnlineMWFPreemptive() }
	// NewOnlineMWFLazy re-solves only when new jobs arrive (an ablation of
	// the re-solve frequency; same quality, far fewer LP solves).
	NewOnlineMWFLazy = func() OnlinePolicy { return sim.NewOnlineMWFLazy() }
)
