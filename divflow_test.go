package divflow

import (
	"math/big"
	"testing"

	"divflow/internal/workload"
)

func rr(a, b int64) *big.Rat { return big.NewRat(a, b) }

// TestFacadeEndToEnd exercises the public API exactly as a downstream user
// would: build an instance, solve all objectives, validate, simulate.
func TestFacadeEndToEnd(t *testing.T) {
	jobs := []Job{
		{Name: "q1", Release: rr(0, 1), Weight: rr(2, 1), Size: rr(4, 1), Databanks: []string{"sp"}},
		{Name: "q2", Release: rr(1, 1), Weight: rr(1, 1), Size: rr(6, 1)},
	}
	machines := []Machine{
		{Name: "a", InverseSpeed: rr(1, 2), Databanks: []string{"sp"}},
		{Name: "b", InverseSpeed: rr(1, 1)},
	}
	inst, err := NewInstance(jobs, machines)
	if err != nil {
		t.Fatal(err)
	}

	mwf, err := MinMaxWeightedFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := mwf.Schedule.Validate(inst, Divisible, nil); err != nil {
		t.Fatal(err)
	}

	pre, err := MinMaxWeightedFlowPreemptive(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := pre.Schedule.Validate(inst, Preemptive, nil); err != nil {
		t.Fatal(err)
	}
	if pre.Objective.Cmp(mwf.Objective) < 0 {
		t.Fatalf("preemptive %v beat divisible %v", pre.Objective, mwf.Objective)
	}

	mk, err := MinMakespan(inst)
	if err != nil {
		t.Fatal(err)
	}
	if mk.Makespan.Sign() <= 0 {
		t.Fatalf("makespan = %v", mk.Makespan)
	}

	ok, _, err := DeadlineFeasible(inst, []*big.Rat{mk.Makespan, mk.Makespan}, Divisible)
	if err != nil || !ok {
		t.Fatalf("optimal makespan must be deadline-feasible: %v %v", ok, err)
	}

	ms := Milestones(inst)
	if len(ms) == 0 {
		t.Error("expected at least one milestone for distinct releases/weights")
	}

	approx, err := ApproxMinMaxWeightedFlow(inst, Divisible, rr(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if mwf.Objective.Cmp(approx.Hi) > 0 || mwf.Objective.Cmp(approx.Lo) <= 0 {
		t.Errorf("exact %v outside approx bracket (%v, %v]", mwf.Objective, approx.Lo, approx.Hi)
	}
}

func TestFacadeUnrelated(t *testing.T) {
	jobs := []Job{{Name: "j", Release: rr(0, 1), Weight: rr(1, 1)}}
	machines := []Machine{{Name: "a"}, {Name: "b"}}
	cost := [][]*big.Rat{{rr(2, 1)}, {nil}}
	inst, err := NewUnrelated(jobs, machines, cost)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinMaxWeightedFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective.Cmp(rr(2, 1)) != 0 {
		t.Errorf("objective = %v, want 2", res.Objective)
	}
}

func TestFacadeOnlinePolicies(t *testing.T) {
	cfg := workload.Default()
	cfg.Jobs = 4
	inst := workload.MustGenerate(cfg)
	for _, mk := range []func() OnlinePolicy{
		NewFCFS, NewMCT, NewSRPT, NewGreedyWeightedFlow, NewOnlineMWF,
	} {
		p := mk()
		res, err := SimulateOnline(inst, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.MaxWeightedFlow.Sign() <= 0 {
			t.Errorf("%s: non-positive MWF", p.Name())
		}
	}
}
