package divflow_test

import (
	"fmt"
	"log"
	"math/big"

	"divflow"
)

// twoJobInstance builds the instance used by the examples: two requests
// against a replicated databank platform.
func twoJobInstance() *divflow.Instance {
	jobs := []divflow.Job{
		{
			Name:      "urgent",
			Release:   big.NewRat(0, 1),
			Weight:    big.NewRat(2, 1),
			Size:      big.NewRat(4, 1),
			Databanks: []string{"swissprot"},
		},
		{
			Name:    "batch",
			Release: big.NewRat(1, 1),
			Weight:  big.NewRat(1, 1),
			Size:    big.NewRat(6, 1),
		},
	}
	machines := []divflow.Machine{
		{Name: "fast", InverseSpeed: big.NewRat(1, 2), Databanks: []string{"swissprot"}},
		{Name: "slow", InverseSpeed: big.NewRat(1, 1)},
	}
	inst, err := divflow.NewInstance(jobs, machines)
	if err != nil {
		log.Fatal(err)
	}
	return inst
}

// ExampleMinMaxWeightedFlow solves Theorem 2's problem exactly.
func ExampleMinMaxWeightedFlow() {
	res, err := divflow.MinMaxWeightedFlow(twoJobInstance())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal max weighted flow:", res.Objective.RatString())
	fmt.Println("milestones considered:", res.NumMilestones)
	// Output:
	// optimal max weighted flow: 4
	// milestones considered: 1
}

// ExampleMinMakespan solves Theorem 1's problem exactly.
func ExampleMinMakespan() {
	res, err := divflow.MinMakespan(twoJobInstance())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal makespan:", res.Makespan.RatString())
	// Output:
	// optimal makespan: 11/3
}

// ExampleDeadlineFeasible decides Lemma 1's feasibility question.
func ExampleDeadlineFeasible() {
	inst := twoJobInstance()
	tight := []*big.Rat{big.NewRat(2, 1), big.NewRat(5, 1)}
	ok, _, err := divflow.DeadlineFeasible(inst, tight, divflow.Divisible)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deadlines (2, 5) feasible:", ok)
	impossible := []*big.Rat{big.NewRat(1, 1), big.NewRat(2, 1)}
	ok, _, err = divflow.DeadlineFeasible(inst, impossible, divflow.Divisible)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deadlines (1, 2) feasible:", ok)
	// Output:
	// deadlines (2, 5) feasible: true
	// deadlines (1, 2) feasible: false
}

// ExampleSimulateOnline replays an instance through the online adaptation
// of the offline algorithm (jobs are revealed at their release dates).
func ExampleSimulateOnline() {
	inst := twoJobInstance()
	res, err := divflow.SimulateOnline(inst, divflow.NewOnlineMWF())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("policy:", res.Policy)
	fmt.Println("max weighted flow:", res.MaxWeightedFlow.RatString())
	// Output:
	// policy: online-mwf
	// max weighted flow: 4
}

// ExampleMinMaxWeightedFlowPreemptive solves the Section 4.4 variant, in
// which a job may be interrupted but never runs on two machines at once.
func ExampleMinMaxWeightedFlowPreemptive() {
	res, err := divflow.MinMaxWeightedFlowPreemptive(twoJobInstance())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("preemptive optimum:", res.Objective.RatString())
	// Output:
	// preemptive optimum: 4
}
