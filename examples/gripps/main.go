// GriPPS end-to-end scenario: generate a synthetic protein platform, size
// incoming motif requests with the calibrated GriPPS cost model, and
// schedule them exactly for minimal max-stretch across a heterogeneous
// collection of databanks — the application workflow the paper's theory was
// built for.
//
//	go run ./examples/gripps
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand"

	"divflow"
	"divflow/internal/gripps"
)

func main() {
	// Two reference databanks of different sizes.
	swissprot := gripps.GenerateDatabank("swissprot", 400, 120, 1)
	pdb := gripps.GenerateDatabank("pdb", 150, 120, 2)

	// Calibrate the cost model on the larger bank with a reference motif
	// set mixing real PROSITE signatures (zinc fingers, P-loops, kinase
	// sites, ...) and random patterns (the model maps scan operations to
	// simulated seconds).
	rng := rand.New(rand.NewSource(3))
	reference := append(gripps.CompilePrositeLibrary(), gripps.RandomMotifSet(rng, 20)...)
	cm, _, err := gripps.Calibrate(swissprot, reference)
	if err != nil {
		log.Fatal(err)
	}

	// Five user requests: each is a motif set scanned against one bank.
	// The job size (in abstract work units) is the simulated scan time on
	// a unit-speed machine.
	type request struct {
		name   string
		bank   *gripps.Databank
		motifs int
		at     int64 // release date, seconds
		prio   int64
	}
	reqs := []request{
		{"alice-zinc-finger", swissprot, 12, 0, 1},
		{"bob-kinase", swissprot, 25, 5, 1},
		{"carol-rare-motif", pdb, 8, 8, 3},
		{"dave-bulk-scan", swissprot, 40, 10, 1},
		{"erin-pdb-survey", pdb, 20, 12, 2},
	}

	jobs := make([]divflow.Job, len(reqs))
	for k, rq := range reqs {
		motifs := gripps.RandomMotifSet(rng, rq.motifs)
		scan := gripps.Scan(rq.bank, motifs)
		seconds := cm.Time(scan)
		// Exact rational size from the simulated milliseconds.
		size := big.NewRat(int64(seconds*1000), 1000)
		jobs[k] = divflow.Job{
			Name:      rq.name,
			Release:   big.NewRat(rq.at, 1),
			Weight:    big.NewRat(rq.prio, 1),
			Size:      size,
			Databanks: []string{rq.bank.Name},
		}
		fmt.Printf("%-18s %3d motifs vs %-9s -> %8.2f s of work (%d matches)\n",
			rq.name, rq.motifs, rq.bank.Name, seconds, scan.Matches)
	}

	// Three servers; PDB is replicated on two of them, SWISS-PROT on two.
	machines := []divflow.Machine{
		{Name: "bigiron", InverseSpeed: big.NewRat(1, 4), Databanks: []string{"swissprot", "pdb"}},
		{Name: "midbox", InverseSpeed: big.NewRat(1, 2), Databanks: []string{"swissprot"}},
		{Name: "oldnode", InverseSpeed: big.NewRat(1, 1), Databanks: []string{"pdb"}},
	}

	inst, err := divflow.NewInstance(jobs, machines)
	if err != nil {
		log.Fatal(err)
	}
	// Max-stretch = max weighted flow with w_j = 1/W_j (Section 3).
	inst.WeightsForStretch()

	res, err := divflow.MinMaxWeightedFlow(inst)
	if err != nil {
		log.Fatal(err)
	}
	f, _ := res.Objective.Float64()
	fmt.Printf("\noptimal max stretch: %s (~%.4f)\n\n", res.Objective.RatString(), f)

	flows, err := res.Schedule.Flows(inst)
	if err != nil {
		log.Fatal(err)
	}
	cs := res.Schedule.Completions(inst.N())
	for j := range inst.Jobs {
		cf, _ := cs[j].Float64()
		ff, _ := flows[j].Float64()
		st := new(big.Rat).Quo(flows[j], inst.Jobs[j].Size)
		sf, _ := st.Float64()
		fmt.Printf("%-18s done at %8.2f s, flow %8.2f s, stretch %.4f\n",
			inst.Jobs[j].Name, cf, ff, sf)
	}
}
