// Online scheduling: jobs arrive over time and the scheduler does not know
// the future. This example replays one workload through several online
// policies — including the paper's online adaptation of the offline
// algorithm — and compares them to the clairvoyant offline optimum.
//
//	go run ./examples/online
package main

import (
	"fmt"
	"log"

	"divflow"
	"divflow/internal/workload"
)

func main() {
	cfg := workload.Default()
	cfg.Jobs = 6
	cfg.Machines = 3
	cfg.Databanks = 3
	cfg.Replication = 2
	cfg.MeanInterarrival = 3
	cfg.Seed = 7
	inst, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(inst)

	offline, err := divflow.MinMaxWeightedFlow(inst)
	if err != nil {
		log.Fatal(err)
	}
	optF, _ := offline.Objective.Float64()
	fmt.Printf("\nclairvoyant offline optimum (lower bound): %.4f\n\n", optF)

	policies := []divflow.OnlinePolicy{
		divflow.NewOnlineMWF(),
		divflow.NewMCT(),
		divflow.NewFCFS(),
		divflow.NewSRPT(),
		divflow.NewGreedyWeightedFlow(),
	}
	fmt.Printf("%-18s %12s %8s %12s\n", "policy", "max w-flow", "ratio", "preemptions")
	for _, p := range policies {
		res, err := divflow.SimulateOnline(inst, p)
		if err != nil {
			log.Fatal(err)
		}
		v, _ := res.MaxWeightedFlow.Float64()
		fmt.Printf("%-18s %12.4f %8.3f %12d\n", res.Policy, v, v/optF, res.Preemptions)
	}
	fmt.Println("\nThe online adaptation re-solves the exact offline problem at every")
	fmt.Println("event (release/completion), measuring each job's flow from its true")
	fmt.Println("submission date — the strategy sketched in the paper's conclusion.")
}
