// Preemptive vs divisible: Section 4.4 of the paper solves max weighted
// flow when jobs may be interrupted but never run on two machines at once.
// This example solves the same instance under both execution models,
// verifies both schedules with the exact validator, and shows the price of
// forbidding divisibility.
//
//	go run ./examples/preemptive
package main

import (
	"fmt"
	"log"
	"math/big"

	"divflow"
)

func main() {
	// One large urgent job and two small ones, two machines. Under the
	// divisible model the large job can use both machines at once; under
	// the preemptive model it cannot, which hurts its flow.
	jobs := []divflow.Job{
		{Name: "huge", Release: big.NewRat(0, 1), Weight: big.NewRat(4, 1), Size: big.NewRat(8, 1)},
		{Name: "mid", Release: big.NewRat(1, 1), Weight: big.NewRat(1, 1), Size: big.NewRat(3, 1)},
		{Name: "tiny", Release: big.NewRat(2, 1), Weight: big.NewRat(1, 1), Size: big.NewRat(1, 1)},
	}
	machines := []divflow.Machine{
		{Name: "m0", InverseSpeed: big.NewRat(1, 1)},
		{Name: "m1", InverseSpeed: big.NewRat(1, 1)},
	}
	inst, err := divflow.NewInstance(jobs, machines)
	if err != nil {
		log.Fatal(err)
	}

	div, err := divflow.MinMaxWeightedFlow(inst)
	if err != nil {
		log.Fatal(err)
	}
	pre, err := divflow.MinMaxWeightedFlowPreemptive(inst)
	if err != nil {
		log.Fatal(err)
	}

	if err := div.Schedule.Validate(inst, divflow.Divisible, nil); err != nil {
		log.Fatalf("divisible schedule invalid: %v", err)
	}
	if err := pre.Schedule.Validate(inst, divflow.Preemptive, nil); err != nil {
		log.Fatalf("preemptive schedule invalid: %v", err)
	}

	fmt.Printf("divisible  optimum: %s\n", div.Objective.RatString())
	fmt.Printf("preemptive optimum: %s\n", pre.Objective.RatString())
	gap := new(big.Rat).Sub(pre.Objective, div.Objective)
	fmt.Printf("price of non-divisibility: %s\n\n", gap.RatString())

	fmt.Println("divisible schedule (jobs may share machines in time):")
	fmt.Print(div.Schedule)
	fmt.Println("\npreemptive schedule (one machine per job at any instant):")
	fmt.Print(pre.Schedule)
	fmt.Println("\nBoth validated exactly against their execution model;")
	fmt.Println("the preemptive one was rebuilt with the Lawler–Labetoulle scheme.")
}
