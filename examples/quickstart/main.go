// Quickstart: build a small databank platform, solve the max-weighted-flow
// problem exactly, and print the optimal schedule.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/big"

	"divflow"
)

func main() {
	// Three motif-comparison requests against two databanks.
	jobs := []divflow.Job{
		{
			Name:      "urgent-query",
			Release:   big.NewRat(0, 1),
			Weight:    big.NewRat(3, 1), // high priority
			Size:      big.NewRat(6, 1), // Mflop
			Databanks: []string{"swissprot"},
		},
		{
			Name:      "batch-query",
			Release:   big.NewRat(0, 1),
			Weight:    big.NewRat(1, 1),
			Size:      big.NewRat(12, 1),
			Databanks: []string{"swissprot"},
		},
		{
			Name:      "pdb-scan",
			Release:   big.NewRat(4, 1),
			Weight:    big.NewRat(2, 1),
			Size:      big.NewRat(8, 1),
			Databanks: []string{"pdb"},
		},
	}
	// Two heterogeneous servers; only cluster-a hosts the PDB databank.
	machines := []divflow.Machine{
		{
			Name:         "cluster-a",
			InverseSpeed: big.NewRat(1, 2), // 2 Mflop/s
			Databanks:    []string{"swissprot", "pdb"},
		},
		{
			Name:         "cluster-b",
			InverseSpeed: big.NewRat(1, 1), // 1 Mflop/s
			Databanks:    []string{"swissprot"},
		},
	}

	inst, err := divflow.NewInstance(jobs, machines)
	if err != nil {
		log.Fatal(err)
	}

	res, err := divflow.MinMaxWeightedFlow(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal max weighted flow: %s\n", res.Objective.RatString())
	fmt.Printf("(found among %d milestones with %d exact LP solves)\n\n",
		res.NumMilestones, res.LPSolves)

	flows, err := res.Schedule.Flows(inst)
	if err != nil {
		log.Fatal(err)
	}
	for j := range inst.Jobs {
		wf := new(big.Rat).Mul(inst.Jobs[j].Weight, flows[j])
		fmt.Printf("%-14s flow %-8s weighted flow %s\n",
			inst.Jobs[j].Name, flows[j].RatString(), wf.RatString())
	}
	fmt.Println("\nschedule (per machine):")
	fmt.Print(res.Schedule)
}
