module divflow

go 1.22
