package divflow

import (
	"encoding/json"
	"math/big"
	"os"
	"testing"
)

// TestGoldenGripps3x2 pins the exact optimal values of the checked-in
// testdata instance end to end (JSON decoding -> solvers -> metrics). Any
// change to these values is a behavioural regression of the whole stack.
func TestGoldenGripps3x2(t *testing.T) {
	data, err := os.ReadFile("testdata/gripps3x2.json")
	if err != nil {
		t.Fatal(err)
	}
	var inst Instance
	if err := json.Unmarshal(data, &inst); err != nil {
		t.Fatal(err)
	}

	mwf, err := MinMaxWeightedFlow(&inst)
	if err != nil {
		t.Fatal(err)
	}
	if want := big.NewRat(6, 1); mwf.Objective.Cmp(want) != 0 {
		t.Errorf("divisible MWF = %v, want 6", mwf.Objective)
	}
	if mwf.NumMilestones != 3 {
		t.Errorf("milestones = %d, want 3", mwf.NumMilestones)
	}

	mk, err := MinMakespan(&inst)
	if err != nil {
		t.Fatal(err)
	}
	if want := big.NewRat(26, 3); mk.Makespan.Cmp(want) != 0 {
		t.Errorf("makespan = %v, want 26/3", mk.Makespan)
	}

	pre, err := MinMakespanPreemptive(&inst)
	if err != nil {
		t.Fatal(err)
	}
	if want := big.NewRat(28, 3); pre.Makespan.Cmp(want) != 0 {
		t.Errorf("preemptive makespan = %v, want 28/3", pre.Makespan)
	}

	stretchInst := inst.Clone()
	stretchInst.WeightsForStretch()
	st, err := MinMaxWeightedFlowPreemptive(stretchInst)
	if err != nil {
		t.Fatal(err)
	}
	if want := big.NewRat(25, 32); st.Objective.Cmp(want) != 0 {
		t.Errorf("preemptive max stretch = %v, want 25/32", st.Objective)
	}
}
