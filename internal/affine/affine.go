// Package affine implements exact affine functions of a single parameter,
// used to represent deadlines d̄_j(F) = r_j + F/w_j and interval bounds that
// depend on the max-weighted-flow objective F (Section 4.3 of RR-5386).
//
// A Form holds value(F) = A + B·F with exact rational coefficients. Within a
// milestone range the relative order of all release dates and deadlines is
// constant, so forms can be ordered by evaluating them at any interior point
// of the range.
package affine

import (
	"fmt"
	"math/big"
)

// Form is the affine function F ↦ A + B·F.
type Form struct {
	A *big.Rat // constant coefficient
	B *big.Rat // slope in F
}

// Const returns the constant form a.
func Const(a *big.Rat) Form {
	return Form{A: new(big.Rat).Set(a), B: new(big.Rat)}
}

// New returns the form a + b·F.
func New(a, b *big.Rat) Form {
	return Form{A: new(big.Rat).Set(a), B: new(big.Rat).Set(b)}
}

// Eval returns A + B·f.
func (f Form) Eval(at *big.Rat) *big.Rat {
	v := new(big.Rat).Mul(f.B, at)
	return v.Add(v, f.A)
}

// Add returns f + g.
func (f Form) Add(g Form) Form {
	return Form{
		A: new(big.Rat).Add(f.A, g.A),
		B: new(big.Rat).Add(f.B, g.B),
	}
}

// Sub returns f − g.
func (f Form) Sub(g Form) Form {
	return Form{
		A: new(big.Rat).Sub(f.A, g.A),
		B: new(big.Rat).Sub(f.B, g.B),
	}
}

// Neg returns −f.
func (f Form) Neg() Form {
	return Form{A: new(big.Rat).Neg(f.A), B: new(big.Rat).Neg(f.B)}
}

// IsConst reports whether the slope is zero.
func (f Form) IsConst() bool { return f.B.Sign() == 0 }

// Equal reports coefficient-wise equality.
func (f Form) Equal(g Form) bool {
	return f.A.Cmp(g.A) == 0 && f.B.Cmp(g.B) == 0
}

// CmpAt compares f and g at the point at: -1 if f(at) < g(at), 0 if equal,
// +1 otherwise.
func (f Form) CmpAt(g Form, at *big.Rat) int {
	return f.Eval(at).Cmp(g.Eval(at))
}

// Intersection returns the unique F at which f and g coincide, or ok=false
// when the forms are parallel (equal slope).
func (f Form) Intersection(g Form) (at *big.Rat, ok bool) {
	db := new(big.Rat).Sub(f.B, g.B)
	if db.Sign() == 0 {
		return nil, false
	}
	da := new(big.Rat).Sub(g.A, f.A)
	return da.Quo(da, db), true
}

// String renders the form as "A + B*F" (or just "A" for constants), using
// exact rational notation.
func (f Form) String() string {
	if f.IsConst() {
		return f.A.RatString()
	}
	return fmt.Sprintf("%s + %s*F", f.A.RatString(), f.B.RatString())
}

// Range is an interval of objective values [Lo, Hi]; Hi == nil means +∞.
// Milestone ranges are produced by core.Milestones and consumed by the
// range-restricted LPs of Sections 4.3.2 and 4.4.
type Range struct {
	Lo *big.Rat
	Hi *big.Rat // nil for unbounded above
}

// Interior returns a point strictly inside the range (used to freeze the
// relative order of affine epochal times, which is constant on the open
// range). For a degenerate range (Lo == Hi) it returns Lo.
func (r Range) Interior() *big.Rat {
	if r.Hi == nil {
		return new(big.Rat).Add(r.Lo, big.NewRat(1, 1))
	}
	if r.Lo.Cmp(r.Hi) == 0 {
		return new(big.Rat).Set(r.Lo)
	}
	mid := new(big.Rat).Add(r.Lo, r.Hi)
	return mid.Quo(mid, big.NewRat(2, 1))
}

// Contains reports whether at lies in [Lo, Hi].
func (r Range) Contains(at *big.Rat) bool {
	if at.Cmp(r.Lo) < 0 {
		return false
	}
	return r.Hi == nil || at.Cmp(r.Hi) <= 0
}

// String renders the range.
func (r Range) String() string {
	if r.Hi == nil {
		return fmt.Sprintf("[%s, +inf)", r.Lo.RatString())
	}
	return fmt.Sprintf("[%s, %s]", r.Lo.RatString(), r.Hi.RatString())
}
