package affine

import (
	"math/big"
	"testing"
	"testing/quick"
)

func r(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestEval(t *testing.T) {
	f := New(r(3, 1), r(1, 2)) // 3 + F/2
	if got := f.Eval(r(4, 1)); got.Cmp(r(5, 1)) != 0 {
		t.Errorf("f(4) = %v, want 5", got)
	}
	if got := f.Eval(r(0, 1)); got.Cmp(r(3, 1)) != 0 {
		t.Errorf("f(0) = %v, want 3", got)
	}
}

func TestConstIsConst(t *testing.T) {
	c := Const(r(7, 3))
	if !c.IsConst() {
		t.Error("Const form should report IsConst")
	}
	if got := c.Eval(r(100, 1)); got.Cmp(r(7, 3)) != 0 {
		t.Errorf("const eval = %v, want 7/3", got)
	}
}

func TestAddSubNeg(t *testing.T) {
	f := New(r(1, 1), r(2, 1))
	g := New(r(3, 1), r(-1, 1))
	sum := f.Add(g)
	if !sum.Equal(New(r(4, 1), r(1, 1))) {
		t.Errorf("f+g = %v", sum)
	}
	diff := f.Sub(g)
	if !diff.Equal(New(r(-2, 1), r(3, 1))) {
		t.Errorf("f-g = %v", diff)
	}
	if !f.Neg().Equal(New(r(-1, 1), r(-2, 1))) {
		t.Errorf("-f = %v", f.Neg())
	}
}

func TestIntersection(t *testing.T) {
	f := New(r(0, 1), r(1, 1))  // F
	g := New(r(6, 1), r(-1, 1)) // 6 - F
	at, ok := f.Intersection(g)
	if !ok || at.Cmp(r(3, 1)) != 0 {
		t.Fatalf("intersection = %v, %v; want 3, true", at, ok)
	}
	// Parallel forms have no intersection.
	if _, ok := f.Intersection(New(r(5, 1), r(1, 1))); ok {
		t.Error("parallel forms should not intersect")
	}
}

func TestIntersectionProperty(t *testing.T) {
	check := func(a1, b1, a2, b2 int16) bool {
		f := New(r(int64(a1), 1), r(int64(b1), 1))
		g := New(r(int64(a2), 1), r(int64(b2), 1))
		at, ok := f.Intersection(g)
		if !ok {
			return b1 == b2
		}
		return f.Eval(at).Cmp(g.Eval(at)) == 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestCmpAt(t *testing.T) {
	f := New(r(0, 1), r(1, 1))
	g := Const(r(5, 1))
	if f.CmpAt(g, r(1, 1)) != -1 {
		t.Error("F < 5 at F=1")
	}
	if f.CmpAt(g, r(5, 1)) != 0 {
		t.Error("F == 5 at F=5")
	}
	if f.CmpAt(g, r(9, 1)) != 1 {
		t.Error("F > 5 at F=9")
	}
}

func TestRangeInterior(t *testing.T) {
	rg := Range{Lo: r(2, 1), Hi: r(4, 1)}
	mid := rg.Interior()
	if mid.Cmp(r(3, 1)) != 0 {
		t.Errorf("interior = %v, want 3", mid)
	}
	if !rg.Contains(mid) {
		t.Error("interior point must be contained")
	}
	unb := Range{Lo: r(10, 1)}
	p := unb.Interior()
	if p.Cmp(r(11, 1)) != 0 {
		t.Errorf("unbounded interior = %v, want 11", p)
	}
	deg := Range{Lo: r(5, 1), Hi: r(5, 1)}
	if deg.Interior().Cmp(r(5, 1)) != 0 {
		t.Error("degenerate interior should be Lo")
	}
}

func TestRangeContains(t *testing.T) {
	rg := Range{Lo: r(0, 1), Hi: r(1, 1)}
	for _, tc := range []struct {
		at   *big.Rat
		want bool
	}{
		{r(-1, 1), false}, {r(0, 1), true}, {r(1, 2), true}, {r(1, 1), true}, {r(2, 1), false},
	} {
		if got := rg.Contains(tc.at); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestString(t *testing.T) {
	f := New(r(3, 2), r(1, 4))
	if got := f.String(); got != "3/2 + 1/4*F" {
		t.Errorf("String = %q", got)
	}
	if got := Const(r(5, 1)).String(); got != "5" {
		t.Errorf("const String = %q", got)
	}
	rg := Range{Lo: r(1, 1), Hi: nil}
	if got := rg.String(); got != "[1, +inf)" {
		t.Errorf("range String = %q", got)
	}
}

// TestFormAliasing ensures constructors copy their inputs.
func TestFormAliasing(t *testing.T) {
	a := r(1, 1)
	f := Const(a)
	a.SetInt64(99)
	if f.A.Cmp(r(1, 1)) != 0 {
		t.Error("Const must copy its argument")
	}
}
