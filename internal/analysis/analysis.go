package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single package through its Pass
// and reports diagnostics; cross-package state (lock classes, function lock
// summaries) is collected ahead of every Run and shared through Pass.World.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package
	World    *World

	report func(Diagnostic)
}

// Reportf files a diagnostic unless a matching suppression comment covers the
// position. A suppression is `//divflow:<analyzer>-ok <reason>` on the same
// line or the line above; the reason is mandatory — a bare suppression is
// itself reported, so every silenced finding carries a written justification.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	where := p.Prog.Fset.Position(pos)
	marker := "divflow:" + p.Analyzer.Name + "-ok"
	for _, line := range []int{where.Line, where.Line - 1} {
		for _, c := range p.Pkg.commentsAt(where.Filename, line) {
			text := strings.TrimSpace(strings.TrimPrefix(c, "//"))
			rest, ok := strings.CutPrefix(text, marker)
			if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
				continue
			}
			if strings.TrimSpace(rest) == "" {
				p.report(Diagnostic{
					Pos:      where,
					Analyzer: p.Analyzer.Name,
					Message:  fmt.Sprintf("suppression %s requires a reason", marker),
				})
			}
			return
		}
	}
	p.report(Diagnostic{Pos: where, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{WallclockAnalyzer, RatAliasAnalyzer, LockOrderAnalyzer, EmitMuAnalyzer, FloatExactAnalyzer}
}

// ByName resolves a comma-separated analyzer list; empty means All.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a := byName[strings.TrimSpace(n)]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunAnalyzers collects lock facts over every loaded package (dependencies
// included — order annotations in internal/obs must be visible when server is
// checked), then runs each analyzer over the packages matching the load
// patterns. Diagnostics come back sorted by position.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) []Diagnostic {
	world := NewWorld()
	for _, pkg := range prog.Pkgs {
		CollectLocks(prog, pkg, world)
	}
	return runWithWorld(prog, world, analyzers)
}

func runWithWorld(prog *Program, world *World, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		if !pkg.Analyze {
			continue
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Prog:     prog,
				Pkg:      pkg,
				World:    world,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// staticCallee resolves a call to its compile-time *types.Func: a plain or
// package-qualified function, or a concrete method. Interface methods, func
// values, and builtins resolve to nil — dynamic dispatch is outside the
// analyzers' reach and they treat it as unknown.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal || types.IsInterface(sel.Recv()) {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Qualified identifier: pkg.Func.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcKey names a function for cross-package fact storage:
// "pkgpath.Recv.Name" for methods, "pkgpath.Name" otherwise. Keys are plain
// strings so they serialize into vetx fact files unchanged.
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			recv = n.Obj().Name() + "."
		}
	}
	return fn.Pkg().Path() + "." + recv + fn.Name()
}

// isBigRatPtr reports whether t is *math/big.Rat.
func isBigRatPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "math/big" && n.Obj().Name() == "Rat"
}

// pathIn reports whether pkgPath is one of the listed divflow subtrees,
// matching by suffix so analysistest packages can mirror real paths.
func pathIn(pkgPath string, suffixes ...string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) || strings.HasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}
