// Package analysistest runs the divflow analyzer suite over seeded testdata
// trees and checks the diagnostics against `// want "regexp"` expectations in
// the fixture sources — the x/tools analysistest contract, reimplemented on
// the in-repo framework since the real package is as unreachable as the rest
// of x/tools here.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"divflow/internal/analysis"
)

// want is one expectation: a regexp that must match a diagnostic (rendered as
// "analyzer: message") reported on its line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var (
	wantRE   = regexp.MustCompile(`//\s*want\s+(.+)$`)
	quotedRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

// Run loads root/src/<path> for each import path (dependencies first, exactly
// like LoadDirs), applies the analyzers, and fails the test for every
// diagnostic without a matching `// want` and every `// want` without a
// matching diagnostic.
func Run(t *testing.T, root string, analyzers []*analysis.Analyzer, paths ...string) {
	t.Helper()
	prog, err := analysis.LoadDirs(root, paths...)
	if err != nil {
		t.Fatalf("load testdata: %v", err)
	}
	wants := collectWants(t, prog)
	for _, d := range analysis.RunAnalyzers(prog, analyzers) {
		text := d.Analyzer + ": " + d.Message
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(text) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %s", w.file, w.line, w.raw)
		}
	}
}

// collectWants scans every fixture source file of the loaded packages for
// `// want "..."` comments. Each quoted (or backquoted) string after `want`
// is one expectation on that line.
func collectWants(t *testing.T, prog *analysis.Program) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range prog.Pkgs {
		ents, err := os.ReadDir(pkg.Dir)
		if err != nil {
			t.Fatalf("scan %s: %v", pkg.Dir, err)
		}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			file := filepath.Join(pkg.Dir, name)
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				m := wantRE.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					pat := strings.Trim(q, "`")
					if q[0] == '"' {
						if pat, err = strconv.Unquote(q); err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", file, i+1, q, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %s: %v", file, i+1, q, err)
					}
					wants = append(wants, &want{file: file, line: i + 1, re: re, raw: q})
				}
			}
		}
	}
	return wants
}
