package analysis

import (
	"go/ast"
	"go/types"
)

// FloatExactAnalyzer forbids converting exact quantities to floating point
// inside the decision paths: internal/core and internal/sim compute the
// paper's schedules in exact rational arithmetic, and a single .Float64()
// there silently reintroduces the rounding the whole design exists to avoid.
// The float layer belongs to internal/lp's proposal step (floats propose, the
// exact layer verifies) and to presentation code.
var FloatExactAnalyzer = &Analyzer{
	Name: "floatexact",
	Doc:  "forbid big.Rat.Float64/Float32 in internal/core and internal/sim decision paths",
	Run:  runFloatExact,
}

func runFloatExact(pass *Pass) {
	if !pathIn(pass.Pkg.Path, "internal/core", "internal/sim") {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "Float64" && sel.Sel.Name != "Float32" {
				return true
			}
			fn := staticCallee(pass.Pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math/big" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil || !isBigRatPtr(sig.Recv().Type()) {
				return true
			}
			pass.Reportf(call.Pos(), "%s on an exact quantity in a decision path; floats belong to internal/lp proposals and presentation code", sel.Sel.Name)
			return true
		})
	}
}
