// Package analysis is divflow's in-repo static-analysis framework: a small,
// dependency-free reimplementation of the go/analysis idea (analyzers, passes,
// diagnostics, cross-package facts) on top of the standard library's go/ast +
// go/types. The repo vendors nothing and the build environment has no module
// proxy, so golang.org/x/tools is off the table; everything here leans on two
// local facilities instead: `go list -export -deps -json` for package metadata
// plus compiled export data, and go/importer's gc importer to read that export
// data for out-of-module dependencies. Packages inside the module are always
// type-checked from source (analyzers need comments — suppressions and
// //divflow:locks annotations live there), in dependency order, so a single
// *types.Package identity is shared between a package and its importers and
// facts attach to stable symbol keys.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// ListedPackage is the subset of `go list -json` output the loader consumes.
type ListedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// Package is one source-checked package under analysis.
type Package struct {
	Path    string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Analyze bool // matched the load patterns (vs. loaded only as a dependency)

	comments map[string]map[int][]string // filename -> line -> comment texts
}

// Program is a loaded, type-checked set of packages plus the importer state
// needed to resolve everything they reference.
type Program struct {
	Fset *token.FileSet
	// Pkgs holds every source-checked package in dependency order (imports
	// first). Analyzers run over the ones with Analyze set; fact collection
	// runs over all of them.
	Pkgs []*Package

	srcPkgs     map[string]*types.Package
	exportFiles map[string]string
	gc          types.Importer
}

func newProgram() *Program {
	prog := &Program{
		Fset:        token.NewFileSet(),
		srcPkgs:     make(map[string]*types.Package),
		exportFiles: make(map[string]string),
	}
	prog.gc = importer.ForCompiler(prog.Fset, "gc", func(path string) (io.ReadCloser, error) {
		f := prog.exportFiles[path]
		if f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return prog
}

// Import implements types.Importer over the program: module packages resolve
// to their source-checked *types.Package, everything else comes from gc
// export data.
func (prog *Program) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := prog.srcPkgs[path]; p != nil {
		return p, nil
	}
	return prog.gc.Import(path)
}

// goList runs `go list -e -export -deps -json` in dir and decodes the stream.
func goList(dir string, patterns []string) ([]*ListedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*ListedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(ListedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load type-checks the packages matching patterns (plus their in-module
// dependencies) rooted at dir. `go list` emits dependencies before
// dependents, so a single in-order sweep checks each package after
// everything it imports.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	prog := newProgram()
	for _, lp := range listed {
		if lp.Export != "" {
			prog.exportFiles[lp.ImportPath] = lp.Export
		}
	}
	for _, lp := range listed {
		if lp.Standard || lp.Module == nil {
			continue // dependency: importable from export data
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath)
		}
		var files []string
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		pkg, err := prog.check(lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkg.Analyze = !lp.DepOnly
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	return prog, nil
}

// LoadDirs type-checks hand-rooted packages for the analysistest harness:
// import path p resolves to <root>/src/<p>. paths must be listed dependencies
// first. Imports that resolve to neither a listed path nor an already-loaded
// source package are fetched as export data via go list (stdlib and, in
// principle, anything else locally buildable).
func LoadDirs(root string, paths ...string) (*Program, error) {
	prog := newProgram()
	// Collect the out-of-tree imports of every testdata file up front so a
	// single `go list` call fetches all the export data needed.
	var external []string
	seen := map[string]bool{"unsafe": true}
	for _, p := range paths {
		seen[p] = true
	}
	for _, p := range paths {
		files, err := goFilesIn(filepath.Join(root, "src", filepath.FromSlash(p)))
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			af, err := parser.ParseFile(token.NewFileSet(), f, nil, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, imp := range af.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if !seen[path] {
					seen[path] = true
					external = append(external, path)
				}
			}
		}
	}
	if len(external) > 0 {
		listed, err := goList(root, external)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.Export != "" {
				prog.exportFiles[lp.ImportPath] = lp.Export
			}
		}
	}
	for _, p := range paths {
		dir := filepath.Join(root, "src", filepath.FromSlash(p))
		files, err := goFilesIn(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := prog.check(p, dir, files)
		if err != nil {
			return nil, err
		}
		pkg.Analyze = true
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	return prog, nil
}

func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

// check parses and type-checks one package from source and registers it for
// import by later packages.
func (prog *Program) check(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, f := range filenames {
		af, err := parser.ParseFile(prog.Fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: prog}
	tpkg, err := conf.Check(path, prog.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	pkg.buildCommentIndex(prog.Fset)
	prog.srcPkgs[path] = tpkg
	return pkg, nil
}

// buildCommentIndex records every comment by (file, line) so suppression and
// annotation lookups are O(1) at report time.
func (pkg *Package) buildCommentIndex(fset *token.FileSet) {
	pkg.comments = make(map[string]map[int][]string)
	for _, f := range pkg.Files {
		var byLine map[int][]string
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Slash)
				if byLine == nil {
					byLine = make(map[int][]string)
					pkg.comments[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], c.Text)
			}
		}
	}
}

// commentsAt returns the comment texts on the given file line.
func (pkg *Package) commentsAt(filename string, line int) []string {
	return pkg.comments[filename][line]
}
