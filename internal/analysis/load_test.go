package analysis

import (
	"path/filepath"
	"runtime"
	"testing"
)

// repoRoot walks up from this file to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

func TestLoadModule(t *testing.T) {
	prog, err := Load(repoRoot(t), "divflow/internal/server")
	if err != nil {
		t.Fatal(err)
	}
	var server *Package
	for _, pkg := range prog.Pkgs {
		if pkg.Path == "divflow/internal/server" {
			server = pkg
		}
	}
	if server == nil {
		t.Fatal("server package not loaded")
	}
	if !server.Analyze {
		t.Error("server package should be marked Analyze")
	}
	// Dependencies load from source and share identity with the importer's
	// view, so cross-package symbol facts can key off types.Object.
	var obsLoaded bool
	for _, pkg := range prog.Pkgs {
		if pkg.Path == "divflow/internal/obs" {
			obsLoaded = true
			if pkg.Analyze {
				t.Error("obs loaded as dependency should not be marked Analyze")
			}
			if got, _ := prog.Import("divflow/internal/obs"); got != pkg.Types {
				t.Error("importer does not share source-checked package identity")
			}
		}
	}
	if !obsLoaded {
		t.Error("in-module dependency obs not source-loaded")
	}
	// Stdlib resolves through export data with no network.
	big, err := prog.Import("math/big")
	if err != nil {
		t.Fatalf("import math/big: %v", err)
	}
	if big.Scope().Lookup("Rat") == nil {
		t.Error("math/big export data missing Rat")
	}
}
