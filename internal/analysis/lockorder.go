package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// sortedKeys returns a map's keys in deterministic order, for stable
// diagnostics.
func sortedKeys(m map[string]bool) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// LockOrderAnalyzer enforces the fleet's declared lock order. Every annotated
// mutex belongs to a class, classes form a partial order through their
// `before=` edges (reshard outermost, the durability mu and the obs journal
// innermost, shard mus strictly ascending by idx), and this pass interprets
// each function body against that order: a Lock (direct, or transitively via
// any statically-resolvable callee — callee acquire-sets are cross-package
// facts) while holding a class that the order does not put first is a
// diagnostic, and acquiring a second instance of the same class is reserved
// for the blessed `ascending=` helpers.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "enforce the declared mutex order (//divflow:locks annotations): ascending shard mus via blessed helpers only, no inverted acquisitions",
	Run:  func(pass *Pass) { runLockChecks(pass, true) },
}

// EmitMuAnalyzer enforces held-lock contracts at call sites: a function
// annotated `requires=<class>` — every obs journal emission helper tagged
// with a shard, and every "callers hold sh.mu" helper — may only be called
// where the interpreter can see that class held. This is PR 6's "all
// emission sites hold the shard mu" rule, mechanized.
var EmitMuAnalyzer = &Analyzer{
	Name: "emitmu",
	Doc:  "require //divflow:locks requires=<class> functions (obs emission sites included) to be called with the class held",
	Run:  func(pass *Pass) { runLockChecks(pass, false) },
}

func runLockChecks(pass *Pass, orderMode bool) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			fl := pass.World.Funcs[funcKey(obj)]
			if orderMode && fl != nil && fl.Boundary != "" {
				// A message-boundary handler serves exactly one shard; in a
				// distributed fleet a second instance of any class would live
				// in another process, so even blessed multi-instance code is
				// out of reach for it.
				for _, c := range sortedKeys(fl.AscendingReach) {
					pass.Reportf(fd.Pos(), "boundary=%s handler %s reaches ascending=%s code; a handler must never hold a second %s instance (another shard's mu)",
						fl.Boundary, fd.Name.Name, c, c)
				}
			}
			checkFuncBody(pass, pass.World, fd.Body, fl, orderMode)
		}
	}
}
