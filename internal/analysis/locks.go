package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lock annotations. A mutex field joins a *lock class* via a comment in its
// doc or trailing position:
//
//	//divflow:locks name=shard before=topo
//	mu sync.Mutex
//
// `name` declares the class; `before` lists classes that may be acquired
// while this one is held (the declared order is the transitive closure of
// these edges). Functions carry their lock contracts the same way, on the
// declaration's doc comment:
//
//	//divflow:locks requires=shard ascending=backlog
//
// `requires` = classes the caller must already hold; `ascending` = classes
// the function is blessed to acquire more than one instance of (ascending by
// shard idx — the annotation is the reviewed promise, the analyzer enforces
// that unblessed code never double-acquires). A function literal invoked
// under locks can carry the same annotation on the line above the literal.
//
// `boundary=<name>` marks a function as a message-boundary handler (the
// shardlink RPC services): it runs against exactly one shard and must never
// hold two instances of a class at once — not even through a blessed callee —
// because in a distributed fleet the second instance would live in another
// process. lockorder enforces this as reachability: a boundary function whose
// transitive call graph contains any `ascending=` blessing is a diagnostic.
//
// Everything collected here is keyed by plain strings (class names,
// "pkgpath.Recv.Name" function keys) so it serializes into vet fact files
// and crosses package boundaries intact.

// FuncLocks is the exported lock fact for one function: its annotation plus
// the transitive set of classes it may acquire.
type FuncLocks struct {
	Acquires  map[string]bool // classes this function (or any callee) may lock
	Requires  []string        // classes that must be held on entry
	Ascending map[string]bool // classes blessed for multi-instance acquisition
	// Boundary names the message boundary this function is a handler of
	// ("shardlink"); boundary handlers must stay single-instance per class.
	Boundary string
	// AscendingReach is the transitive closure of Ascending over the call
	// graph: classes for which this function — or anything it calls — is
	// blessed to hold a second instance. Boundary handlers must keep it
	// empty.
	AscendingReach map[string]bool
}

// World is the cross-package fact store shared by all passes.
type World struct {
	// FieldClass maps "pkgpath.Type.Field" to a lock class name.
	FieldClass map[string]string
	// Before holds the declared direct order edges: Before[a][b] means b may
	// be acquired while a is held.
	Before map[string]map[string]bool
	// Funcs maps funcKey to its lock fact.
	Funcs map[string]*FuncLocks

	orderMemo map[[2]string]bool
}

func NewWorld() *World {
	return &World{
		FieldClass: make(map[string]string),
		Before:     make(map[string]map[string]bool),
		Funcs:      make(map[string]*FuncLocks),
		orderMemo:  make(map[[2]string]bool),
	}
}

// orderedBefore reports whether the declared order admits acquiring b while a
// is held (a path a -> ... -> b in the Before graph).
func (w *World) orderedBefore(a, b string) bool {
	key := [2]string{a, b}
	if v, ok := w.orderMemo[key]; ok {
		return v
	}
	w.orderMemo[key] = false // cycle guard
	ok := false
	for next := range w.Before[a] {
		if next == b || w.orderedBefore(next, b) {
			ok = true
			break
		}
	}
	w.orderMemo[key] = ok
	return ok
}

// parseLocksAnnotation extracts the k=v pairs from a `//divflow:locks ...`
// comment, or nil if the comment is not one.
func parseLocksAnnotation(comment string) map[string]string {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(text, "divflow:locks")
	if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
		return nil
	}
	kv := make(map[string]string)
	for _, f := range strings.Fields(rest) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		kv[k] = v
	}
	return kv
}

// annotationFor finds a //divflow:locks annotation in a comment group.
func annotationFor(cg *ast.CommentGroup) map[string]string {
	if cg == nil {
		return nil
	}
	for _, c := range cg.List {
		if kv := parseLocksAnnotation(c.Text); kv != nil {
			return kv
		}
	}
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// CollectLocks gathers lock classes and function lock facts from one package
// into the world. Dependencies must be collected first: transitive acquire
// sets pull callee summaries from the world as they go, with an in-package
// fixpoint for mutual recursion.
func CollectLocks(prog *Program, pkg *Package, world *World) {
	// Pass 1: annotated mutex fields declare classes and order edges.
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				kv := annotationFor(field.Doc)
				if kv == nil {
					kv = annotationFor(field.Comment)
				}
				if kv == nil || kv["name"] == "" {
					continue
				}
				class := kv["name"]
				if world.Before[class] == nil {
					world.Before[class] = make(map[string]bool)
				}
				for _, b := range splitList(kv["before"]) {
					world.Before[class][b] = true
				}
				for _, name := range field.Names {
					world.FieldClass[pkg.Path+"."+ts.Name.Name+"."+name.Name] = class
				}
			}
			return true
		})
	}

	// Pass 2: function annotations + direct acquisitions + call edges.
	type funcInfo struct {
		fl      *FuncLocks
		callees []string
	}
	var infos []*funcInfo
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			key := funcKey(obj)
			if key == "" {
				continue
			}
			fl := &FuncLocks{Acquires: make(map[string]bool), Ascending: make(map[string]bool),
				AscendingReach: make(map[string]bool)}
			if kv := annotationFor(fd.Doc); kv != nil {
				fl.Requires = splitList(kv["requires"])
				for _, c := range splitList(kv["ascending"]) {
					fl.Ascending[c] = true
					fl.AscendingReach[c] = true
				}
				fl.Boundary = kv["boundary"]
			}
			fi := &funcInfo{fl: fl}
			// Scan the body for direct Lock/RLock on annotated classes and
			// for statically-resolvable callees. Goroutine bodies and
			// function literals are excluded: what a spawned goroutine or a
			// stored closure locks is not part of this function's
			// synchronous footprint (literals get their own contract via a
			// line annotation, checked at the literal).
			scanSync(fd.Body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				if class, op := lockOp(pkg, world, call); class != "" {
					if op == "Lock" || op == "RLock" {
						fl.Acquires[class] = true
					}
					return
				}
				if callee := staticCallee(pkg.Info, call); callee != nil {
					if k := funcKey(callee); k != "" {
						fi.callees = append(fi.callees, k)
					}
				}
			})
			world.Funcs[key] = fl
			infos = append(infos, fi)
		}
	}

	// Fixpoint over in-package call cycles; callees in already-collected
	// packages are final, so one extra sweep suffices for them.
	for changed := true; changed; {
		changed = false
		for _, fi := range infos {
			for _, k := range fi.callees {
				cf := world.Funcs[k]
				if cf == nil {
					continue
				}
				for c := range cf.Acquires {
					if !fi.fl.Acquires[c] {
						fi.fl.Acquires[c] = true
						changed = true
					}
				}
				for c := range cf.AscendingReach {
					if !fi.fl.AscendingReach[c] {
						fi.fl.AscendingReach[c] = true
						changed = true
					}
				}
			}
		}
	}
}

// scanSync walks a body in source order, skipping goroutine bodies and
// function-literal bodies.
func scanSync(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			// Arguments evaluate synchronously; the call itself does not.
			for _, arg := range n.Call.Args {
				scanSync(arg, visit)
			}
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// lockOp classifies a call as a mutex operation on an annotated lock class.
// It returns the class and the method name (Lock/RLock/Unlock/RUnlock), or
// "" when the call is anything else.
func lockOp(pkg *Package, world *World, call *ast.CallExpr) (class, op string) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch fun.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	sel, ok := pkg.Info.Selections[fun]
	if !ok || sel.Kind() != types.MethodVal {
		return "", ""
	}
	fn, ok := sel.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	// The receiver expression must be a selection of an annotated field:
	// owner.mu.Lock() (possibly through intermediate selectors).
	fieldSel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fsel, ok := pkg.Info.Selections[fieldSel]
	if !ok || fsel.Kind() != types.FieldVal {
		return "", ""
	}
	field, ok := fsel.Obj().(*types.Var)
	if !ok {
		return "", ""
	}
	recv := fsel.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field.Name()
	return world.FieldClass[key], fun.Sel.Name
}

// heldSet is the abstract state: for each lock class, how many instances are
// held at a program point. The count (not a boolean) is what lets the checker
// track the blessed two-instance sections — steal's thief/donor pair, the
// all-shards sweeps — where one instance is released while a sibling of the
// same class stays held.
type heldSet map[string]int

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (h heldSet) names() string {
	if len(h) == 0 {
		return "nothing"
	}
	var ns []string
	for k := range h {
		ns = append(ns, k)
	}
	sort.Strings(ns)
	return strings.Join(ns, ",")
}

// lockChecker runs the held-set interpretation of one function body. Two
// analyzers drive it: lockorder reports ordering violations (orderMode),
// emitmu reports requires-contract violations at call sites.
type lockChecker struct {
	pass      *Pass
	world     *World
	fl        *FuncLocks // contract of the function being checked
	orderMode bool
}

// checkFuncBody interprets a function body starting from its annotated
// requires-set.
func checkFuncBody(pass *Pass, world *World, body *ast.BlockStmt, fl *FuncLocks, orderMode bool) {
	if fl == nil {
		fl = &FuncLocks{Acquires: map[string]bool{}, Ascending: map[string]bool{}}
	}
	ck := &lockChecker{pass: pass, world: world, fl: fl, orderMode: orderMode}
	held := make(heldSet)
	for _, r := range fl.Requires {
		held[r] = 1
	}
	ck.stmts(body.List, held)
}

// stmts interprets a statement list, mutating held in place; it reports
// whether control falls off the end (false = the list always terminates via
// return/panic/branch).
func (ck *lockChecker) stmts(list []ast.Stmt, held heldSet) bool {
	for _, s := range list {
		if !ck.stmt(s, held) {
			return false
		}
	}
	return true
}

// stmt interprets one statement; returns false when control does not continue
// past it.
func (ck *lockChecker) stmt(s ast.Stmt, held heldSet) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return ck.stmts(s.List, held)
	case *ast.LabeledStmt:
		return ck.stmt(s.Stmt, held)
	case *ast.ExprStmt:
		ck.expr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			ck.expr(e, held)
		}
		for _, e := range s.Lhs {
			ck.expr(e, held)
		}
	case *ast.IncDecStmt:
		ck.expr(s.X, held)
	case *ast.SendStmt:
		ck.expr(s.Chan, held)
		ck.expr(s.Value, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						ck.expr(v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			ck.expr(e, held)
		}
		return false
	case *ast.BranchStmt:
		// break/continue/goto: the state does not flow to the next statement
		// in this list.
		return false
	case *ast.DeferStmt:
		// A deferred Unlock keeps the class held to the end of the function
		// (the usual lock-guard idiom). Other deferred calls run at exit
		// under an unknowable held-set; only their argument expressions are
		// interpreted here.
		if class, op := lockOp(ck.pass.Pkg, ck.world, s.Call); class != "" && (op == "Unlock" || op == "RUnlock") {
			return true
		}
		for _, a := range s.Call.Args {
			ck.expr(a, held)
		}
	case *ast.GoStmt:
		// The goroutine body runs concurrently, holding nothing.
		for _, a := range s.Call.Args {
			ck.expr(a, held)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			ck.funcLit(lit)
		} else {
			ck.call(s.Call, make(heldSet))
		}
	case *ast.IfStmt:
		if s.Init != nil {
			ck.stmt(s.Init, held)
		}
		ck.expr(s.Cond, held)
		thenHeld := held.clone()
		thenLive := ck.stmts(s.Body.List, thenHeld)
		elseHeld := held.clone()
		elseLive := true
		if s.Else != nil {
			elseLive = ck.stmt(s.Else, elseHeld)
		}
		mergeInto(held, thenHeld, thenLive, elseHeld, elseLive)
		return thenLive || elseLive
	case *ast.ForStmt:
		if s.Init != nil {
			ck.stmt(s.Init, held)
		}
		if s.Cond != nil {
			ck.expr(s.Cond, held)
		}
		bodyHeld := held.clone()
		ck.stmts(s.Body.List, bodyHeld)
		if s.Post != nil {
			ck.stmt(s.Post, bodyHeld)
		}
		ck.loopCarry(s.Body.Lbrace, held, bodyHeld)
	case *ast.RangeStmt:
		ck.expr(s.X, held)
		bodyHeld := held.clone()
		ck.stmts(s.Body.List, bodyHeld)
		ck.loopCarry(s.Body.Lbrace, held, bodyHeld)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		ck.branches(s, held)
	}
	return true
}

// loopCarry propagates a loop body's net lock effect. A class acquired in
// the body and still held at its end stays held after the loop — and because
// the body may run again, that is instance-after-instance acquisition, which
// only functions blessed `ascending=<class>` may do (the all-shards lock
// sweep in snapshotLocked and Reshard). A class the body releases (the
// matching unlock-descending sweep) is no longer held after the loop.
func (ck *lockChecker) loopCarry(pos token.Pos, held, bodyHeld heldSet) {
	for c, n := range bodyHeld {
		if n > held[c] && ck.orderMode && !ck.fl.Ascending[c] {
			ck.pass.Reportf(pos, "loop acquires %s instance per iteration without //divflow:locks ascending=%s blessing", c, c)
		}
	}
	for c := range held {
		if bodyHeld[c] == 0 {
			delete(held, c)
		}
	}
	for c, n := range bodyHeld {
		if n > 0 {
			held[c] = n
		}
	}
}

// branches interprets switch/type-switch/select: each case starts from the
// incoming state; the continuation keeps what every live exit (and the
// no-case-taken path, absent a default) agrees is held.
func (ck *lockChecker) branches(s ast.Stmt, held heldSet) {
	var cases [][]ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			ck.stmt(s.Init, held)
		}
		if s.Tag != nil {
			ck.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				ck.expr(e, held)
			}
			cases = append(cases, cc.Body)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			ck.stmt(s.Init, held)
		}
		ck.stmt(s.Assign, held)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			cases = append(cases, cc.Body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
			} else {
				ck.stmt(cc.Comm, held.clone())
			}
			cases = append(cases, cc.Body)
		}
	}
	exits := make([]heldSet, 0, len(cases)+1)
	for _, body := range cases {
		h := held.clone()
		if ck.stmts(body, h) {
			exits = append(exits, h)
		}
	}
	if !hasDefault {
		exits = append(exits, held.clone())
	}
	intersectInto(held, exits)
}

func mergeInto(held, a heldSet, aLive bool, b heldSet, bLive bool) {
	var exits []heldSet
	if aLive {
		exits = append(exits, a)
	}
	if bLive {
		exits = append(exits, b)
	}
	intersectInto(held, exits)
}

// intersectInto replaces held with the intersection of the exit states (the
// conservative continuation: a class counts as held only if every live path
// holds it).
func intersectInto(held heldSet, exits []heldSet) {
	if len(exits) == 0 {
		return // no live exit: the continuation is unreachable, keep as-is
	}
	for k := range held {
		delete(held, k)
	}
	for k, n := range exits[0] {
		for _, e := range exits[1:] {
			if e[k] < n {
				n = e[k]
			}
		}
		if n > 0 {
			held[k] = n
		}
	}
}

// expr interprets an expression for lock effects, in evaluation order where
// it matters.
func (ck *lockChecker) expr(e ast.Expr, held heldSet) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		if lit, ok := ast.Unparen(e.Fun).(*ast.FuncLit); ok {
			// Immediately-invoked literal: runs here, under the current
			// held-set (plus whatever its own annotation adds).
			for _, a := range e.Args {
				ck.expr(a, held)
			}
			ck.funcLitWith(lit, held)
			return
		}
		ck.expr(e.Fun, held)
		for _, a := range e.Args {
			ck.expr(a, held)
		}
		ck.call(e, held)
	case *ast.FuncLit:
		ck.funcLit(e)
	case *ast.ParenExpr:
		ck.expr(e.X, held)
	case *ast.SelectorExpr:
		ck.expr(e.X, held)
	case *ast.IndexExpr:
		ck.expr(e.X, held)
		ck.expr(e.Index, held)
	case *ast.SliceExpr:
		ck.expr(e.X, held)
		ck.expr(e.Low, held)
		ck.expr(e.High, held)
		ck.expr(e.Max, held)
	case *ast.StarExpr:
		ck.expr(e.X, held)
	case *ast.UnaryExpr:
		ck.expr(e.X, held)
	case *ast.BinaryExpr:
		ck.expr(e.X, held)
		ck.expr(e.Y, held)
	case *ast.KeyValueExpr:
		ck.expr(e.Key, held)
		ck.expr(e.Value, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			ck.expr(el, held)
		}
	case *ast.TypeAssertExpr:
		ck.expr(e.X, held)
	}
}

// call applies the lock effects and contract checks of one call.
func (ck *lockChecker) call(call *ast.CallExpr, held heldSet) {
	if class, op := lockOp(ck.pass.Pkg, ck.world, call); class != "" {
		switch op {
		case "Lock", "RLock":
			ck.acquire(call.Pos(), class, held)
			held[class]++
		case "Unlock", "RUnlock":
			if held[class] > 1 {
				held[class]--
			} else {
				delete(held, class)
			}
		}
		return
	}
	callee := staticCallee(ck.pass.Pkg.Info, call)
	if callee == nil {
		return
	}
	fl := ck.world.Funcs[funcKey(callee)]
	if fl == nil {
		return
	}
	if !ck.orderMode {
		for _, r := range fl.Requires {
			if held[r] == 0 {
				ck.pass.Reportf(call.Pos(), "call to %s requires %s held (holding %s)", callee.Name(), r, held.names())
			}
		}
		return
	}
	for c := range fl.Acquires {
		if held[c] > 0 {
			if !ck.fl.Ascending[c] && !fl.Ascending[c] {
				ck.pass.Reportf(call.Pos(), "call to %s may acquire %s while %s is already held (no ascending blessing)", callee.Name(), c, c)
			}
			continue
		}
		ck.checkOrder(call.Pos(), c, held, "call to "+callee.Name()+" may acquire")
	}
}

// acquire checks one direct Lock/RLock against the held-set and the declared
// order.
func (ck *lockChecker) acquire(pos token.Pos, class string, held heldSet) {
	if !ck.orderMode {
		return
	}
	if held[class] > 0 {
		if !ck.fl.Ascending[class] {
			ck.pass.Reportf(pos, "re-acquires %s while already held; only //divflow:locks ascending=%s helpers may hold two instances", class, class)
		}
		return
	}
	ck.checkOrder(pos, class, held, "acquires")
}

func (ck *lockChecker) checkOrder(pos token.Pos, class string, held heldSet, verb string) {
	for h := range held {
		if h == class {
			continue
		}
		if !ck.world.orderedBefore(h, class) {
			ck.pass.Reportf(pos, "%s %s while holding %s, but the declared order does not allow %s under %s", verb, class, h, class, h)
		}
	}
}

// funcLit analyzes a function literal under its own annotated contract (the
// `//divflow:locks` comment on the literal's first line or the line above),
// or an empty held-set when unannotated.
func (ck *lockChecker) funcLit(lit *ast.FuncLit) {
	ck.funcLitWith(lit, make(heldSet))
}

func (ck *lockChecker) funcLitWith(lit *ast.FuncLit, outer heldSet) {
	fl := &FuncLocks{Acquires: map[string]bool{}, Ascending: map[string]bool{}}
	pos := ck.pass.Prog.Fset.Position(lit.Pos())
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, c := range ck.pass.Pkg.commentsAt(pos.Filename, line) {
			if kv := parseLocksAnnotation(c); kv != nil {
				fl.Requires = splitList(kv["requires"])
				for _, a := range splitList(kv["ascending"]) {
					fl.Ascending[a] = true
				}
			}
		}
	}
	held := outer.clone()
	for _, r := range fl.Requires {
		if held[r] == 0 {
			held[r] = 1
		}
	}
	sub := &lockChecker{pass: ck.pass, world: ck.world, fl: fl, orderMode: ck.orderMode}
	sub.stmts(lit.Body.List, held)
}
