package analysis

import (
	"go/ast"
	"go/types"
)

// RatAliasAnalyzer flags *big.Rat values that arrive through a field, map,
// slice, or parameter and then escape — returned, or stored into another
// structure — without an intervening copy. Rats are mutable; an aliased one
// crossing an ownership boundary (caller to record, record to snapshot) is
// exactly the bug class the PR 3 statsSnapshot fix and the PR 4 migration
// machinery closed by hand. Any call result (new(big.Rat).Set(x), copyRat(x),
// engine accessors that copy) counts as a fresh value; locals are tracked by
// a single forward pass so `tmp := rec.size; other.f = tmp` is still caught.
var RatAliasAnalyzer = &Analyzer{
	Name: "ratalias",
	Doc:  "forbid returning or storing an aliased *big.Rat (from field/map/parameter) without a copy in internal/sim, internal/server, internal/model",
	Run:  runRatAlias,
}

func runRatAlias(pass *Pass) {
	if !pathIn(pass.Pkg.Path, "internal/sim", "internal/server", "internal/model") {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRatAliases(pass, fd)
		}
	}
}

// checkRatAliases runs the taint pass over one function.
func checkRatAliases(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	// Parameters (and the receiver) are incoming aliases by definition.
	params := make(map[*types.Var]bool)
	sig, _ := info.Defs[fd.Name].Type().(*types.Signature)
	if sig != nil {
		if r := sig.Recv(); r != nil {
			params[r] = true
		}
		for i := 0; i < sig.Params().Len(); i++ {
			params[sig.Params().At(i)] = true
		}
	}
	// taint maps a local *big.Rat variable to the description of the alias it
	// currently carries ("" / absent = owned or unknown-but-fresh).
	taint := make(map[*types.Var]string)

	// source classifies an expression: where would this *big.Rat alias from?
	var source func(e ast.Expr) string
	source = func(e ast.Expr) string {
		e = ast.Unparen(e)
		if t, ok := info.Types[e]; !ok || !isBigRatPtr(t.Type) {
			return ""
		}
		switch e := e.(type) {
		case *ast.Ident:
			v, ok := info.Uses[e].(*types.Var)
			if !ok {
				return ""
			}
			if params[v] {
				return "parameter " + v.Name()
			}
			return taint[v]
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				return "field " + sel.Obj().Name()
			}
		case *ast.IndexExpr:
			switch info.Types[e.X].Type.Underlying().(type) {
			case *types.Map:
				return "map element"
			case *types.Slice, *types.Array:
				return "slice element"
			}
		}
		return ""
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				// Track taint through locals.
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					v := localVar(info, id)
					if v != nil && isBigRatPtr(v.Type()) {
						if rhs != nil {
							taint[v] = source(rhs)
						} else {
							delete(taint, v) // multi-value: call result, fresh
						}
					}
					continue
				}
				// Storing into a field, map, or slice element.
				if rhs == nil {
					continue
				}
				if src := source(rhs); src != "" && storesIntoStructure(info, lhs) {
					pass.Reportf(n.Pos(), "stores *big.Rat aliased from %s without a copy; wrap it in new(big.Rat).Set(...)", src)
				}
			}
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				if src := source(e); src != "" {
					pass.Reportf(e.Pos(), "returns *big.Rat aliased from %s without a copy; wrap it in new(big.Rat).Set(...)", src)
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				val := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if src := source(val); src != "" {
					pass.Reportf(val.Pos(), "stores *big.Rat aliased from %s into a composite literal without a copy; wrap it in new(big.Rat).Set(...)", src)
				}
			}
		}
		return true
	})
}

// localVar resolves an identifier to a function-local variable (Defs for :=,
// Uses for plain assignment); nil for blank, globals, and everything else.
func localVar(info *types.Info, id *ast.Ident) *types.Var {
	if id.Name == "_" {
		return nil
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Parent() == nil || v.Parent().Parent() == types.Universe {
		return nil
	}
	return v
}

// storesIntoStructure reports whether the assignment target is a field
// selector or an index expression — a store that gives the alias a second
// owner.
func storesIntoStructure(info *types.Info, lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		sel, ok := info.Selections[lhs]
		return ok && sel.Kind() == types.FieldVal
	case *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	}
	return false
}
