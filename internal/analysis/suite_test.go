package analysis_test

import (
	"bytes"
	"encoding/gob"
	"path/filepath"
	"reflect"
	"testing"

	"divflow/internal/analysis"
	"divflow/internal/analysis/analysistest"
)

func testdata(t *testing.T) string {
	t.Helper()
	p, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func analyzers(t *testing.T, names string) []*analysis.Analyzer {
	t.Helper()
	as, err := analysis.ByName(names)
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func TestWallclock(t *testing.T) {
	analysistest.Run(t, testdata(t), analyzers(t, "wallclock"), "divflow/internal/wc")
}

func TestRatAlias(t *testing.T) {
	analysistest.Run(t, testdata(t), analyzers(t, "ratalias"), "divflow/internal/sim")
}

func TestFloatExact(t *testing.T) {
	analysistest.Run(t, testdata(t), analyzers(t, "floatexact"), "divflow/internal/core")
}

// TestLockCheckers exercises lockorder and emitmu together over a two-package
// fixture: the annotated journal mutex lives in the fixture obs package, so
// the Flush case only fires if Append's acquire-set propagates across the
// package boundary as a fact.
func TestLockCheckers(t *testing.T) {
	analysistest.Run(t, testdata(t), analyzers(t, "lockorder,emitmu"),
		"divflow/internal/obs", "divflow/internal/server")
}

// TestFuncLocksGob pins the serializability the vettool depends on: lock
// facts must survive the gob round-trip through vetx files with plain string
// keys.
func TestFuncLocksGob(t *testing.T) {
	in := map[string]*analysis.FuncLocks{
		"divflow/internal/obs.Journal.Append": {
			Acquires:  map[string]bool{"journal": true},
			Ascending: map[string]bool{},
		},
		"divflow/internal/server.shard.catchUp": {
			Acquires:  map[string]bool{"journal": true},
			Requires:  []string{"shard"},
			Ascending: map[string]bool{"backlog": true},
		},
		"divflow/internal/server.shardRPC.Submit": {
			Acquires:       map[string]bool{"shard": true},
			Ascending:      map[string]bool{},
			Boundary:       "shardlink",
			AscendingReach: map[string]bool{},
		},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]*analysis.FuncLocks)
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("gob round-trip mismatch:\n in: %#v\nout: %#v", in, out)
	}
}
