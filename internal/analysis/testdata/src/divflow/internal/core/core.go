// Package core seeds floatexact violations: exact quantities dropped to
// floating point inside a decision path.
package core

import "math/big"

func Ratio(r *big.Rat) float64 {
	f, _ := r.Float64() // want `floatexact: Float64 on an exact quantity in a decision path`
	return f
}

func Narrow(r *big.Rat) float32 {
	f, _ := r.Float32() // want `floatexact: Float32 on an exact quantity in a decision path`
	return f
}

func Exact(r *big.Rat) *big.Rat {
	return new(big.Rat).Set(r)
}
