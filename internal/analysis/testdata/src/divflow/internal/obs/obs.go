// Package obs mirrors the journal side of the real internal/obs: an
// annotated mutex class whose acquire-set must reach importing packages as a
// cross-package fact.
package obs

import "sync"

// Journal is the innermost lock class of the fixture order.
type Journal struct {
	mu sync.Mutex //divflow:locks name=journal
	n  int
}

// Append acquires the journal mu; importers learn that from the collected
// facts, not from this source.
func (j *Journal) Append() {
	j.mu.Lock()
	j.n++
	j.mu.Unlock()
}
