// Package server seeds lockorder and emitmu violations against the declared
// fixture order fleet → shard → journal, with the journal class imported
// from the obs package purely as a cross-package fact.
package server

import (
	"sync"

	"divflow/internal/obs"
)

type Shard struct {
	mu sync.Mutex //divflow:locks name=shard before=journal
	j  *obs.Journal
	n  int
}

type Fleet struct {
	mu     sync.Mutex //divflow:locks name=fleet before=shard
	shards []*Shard
}

// Box sits outside the declared order: no edge says journal may nest under
// it.
type Box struct {
	mu sync.Mutex //divflow:locks name=box
	j  *obs.Journal
}

// emit journals under the shard's mu.
//
//divflow:locks requires=shard
func (s *Shard) emit() {
	s.j.Append()
	s.n++
}

func (s *Shard) Emit() {
	s.mu.Lock()
	s.emit()
	s.mu.Unlock()
}

func (s *Shard) EmitUnlocked() {
	s.emit() // want `emitmu: call to emit requires shard held \(holding nothing\)`
}

func Inverted(f *Fleet, s *Shard) {
	s.mu.Lock()
	f.mu.Lock() // want `lockorder: acquires fleet while holding shard`
	f.mu.Unlock()
	s.mu.Unlock()
}

// Flush holds box over the journal append; without a box→journal edge the
// cross-package fact about Append must fire here.
func (b *Box) Flush() {
	b.mu.Lock()
	b.j.Append() // want `lockorder: call to Append may acquire journal while holding box`
	b.mu.Unlock()
}

// Sweep is not blessed ascending, so holding one shard mu per iteration into
// the next is a diagnostic.
func Sweep(f *Fleet) {
	f.mu.Lock()
	for _, s := range f.shards { // want `lockorder: loop acquires shard instance per iteration`
		s.mu.Lock()
	}
	f.mu.Unlock()
}

// SweepBlessed is the sanctioned all-shards form of the same loop.
//
//divflow:locks ascending=shard
func SweepBlessed(f *Fleet) {
	f.mu.Lock()
	for _, s := range f.shards {
		s.mu.Lock()
	}
	for _, s := range f.shards {
		s.mu.Unlock()
	}
	f.mu.Unlock()
}

// HandleSubmit is a well-behaved message-boundary handler: one shard, one
// mu, nothing blessed in reach.
//
//divflow:locks boundary=shardlink
func (s *Shard) HandleSubmit() {
	s.mu.Lock()
	s.emit()
	s.mu.Unlock()
}

// HandleSweep reaches the blessed all-shards sweep through a call, which a
// boundary handler may never do: the second shard instance would live in
// another process.
//
//divflow:locks boundary=shardlink
func HandleSweep(f *Fleet) { // want `lockorder: boundary=shardlink handler HandleSweep reaches ascending=shard code`
	SweepBlessed(f)
}

// HandleGreedy is itself blessed, which is just as illegal at the boundary.
//
//divflow:locks boundary=shardlink ascending=shard
func HandleGreedy(f *Fleet) { // want `lockorder: boundary=shardlink handler HandleGreedy reaches ascending=shard code`
	f.mu.Lock()
	for _, s := range f.shards {
		s.mu.Lock()
	}
	for _, s := range f.shards {
		s.mu.Unlock()
	}
	f.mu.Unlock()
}
