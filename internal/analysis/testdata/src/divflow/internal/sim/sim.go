// Package sim seeds ratalias violations: *big.Rat values that arrive through
// a field, parameter, or element and escape — returned, stored, or packed
// into a composite literal — without a copy.
package sim

import "math/big"

type Job struct {
	Weight *big.Rat
	Size   *big.Rat
}

type View struct {
	W *big.Rat
}

func (j *Job) WeightView() *big.Rat {
	return j.Weight // want `ratalias: returns \*big\.Rat aliased from field Weight`
}

func (j *Job) WeightCopy() *big.Rat {
	return new(big.Rat).Set(j.Weight)
}

func Passthrough(r *big.Rat) *big.Rat {
	return r // want `ratalias: returns \*big\.Rat aliased from parameter r`
}

func Capture(j *Job, v *View) {
	v.W = j.Size // want `ratalias: stores \*big\.Rat aliased from field Size`
}

func CaptureLocal(j *Job, v *View) {
	w := j.Size
	v.W = w // want `ratalias: stores \*big\.Rat aliased from field Size`
}

func Pick(m map[int]*big.Rat) *big.Rat {
	return m[0] // want `ratalias: returns \*big\.Rat aliased from map element`
}

func Lit(j *Job) View {
	return View{W: j.Weight} // want `ratalias: stores \*big\.Rat aliased from field Weight into a composite literal`
}

func TransferOwnership(j *Job) *big.Rat {
	return j.Weight //divflow:ratalias-ok fixture: ownership transfer, the job is discarded
}
