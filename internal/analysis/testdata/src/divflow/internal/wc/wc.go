// Package wc seeds wallclock violations: direct wall-clock reads outside the
// clock/obs/telemetry allowlist, one justified suppression, and one bare
// suppression (which is itself a diagnostic).
package wc

import "time"

func Stamp() time.Time {
	return time.Now() // want `wallclock: time\.Now reads the wall clock`
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wallclock: time\.Since reads the wall clock`
}

func Nap() {
	time.Sleep(time.Millisecond) // want `wallclock: time\.Sleep reads the wall clock`
}

func Blessed() time.Time {
	//divflow:wallclock-ok fixture: annotates a log line, never steers a schedule
	return time.Now()
}

func Bare() time.Time {
	//divflow:wallclock-ok
	return time.Now() // want `wallclock: suppression divflow:wallclock-ok requires a reason`
}
