package analysis

import (
	"encoding/json"
	"os"
	"strings"
)

// Support for running one compiled unit under the `go vet -vettool` driver.
// The go command hands the tool a JSON config per package; sources are
// type-checked against the export data the build already produced, and
// cross-package lock facts travel through the driver's vetx fact files
// instead of the in-process world a standalone run builds.

// VetCfg mirrors the fields of the go command's vet config that the loader
// needs.
type VetCfg struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// ReadVetCfg parses a vet driver config file.
func ReadVetCfg(path string) (*VetCfg, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(VetCfg)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, err
	}
	return cfg, nil
}

// LoadVetUnit type-checks the single package a vet config describes, pulling
// every dependency (in-module ones included) from the export data the build
// system compiled.
func LoadVetUnit(cfg *VetCfg) (*Program, *Package, error) {
	prog := newProgram()
	for path, file := range cfg.PackageFile {
		prog.exportFiles[path] = file
	}
	for asWritten, actual := range cfg.ImportMap {
		if f := cfg.PackageFile[actual]; f != "" {
			prog.exportFiles[asWritten] = f
		}
	}
	var files []string
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			continue // the analyzers' contract: test files are out of scope
		}
		files = append(files, f)
	}
	pkg, err := prog.check(cfg.ImportPath, cfg.Dir, files)
	if err != nil {
		return nil, nil, err
	}
	pkg.Analyze = true
	prog.Pkgs = append(prog.Pkgs, pkg)
	return prog, pkg, nil
}

// RunVetUnit collects this package's lock facts into world (dependency facts
// must already be merged from vetx files) and runs the analyzers over it.
func RunVetUnit(prog *Program, pkg *Package, world *World, analyzers []*Analyzer) []Diagnostic {
	CollectLocks(prog, pkg, world)
	return runWithWorld(prog, world, analyzers)
}
