package analysis

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// WallclockAnalyzer forbids time.Now, time.Since, and time.Sleep outside the
// clock abstraction. The paper's P=1 trace-equivalence proofs and every
// virtual-clock test depend on scheduling decisions never observing the wall
// clock; the only sanctioned readers are the Clock implementations
// (clock.go), the observability layer (internal/obs), and telemetry.go —
// wall time there annotates events and histograms, it never steers a
// schedule. Everything else needs `//divflow:wallclock-ok <reason>`.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/time.Since/time.Sleep outside clock.go, internal/obs, and telemetry.go",
	Run:  runWallclock,
}

var wallclockForbidden = map[string]bool{"Now": true, "Since": true, "Sleep": true}

func runWallclock(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path, "internal/obs") {
		return
	}
	for _, f := range pass.Pkg.Files {
		base := filepath.Base(pass.Prog.Fset.Position(f.Pos()).Filename)
		if base == "clock.go" || base == "telemetry.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(pass.Pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallclockForbidden[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(), "time.%s reads the wall clock outside the clock/obs/telemetry allowlist; inject a Clock or nowFunc instead", fn.Name())
			return true
		})
	}
}
