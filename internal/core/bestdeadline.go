package core

import (
	"fmt"
	"math/big"
	"sort"

	"divflow/internal/affine"
	"divflow/internal/intervals"
	"divflow/internal/model"
	"divflow/internal/schedule"
)

// BestDeadline computes the exact minimum deadline for job k that keeps the
// instance deadline-feasible, holding every other job's deadline fixed (the
// entry deadlines[k] is ignored). It is the counter-offer half of admission
// control: when DeadlineFeasible rejects a requested deadline, BestDeadline
// names the earliest completion time the residual workload can still
// guarantee for the new job without breaking any admitted deadline.
//
// The search mirrors the milestone machinery of Theorem 2: job k's deadline
// is the affine form d̄_k(F) = F, so the candidate deadline is the LP
// objective itself. The epochal order of d̄_k against the constant release
// dates and deadlines changes only where F crosses one of them; between two
// consecutive crossings the interval structure is fixed, feasibility is
// monotone in F (a later deadline only loosens System (2)), and a binary
// search over the crossing ranges — each range solving one feasibility LP,
// warm-started from the previous range's optimal basis — finds the leftmost
// feasible range, whose minimal F is the exact global optimum.
//
// It returns (nil, nil) when no deadline works: the other jobs' deadlines
// are themselves infeasible once job k's work is added.
func BestDeadline(inst *model.Instance, deadlines []*big.Rat, k int, mode schedule.Model) (*big.Rat, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if len(deadlines) != inst.N() {
		return nil, fmt.Errorf("core: %d deadlines for %d jobs", len(deadlines), inst.N())
	}
	if k < 0 || k >= inst.N() {
		return nil, fmt.Errorf("core: job index %d out of range", k)
	}
	// A fixed window that is trivially impossible dooms every candidate F.
	for j, d := range deadlines {
		if j != k && d != nil && d.Cmp(inst.Jobs[j].Release) <= 0 {
			return nil, nil
		}
	}

	// Epochal times: every release, every fixed deadline, job k's affine
	// deadline d̄_k(F) = F, and the same horizon DeadlineFeasible uses so
	// deadline-free jobs always fit after the last release.
	fk := affine.New(new(big.Rat), big.NewRat(1, 1))
	var times []affine.Form
	horizon := new(big.Rat)
	for j := range inst.Jobs {
		times = append(times, affine.Const(inst.Jobs[j].Release))
		if inst.Jobs[j].Release.Cmp(horizon) > 0 {
			horizon.Set(inst.Jobs[j].Release)
		}
	}
	span := new(big.Rat)
	for j := range inst.Jobs {
		var best *big.Rat
		for _, i := range inst.EligibleMachines(j) {
			c, _ := inst.Cost(i, j)
			if best == nil || c.Cmp(best) < 0 {
				best = c
			}
		}
		span.Add(span, best)
	}
	horizon.Add(horizon, span)
	dls := make([]*affine.Form, inst.N())
	for j, d := range deadlines {
		if j == k {
			dls[j] = &fk
			continue
		}
		if d != nil {
			f := affine.Const(d)
			dls[j] = &f
			times = append(times, f)
			if d.Cmp(horizon) > 0 {
				horizon.Set(d)
			}
		}
	}
	times = append(times, affine.Const(horizon))

	// Milestones of this search: the values of F where d̄_k(F) = F crosses a
	// constant epochal time τ, i.e. F = τ. F must exceed job k's release (a
	// positive-cost job cannot finish at its release), so the candidate
	// ranges partition (r_k, +∞).
	rk := inst.Jobs[k].Release
	seen := make(map[string]bool)
	var cross []*big.Rat
	for _, f := range times {
		if at, ok := fk.Intersection(f); ok && at.Cmp(rk) > 0 {
			if key := at.RatString(); !seen[key] {
				seen[key] = true
				cross = append(cross, at)
			}
		}
	}
	sort.Slice(cross, func(a, b int) bool { return cross[a].Cmp(cross[b]) < 0 })
	ranges := make([]affine.Range, 0, len(cross)+1)
	lo := new(big.Rat).Set(rk)
	for _, m := range cross {
		ranges = append(ranges, affine.Range{Lo: lo, Hi: m})
		lo = m
	}
	ranges = append(ranges, affine.Range{Lo: lo})

	var warm *rangeSolution
	solveOne := func(idx int) (*rangeSolution, error) {
		rg := ranges[idx]
		ivs := intervals.Build(times, rg.Interior())
		rl := newRangeLP(inst, mode, ivs, dls, rg)
		var wb = warm
		var sol *rangeSolution
		var err error
		if wb != nil {
			sol, err = rl.solveWith(wb.basis, nil)
		} else {
			sol, err = rl.solve()
		}
		if err != nil {
			return nil, err
		}
		if sol != nil {
			warm = sol
		}
		return sol, nil
	}

	// Feasibility is monotone in the range index: a feasible F makes every
	// F' >= F feasible. Binary search the leftmost feasible range.
	loIdx, hiIdx := 0, len(ranges)-1
	_, err := solveOne(hiIdx)
	if err != nil {
		return nil, err
	}
	if warm == nil {
		// Even an unbounded deadline for job k cannot satisfy the fixed
		// deadlines: no counter-offer exists.
		return nil, nil
	}
	best := new(big.Rat).Set(warm.F)
	for loIdx < hiIdx {
		mid := loIdx + (hiIdx-loIdx)/2
		sol, err := solveOne(mid)
		if err != nil {
			return nil, err
		}
		if sol != nil {
			best.Set(sol.F)
			hiIdx = mid
		} else {
			loIdx = mid + 1
		}
	}
	if loIdx != len(ranges)-1 {
		// The binary search may finish on a range it never solved (hiIdx
		// moved down past solved midpoints); re-solve the winning range so
		// best is its minimum, not a looser range's.
		sol, err := solveOne(loIdx)
		if err != nil {
			return nil, err
		}
		if sol == nil {
			return nil, fmt.Errorf("core: leftmost feasible range %v unexpectedly infeasible", ranges[loIdx])
		}
		best.Set(sol.F)
	}
	return best, nil
}
