package core

import "time"

// nowFunc supplies the wall-clock readings behind Result.Wall, the solver's
// self-timing. It is a seam, not a scheduling input: every exact quantity the
// solver computes is independent of it, and virtual-clock tests (and the
// wallclock analyzer's allowlist, which covers only clock.go/obs/telemetry)
// rely on the solve path never touching the wall clock directly. Tests may
// swap it for a fake to make Wall deterministic.
var nowFunc = time.Now
