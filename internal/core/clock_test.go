package core

import (
	"math/big"
	"testing"
	"time"

	"divflow/internal/model"
)

// TestSolverTimingInjectable pins the satellite fix for the wall-clock leak
// the wallclock analyzer flagged at maxflow.go:91: solver self-timing flows
// through nowFunc, so a fake clock makes Result.Wall — the one
// non-deterministic field of an otherwise exact result — fully deterministic.
func TestSolverTimingInjectable(t *testing.T) {
	defer func(orig func() time.Time) { nowFunc = orig }(nowFunc)
	base := time.Unix(1000, 0)
	ticks := 0
	nowFunc = func() time.Time {
		ticks++
		return base.Add(time.Duration(ticks) * 7 * time.Millisecond)
	}

	inst, err := model.NewInstance(
		[]model.Job{{Name: "j0", Weight: big.NewRat(1, 1), Size: big.NewRat(1, 1), Release: new(big.Rat)}},
		[]model.Machine{{Name: "m0", InverseSpeed: big.NewRat(1, 1)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinMaxWeightedFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Wall <= 0 {
		t.Fatalf("Wall = %v, want positive fake-clock duration", res.Wall)
	}
	if res.Wall%(7*time.Millisecond) != 0 {
		t.Fatalf("Wall = %v not a multiple of the fake tick; solver read the real clock", res.Wall)
	}
}
