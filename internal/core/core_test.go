package core

import (
	"math/big"
	"testing"

	"divflow/internal/model"
	"divflow/internal/schedule"
	"divflow/internal/workload"
)

func r(a, b int64) *big.Rat { return big.NewRat(a, b) }

// oneMachine builds an instance with a single unit-speed machine.
func oneMachine(t *testing.T, jobs []model.Job) *model.Instance {
	t.Helper()
	inst, err := model.NewInstance(jobs, []model.Machine{{Name: "m", InverseSpeed: r(1, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestMinMakespanSingleJob(t *testing.T) {
	inst := oneMachine(t, []model.Job{{Name: "J", Release: r(0, 1), Weight: r(1, 1), Size: r(5, 1)}})
	res, err := MinMakespan(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan.Cmp(r(5, 1)) != 0 {
		t.Errorf("makespan = %v, want 5", res.Makespan)
	}
	if err := res.Schedule.Validate(inst, schedule.Divisible, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMakespanPerfectSplit(t *testing.T) {
	// One job, two unrelated machines with costs 2 and 6. The divisible
	// optimum processes fractions in parallel: T with T/2 + T/6 = 1,
	// i.e. T = 3/2.
	jobs := []model.Job{{Name: "J", Release: r(0, 1), Weight: r(1, 1)}}
	machines := []model.Machine{{Name: "a"}, {Name: "b"}}
	cost := [][]*big.Rat{{r(2, 1)}, {r(6, 1)}}
	inst, err := model.NewUnrelated(jobs, machines, cost)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinMakespan(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan.Cmp(r(3, 2)) != 0 {
		t.Errorf("makespan = %v, want 3/2", res.Makespan)
	}
	if err := res.Schedule.Validate(inst, schedule.Divisible, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMakespanLateRelease(t *testing.T) {
	// Work 1 at r=0 and work 2 at r=10 on a unit machine: C_max = 12.
	inst := oneMachine(t, []model.Job{
		{Name: "J0", Release: r(0, 1), Weight: r(1, 1), Size: r(1, 1)},
		{Name: "J1", Release: r(10, 1), Weight: r(1, 1), Size: r(2, 1)},
	})
	res, err := MinMakespan(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan.Cmp(r(12, 1)) != 0 {
		t.Errorf("makespan = %v, want 12", res.Makespan)
	}
}

func TestMinMakespanEqualReleases(t *testing.T) {
	// All jobs released together: the LP degenerates to a single open
	// interval. Two unit jobs on a unit machine: C_max = 2.
	inst := oneMachine(t, []model.Job{
		{Name: "a", Release: r(3, 1), Weight: r(1, 1), Size: r(1, 1)},
		{Name: "b", Release: r(3, 1), Weight: r(1, 1), Size: r(1, 1)},
	})
	res, err := MinMakespan(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan.Cmp(r(5, 1)) != 0 {
		t.Errorf("makespan = %v, want 5", res.Makespan)
	}
}

// TestMakespanIsExactOptimum cross-checks Theorem 1 against the independent
// System (2) path: the reported makespan M* must be deadline-feasible while
// M*(1 − 1e-6) must not.
func TestMakespanIsExactOptimum(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cfg := workload.Default()
		cfg.Seed = seed
		cfg.Jobs = 4
		cfg.Machines = 3
		inst := workload.MustGenerate(cfg)
		res, err := MinMakespan(inst)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Schedule.Validate(inst, schedule.Divisible, nil); err != nil {
			t.Fatalf("seed %d: invalid schedule: %v", seed, err)
		}
		if got := res.Schedule.Makespan(); got.Cmp(res.Makespan) > 0 {
			t.Fatalf("seed %d: schedule makespan %v exceeds reported %v", seed, got, res.Makespan)
		}
		same := func(f *big.Rat) []*big.Rat {
			out := make([]*big.Rat, inst.N())
			for j := range out {
				out[j] = f
			}
			return out
		}
		ok, _, err := DeadlineFeasible(inst, same(res.Makespan), schedule.Divisible)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed %d: M* = %v not deadline-feasible", seed, res.Makespan)
		}
		slightly := new(big.Rat).Mul(res.Makespan, r(999999, 1000000))
		ok, _, err = DeadlineFeasible(inst, same(slightly), schedule.Divisible)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("seed %d: M* = %v is not optimal (smaller deadline feasible)", seed, res.Makespan)
		}
	}
}

func TestDeadlineFeasibleSimple(t *testing.T) {
	inst := oneMachine(t, []model.Job{
		{Name: "a", Release: r(0, 1), Weight: r(1, 1), Size: r(2, 1)},
		{Name: "b", Release: r(1, 1), Weight: r(1, 1), Size: r(2, 1)},
	})
	// Total work 4 from t=0; b released at 1. Deadlines 4 and 4: feasible.
	ok, s, err := DeadlineFeasible(inst, []*big.Rat{r(4, 1), r(4, 1)}, schedule.Divisible)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("want feasible")
	}
	if err := s.Validate(inst, schedule.Divisible, []*big.Rat{r(4, 1), r(4, 1)}); err != nil {
		t.Error(err)
	}
	// Deadline 3 for both: 4 units of work by t=3 is impossible.
	ok, _, err = DeadlineFeasible(inst, []*big.Rat{r(3, 1), r(3, 1)}, schedule.Divisible)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("want infeasible")
	}
}

func TestDeadlineFeasibleNilDeadlines(t *testing.T) {
	inst := oneMachine(t, []model.Job{
		{Name: "a", Release: r(0, 1), Weight: r(1, 1), Size: r(2, 1)},
		{Name: "b", Release: r(0, 1), Weight: r(1, 1), Size: r(2, 1)},
	})
	// Only job a constrained: needs deadline >= 2 (b can wait).
	ok, s, err := DeadlineFeasible(inst, []*big.Rat{r(2, 1), nil}, schedule.Divisible)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("want feasible with one nil deadline")
	}
	if err := s.Validate(inst, schedule.Divisible, []*big.Rat{r(2, 1), nil}); err != nil {
		t.Error(err)
	}
	ok, _, err = DeadlineFeasible(inst, []*big.Rat{r(1, 1), nil}, schedule.Divisible)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("deadline 1 for 2 units of work must be infeasible")
	}
}

func TestDeadlineBeforeRelease(t *testing.T) {
	inst := oneMachine(t, []model.Job{{Name: "a", Release: r(5, 1), Weight: r(1, 1), Size: r(1, 1)}})
	ok, _, err := DeadlineFeasible(inst, []*big.Rat{r(5, 1)}, schedule.Divisible)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("deadline at release must be infeasible (positive costs)")
	}
}

func TestDeadlineMonotone(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		cfg := workload.Default()
		cfg.Seed = seed
		cfg.Jobs = 4
		inst := workload.MustGenerate(cfg)
		res, err := MinMakespan(inst)
		if err != nil {
			t.Fatal(err)
		}
		// Feasible at M*, must stay feasible at 2*M*.
		mk := func(f *big.Rat) []*big.Rat {
			out := make([]*big.Rat, inst.N())
			for j := range out {
				out[j] = f
			}
			return out
		}
		double := new(big.Rat).Mul(res.Makespan, r(2, 1))
		ok, _, err := DeadlineFeasible(inst, mk(double), schedule.Divisible)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed %d: doubling deadlines lost feasibility", seed)
		}
	}
}

func TestMilestonesTwoJobs(t *testing.T) {
	// J0: r=0, w=1 (deadline F); J1: r=6, w=2 (deadline 6 + F/2).
	// Crossings: d0 = r1 at F=6; d1 = r0 at F=-12 (discarded);
	// d0 = d1 at F = 6/(1-1/2) = 12.
	inst := oneMachine(t, []model.Job{
		{Name: "J0", Release: r(0, 1), Weight: r(1, 1), Size: r(1, 1)},
		{Name: "J1", Release: r(6, 1), Weight: r(2, 1), Size: r(1, 1)},
	})
	ms := Milestones(inst)
	if len(ms) != 2 {
		t.Fatalf("milestones = %v, want [6 12]", ms)
	}
	if ms[0].Cmp(r(6, 1)) != 0 || ms[1].Cmp(r(12, 1)) != 0 {
		t.Errorf("milestones = %v, %v; want 6, 12", ms[0], ms[1])
	}
}

func TestMilestonesBoundAndOrder(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		cfg := workload.Default()
		cfg.Seed = seed
		cfg.Jobs = 6
		inst := workload.MustGenerate(cfg)
		ms := Milestones(inst)
		n := inst.N()
		if len(ms) > n*n-n {
			t.Fatalf("seed %d: %d milestones exceeds n^2-n = %d", seed, len(ms), n*n-n)
		}
		for k := 1; k < len(ms); k++ {
			if ms[k-1].Cmp(ms[k]) >= 0 {
				t.Fatalf("seed %d: milestones not strictly increasing", seed)
			}
		}
		for _, m := range ms {
			if m.Sign() <= 0 {
				t.Fatalf("seed %d: non-positive milestone %v", seed, m)
			}
		}
	}
}

func TestObjectiveRanges(t *testing.T) {
	rs := ObjectiveRanges([]*big.Rat{r(2, 1), r(5, 1)})
	if len(rs) != 3 {
		t.Fatalf("got %d ranges", len(rs))
	}
	if rs[0].Lo.Sign() != 0 || rs[0].Hi.Cmp(r(2, 1)) != 0 {
		t.Errorf("range 0 = %v", rs[0])
	}
	if rs[2].Hi != nil || rs[2].Lo.Cmp(r(5, 1)) != 0 {
		t.Errorf("range 2 = %v", rs[2])
	}
	if one := ObjectiveRanges(nil); len(one) != 1 || one[0].Hi != nil {
		t.Errorf("empty milestones should give [0,inf), got %v", one)
	}
}

func TestMWFSingleJob(t *testing.T) {
	inst := oneMachine(t, []model.Job{{Name: "J", Release: r(3, 1), Weight: r(2, 1), Size: r(5, 1)}})
	res, err := MinMaxWeightedFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	// C = 8, flow 5, weighted flow 10.
	if res.Objective.Cmp(r(10, 1)) != 0 {
		t.Errorf("objective = %v, want 10", res.Objective)
	}
}

func TestMWFTwoJobsAnalytic(t *testing.T) {
	// Unit machine, both jobs at r=0, sizes 2 and 2, weights 1 and 3.
	// The machine finishes at 4 whatever the order; putting J1 first gives
	// C1 = 2, C0 = 4 -> max(4, 6) = 6, which is optimal.
	inst := oneMachine(t, []model.Job{
		{Name: "J0", Release: r(0, 1), Weight: r(1, 1), Size: r(2, 1)},
		{Name: "J1", Release: r(0, 1), Weight: r(3, 1), Size: r(2, 1)},
	})
	res, err := MinMaxWeightedFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective.Cmp(r(6, 1)) != 0 {
		t.Errorf("objective = %v, want 6", res.Objective)
	}
	if err := res.Schedule.Validate(inst, schedule.Divisible, nil); err != nil {
		t.Error(err)
	}
	got, err := res.Schedule.MaxWeightedFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(res.Objective) != 0 {
		t.Errorf("schedule MWF %v != objective %v", got, res.Objective)
	}
}

// optimalityProbe checks that F* is feasible and F*(1−1e−6) is not, using
// the independent deadline-feasibility path.
func optimalityProbe(t *testing.T, inst *model.Instance, f *big.Rat, mode schedule.Model, seed int64) {
	t.Helper()
	deadlinesAt := func(obj *big.Rat) []*big.Rat {
		out := make([]*big.Rat, inst.N())
		for j := range out {
			d := new(big.Rat).Quo(obj, inst.Jobs[j].Weight)
			out[j] = d.Add(d, inst.Jobs[j].Release)
		}
		return out
	}
	ok, _, err := DeadlineFeasible(inst, deadlinesAt(f), mode)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("seed %d: F* = %v not feasible", seed, f)
	}
	below := new(big.Rat).Mul(f, r(999999, 1000000))
	ok, _, err = DeadlineFeasible(inst, deadlinesAt(below), mode)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("seed %d: F* = %v is not optimal: %v also feasible", seed, f, below)
	}
}

func TestMWFIsExactOptimum(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cfg := workload.Default()
		cfg.Seed = seed
		cfg.Jobs = 4
		cfg.Machines = 3
		inst := workload.MustGenerate(cfg)
		res, err := MinMaxWeightedFlow(inst)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Schedule.Validate(inst, schedule.Divisible, nil); err != nil {
			t.Fatalf("seed %d: invalid schedule: %v", seed, err)
		}
		got, err := res.Schedule.MaxWeightedFlow(inst)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(res.Objective) > 0 {
			t.Fatalf("seed %d: schedule MWF %v exceeds objective %v", seed, got, res.Objective)
		}
		optimalityProbe(t, inst, res.Objective, schedule.Divisible, seed)
	}
}

func TestMWFPreemptiveIsExactOptimum(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		cfg := workload.Default()
		cfg.Seed = seed
		cfg.Jobs = 4
		cfg.Machines = 3
		inst := workload.MustGenerate(cfg)
		res, err := MinMaxWeightedFlowPreemptive(inst)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Schedule.Validate(inst, schedule.Preemptive, nil); err != nil {
			t.Fatalf("seed %d: invalid preemptive schedule: %v", seed, err)
		}
		optimalityProbe(t, inst, res.Objective, schedule.Preemptive, seed)
	}
}

func TestPreemptiveNeverBeatsDivisible(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		cfg := workload.Default()
		cfg.Seed = seed
		cfg.Jobs = 4
		inst := workload.MustGenerate(cfg)
		div, err := MinMaxWeightedFlow(inst)
		if err != nil {
			t.Fatal(err)
		}
		pre, err := MinMaxWeightedFlowPreemptive(inst)
		if err != nil {
			t.Fatal(err)
		}
		if pre.Objective.Cmp(div.Objective) < 0 {
			t.Fatalf("seed %d: preemptive %v < divisible %v (divisibility generalizes preemption)",
				seed, pre.Objective, div.Objective)
		}
	}
}

func TestApproxBracketsExact(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		cfg := workload.Default()
		cfg.Seed = seed
		cfg.Jobs = 4
		inst := workload.MustGenerate(cfg)
		exact, err := MinMaxWeightedFlow(inst)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := ApproxMinMaxWeightedFlow(inst, schedule.Divisible, r(1, 1000))
		if err != nil {
			t.Fatal(err)
		}
		if exact.Objective.Cmp(approx.Lo) <= 0 {
			t.Fatalf("seed %d: exact %v <= approx lower bound %v", seed, exact.Objective, approx.Lo)
		}
		if exact.Objective.Cmp(approx.Hi) > 0 {
			t.Fatalf("seed %d: exact %v > approx upper bound %v", seed, exact.Objective, approx.Hi)
		}
		if approx.Schedule == nil {
			t.Fatalf("seed %d: approx returned no schedule", seed)
		}
	}
}

func TestApproxRejectsBadEps(t *testing.T) {
	inst := oneMachine(t, []model.Job{{Name: "J", Release: r(0, 1), Weight: r(1, 1), Size: r(1, 1)}})
	if _, err := ApproxMinMaxWeightedFlow(inst, schedule.Divisible, nil); err == nil {
		t.Error("nil eps must error")
	}
	if _, err := ApproxMinMaxWeightedFlow(inst, schedule.Divisible, r(0, 1)); err == nil {
		t.Error("zero eps must error")
	}
}

func TestMWFStretchObjective(t *testing.T) {
	// With w_j = 1/W_j the objective is max stretch. Single machine, two
	// equal jobs at t=0 with sizes 1 and 4: optimum shares so that both
	// stretches are equal. Known result: the machine is busy [0,5];
	// serving small-first gives stretches 1 and 5/4; optimum is
	// max-stretch 5/4? Check against the schedule metric instead of a
	// hand value, plus the boundary probe.
	inst := oneMachine(t, []model.Job{
		{Name: "small", Release: r(0, 1), Weight: r(1, 1), Size: r(1, 1)},
		{Name: "big", Release: r(0, 1), Weight: r(1, 1), Size: r(4, 1)},
	})
	inst.WeightsForStretch()
	res, err := MinMaxWeightedFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	st, err := res.Schedule.MaxStretch(inst)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cmp(res.Objective) > 0 {
		t.Errorf("schedule stretch %v exceeds objective %v", st, res.Objective)
	}
	optimalityProbe(t, inst, res.Objective, schedule.Divisible, -1)
	// Analytic: last completion is 5; the small job's stretch would be 5
	// if it ended last. The optimum equalizes: small ends at S, big at 5;
	// stretch = max(S/1, 5/4) minimized at S = 5/4 (feasible: 5/4 >= 1).
	if res.Objective.Cmp(r(5, 4)) != 0 {
		t.Errorf("max stretch = %v, want 5/4", res.Objective)
	}
}

func TestMWFRespectsDatabanks(t *testing.T) {
	// Job bound to a databank present only on the slow machine must not
	// touch the fast one.
	jobs := []model.Job{
		{Name: "bound", Release: r(0, 1), Weight: r(1, 1), Size: r(4, 1), Databanks: []string{"rare"}},
		{Name: "free", Release: r(0, 1), Weight: r(1, 1), Size: r(4, 1)},
	}
	machines := []model.Machine{
		{Name: "fast", InverseSpeed: r(1, 4)},
		{Name: "slow", InverseSpeed: r(1, 1), Databanks: []string{"rare"}},
	}
	inst, err := model.NewInstance(jobs, machines)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinMaxWeightedFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(inst, schedule.Divisible, nil); err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Schedule.Pieces {
		if p.Job == 0 && p.Machine == 0 {
			t.Fatal("databank-bound job ran on a machine without the bank")
		}
	}
}

func TestMWFReportsSearchStats(t *testing.T) {
	cfg := workload.Default()
	cfg.Jobs = 5
	inst := workload.MustGenerate(cfg)
	res, err := MinMaxWeightedFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumMilestones < 0 || res.LPSolves < 1 {
		t.Errorf("stats: milestones=%d solves=%d", res.NumMilestones, res.LPSolves)
	}
	// Binary search: solves should be O(log(#ranges)) + 1, certainly no
	// more than #ranges + 1.
	if res.LPSolves > res.NumMilestones+2 {
		t.Errorf("too many LP solves: %d for %d milestones", res.LPSolves, res.NumMilestones)
	}
	if !res.Range.Contains(res.Objective) {
		t.Errorf("objective %v outside reported range %v", res.Objective, res.Range)
	}
}
