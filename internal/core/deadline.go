package core

import (
	"fmt"
	"math/big"

	"divflow/internal/affine"
	"divflow/internal/intervals"
	"divflow/internal/model"
	"divflow/internal/schedule"
)

// DeadlineFeasible decides, exactly, whether every job can be completed
// inside its executable window [r_j, d̄_j] (Lemma 1 / System (2)), in the
// given execution model (System (5) adds the per-job interval bound when
// mode is Preemptive). On success it also returns a schedule meeting all
// deadlines, reconstructed per Section 4.2 (divisible) or Section 4.4
// (preemptive, via Lawler–Labetoulle).
//
// deadlines must have one entry per job; nil entries mean "no deadline".
func DeadlineFeasible(inst *model.Instance, deadlines []*big.Rat, mode schedule.Model) (bool, *schedule.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return false, nil, err
	}
	if len(deadlines) != inst.N() {
		return false, nil, fmt.Errorf("core: %d deadlines for %d jobs", len(deadlines), inst.N())
	}
	// Reject trivially-impossible windows up front: with strictly positive
	// costs a job cannot finish at or before its release date.
	for j, d := range deadlines {
		if d != nil && d.Cmp(inst.Jobs[j].Release) <= 0 {
			return false, nil, nil
		}
	}
	// Epochal times: all release dates and all (finite) deadlines, plus a
	// horizon H large enough that jobs *without* a deadline always fit
	// after the last release (H = r_max + Σ_j min_i c_{i,j} covers running
	// them back to back on their fastest machines). The extra epochal time
	// only refines the interval decomposition; it never changes
	// feasibility of System (2).
	var times []affine.Form
	horizon := new(big.Rat)
	for j := range inst.Jobs {
		times = append(times, affine.Const(inst.Jobs[j].Release))
		if inst.Jobs[j].Release.Cmp(horizon) > 0 {
			horizon.Set(inst.Jobs[j].Release)
		}
	}
	span := new(big.Rat)
	for j := range inst.Jobs {
		var best *big.Rat
		for _, i := range inst.EligibleMachines(j) {
			c, _ := inst.Cost(i, j)
			if best == nil || c.Cmp(best) < 0 {
				best = c
			}
		}
		span.Add(span, best)
	}
	horizon.Add(horizon, span)
	for _, d := range deadlines {
		if d != nil {
			times = append(times, affine.Const(d))
			if d.Cmp(horizon) > 0 {
				horizon.Set(d)
			}
		}
	}
	times = append(times, affine.Const(horizon))
	ivs := intervals.Build(times, new(big.Rat))

	rl := newRangeLP(inst, mode, ivs, constDeadlines(deadlines), affine.Range{Lo: new(big.Rat), Hi: new(big.Rat)})
	sol, err := rl.solve()
	if err != nil {
		return false, nil, err
	}
	if sol == nil {
		return false, nil, nil
	}
	s, err := rl.extract(sol)
	if err != nil {
		return false, nil, err
	}
	return true, s, nil
}
