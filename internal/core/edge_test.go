package core

import (
	"math/big"
	"testing"

	"divflow/internal/model"
	"divflow/internal/schedule"
)

// TestEqualWeightsParallelDeadlines: with all weights equal, deadline forms
// are parallel and never cross each other; milestones come only from
// deadline-release crossings.
func TestEqualWeightsParallelDeadlines(t *testing.T) {
	inst := oneMachine(t, []model.Job{
		{Name: "a", Release: r(0, 1), Weight: r(1, 1), Size: r(1, 1)},
		{Name: "b", Release: r(4, 1), Weight: r(1, 1), Size: r(1, 1)},
		{Name: "c", Release: r(9, 1), Weight: r(1, 1), Size: r(1, 1)},
	})
	ms := Milestones(inst)
	// d_a crosses r_b (F=4) and r_c (F=9); d_b crosses r_c (F=5);
	// no deadline-deadline crossings. Also negative crossings discarded.
	want := []*big.Rat{r(4, 1), r(5, 1), r(9, 1)}
	if len(ms) != len(want) {
		t.Fatalf("milestones = %v, want %v", ms, want)
	}
	for i := range want {
		if ms[i].Cmp(want[i]) != 0 {
			t.Errorf("milestone %d = %v, want %v", i, ms[i], want[i])
		}
	}
	res, err := MinMaxWeightedFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Jobs don't overlap in time (gaps >= sizes): each flows exactly its
	// processing time 1.
	if res.Objective.Cmp(r(1, 1)) != 0 {
		t.Errorf("objective = %v, want 1", res.Objective)
	}
}

// TestSingleEligibleMachineContention: two jobs forced onto the same
// machine by databank placement while a faster machine idles.
func TestSingleEligibleMachineContention(t *testing.T) {
	jobs := []model.Job{
		{Name: "a", Release: r(0, 1), Weight: r(1, 1), Size: r(2, 1), Databanks: []string{"x"}},
		{Name: "b", Release: r(0, 1), Weight: r(1, 1), Size: r(2, 1), Databanks: []string{"x"}},
	}
	machines := []model.Machine{
		{Name: "holder", InverseSpeed: r(1, 1), Databanks: []string{"x"}},
		{Name: "idle-fast", InverseSpeed: r(1, 10)},
	}
	inst, err := model.NewInstance(jobs, machines)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinMaxWeightedFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Both compete for "holder": last completion at 4, best is to finish
	// one at 2: optimum max flow = 4 (divisibility cannot help a single
	// machine).
	if res.Objective.Cmp(r(4, 1)) != 0 {
		t.Errorf("objective = %v, want 4", res.Objective)
	}
	for _, p := range res.Schedule.Pieces {
		if p.Machine == 1 {
			t.Fatal("idle-fast must stay idle (no databank)")
		}
	}
}

// TestExtremeWeights exercises very skewed rational weights (tiny and huge
// denominators) through the milestone machinery.
func TestExtremeWeights(t *testing.T) {
	inst := oneMachine(t, []model.Job{
		{Name: "vip", Release: r(0, 1), Weight: big.NewRat(1000000, 1), Size: r(1, 1)},
		{Name: "besteffort", Release: r(0, 1), Weight: big.NewRat(1, 1000000), Size: r(1, 1)},
	})
	res, err := MinMaxWeightedFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(inst, schedule.Divisible, nil); err != nil {
		t.Fatal(err)
	}
	// The VIP job must be served first: its completion dominates the
	// objective. C_vip = 1 -> objective 1e6; best-effort then ends at 2
	// with weighted flow 2e-6.
	if res.Objective.Cmp(big.NewRat(1000000, 1)) != 0 {
		t.Errorf("objective = %v, want 1000000", res.Objective)
	}
	cs := res.Schedule.Completions(inst.N())
	if cs[0].Cmp(r(1, 1)) != 0 {
		t.Errorf("vip completes at %v, want 1", cs[0])
	}
}

// TestFractionalData exercises non-integer releases, sizes and speeds.
func TestFractionalData(t *testing.T) {
	jobs := []model.Job{
		{Name: "a", Release: big.NewRat(1, 3), Weight: big.NewRat(2, 7), Size: big.NewRat(5, 4)},
		{Name: "b", Release: big.NewRat(1, 2), Weight: big.NewRat(3, 5), Size: big.NewRat(7, 6)},
	}
	machines := []model.Machine{
		{Name: "m0", InverseSpeed: big.NewRat(3, 2)},
		{Name: "m1", InverseSpeed: big.NewRat(5, 7)},
	}
	inst, err := model.NewInstance(jobs, machines)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinMaxWeightedFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(inst, schedule.Divisible, nil); err != nil {
		t.Fatal(err)
	}
	optimalityProbe(t, inst, res.Objective, schedule.Divisible, -2)
}

// TestManyMachinesSingleJob: a divisible job on many machines runs at the
// aggregate rate Σ 1/c_i.
func TestManyMachinesSingleJob(t *testing.T) {
	job := []model.Job{{Name: "J", Release: r(0, 1), Weight: r(1, 1), Size: r(60, 1)}}
	var machines []model.Machine
	for i := 1; i <= 5; i++ {
		machines = append(machines, model.Machine{
			Name:         "m",
			InverseSpeed: big.NewRat(int64(i), 1),
		})
	}
	inst, err := model.NewInstance(job, machines)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinMakespan(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate speed = (1 + 1/2 + 1/3 + 1/4 + 1/5)/60 per sec of the
	// job; T = 60 / (137/60) = 3600/137.
	want := big.NewRat(3600, 137)
	if res.Makespan.Cmp(want) != 0 {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
}

// TestIdenticalJobs: symmetric jobs must still produce a valid exact
// solution (degenerate LPs, duplicate milestones).
func TestIdenticalJobs(t *testing.T) {
	var jobs []model.Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, model.Job{Name: "same", Release: r(1, 1), Weight: r(2, 1), Size: r(3, 1)})
	}
	machines := []model.Machine{
		{Name: "m0", InverseSpeed: r(1, 1)},
		{Name: "m1", InverseSpeed: r(1, 1)},
	}
	inst, err := model.NewInstance(jobs, machines)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinMaxWeightedFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(inst, schedule.Divisible, nil); err != nil {
		t.Fatal(err)
	}
	// 12 units of work, 2 unit machines, all jobs equal: the optimum
	// equalizes completions at t=7 -> flow 6, weighted 12.
	if res.Objective.Cmp(r(12, 1)) != 0 {
		t.Errorf("objective = %v, want 12", res.Objective)
	}
}

// TestPreemptiveTwoJobsTwoMachinesSymmetric is a case where the preemptive
// and divisible optima coincide (enough machines for everyone).
func TestPreemptiveTwoJobsTwoMachinesSymmetric(t *testing.T) {
	jobs := []model.Job{
		{Name: "a", Release: r(0, 1), Weight: r(1, 1), Size: r(2, 1)},
		{Name: "b", Release: r(0, 1), Weight: r(1, 1), Size: r(2, 1)},
	}
	machines := []model.Machine{
		{Name: "m0", InverseSpeed: r(1, 1)},
		{Name: "m1", InverseSpeed: r(1, 1)},
	}
	inst, err := model.NewInstance(jobs, machines)
	if err != nil {
		t.Fatal(err)
	}
	div, err := MinMaxWeightedFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := MinMaxWeightedFlowPreemptive(inst)
	if err != nil {
		t.Fatal(err)
	}
	if div.Objective.Cmp(r(2, 1)) != 0 || pre.Objective.Cmp(r(2, 1)) != 0 {
		t.Errorf("optima = %v / %v, want 2 / 2", div.Objective, pre.Objective)
	}
}
