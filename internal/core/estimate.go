package core

import (
	"errors"
	"fmt"

	"divflow/internal/affine"
	"divflow/internal/intervals"
	"divflow/internal/lp"
	"divflow/internal/model"
	"divflow/internal/schedule"
)

// Estimate is the outcome of the float64 fast path.
type Estimate struct {
	// Objective approximates the optimal max weighted flow.
	Objective float64
	// NumMilestones and LPSolves mirror Result.
	NumMilestones int
	LPSolves      int
}

// EstimateMinMaxWeightedFlow is the float64 fast path for large instances:
// milestones and interval structure stay exact (rational), but each range
// LP is solved with the float64 simplex, and no schedule is extracted. The
// result approximates the exact optimum to solver tolerance; it exists so
// the solver can be driven at scales where the exact rational simplex gets
// expensive, and as the reference implementation an operator would deploy
// inside an online scheduler loop where timing matters more than the last
// decimal. For exact results and schedules use MinMaxWeightedFlow /
// MinMaxWeightedFlowPreemptive.
func EstimateMinMaxWeightedFlow(inst *model.Instance, mode schedule.Model) (*Estimate, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	origins := releaseOrigins(inst)
	ms := milestonesWithOrigins(inst, origins)
	ranges := ObjectiveRanges(ms)
	dls := flowDeadlines(inst, origins)

	solveOne := func(k int) (*lp.FloatSolution, error) {
		rg := ranges[k]
		var times []affine.Form
		for j := range inst.Jobs {
			times = append(times, affine.Const(inst.Jobs[j].Release))
			times = append(times, *dls[j])
		}
		ivs := intervals.Build(times, rg.Interior())
		rl := newRangeLP(inst, mode, ivs, dls, rg)
		rl.build()
		return lp.SolveFloat(rl.prob)
	}

	lo, hi := 0, len(ranges)-1
	solves := 0
	for lo < hi {
		mid := lo + (hi-lo)/2
		sol, err := solveOne(mid)
		solves++
		if err != nil {
			return nil, err
		}
		switch sol.Status {
		case lp.Optimal:
			hi = mid
		case lp.Infeasible:
			lo = mid + 1
		default:
			return nil, fmt.Errorf("core: estimate range LP reported %v", sol.Status)
		}
	}
	sol, err := solveOne(lo)
	solves++
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, errors.New("core: final milestone range unexpectedly infeasible (float)")
	}
	return &Estimate{
		Objective:     sol.Objective,
		NumMilestones: len(ms),
		LPSolves:      solves,
	}, nil
}
