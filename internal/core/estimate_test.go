package core

import (
	"math"
	"testing"

	"divflow/internal/schedule"
	"divflow/internal/workload"
)

func TestEstimateTracksExact(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cfg := workload.Default()
		cfg.Seed = seed
		cfg.Jobs = 5
		inst := workload.MustGenerate(cfg)
		exact, err := MinMaxWeightedFlow(inst)
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateMinMaxWeightedFlow(inst, schedule.Divisible)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := exact.Objective.Float64()
		if math.Abs(est.Objective-want) > 1e-6*(1+want) {
			t.Errorf("seed %d: estimate %v vs exact %v", seed, est.Objective, want)
		}
		if est.NumMilestones != exact.NumMilestones {
			t.Errorf("seed %d: milestone counts differ: %d vs %d",
				seed, est.NumMilestones, exact.NumMilestones)
		}
	}
}

func TestEstimatePreemptiveMode(t *testing.T) {
	cfg := workload.Default()
	cfg.Jobs = 4
	inst := workload.MustGenerate(cfg)
	exact, err := MinMaxWeightedFlowPreemptive(inst)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateMinMaxWeightedFlow(inst, schedule.Preemptive)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := exact.Objective.Float64()
	if math.Abs(est.Objective-want) > 1e-6*(1+want) {
		t.Errorf("preemptive estimate %v vs exact %v", est.Objective, want)
	}
}

func TestEstimateScalesBeyondExactComfort(t *testing.T) {
	if testing.Short() {
		t.Skip("larger instance")
	}
	cfg := workload.Default()
	cfg.Jobs = 12
	cfg.Machines = 4
	cfg.Databanks = 4
	inst := workload.MustGenerate(cfg)
	est, err := EstimateMinMaxWeightedFlow(inst, schedule.Divisible)
	if err != nil {
		t.Fatal(err)
	}
	if est.Objective <= 0 {
		t.Errorf("objective = %v", est.Objective)
	}
	if est.LPSolves > est.NumMilestones+2 {
		t.Errorf("binary search degenerated: %d solves for %d milestones",
			est.LPSolves, est.NumMilestones)
	}
}
