package core

import (
	"errors"
	"math/big"

	"divflow/internal/affine"
	"divflow/internal/intervals"
	"divflow/internal/model"
	"divflow/internal/schedule"
)

// MakespanResult is the outcome of makespan minimization (Theorem 1).
type MakespanResult struct {
	// Makespan is the optimal C_max = r_n + Δ_n.
	Makespan *big.Rat
	// Schedule achieves the optimum in the divisible-load model.
	Schedule *schedule.Schedule
	// Intervals is the number of epochal intervals of LP (1).
	Intervals int
}

// MinMakespan solves the divisible-load makespan problem of Section 4.1
// exactly (Linear Program (1)). The epochal times are the distinct release
// dates; the final interval is open-ended with length Δ_n, modelled here as
// the LP objective F, so C_max = r_max + F.
func MinMakespan(inst *model.Instance) (*MakespanResult, error) {
	return minMakespan(inst, schedule.Divisible)
}

// MinMakespanPreemptive solves makespan minimization when jobs are
// preemptible but not divisible. With all release dates equal this is
// exactly the Lawler–Labetoulle linear system (System (4) in the paper,
// R||pmtn|C_max); arbitrary release dates are handled by the same interval
// decomposition used everywhere else, with the per-job per-interval bound
// (5b) added and the schedule rebuilt by the decomposition scheme. The
// paper walks through System (4) as its stepping stone to Section 4.4; this
// entry point reproduces that result directly.
func MinMakespanPreemptive(inst *model.Instance) (*MakespanResult, error) {
	return minMakespan(inst, schedule.Preemptive)
}

func minMakespan(inst *model.Instance, mode schedule.Model) (*MakespanResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	// Epochal times: distinct release dates. Finite intervals between
	// consecutive releases, plus the final interval [r_max, r_max + F].
	releaseForms := make([]affine.Form, 0, inst.N())
	rMax := new(big.Rat)
	for j := range inst.Jobs {
		releaseForms = append(releaseForms, affine.Const(inst.Jobs[j].Release))
		if inst.Jobs[j].Release.Cmp(rMax) > 0 {
			rMax.Set(inst.Jobs[j].Release)
		}
	}
	ivs := intervals.Build(releaseForms, new(big.Rat))
	final := intervals.Interval{
		Lo: affine.Const(rMax),
		Hi: affine.New(rMax, big.NewRat(1, 1)), // r_max + F, so |I_n| = F = Δ_n
	}
	ivs = append(ivs, final)

	rl := newRangeLP(inst, mode, ivs, noDeadlines(inst.N()), affine.Range{Lo: new(big.Rat)})
	sol, err := rl.solve()
	if err != nil {
		return nil, err
	}
	if sol == nil {
		// Every valid instance admits a schedule (run everything after
		// r_max), so infeasibility indicates a programming error.
		return nil, errors.New("core: makespan LP unexpectedly infeasible")
	}
	s, err := rl.extract(sol)
	if err != nil {
		return nil, err
	}
	ms := new(big.Rat).Add(rMax, sol.F)
	return &MakespanResult{Makespan: ms, Schedule: s, Intervals: len(ivs)}, nil
}
