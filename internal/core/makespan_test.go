package core

import (
	"math/big"
	"testing"

	"divflow/internal/model"
	"divflow/internal/schedule"
	"divflow/internal/workload"
)

func TestPreemptiveMakespanSingleBigJob(t *testing.T) {
	// One job of size 4 on two unit machines: divisible halves it (C=2),
	// preemptive cannot run it on both at once (C=4).
	jobs := []model.Job{{Name: "J", Release: r(0, 1), Weight: r(1, 1), Size: r(4, 1)}}
	machines := []model.Machine{
		{Name: "m0", InverseSpeed: r(1, 1)},
		{Name: "m1", InverseSpeed: r(1, 1)},
	}
	inst, err := model.NewInstance(jobs, machines)
	if err != nil {
		t.Fatal(err)
	}
	div, err := MinMakespan(inst)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := MinMakespanPreemptive(inst)
	if err != nil {
		t.Fatal(err)
	}
	if div.Makespan.Cmp(r(2, 1)) != 0 {
		t.Errorf("divisible makespan = %v, want 2", div.Makespan)
	}
	if pre.Makespan.Cmp(r(4, 1)) != 0 {
		t.Errorf("preemptive makespan = %v, want 4", pre.Makespan)
	}
	if err := pre.Schedule.Validate(inst, schedule.Preemptive, nil); err != nil {
		t.Error(err)
	}
}

func TestPreemptiveMakespanGonzalezSahni(t *testing.T) {
	// Three size-3 jobs on two unit machines, all at t=0: the classical
	// P|pmtn|Cmax optimum is max(total/m, max job) = max(9/2, 3) = 9/2
	// (McNaughton's wrap-around rule); System (4) must find it and the
	// Lawler–Labetoulle reconstruction must realize it.
	jobs := []model.Job{
		{Name: "a", Release: r(0, 1), Weight: r(1, 1), Size: r(3, 1)},
		{Name: "b", Release: r(0, 1), Weight: r(1, 1), Size: r(3, 1)},
		{Name: "c", Release: r(0, 1), Weight: r(1, 1), Size: r(3, 1)},
	}
	machines := []model.Machine{
		{Name: "m0", InverseSpeed: r(1, 1)},
		{Name: "m1", InverseSpeed: r(1, 1)},
	}
	inst, err := model.NewInstance(jobs, machines)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := MinMakespanPreemptive(inst)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Makespan.Cmp(r(9, 2)) != 0 {
		t.Errorf("preemptive makespan = %v, want 9/2", pre.Makespan)
	}
	if err := pre.Schedule.Validate(inst, schedule.Preemptive, nil); err != nil {
		t.Error(err)
	}
}

func TestPreemptiveMakespanIsExactOptimum(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		cfg := workload.Default()
		cfg.Seed = seed
		cfg.Jobs = 4
		cfg.Machines = 3
		inst := workload.MustGenerate(cfg)
		res, err := MinMakespanPreemptive(inst)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Schedule.Validate(inst, schedule.Preemptive, nil); err != nil {
			t.Fatalf("seed %d: invalid schedule: %v", seed, err)
		}
		same := func(f *big.Rat) []*big.Rat {
			out := make([]*big.Rat, inst.N())
			for j := range out {
				out[j] = f
			}
			return out
		}
		ok, _, err := DeadlineFeasible(inst, same(res.Makespan), schedule.Preemptive)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed %d: M* = %v not feasible", seed, res.Makespan)
		}
		below := new(big.Rat).Mul(res.Makespan, r(999999, 1000000))
		ok, _, err = DeadlineFeasible(inst, same(below), schedule.Preemptive)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("seed %d: M* = %v not optimal", seed, res.Makespan)
		}
		// And the divisible relaxation is a lower bound.
		div, err := MinMakespan(inst)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan.Cmp(div.Makespan) < 0 {
			t.Fatalf("seed %d: preemptive %v below divisible %v", seed, res.Makespan, div.Makespan)
		}
	}
}

func TestPreemptiveMakespanWithReleases(t *testing.T) {
	// Releases split the horizon into intervals; the preemptive variant
	// must still decompose every interval without overlap.
	jobs := []model.Job{
		{Name: "early", Release: r(0, 1), Weight: r(1, 1), Size: r(4, 1)},
		{Name: "late", Release: r(3, 1), Weight: r(1, 1), Size: r(4, 1)},
	}
	machines := []model.Machine{
		{Name: "m0", InverseSpeed: r(1, 1)},
		{Name: "m1", InverseSpeed: r(2, 1)},
	}
	inst, err := model.NewInstance(jobs, machines)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinMakespanPreemptive(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(inst, schedule.Preemptive, nil); err != nil {
		t.Fatal(err)
	}
	if got := res.Schedule.Makespan(); got.Cmp(res.Makespan) > 0 {
		t.Errorf("schedule ends at %v after reported %v", got, res.Makespan)
	}
}
