package core

import (
	"errors"
	"fmt"
	"math/big"
	"time"

	"divflow/internal/affine"
	"divflow/internal/intervals"
	"divflow/internal/lp"
	"divflow/internal/model"
	"divflow/internal/schedule"
	"divflow/internal/stats"
)

// Result is the outcome of max-weighted-flow minimization.
type Result struct {
	// Objective is the exact optimal value of max_j w_j (C_j − r_j).
	Objective *big.Rat
	// Schedule achieves the optimum in the requested execution model.
	Schedule *schedule.Schedule
	// Range is the milestone range the optimum lies in.
	Range affine.Range
	// NumMilestones is the number of distinct milestones of the instance.
	NumMilestones int
	// LPSolves counts exact LP solves performed (O(log NumMilestones)).
	LPSolves int
	// Solver tallies the hybrid-engine paths those solves took.
	Solver stats.SolverTally
	// Basis is the optimal basis of the final range LP; re-solvers of
	// perturbed instances (the online adaptation) pass it back through
	// SolveOptions.Warm to start from it instead of from scratch.
	Basis *lp.Basis
	// Wall is the wall-clock duration of the whole solve (milestone
	// enumeration through schedule extraction): the per-solve latency the
	// telemetry layer exports, timed here so every caller measures the same
	// span.
	Wall time.Duration
}

// SolveOptions tunes the exact solvers without changing their results.
type SolveOptions struct {
	// Warm is the optimal basis of a previous, similarly-shaped solve. A
	// compatible basis lets every range LP try an exact warm start; stale
	// or mismatched bases are verified away, never trusted.
	Warm *lp.Basis
}

// MinMaxWeightedFlow computes the exact optimal maximum weighted flow in the
// divisible-load model (Theorem 2): milestones are enumerated, a binary
// search locates the first milestone range on which LP (3) is feasible, and
// the LP's minimal F on that range is the global optimum.
func MinMaxWeightedFlow(inst *model.Instance) (*Result, error) {
	return minMaxWeightedFlow(inst, nil, schedule.Divisible, nil)
}

// MinMaxWeightedFlowPreemptive computes the exact optimal maximum weighted
// flow when jobs are preemptible but not divisible (Section 4.4): the range
// LP gains the per-job per-interval bound (5b), and the schedule is rebuilt
// with the Lawler–Labetoulle decomposition.
func MinMaxWeightedFlowPreemptive(inst *model.Instance) (*Result, error) {
	return minMaxWeightedFlow(inst, nil, schedule.Preemptive, nil)
}

// MinMaxWeightedFlowWithOrigins solves the same problem with each job's
// flow measured from origins[j] instead of its release date: the objective
// is max_j w_j (C_j − o_j), with o_j <= r_j. This is the primitive behind
// the online adaptation sketched in the paper's conclusion: at every event
// the scheduler re-solves the offline problem on the residual work, with
// origins remembering how long each job has already been in the system.
func MinMaxWeightedFlowWithOrigins(inst *model.Instance, origins []*big.Rat, mode schedule.Model) (*Result, error) {
	return MinMaxWeightedFlowWithOptions(inst, origins, mode, nil)
}

// MinMaxWeightedFlowWithOptions is MinMaxWeightedFlowWithOrigins plus solver
// options (warm-start basis reuse). The result is identical for any options.
func MinMaxWeightedFlowWithOptions(inst *model.Instance, origins []*big.Rat, mode schedule.Model, opts *SolveOptions) (*Result, error) {
	if len(origins) != inst.N() {
		return nil, fmt.Errorf("core: %d origins for %d jobs", len(origins), inst.N())
	}
	for j, o := range origins {
		if o == nil || o.Cmp(inst.Jobs[j].Release) > 0 {
			return nil, fmt.Errorf("core: origin of job %d must exist and precede its release", j)
		}
	}
	return minMaxWeightedFlow(inst, origins, mode, opts)
}

func minMaxWeightedFlow(inst *model.Instance, origins []*big.Rat, mode schedule.Model, opts *SolveOptions) (*Result, error) {
	start := nowFunc()
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if origins == nil {
		origins = releaseOrigins(inst)
	}
	var warm *lp.Basis
	if opts != nil {
		warm = opts.Warm
	}
	ms := milestonesWithOrigins(inst, origins)
	ranges := ObjectiveRanges(ms)
	dls := flowDeadlines(inst, origins)

	var tally stats.SolverTally
	solveOne := func(k int) (*rangeLP, *rangeSolution, error) {
		rg := ranges[k]
		var times []affine.Form
		for j := range inst.Jobs {
			times = append(times, affine.Const(inst.Jobs[j].Release))
			times = append(times, *dls[j])
		}
		ivs := intervals.Build(times, rg.Interior())
		rl := newRangeLP(inst, mode, ivs, dls, rg)
		sol, err := rl.solveWith(warm, &tally)
		return rl, sol, err
	}

	// Feasibility of a range is monotone in its index: if some F is
	// feasible then every F' >= F is (deadlines only loosen). Binary
	// search for the leftmost feasible range; the last range is always
	// feasible because every job can run somewhere.
	lo, hi := 0, len(ranges)-1
	solves := 0
	for lo < hi {
		mid := lo + (hi-lo)/2
		_, sol, err := solveOne(mid)
		solves++
		if err != nil {
			return nil, err
		}
		if sol != nil {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	rl, sol, err := solveOne(lo)
	solves++
	if err != nil {
		return nil, err
	}
	if sol == nil {
		return nil, errors.New("core: final milestone range unexpectedly infeasible")
	}
	s, err := rl.extract(sol)
	if err != nil {
		return nil, err
	}
	return &Result{
		Objective:     sol.F,
		Schedule:      s,
		Range:         ranges[lo],
		NumMilestones: len(ms),
		LPSolves:      solves,
		Solver:        tally,
		Basis:         sol.basis,
		Wall:          nowFunc().Sub(start),
	}, nil
}

// ApproxResult is the outcome of the ε-precision binary search baseline.
type ApproxResult struct {
	// Lo is an infeasible objective value (or 0) and Hi a feasible one,
	// with Hi − Lo <= Eps. The true optimum lies in (Lo, Hi].
	Lo, Hi *big.Rat
	// Schedule achieves max weighted flow at most Hi.
	Schedule *schedule.Schedule
	// FeasibilityChecks counts System (2) solves performed.
	FeasibilityChecks int
}

// ApproxMinMaxWeightedFlow is the "naive" alternative the paper argues
// against in Section 4.3.1: a plain binary search on the objective value
// using deadline-feasibility tests, stopped when the bracket is smaller
// than eps. It cannot return the exact optimum (the search may never attain
// an arbitrary rational), but brackets it; the milestone algorithm is both
// exact and asymptotically cheaper. Kept as an ablation baseline and as an
// independent cross-check of MinMaxWeightedFlow.
func ApproxMinMaxWeightedFlow(inst *model.Instance, mode schedule.Model, eps *big.Rat) (*ApproxResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if eps == nil || eps.Sign() <= 0 {
		return nil, fmt.Errorf("core: eps must be positive")
	}
	feasible := func(f *big.Rat) (bool, *schedule.Schedule, error) {
		dls := make([]*big.Rat, inst.N())
		for j := range dls {
			d := new(big.Rat).Quo(f, inst.Jobs[j].Weight)
			dls[j] = d.Add(d, inst.Jobs[j].Release)
		}
		return DeadlineFeasible(inst, dls, mode)
	}
	checks := 0
	lo := new(big.Rat)
	hi := big.NewRat(1, 1)
	var hiSched *schedule.Schedule
	for {
		ok, s, err := feasible(hi)
		checks++
		if err != nil {
			return nil, err
		}
		if ok {
			hiSched = s
			break
		}
		lo.Set(hi)
		hi = new(big.Rat).Mul(hi, big.NewRat(2, 1))
	}
	for {
		gap := new(big.Rat).Sub(hi, lo)
		if gap.Cmp(eps) <= 0 {
			break
		}
		mid := new(big.Rat).Add(lo, hi)
		mid.Quo(mid, big.NewRat(2, 1))
		ok, s, err := feasible(mid)
		checks++
		if err != nil {
			return nil, err
		}
		if ok {
			hi = mid
			hiSched = s
		} else {
			lo = mid
		}
	}
	return &ApproxResult{Lo: lo, Hi: hi, Schedule: hiSched, FeasibilityChecks: checks}, nil
}
