package core

import (
	"math/big"
	"sort"

	"divflow/internal/affine"
	"divflow/internal/model"
)

// Milestones enumerates the critical objective values of Section 4.3.2: the
// positive values of F at which some deadline d̄_j(F) = r_j + F/w_j
// coincides with a release date r_k or with another deadline d̄_k(F). The
// relative order of all epochal times is constant between two consecutive
// milestones, which is what makes the binary search of Theorem 2 exact.
// There are at most n(n−1)/2 + n(n−1)/2 = n²−n of them; the returned slice
// is sorted in increasing order and duplicate-free.
func Milestones(inst *model.Instance) []*big.Rat {
	return milestonesWithOrigins(inst, releaseOrigins(inst))
}

// milestonesWithOrigins generalizes Milestones to deadlines anchored at
// arbitrary flow origins o_j (used by the online residual re-solve, where a
// job's flow started at its original submission, before the residual
// instance's uniform release date).
func milestonesWithOrigins(inst *model.Instance, origins []*big.Rat) []*big.Rat {
	n := inst.N()
	seen := make(map[string]bool)
	var out []*big.Rat
	add := func(f *big.Rat) {
		if f.Sign() <= 0 {
			return
		}
		key := f.RatString()
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, f)
	}
	for j := 0; j < n; j++ {
		dj := affine.New(origins[j], new(big.Rat).Inv(inst.Jobs[j].Weight))
		// Deadline j crosses release k: o_j + F/w_j = r_k. The k == j case
		// matters only when the origin precedes the release (online
		// residual solves): there d̄_j crosses its own release at
		// F = w_j (r_j − o_j) > 0; in the plain problem o_j = r_j gives
		// F = 0, which is discarded.
		for k := 0; k < n; k++ {
			rk := affine.Const(inst.Jobs[k].Release)
			if f, ok := dj.Intersection(rk); ok {
				add(f)
			}
		}
		// Deadline j crosses deadline k (affine forms intersect at most
		// once; parallel when w_j == w_k).
		for k := j + 1; k < n; k++ {
			dk := affine.New(origins[k], new(big.Rat).Inv(inst.Jobs[k].Weight))
			if f, ok := dj.Intersection(dk); ok {
				add(f)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Cmp(out[b]) < 0 })
	return out
}

// ObjectiveRanges turns the sorted milestones F_1 < ... < F_nq into the
// candidate search ranges [0, F_1], [F_1, F_2], ..., [F_nq, +∞). With no
// milestone the single range [0, +∞) covers everything.
func ObjectiveRanges(milestones []*big.Rat) []affine.Range {
	lo := new(big.Rat)
	out := make([]affine.Range, 0, len(milestones)+1)
	for _, m := range milestones {
		out = append(out, affine.Range{Lo: lo, Hi: m})
		lo = m
	}
	out = append(out, affine.Range{Lo: lo})
	return out
}
