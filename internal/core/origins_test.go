package core

import (
	"math/big"
	"testing"

	"divflow/internal/model"
	"divflow/internal/schedule"
)

func TestOriginsValidation(t *testing.T) {
	inst := oneMachine(t, []model.Job{{Name: "J", Release: r(5, 1), Weight: r(1, 1), Size: r(2, 1)}})
	if _, err := MinMaxWeightedFlowWithOrigins(inst, nil, schedule.Divisible); err == nil {
		t.Error("wrong origin count must error")
	}
	if _, err := MinMaxWeightedFlowWithOrigins(inst, []*big.Rat{nil}, schedule.Divisible); err == nil {
		t.Error("nil origin must error")
	}
	if _, err := MinMaxWeightedFlowWithOrigins(inst, []*big.Rat{r(6, 1)}, schedule.Divisible); err == nil {
		t.Error("origin after release must error")
	}
}

func TestOriginsEqualReleasesMatchPlainSolver(t *testing.T) {
	inst := oneMachine(t, []model.Job{
		{Name: "a", Release: r(0, 1), Weight: r(1, 1), Size: r(2, 1)},
		{Name: "b", Release: r(1, 1), Weight: r(2, 1), Size: r(3, 1)},
	})
	plain, err := MinMaxWeightedFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	origins := []*big.Rat{r(0, 1), r(1, 1)}
	withO, err := MinMaxWeightedFlowWithOrigins(inst, origins, schedule.Divisible)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Objective.Cmp(withO.Objective) != 0 {
		t.Errorf("origins==releases gave %v, plain solver %v", withO.Objective, plain.Objective)
	}
}

func TestEarlierOriginsRaiseObjective(t *testing.T) {
	// A job that has already waited 10 seconds before the residual solve
	// accumulates that wait in its flow: the optimum must grow by exactly
	// w * 10 here (single machine, single job: C - o = c + (r - o)).
	inst := oneMachine(t, []model.Job{{Name: "J", Release: r(10, 1), Weight: r(2, 1), Size: r(3, 1)}})
	plain, err := MinMaxWeightedFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Flow from release: C = 13, flow 3, weighted 6.
	if plain.Objective.Cmp(r(6, 1)) != 0 {
		t.Fatalf("plain objective = %v, want 6", plain.Objective)
	}
	res, err := MinMaxWeightedFlowWithOrigins(inst, []*big.Rat{r(0, 1)}, schedule.Divisible)
	if err != nil {
		t.Fatal(err)
	}
	// Flow from origin 0: C = 13, weighted 26.
	if res.Objective.Cmp(r(26, 1)) != 0 {
		t.Errorf("origin-0 objective = %v, want 26", res.Objective)
	}
}

func TestOriginsSingleJobMilestone(t *testing.T) {
	// The self-crossing milestone F = w (r - o) must be enumerated, or the
	// search would start in a range where the deadline precedes the
	// release (the bug class caught by the online simulator).
	inst := oneMachine(t, []model.Job{{Name: "J", Release: r(7, 1), Weight: r(1, 1), Size: r(1, 1)}})
	ms := milestonesWithOrigins(inst, []*big.Rat{r(0, 1)})
	if len(ms) != 1 || ms[0].Cmp(r(7, 1)) != 0 {
		t.Fatalf("milestones = %v, want [7]", ms)
	}
	res, err := MinMaxWeightedFlowWithOrigins(inst, []*big.Rat{r(0, 1)}, schedule.Divisible)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective.Cmp(r(8, 1)) != 0 { // C = 8, origin 0, w = 1
		t.Errorf("objective = %v, want 8", res.Objective)
	}
}

func TestOriginsPreemptiveMode(t *testing.T) {
	jobs := []model.Job{
		{Name: "a", Release: r(2, 1), Weight: r(1, 1), Size: r(4, 1)},
		{Name: "b", Release: r(2, 1), Weight: r(1, 1), Size: r(4, 1)},
	}
	machines := []model.Machine{
		{Name: "m0", InverseSpeed: r(1, 1)},
		{Name: "m1", InverseSpeed: r(1, 1)},
	}
	inst, err := model.NewInstance(jobs, machines)
	if err != nil {
		t.Fatal(err)
	}
	origins := []*big.Rat{r(0, 1), r(2, 1)}
	res, err := MinMaxWeightedFlowWithOrigins(inst, origins, schedule.Preemptive)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(inst, schedule.Preemptive, nil); err != nil {
		t.Fatal(err)
	}
	// Job a measures flow from 0 (has waited 2 s already): both jobs need
	// 4 s from t=2 on their own machine; flows: a: 6, b: 4 -> optimum 6.
	if res.Objective.Cmp(r(6, 1)) != 0 {
		t.Errorf("objective = %v, want 6", res.Objective)
	}
}
