// Package core implements the scheduling algorithms of RR-5386 (Legrand,
// Su, Vivien): makespan minimization in the divisible-load model (Theorem
// 1), deadline feasibility (Lemma 1 / System 2), exact minimization of the
// maximum weighted flow via milestone enumeration (Theorem 2 / LP 3), and
// the same objective under preemption without divisibility (Section 4.4 /
// System 5, using the Lawler–Labetoulle reconstruction).
//
// All solvers operate on exact rational arithmetic end to end: the LPs are
// solved with an exact simplex, milestones are exact rationals, and the
// produced schedules validate exactly.
package core

import (
	"fmt"
	"math/big"

	"divflow/internal/affine"
	"divflow/internal/intervals"
	"divflow/internal/llsched"
	"divflow/internal/lp"
	"divflow/internal/model"
	"divflow/internal/schedule"
	"divflow/internal/stats"
)

// rangeLP is the unified linear program underlying every result in the
// paper. It covers:
//
//   - LP (1), makespan: no deadlines; the final interval is [r_max, r_max+F]
//     so its length is exactly the variable Δ_n = F;
//   - System (2), deadline feasibility: constant deadline forms, F pinned to
//     the degenerate range [0,0];
//   - LP (3), max weighted flow on a milestone range: deadline forms
//     d̄_j(F) = r_j + F/w_j, range [F_i, F_{i+1}];
//   - System (5), the preemptive variant: same as LP (3) plus the per-job
//     per-interval bound (5b).
//
// Variables: F (column 0) plus one fraction α^{(t)}_{i,j} for every
// (interval, machine, job) triple where the job is active in the interval
// (released at or before inf I_t and, when it has a deadline, due at or
// after sup I_t) and the machine is eligible (finite c_{i,j}).
type rangeLP struct {
	inst *model.Instance
	mode schedule.Model
	ivs  []intervals.Interval
	dls  []*affine.Form // per-job deadline form, nil = none
	rg   affine.Range
	at   *big.Rat // interior evaluation point fixing the epochal order

	prob *lp.Problem
	fCol int
	cols [][][]int // [t][i][j] -> LP column, -1 when absent
}

// rangeSolution carries an optimal solution of a rangeLP.
type rangeSolution struct {
	F     *big.Rat       // optimal objective value within the range
	alpha [][][]*big.Rat // [t][i][j] fractions, nil where no variable
	basis *lp.Basis      // optimal basis, reusable as a later warm start
}

// recordSolve classifies one hybrid solve into the tally.
func recordSolve(t *stats.SolverTally, warmTried bool, sol *lp.Solution) {
	switch sol.Method {
	case lp.MethodWarmVerified, lp.MethodWarmSimplex:
		t.WarmHits++
		return
	case lp.MethodFloatVerified:
		t.FloatVerified++
	case lp.MethodCrossover:
		t.Crossovers++
	case lp.MethodExact:
		t.Fallbacks++
	}
	if warmTried {
		t.WarmMisses++
	}
}

func newRangeLP(inst *model.Instance, mode schedule.Model, ivs []intervals.Interval,
	dls []*affine.Form, rg affine.Range) *rangeLP {
	return &rangeLP{inst: inst, mode: mode, ivs: ivs, dls: dls, rg: rg, at: rg.Interior()}
}

func (r *rangeLP) build() {
	n, m := r.inst.N(), r.inst.M()
	r.prob = lp.NewProblem()
	one := big.NewRat(1, 1)
	r.fCol = r.prob.AddVar("F", one)

	r.cols = make([][][]int, len(r.ivs))
	for t := range r.ivs {
		r.cols[t] = make([][]int, m)
		for i := 0; i < m; i++ {
			r.cols[t][i] = make([]int, n)
			for j := 0; j < n; j++ {
				r.cols[t][i][j] = -1
			}
		}
		for j := 0; j < n; j++ {
			rel := affine.Const(r.inst.Jobs[j].Release)
			if !intervals.JobActive(rel, r.dls[j], r.ivs[t], r.at) {
				continue
			}
			for i := 0; i < m; i++ {
				if !r.inst.CanRun(i, j) {
					continue
				}
				r.cols[t][i][j] = r.prob.AddVar(fmt.Sprintf("a_%d_%d_%d", t, i, j), nil)
			}
		}
	}

	// Objective range: F in [Lo, Hi].
	r.prob.AddRow("F>=lo", []lp.Term{{Col: r.fCol, Coef: one}}, lp.GE, r.rg.Lo)
	if r.rg.Hi != nil {
		r.prob.AddRow("F<=hi", []lp.Term{{Col: r.fCol, Coef: one}}, lp.LE, r.rg.Hi)
	}

	// Capacity rows (1b)/(2c)/(3d)/(5c): for each interval and machine,
	// Σ_j α c_{i,j} <= |I_t| = A + B·F, i.e. Σ_j α c_{i,j} − B·F <= A.
	for t, iv := range r.ivs {
		length := iv.Length()
		negB := new(big.Rat).Neg(length.B)
		for i := 0; i < m; i++ {
			var terms []lp.Term
			for j := 0; j < n; j++ {
				if c := r.cols[t][i][j]; c >= 0 {
					cost, _ := r.inst.Cost(i, j)
					terms = append(terms, lp.Term{Col: c, Coef: cost})
				}
			}
			if len(terms) == 0 {
				continue
			}
			if negB.Sign() != 0 {
				terms = append(terms, lp.Term{Col: r.fCol, Coef: negB})
			}
			r.prob.AddRow(fmt.Sprintf("cap_%d_%d", t, i), terms, lp.LE, length.A)
		}
		// Preemptive-only rows (5b): for each interval and job,
		// Σ_i α c_{i,j} <= |I_t|.
		if r.mode != schedule.Preemptive {
			continue
		}
		for j := 0; j < n; j++ {
			var terms []lp.Term
			for i := 0; i < m; i++ {
				if c := r.cols[t][i][j]; c >= 0 {
					cost, _ := r.inst.Cost(i, j)
					terms = append(terms, lp.Term{Col: c, Coef: cost})
				}
			}
			if len(terms) == 0 {
				continue
			}
			if negB.Sign() != 0 {
				terms = append(terms, lp.Term{Col: r.fCol, Coef: negB})
			}
			r.prob.AddRow(fmt.Sprintf("job_%d_%d", t, j), terms, lp.LE, length.A)
		}
	}

	// Completion rows (1d)/(2d)/(3e)/(5a): Σ_t Σ_i α^{(t)}_{i,j} == 1.
	for j := 0; j < n; j++ {
		var terms []lp.Term
		for t := range r.ivs {
			for i := 0; i < m; i++ {
				if c := r.cols[t][i][j]; c >= 0 {
					terms = append(terms, lp.Term{Col: c, Coef: one})
				}
			}
		}
		r.prob.AddRow(fmt.Sprintf("done_%d", j), terms, lp.EQ, one)
	}
}

// solve builds and solves the LP, minimizing F. It returns (nil, nil) when
// the range admits no feasible schedule.
func (r *rangeLP) solve() (*rangeSolution, error) {
	return r.solveWith(nil, nil)
}

// solveWith is solve with warm-start and accounting plumbing: warm is the
// optimal basis of a previous, similarly-shaped solve (or nil), and each
// solve's hybrid-engine path is recorded into tally (when non-nil). All
// paths are exact, so callers that pass nothing lose only speed.
func (r *rangeLP) solveWith(warm *lp.Basis, tally *stats.SolverTally) (*rangeSolution, error) {
	if r.prob == nil {
		r.build()
	}
	sol, err := lp.SolveHybridWarm(r.prob, warm)
	if err != nil {
		return nil, err
	}
	if tally != nil {
		recordSolve(tally, warm != nil, sol)
	}
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, nil
	default:
		return nil, fmt.Errorf("core: range LP reported %v", sol.Status)
	}
	out := &rangeSolution{F: new(big.Rat).Set(sol.X[r.fCol]), basis: sol.Basis}
	n, m := r.inst.N(), r.inst.M()
	out.alpha = make([][][]*big.Rat, len(r.ivs))
	for t := range r.ivs {
		out.alpha[t] = make([][]*big.Rat, m)
		for i := 0; i < m; i++ {
			out.alpha[t][i] = make([]*big.Rat, n)
			for j := 0; j < n; j++ {
				if c := r.cols[t][i][j]; c >= 0 && sol.X[c].Sign() != 0 {
					out.alpha[t][i][j] = new(big.Rat).Set(sol.X[c])
				}
			}
		}
	}
	return out, nil
}

// extract materializes a schedule from an LP solution: interval bounds are
// evaluated at the optimal F; inside each interval the divisible model lines
// the fractions up back to back on each machine, while the preemptive model
// runs the Lawler–Labetoulle decomposition so that no job ever executes on
// two machines simultaneously.
func (r *rangeLP) extract(sol *rangeSolution) (*schedule.Schedule, error) {
	out := &schedule.Schedule{}
	n, m := r.inst.N(), r.inst.M()
	for t, iv := range r.ivs {
		lo := iv.Lo.Eval(sol.F)
		hi := iv.Hi.Eval(sol.F)
		if lo.Cmp(hi) >= 0 {
			// Interval collapsed at the range boundary; capacity forces
			// all its fractions to zero.
			continue
		}
		switch r.mode {
		case schedule.Divisible:
			for i := 0; i < m; i++ {
				cur := new(big.Rat).Set(lo)
				for j := 0; j < n; j++ {
					a := sol.alpha[t][i][j]
					if a == nil {
						continue
					}
					cost, _ := r.inst.Cost(i, j)
					end := new(big.Rat).Mul(a, cost)
					end.Add(end, cur)
					out.Add(i, j, cur, end, a)
					cur = end
				}
			}
		case schedule.Preemptive:
			T := make([][]*big.Rat, m)
			for i := 0; i < m; i++ {
				T[i] = make([]*big.Rat, n)
				for j := 0; j < n; j++ {
					if a := sol.alpha[t][i][j]; a != nil {
						cost, _ := r.inst.Cost(i, j)
						T[i][j] = new(big.Rat).Mul(a, cost)
					}
				}
			}
			window := new(big.Rat).Sub(hi, lo)
			pieces, err := llsched.Decompose(T, window, lo)
			if err != nil {
				return nil, fmt.Errorf("core: interval %d reconstruction: %w", t, err)
			}
			for _, p := range pieces {
				cost, _ := r.inst.Cost(p.Machine, p.Job)
				frac := new(big.Rat).Sub(p.End, p.Start)
				frac.Quo(frac, cost)
				out.Add(p.Machine, p.Job, p.Start, p.End, frac)
			}
		}
	}
	return out, nil
}

// noDeadlines returns a deadline slice with no entries set.
func noDeadlines(n int) []*affine.Form { return make([]*affine.Form, n) }

// flowDeadlines returns the affine deadline forms d̄_j(F) = o_j + F/w_j,
// where o_j is the flow origin of job j (its release date in the plain
// offline problem; possibly earlier in the online re-solve setting, where a
// job has already waited before the residual instance is formed).
func flowDeadlines(inst *model.Instance, origins []*big.Rat) []*affine.Form {
	out := make([]*affine.Form, inst.N())
	for j := range out {
		slope := new(big.Rat).Inv(inst.Jobs[j].Weight)
		f := affine.New(origins[j], slope)
		out[j] = &f
	}
	return out
}

// releaseOrigins returns the default flow origins: the release dates.
func releaseOrigins(inst *model.Instance) []*big.Rat {
	out := make([]*big.Rat, inst.N())
	for j := range out {
		out[j] = inst.Jobs[j].Release
	}
	return out
}

// constDeadlines wraps fixed rational deadlines as constant forms.
func constDeadlines(dls []*big.Rat) []*affine.Form {
	out := make([]*affine.Form, len(dls))
	for j, d := range dls {
		if d == nil {
			continue
		}
		f := affine.Const(d)
		out[j] = &f
	}
	return out
}
