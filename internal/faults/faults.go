// Package faults is a registry of named fault-injection points used by the
// crash/restart test harness. Production code declares a point by calling
// Hit/Error/MaybePanic at the place where the fault would strike; tests arm a
// point with Arm and the next matching call fires exactly once. When nothing
// is armed the hot-path check is a single atomic load, so the hooks can live
// on the WAL append and policy-decide paths without pricing normal runs.
package faults

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// The registered fault points. Every name here must have a corresponding
// Hit/Error/MaybePanic call site in the codebase; TestFaultPointsServed pins
// that each one either keeps the daemon serving or restores exactly.
const (
	// WALAppend fails a WAL record append with ErrInjected before any bytes
	// are written: the record is lost, the log stays consistent.
	WALAppend = "wal-append"
	// WALFsync fails the fsync after a WAL append: the bytes are in the OS
	// page cache but durability is no longer guaranteed.
	WALFsync = "wal-fsync"
	// CrashAfterAppend freezes the log immediately after a successful,
	// durable append — the moment a real crash would strike. Every later
	// append returns ErrCrash; the on-disk state ends exactly at the
	// appended record.
	CrashAfterAppend = "crash-after-append"
	// TornSnapshot truncates the snapshot payload mid-write before the
	// rename, simulating a crash that leaves a corrupt snapshot file in
	// place. Restore must skip it and fall back to the previous snapshot.
	TornSnapshot = "torn-snapshot"
	// PanicInPolicy panics inside a shard's scheduling decision, exercising
	// the shard supervisor.
	PanicInPolicy = "panic-in-policy"
)

// ErrInjected is returned by Error when an armed point fires.
var ErrInjected = errors.New("faults: injected failure")

// ErrCrash marks a simulated crash: the operation that returns it completed
// durably, but everything after it must behave as if the process died.
var ErrCrash = errors.New("faults: simulated crash")

// Points lists every registered fault-point name.
func Points() []string {
	return []string{WALAppend, WALFsync, CrashAfterAppend, TornSnapshot, PanicInPolicy}
}

type point struct {
	countdown int // hits to skip before firing
	fired     bool
}

var (
	mu    sync.Mutex
	armed int32 // atomic: number of armed, unfired points
	reg   = map[string]*point{}
	hits  = map[string]int{} // total Hit calls per name, armed or not
)

// Arm schedules the named point to fire once, after skipping the next `skip`
// hits (skip 0 fires on the very next hit). Re-arming replaces any previous
// schedule for the name.
func Arm(name string, skip int) {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := reg[name]; ok && !p.fired {
		atomic.AddInt32(&armed, -1)
	}
	reg[name] = &point{countdown: skip}
	atomic.AddInt32(&armed, 1)
}

// Disarm removes any schedule for the named point (fired or not).
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := reg[name]; ok {
		if !p.fired {
			atomic.AddInt32(&armed, -1)
		}
		delete(reg, name)
	}
}

// Reset disarms every point and clears all hit counters. Tests call it in
// cleanup so armed points never leak across test cases.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	atomic.StoreInt32(&armed, 0)
	reg = map[string]*point{}
	hits = map[string]int{}
}

// Fired reports whether the named point has fired since it was last armed.
func Fired(name string) bool {
	mu.Lock()
	defer mu.Unlock()
	p, ok := reg[name]
	return ok && p.fired
}

// Hits returns the total number of times the named point's call site was
// reached (whether or not the point was armed). Tests use it to count events
// in a rehearsal run, then Arm(name, n) to strike a specific occurrence.
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	return hits[name]
}

// Hit records that the named point's call site was reached and reports
// whether the point fires now. A point fires exactly once per Arm.
func Hit(name string) bool {
	if atomic.LoadInt32(&armed) == 0 {
		// Fast path: nothing armed anywhere. Hit counters are only
		// maintained while the harness has at least one point armed, which
		// keeps this check off the mutex for production runs.
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	hits[name]++
	p, ok := reg[name]
	if !ok || p.fired {
		return false
	}
	if p.countdown > 0 {
		p.countdown--
		return false
	}
	p.fired = true
	atomic.AddInt32(&armed, -1)
	return true
}

// Error returns ErrInjected (wrapped with the point name) when the named
// point fires, nil otherwise.
func Error(name string) error {
	if Hit(name) {
		return fmt.Errorf("%s: %w", name, ErrInjected)
	}
	return nil
}

// MaybePanic panics when the named point fires.
func MaybePanic(name string) {
	if Hit(name) {
		panic(fmt.Sprintf("faults: injected panic at %s", name))
	}
}
