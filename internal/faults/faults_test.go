package faults

import (
	"errors"
	"sync"
	"testing"
)

// TestHitFiresOncePerArm pins the contract every crash-restore test leans
// on: an armed point fires on exactly one hit, and never again until
// re-armed.
func TestHitFiresOncePerArm(t *testing.T) {
	t.Cleanup(Reset)
	Reset()

	if Hit(WALAppend) {
		t.Fatal("unarmed point fired")
	}
	Arm(WALAppend, 0)
	if !Hit(WALAppend) {
		t.Fatal("armed point did not fire on the next hit")
	}
	for i := 0; i < 3; i++ {
		if Hit(WALAppend) {
			t.Fatal("point fired a second time without re-arming")
		}
	}
	if !Fired(WALAppend) {
		t.Fatal("Fired = false after the point fired")
	}
	Arm(WALAppend, 0)
	if Fired(WALAppend) {
		t.Fatal("re-arming did not clear Fired")
	}
	if !Hit(WALAppend) {
		t.Fatal("re-armed point did not fire")
	}
}

// TestArmSkipCountsHits pins the skip semantics tests use to strike the
// Nth occurrence of an event: Arm(name, n) skips n hits and fires on
// hit n+1.
func TestArmSkipCountsHits(t *testing.T) {
	t.Cleanup(Reset)
	Reset()

	Arm(CrashAfterAppend, 2)
	for i := 0; i < 2; i++ {
		if Hit(CrashAfterAppend) {
			t.Fatalf("fired while skipping, hit %d", i)
		}
	}
	if !Hit(CrashAfterAppend) {
		t.Fatal("did not fire after the skips were consumed")
	}
	// Hit counters run while anything is armed, so a rehearsal run can count
	// occurrences before choosing which one to strike.
	if got := Hits(CrashAfterAppend); got != 3 {
		t.Fatalf("Hits = %d, want 3", got)
	}
}

func TestErrorWrapsInjected(t *testing.T) {
	t.Cleanup(Reset)
	Reset()

	if err := Error(WALFsync); err != nil {
		t.Fatalf("unarmed Error = %v", err)
	}
	Arm(WALFsync, 0)
	err := Error(WALFsync)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Error = %v, want ErrInjected", err)
	}
	if err := Error(WALFsync); err != nil {
		t.Fatalf("second Error = %v, want nil", err)
	}
}

func TestMaybePanicFires(t *testing.T) {
	t.Cleanup(Reset)
	Reset()

	MaybePanic(PanicInPolicy) // unarmed: must not panic
	Arm(PanicInPolicy, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("armed MaybePanic did not panic")
		}
	}()
	MaybePanic(PanicInPolicy)
}

func TestDisarmAndReset(t *testing.T) {
	t.Cleanup(Reset)
	Reset()

	Arm(TornSnapshot, 0)
	Disarm(TornSnapshot)
	if Hit(TornSnapshot) {
		t.Fatal("disarmed point fired")
	}
	Arm(TornSnapshot, 0)
	Reset()
	if Hit(TornSnapshot) {
		t.Fatal("point fired after Reset")
	}
	if got := Hits(TornSnapshot); got != 0 {
		t.Fatalf("Hits after Reset = %d, want 0", got)
	}
}

// TestPointsHaveCallSites keeps the registry honest: every name Points()
// advertises must be a registered constant, and arming one name must not
// make another fire.
func TestPointsHaveCallSites(t *testing.T) {
	t.Cleanup(Reset)
	Reset()

	pts := Points()
	if len(pts) == 0 {
		t.Fatal("no registered fault points")
	}
	for _, name := range pts {
		Arm(name, 0)
	}
	for _, name := range pts {
		if !Hit(name) {
			t.Fatalf("point %s armed but did not fire", name)
		}
	}
	Reset()
	Arm(pts[0], 0)
	for _, name := range pts[1:] {
		if Hit(name) {
			t.Fatalf("arming %s made %s fire", pts[0], name)
		}
	}
}

// TestConcurrentHitsFireExactlyOnce exercises the armed counter under
// parallel call sites, the shape the sharded daemon actually has.
func TestConcurrentHitsFireExactlyOnce(t *testing.T) {
	t.Cleanup(Reset)
	Reset()

	Arm(WALAppend, 5)
	var wg sync.WaitGroup
	fired := make(chan struct{}, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if Hit(WALAppend) {
					fired <- struct{}{}
				}
			}
		}()
	}
	wg.Wait()
	close(fired)
	n := 0
	for range fired {
		n++
	}
	if n != 1 {
		t.Fatalf("point fired %d times across 64 concurrent hits, want exactly 1", n)
	}
}
