package gripps

import (
	"math/rand"
)

// Natural-ish amino acid frequencies (per mille, order of Alphabet:
// ACDEFGHIKLMNPQRSTVWY), approximating the SWISS-PROT composition. The
// exact values only flavor the synthetic data; they do not affect any
// reproduced claim.
var residueFreq = [20]int{
	83, 14, 55, 67, 39, 71, 23, 59, 58, 97,
	24, 40, 47, 39, 55, 66, 53, 69, 11, 30,
}

var freqCumulative = func() [20]int {
	var out [20]int
	sum := 0
	for i, f := range residueFreq {
		sum += f
		out[i] = sum
	}
	return out
}()

// Databank is a named collection of protein sequences, the unit of
// placement in the scheduling model (jobs may only run where their databank
// resides).
type Databank struct {
	Name      string
	Sequences [][]byte
}

// GenerateDatabank synthesizes n protein sequences whose lengths are
// geometrically distributed around meanLen (minimum 20 residues) and whose
// residues follow natural frequencies. Deterministic in seed.
func GenerateDatabank(name string, n, meanLen int, seed int64) *Databank {
	rng := rand.New(rand.NewSource(seed))
	db := &Databank{Name: name, Sequences: make([][]byte, n)}
	for i := range db.Sequences {
		length := 20 + int(rng.ExpFloat64()*float64(meanLen-20))
		seq := make([]byte, length)
		for k := range seq {
			seq[k] = randomResidue(rng)
		}
		db.Sequences[i] = seq
	}
	return db
}

func randomResidue(rng *rand.Rand) byte {
	total := freqCumulative[len(freqCumulative)-1]
	x := rng.Intn(total)
	for i, c := range freqCumulative {
		if x < c {
			return Alphabet[i]
		}
	}
	return Alphabet[len(Alphabet)-1]
}

// NumSequences returns the number of sequences.
func (d *Databank) NumSequences() int { return len(d.Sequences) }

// TotalResidues returns the total number of residues.
func (d *Databank) TotalResidues() int64 {
	var total int64
	for _, s := range d.Sequences {
		total += int64(len(s))
	}
	return total
}

// Subset returns a databank of k sequences drawn uniformly without
// replacement (the partitioning protocol of the Figure 1(a) experiments).
func (d *Databank) Subset(rng *rand.Rand, k int) *Databank {
	if k >= len(d.Sequences) {
		return &Databank{Name: d.Name, Sequences: d.Sequences}
	}
	idx := rng.Perm(len(d.Sequences))[:k]
	out := &Databank{Name: d.Name, Sequences: make([][]byte, k)}
	for i, j := range idx {
		out.Sequences[i] = d.Sequences[j]
	}
	return out
}

// ScanResult aggregates one GriPPS invocation: the number of motif matches
// found, the residues that had to be loaded, and the scanning operations
// performed (the work measure driving the cost model).
type ScanResult struct {
	Matches  int64
	Residues int64
	Ops      int64
}

// Scan runs every motif against every sequence of the databank.
func Scan(db *Databank, motifs []*Motif) ScanResult {
	var res ScanResult
	res.Residues = db.TotalResidues()
	for _, seq := range db.Sequences {
		for _, m := range motifs {
			res.Matches += int64(m.Count(seq, &res.Ops))
		}
	}
	return res
}
