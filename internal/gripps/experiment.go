package gripps

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"divflow/internal/stats"
)

// Paper-published anchor values (seconds) for the GriPPS divisibility
// studies: the fixed overhead of a sequence-partitioned invocation, the
// fixed overhead of a motif-partitioned invocation (dominated by loading
// the whole databank), and the duration of the full reference workload
// (~300 motifs against ~38,000 sequences; read off Figure 1).
const (
	PaperSeqOverheadSec   = 1.1
	PaperMotifOverheadSec = 10.5
	PaperFullWorkloadSec  = 110.0
)

// CostModel maps one GriPPS invocation to simulated seconds:
//
//	time = Startup + LoadPerResidue·residuesLoaded + ScanPerOp·scanOps.
//
// Startup covers process launch and motif compilation; the load term covers
// reading the databank (so invocations that scan the whole databank pay a
// large fixed cost — the 10.5 s overhead of Figure 1(b)); the scan term is
// the useful work.
type CostModel struct {
	Startup        float64
	LoadPerResidue float64
	ScanPerOp      float64
}

// Calibrate anchors a cost model on a reference workload so that the
// paper's three published numbers are reproduced at any databank scale:
// a full-databank load costs PaperMotifOverheadSec − PaperSeqOverheadSec,
// and the full scan (all motifs, whole databank) totals
// PaperFullWorkloadSec.
func Calibrate(db *Databank, motifs []*Motif) (CostModel, ScanResult, error) {
	full := Scan(db, motifs)
	if full.Residues == 0 || full.Ops == 0 {
		return CostModel{}, full, errors.New("gripps: reference workload is empty")
	}
	loadBudget := PaperMotifOverheadSec - PaperSeqOverheadSec
	scanBudget := PaperFullWorkloadSec - PaperMotifOverheadSec
	return CostModel{
		Startup:        PaperSeqOverheadSec,
		LoadPerResidue: loadBudget / float64(full.Residues),
		ScanPerOp:      scanBudget / float64(full.Ops),
	}, full, nil
}

// Time returns the simulated duration of an invocation.
func (cm CostModel) Time(res ScanResult) float64 {
	return cm.Startup + cm.LoadPerResidue*float64(res.Residues) + cm.ScanPerOp*float64(res.Ops)
}

// ExperimentConfig scales the Figure 1 reproduction. The paper used 38,000
// sequences and ~300 motifs with 20 partition sizes and 10 repetitions; the
// default here is a faithful but smaller workload (the claims under test —
// linearity and the two overhead regimes — are scale-free because the cost
// model is calibrated against the configured databank).
type ExperimentConfig struct {
	NumSequences int
	MeanLen      int
	NumMotifs    int
	Steps        int // number of partition sizes
	Reps         int // random subsets per size
	Seed         int64
}

// DefaultConfig returns the scaled-down default experiment.
func DefaultConfig() ExperimentConfig {
	return ExperimentConfig{
		NumSequences: 1900,
		MeanLen:      120,
		NumMotifs:    30,
		Steps:        10,
		Reps:         3,
		Seed:         42,
	}
}

// PaperConfig returns the full-scale protocol of Section 2 (expensive).
func PaperConfig() ExperimentConfig {
	return ExperimentConfig{
		NumSequences: 38000,
		MeanLen:      360,
		NumMotifs:    300,
		Steps:        20,
		Reps:         10,
		Seed:         42,
	}
}

// Point is one measurement of a divisibility study.
type Point struct {
	X       float64 // block size: #sequences (1a) or #motifs (1b)
	TimeSec float64 // simulated invocation duration
}

// FigureResult is a reproduced divisibility study.
type FigureResult struct {
	Label  string
	Points []Point
	Fit    stats.Linear
	// PaperOverheadSec is the intercept the paper reports for this study.
	PaperOverheadSec float64
}

// Figure1a reproduces the sequence-partitioning study: the full motif set is
// compared against random sequence subsets of growing size; execution time
// must be linear in block size with intercept ≈ 1.1 s.
func Figure1a(cfg ExperimentConfig) (*FigureResult, error) {
	db, motifs, cm, err := setup(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	res := &FigureResult{Label: "sequence partitioning", PaperOverheadSec: PaperSeqOverheadSec}
	for s := 1; s <= cfg.Steps; s++ {
		size := cfg.NumSequences * s / cfg.Steps
		for rep := 0; rep < cfg.Reps; rep++ {
			sub := db.Subset(rng, size)
			sc := Scan(sub, motifs)
			res.Points = append(res.Points, Point{X: float64(size), TimeSec: cm.Time(sc)})
		}
	}
	return finishFigure(res)
}

// Figure1b reproduces the motif-partitioning study: motif subsets of growing
// size are compared against the whole databank; execution time must be
// linear in the number of motifs with intercept ≈ 10.5 s (the databank load).
func Figure1b(cfg ExperimentConfig) (*FigureResult, error) {
	db, motifs, cm, err := setup(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	res := &FigureResult{Label: "motif set partitioning", PaperOverheadSec: PaperMotifOverheadSec}
	for s := 1; s <= cfg.Steps; s++ {
		k := cfg.NumMotifs * s / cfg.Steps
		for rep := 0; rep < cfg.Reps; rep++ {
			subset := make([]*Motif, 0, k)
			for _, idx := range rng.Perm(len(motifs))[:k] {
				subset = append(subset, motifs[idx])
			}
			sc := Scan(db, subset)
			res.Points = append(res.Points, Point{X: float64(k), TimeSec: cm.Time(sc)})
		}
	}
	return finishFigure(res)
}

func setup(cfg ExperimentConfig) (*Databank, []*Motif, CostModel, error) {
	if cfg.NumSequences <= 0 || cfg.NumMotifs <= 0 || cfg.Steps <= 0 || cfg.Reps <= 0 {
		return nil, nil, CostModel{}, fmt.Errorf("gripps: invalid experiment config %+v", cfg)
	}
	db := GenerateDatabank("synthetic-swissprot", cfg.NumSequences, cfg.MeanLen, cfg.Seed)
	motifs := RandomMotifSet(rand.New(rand.NewSource(cfg.Seed)), cfg.NumMotifs)
	cm, _, err := Calibrate(db, motifs)
	if err != nil {
		return nil, nil, CostModel{}, err
	}
	return db, motifs, cm, nil
}

func finishFigure(res *FigureResult) (*FigureResult, error) {
	xs := make([]float64, len(res.Points))
	ys := make([]float64, len(res.Points))
	for i, p := range res.Points {
		xs[i], ys[i] = p.X, p.TimeSec
	}
	fit, err := stats.FitLinear(xs, ys)
	if err != nil {
		return nil, err
	}
	res.Fit = fit
	return res, nil
}

// Table renders the measured series and the regression against the paper's
// published overhead, in the spirit of the original plots.
func (r *FigureResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# GriPPS divisibility study: %s\n", r.Label)
	fmt.Fprintf(&b, "# block-size  time-sec\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10.0f  %8.3f\n", p.X, p.TimeSec)
	}
	fmt.Fprintf(&b, "# fit: time = %.3f + %.6f * size   (R^2 = %.5f)\n",
		r.Fit.Intercept, r.Fit.Slope, r.Fit.R2)
	fmt.Fprintf(&b, "# paper overhead: %.1f s, measured intercept: %.3f s\n",
		r.PaperOverheadSec, r.Fit.Intercept)
	return b.String()
}
