package gripps

import (
	"strings"
	"testing"
)

// FuzzParseMotif checks that the motif compiler never panics and that any
// pattern it accepts can be matched against sequences without panicking and
// with sane results.
func FuzzParseMotif(f *testing.F) {
	for _, seed := range []string{
		"C-x(2,4)-C-x(3)-[LIVMFYWC]",
		"<M-A-x>",
		"{P}-[AC](2)-x(0,3)-W",
		"A(3)",
		"x",
		"[LIV]-{P}-A",
		"-", "((", "C-", "[B]", "x(9,1)", "<>",
	} {
		f.Add(seed)
	}
	seqs := [][]byte{
		[]byte("ACDEFGHIKLMNPQRSTVWY"),
		[]byte("MAMAMAMA"),
		[]byte("AAAA"),
		[]byte(""),
	}
	f.Fuzz(func(t *testing.T, pattern string) {
		if len(pattern) > 200 {
			return // keep matching cost bounded
		}
		m, err := ParseMotif(pattern)
		if err != nil {
			return
		}
		if m.MinLength() < 0 {
			t.Fatalf("negative MinLength for %q", pattern)
		}
		var ops int64
		for _, seq := range seqs {
			n := m.Count(seq, &ops)
			if n < 0 || n > len(seq)+1 {
				t.Fatalf("pattern %q: %d matches on %d residues", pattern, n, len(seq))
			}
		}
		if ops < 0 {
			t.Fatalf("pattern %q: negative op count", pattern)
		}
	})
}

// FuzzClassMask checks the residue-class parser in isolation.
func FuzzClassMask(f *testing.F) {
	f.Add("LIVM")
	f.Add("")
	f.Add("ZZZ")
	f.Fuzz(func(t *testing.T, s string) {
		mask, err := classMask(s)
		if err != nil {
			return
		}
		if mask == 0 {
			t.Fatalf("classMask(%q) accepted but produced empty mask", s)
		}
		for i := 0; i < len(s); i++ {
			if !strings.ContainsRune(Alphabet, rune(s[i])) {
				t.Fatalf("classMask(%q) accepted non-residue %q", s, s[i])
			}
		}
	})
}
