package gripps

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestParseMotifExact(t *testing.T) {
	m, err := ParseMotif("C-A-T")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.elements) != 3 || m.MinLength() != 3 {
		t.Fatalf("elements = %d, minlen = %d", len(m.elements), m.MinLength())
	}
	var ops int64
	if got := m.Count([]byte("CATCAT"), &ops); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
	if got := m.Count([]byte("CCCC"), &ops); got != 0 {
		t.Errorf("count = %d, want 0", got)
	}
	if ops == 0 {
		t.Error("operations must be charged")
	}
}

func TestParseMotifClassAndNot(t *testing.T) {
	m, err := ParseMotif("[LIV]-{P}-A")
	if err != nil {
		t.Fatal(err)
	}
	var ops int64
	if got := m.Count([]byte("LGA"), &ops); got != 1 {
		t.Errorf("LGA: count = %d, want 1", got)
	}
	if got := m.Count([]byte("LPA"), &ops); got != 0 {
		t.Errorf("LPA: count = %d, want 0 ({P} must reject P)", got)
	}
	if got := m.Count([]byte("GGA"), &ops); got != 0 {
		t.Errorf("GGA: count = %d, want 0 (G not in [LIV])", got)
	}
}

func TestParseMotifRepetition(t *testing.T) {
	m, err := ParseMotif("C-x(2,4)-C")
	if err != nil {
		t.Fatal(err)
	}
	var ops int64
	cases := []struct {
		seq  string
		want int
	}{
		{"CAAC", 1},   // gap 2
		{"CAAAC", 1},  // gap 3
		{"CAAAAC", 1}, // gap 4
		{"CAC", 0},    // gap 1: too short
		{"CAAAAAC", 0},
	}
	for _, tc := range cases {
		if got := m.Count([]byte(tc.seq), &ops); got != tc.want {
			t.Errorf("%s: count = %d, want %d", tc.seq, got, tc.want)
		}
	}
}

func TestParseMotifFixedRepetition(t *testing.T) {
	m, err := ParseMotif("A(3)")
	if err != nil {
		t.Fatal(err)
	}
	var ops int64
	if got := m.Count([]byte("AAAA"), &ops); got != 2 {
		t.Errorf("AAAA: count = %d, want 2 (positions 0 and 1)", got)
	}
}

func TestParseMotifAnchors(t *testing.T) {
	ms, err := ParseMotif("<M-A")
	if err != nil {
		t.Fatal(err)
	}
	var ops int64
	if got := ms.Count([]byte("MAMA"), &ops); got != 1 {
		t.Errorf("anchored start: count = %d, want 1", got)
	}
	if got := ms.Count([]byte("AMAM"), &ops); got != 0 {
		t.Errorf("anchored start mismatch: count = %d, want 0", got)
	}
	me, err := ParseMotif("A-M>")
	if err != nil {
		t.Fatal(err)
	}
	if got := me.Count([]byte("AMAM"), &ops); got != 1 {
		t.Errorf("anchored end: count = %d, want 1", got)
	}
	if got := me.Count([]byte("AMA"), &ops); got != 0 {
		t.Errorf("anchored end mismatch: count = %d, want 0", got)
	}
}

func TestParseMotifErrors(t *testing.T) {
	for _, bad := range []string{"", "B", "[]", "[LB]", "x(3,2)", "x(", "A--C", "foo"} {
		if _, err := ParseMotif(bad); err == nil {
			t.Errorf("ParseMotif(%q): expected error", bad)
		}
	}
}

func TestBacktrackingOverlap(t *testing.T) {
	// Variable gap followed by a literal requires backtracking:
	// C-x(0,2)-A on "CBA": gap must stretch to 1.
	m, err := ParseMotif("C-x(0,2)-A")
	if err != nil {
		t.Fatal(err)
	}
	var ops int64
	if got := m.Count([]byte("CGA"), &ops); got != 1 {
		t.Errorf("CGA: count = %d, want 1", got)
	}
	if got := m.Count([]byte("CA"), &ops); got != 1 {
		t.Errorf("CA: count = %d, want 1 (zero-length gap)", got)
	}
}

func TestGenerateDatabankDeterministic(t *testing.T) {
	a := GenerateDatabank("a", 50, 100, 7)
	b := GenerateDatabank("b", 50, 100, 7)
	if a.TotalResidues() != b.TotalResidues() {
		t.Error("same seed must give identical databanks")
	}
	if a.NumSequences() != 50 {
		t.Errorf("n = %d", a.NumSequences())
	}
	for _, s := range a.Sequences {
		if len(s) < 20 {
			t.Fatalf("sequence shorter than 20: %d", len(s))
		}
		for _, c := range s {
			if !strings.ContainsRune(Alphabet, rune(c)) {
				t.Fatalf("non-amino residue %q", c)
			}
		}
	}
}

func TestSubset(t *testing.T) {
	db := GenerateDatabank("x", 100, 80, 1)
	rng := rand.New(rand.NewSource(2))
	sub := db.Subset(rng, 30)
	if sub.NumSequences() != 30 {
		t.Errorf("subset size = %d", sub.NumSequences())
	}
	full := db.Subset(rng, 1000)
	if full.NumSequences() != 100 {
		t.Errorf("oversized subset should return everything, got %d", full.NumSequences())
	}
}

func TestScanCountsWork(t *testing.T) {
	db := GenerateDatabank("x", 20, 60, 3)
	motifs := RandomMotifSet(rand.New(rand.NewSource(4)), 5)
	res := Scan(db, motifs)
	if res.Residues != db.TotalResidues() {
		t.Errorf("residues = %d, want %d", res.Residues, db.TotalResidues())
	}
	if res.Ops <= 0 {
		t.Error("scan must charge operations")
	}
}

func TestCalibrationAnchorsPaperNumbers(t *testing.T) {
	db := GenerateDatabank("x", 200, 80, 5)
	motifs := RandomMotifSet(rand.New(rand.NewSource(6)), 10)
	cm, full, err := Calibrate(db, motifs)
	if err != nil {
		t.Fatal(err)
	}
	// Full workload must cost exactly the paper's 110 s.
	if got := cm.Time(full); math.Abs(got-PaperFullWorkloadSec) > 1e-9 {
		t.Errorf("full workload = %v s, want %v", got, PaperFullWorkloadSec)
	}
	// A full-databank invocation with zero scanning costs the motif
	// overhead.
	loadOnly := ScanResult{Residues: full.Residues}
	if got := cm.Time(loadOnly); math.Abs(got-PaperMotifOverheadSec) > 1e-9 {
		t.Errorf("load-only = %v s, want %v", got, PaperMotifOverheadSec)
	}
	// An empty invocation costs the startup overhead.
	if got := cm.Time(ScanResult{}); math.Abs(got-PaperSeqOverheadSec) > 1e-9 {
		t.Errorf("empty = %v s, want %v", got, PaperSeqOverheadSec)
	}
}

func smallConfig() ExperimentConfig {
	return ExperimentConfig{
		NumSequences: 300,
		MeanLen:      60,
		NumMotifs:    12,
		Steps:        6,
		Reps:         2,
		Seed:         9,
	}
}

func TestFigure1aShape(t *testing.T) {
	res, err := Figure1a(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 12 {
		t.Fatalf("points = %d, want steps*reps = 12", len(res.Points))
	}
	// Linearity: the paper reports a nearly perfect linear relationship.
	if res.Fit.R2 < 0.98 {
		t.Errorf("R^2 = %v, want >= 0.98 (near-perfect linearity)", res.Fit.R2)
	}
	// The intercept must reproduce the small sequence-partitioning
	// overhead (1.1 s), well below the motif-partitioning overhead.
	if res.Fit.Intercept < 0 || res.Fit.Intercept > 4 {
		t.Errorf("intercept = %v s, want ≈ 1.1 (small overhead)", res.Fit.Intercept)
	}
	if res.Fit.Slope <= 0 {
		t.Errorf("slope = %v, want positive", res.Fit.Slope)
	}
}

func TestFigure1bShape(t *testing.T) {
	res, err := Figure1b(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Motif subsets are random, and per-motif scan costs are heterogeneous,
	// so a 12-motif test config shows visible scatter (as does the paper's
	// own Figure 1(b)); larger configs tighten the fit.
	if res.Fit.R2 < 0.90 {
		t.Errorf("R^2 = %v, want >= 0.90", res.Fit.R2)
	}
	// The intercept must reproduce the large motif-partitioning overhead:
	// around 10.5 s, clearly separated from 1.1 s.
	if res.Fit.Intercept < 6 || res.Fit.Intercept > 15 {
		t.Errorf("intercept = %v s, want ≈ 10.5 (databank-load overhead)", res.Fit.Intercept)
	}
	if res.Fit.Slope <= 0 {
		t.Errorf("slope = %v, want positive", res.Fit.Slope)
	}
}

func TestOverheadSeparation(t *testing.T) {
	// The headline claim of Section 2: sequence partitioning has an order
	// of magnitude smaller fixed overhead than motif partitioning.
	cfg := smallConfig()
	a, err := Figure1a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure1b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(a.Fit.Intercept < b.Fit.Intercept/2) {
		t.Errorf("overheads not separated: seq %.3f vs motif %.3f",
			a.Fit.Intercept, b.Fit.Intercept)
	}
}

func TestFigureTableRendering(t *testing.T) {
	res, err := Figure1a(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	for _, want := range []string{"sequence partitioning", "fit:", "paper overhead: 1.1"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestRandomMotifSetDistinct(t *testing.T) {
	ms := RandomMotifSet(rand.New(rand.NewSource(12)), 40)
	seen := map[string]bool{}
	for _, m := range ms {
		if seen[m.Pattern] {
			t.Fatalf("duplicate motif %q", m.Pattern)
		}
		seen[m.Pattern] = true
	}
}

func TestExperimentConfigValidation(t *testing.T) {
	bad := ExperimentConfig{}
	if _, err := Figure1a(bad); err == nil {
		t.Error("zero config must error")
	}
}

func BenchmarkScanReference(b *testing.B) {
	db := GenerateDatabank("bench", 200, 100, 1)
	motifs := RandomMotifSet(rand.New(rand.NewSource(2)), 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Scan(db, motifs)
	}
}
