// Package gripps simulates the GriPPS protein-motif comparison application
// that motivates RR-5386 (Section 2). The paper's Figure 1 establishes the
// two properties the scheduling theory rests on: execution time is linear
// in the number of databank sequences scanned with a small fixed overhead
// (≈1.1 s, sequence partitioning), and linear in the number of motifs with
// a large fixed overhead (≈10.5 s, motif partitioning, dominated by loading
// the whole databank).
//
// The original GriPPS code and its 38,000-protein reference databank are
// not available, so this package substitutes:
//
//   - a synthetic databank generator with natural amino-acid frequencies;
//   - a real PROSITE-style motif compiler and scanner (matching actually
//     happens and its operation count drives the model);
//   - a calibrated cost model mapping (residues loaded, scan operations) to
//     simulated seconds, anchored to the paper's three published numbers:
//     1.1 s sequence-partitioning overhead, 10.5 s motif-partitioning
//     overhead, and ≈110 s for the full workload.
package gripps

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Amino acid alphabet (20 standard residues).
const Alphabet = "ACDEFGHIKLMNPQRSTVWY"

var residueIndex = func() map[byte]uint {
	m := make(map[byte]uint, len(Alphabet))
	for i := 0; i < len(Alphabet); i++ {
		m[Alphabet[i]] = uint(i)
	}
	return m
}()

// elemKind discriminates motif element types.
type elemKind int

const (
	elemExact elemKind = iota // a single residue, e.g. C
	elemClass                 // one of a set, e.g. [LIVM]
	elemNot                   // any residue except a set, e.g. {P}
	elemAny                   // x: any residue
)

// element is one position class of a motif, with a repetition range
// (MinRep == MaxRep for fixed repetitions).
type element struct {
	kind   elemKind
	mask   uint32 // bitmask over Alphabet for class/not
	minRep int
	maxRep int
}

// Motif is a compiled PROSITE-style pattern such as
// "C-x(2,4)-C-x(3)-[LIVMFYWC]" with optional anchors '<' (sequence start)
// and '>' (sequence end).
type Motif struct {
	Pattern     string
	elements    []element
	anchorStart bool
	anchorEnd   bool
}

// ParseMotif compiles a PROSITE-style pattern.
func ParseMotif(pattern string) (*Motif, error) {
	m := &Motif{Pattern: pattern}
	body := pattern
	if strings.HasPrefix(body, "<") {
		m.anchorStart = true
		body = body[1:]
	}
	if strings.HasSuffix(body, ">") {
		m.anchorEnd = true
		body = body[:len(body)-1]
	}
	if body == "" {
		return nil, fmt.Errorf("gripps: empty motif %q", pattern)
	}
	for _, tok := range strings.Split(body, "-") {
		el, err := parseElement(tok)
		if err != nil {
			return nil, fmt.Errorf("gripps: motif %q: %w", pattern, err)
		}
		m.elements = append(m.elements, el)
	}
	return m, nil
}

func parseElement(tok string) (element, error) {
	if tok == "" {
		return element{}, fmt.Errorf("empty element")
	}
	el := element{minRep: 1, maxRep: 1}
	rest := tok
	// Repetition suffix: (n) or (n,m).
	if i := strings.IndexByte(rest, '('); i >= 0 {
		if !strings.HasSuffix(rest, ")") {
			return element{}, fmt.Errorf("unterminated repetition in %q", tok)
		}
		rep := rest[i+1 : len(rest)-1]
		rest = rest[:i]
		parts := strings.SplitN(rep, ",", 2)
		lo, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil || lo < 0 {
			return element{}, fmt.Errorf("bad repetition %q", rep)
		}
		hi := lo
		if len(parts) == 2 {
			hi, err = strconv.Atoi(strings.TrimSpace(parts[1]))
			if err != nil || hi < lo {
				return element{}, fmt.Errorf("bad repetition %q", rep)
			}
		}
		el.minRep, el.maxRep = lo, hi
	}
	switch {
	case rest == "x" || rest == "X":
		el.kind = elemAny
	case strings.HasPrefix(rest, "[") && strings.HasSuffix(rest, "]"):
		el.kind = elemClass
		mask, err := classMask(rest[1 : len(rest)-1])
		if err != nil {
			return element{}, err
		}
		el.mask = mask
	case strings.HasPrefix(rest, "{") && strings.HasSuffix(rest, "}"):
		el.kind = elemNot
		mask, err := classMask(rest[1 : len(rest)-1])
		if err != nil {
			return element{}, err
		}
		el.mask = mask
	case len(rest) == 1:
		idx, ok := residueIndex[rest[0]]
		if !ok {
			return element{}, fmt.Errorf("unknown residue %q", rest)
		}
		el.kind = elemExact
		el.mask = 1 << idx
	default:
		return element{}, fmt.Errorf("cannot parse element %q", tok)
	}
	return el, nil
}

func classMask(s string) (uint32, error) {
	if s == "" {
		return 0, fmt.Errorf("empty residue class")
	}
	var mask uint32
	for i := 0; i < len(s); i++ {
		idx, ok := residueIndex[s[i]]
		if !ok {
			return 0, fmt.Errorf("unknown residue %q in class", string(s[i]))
		}
		mask |= 1 << idx
	}
	return mask, nil
}

// accepts reports whether the element accepts residue b, charging one
// operation to ops.
func (el *element) accepts(b byte, ops *int64) bool {
	*ops++
	idx, ok := residueIndex[b]
	if !ok {
		return false
	}
	switch el.kind {
	case elemAny:
		return true
	case elemExact, elemClass:
		return el.mask&(1<<idx) != 0
	case elemNot:
		return el.mask&(1<<idx) == 0
	default:
		return false
	}
}

// MinLength returns the minimum number of residues a match spans.
func (m *Motif) MinLength() int {
	n := 0
	for i := range m.elements {
		n += m.elements[i].minRep
	}
	return n
}

// matchAt reports whether the motif matches starting exactly at pos,
// backtracking over variable repetitions. Operations are charged to ops.
func (m *Motif) matchAt(seq []byte, pos int, ops *int64) bool {
	var rec func(ei, p int) bool
	rec = func(ei, p int) bool {
		if ei == len(m.elements) {
			return !m.anchorEnd || p == len(seq)
		}
		el := &m.elements[ei]
		// Mandatory repetitions.
		for k := 0; k < el.minRep; k++ {
			if p >= len(seq) || !el.accepts(seq[p], ops) {
				return false
			}
			p++
		}
		if rec(ei+1, p) {
			return true
		}
		// Optional repetitions, shortest-first.
		for k := el.minRep; k < el.maxRep; k++ {
			if p >= len(seq) || !el.accepts(seq[p], ops) {
				return false
			}
			p++
			if rec(ei+1, p) {
				return true
			}
		}
		return false
	}
	return rec(0, pos)
}

// Count returns the number of positions of seq at which the motif matches.
// Scanning operations are accumulated into ops (which must be non-nil).
func (m *Motif) Count(seq []byte, ops *int64) int {
	if m.anchorStart {
		if m.matchAt(seq, 0, ops) {
			return 1
		}
		return 0
	}
	matches := 0
	last := len(seq) - m.MinLength()
	for pos := 0; pos <= last; pos++ {
		if m.matchAt(seq, pos, ops) {
			matches++
		}
	}
	return matches
}

// RandomMotif draws a plausible PROSITE-like motif: 3–8 elements mixing
// exact residues, small classes, negated classes and bounded wildcards.
func RandomMotif(rng *rand.Rand) *Motif {
	n := 3 + rng.Intn(6)
	var parts []string
	for i := 0; i < n; i++ {
		var tok string
		switch p := rng.Float64(); {
		case p < 0.55:
			tok = string(Alphabet[rng.Intn(len(Alphabet))])
		case p < 0.70:
			k := 2 + rng.Intn(3)
			seen := map[byte]bool{}
			var class []byte
			for len(class) < k {
				c := Alphabet[rng.Intn(len(Alphabet))]
				if !seen[c] {
					seen[c] = true
					class = append(class, c)
				}
			}
			tok = "[" + string(class) + "]"
		case p < 0.80:
			tok = "{" + string(Alphabet[rng.Intn(len(Alphabet))]) + "}"
		default:
			tok = "x"
		}
		switch q := rng.Float64(); {
		case q < 0.15:
			tok += fmt.Sprintf("(%d)", 2+rng.Intn(3))
		case q < 0.25:
			lo := 1 + rng.Intn(2)
			tok += fmt.Sprintf("(%d,%d)", lo, lo+1+rng.Intn(3))
		}
		parts = append(parts, tok)
	}
	m, err := ParseMotif(strings.Join(parts, "-"))
	if err != nil {
		// The generator only emits valid syntax; a failure is a bug.
		panic(err)
	}
	return m
}

// RandomMotifSet draws n distinct-pattern motifs.
func RandomMotifSet(rng *rand.Rand, n int) []*Motif {
	out := make([]*Motif, 0, n)
	seen := map[string]bool{}
	for len(out) < n {
		m := RandomMotif(rng)
		if seen[m.Pattern] {
			continue
		}
		seen[m.Pattern] = true
		out = append(out, m)
	}
	return out
}
