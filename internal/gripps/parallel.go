package gripps

import (
	"runtime"
	"sync"
)

// ScanParallel runs every motif against every sequence like Scan, but
// distributes the databank across `workers` goroutines (workers <= 0 uses
// GOMAXPROCS). The result is identical to the serial Scan — per-sequence
// results are pure and merged by summation — while the wall-clock scales
// with cores; this mirrors how the real GriPPS servers exploit
// embarrassingly parallel sequence partitioning (the very property the
// paper's Figure 1(a) establishes).
func ScanParallel(db *Databank, motifs []*Motif, workers int) ScanResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(db.Sequences)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return Scan(db, motifs)
	}

	partials := make([]ScanResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var local ScanResult
			for _, seq := range db.Sequences[lo:hi] {
				local.Residues += int64(len(seq))
				for _, m := range motifs {
					local.Matches += int64(m.Count(seq, &local.Ops))
				}
			}
			partials[w] = local
		}(w, lo, hi)
	}
	wg.Wait()

	var total ScanResult
	for _, p := range partials {
		total.Matches += p.Matches
		total.Residues += p.Residues
		total.Ops += p.Ops
	}
	return total
}
