package gripps

import (
	"math/rand"
	"testing"
)

func TestScanParallelMatchesSerial(t *testing.T) {
	db := GenerateDatabank("p", 120, 90, 21)
	motifs := append(CompilePrositeLibrary(), RandomMotifSet(rand.New(rand.NewSource(22)), 8)...)
	want := Scan(db, motifs)
	for _, workers := range []int{0, 1, 2, 3, 7, 200} {
		got := ScanParallel(db, motifs, workers)
		if got != want {
			t.Errorf("workers=%d: %+v != serial %+v", workers, got, want)
		}
	}
}

func TestScanParallelEmptyDatabank(t *testing.T) {
	db := &Databank{Name: "empty"}
	got := ScanParallel(db, CompilePrositeLibrary(), 4)
	if got.Matches != 0 || got.Ops != 0 || got.Residues != 0 {
		t.Errorf("empty scan = %+v", got)
	}
}

func BenchmarkScanSerial(b *testing.B) {
	db := GenerateDatabank("bench", 300, 120, 1)
	motifs := CompilePrositeLibrary()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Scan(db, motifs)
	}
}

func BenchmarkScanParallel(b *testing.B) {
	db := GenerateDatabank("bench", 300, 120, 1)
	motifs := CompilePrositeLibrary()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScanParallel(db, motifs, 0)
	}
}
