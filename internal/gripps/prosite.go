package gripps

import "fmt"

// PrositeEntry is a named real-world motif from the PROSITE database,
// written in the pattern dialect this package compiles. The GriPPS
// application of the paper scans exactly this kind of pattern against
// protein databanks; the curated set below (well-known signature patterns)
// makes examples and tests exercise realistic motif structure — fixed
// residues, residue classes, negations and variable-length gaps.
type PrositeEntry struct {
	Accession string // PROSITE accession, e.g. "PS00028"
	Name      string
	Pattern   string
}

// PrositeLibrary is a curated set of classical PROSITE signature patterns
// (anchors and post-processing rules of the original entries are omitted
// where they do not affect the matching semantics reproduced here).
var PrositeLibrary = []PrositeEntry{
	{"PS00028", "Zinc finger C2H2", "C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H"},
	{"PS00018", "EF-hand calcium-binding", "D-x-[DNS]-{ILVFYW}-[DENSTG]-[DNQGHRK]-{GP}-[LIVMC]-[DENQSTAGC]-x(2)-[DE]-[LIVMFYW]"},
	{"PS00017", "ATP/GTP-binding site (P-loop)", "[AG]-x(4)-G-K-[ST]"},
	{"PS00134", "Serine protease, His active site", "[LIVM]-[ST]-A-[STAG]-H-C"},
	{"PS00135", "Serine protease, Ser active site", "[DNSTAGC]-[GSTAPIMVQH]-x(2)-G-[DE]-S-G-[GS]-[SAPHV]-[LIVMFYWH]-[LIVMFYSTANQH]"},
	{"PS00029", "Leucine zipper", "L-x(6)-L-x(6)-L-x(6)-L"},
	{"PS00001", "N-glycosylation site", "N-{P}-[ST]-{P}"},
	{"PS00004", "cAMP phosphorylation site", "[RK](2)-x-[ST]"},
	{"PS00005", "PKC phosphorylation site", "[ST]-x-[RK]"},
	{"PS00006", "CK2 phosphorylation site", "[ST]-x(2)-[DE]"},
	{"PS00007", "Tyrosine kinase phosphorylation", "[RK]-x(2)-[DE]-x(3)-Y"},
	{"PS00008", "N-myristoylation site", "G-{EDRKHPFYW}-x(2)-[STAGCN]-{P}"},
	{"PS00009", "Amidation site", "x-G-[RK]-[RK]"},
	{"PS00010", "Aspartic acid hydroxylation site", "C-x-[DN]-x(4)-[FY]-x-C-x-C"},
	{"PS00012", "Phosphopantetheine attachment", "[DEQGSTALMKRH]-[LIVMFYSTAC]-[GNQ]-[LIVMFYAG]-[DNEKHS]-S-[LIVMST]-{PCFY}-[STAGCPQLIVMF]-[LIVMATN]-[DENQGTAKRHLM]-[LIVMWSTA]-[LIVGSTACR]-{LPIY}-{VY}-[LIVMFA]"},
	{"PS00027", "Homeobox domain", "[LIVMFYG]-[ASLVR]-x(2)-[LIVMSTACN]-x-[LIVM]-{Y}-x(2)-{L}-[LIV]-[RKNQESTAIY]-[LIVFSTNKH]-W-[FYVC]-x-[NDQTAH]-x(5)-[RKNAIMW]"},
	{"PS00038", "Myb domain", "W-[ST]-x(2)-E-[DE]-x(2)-[LIV]"},
	{"PS00211", "ABC transporter signature", "[LIVMFYC]-[SA]-[SAPGLVFYKQH]-G-[DENQMW]-[KRQASPCLIMFW]-[KRNQSTAVM]-[KRACLVM]-[LIVMFYPAN]-{PHY}-[LIVMFW]-[SAGCLIVP]-{FYWHP}-{KRHP}-[LIVMFYWSTA]"},
	{"PS00237", "G-protein coupled receptor", "[GSTALIVMFYWC]-[GSTANCPDE]-{EDPKRH}-x(2)-[LIVMNQGA]-x(2)-[LIVMFT]-[GSTANC]-[LIVMFYWSTAC]-[DENH]-R-[FYWCSH]-x(2)-[LIVM]"},
	{"PS00301", "G-protein beta WD-40 repeat", "[LIVMSTAC]-[LIVMFYWSTAGC]-[DN]-x(2)-[ITLV]-x-[LIVMFYWGTA]-[DESAG]-[DEQHKRSTAGC]-x(8)-[LIVMFYWG]"},
}

// CompilePrositeLibrary compiles the curated library, returning the motifs
// in library order. It panics on a library defect (covered by tests).
func CompilePrositeLibrary() []*Motif {
	out := make([]*Motif, len(PrositeLibrary))
	for i, e := range PrositeLibrary {
		m, err := ParseMotif(e.Pattern)
		if err != nil {
			panic(fmt.Sprintf("gripps: library entry %s (%s): %v", e.Accession, e.Name, err))
		}
		out[i] = m
	}
	return out
}
