package gripps

import (
	"testing"
)

func TestPrositeLibraryCompiles(t *testing.T) {
	motifs := CompilePrositeLibrary()
	if len(motifs) != len(PrositeLibrary) {
		t.Fatalf("compiled %d of %d", len(motifs), len(PrositeLibrary))
	}
	for i, m := range motifs {
		if m.MinLength() < 2 {
			t.Errorf("%s: suspiciously short motif (min length %d)",
				PrositeLibrary[i].Accession, m.MinLength())
		}
	}
}

func TestPrositeKnownMatches(t *testing.T) {
	var ops int64
	cases := []struct {
		accession string
		seq       string
		want      int
	}{
		// P-loop: [AG]-x(4)-G-K-[ST].
		{"PS00017", "AAAAAGKT", 1},
		{"PS00017", "GPPPPGKS", 1},
		{"PS00017", "AAAAAGKP", 0},
		// N-glycosylation: N-{P}-[ST]-{P}.
		{"PS00001", "NASA", 1},
		{"PS00001", "NPSA", 0}, // proline forbidden at position 2
		{"PS00001", "NATP", 0}, // proline forbidden at position 4
		// Leucine zipper: L-x(6)-L-x(6)-L-x(6)-L.
		{"PS00029", "LAAAAAALAAAAAALAAAAAAL", 1},
		{"PS00029", "LAAAAAALAAAAAALAAAAAA", 0},
		// Zinc finger C2H2: C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H.
		{"PS00028", "CAACAAALAAAAAAAAHAAAH", 1},
		// PKC phosphorylation: [ST]-x-[RK].
		{"PS00005", "SAR", 1},
		{"PS00005", "TAK", 1},
		{"PS00005", "SAA", 0},
	}
	byAcc := map[string]*Motif{}
	for i, m := range CompilePrositeLibrary() {
		byAcc[PrositeLibrary[i].Accession] = m
	}
	for _, tc := range cases {
		m := byAcc[tc.accession]
		if m == nil {
			t.Fatalf("missing library entry %s", tc.accession)
		}
		if got := m.Count([]byte(tc.seq), &ops); got != tc.want {
			t.Errorf("%s on %q: %d matches, want %d", tc.accession, tc.seq, got, tc.want)
		}
	}
}

func TestPrositeLibraryScansDatabank(t *testing.T) {
	db := GenerateDatabank("t", 60, 150, 13)
	res := Scan(db, CompilePrositeLibrary())
	if res.Ops <= 0 {
		t.Fatal("no work performed")
	}
	// Short generic sites (glycosylation, phosphorylation) occur
	// frequently in random sequence; the scan must find some matches.
	if res.Matches == 0 {
		t.Error("expected matches from short generic PROSITE sites on random sequence")
	}
}
