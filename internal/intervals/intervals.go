// Package intervals builds the epochal-time decomposition at the heart of
// every linear program in RR-5386: the release dates (and, where applicable,
// the deadlines) of all jobs are collected, sorted and deduplicated, and
// adjacent values delimit the time intervals I_1, ..., I_nint over which the
// LP fraction variables α^{(t)}_{i,j} are defined.
//
// Epochal times are affine.Forms: constant for release dates, affine in the
// objective F for the deadlines d̄_j(F) = r_j + F/w_j of Sections 4.3–4.4.
// Within a milestone range the relative order of all epochal times is
// constant, so sorting at any interior point of the range is exact.
package intervals

import (
	"math/big"
	"sort"

	"divflow/internal/affine"
)

// Interval is one epochal interval [Lo, Hi[ whose bounds may depend on F.
type Interval struct {
	Lo affine.Form
	Hi affine.Form
}

// Length returns Hi − Lo as an affine form (the RHS of the capacity rows).
func (iv Interval) Length() affine.Form { return iv.Hi.Sub(iv.Lo) }

// SortTimes sorts the forms by their value at the point at and removes
// duplicates (forms with equal value at at). When at is an interior point of
// a milestone range, equal-at-at implies equal-on-the-range, because every
// crossing of two distinct epochal-time forms is by definition a milestone
// and milestone ranges contain no milestone in their interior.
func SortTimes(times []affine.Form, at *big.Rat) []affine.Form {
	type keyed struct {
		f affine.Form
		v *big.Rat
	}
	ks := make([]keyed, len(times))
	for i, f := range times {
		ks[i] = keyed{f, f.Eval(at)}
	}
	sort.SliceStable(ks, func(a, b int) bool { return ks[a].v.Cmp(ks[b].v) < 0 })
	out := make([]affine.Form, 0, len(ks))
	for i, k := range ks {
		if i > 0 && k.v.Cmp(ks[i-1].v) == 0 {
			continue
		}
		out = append(out, k.f)
	}
	return out
}

// Build sorts and deduplicates the epochal times at the point at and returns
// the nint−1 consecutive intervals they delimit. Fewer than two distinct
// times yield no interval.
func Build(times []affine.Form, at *big.Rat) []Interval {
	sorted := SortTimes(times, at)
	if len(sorted) < 2 {
		return nil
	}
	out := make([]Interval, len(sorted)-1)
	for i := range out {
		out[i] = Interval{Lo: sorted[i], Hi: sorted[i+1]}
	}
	return out
}

// FromConstants builds intervals from plain rational epochal times (release
// dates, fixed deadlines). Order does not depend on F.
func FromConstants(points []*big.Rat) []Interval {
	forms := make([]affine.Form, len(points))
	for i, p := range points {
		forms[i] = affine.Const(p)
	}
	return Build(forms, new(big.Rat))
}

// JobActive reports whether a job with release form rel and deadline form
// dl (dl may be the zero Form with nil coefficients meaning "no deadline")
// may be processed during iv, evaluated at the point at. The paper's rules
// (1a)/(2a) and (2b): processing is allowed iff rel <= inf Iv and, when a
// deadline exists, dl >= sup Iv.
func JobActive(rel affine.Form, dl *affine.Form, iv Interval, at *big.Rat) bool {
	if rel.Eval(at).Cmp(iv.Lo.Eval(at)) > 0 {
		return false
	}
	if dl != nil && dl.Eval(at).Cmp(iv.Hi.Eval(at)) < 0 {
		return false
	}
	return true
}
