package intervals

import (
	"math/big"
	"math/rand"
	"testing"

	"divflow/internal/affine"
)

func r(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestFromConstants(t *testing.T) {
	ivs := FromConstants([]*big.Rat{r(5, 1), r(0, 1), r(2, 1), r(5, 1)})
	if len(ivs) != 2 {
		t.Fatalf("got %d intervals, want 2", len(ivs))
	}
	if ivs[0].Lo.A.Cmp(r(0, 1)) != 0 || ivs[0].Hi.A.Cmp(r(2, 1)) != 0 {
		t.Errorf("interval 0 = [%v,%v], want [0,2]", ivs[0].Lo, ivs[0].Hi)
	}
	if ivs[1].Lo.A.Cmp(r(2, 1)) != 0 || ivs[1].Hi.A.Cmp(r(5, 1)) != 0 {
		t.Errorf("interval 1 = [%v,%v], want [2,5]", ivs[1].Lo, ivs[1].Hi)
	}
}

func TestFromConstantsDegenerate(t *testing.T) {
	if ivs := FromConstants([]*big.Rat{r(3, 1), r(3, 1)}); ivs != nil {
		t.Errorf("single distinct point should yield no interval, got %v", ivs)
	}
	if ivs := FromConstants(nil); ivs != nil {
		t.Errorf("empty input should yield no interval, got %v", ivs)
	}
}

func TestLength(t *testing.T) {
	iv := Interval{
		Lo: affine.Const(r(2, 1)),
		Hi: affine.New(r(1, 1), r(1, 2)), // 1 + F/2
	}
	l := iv.Length() // -1 + F/2
	if l.A.Cmp(r(-1, 1)) != 0 || l.B.Cmp(r(1, 2)) != 0 {
		t.Errorf("length = %v", l)
	}
	if got := l.Eval(r(6, 1)); got.Cmp(r(2, 1)) != 0 {
		t.Errorf("length(6) = %v, want 2", got)
	}
}

func TestSortTimesAffine(t *testing.T) {
	// Times: r=0, r=4, d1 = 0 + F (w=1), d2 = 4 + F/2 (w=2).
	// At F=2: values 0, 4, 2, 5 -> order 0, 2, 4, 5.
	times := []affine.Form{
		affine.Const(r(0, 1)),
		affine.Const(r(4, 1)),
		affine.New(r(0, 1), r(1, 1)),
		affine.New(r(4, 1), r(1, 2)),
	}
	at := r(2, 1)
	sorted := SortTimes(times, at)
	if len(sorted) != 4 {
		t.Fatalf("got %d times, want 4", len(sorted))
	}
	want := []*big.Rat{r(0, 1), r(2, 1), r(4, 1), r(5, 1)}
	for i, f := range sorted {
		if f.Eval(at).Cmp(want[i]) != 0 {
			t.Errorf("sorted[%d](2) = %v, want %v", i, f.Eval(at), want[i])
		}
	}
}

func TestSortTimesDedup(t *testing.T) {
	// Two identical deadline forms and a coincident constant at F=4:
	// 2 + F/2 equals 4 at F=4 — but we evaluate at F=2 (value 3 != 4),
	// so only exact duplicates collapse.
	times := []affine.Form{
		affine.New(r(2, 1), r(1, 2)),
		affine.New(r(2, 1), r(1, 2)),
		affine.Const(r(4, 1)),
	}
	sorted := SortTimes(times, r(2, 1))
	if len(sorted) != 2 {
		t.Fatalf("got %d times, want 2 after dedup", len(sorted))
	}
}

func TestBuildCoversGaps(t *testing.T) {
	times := []affine.Form{affine.Const(r(0, 1)), affine.Const(r(10, 1)), affine.Const(r(3, 1))}
	ivs := Build(times, new(big.Rat))
	if len(ivs) != 2 {
		t.Fatalf("got %d intervals", len(ivs))
	}
	// Intervals must tile [0,10] without gap or overlap.
	if ivs[0].Hi.Eval(new(big.Rat)).Cmp(ivs[1].Lo.Eval(new(big.Rat))) != 0 {
		t.Error("intervals must be adjacent")
	}
}

func TestJobActive(t *testing.T) {
	iv := Interval{Lo: affine.Const(r(2, 1)), Hi: affine.Const(r(4, 1))}
	at := new(big.Rat)
	rel0 := affine.Const(r(0, 1))
	rel3 := affine.Const(r(3, 1))
	rel4 := affine.Const(r(4, 1))
	if !JobActive(rel0, nil, iv, at) {
		t.Error("released-before job must be active")
	}
	if JobActive(rel3, nil, iv, at) {
		// Releases delimit intervals, so rel strictly inside only happens
		// in malformed usage; the rule rel <= inf must still reject it.
		t.Error("job released inside the interval must not be active")
	}
	if JobActive(rel4, nil, iv, at) {
		t.Error("job released at sup must not be active")
	}
	dlEarly := affine.Const(r(3, 1))
	dlAtHi := affine.Const(r(4, 1))
	dlLate := affine.Const(r(9, 1))
	if JobActive(rel0, &dlEarly, iv, at) {
		t.Error("deadline before sup must deactivate")
	}
	if !JobActive(rel0, &dlAtHi, iv, at) {
		t.Error("deadline exactly at sup keeps the job active")
	}
	if !JobActive(rel0, &dlLate, iv, at) {
		t.Error("late deadline keeps the job active")
	}
}

// TestBuildSortedProperty checks ordering and adjacency on random inputs.
func TestBuildSortedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for it := 0; it < 100; it++ {
		n := 2 + rng.Intn(10)
		times := make([]affine.Form, n)
		for i := range times {
			times[i] = affine.New(r(int64(rng.Intn(20)), 1), r(int64(rng.Intn(5)), 1))
		}
		at := r(int64(1+rng.Intn(5)), 1)
		ivs := Build(times, at)
		for k, iv := range ivs {
			lo, hi := iv.Lo.Eval(at), iv.Hi.Eval(at)
			if lo.Cmp(hi) >= 0 {
				t.Fatalf("iter %d: interval %d empty or inverted: [%v,%v]", it, k, lo, hi)
			}
			if k > 0 && ivs[k-1].Hi.Eval(at).Cmp(lo) != 0 {
				t.Fatalf("iter %d: gap before interval %d", it, k)
			}
		}
	}
}
