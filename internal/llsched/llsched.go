// Package llsched implements the preemptive-schedule reconstruction scheme
// of Lawler and Labetoulle (JACM 1978), following Gonzalez and Sahni (JACM
// 1976), used by Section 4.4 of RR-5386: given the processing times
// T[i][j] that machine i must dedicate to job j inside a window of length L,
// with every row sum (machine load) and column sum (job time) at most L,
// build an explicit timetable in which no machine runs two jobs at once and
// no job runs on two machines at once.
//
// The algorithm repeatedly extracts a "decrementing set": a matching on the
// positive entries of T that saturates every tight line (row or column whose
// sum equals the remaining window length L'). All matched pairs run in
// parallel for a duration δ chosen so that either a matched entry is
// exhausted or an uncovered line becomes tight; this yields at most
// (#positive entries + #rows + #cols) rounds, each requiring one bipartite
// matching. Such a matching always exists: a Hall-condition argument bounds
// the mass of any set of tight rows by L' times the number of columns it
// touches, and the Mendelsohn–Dulmage theorem combines row- and
// column-saturating matchings.
package llsched

import (
	"errors"
	"fmt"
	"math/big"
)

// Piece is one scheduled run: machine Machine processes job Job during
// [Start, End).
type Piece struct {
	Machine int
	Job     int
	Start   *big.Rat
	End     *big.Rat
}

// ErrInfeasible is returned when a row or column sum exceeds the window
// length, i.e. the input violates constraints (5b)/(5c).
var ErrInfeasible = errors.New("llsched: a line sum exceeds the window length")

// Decompose builds a preemptive timetable for the processing-time matrix T
// (T[i][j] = time machine i spends on job j) inside the window
// [start, start+window). It returns the pieces in chronological order of
// their start times. T is not modified.
func Decompose(T [][]*big.Rat, window, start *big.Rat) ([]Piece, error) {
	m := len(T)
	if m == 0 {
		return nil, nil
	}
	n := len(T[0])
	// Work on a copy; track remaining window length.
	w := make([][]*big.Rat, m)
	for i := range T {
		if len(T[i]) != n {
			return nil, fmt.Errorf("llsched: ragged matrix row %d", i)
		}
		w[i] = make([]*big.Rat, n)
		for j := range T[i] {
			if T[i][j] == nil {
				w[i][j] = new(big.Rat)
			} else {
				if T[i][j].Sign() < 0 {
					return nil, fmt.Errorf("llsched: negative entry T[%d][%d]", i, j)
				}
				w[i][j] = new(big.Rat).Set(T[i][j])
			}
		}
	}
	remaining := new(big.Rat).Set(window)
	now := new(big.Rat).Set(start)

	var out []Piece
	for round := 0; ; round++ {
		if round > len(w)*n+m+n+1 {
			return nil, errors.New("llsched: internal error: decomposition did not terminate")
		}
		rowSum, colSum := lineSums(w)
		if !anyPositive(rowSum) && !anyPositive(colSum) {
			return out, nil
		}
		for i := range rowSum {
			if rowSum[i].Cmp(remaining) > 0 {
				return nil, fmt.Errorf("%w (row %d: %v > %v)", ErrInfeasible, i, rowSum[i], remaining)
			}
		}
		for j := range colSum {
			if colSum[j].Cmp(remaining) > 0 {
				return nil, fmt.Errorf("%w (col %d: %v > %v)", ErrInfeasible, j, colSum[j], remaining)
			}
		}
		match, err := decrementingSet(w, rowSum, colSum, remaining)
		if err != nil {
			return nil, err
		}
		// δ = min(matched entries; slack of lines not covered by the
		// matching; remaining window).
		delta := new(big.Rat).Set(remaining)
		coveredRow := make([]bool, m)
		coveredCol := make([]bool, n)
		for i, j := range match {
			if j < 0 {
				continue
			}
			coveredRow[i] = true
			coveredCol[j] = true
			if w[i][j].Cmp(delta) < 0 {
				delta.Set(w[i][j])
			}
		}
		var slack big.Rat
		for i := range rowSum {
			if !coveredRow[i] && rowSum[i].Sign() > 0 {
				slack.Sub(remaining, rowSum[i])
				if slack.Cmp(delta) < 0 {
					delta.Set(&slack)
				}
			}
		}
		for j := range colSum {
			if !coveredCol[j] && colSum[j].Sign() > 0 {
				slack.Sub(remaining, colSum[j])
				if slack.Cmp(delta) < 0 {
					delta.Set(&slack)
				}
			}
		}
		if delta.Sign() <= 0 {
			return nil, errors.New("llsched: internal error: non-positive step")
		}
		end := new(big.Rat).Add(now, delta)
		for i, j := range match {
			if j < 0 {
				continue
			}
			out = append(out, Piece{Machine: i, Job: j, Start: new(big.Rat).Set(now), End: new(big.Rat).Set(end)})
			w[i][j].Sub(w[i][j], delta)
		}
		now = end
		remaining.Sub(remaining, delta)
	}
}

func lineSums(w [][]*big.Rat) (rows, cols []*big.Rat) {
	m, n := len(w), len(w[0])
	rows = make([]*big.Rat, m)
	cols = make([]*big.Rat, n)
	for i := range rows {
		rows[i] = new(big.Rat)
	}
	for j := range cols {
		cols[j] = new(big.Rat)
	}
	for i := range w {
		for j := range w[i] {
			if w[i][j].Sign() > 0 {
				rows[i].Add(rows[i], w[i][j])
				cols[j].Add(cols[j], w[i][j])
			}
		}
	}
	return rows, cols
}

func anyPositive(xs []*big.Rat) bool {
	for _, x := range xs {
		if x.Sign() > 0 {
			return true
		}
	}
	return false
}

// decrementingSet returns a matching (match[i] = job matched to machine i,
// or -1) over the positive entries of w that saturates every tight row and
// every tight column (sum == remaining).
//
// Saturation is achieved by alternating-path searches in the spirit of the
// Mendelsohn–Dulmage theorem. A plain Kuhn augmentation is not enough: a
// maximum matching may cover a non-tight column instead of a tight one at
// equal cardinality. The search from an unsaturated tight vertex therefore
// accepts two terminal moves: the classic augmentation (path ends at an
// unmatched vertex of the opposite side) and an exchange that re-matches the
// path while dropping the match of a NON-tight vertex of the same side.
// Tight vertices, once saturated, never lose their match, so processing
// every tight row and then every tight column saturates all of them; the
// symmetric-difference argument with the matching guaranteed by
// Gonzalez–Sahni shows one of the two terminal moves is always reachable.
func decrementingSet(w [][]*big.Rat, rowSum, colSum []*big.Rat, remaining *big.Rat) ([]int, error) {
	m, n := len(w), len(w[0])
	matchRow := make([]int, m) // row -> col
	matchCol := make([]int, n) // col -> row
	for i := range matchRow {
		matchRow[i] = -1
	}
	for j := range matchCol {
		matchCol[j] = -1
	}
	tightRow := make([]bool, m)
	tightCol := make([]bool, n)
	for i := range tightRow {
		tightRow[i] = rowSum[i].Cmp(remaining) == 0
	}
	for j := range tightCol {
		tightCol[j] = colSum[j].Cmp(remaining) == 0
	}

	// Greedy seed; improves average-case performance only.
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if w[i][j].Sign() > 0 && matchCol[j] < 0 {
				matchRow[i] = j
				matchCol[j] = i
				break
			}
		}
	}

	var augmentRow func(i int, seenCol []bool) bool
	augmentRow = func(i int, seenCol []bool) bool {
		for j := 0; j < n; j++ {
			if seenCol[j] || w[i][j].Sign() <= 0 {
				continue
			}
			seenCol[j] = true
			other := matchCol[j]
			if other < 0 || augmentRow(other, seenCol) || !tightRow[other] {
				if other >= 0 && matchRow[other] == j {
					// Exchange: row `other` is non-tight and could not be
					// re-matched elsewhere; it gives up column j.
					matchRow[other] = -1
				}
				matchRow[i] = j
				matchCol[j] = i
				return true
			}
		}
		return false
	}
	var augmentCol func(j int, seenRow []bool) bool
	augmentCol = func(j int, seenRow []bool) bool {
		for i := 0; i < m; i++ {
			if seenRow[i] || w[i][j].Sign() <= 0 {
				continue
			}
			seenRow[i] = true
			other := matchRow[i]
			if other < 0 || augmentCol(other, seenRow) || !tightCol[other] {
				if other >= 0 && matchCol[other] == i {
					// Exchange: column `other` is non-tight; drop it.
					matchCol[other] = -1
				}
				matchRow[i] = j
				matchCol[j] = i
				return true
			}
		}
		return false
	}

	for i := 0; i < m; i++ {
		if tightRow[i] && matchRow[i] < 0 {
			if !augmentRow(i, make([]bool, n)) {
				return nil, fmt.Errorf("llsched: no matching saturates tight row %d", i)
			}
		}
	}
	for j := 0; j < n; j++ {
		if tightCol[j] && matchCol[j] < 0 {
			if !augmentCol(j, make([]bool, m)) {
				return nil, fmt.Errorf("llsched: no matching saturates tight column %d", j)
			}
		}
	}
	return matchRow, nil
}
