package llsched

import (
	"errors"
	"math/big"
	"math/rand"
	"sort"
	"testing"
)

func r(a, b int64) *big.Rat { return big.NewRat(a, b) }

func mat(rows ...[]int64) [][]*big.Rat {
	out := make([][]*big.Rat, len(rows))
	for i, row := range rows {
		out[i] = make([]*big.Rat, len(row))
		for j, v := range row {
			out[i][j] = r(v, 1)
		}
	}
	return out
}

// validate checks the three defining properties of a decomposition:
// (1) per (machine, job), total scheduled time equals T[i][j];
// (2) no machine runs two jobs at once;
// (3) no job runs on two machines at once;
// and that all pieces lie in [start, start+window).
func validate(t *testing.T, T [][]*big.Rat, window, start *big.Rat, pieces []Piece) {
	t.Helper()
	m, n := len(T), len(T[0])
	total := make([][]*big.Rat, m)
	for i := range total {
		total[i] = make([]*big.Rat, n)
		for j := range total[i] {
			total[i][j] = new(big.Rat)
		}
	}
	end := new(big.Rat).Add(start, window)
	for _, p := range pieces {
		if p.Start.Cmp(start) < 0 || p.End.Cmp(end) > 0 {
			t.Fatalf("piece %+v outside window [%v,%v)", p, start, end)
		}
		if p.Start.Cmp(p.End) >= 0 {
			t.Fatalf("piece %+v empty or inverted", p)
		}
		total[p.Machine][p.Job].Add(total[p.Machine][p.Job], new(big.Rat).Sub(p.End, p.Start))
	}
	for i := range T {
		for j := range T[i] {
			want := T[i][j]
			if want == nil {
				want = new(big.Rat)
			}
			if total[i][j].Cmp(want) != 0 {
				t.Fatalf("T[%d][%d]: scheduled %v, want %v", i, j, total[i][j], want)
			}
		}
	}
	checkDisjoint := func(key func(Piece) int, groups int, what string) {
		byG := make([][]Piece, groups)
		for _, p := range pieces {
			byG[key(p)] = append(byG[key(p)], p)
		}
		for g, ps := range byG {
			sort.Slice(ps, func(a, b int) bool { return ps[a].Start.Cmp(ps[b].Start) < 0 })
			for k := 1; k < len(ps); k++ {
				if ps[k].Start.Cmp(ps[k-1].End) < 0 {
					t.Fatalf("%s %d overlaps: %+v and %+v", what, g, ps[k-1], ps[k])
				}
			}
		}
	}
	checkDisjoint(func(p Piece) int { return p.Machine }, m, "machine")
	checkDisjoint(func(p Piece) int { return p.Job }, n, "job")
}

func TestDecomposeIdentity(t *testing.T) {
	T := mat([]int64{3, 0}, []int64{0, 3})
	pieces, err := Decompose(T, r(3, 1), r(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	validate(t, T, r(3, 1), r(0, 1), pieces)
	if len(pieces) != 2 {
		t.Errorf("diagonal matrix should decompose in one round, got %d pieces", len(pieces))
	}
}

func TestDecomposeNeedsPreemption(t *testing.T) {
	// 2 machines, 3 jobs; window 2:
	//   T = [1 1 0; 0 1 1] — every line sum <= 2, job 1 needed on both.
	T := mat([]int64{1, 1, 0}, []int64{0, 1, 1})
	pieces, err := Decompose(T, r(2, 1), r(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	validate(t, T, r(2, 1), r(0, 1), pieces)
}

func TestDecomposeTightEverywhere(t *testing.T) {
	// Doubly tight (all row and column sums equal the window): a Birkhoff
	// decomposition case.
	T := mat([]int64{2, 1, 1}, []int64{1, 2, 1}, []int64{1, 1, 2})
	pieces, err := Decompose(T, r(4, 1), r(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	validate(t, T, r(4, 1), r(10, 1), pieces)
}

func TestDecomposeRationals(t *testing.T) {
	T := [][]*big.Rat{
		{r(1, 3), r(1, 2)},
		{r(1, 2), r(1, 3)},
	}
	window := r(5, 6)
	pieces, err := Decompose(T, window, r(1, 7))
	if err != nil {
		t.Fatal(err)
	}
	validate(t, T, window, r(1, 7), pieces)
}

func TestDecomposeEmptyAndZero(t *testing.T) {
	pieces, err := Decompose(nil, r(1, 1), r(0, 1))
	if err != nil || pieces != nil {
		t.Errorf("empty matrix: %v, %v", pieces, err)
	}
	T := mat([]int64{0, 0}, []int64{0, 0})
	pieces, err = Decompose(T, r(0, 1), r(0, 1))
	if err != nil || len(pieces) != 0 {
		t.Errorf("zero matrix: %v, %v", pieces, err)
	}
}

func TestDecomposeNilEntries(t *testing.T) {
	T := [][]*big.Rat{{r(1, 1), nil}, {nil, r(1, 1)}}
	pieces, err := Decompose(T, r(1, 1), r(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	validate(t, T, r(1, 1), r(0, 1), pieces)
}

func TestDecomposeInfeasible(t *testing.T) {
	T := mat([]int64{3, 2}) // row sum 5 > window 4
	if _, err := Decompose(T, r(4, 1), r(0, 1)); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	Tc := mat([]int64{3}, []int64{2}) // column sum 5 > window 4
	if _, err := Decompose(Tc, r(4, 1), r(0, 1)); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible for column, got %v", err)
	}
}

func TestDecomposeNegativeEntry(t *testing.T) {
	T := [][]*big.Rat{{r(-1, 1)}}
	if _, err := Decompose(T, r(1, 1), r(0, 1)); err == nil {
		t.Fatal("want error for negative entry")
	}
}

func TestDecomposeRagged(t *testing.T) {
	T := [][]*big.Rat{{r(1, 1), r(1, 1)}, {r(1, 1)}}
	if _, err := Decompose(T, r(2, 1), r(0, 1)); err == nil {
		t.Fatal("want error for ragged matrix")
	}
}

// TestDecomposeRandom exercises the decomposition on random feasible
// matrices: random entries, window = max line sum.
func TestDecomposeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for it := 0; it < 200; it++ {
		m := 1 + rng.Intn(5)
		n := 1 + rng.Intn(6)
		T := make([][]*big.Rat, m)
		for i := range T {
			T[i] = make([]*big.Rat, n)
			for j := range T[i] {
				if rng.Intn(3) == 0 {
					T[i][j] = new(big.Rat)
				} else {
					T[i][j] = r(int64(rng.Intn(8)), int64(1+rng.Intn(4)))
				}
			}
		}
		window := new(big.Rat)
		rows, cols := lineSums(T)
		for _, s := range append(rows, cols...) {
			if s.Cmp(window) > 0 {
				window.Set(s)
			}
		}
		if window.Sign() == 0 {
			continue
		}
		pieces, err := Decompose(T, window, r(int64(rng.Intn(10)), 1))
		if err != nil {
			t.Fatalf("iter %d: %v", it, err)
		}
		start := pieces[0].Start
		validate(t, T, window, start, pieces)
	}
}

// TestDecomposeOptimalWindow checks that when the window equals the max line
// sum (the Gonzalez–Sahni optimum), the decomposition still succeeds — the
// hardest case, where tight lines must be saturated at every round.
func TestDecomposeOptimalWindow(t *testing.T) {
	T := mat(
		[]int64{4, 0, 2},
		[]int64{2, 3, 1},
		[]int64{0, 3, 3},
	)
	// Max line sum: rows 6,6,6; cols 6,6,6 -> window 6.
	pieces, err := Decompose(T, r(6, 1), r(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	validate(t, T, r(6, 1), r(0, 1), pieces)
	// With window == every line sum, machines must be busy the whole
	// window: total scheduled time = 18 = 3 machines x 6.
	total := new(big.Rat)
	for _, p := range pieces {
		total.Add(total, new(big.Rat).Sub(p.End, p.Start))
	}
	if total.Cmp(r(18, 1)) != 0 {
		t.Errorf("total busy time %v, want 18", total)
	}
}

func BenchmarkDecompose8x8(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	T := make([][]*big.Rat, 8)
	for i := range T {
		T[i] = make([]*big.Rat, 8)
		for j := range T[i] {
			T[i][j] = r(int64(rng.Intn(10)), 1)
		}
	}
	window := new(big.Rat)
	rows, cols := lineSums(T)
	for _, s := range append(rows, cols...) {
		if s.Cmp(window) > 0 {
			window.Set(s)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(T, window, new(big.Rat)); err != nil {
			b.Fatal(err)
		}
	}
}
