package llsched

import (
	"math/big"
	"sort"
	"testing"
	"testing/quick"
)

// TestDecomposeQuick is a testing/quick property: for any small matrix of
// bounded non-negative rationals, Decompose with window = max line sum
// produces an overlap-free timetable that schedules exactly T[i][j] time
// for every pair.
func TestDecomposeQuick(t *testing.T) {
	type entry struct {
		Num uint8
		Den uint8
	}
	property := func(rows [3][4]entry, startNum uint8) bool {
		T := make([][]*big.Rat, 3)
		for i := range T {
			T[i] = make([]*big.Rat, 4)
			for j := range T[i] {
				den := int64(rows[i][j].Den%4) + 1
				num := int64(rows[i][j].Num % 8)
				T[i][j] = big.NewRat(num, den)
			}
		}
		window := new(big.Rat)
		rs, cs := lineSums(T)
		for _, s := range append(rs, cs...) {
			if s.Cmp(window) > 0 {
				window.Set(s)
			}
		}
		if window.Sign() == 0 {
			return true
		}
		start := big.NewRat(int64(startNum%16), 1)
		pieces, err := Decompose(T, window, start)
		if err != nil {
			return false
		}
		return decompositionValid(T, window, start, pieces)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// decompositionValid re-checks the three defining properties without
// failing the test framework (quick wants a bool).
func decompositionValid(T [][]*big.Rat, window, start *big.Rat, pieces []Piece) bool {
	m, n := len(T), len(T[0])
	total := make([][]*big.Rat, m)
	for i := range total {
		total[i] = make([]*big.Rat, n)
		for j := range total[i] {
			total[i][j] = new(big.Rat)
		}
	}
	end := new(big.Rat).Add(start, window)
	for _, p := range pieces {
		if p.Start.Cmp(start) < 0 || p.End.Cmp(end) > 0 || p.Start.Cmp(p.End) >= 0 {
			return false
		}
		total[p.Machine][p.Job].Add(total[p.Machine][p.Job], new(big.Rat).Sub(p.End, p.Start))
	}
	for i := range T {
		for j := range T[i] {
			if total[i][j].Cmp(T[i][j]) != 0 {
				return false
			}
		}
	}
	overlapFree := func(key func(Piece) int, groups int) bool {
		byG := make([][]Piece, groups)
		for _, p := range pieces {
			byG[key(p)] = append(byG[key(p)], p)
		}
		for _, ps := range byG {
			sort.Slice(ps, func(a, b int) bool { return ps[a].Start.Cmp(ps[b].Start) < 0 })
			for k := 1; k < len(ps); k++ {
				if ps[k].Start.Cmp(ps[k-1].End) < 0 {
					return false
				}
			}
		}
		return true
	}
	return overlapFree(func(p Piece) int { return p.Machine }, m) &&
		overlapFree(func(p Piece) int { return p.Job }, n)
}
