package lp

import "math/big"

// basisFactor is an exact dense LU factorization (with row pivoting) of the
// m x m basis matrix B whose columns are the chosen columns of the standard
// form: P·B = L·U with L unit lower triangular. It answers the two linear
// systems the hybrid verifier needs — B x = b for the primal basic values
// and Bᵀ y = c_B for the dual vector — in O(m²) rational operations after
// the O(m³) factorization, far cheaper than pivoting a full tableau to the
// same basis.
type basisFactor struct {
	m    int
	lu   [][]*big.Rat // combined L\U, rows already permuted
	perm []int        // perm[k] = original row index of permuted row k
}

// factorize builds the LU factors of the basis columns, or returns nil when
// the chosen columns are singular (not a basis).
func factorize(sf *stdForm, basis []int) *basisFactor {
	m := sf.m
	lu := make([][]*big.Rat, m)
	for i := range lu {
		lu[i] = make([]*big.Rat, m)
		for k := range lu[i] {
			lu[i][k] = new(big.Rat)
		}
	}
	for k, col := range basis {
		for t, r := range sf.colRows[col] {
			lu[r][k].Set(sf.colVals[col][t])
		}
	}
	f := &basisFactor{m: m, lu: lu, perm: make([]int, m)}
	for i := range f.perm {
		f.perm[i] = i
	}
	var tmp big.Rat
	for k := 0; k < m; k++ {
		// Pick the sparsest-looking nonzero pivot in the column: exact
		// elimination suffers no instability, but small pivots keep the
		// intermediate rationals short.
		pivot := -1
		best := 0
		for i := k; i < m; i++ {
			if lu[i][k].Sign() == 0 {
				continue
			}
			sz := lu[i][k].Num().BitLen() + lu[i][k].Denom().BitLen()
			if pivot == -1 || sz < best {
				pivot, best = i, sz
			}
		}
		if pivot == -1 {
			return nil // singular
		}
		if pivot != k {
			lu[k], lu[pivot] = lu[pivot], lu[k]
			f.perm[k], f.perm[pivot] = f.perm[pivot], f.perm[k]
		}
		inv := new(big.Rat).Inv(lu[k][k])
		for i := k + 1; i < m; i++ {
			if lu[i][k].Sign() == 0 {
				continue
			}
			factor := lu[i][k]
			factor.Mul(factor, inv) // stored L entry
			for j := k + 1; j < m; j++ {
				if lu[k][j].Sign() == 0 {
					continue
				}
				tmp.Mul(factor, lu[k][j])
				lu[i][j].Sub(lu[i][j], &tmp)
			}
		}
	}
	return f
}

// solve returns x with B x = b.
func (f *basisFactor) solve(b []*big.Rat) []*big.Rat {
	m := f.m
	x := make([]*big.Rat, m)
	var tmp big.Rat
	// Forward: L z = P b (L unit diagonal).
	for i := 0; i < m; i++ {
		x[i] = new(big.Rat).Set(b[f.perm[i]])
		for j := 0; j < i; j++ {
			if f.lu[i][j].Sign() == 0 || x[j].Sign() == 0 {
				continue
			}
			tmp.Mul(f.lu[i][j], x[j])
			x[i].Sub(x[i], &tmp)
		}
	}
	// Backward: U x = z.
	for i := m - 1; i >= 0; i-- {
		for j := i + 1; j < m; j++ {
			if f.lu[i][j].Sign() == 0 || x[j].Sign() == 0 {
				continue
			}
			tmp.Mul(f.lu[i][j], x[j])
			x[i].Sub(x[i], &tmp)
		}
		x[i].Quo(x[i], f.lu[i][i])
	}
	return x
}

// solveT returns y with Bᵀ y = c. With P·B = L·U we have Bᵀ = Uᵀ Lᵀ P, so
// solve Uᵀ z = c forward, Lᵀ w = z backward, and y = Pᵀ w.
func (f *basisFactor) solveT(c []*big.Rat) []*big.Rat {
	m := f.m
	w := make([]*big.Rat, m)
	var tmp big.Rat
	// Forward: Uᵀ z = c (Uᵀ lower triangular, diagonal from U).
	for i := 0; i < m; i++ {
		w[i] = new(big.Rat).Set(c[i])
		for j := 0; j < i; j++ {
			if f.lu[j][i].Sign() == 0 || w[j].Sign() == 0 {
				continue
			}
			tmp.Mul(f.lu[j][i], w[j])
			w[i].Sub(w[i], &tmp)
		}
		w[i].Quo(w[i], f.lu[i][i])
	}
	// Backward: Lᵀ w' = z (unit diagonal).
	for i := m - 1; i >= 0; i-- {
		for j := i + 1; j < m; j++ {
			if f.lu[j][i].Sign() == 0 || w[j].Sign() == 0 {
				continue
			}
			tmp.Mul(f.lu[j][i], w[j])
			w[i].Sub(w[i], &tmp)
		}
	}
	y := make([]*big.Rat, m)
	for k := 0; k < m; k++ {
		y[f.perm[k]] = w[k]
	}
	return y
}
