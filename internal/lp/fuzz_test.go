package lp

import (
	"math/rand"
	"testing"
)

// FuzzLPDifferential is the native-fuzz arm of the differential suite: each
// input seeds the random-LP generator (feasible, infeasible, unbounded, and
// degenerate flavours) and requires SolveHybrid to match SolveRat bit for
// bit on status and exact objective, with an exactly feasible point on
// optimal instances. `go test` replays the seed corpus; CI additionally runs
// `go test -fuzz FuzzLPDifferential -fuzztime 20s` so the harness itself can
// never silently rot; longer local runs explore further.
func FuzzLPDifferential(f *testing.F) {
	f.Add(int64(1), uint8(2))
	f.Add(int64(2024), uint8(4))
	f.Add(int64(-7), uint8(1))
	f.Add(int64(42), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, rounds uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(rounds%4)
		for i := 0; i < n; i++ {
			p, flavour := randomProblem(rng)
			checkAgainstRat(t, p, flavour)
		}
	})
}
