package lp

import "math/big"

// Method reports which path of the hybrid engine produced a solution. Every
// path ends in exact rational arithmetic, so the status and optimal
// objective are exactly those SolveRat would report (degenerate instances
// may surface a different, equally optimal vertex); the method only
// reflects how much exact work was needed.
type Method int

const (
	// MethodExact is the full two-phase exact simplex (SolveRat, or the
	// hybrid driver's last-resort fallback).
	MethodExact Method = iota
	// MethodFloatVerified means the float64 simplex proposed a basis (or an
	// infeasibility certificate) that exact refactorization verified — the
	// common fast path: no exact pivots at all.
	MethodFloatVerified
	// MethodCrossover means the float basis was exactly feasible but not
	// exactly optimal; the exact simplex finished from it.
	MethodCrossover
	// MethodWarmVerified means a caller-provided warm basis was still
	// optimal under the perturbed data: verified with zero pivots.
	MethodWarmVerified
	// MethodWarmSimplex means the warm basis was still feasible and the
	// exact simplex re-optimized from it.
	MethodWarmSimplex
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodExact:
		return "exact"
	case MethodFloatVerified:
		return "float-verified"
	case MethodCrossover:
		return "crossover"
	case MethodWarmVerified:
		return "warm-verified"
	case MethodWarmSimplex:
		return "warm-simplex"
	default:
		return "unknown"
	}
}

// WarmStart reports whether the solve reused the caller's warm basis.
func (m Method) WarmStart() bool { return m == MethodWarmVerified || m == MethodWarmSimplex }

// Basis is a reusable handle to the optimal basis of a solved problem. It is
// opaque: hand it back to SolveHybridWarm when re-solving a perturbed
// version of the same problem (changed RHS via SetRHS, changed coefficients
// on an identically-shaped clone) and the solver will try to start from it
// instead of from scratch. A stale or mismatched basis costs only the failed
// exact verification — correctness never depends on it.
type Basis struct {
	m, numCols, artStart int
	cols                 []int
}

func newBasis(sf *stdForm, cols []int) *Basis {
	return &Basis{
		m:        sf.m,
		numCols:  sf.numCols,
		artStart: sf.artStart,
		cols:     append([]int(nil), cols...),
	}
}

// compatible reports whether the basis indexes the same standard-form shape.
func (b *Basis) compatible(sf *stdForm) bool {
	return b != nil && b.m == sf.m && b.numCols == sf.numCols && b.artStart == sf.artStart
}

// SolveHybrid solves the problem exactly, using the float64 simplex to guess
// the optimal basis and exact rational refactorization to verify it:
//
//  1. The float simplex runs to (approximate) optimality.
//  2. Its final basis is refactorized over big.Rat; exact primal feasibility
//     and exact reduced-cost optimality are checked. If both hold, the exact
//     solution is read off the factorization — no exact pivots at all.
//  3. A float "infeasible" outcome is accepted only with an exact Farkas
//     certificate derived from the phase-1 dual vector.
//  4. On any check failure, the exact simplex finishes the job — from the
//     float basis when it is exactly feasible (crossover), from scratch
//     otherwise — so the status and exact optimal objective always equal
//     SolveRat's (on degenerate instances the returned vertex may be a
//     different, equally optimal one).
func SolveHybrid(p *Problem) (*Solution, error) {
	return SolveHybridWarm(p, nil)
}

// SolveHybridWarm is SolveHybrid with a warm-start basis from a previous
// solve of a similarly-shaped problem. A compatible warm basis that is
// still optimal settles the solve with one exact refactorization and zero
// pivots; a stale one costs only that failed check — the float engine then
// re-locates the optimum as usual, and the warm basis is retried as an
// exact starting point only if the float basis itself fails verification.
// Incompatible bases are ignored outright.
func SolveHybridWarm(p *Problem, warm *Basis) (*Solution, error) {
	sf, err := newStdForm(p)
	if err != nil {
		return nil, err
	}
	warmUsable := warm.compatible(sf) && sf.validBasis(warm.cols)
	if warmUsable {
		if sol := tryBasisExact(sf, warm.cols); sol != nil {
			sol.Method = MethodWarmVerified
			return sol, nil
		}
	}
	run := runFloat(sf)
	// A float basis identical to the already-rejected warm basis would just
	// repeat the same exact checks; skip straight to the fallbacks.
	sameAsWarm := func(basis []int) bool {
		if !warmUsable || len(basis) != len(warm.cols) {
			return false
		}
		for i, c := range basis {
			if warm.cols[i] != c {
				return false
			}
		}
		return true
	}
	switch run.status {
	case Optimal:
		if sf.validBasis(run.basis) && !sameAsWarm(run.basis) {
			if sol := tryBasisExact(sf, run.basis); sol != nil {
				sol.Method = MethodFloatVerified
				return sol, nil
			}
			if sol := finishFromBasis(sf, run.basis); sol != nil {
				sol.Method = MethodCrossover
				return sol, nil
			}
		}
	case Infeasible:
		if sf.validBasis(run.basis) && certifyInfeasible(sf, run.basis) {
			return &Solution{Status: Infeasible, Method: MethodFloatVerified}, nil
		}
	}
	// The float engine failed to hand over a verifiable answer. A warm
	// basis that is still exactly feasible beats a cold start: re-optimize
	// from it.
	if warmUsable {
		if sol := finishFromBasis(sf, warm.cols); sol != nil {
			sol.Method = MethodWarmSimplex
			return sol, nil
		}
	}
	// Unbounded, stalled, or failed verification: full exact fallback.
	sol, err := solveRatCold(sf)
	if err != nil {
		return nil, err
	}
	sol.Method = MethodExact
	return sol, nil
}

// tryBasisExact refactorizes the candidate basis over the rationals and
// returns the exact optimal solution when the basis is exactly primal
// feasible and exactly dual optimal (all reduced costs >= 0), nil otherwise.
// Artificial columns may sit in the basis only at value zero (redundant
// rows).
func tryBasisExact(sf *stdForm, basis []int) *Solution {
	sf.columns()
	f := factorize(sf, basis)
	if f == nil {
		return nil
	}
	xB := f.solve(sf.rhs)
	for k, v := range xB {
		if v.Sign() < 0 {
			return nil // not primal feasible
		}
		if basis[k] >= sf.artStart && v.Sign() != 0 {
			return nil // an artificial carries value: not a solution of p
		}
	}
	cB := make([]*big.Rat, sf.m)
	for k, c := range basis {
		cB[k] = sf.cost[c]
	}
	y := f.solveT(cB)
	inBasis := make([]bool, sf.numCols)
	for _, c := range basis {
		inBasis[c] = true
	}
	for j := 0; j < sf.artStart; j++ {
		if inBasis[j] {
			continue // basic columns have reduced cost exactly 0
		}
		d := sf.colDot(y, j)
		d.Sub(sf.cost[j], d)
		if d.Sign() < 0 {
			return nil // not dual optimal
		}
	}
	x := make([]*big.Rat, sf.p.numVars)
	for j := range x {
		x[j] = new(big.Rat)
	}
	obj := new(big.Rat)
	var tmp big.Rat
	for k, c := range basis {
		if c < sf.p.numVars {
			x[c].Set(xB[k])
		}
		if cB[k].Sign() != 0 {
			tmp.Mul(cB[k], xB[k])
			obj.Add(obj, &tmp)
		}
	}
	return &Solution{Status: Optimal, Objective: obj, X: x, Basis: newBasis(sf, basis)}
}

// finishFromBasis pivots an exact tableau to the candidate basis and, when
// that basis is exactly primal feasible, lets the exact simplex finish from
// there. Returns nil when the basis is singular or infeasible (the caller
// falls back to a cold start).
func finishFromBasis(sf *stdForm, basis []int) *Solution {
	t, ok := newWarmRatTableau(sf, basis)
	if !ok {
		return nil
	}
	for r := range t.rhs {
		if t.rhs[r].Sign() < 0 {
			return nil // not primal feasible at this basis
		}
		if t.basis[r] >= sf.artStart && t.rhs[r].Sign() != 0 {
			return nil // a basic artificial carries value
		}
	}
	// Basic artificials at zero are pivoted out (or proven stuck on
	// redundant rows) exactly as after phase 1.
	t.evictArtificials()
	t.setObjective(sf.cost)
	switch t.iterate() {
	case Optimal:
		return t.solution()
	case Unbounded:
		// From an exactly feasible basis, exact pivoting to an unbounded
		// ray is a proof of unboundedness.
		return &Solution{Status: Unbounded}
	}
	return nil
}

// certifyInfeasible checks, exactly, whether the dual vector of the float
// phase-1 basis is a Farkas certificate of infeasibility: y with yᵀA_j <= 0
// for every real (non-artificial) column and yᵀb > 0. If it is, no x >= 0
// satisfies Ax = b, because 0 < yᵀb = yᵀAx = Σ_j (yᵀA_j) x_j <= 0 would be a
// contradiction.
func certifyInfeasible(sf *stdForm, basis []int) bool {
	hasArt := false
	for _, c := range basis {
		if c >= sf.artStart {
			hasArt = true
			break
		}
	}
	if !hasArt {
		return false // no artificial left: nothing suggests infeasibility
	}
	sf.columns()
	f := factorize(sf, basis)
	if f == nil {
		return false
	}
	one := big.NewRat(1, 1)
	cB := make([]*big.Rat, sf.m)
	for k, c := range basis {
		if c >= sf.artStart {
			cB[k] = one
		} else {
			cB[k] = ratZero
		}
	}
	y := f.solveT(cB)
	yb := new(big.Rat)
	var tmp big.Rat
	for i, b := range sf.rhs {
		if y[i].Sign() == 0 || b.Sign() == 0 {
			continue
		}
		tmp.Mul(y[i], b)
		yb.Add(yb, &tmp)
	}
	if yb.Sign() <= 0 {
		return false
	}
	for j := 0; j < sf.artStart; j++ {
		if sf.colDot(y, j).Sign() > 0 {
			return false
		}
	}
	return true
}
