package lp

import (
	"math/big"
	"math/rand"
	"testing"
)

// checkAgainstRat solves p with both engines and requires identical status
// and exactly identical objectives. It returns the hybrid solution.
func checkAgainstRat(t *testing.T, p *Problem, label string) *Solution {
	t.Helper()
	hs, err := SolveHybrid(p)
	if err != nil {
		t.Fatalf("%s: hybrid: %v", label, err)
	}
	rs, err := SolveRat(p)
	if err != nil {
		t.Fatalf("%s: rat: %v", label, err)
	}
	if hs.Status != rs.Status {
		t.Fatalf("%s: hybrid status %v (method %v), rat status %v", label, hs.Status, hs.Method, rs.Status)
	}
	if hs.Status == Optimal {
		if hs.Objective.Cmp(rs.Objective) != 0 {
			t.Fatalf("%s: hybrid objective %v (method %v) != rat %v",
				label, hs.Objective.RatString(), hs.Method, rs.Objective.RatString())
		}
		checkFeasible(t, p, hs, label)
	}
	return hs
}

// checkFeasible verifies the returned point satisfies every constraint
// exactly.
func checkFeasible(t *testing.T, p *Problem, sol *Solution, label string) {
	t.Helper()
	for _, v := range sol.X {
		if v.Sign() < 0 {
			t.Fatalf("%s: negative primal value %v", label, v.RatString())
		}
	}
	for _, row := range p.rows {
		lhs := new(big.Rat)
		for _, tm := range row.Terms {
			lhs.Add(lhs, new(big.Rat).Mul(tm.Coef, sol.X[tm.Col]))
		}
		c := lhs.Cmp(row.RHS)
		switch row.Sense {
		case LE:
			if c > 0 {
				t.Fatalf("%s: row %q violated: %v > %v", label, row.Name, lhs.RatString(), row.RHS.RatString())
			}
		case GE:
			if c < 0 {
				t.Fatalf("%s: row %q violated: %v < %v", label, row.Name, lhs.RatString(), row.RHS.RatString())
			}
		case EQ:
			if c != 0 {
				t.Fatalf("%s: row %q violated: %v != %v", label, row.Name, lhs.RatString(), row.RHS.RatString())
			}
		}
	}
}

// randomProblem builds a random LP of one of four flavours: feasible
// bounded, infeasible, unbounded, or heavily degenerate.
func randomProblem(rng *rand.Rand) (*Problem, string) {
	switch rng.Intn(4) {
	case 0:
		return randomFeasibleProblem(rng, 2+rng.Intn(5), 2+rng.Intn(6)), "feasible"
	case 1:
		// Feasible core plus a contradictory pair on one variable.
		p := randomFeasibleProblem(rng, 2+rng.Intn(4), 1+rng.Intn(4))
		j := rng.Intn(p.NumVars())
		lo := int64(5 + rng.Intn(5))
		p.AddRow("contradict-lo", []Term{{j, rat(1, 1)}}, GE, rat(lo, 1))
		p.AddRow("contradict-hi", []Term{{j, rat(1, 1)}}, LE, rat(lo-1-int64(rng.Intn(3)), 1))
		return p, "infeasible"
	case 2:
		// A variable with negative cost constrained only from below.
		p := NewProblem()
		free := p.AddVar("down", rat(-1-int64(rng.Intn(3)), 1))
		for i := 0; i < 1+rng.Intn(3); i++ {
			x := p.AddVar("", rat(int64(rng.Intn(5)), 1))
			p.AddRow("", []Term{{x, rat(1, 1)}}, LE, rat(int64(1+rng.Intn(9)), 1))
		}
		p.AddRow("floor", []Term{{free, rat(1, 1)}}, GE, rat(int64(rng.Intn(3)), 1))
		return p, "unbounded"
	default:
		// Degenerate: many tied rows through the origin.
		p := NewProblem()
		n := 3 + rng.Intn(4)
		cols := make([]int, n)
		for j := range cols {
			cols[j] = p.AddVar("", rat(int64(rng.Intn(7)-3), 1))
		}
		for i := 0; i < 4+rng.Intn(6); i++ {
			var terms []Term
			for _, c := range cols {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{c, rat(int64(1+rng.Intn(3)), 1)})
				}
			}
			if len(terms) == 0 {
				terms = append(terms, Term{cols[0], rat(1, 1)})
			}
			p.AddRow("", terms, LE, rat(0, 1))
		}
		p.AddRow("cap", []Term{{cols[0], rat(1, 1)}}, LE, rat(int64(rng.Intn(4)), 1))
		return p, "degenerate"
	}
}

// TestHybridDifferential is the differential property test of the hybrid
// engine: across random feasible, infeasible, unbounded and degenerate LPs,
// SolveHybrid must match SolveRat's status and exact objective bit for bit.
func TestHybridDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	flavours := map[string]int{}
	methods := map[Method]int{}
	for it := 0; it < 120; it++ {
		p, flavour := randomProblem(rng)
		hs := checkAgainstRat(t, p, flavour)
		flavours[flavour]++
		methods[hs.Method]++
	}
	for _, f := range []string{"feasible", "infeasible", "unbounded", "degenerate"} {
		if flavours[f] == 0 {
			t.Errorf("flavour %s never generated", f)
		}
	}
	if methods[MethodFloatVerified] == 0 {
		t.Errorf("float-verified fast path never taken; methods: %v", methods)
	}
	t.Logf("flavours: %v, methods: %v", flavours, methods)
}

// TestHybridFallbackPath drives SolveHybrid onto its full-fallback path with
// instances whose feasibility is decided by quantities far below float64
// resolution, and onto the crossover path with vertices separated by less
// than the float solver can see.
func TestHybridFallbackPath(t *testing.T) {
	tiny := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Exp(big.NewInt(2), big.NewInt(80), nil))

	// x >= 1, x <= 1 - 2^-80: exactly infeasible, but floats see x = 1 as
	// feasible, so the float basis fails exact verification and the exact
	// simplex must decide. The statuses still agree — that is the point.
	p := NewProblem()
	x := p.AddVar("x", rat(1, 1))
	hi := new(big.Rat).Sub(rat(1, 1), tiny)
	p.AddRow("lo", []Term{{x, rat(1, 1)}}, GE, rat(1, 1))
	p.AddRow("hi", []Term{{x, rat(1, 1)}}, LE, hi)
	hs := checkAgainstRat(t, p, "sub-float-infeasible")
	if hs.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", hs.Status)
	}
	if hs.Method != MethodExact {
		t.Errorf("method %v, want the exact fallback", hs.Method)
	}

	// min -x - y with two vertices whose objectives differ by ~2^-80: the
	// float solver can land on (and declare optimal) the exactly-worse one;
	// every path must still return the exact optimum.
	q := NewProblem()
	qx := q.AddVar("x", rat(-1, 1))
	qy := q.AddVar("y", rat(-1, 1))
	onePlus := new(big.Rat).Add(rat(1, 1), tiny)
	q.AddRow("r1", []Term{{qx, rat(1, 1)}, {qy, onePlus}}, LE, rat(1, 1))
	q.AddRow("r2", []Term{{qx, rat(1, 1)}, {qy, rat(1, 1)}}, LE, rat(1, 1))
	checkAgainstRat(t, q, "sub-float-vertex")
}

// TestHybridCertifiedInfeasible: a plainly infeasible LP is decided by the
// float phase 1 plus an exact Farkas certificate, with no exact pivoting.
func TestHybridCertifiedInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", rat(1, 1))
	p.AddRow("lo", []Term{{x, rat(1, 1)}}, GE, rat(5, 1))
	p.AddRow("hi", []Term{{x, rat(1, 1)}}, LE, rat(3, 1))
	sol, err := SolveHybrid(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
	if sol.Method != MethodFloatVerified {
		t.Errorf("method %v, want float-verified (Farkas certificate)", sol.Method)
	}
}

// TestHybridMatchesRatOnGoldenShapes re-runs the package's hand-written
// cases through the hybrid engine.
func TestHybridMatchesRatOnGoldenShapes(t *testing.T) {
	cases := map[string]*Problem{}
	cases["classic"] = buildSimple()
	{
		p := NewProblem()
		x := p.AddVar("x", rat(1, 1))
		y := p.AddVar("y", rat(1, 1))
		p.AddRow("sum", []Term{{x, rat(1, 1)}, {y, rat(1, 1)}}, EQ, rat(10, 1))
		p.AddRow("diff", []Term{{x, rat(1, 1)}, {y, rat(-1, 1)}}, EQ, rat(4, 1))
		cases["equality"] = p
	}
	{
		p := NewProblem()
		x4 := p.AddVar("x4", rat(-3, 4))
		x5 := p.AddVar("x5", rat(150, 1))
		x6 := p.AddVar("x6", rat(-1, 50))
		x7 := p.AddVar("x7", rat(6, 1))
		p.AddRow("r1", []Term{{x4, rat(1, 4)}, {x5, rat(-60, 1)}, {x6, rat(-1, 25)}, {x7, rat(9, 1)}}, LE, rat(0, 1))
		p.AddRow("r2", []Term{{x4, rat(1, 2)}, {x5, rat(-90, 1)}, {x6, rat(-1, 50)}, {x7, rat(3, 1)}}, LE, rat(0, 1))
		p.AddRow("r3", []Term{{x6, rat(1, 1)}}, LE, rat(1, 1))
		cases["beale"] = p
	}
	{
		p := NewProblem()
		x := p.AddVar("x", rat(1, 1))
		y := p.AddVar("y", rat(2, 1))
		p.AddRow("e1", []Term{{x, rat(1, 1)}, {y, rat(1, 1)}}, EQ, rat(5, 1))
		p.AddRow("e2", []Term{{x, rat(2, 1)}, {y, rat(2, 1)}}, EQ, rat(10, 1))
		cases["redundant"] = p
	}
	for name, p := range cases {
		checkAgainstRat(t, p, name)
	}
}

// TestWarmStartRHSPerturbation: Clone + SetRHS + warm basis re-solve. Small
// RHS perturbations keep the optimal basis, so the warm path must verify it
// with zero pivots; large ones must still produce the exact optimum.
func TestWarmStartRHSPerturbation(t *testing.T) {
	p := buildSimple() // min -3x -5y; rows x<=4, 2y<=12, 3x+2y<=18
	base, err := SolveHybrid(p)
	if err != nil {
		t.Fatal(err)
	}
	if base.Status != Optimal || base.Basis == nil {
		t.Fatalf("base solve: %v basis=%v", base.Status, base.Basis)
	}

	// Perturb the binding capacity 18 -> 37/2. Same optimal basis.
	q := p.Clone()
	q.SetRHS(2, rat(37, 2))
	warm, err := SolveHybridWarm(q, base.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal {
		t.Fatalf("warm status %v", warm.Status)
	}
	if warm.Method != MethodWarmVerified {
		t.Errorf("method %v, want warm-verified", warm.Method)
	}
	ref, err := SolveRat(q)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Objective.Cmp(ref.Objective) != 0 {
		t.Errorf("warm objective %v != rat %v", warm.Objective.RatString(), ref.Objective.RatString())
	}

	// A drastic perturbation that changes the optimal basis must still be
	// exact, whichever path it takes.
	q2 := p.Clone()
	q2.SetRHS(2, rat(1, 2))
	warm2, err := SolveHybridWarm(q2, base.Basis)
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := SolveRat(q2)
	if err != nil {
		t.Fatal(err)
	}
	if warm2.Status != ref2.Status || warm2.Objective.Cmp(ref2.Objective) != 0 {
		t.Errorf("perturbed warm solve: %v %v (method %v), want %v %v",
			warm2.Status, warm2.Objective.RatString(), warm2.Method, ref2.Status, ref2.Objective.RatString())
	}

	// The original problem is untouched by the clone's mutations.
	if p.rows[2].RHS.Cmp(rat(18, 1)) != 0 {
		t.Error("Clone did not isolate the original problem")
	}
}

// TestWarmStartRandom: random feasible problems re-solved after random RHS
// loosening; warm solves must match cold exact solves bit for bit.
func TestWarmStartRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	warmHits := 0
	for it := 0; it < 40; it++ {
		p := randomFeasibleProblem(rng, 2+rng.Intn(4), 2+rng.Intn(5))
		base, err := SolveHybrid(p)
		if err != nil {
			t.Fatal(err)
		}
		if base.Status != Optimal {
			t.Fatalf("iter %d: base status %v (feasible bounded by construction)", it, base.Status)
		}
		q := p.Clone()
		for i := 0; i < q.NumRows(); i++ {
			if rng.Intn(3) == 0 {
				bump := new(big.Rat).Add(q.rows[i].RHS, rat(int64(rng.Intn(4)), 1))
				q.SetRHS(i, bump)
			}
		}
		warm, err := SolveHybridWarm(q, base.Basis)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := SolveRat(q)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != ref.Status {
			t.Fatalf("iter %d: warm status %v != %v", it, warm.Status, ref.Status)
		}
		if warm.Status == Optimal && warm.Objective.Cmp(ref.Objective) != 0 {
			t.Fatalf("iter %d: warm objective %v (method %v) != %v",
				it, warm.Objective.RatString(), warm.Method, ref.Objective.RatString())
		}
		if warm.Method.WarmStart() {
			warmHits++
		}
	}
	if warmHits == 0 {
		t.Error("warm basis never reused across 40 perturbed re-solves")
	}
	t.Logf("warm hits: %d/40", warmHits)
}

// TestWarmStartIncompatibleBasisIgnored: a basis from a different shape must
// be ignored, not crash or corrupt the result.
func TestWarmStartIncompatibleBasisIgnored(t *testing.T) {
	p := buildSimple()
	base, err := SolveHybrid(p)
	if err != nil {
		t.Fatal(err)
	}
	q := NewProblem()
	x := q.AddVar("x", rat(1, 1))
	q.AddRow("r", []Term{{x, rat(1, 1)}}, GE, rat(2, 1))
	sol, err := SolveHybridWarm(q, base.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective.Cmp(rat(2, 1)) != 0 {
		t.Fatalf("got %v %v, want optimal 2", sol.Status, sol.Objective)
	}
	if sol.Method.WarmStart() {
		t.Errorf("incompatible basis reported as warm start (%v)", sol.Method)
	}
}
