// Package lp provides linear-programming solvers used by the offline
// scheduling algorithms of Legrand, Su and Vivien (RR-5386).
//
// Two solvers are provided over the same Problem representation:
//
//   - SolveRat: an exact two-phase primal simplex over math/big.Rat with
//     Bland's anti-cycling rule. The paper's polynomial-time optimality
//     arguments rely on exact rational arithmetic (the binary search over
//     milestones must terminate on exact values), so every offline solver in
//     this repository uses SolveRat.
//   - SolveFloat: a float64 tableau simplex with epsilon tolerances, used
//     for large-scale benchmarks and for the online simulator's frequent
//     re-solves, where exactness is not part of the reproduced claim.
//
// Problems are stated in the general form
//
//	minimize  c.x   subject to   row_k . x  (<=|=|>=)  b_k,   x >= 0.
//
// Variables are implicitly non-negative; bounded or free variables must be
// modelled with explicit rows or variable splitting by the caller (the
// scheduling LPs only ever need non-negative variables).
package lp

import (
	"fmt"
	"math/big"
	"strings"
)

// Sense is the comparison direction of a constraint row.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // row . x <= rhs
	EQ              // row . x == rhs
	GE              // row . x >= rhs
)

// String returns the conventional symbol for the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Term is one sparse entry of a row or of the objective: Coef * x[Col].
type Term struct {
	Col  int
	Coef *big.Rat
}

// Row is a single linear constraint.
type Row struct {
	Terms []Term
	Sense Sense
	RHS   *big.Rat
	// Name is an optional label used in error messages and dumps.
	Name string
}

// Problem is a linear program in general form. The zero value is an empty
// problem; add variables with AddVar and constraints with AddRow.
type Problem struct {
	numVars   int
	varNames  []string
	objective []*big.Rat // dense, len == numVars
	rows      []Row
}

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem {
	return &Problem{}
}

// AddVar appends a new non-negative variable with the given objective
// coefficient and returns its column index. The name is only used for
// debugging output and may be empty.
func (p *Problem) AddVar(name string, objCoef *big.Rat) int {
	if objCoef == nil {
		objCoef = new(big.Rat)
	}
	p.numVars++
	p.varNames = append(p.varNames, name)
	p.objective = append(p.objective, new(big.Rat).Set(objCoef))
	return p.numVars - 1
}

// NumVars reports the number of variables added so far.
func (p *Problem) NumVars() int { return p.numVars }

// NumRows reports the number of constraint rows added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// SetObjective overwrites the objective coefficient of variable col.
func (p *Problem) SetObjective(col int, coef *big.Rat) {
	p.objective[col].Set(coef)
}

// AddRow appends a constraint. Terms may mention a column at most once;
// coefficients are copied, so the caller may reuse the backing rationals.
func (p *Problem) AddRow(name string, terms []Term, sense Sense, rhs *big.Rat) {
	cp := make([]Term, 0, len(terms))
	for _, t := range terms {
		if t.Col < 0 || t.Col >= p.numVars {
			panic(fmt.Sprintf("lp: row %q references unknown column %d", name, t.Col))
		}
		if t.Coef == nil || t.Coef.Sign() == 0 {
			continue
		}
		cp = append(cp, Term{Col: t.Col, Coef: new(big.Rat).Set(t.Coef)})
	}
	p.rows = append(p.rows, Row{Terms: cp, Sense: sense, RHS: new(big.Rat).Set(rhs), Name: name})
}

// Status reports the outcome of a solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of an exact solve.
type Solution struct {
	Status    Status
	Objective *big.Rat   // valid when Status == Optimal
	X         []*big.Rat // primal values, len == NumVars, valid when Optimal
}

// Value returns the primal value of column col.
func (s *Solution) Value(col int) *big.Rat { return s.X[col] }

// FloatSolution is the result of a float64 solve.
type FloatSolution struct {
	Status    Status
	Objective float64
	X         []float64
}

// Dump renders the problem in a human-readable form, for tests and debugging.
func (p *Problem) Dump() string {
	var b strings.Builder
	b.WriteString("min ")
	first := true
	for j, c := range p.objective {
		if c.Sign() == 0 {
			continue
		}
		if !first {
			b.WriteString(" + ")
		}
		first = false
		fmt.Fprintf(&b, "%s*%s", c.RatString(), p.varName(j))
	}
	if first {
		b.WriteString("0")
	}
	b.WriteString("\n")
	for _, r := range p.rows {
		for i, t := range r.Terms {
			if i > 0 {
				b.WriteString(" + ")
			}
			fmt.Fprintf(&b, "%s*%s", t.Coef.RatString(), p.varName(t.Col))
		}
		fmt.Fprintf(&b, " %s %s", r.Sense, r.RHS.RatString())
		if r.Name != "" {
			fmt.Fprintf(&b, "   [%s]", r.Name)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func (p *Problem) varName(j int) string {
	if p.varNames[j] != "" {
		return p.varNames[j]
	}
	return fmt.Sprintf("x%d", j)
}
