// Package lp provides linear-programming solvers used by the offline
// scheduling algorithms of Legrand, Su and Vivien (RR-5386).
//
// Three solvers are provided over the same Problem representation:
//
//   - SolveHybrid (and SolveHybridWarm): the default exact engine. A
//     float64 simplex guesses the optimal basis, which is then exactly
//     refactorized over math/big.Rat and verified (primal feasibility,
//     reduced-cost optimality, or a Farkas infeasibility certificate); on
//     any verification failure the exact simplex finishes the job, so the
//     status and exact optimal objective always equal SolveRat's. The paper's
//     polynomial-time optimality arguments rely on exact rational
//     arithmetic (the binary search over milestones must terminate on exact
//     values), and this engine preserves that exactness while paying
//     rational-arithmetic prices only to check, not to search.
//   - SolveRat: the exact two-phase primal simplex over big.Rat, with
//     Dantzig pricing degrading to Bland's anti-cycling rule under
//     sustained degeneracy. The reference implementation the hybrid engine
//     falls back to.
//   - SolveFloat: the float64 tableau simplex with epsilon tolerances, used
//     standalone for large-scale estimates where exactness is not part of
//     the reproduced claim.
//
// Problems are stated in the general form
//
//	minimize  c.x   subject to   row_k . x  (<=|=|>=)  b_k,   x >= 0.
//
// Variables are implicitly non-negative; bounded or free variables must be
// modelled with explicit rows or variable splitting by the caller (the
// scheduling LPs only ever need non-negative variables).
package lp

import (
	"fmt"
	"math/big"
	"strings"
)

// Sense is the comparison direction of a constraint row.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // row . x <= rhs
	EQ              // row . x == rhs
	GE              // row . x >= rhs
)

// String returns the conventional symbol for the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Term is one sparse entry of a row or of the objective: Coef * x[Col].
type Term struct {
	Col  int
	Coef *big.Rat
}

// Row is a single linear constraint.
type Row struct {
	Terms []Term
	Sense Sense
	RHS   *big.Rat
	// Name is an optional label used in error messages and dumps.
	Name string
}

// Problem is a linear program in general form. The zero value is an empty
// problem; add variables with AddVar and constraints with AddRow.
type Problem struct {
	numVars   int
	varNames  []string
	objective []*big.Rat // dense, len == numVars
	rows      []Row
}

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem {
	return &Problem{}
}

// AddVar appends a new non-negative variable with the given objective
// coefficient and returns its column index. The name is only used for
// debugging output and may be empty.
func (p *Problem) AddVar(name string, objCoef *big.Rat) int {
	if objCoef == nil {
		objCoef = new(big.Rat)
	}
	p.numVars++
	p.varNames = append(p.varNames, name)
	p.objective = append(p.objective, new(big.Rat).Set(objCoef))
	return p.numVars - 1
}

// NumVars reports the number of variables added so far.
func (p *Problem) NumVars() int { return p.numVars }

// NumRows reports the number of constraint rows added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// SetObjective overwrites the objective coefficient of variable col.
func (p *Problem) SetObjective(col int, coef *big.Rat) {
	p.objective[col].Set(coef)
}

// AddRow appends a constraint. Terms may mention a column at most once;
// coefficients are copied, so the caller may reuse the backing rationals.
func (p *Problem) AddRow(name string, terms []Term, sense Sense, rhs *big.Rat) {
	cp := make([]Term, 0, len(terms))
	for _, t := range terms {
		if t.Col < 0 || t.Col >= p.numVars {
			panic(fmt.Sprintf("lp: row %q references unknown column %d", name, t.Col))
		}
		if t.Coef == nil || t.Coef.Sign() == 0 {
			continue
		}
		cp = append(cp, Term{Col: t.Col, Coef: new(big.Rat).Set(t.Coef)})
	}
	p.rows = append(p.rows, Row{Terms: cp, Sense: sense, RHS: new(big.Rat).Set(rhs), Name: name})
}

// Clone returns a deep copy of the problem. Perturb-and-resolve flows clone
// the base problem, adjust it (SetRHS, SetObjective), and re-solve with the
// previous solution's Basis as a warm start.
func (p *Problem) Clone() *Problem {
	cp := &Problem{
		numVars:   p.numVars,
		varNames:  append([]string(nil), p.varNames...),
		objective: make([]*big.Rat, len(p.objective)),
		rows:      make([]Row, len(p.rows)),
	}
	for j, c := range p.objective {
		cp.objective[j] = new(big.Rat).Set(c)
	}
	for i, r := range p.rows {
		terms := make([]Term, len(r.Terms))
		for k, t := range r.Terms {
			terms[k] = Term{Col: t.Col, Coef: new(big.Rat).Set(t.Coef)}
		}
		cp.rows[i] = Row{Terms: terms, Sense: r.Sense, RHS: new(big.Rat).Set(r.RHS), Name: r.Name}
	}
	return cp
}

// SetRHS replaces the right-hand side of row i. Flipping the sign of an
// inequality's RHS changes the row's standard-form normalization and hence
// the meaning of the slack/artificial columns a pre-change Basis refers to;
// such a basis is at best rejected cheaply, at worst tried and discarded by
// SolveHybridWarm's exact verification — which, not the shape check, is
// what protects correctness.
func (p *Problem) SetRHS(i int, rhs *big.Rat) {
	p.rows[i].RHS = new(big.Rat).Set(rhs)
}

// Status reports the outcome of a solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of an exact solve.
type Solution struct {
	Status    Status
	Objective *big.Rat   // valid when Status == Optimal
	X         []*big.Rat // primal values, len == NumVars, valid when Optimal
	// Basis is a reusable handle to the optimal basis (valid when Optimal
	// and solved through this package's simplex paths); pass it to
	// SolveHybridWarm to warm-start a perturbed re-solve.
	Basis *Basis
	// Method reports which hybrid-engine path produced the result.
	Method Method
}

// Value returns the primal value of column col.
func (s *Solution) Value(col int) *big.Rat { return s.X[col] }

// FloatSolution is the result of a float64 solve.
type FloatSolution struct {
	Status    Status
	Objective float64
	X         []float64
}

// Dump renders the problem in a human-readable form, for tests and debugging.
func (p *Problem) Dump() string {
	var b strings.Builder
	b.WriteString("min ")
	first := true
	for j, c := range p.objective {
		if c.Sign() == 0 {
			continue
		}
		if !first {
			b.WriteString(" + ")
		}
		first = false
		fmt.Fprintf(&b, "%s*%s", c.RatString(), p.varName(j))
	}
	if first {
		b.WriteString("0")
	}
	b.WriteString("\n")
	for _, r := range p.rows {
		for i, t := range r.Terms {
			if i > 0 {
				b.WriteString(" + ")
			}
			fmt.Fprintf(&b, "%s*%s", t.Coef.RatString(), p.varName(t.Col))
		}
		fmt.Fprintf(&b, " %s %s", r.Sense, r.RHS.RatString())
		if r.Name != "" {
			fmt.Fprintf(&b, "   [%s]", r.Name)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func (p *Problem) varName(j int) string {
	if p.varNames[j] != "" {
		return p.varNames[j]
	}
	return fmt.Sprintf("x%d", j)
}
