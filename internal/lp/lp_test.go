package lp

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

// buildSimple returns: min -3x -5y s.t. x<=4, 2y<=12, 3x+2y<=18 (classic
// Dantzig example; optimum -36 at x=2, y=6).
func buildSimple() *Problem {
	p := NewProblem()
	x := p.AddVar("x", rat(-3, 1))
	y := p.AddVar("y", rat(-5, 1))
	p.AddRow("c1", []Term{{x, rat(1, 1)}}, LE, rat(4, 1))
	p.AddRow("c2", []Term{{y, rat(2, 1)}}, LE, rat(12, 1))
	p.AddRow("c3", []Term{{x, rat(3, 1)}, {y, rat(2, 1)}}, LE, rat(18, 1))
	return p
}

func TestSolveRatClassic(t *testing.T) {
	sol, err := SolveRat(buildSimple())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if sol.Objective.Cmp(rat(-36, 1)) != 0 {
		t.Errorf("objective = %v, want -36", sol.Objective)
	}
	if sol.X[0].Cmp(rat(2, 1)) != 0 || sol.X[1].Cmp(rat(6, 1)) != 0 {
		t.Errorf("x = %v,%v, want 2,6", sol.X[0], sol.X[1])
	}
}

func TestSolveFloatClassic(t *testing.T) {
	sol, err := SolveFloat(buildSimple())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-(-36)) > 1e-6 {
		t.Errorf("objective = %v, want -36", sol.Objective)
	}
}

func TestSolveRatEquality(t *testing.T) {
	// min x+y s.t. x+y = 10, x - y = 4  -> x=7, y=3, obj 10.
	p := NewProblem()
	x := p.AddVar("x", rat(1, 1))
	y := p.AddVar("y", rat(1, 1))
	p.AddRow("sum", []Term{{x, rat(1, 1)}, {y, rat(1, 1)}}, EQ, rat(10, 1))
	p.AddRow("diff", []Term{{x, rat(1, 1)}, {y, rat(-1, 1)}}, EQ, rat(4, 1))
	sol, err := SolveRat(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.X[0].Cmp(rat(7, 1)) != 0 || sol.X[1].Cmp(rat(3, 1)) != 0 {
		t.Errorf("x = %v,%v, want 7,3", sol.X[0], sol.X[1])
	}
}

func TestSolveRatGE(t *testing.T) {
	// min 2x+3y s.t. x+y >= 4, x >= 1 -> x=4,y=0? obj: prefer x (cost 2) => x=4, obj 8.
	p := NewProblem()
	x := p.AddVar("x", rat(2, 1))
	y := p.AddVar("y", rat(3, 1))
	p.AddRow("cover", []Term{{x, rat(1, 1)}, {y, rat(1, 1)}}, GE, rat(4, 1))
	p.AddRow("min-x", []Term{{x, rat(1, 1)}}, GE, rat(1, 1))
	sol, err := SolveRat(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective.Cmp(rat(8, 1)) != 0 {
		t.Fatalf("got %v obj=%v, want optimal 8", sol.Status, sol.Objective)
	}
}

func TestSolveRatInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", rat(1, 1))
	p.AddRow("lo", []Term{{x, rat(1, 1)}}, GE, rat(5, 1))
	p.AddRow("hi", []Term{{x, rat(1, 1)}}, LE, rat(3, 1))
	sol, err := SolveRat(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveFloatInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", rat(1, 1))
	p.AddRow("lo", []Term{{x, rat(1, 1)}}, GE, rat(5, 1))
	p.AddRow("hi", []Term{{x, rat(1, 1)}}, LE, rat(3, 1))
	sol, err := SolveFloat(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveRatUnbounded(t *testing.T) {
	p := NewProblem()
	p.AddVar("x", rat(-1, 1))
	y := p.AddVar("y", rat(0, 1))
	p.AddRow("c", []Term{{y, rat(1, 1)}}, LE, rat(1, 1))
	sol, err := SolveRat(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveRatNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3 (i.e. x >= 3).
	p := NewProblem()
	x := p.AddVar("x", rat(1, 1))
	p.AddRow("c", []Term{{x, rat(-1, 1)}}, LE, rat(-3, 1))
	sol, err := SolveRat(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective.Cmp(rat(3, 1)) != 0 {
		t.Fatalf("got %v obj=%v, want optimal 3", sol.Status, sol.Objective)
	}
}

func TestSolveRatDegenerate(t *testing.T) {
	// Beale's classic cycling example; Bland's rule must terminate.
	// min -0.75x4 + 150x5 - 0.02x6 + 6x7
	// s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 <= 0
	//      0.5x4 - 90x5 - 0.02x6 + 3x7 <= 0
	//      x6 <= 1
	// optimum -0.05.
	p := NewProblem()
	x4 := p.AddVar("x4", rat(-3, 4))
	x5 := p.AddVar("x5", rat(150, 1))
	x6 := p.AddVar("x6", rat(-1, 50))
	x7 := p.AddVar("x7", rat(6, 1))
	p.AddRow("r1", []Term{{x4, rat(1, 4)}, {x5, rat(-60, 1)}, {x6, rat(-1, 25)}, {x7, rat(9, 1)}}, LE, rat(0, 1))
	p.AddRow("r2", []Term{{x4, rat(1, 2)}, {x5, rat(-90, 1)}, {x6, rat(-1, 50)}, {x7, rat(3, 1)}}, LE, rat(0, 1))
	p.AddRow("r3", []Term{{x6, rat(1, 1)}}, LE, rat(1, 1))
	sol, err := SolveRat(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Objective.Cmp(rat(-1, 20)) != 0 {
		t.Errorf("objective = %v, want -1/20", sol.Objective)
	}
}

func TestSolveRatRedundantRows(t *testing.T) {
	// Duplicate equality rows leave a basic artificial on a zero row;
	// eviction must cope.
	p := NewProblem()
	x := p.AddVar("x", rat(1, 1))
	y := p.AddVar("y", rat(2, 1))
	p.AddRow("e1", []Term{{x, rat(1, 1)}, {y, rat(1, 1)}}, EQ, rat(5, 1))
	p.AddRow("e2", []Term{{x, rat(2, 1)}, {y, rat(2, 1)}}, EQ, rat(10, 1))
	sol, err := SolveRat(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective.Cmp(rat(5, 1)) != 0 {
		t.Fatalf("got %v obj=%v, want optimal 5 (all weight on x)", sol.Status, sol.Objective)
	}
}

func TestSolveRatZeroObjectiveFeasibility(t *testing.T) {
	// Pure feasibility problem: no objective, equality + capacity rows,
	// mirroring System (2) usage.
	p := NewProblem()
	a := p.AddVar("a", nil)
	b := p.AddVar("b", nil)
	p.AddRow("complete", []Term{{a, rat(1, 1)}, {b, rat(1, 1)}}, EQ, rat(1, 1))
	p.AddRow("cap-a", []Term{{a, rat(3, 1)}}, LE, rat(2, 1))
	p.AddRow("cap-b", []Term{{b, rat(4, 1)}}, LE, rat(2, 1))
	sol, err := SolveRat(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal (feasible)", sol.Status)
	}
	sum := new(big.Rat).Add(sol.X[0], sol.X[1])
	if sum.Cmp(rat(1, 1)) != 0 {
		t.Errorf("a+b = %v, want 1", sum)
	}
}

func TestAddRowPanicsOnBadColumn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range column")
		}
	}()
	p := NewProblem()
	p.AddRow("bad", []Term{{5, rat(1, 1)}}, LE, rat(1, 1))
}

func TestDumpMentionsNamesAndSenses(t *testing.T) {
	p := buildSimple()
	d := p.Dump()
	for _, want := range []string{"min", "x", "y", "<=", "[c3]"} {
		if !containsStr(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// randomFeasibleProblem builds a random LP that is feasible by construction:
// constraints are A x <= A x0 + slack for a random non-negative x0.
func randomFeasibleProblem(rng *rand.Rand, nVars, nRows int) *Problem {
	p := NewProblem()
	for j := 0; j < nVars; j++ {
		p.AddVar("", rat(int64(rng.Intn(21)-10), 1))
	}
	x0 := make([]*big.Rat, nVars)
	for j := range x0 {
		x0[j] = rat(int64(rng.Intn(5)), 1)
	}
	for i := 0; i < nRows; i++ {
		terms := make([]Term, 0, nVars)
		lhs := new(big.Rat)
		for j := 0; j < nVars; j++ {
			c := int64(rng.Intn(11) - 5)
			if c == 0 {
				continue
			}
			terms = append(terms, Term{j, rat(c, 1)})
			lhs.Add(lhs, new(big.Rat).Mul(rat(c, 1), x0[j]))
		}
		slack := rat(int64(rng.Intn(10)), 1)
		p.AddRow("", terms, LE, new(big.Rat).Add(lhs, slack))
	}
	// Bound the feasible region so the problem is never unbounded.
	for j := 0; j < nVars; j++ {
		p.AddRow("", []Term{{j, rat(1, 1)}}, LE, rat(100, 1))
	}
	return p
}

// TestRatFloatAgree cross-checks the two solvers on random feasible bounded
// problems.
func TestRatFloatAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for it := 0; it < 50; it++ {
		p := randomFeasibleProblem(rng, 2+rng.Intn(5), 2+rng.Intn(6))
		rs, err := SolveRat(p)
		if err != nil {
			t.Fatalf("iter %d: %v", it, err)
		}
		fs, err := SolveFloat(p)
		if err != nil {
			t.Fatalf("iter %d: %v", it, err)
		}
		if rs.Status != Optimal || fs.Status != Optimal {
			t.Fatalf("iter %d: statuses %v / %v, want optimal (feasible bounded by construction)",
				it, rs.Status, fs.Status)
		}
		want, _ := rs.Objective.Float64()
		if math.Abs(fs.Objective-want) > 1e-6*(1+math.Abs(want)) {
			t.Errorf("iter %d: float obj %v, rat obj %v", it, fs.Objective, want)
		}
	}
}

// TestRatSolutionSatisfiesConstraints verifies primal feasibility of the
// returned point exactly, as a property over random problems.
func TestRatSolutionSatisfiesConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed) + rng.Int63()))
		p := randomFeasibleProblem(r, 2+r.Intn(4), 2+r.Intn(5))
		sol, err := SolveRat(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		for _, row := range p.rows {
			lhs := new(big.Rat)
			for _, tm := range row.Terms {
				lhs.Add(lhs, new(big.Rat).Mul(tm.Coef, sol.X[tm.Col]))
			}
			switch row.Sense {
			case LE:
				if lhs.Cmp(row.RHS) > 0 {
					return false
				}
			case GE:
				if lhs.Cmp(row.RHS) < 0 {
					return false
				}
			case EQ:
				if lhs.Cmp(row.RHS) != 0 {
					return false
				}
			}
		}
		for _, v := range sol.X {
			if v.Sign() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolveRatSmall(b *testing.B) {
	p := buildSimple()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveRat(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveFloatMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randomFeasibleProblem(rng, 40, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveFloat(p); err != nil {
			b.Fatal(err)
		}
	}
}
