package lp

import (
	"fmt"
	"math"
)

const (
	floatEps = 1e-9
	// blandTrigger multiplies the tableau perimeter to decide when the
	// Dantzig pricing rule is abandoned in favour of Bland's rule, which
	// cannot cycle.
	blandTrigger = 20
)

// SolveFloat solves the problem with a float64 two-phase tableau simplex.
// Dantzig (most-negative reduced cost) pricing is used initially, falling
// back to Bland's rule when the iteration count suggests cycling. The result
// carries the usual caveats of floating-point LP; offline solvers in this
// repository use SolveRat instead.
func SolveFloat(p *Problem) (*FloatSolution, error) {
	t, err := newFloatTableau(p)
	if err != nil {
		return nil, err
	}
	if t.numArt > 0 {
		phase1 := make([]float64, t.numCols)
		for j := t.artStart; j < t.numCols; j++ {
			phase1[j] = 1
		}
		t.setObjective(phase1)
		if status := t.iterate(); status != Optimal {
			return nil, fmt.Errorf("lp: float phase 1 reported %v", status)
		}
		if t.objectiveValue() > floatEps*float64(len(t.rowsData)+1) {
			return &FloatSolution{Status: Infeasible}, nil
		}
		t.evictArtificials()
	}
	phase2 := make([]float64, t.numCols)
	for j := 0; j < p.numVars; j++ {
		f, _ := p.objective[j].Float64()
		phase2[j] = f
	}
	t.setObjective(phase2)
	switch status := t.iterate(); status {
	case Optimal:
	case Unbounded:
		return &FloatSolution{Status: Unbounded}, nil
	default:
		return nil, fmt.Errorf("lp: float phase 2 reported %v", status)
	}
	x := make([]float64, p.numVars)
	for r, bv := range t.basis {
		if bv < p.numVars {
			x[bv] = t.rhsData[r]
		}
	}
	return &FloatSolution{Status: Optimal, Objective: t.objectiveValue(), X: x}, nil
}

type floatTableau struct {
	numCols  int
	artStart int
	numArt   int
	rowsData [][]float64
	rhsData  []float64
	basis    []int
	banned   []bool
	obj      []float64
	objRHS   float64
}

func newFloatTableau(p *Problem) (*floatTableau, error) {
	m := len(p.rows)
	numSlack, numArt := 0, 0
	for _, r := range p.rows {
		sense := r.Sense
		if r.RHS.Sign() < 0 {
			sense = flip(sense)
		}
		switch sense {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}
	numCols := p.numVars + numSlack + numArt
	t := &floatTableau{
		numCols:  numCols,
		artStart: p.numVars + numSlack,
		numArt:   numArt,
		rowsData: make([][]float64, m),
		rhsData:  make([]float64, m),
		basis:    make([]int, m),
		banned:   make([]bool, numCols),
	}
	for j := t.artStart; j < numCols; j++ {
		t.banned[j] = true
	}
	slack := p.numVars
	art := t.artStart
	for i, r := range p.rows {
		row := make([]float64, numCols)
		neg := r.RHS.Sign() < 0
		sense := r.Sense
		if neg {
			sense = flip(sense)
		}
		for _, term := range r.Terms {
			if row[term.Col] != 0 {
				return nil, fmt.Errorf("lp: row %q mentions column %d twice", r.Name, term.Col)
			}
			f, _ := term.Coef.Float64()
			if neg {
				f = -f
			}
			row[term.Col] = f
		}
		b, _ := r.RHS.Float64()
		if neg {
			b = -b
		}
		switch sense {
		case LE:
			row[slack] = 1
			t.basis[i] = slack
			slack++
		case GE:
			row[slack] = -1
			slack++
			row[art] = 1
			t.basis[i] = art
			art++
		case EQ:
			row[art] = 1
			t.basis[i] = art
			art++
		}
		t.rowsData[i] = row
		t.rhsData[i] = b
	}
	return t, nil
}

func (t *floatTableau) setObjective(c []float64) {
	t.obj = make([]float64, t.numCols)
	copy(t.obj, c)
	t.objRHS = 0
	for r, bv := range t.basis {
		f := t.obj[bv]
		if f == 0 {
			continue
		}
		row := t.rowsData[r]
		for j := 0; j < t.numCols; j++ {
			t.obj[j] -= f * row[j]
		}
		t.objRHS -= f * t.rhsData[r]
	}
}

func (t *floatTableau) objectiveValue() float64 { return -t.objRHS }

func (t *floatTableau) iterate() Status {
	maxDantzig := blandTrigger * (len(t.rowsData) + t.numCols)
	for iter := 0; ; iter++ {
		bland := iter > maxDantzig
		enter := -1
		best := -floatEps
		for j := 0; j < t.numCols; j++ {
			if t.banned[j] || t.obj[j] >= -floatEps {
				continue
			}
			if bland {
				enter = j
				break
			}
			if t.obj[j] < best {
				best = t.obj[j]
				enter = j
			}
		}
		if enter == -1 {
			return Optimal
		}
		leave := -1
		bestRatio := math.Inf(1)
		for r := 0; r < len(t.rowsData); r++ {
			a := t.rowsData[r][enter]
			if a <= floatEps {
				continue
			}
			ratio := t.rhsData[r] / a
			if ratio < bestRatio-floatEps ||
				(ratio < bestRatio+floatEps && (leave == -1 || t.basis[r] < t.basis[leave])) {
				leave = r
				bestRatio = ratio
			}
		}
		if leave == -1 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
}

func (t *floatTableau) pivot(leave, enter int) {
	prow := t.rowsData[leave]
	inv := 1 / prow[enter]
	for j := range prow {
		prow[j] *= inv
	}
	prow[enter] = 1 // avoid drift on the pivot element
	t.rhsData[leave] *= inv
	for r := range t.rowsData {
		if r == leave {
			continue
		}
		f := t.rowsData[r][enter]
		if f == 0 {
			continue
		}
		row := t.rowsData[r]
		for j := range row {
			row[j] -= f * prow[j]
		}
		row[enter] = 0
		t.rhsData[r] -= f * t.rhsData[leave]
		if t.rhsData[r] < 0 && t.rhsData[r] > -floatEps {
			t.rhsData[r] = 0
		}
	}
	if f := t.obj[enter]; f != 0 {
		for j := range t.obj {
			t.obj[j] -= f * prow[j]
		}
		t.obj[enter] = 0
		t.objRHS -= f * t.rhsData[leave]
	}
	t.basis[leave] = enter
}

func (t *floatTableau) evictArtificials() {
	for r, bv := range t.basis {
		if bv < t.artStart {
			continue
		}
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.rowsData[r][j]) > floatEps {
				t.pivot(r, j)
				break
			}
		}
	}
}
