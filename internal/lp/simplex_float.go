package lp

import (
	"fmt"
	"math"
)

const (
	floatEps = 1e-9
	// blandTrigger multiplies the tableau perimeter to decide when the
	// Dantzig pricing rule is abandoned in favour of Bland's rule, which
	// cannot cycle.
	blandTrigger = 20
	// stallFactor multiplies the tableau perimeter once more to give a hard
	// iteration cap: float arithmetic under epsilon tolerances can stall in
	// ways exact arithmetic cannot, and the hybrid driver would rather fall
	// back to the exact solver than spin.
	stallFactor = 200
)

// floatStalled is the internal status for a float solve that hit its
// iteration cap; it never escapes this package.
const floatStalled = Status(-1)

// SolveFloat solves the problem with a float64 two-phase tableau simplex.
// Dantzig (most-negative reduced cost) pricing is used initially, falling
// back to Bland's rule when the iteration count suggests cycling. The result
// carries the usual caveats of floating-point LP; exact callers go through
// SolveHybrid (which verifies float results exactly) or SolveRat instead.
func SolveFloat(p *Problem) (*FloatSolution, error) {
	sf, err := newStdForm(p)
	if err != nil {
		return nil, err
	}
	run := runFloat(sf)
	switch run.status {
	case Optimal, Infeasible, Unbounded:
	case floatStalled:
		return nil, fmt.Errorf("lp: float simplex stalled after %d iterations", run.iterations)
	default:
		return nil, fmt.Errorf("lp: float simplex reported %v", run.status)
	}
	return &FloatSolution{Status: run.status, Objective: run.objective, X: run.x}, nil
}

// floatRun is the full outcome of a float solve, including the final basis
// the hybrid driver verifies exactly. For an Infeasible outcome the basis is
// the phase-1 optimal basis, whose dual vector is a Farkas infeasibility
// certificate candidate.
type floatRun struct {
	status     Status
	objective  float64
	x          []float64 // structural values, valid when Optimal
	basis      []int     // basic column per row at termination
	iterations int
}

// runFloat executes the two-phase float simplex over the standard form.
func runFloat(sf *stdForm) *floatRun {
	t := newFloatTableau(sf)
	out := &floatRun{}
	if sf.numArt > 0 {
		phase1 := make([]float64, t.numCols)
		for j := sf.artStart; j < t.numCols; j++ {
			phase1[j] = 1
		}
		t.setObjective(phase1)
		if status := t.iterate(); status != Optimal {
			// Phase 1 is bounded below by 0; "unbounded" here is a float
			// artifact, so report a stall rather than a wrong status.
			out.status, out.basis, out.iterations = floatStalled, t.basis, t.iterations
			return out
		}
		if t.objectiveValue() > floatEps*float64(len(t.rowsData)+1) {
			out.status, out.basis, out.iterations = Infeasible, t.basis, t.iterations
			return out
		}
		t.evictArtificials()
	}
	phase2 := make([]float64, t.numCols)
	for j := 0; j < sf.p.numVars; j++ {
		phase2[j], _ = sf.p.objective[j].Float64()
	}
	t.setObjective(phase2)
	status := t.iterate()
	out.status, out.basis, out.iterations = status, t.basis, t.iterations
	if status != Optimal {
		return out
	}
	out.objective = t.objectiveValue()
	out.x = make([]float64, sf.p.numVars)
	for r, bv := range t.basis {
		if bv < sf.p.numVars {
			out.x[bv] = t.rhsData[r]
		}
	}
	return out
}

type floatTableau struct {
	numCols    int
	artStart   int
	rowsData   [][]float64
	rhsData    []float64
	basis      []int
	banned     []bool
	obj        []float64
	objRHS     float64
	iterations int
}

// newFloatTableau converts the standard form to float64.
func newFloatTableau(sf *stdForm) *floatTableau {
	t := &floatTableau{
		numCols:  sf.numCols,
		artStart: sf.artStart,
		rowsData: make([][]float64, sf.m),
		rhsData:  make([]float64, sf.m),
		basis:    append([]int(nil), sf.basis0...),
		banned:   make([]bool, sf.numCols),
	}
	for j := sf.artStart; j < sf.numCols; j++ {
		t.banned[j] = true
	}
	for i := range sf.rows {
		row := make([]float64, sf.numCols)
		src := &sf.rows[i]
		for k, j := range src.ind {
			row[j], _ = src.val[k].Float64()
		}
		t.rowsData[i] = row
		t.rhsData[i], _ = sf.rhs[i].Float64()
	}
	return t
}

func (t *floatTableau) setObjective(c []float64) {
	t.obj = make([]float64, t.numCols)
	copy(t.obj, c)
	t.objRHS = 0
	for r, bv := range t.basis {
		f := t.obj[bv]
		if f == 0 {
			continue
		}
		row := t.rowsData[r]
		for j := 0; j < t.numCols; j++ {
			t.obj[j] -= f * row[j]
		}
		t.objRHS -= f * t.rhsData[r]
	}
}

func (t *floatTableau) objectiveValue() float64 { return -t.objRHS }

func (t *floatTableau) iterate() Status {
	perimeter := len(t.rowsData) + t.numCols
	maxDantzig := blandTrigger * perimeter
	maxIter := stallFactor * perimeter
	for iter := 0; ; iter++ {
		if iter > maxIter {
			return floatStalled
		}
		t.iterations++
		bland := iter > maxDantzig
		enter := -1
		best := -floatEps
		for j := 0; j < t.numCols; j++ {
			if t.banned[j] || t.obj[j] >= -floatEps {
				continue
			}
			if bland {
				enter = j
				break
			}
			if t.obj[j] < best {
				best = t.obj[j]
				enter = j
			}
		}
		if enter == -1 {
			return Optimal
		}
		leave := -1
		bestRatio := math.Inf(1)
		for r := 0; r < len(t.rowsData); r++ {
			a := t.rowsData[r][enter]
			if a <= floatEps {
				continue
			}
			ratio := t.rhsData[r] / a
			if ratio < bestRatio-floatEps ||
				(ratio < bestRatio+floatEps && (leave == -1 || t.basis[r] < t.basis[leave])) {
				leave = r
				bestRatio = ratio
			}
		}
		if leave == -1 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
}

func (t *floatTableau) pivot(leave, enter int) {
	prow := t.rowsData[leave]
	inv := 1 / prow[enter]
	for j := range prow {
		prow[j] *= inv
	}
	prow[enter] = 1 // avoid drift on the pivot element
	t.rhsData[leave] *= inv
	for r := range t.rowsData {
		if r == leave {
			continue
		}
		f := t.rowsData[r][enter]
		if f == 0 {
			continue
		}
		row := t.rowsData[r]
		for j := range row {
			row[j] -= f * prow[j]
		}
		row[enter] = 0
		t.rhsData[r] -= f * t.rhsData[leave]
		if t.rhsData[r] < 0 && t.rhsData[r] > -floatEps {
			t.rhsData[r] = 0
		}
	}
	if f := t.obj[enter]; f != 0 {
		for j := range t.obj {
			t.obj[j] -= f * prow[j]
		}
		t.obj[enter] = 0
		t.objRHS -= f * t.rhsData[leave]
	}
	t.basis[leave] = enter
}

func (t *floatTableau) evictArtificials() {
	for r, bv := range t.basis {
		if bv < t.artStart {
			continue
		}
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.rowsData[r][j]) > floatEps {
				t.pivot(r, j)
				break
			}
		}
	}
}
