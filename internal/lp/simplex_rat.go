package lp

import (
	"fmt"
	"math/big"
)

// SolveRat solves the problem exactly with a two-phase primal simplex over
// big.Rat. Bland's rule is used for both the entering and leaving variable,
// which guarantees termination (no cycling) and hence, together with the
// rationality of all data, the exactness the paper's Theorems 1 and 2 rely
// on.
func SolveRat(p *Problem) (*Solution, error) {
	t, err := newRatTableau(p)
	if err != nil {
		return nil, err
	}

	// Phase 1: minimize the sum of artificial variables.
	if t.numArt > 0 {
		phase1 := make([]*big.Rat, t.numCols)
		for j := range phase1 {
			phase1[j] = new(big.Rat)
		}
		for j := t.artStart; j < t.artStart+t.numArt; j++ {
			phase1[j].SetInt64(1)
		}
		t.setObjective(phase1)
		if status := t.iterate(); status != Optimal {
			// Phase 1 is bounded below by 0, so it cannot be unbounded.
			return nil, fmt.Errorf("lp: phase 1 reported %v", status)
		}
		if t.objectiveValue().Sign() > 0 {
			return &Solution{Status: Infeasible}, nil
		}
		t.evictArtificials()
	}

	// Phase 2: original objective, artificial columns banned.
	phase2 := make([]*big.Rat, t.numCols)
	for j := range phase2 {
		if j < p.numVars {
			phase2[j] = new(big.Rat).Set(p.objective[j])
		} else {
			phase2[j] = new(big.Rat)
		}
	}
	t.setObjective(phase2)
	switch status := t.iterate(); status {
	case Optimal:
	case Unbounded:
		return &Solution{Status: Unbounded}, nil
	default:
		return nil, fmt.Errorf("lp: phase 2 reported %v", status)
	}

	x := make([]*big.Rat, p.numVars)
	for j := range x {
		x[j] = new(big.Rat)
	}
	for r, bv := range t.basis {
		if bv < p.numVars {
			x[bv].Set(t.rhs[r])
		}
	}
	return &Solution{Status: Optimal, Objective: t.objectiveValue(), X: x}, nil
}

// ratTableau is a dense simplex tableau over exact rationals.
type ratTableau struct {
	numCols  int // structural + slack + artificial columns
	artStart int // first artificial column, == numCols-numArt
	numArt   int
	rows     [][]*big.Rat // len(rows) x numCols, current (pivoted) form
	rhs      []*big.Rat   // len(rows), always >= 0 at a feasible basis
	basis    []int        // basic column of each row
	banned   []bool       // columns that may never enter the basis
	obj      []*big.Rat   // reduced-cost row, len numCols
	objRHS   *big.Rat     // negated objective value
}

// newRatTableau converts p to standard equality form with slack, surplus and
// artificial variables and an all-basic starting point.
func newRatTableau(p *Problem) (*ratTableau, error) {
	m := len(p.rows)
	// First pass: count auxiliary columns. Rows are normalized to RHS >= 0.
	numSlack, numArt := 0, 0
	for _, r := range p.rows {
		sense := r.Sense
		if r.RHS.Sign() < 0 {
			sense = flip(sense)
		}
		switch sense {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}
	numCols := p.numVars + numSlack + numArt
	t := &ratTableau{
		numCols:  numCols,
		artStart: p.numVars + numSlack,
		numArt:   numArt,
		rows:     make([][]*big.Rat, m),
		rhs:      make([]*big.Rat, m),
		basis:    make([]int, m),
		banned:   make([]bool, numCols),
		objRHS:   new(big.Rat),
	}
	for j := t.artStart; j < numCols; j++ {
		t.banned[j] = true // artificials may never re-enter after phase 1
	}

	slack := p.numVars
	art := t.artStart
	for i, r := range p.rows {
		row := make([]*big.Rat, numCols)
		for j := range row {
			row[j] = new(big.Rat)
		}
		neg := r.RHS.Sign() < 0
		sense := r.Sense
		if neg {
			sense = flip(sense)
		}
		for _, term := range r.Terms {
			if row[term.Col].Sign() != 0 {
				return nil, fmt.Errorf("lp: row %q mentions column %d twice", r.Name, term.Col)
			}
			row[term.Col].Set(term.Coef)
			if neg {
				row[term.Col].Neg(row[term.Col])
			}
		}
		b := new(big.Rat).Set(r.RHS)
		if neg {
			b.Neg(b)
		}
		switch sense {
		case LE:
			row[slack].SetInt64(1)
			t.basis[i] = slack
			slack++
		case GE:
			row[slack].SetInt64(-1)
			slack++
			row[art].SetInt64(1)
			t.basis[i] = art
			art++
		case EQ:
			row[art].SetInt64(1)
			t.basis[i] = art
			art++
		}
		t.rows[i] = row
		t.rhs[i] = b
	}
	return t, nil
}

func flip(s Sense) Sense {
	switch s {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// setObjective installs c as the objective and eliminates the basic columns
// from the reduced-cost row, so obj[j] holds c_j - z_j afterwards.
func (t *ratTableau) setObjective(c []*big.Rat) {
	t.obj = make([]*big.Rat, t.numCols)
	for j := range t.obj {
		t.obj[j] = new(big.Rat).Set(c[j])
	}
	t.objRHS = new(big.Rat)
	var factor, tmp big.Rat
	for r, bv := range t.basis {
		if t.obj[bv].Sign() == 0 {
			continue
		}
		factor.Set(t.obj[bv])
		for j := 0; j < t.numCols; j++ {
			if t.rows[r][j].Sign() != 0 {
				tmp.Mul(&factor, t.rows[r][j])
				t.obj[j].Sub(t.obj[j], &tmp)
			}
		}
		tmp.Mul(&factor, t.rhs[r])
		t.objRHS.Sub(t.objRHS, &tmp)
	}
}

// objectiveValue returns the current objective value (c_B . x_B).
func (t *ratTableau) objectiveValue() *big.Rat {
	return new(big.Rat).Neg(t.objRHS)
}

// iterate runs primal simplex pivots under Bland's rule until optimality or
// unboundedness.
func (t *ratTableau) iterate() Status {
	for {
		// Entering column: smallest index with negative reduced cost.
		enter := -1
		for j := 0; j < t.numCols; j++ {
			if !t.banned[j] && t.obj[j].Sign() < 0 {
				enter = j
				break
			}
		}
		if enter == -1 {
			return Optimal
		}
		// Leaving row: minimum ratio; ties broken by smallest basic column.
		leave := -1
		var best big.Rat
		var ratio big.Rat
		for r := 0; r < len(t.rows); r++ {
			a := t.rows[r][enter]
			if a.Sign() <= 0 {
				continue
			}
			ratio.Quo(t.rhs[r], a)
			if leave == -1 || ratio.Cmp(&best) < 0 ||
				(ratio.Cmp(&best) == 0 && t.basis[r] < t.basis[leave]) {
				leave = r
				best.Set(&ratio)
			}
		}
		if leave == -1 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
}

// pivot makes column enter basic in row leave.
func (t *ratTableau) pivot(leave, enter int) {
	prow := t.rows[leave]
	pval := new(big.Rat).Set(prow[enter])
	inv := new(big.Rat).Inv(pval)
	for j := 0; j < t.numCols; j++ {
		if prow[j].Sign() != 0 {
			prow[j].Mul(prow[j], inv)
		}
	}
	t.rhs[leave].Mul(t.rhs[leave], inv)

	var factor, tmp big.Rat
	for r := 0; r < len(t.rows); r++ {
		if r == leave {
			continue
		}
		row := t.rows[r]
		if row[enter].Sign() == 0 {
			continue
		}
		factor.Set(row[enter])
		for j := 0; j < t.numCols; j++ {
			if prow[j].Sign() != 0 {
				tmp.Mul(&factor, prow[j])
				row[j].Sub(row[j], &tmp)
			}
		}
		tmp.Mul(&factor, t.rhs[leave])
		t.rhs[r].Sub(t.rhs[r], &tmp)
	}
	if t.obj[enter].Sign() != 0 {
		factor.Set(t.obj[enter])
		for j := 0; j < t.numCols; j++ {
			if prow[j].Sign() != 0 {
				tmp.Mul(&factor, prow[j])
				t.obj[j].Sub(t.obj[j], &tmp)
			}
		}
		tmp.Mul(&factor, t.rhs[leave])
		t.objRHS.Sub(t.objRHS, &tmp)
	}
	t.basis[leave] = enter
}

// evictArtificials pivots basic artificial variables (necessarily at value
// zero after a successful phase 1) out of the basis, or leaves them basic at
// zero when their row is entirely zero on non-artificial columns (a redundant
// constraint); such rows can never change the solution because every pivot
// ratio on them is zero.
func (t *ratTableau) evictArtificials() {
	for r, bv := range t.basis {
		if bv < t.artStart {
			continue
		}
		for j := 0; j < t.artStart; j++ {
			if t.rows[r][j].Sign() != 0 {
				t.pivot(r, j)
				break
			}
		}
	}
}
