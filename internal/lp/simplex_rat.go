package lp

import (
	"fmt"
	"math/big"
)

// SolveRat solves the problem exactly with a two-phase primal simplex over
// big.Rat. Pricing is Dantzig's rule (most negative reduced cost), degrading
// permanently to Bland's rule once a run of consecutive degenerate pivots
// suggests cycling — Bland's rule cannot cycle, so termination stays
// guaranteed while the common case keeps the much better-behaved pivot
// counts of Dantzig pricing. The tableau is stored sparsely with a big.Rat
// free list, so pivots cost (and allocate) proportionally to the nonzeros
// they touch.
func SolveRat(p *Problem) (*Solution, error) {
	sf, err := newStdForm(p)
	if err != nil {
		return nil, err
	}
	return solveRatCold(sf)
}

// solveRatCold runs the classic two-phase method from the all-slack/
// artificial starting basis.
func solveRatCold(sf *stdForm) (*Solution, error) {
	t := newRatTableau(sf)

	// Phase 1: minimize the sum of artificial variables.
	if sf.numArt > 0 {
		phase1 := make([]*big.Rat, t.numCols)
		one := big.NewRat(1, 1)
		for j := range phase1 {
			if j >= sf.artStart {
				phase1[j] = one
			} else {
				phase1[j] = ratZero
			}
		}
		t.setObjective(phase1)
		if status := t.iterate(); status != Optimal {
			// Phase 1 is bounded below by 0, so it cannot be unbounded.
			return nil, fmt.Errorf("lp: phase 1 reported %v", status)
		}
		if t.objectiveValue().Sign() > 0 {
			return &Solution{Status: Infeasible}, nil
		}
		t.evictArtificials()
	}

	// Phase 2: original objective, artificial columns banned.
	t.setObjective(sf.cost)
	switch status := t.iterate(); status {
	case Optimal:
	case Unbounded:
		return &Solution{Status: Unbounded}, nil
	default:
		return nil, fmt.Errorf("lp: phase 2 reported %v", status)
	}
	return t.solution(), nil
}

// ratTableau is a sparse simplex tableau over exact rationals.
type ratTableau struct {
	sf      *stdForm
	numCols int
	rows    []spVec    // current (pivoted) rows, sparse
	rhs     []*big.Rat // always >= 0 at a feasible basis
	basis   []int      // basic column of each row
	banned  []bool     // columns that may never enter the basis
	obj     []*big.Rat // reduced-cost row, dense (fills in quickly)
	objRHS  *big.Rat   // negated objective value
	pool    ratPool
	// Scratch buffers for the sparse row merge of pivot().
	scratchInd []int
	scratchVal []*big.Rat
	// bland latches once the degeneracy heuristic trips: from then on
	// Bland's anti-cycling rule picks the entering column.
	bland bool
	degen int // consecutive degenerate pivots under Dantzig pricing
}

// newRatTableau copies the standard form into a mutable tableau positioned
// at its initial slack/artificial basis.
func newRatTableau(sf *stdForm) *ratTableau {
	t := &ratTableau{
		sf:      sf,
		numCols: sf.numCols,
		rows:    make([]spVec, sf.m),
		rhs:     make([]*big.Rat, sf.m),
		basis:   append([]int(nil), sf.basis0...),
		banned:  make([]bool, sf.numCols),
		objRHS:  new(big.Rat),
	}
	for j := sf.artStart; j < sf.numCols; j++ {
		t.banned[j] = true // artificials may never re-enter after phase 1
	}
	for i := range sf.rows {
		src := &sf.rows[i]
		row := spVec{
			ind: append([]int(nil), src.ind...),
			val: make([]*big.Rat, len(src.val)),
		}
		for k, v := range src.val {
			row.val[k] = new(big.Rat).Set(v)
		}
		t.rows[i] = row
		t.rhs[i] = new(big.Rat).Set(sf.rhs[i])
	}
	return t
}

// setObjective installs c (dense, len numCols, read-only) as the objective
// and eliminates the basic columns, so obj[j] holds the reduced cost c_j −
// z_j afterwards.
func (t *ratTableau) setObjective(c []*big.Rat) {
	t.obj = make([]*big.Rat, t.numCols)
	for j := range t.obj {
		t.obj[j] = new(big.Rat).Set(c[j])
	}
	t.objRHS = new(big.Rat)
	var factor, tmp big.Rat
	for r, bv := range t.basis {
		if t.obj[bv].Sign() == 0 {
			continue
		}
		factor.Set(t.obj[bv])
		row := &t.rows[r]
		for k, j := range row.ind {
			tmp.Mul(&factor, row.val[k])
			t.obj[j].Sub(t.obj[j], &tmp)
		}
		tmp.Mul(&factor, t.rhs[r])
		t.objRHS.Sub(t.objRHS, &tmp)
	}
}

// objectiveValue returns the current objective value (c_B . x_B).
func (t *ratTableau) objectiveValue() *big.Rat {
	return new(big.Rat).Neg(t.objRHS)
}

// degenLimit bounds the consecutive degenerate pivots tolerated under
// Dantzig pricing before switching to Bland's rule. Any finite bound
// preserves termination (non-degenerate pivots strictly decrease the
// objective, so only an unbroken degenerate run can cycle).
func (t *ratTableau) degenLimit() int { return 2*len(t.rows) + 16 }

// iterate runs primal simplex pivots until optimality or unboundedness.
func (t *ratTableau) iterate() Status {
	for {
		enter := -1
		if t.bland {
			for j := 0; j < t.numCols; j++ {
				if !t.banned[j] && t.obj[j].Sign() < 0 {
					enter = j
					break
				}
			}
		} else {
			var most *big.Rat
			for j := 0; j < t.numCols; j++ {
				if t.banned[j] || t.obj[j].Sign() >= 0 {
					continue
				}
				if most == nil || t.obj[j].Cmp(most) < 0 {
					most = t.obj[j]
					enter = j
				}
			}
		}
		if enter == -1 {
			return Optimal
		}
		// Leaving row: minimum ratio; ties broken by smallest basic column.
		leave := -1
		var best, ratio big.Rat
		for r := 0; r < len(t.rows); r++ {
			a := t.rows[r].get(enter)
			if a == nil || a.Sign() <= 0 {
				continue
			}
			ratio.Quo(t.rhs[r], a)
			if leave == -1 || ratio.Cmp(&best) < 0 ||
				(ratio.Cmp(&best) == 0 && t.basis[r] < t.basis[leave]) {
				leave = r
				best.Set(&ratio)
			}
		}
		if leave == -1 {
			return Unbounded
		}
		if !t.bland {
			if t.rhs[leave].Sign() == 0 {
				t.degen++
				if t.degen > t.degenLimit() {
					t.bland = true
				}
			} else {
				t.degen = 0
			}
		}
		t.pivot(leave, enter)
	}
}

// pivot makes column enter basic in row leave.
func (t *ratTableau) pivot(leave, enter int) {
	prow := &t.rows[leave]
	pval := prow.get(enter)
	inv := new(big.Rat).Inv(pval)
	for _, v := range prow.val {
		v.Mul(v, inv)
	}
	t.rhs[leave].Mul(t.rhs[leave], inv)

	var factor, tmp big.Rat
	for r := 0; r < len(t.rows); r++ {
		if r == leave {
			continue
		}
		f := t.rows[r].get(enter)
		if f == nil {
			continue
		}
		factor.Set(f)
		t.axpyRow(r, &factor, prow)
		tmp.Mul(&factor, t.rhs[leave])
		t.rhs[r].Sub(t.rhs[r], &tmp)
	}
	if t.obj != nil && t.obj[enter].Sign() != 0 {
		factor.Set(t.obj[enter])
		for k, j := range prow.ind {
			tmp.Mul(&factor, prow.val[k])
			t.obj[j].Sub(t.obj[j], &tmp)
		}
		tmp.Mul(&factor, t.rhs[leave])
		t.objRHS.Sub(t.objRHS, &tmp)
	}
	t.basis[leave] = enter
}

// axpyRow computes rows[r] -= factor · prow with a sparse merge, recycling
// cancelled entries through the pool. factor is nonzero.
func (t *ratTableau) axpyRow(r int, factor *big.Rat, prow *spVec) {
	a := &t.rows[r]
	if cap(t.scratchInd) < t.numCols {
		t.scratchInd = make([]int, 0, t.numCols)
		t.scratchVal = make([]*big.Rat, 0, t.numCols)
	}
	oi := t.scratchInd[:0]
	ov := t.scratchVal[:0]
	var tmp big.Rat
	i, j := 0, 0
	for i < len(a.ind) || j < len(prow.ind) {
		switch {
		case j >= len(prow.ind) || (i < len(a.ind) && a.ind[i] < prow.ind[j]):
			oi = append(oi, a.ind[i])
			ov = append(ov, a.val[i])
			i++
		case i >= len(a.ind) || a.ind[i] > prow.ind[j]:
			nv := t.pool.get()
			nv.Mul(factor, prow.val[j])
			nv.Neg(nv)
			oi = append(oi, prow.ind[j])
			ov = append(ov, nv)
			j++
		default:
			tmp.Mul(factor, prow.val[j])
			a.val[i].Sub(a.val[i], &tmp)
			if a.val[i].Sign() != 0 {
				oi = append(oi, a.ind[i])
				ov = append(ov, a.val[i])
			} else {
				t.pool.put(a.val[i])
			}
			i++
			j++
		}
	}
	// Copy the merged entries back into the row (pointer copies only); the
	// scratch buffers keep their full capacity for the next merge.
	a.ind = append(a.ind[:0], oi...)
	a.val = append(a.val[:0], ov...)
}

// evictArtificials pivots basic artificial variables (necessarily at value
// zero after a successful phase 1) out of the basis, or leaves them basic at
// zero when their row is entirely zero on non-artificial columns (a redundant
// constraint); such rows can never change the solution because every pivot
// ratio on them is zero.
func (t *ratTableau) evictArtificials() {
	for r, bv := range t.basis {
		if bv < t.sf.artStart {
			continue
		}
		row := &t.rows[r]
		for k, j := range row.ind {
			if j < t.sf.artStart && row.val[k].Sign() != 0 {
				t.pivot(r, j)
				break
			}
		}
	}
}

// solution extracts the optimal solution and its basis handle.
func (t *ratTableau) solution() *Solution {
	p := t.sf.p
	x := make([]*big.Rat, p.numVars)
	for j := range x {
		x[j] = new(big.Rat)
	}
	for r, bv := range t.basis {
		if bv < p.numVars {
			x[bv].Set(t.rhs[r])
		}
	}
	return &Solution{
		Status:    Optimal,
		Objective: t.objectiveValue(),
		X:         x,
		Basis:     newBasis(t.sf, t.basis),
	}
}

// newWarmRatTableau positions a tableau at the given basis by Gauss–Jordan
// pivoting (m sparse pivots, no objective yet). It reports ok=false when the
// columns are singular. The resulting right-hand side may be negative — the
// caller must check feasibility before running the primal simplex.
func newWarmRatTableau(sf *stdForm, basis []int) (*ratTableau, bool) {
	t := newRatTableau(sf)
	assigned := make([]bool, sf.m)
	// Columns already basic in the initial tableau keep their row for free.
	rowOf := make(map[int]int, sf.m)
	for r, bv := range t.basis {
		rowOf[bv] = r
	}
	var rest []int
	for _, c := range basis {
		if r, ok := rowOf[c]; ok && !assigned[r] {
			assigned[r] = true
			continue
		}
		rest = append(rest, c)
	}
	for _, c := range rest {
		pivotRow := -1
		best := 0
		for r := 0; r < sf.m; r++ {
			if assigned[r] {
				continue
			}
			v := t.rows[r].get(c)
			if v == nil || v.Sign() == 0 {
				continue
			}
			sz := v.Num().BitLen() + v.Denom().BitLen()
			if pivotRow == -1 || sz < best {
				pivotRow, best = r, sz
			}
		}
		if pivotRow == -1 {
			return nil, false // c is spanned by the columns already placed
		}
		t.pivot(pivotRow, c)
		assigned[pivotRow] = true
	}
	return t, true
}
