package lp

import (
	"math/big"
	"sort"
)

// spVec is a sparse vector: sorted column indices with parallel nonzero
// rational values. The simplex tableau stores its rows this way — the
// scheduling LPs are sparse (each fraction variable appears in a handful of
// rows), and exact cancellation during pivoting keeps them sparse, so
// iterating nonzeros beats scanning a dense []*big.Rat row.
type spVec struct {
	ind []int
	val []*big.Rat
}

// get returns the value at column col, or nil when the entry is zero.
func (v *spVec) get(col int) *big.Rat {
	k := sort.SearchInts(v.ind, col)
	if k < len(v.ind) && v.ind[k] == col {
		return v.val[k]
	}
	return nil
}

// ratPool is a free list of big.Rat scratch values. Exact pivoting churns
// through enormous numbers of temporaries; recycling them removes the
// dominant allocation source of the rational simplex.
type ratPool struct {
	free []*big.Rat
}

// get returns a rational with unspecified value; the caller must overwrite
// it (Set/Mul/...) before reading.
func (p *ratPool) get() *big.Rat {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free = p.free[:n-1]
		return r
	}
	return new(big.Rat)
}

// put recycles r.
func (p *ratPool) put(r *big.Rat) {
	p.free = append(p.free, r)
}
