package lp

import (
	"fmt"
	"math/big"
	"sort"
)

// stdForm is the standard equality form shared by every solver in this
// package:
//
//	min c.x   subject to   A x = b,   x >= 0,   b >= 0
//
// with the column layout [structural | slack/surplus | artificial]. Rows
// whose RHS is negative are negated (flipping their sense), LE rows gain a
// +1 slack, GE rows a -1 surplus plus a +1 artificial, EQ rows a +1
// artificial. Building it once per solve gives the float simplex, the exact
// simplex and the hybrid verifier an identical column numbering, so a basis
// discovered by one can be handed to another.
type stdForm struct {
	p        *Problem
	m        int // number of rows
	numCols  int // structural + slack + artificial
	artStart int // first artificial column
	numArt   int

	rows   []spVec    // sparse rows over all columns (artificials included)
	rhs    []*big.Rat // normalized, >= 0
	basis0 []int      // initial basic column per row (slack or artificial)
	cost   []*big.Rat // phase-2 objective, dense over all columns

	// Column-major view of the matrix for dot products against dual
	// vectors: colRows[j] lists the rows where column j is nonzero and
	// colVals[j] the corresponding values (aliases of rows' entries).
	// Built lazily by columns() — only the hybrid verifier needs it.
	colRows [][]int32
	colVals [][]*big.Rat
}

// newStdForm normalizes p. It fails only on malformed rows (a column
// mentioned twice).
func newStdForm(p *Problem) (*stdForm, error) {
	m := len(p.rows)
	numSlack, numArt := 0, 0
	for _, r := range p.rows {
		sense := r.Sense
		if r.RHS.Sign() < 0 {
			sense = flip(sense)
		}
		switch sense {
		case LE, GE:
			numSlack++
			if sense == GE {
				numArt++
			}
		case EQ:
			numArt++
		}
	}
	numCols := p.numVars + numSlack + numArt
	sf := &stdForm{
		p:        p,
		m:        m,
		numCols:  numCols,
		artStart: p.numVars + numSlack,
		numArt:   numArt,
		rows:     make([]spVec, m),
		rhs:      make([]*big.Rat, m),
		basis0:   make([]int, m),
		cost:     make([]*big.Rat, numCols),
	}
	for j := 0; j < numCols; j++ {
		if j < p.numVars {
			sf.cost[j] = p.objective[j]
		} else {
			sf.cost[j] = ratZero
		}
	}

	slack := p.numVars
	art := sf.artStart
	one := big.NewRat(1, 1)
	negOne := big.NewRat(-1, 1)
	for i, r := range p.rows {
		neg := r.RHS.Sign() < 0
		sense := r.Sense
		if neg {
			sense = flip(sense)
		}
		terms := make([]Term, len(r.Terms))
		copy(terms, r.Terms)
		sort.Slice(terms, func(a, b int) bool { return terms[a].Col < terms[b].Col })
		row := spVec{
			ind: make([]int, 0, len(terms)+2),
			val: make([]*big.Rat, 0, len(terms)+2),
		}
		for k, t := range terms {
			if k > 0 && terms[k-1].Col == t.Col {
				return nil, fmt.Errorf("lp: row %q mentions column %d twice", r.Name, t.Col)
			}
			v := t.Coef
			if neg {
				v = new(big.Rat).Neg(v)
			}
			row.ind = append(row.ind, t.Col)
			row.val = append(row.val, v)
		}
		b := r.RHS
		if neg {
			b = new(big.Rat).Neg(b)
		}
		switch sense {
		case LE:
			row.ind = append(row.ind, slack)
			row.val = append(row.val, one)
			sf.basis0[i] = slack
			slack++
		case GE:
			row.ind = append(row.ind, slack)
			row.val = append(row.val, negOne)
			slack++
			row.ind = append(row.ind, art)
			row.val = append(row.val, one)
			sf.basis0[i] = art
			art++
		case EQ:
			row.ind = append(row.ind, art)
			row.val = append(row.val, one)
			sf.basis0[i] = art
			art++
		}
		sf.rows[i] = row
		sf.rhs[i] = b
	}

	return sf, nil
}

// columns builds (once) the column-major view of the matrix.
func (sf *stdForm) columns() {
	if sf.colRows != nil {
		return
	}
	sf.colRows = make([][]int32, sf.numCols)
	sf.colVals = make([][]*big.Rat, sf.numCols)
	for i := range sf.rows {
		row := &sf.rows[i]
		for k, j := range row.ind {
			sf.colRows[j] = append(sf.colRows[j], int32(i))
			sf.colVals[j] = append(sf.colVals[j], row.val[k])
		}
	}
}

var ratZero = new(big.Rat)

// flip mirrors a sense across a row negation.
func flip(s Sense) Sense {
	switch s {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// colDot returns y . A_j over the sparse column j.
func (sf *stdForm) colDot(y []*big.Rat, j int) *big.Rat {
	out := new(big.Rat)
	var tmp big.Rat
	for k, r := range sf.colRows[j] {
		if y[r].Sign() == 0 {
			continue
		}
		tmp.Mul(y[r], sf.colVals[j][k])
		out.Add(out, &tmp)
	}
	return out
}

// validBasis reports whether basis could index a basis of this form: one
// column per row, all in range, no duplicates.
func (sf *stdForm) validBasis(basis []int) bool {
	if len(basis) != sf.m {
		return false
	}
	seen := make(map[int]bool, len(basis))
	for _, c := range basis {
		if c < 0 || c >= sf.numCols || seen[c] {
			return false
		}
		seen[c] = true
	}
	return true
}
