package lp

import (
	"math/big"
	"math/rand"
	"testing"
)

// TestSolveRatTransportation solves small random transportation problems
// (supply/demand balance) whose optimal cost is cross-checked against
// brute-force enumeration of basic assignments for 2x2, and against the
// float solver for larger shapes.
func TestSolveRatTransportation(t *testing.T) {
	// 2 suppliers (capacity 5, 7), 2 consumers (demand 4, 6);
	// costs: [[1 3],[2 1]]. Optimum: x11=4, x22=6, cost 4+6=10 with x12=0
	// x21=0 -> check: supply 1 used 4<=5, supply 2 used 6<=7. Cost 10.
	p := NewProblem()
	x := make([][]int, 2)
	costs := [][]int64{{1, 3}, {2, 1}}
	for i := range x {
		x[i] = make([]int, 2)
		for j := range x[i] {
			x[i][j] = p.AddVar("", rat(costs[i][j], 1))
		}
	}
	p.AddRow("s0", []Term{{x[0][0], rat(1, 1)}, {x[0][1], rat(1, 1)}}, LE, rat(5, 1))
	p.AddRow("s1", []Term{{x[1][0], rat(1, 1)}, {x[1][1], rat(1, 1)}}, LE, rat(7, 1))
	p.AddRow("d0", []Term{{x[0][0], rat(1, 1)}, {x[1][0], rat(1, 1)}}, EQ, rat(4, 1))
	p.AddRow("d1", []Term{{x[0][1], rat(1, 1)}, {x[1][1], rat(1, 1)}}, EQ, rat(6, 1))
	sol, err := SolveRat(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective.Cmp(rat(10, 1)) != 0 {
		t.Fatalf("status %v obj %v, want optimal 10", sol.Status, sol.Objective)
	}
}

// TestSolveRatDietProblem is the classic Stigler-style toy: minimize cost
// subject to nutrient lower bounds (GE rows + phase 1).
func TestSolveRatDietProblem(t *testing.T) {
	// Foods: bread (cost 2), milk (cost 3).
	// Nutrients: energy >= 8 (bread 2/unit, milk 1/unit),
	//            protein >= 6 (bread 1/unit, milk 3/unit).
	// LP optimum: solve 2b + m = 8, b + 3m = 6 -> b = 18/5, m = 4/5;
	// cost = 2*18/5 + 3*4/5 = 48/5.
	p := NewProblem()
	b := p.AddVar("bread", rat(2, 1))
	m := p.AddVar("milk", rat(3, 1))
	p.AddRow("energy", []Term{{b, rat(2, 1)}, {m, rat(1, 1)}}, GE, rat(8, 1))
	p.AddRow("protein", []Term{{b, rat(1, 1)}, {m, rat(3, 1)}}, GE, rat(6, 1))
	sol, err := SolveRat(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective.Cmp(rat(48, 5)) != 0 {
		t.Fatalf("status %v obj %v, want optimal 48/5", sol.Status, sol.Objective)
	}
	if sol.X[0].Cmp(rat(18, 5)) != 0 || sol.X[1].Cmp(rat(4, 5)) != 0 {
		t.Errorf("x = %v, %v; want 18/5, 4/5", sol.X[0], sol.X[1])
	}
}

// TestSolveRatManyDegenerateTies stresses Bland's rule with highly
// degenerate problems (many identical rows and zero RHS).
func TestSolveRatManyDegenerateTies(t *testing.T) {
	p := NewProblem()
	n := 6
	cols := make([]int, n)
	for j := range cols {
		cols[j] = p.AddVar("", rat(-1, 1))
	}
	for i := 0; i < 10; i++ {
		var terms []Term
		for j := range cols {
			terms = append(terms, Term{cols[j], rat(1, 1)})
		}
		p.AddRow("", terms, LE, rat(0, 1)) // Σx <= 0 repeatedly
	}
	sol, err := SolveRat(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective.Sign() != 0 {
		t.Fatalf("status %v obj %v, want optimal 0", sol.Status, sol.Objective)
	}
}

// TestSolveRatScaleInvariance: scaling all rows and the objective by
// positive rationals must not change the argmax (sanity for exact pivots).
func TestSolveRatScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for it := 0; it < 20; it++ {
		base := randomFeasibleProblem(rng, 3, 4)
		scaled := NewProblem()
		mult := rat(int64(1+rng.Intn(5)), int64(1+rng.Intn(3)))
		for j := 0; j < base.numVars; j++ {
			c := new(big.Rat).Mul(base.objective[j], mult)
			scaled.AddVar("", c)
		}
		for _, row := range base.rows {
			rowMult := rat(int64(1+rng.Intn(7)), int64(1+rng.Intn(4)))
			terms := make([]Term, len(row.Terms))
			for k, tm := range row.Terms {
				terms[k] = Term{tm.Col, new(big.Rat).Mul(tm.Coef, rowMult)}
			}
			scaled.AddRow("", terms, row.Sense, new(big.Rat).Mul(row.RHS, rowMult))
		}
		a, err := SolveRat(base)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SolveRat(scaled)
		if err != nil {
			t.Fatal(err)
		}
		if a.Status != b.Status {
			t.Fatalf("iter %d: status changed under scaling: %v vs %v", it, a.Status, b.Status)
		}
		if a.Status == Optimal {
			want := new(big.Rat).Mul(a.Objective, mult)
			if want.Cmp(b.Objective) != 0 {
				t.Fatalf("iter %d: objective %v, want scaled %v", it, b.Objective, want)
			}
		}
	}
}

// TestSolveRatBigCoefficients exercises exact arithmetic with large
// numerators/denominators (where float64 would lose precision).
func TestSolveRatBigCoefficients(t *testing.T) {
	p := NewProblem()
	huge := new(big.Rat).SetFrac(
		new(big.Int).Exp(big.NewInt(10), big.NewInt(30), nil),
		big.NewInt(7),
	)
	tiny := new(big.Rat).Inv(huge)
	x := p.AddVar("x", rat(1, 1))
	y := p.AddVar("y", rat(1, 1))
	p.AddRow("hx", []Term{{x, huge}}, GE, rat(1, 1))
	p.AddRow("ty", []Term{{y, tiny}}, GE, rat(1, 1))
	sol, err := SolveRat(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	wantX := new(big.Rat).Inv(huge)
	if sol.X[0].Cmp(wantX) != 0 {
		t.Errorf("x = %v, want %v", sol.X[0], wantX)
	}
	if sol.X[1].Cmp(huge) != 0 {
		t.Errorf("y = %v, want %v", sol.X[1], huge)
	}
}

func TestProblemAccessors(t *testing.T) {
	p := NewProblem()
	if p.NumVars() != 0 || p.NumRows() != 0 {
		t.Error("fresh problem not empty")
	}
	x := p.AddVar("x", nil)
	p.AddRow("r", []Term{{x, rat(1, 1)}}, LE, rat(1, 1))
	if p.NumVars() != 1 || p.NumRows() != 1 {
		t.Error("accessors wrong after adds")
	}
	p.SetObjective(x, rat(5, 1))
	sol, err := SolveRat(p)
	if err != nil || sol.Status != Optimal || sol.Objective.Sign() != 0 {
		t.Errorf("min 5x, x>=0 -> 0; got %v %v", sol, err)
	}
	// Zero-coefficient terms are dropped.
	p2 := NewProblem()
	a := p2.AddVar("a", rat(1, 1))
	p2.AddRow("z", []Term{{a, rat(0, 1)}, {a, rat(1, 1)}}, GE, rat(2, 1))
	sol2, err := SolveRat(p2)
	if err != nil || sol2.Status != Optimal || sol2.Objective.Cmp(rat(2, 1)) != 0 {
		t.Errorf("got %v %v, want optimal 2", sol2, err)
	}
}

func TestSenseString(t *testing.T) {
	if LE.String() != "<=" || EQ.String() != "==" || GE.String() != ">=" {
		t.Error("sense strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
}
