package model

import (
	"encoding/json"
	"testing"
)

// FuzzInstanceJSON checks that arbitrary input never panics the decoder and
// that everything it accepts re-encodes losslessly.
func FuzzInstanceJSON(f *testing.F) {
	valid, err := json.Marshal(mustTwoByTwo())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(valid))
	f.Add(`{"jobs":[{"name":"a","release":"0","weight":"1","size":"6"}],"machines":[{"name":"m","inverseSpeed":"1/3"}]}`)
	f.Add(`{"jobs":[],"machines":[]}`)
	f.Add(`{"jobs":[{"release":"1/0"}]}`)
	f.Add(`not json`)
	f.Add(`{"jobs":[{"name":"a","release":"-5","weight":"1"}],"machines":[{"name":"m"}],"cost":[["1"]]}`)
	f.Fuzz(func(t *testing.T, doc string) {
		var inst Instance
		if err := json.Unmarshal([]byte(doc), &inst); err != nil {
			return
		}
		// Accepted documents must be valid instances (UnmarshalJSON
		// validates) and must round-trip exactly.
		if err := inst.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid instance: %v\ninput: %s", err, doc)
		}
		out, err := json.Marshal(&inst)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var back Instance
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-decode failed: %v\nencoded: %s", err, out)
		}
		if back.N() != inst.N() || back.M() != inst.M() {
			t.Fatal("round-trip changed dimensions")
		}
		for i := 0; i < inst.M(); i++ {
			for j := 0; j < inst.N(); j++ {
				a, aok := inst.Cost(i, j)
				b, bok := back.Cost(i, j)
				if aok != bok || (aok && a.Cmp(b) != 0) {
					t.Fatal("round-trip changed costs")
				}
			}
		}
	})
}

func mustTwoByTwo() *Instance {
	jobs := []Job{
		{Name: "J0", Release: r(0, 1), Weight: r(1, 1), Size: r(10, 1), Databanks: []string{"pdb"}},
		{Name: "J1", Release: r(2, 1), Weight: r(2, 1), Size: r(4, 1)},
	}
	machines := []Machine{
		{Name: "fast", InverseSpeed: r(1, 2), Databanks: []string{"pdb"}},
		{Name: "slow", InverseSpeed: r(2, 1)},
	}
	inst, err := NewInstance(jobs, machines)
	if err != nil {
		panic(err)
	}
	return inst
}
