package model

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"divflow/internal/obs"
	"divflow/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite the testdata/wire golden fixtures")

// goldenWireValues seeds one fully-populated instance of every wire type the
// HTTP API marshals to clients. Every field carries a distinctive non-zero
// value, so a renamed JSON tag, a dropped field, or a changed omitempty shows
// up as a fixture diff — the committed testdata/wire/*.json files are the
// wire-compatibility contract.
func goldenWireValues() map[string]any {
	yes := true
	shard := 2
	cert := &AdmissionCertificate{
		Mode:         "strict",
		Feasible:     false,
		Deadline:     "15/2",
		CounterOffer: "31/3",
		ResidualJobs: 4,
	}
	return map[string]any{
		"submit_request": SubmitRequest{
			Name:      "blast",
			Weight:    "3/2",
			Size:      "40",
			Databanks: []string{"swissprot", "pdb"},
			Deadline:  "15/2",
			Tenant:    "acme",
			SLAClass:  SLAPremium,
		},
		"batch_submit_request": BatchSubmitRequest{
			Jobs: []SubmitRequest{
				{Name: "a", Size: "7"},
				{Name: "b", Size: "11/2", Tenant: "acme", SLAClass: SLABatch},
			},
		},
		"batch_submit_response": BatchSubmitResponse{
			Results: []BatchSubmitResult{
				{ID: 12, State: "queued", Warning: "shard 1 degraded", Admission: cert},
				{Error: &WireError{Code: ErrCodeTenantOverQuota, Message: "tenant over share", RetryAfter: 1}},
			},
		},
		"admission_certificate": *cert,
		"error_response": ErrorResponse{Error: WireError{
			Code:       ErrCodeShardStalled,
			Message:    "shard 2 unreachable: dial tcp: refused",
			Shard:      &shard,
			RetryAfter: 1,
			Admission:  cert,
		}},
		"submit_response": SubmitResponse{
			ID:        12,
			State:     "queued",
			Warning:   "shard 1 degraded",
			Admission: cert,
		},
		"job_status": JobStatus{
			ID:           12,
			Name:         "blast",
			State:        "completed",
			Weight:       "3/2",
			Size:         "40",
			Databanks:    []string{"swissprot"},
			Release:      "5",
			Remaining:    "0",
			CompletedAt:  "7",
			Flow:         "2",
			WeightedFlow: "3",
			Stretch:      "1/20",
			Deadline:     "15/2",
			Tenant:       "acme",
			SLAClass:     SLAStandard,
			DeadlineMet:  &yes,
		},
		"tenants_response": TenantsResponse{Tenants: []TenantStats{{
			Tenant:          "acme",
			Weight:          "3",
			Submitted:       9,
			Completed:       7,
			Shed:            2,
			Backlog:         "11/2",
			MaxWeightedFlow: "21/4",
			MeanFlow:        1.5,
			P95WeightedFlow: 5.25,
			ByClass:         map[string]int{SLAStandard: 8, SLABatch: 1},
		}}},
		"stats_response": StatsResponse{
			Policy:          "mwf",
			Now:             "17/2",
			JobsAccepted:    9,
			JobsLive:        1,
			JobsCompleted:   7,
			Events:          30,
			LPSolves:        12,
			PlanCacheHits:   18,
			Solver:          stats.SolverTally{FloatVerified: 8, Crossovers: 2, Fallbacks: 1, WarmHits: 1, WarmMisses: 3},
			ArrivalBatches:  5,
			BatchedArrivals: 9,
			LargestBatch:    3,
			MaxWeightedFlow: "21/4",
			MaxStretch:      "7/5",
			MeanFlow:        1.5,
			P95Flow:         5.25,
			CompactedJobs:   2,
			StolenJobs:      1,
			Migrations:      1,
			Stalled:         true,
			LastError:       "solve: infeasible basis",
			ShardCount:      2,
			Generation:      3,
			ReshardEvents:   1,
			ReshardedJobs:   4,
			Shards: []ShardStats{{
				Shard:           0,
				Generation:      3,
				Machines:        []string{"cluster-a", "cluster-b"},
				Now:             "17/2",
				JobsAccepted:    9,
				JobsQueued:      1,
				JobsLive:        1,
				JobsCompleted:   7,
				Events:          30,
				LPSolves:        12,
				PlanCacheHits:   18,
				Solver:          stats.SolverTally{FloatVerified: 8, Crossovers: 2, Fallbacks: 1, WarmHits: 1, WarmMisses: 3},
				ArrivalBatches:  5,
				BatchedArrivals: 9,
				LargestBatch:    3,
				CompactedJobs:   2,
				StolenJobs:      1,
				Migrations:      1,
				ReshardedIn:     4,
				ReshardedOut:    2,
				Retired:         true,
				Freed:           true,
				Backlog:         "11/2",
				Stalled:         true,
				Panics:          1,
				Restarts:        1,
				LastError:       "solve: infeasible basis",
			}},
			WAL: &WALStats{Appends: 40, Snapshots: 2, Replayed: 13, Error: "write wal: disk full"},
		},
		"reshard_response": ReshardResponse{
			Generation:    3,
			ShardCount:    2,
			Noop:          false,
			MigratedJobs:  4,
			SpawnedShards: []int{2, 3},
			RetiredShards: []int{0},
			KeptShards:    []int{1},
			Warning:       "job 12 placed on stalled shard 2",
		},
		"schedule_response": ScheduleResponse{
			Now:      "17/2",
			Makespan: "21/2",
			Schedule: json.RawMessage(`[{"job":12,"machine":"cluster-a","start":"5","end":"7","fraction":"1/3"}]`),
		},
		"health_response": HealthResponse{
			Status:        "stalled",
			StalledShards: []int{2},
			Errors:        []string{"shard 2: solve: infeasible basis"},
			WALError:      "write wal: disk full",
		},
		"events_response": EventsResponse{
			Events: []obs.Event{{
				Seq:    41,
				Wall:   1700000000,
				Type:   "reject",
				Shard:  2,
				Gen:    3,
				GID:    12,
				VTime:  "17/2",
				Detail: "deadline infeasible",
			}},
			Next:    42,
			Dropped: 5,
		},
	}
}

// TestWireGolden pins the JSON wire format of every API type against the
// committed fixtures. Run `go test ./internal/model -run TestWireGolden
// -update` after an intentional wire change to regenerate them.
func TestWireGolden(t *testing.T) {
	dir := filepath.Join("testdata", "wire")
	for name, v := range goldenWireValues() {
		got, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		got = append(got, '\n')
		path := filepath.Join(dir, name+".json")
		if *updateGolden {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate)", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: wire format drifted from %s\n got: %s\nwant: %s\n(run with -update if the change is intentional)",
				name, path, got, want)
		}
	}
	// Any fixture without a seed above is a type this test no longer covers —
	// fail loudly rather than letting the contract rot.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	seeded := goldenWireValues()
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) != ".json" {
			continue
		}
		if _, ok := seeded[name[:len(name)-len(".json")]]; !ok {
			t.Errorf("stale fixture %s: no seeded wire value marshals it", name)
		}
	}
}
