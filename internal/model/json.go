package model

import (
	"encoding/json"
	"fmt"
	"math/big"
)

// The JSON encoding keeps every rational exact by encoding it as a string in
// big.Rat notation ("3/2", "10"). An instance document looks like:
//
//	{
//	  "jobs": [{"name":"J0","release":"0","weight":"1","size":"10","databanks":["swissprot"]}],
//	  "machines": [{"name":"M0","inverseSpeed":"1/2","databanks":["swissprot"]}],
//	  "cost": [["5", null]]        // optional; omit to derive from the uniform model
//	}

type jsonJob struct {
	Name      string   `json:"name"`
	Release   string   `json:"release"`
	Weight    string   `json:"weight"`
	Size      string   `json:"size,omitempty"`
	Databanks []string `json:"databanks,omitempty"`
}

type jsonMachine struct {
	Name         string   `json:"name"`
	InverseSpeed string   `json:"inverseSpeed,omitempty"`
	Databanks    []string `json:"databanks,omitempty"`
}

type jsonInstance struct {
	Jobs     []jsonJob     `json:"jobs"`
	Machines []jsonMachine `json:"machines"`
	Cost     [][]*string   `json:"cost,omitempty"`
}

func ratToString(r *big.Rat) string {
	if r == nil {
		return ""
	}
	return r.RatString()
}

func parseRat(s, what string) (*big.Rat, error) {
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		return nil, fmt.Errorf("model: cannot parse %s %q as a rational", what, s)
	}
	return r, nil
}

// MarshalJSON encodes the instance with exact rationals.
func (in *Instance) MarshalJSON() ([]byte, error) {
	doc := jsonInstance{}
	for j := range in.Jobs {
		job := &in.Jobs[j]
		doc.Jobs = append(doc.Jobs, jsonJob{
			Name:      job.Name,
			Release:   ratToString(job.Release),
			Weight:    ratToString(job.Weight),
			Size:      ratToString(job.Size),
			Databanks: job.Databanks,
		})
	}
	for i := range in.Machines {
		m := &in.Machines[i]
		doc.Machines = append(doc.Machines, jsonMachine{
			Name:         m.Name,
			InverseSpeed: ratToString(m.InverseSpeed),
			Databanks:    m.Databanks,
		})
	}
	doc.Cost = make([][]*string, len(in.cost))
	for i := range in.cost {
		doc.Cost[i] = make([]*string, len(in.cost[i]))
		for j, c := range in.cost[i] {
			if c != nil {
				s := c.RatString()
				doc.Cost[i][j] = &s
			}
		}
	}
	return json.Marshal(doc)
}

// UnmarshalJSON decodes an instance document. When the "cost" matrix is
// absent, costs are derived from the uniform-with-restrictions model (sizes
// and inverse speeds must then be present).
func (in *Instance) UnmarshalJSON(data []byte) error {
	var doc jsonInstance
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	jobs := make([]Job, len(doc.Jobs))
	for j, dj := range doc.Jobs {
		release, err := parseRat(dj.Release, "release")
		if err != nil {
			return err
		}
		weight, err := parseRat(dj.Weight, "weight")
		if err != nil {
			return err
		}
		jobs[j] = Job{Name: dj.Name, Release: release, Weight: weight, Databanks: dj.Databanks}
		if dj.Size != "" {
			size, err := parseRat(dj.Size, "size")
			if err != nil {
				return err
			}
			jobs[j].Size = size
		}
	}
	machines := make([]Machine, len(doc.Machines))
	for i, dm := range doc.Machines {
		machines[i] = Machine{Name: dm.Name, Databanks: dm.Databanks}
		if dm.InverseSpeed != "" {
			s, err := parseRat(dm.InverseSpeed, "inverseSpeed")
			if err != nil {
				return err
			}
			machines[i].InverseSpeed = s
		}
	}
	var built *Instance
	var err error
	if doc.Cost == nil {
		built, err = NewInstance(jobs, machines)
	} else {
		cost := make([][]*big.Rat, len(doc.Cost))
		for i := range doc.Cost {
			cost[i] = make([]*big.Rat, len(doc.Cost[i]))
			for j, s := range doc.Cost[i] {
				if s == nil {
					continue
				}
				c, perr := parseRat(*s, "cost")
				if perr != nil {
					return perr
				}
				cost[i][j] = c
			}
		}
		built, err = NewUnrelated(jobs, machines, cost)
	}
	if err != nil {
		return err
	}
	*in = *built
	return nil
}
