// Package model defines the platform and application model of RR-5386
// (Section 3): n divisible jobs with release dates and weights, m unrelated
// machines, and a cost matrix c_{i,j} giving the time machine M_i needs to
// process the whole of job J_j, with c_{i,j} = +∞ when a databank required
// by J_j is absent from M_i.
//
// Two construction paths are provided, mirroring the paper:
//
//   - NewUnrelated: fully unrelated machines, arbitrary cost matrix (the
//     general formulation all theorems are stated for);
//   - the GriPPS special case, "uniform machines with restricted
//     availabilities": c_{i,j} = W_j · c_i if machine M_i hosts every
//     databank J_j depends on, +∞ otherwise. Build it by populating Job and
//     Machine fields and calling NewInstance.
package model

import (
	"errors"
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Job is one divisible request J_j.
type Job struct {
	Name string
	// Release is the release date r_j in seconds. Must be >= 0.
	Release *big.Rat
	// Weight is the priority w_j used by the max weighted flow objective.
	// Must be > 0. For max-stretch use 1/Size (see WeightsForStretch).
	Weight *big.Rat
	// Size is the amount of work W_j (e.g. Mflop) used by the uniform cost
	// model and by the stretch objective. Must be > 0 when the uniform
	// model is used.
	Size *big.Rat
	// Databanks lists the databanks the job needs; the job may only run on
	// machines hosting all of them. Empty means the job runs anywhere.
	Databanks []string
	// Deadline is an optional absolute deadline d̄_j (nil means none). The
	// offline solvers take deadlines as an explicit argument; this field is
	// the service-level carrier — admission control checks it, and it rides
	// migrations and the WAL with the job.
	Deadline *big.Rat
	// Tenant and SLAClass are service-level accounting labels; the solvers
	// ignore them.
	Tenant   string
	SLAClass string
}

// Machine is one compute resource M_i.
type Machine struct {
	Name string
	// InverseSpeed is c_i in seconds per unit of work for the uniform cost
	// model (larger is slower). Must be > 0 when the uniform model is used.
	InverseSpeed *big.Rat
	// Databanks lists the databanks present on the machine.
	Databanks []string
}

// Hosts reports whether the machine holds every databank in need.
func (m *Machine) Hosts(need []string) bool {
	for _, d := range need {
		found := false
		for _, have := range m.Databanks {
			if have == d {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Instance is a complete scheduling problem instance.
type Instance struct {
	Jobs     []Job
	Machines []Machine
	// cost[i][j] is c_{i,j}; nil encodes +∞ (job j cannot run on machine i).
	cost [][]*big.Rat
}

// NewInstance builds an instance under the uniform-with-restrictions model:
// c_{i,j} = Size_j · InverseSpeed_i when machine i hosts job j's databanks,
// +∞ otherwise. Jobs are sorted by non-decreasing release date, as the paper
// assumes.
func NewInstance(jobs []Job, machines []Machine) (*Instance, error) {
	inst := &Instance{Jobs: append([]Job(nil), jobs...), Machines: append([]Machine(nil), machines...)}
	sort.SliceStable(inst.Jobs, func(a, b int) bool {
		return inst.Jobs[a].Release.Cmp(inst.Jobs[b].Release) < 0
	})
	inst.cost = make([][]*big.Rat, len(machines))
	for i := range machines {
		if machines[i].InverseSpeed == nil || machines[i].InverseSpeed.Sign() <= 0 {
			return nil, fmt.Errorf("model: machine %d (%s) needs InverseSpeed > 0", i, machines[i].Name)
		}
		inst.cost[i] = make([]*big.Rat, len(inst.Jobs))
		for j := range inst.Jobs {
			job := &inst.Jobs[j]
			if job.Size == nil || job.Size.Sign() <= 0 {
				return nil, fmt.Errorf("model: job %d (%s) needs Size > 0", j, job.Name)
			}
			if inst.Machines[i].Hosts(job.Databanks) {
				inst.cost[i][j] = new(big.Rat).Mul(job.Size, inst.Machines[i].InverseSpeed)
			}
		}
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}

// NewUnrelated builds an instance from an explicit cost matrix
// cost[machine][job]; nil entries encode +∞. Jobs are sorted by
// non-decreasing release date and the matrix columns are permuted
// accordingly.
func NewUnrelated(jobs []Job, machines []Machine, cost [][]*big.Rat) (*Instance, error) {
	if len(cost) != len(machines) {
		return nil, fmt.Errorf("model: cost has %d rows, want %d machines", len(cost), len(machines))
	}
	for i := range cost {
		if len(cost[i]) != len(jobs) {
			return nil, fmt.Errorf("model: cost row %d has %d columns, want %d jobs", i, len(cost[i]), len(jobs))
		}
	}
	perm := make([]int, len(jobs))
	for j := range perm {
		perm[j] = j
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return jobs[perm[a]].Release.Cmp(jobs[perm[b]].Release) < 0
	})
	inst := &Instance{Machines: append([]Machine(nil), machines...)}
	inst.Jobs = make([]Job, len(jobs))
	for k, j := range perm {
		inst.Jobs[k] = jobs[j]
	}
	inst.cost = make([][]*big.Rat, len(machines))
	for i := range cost {
		inst.cost[i] = make([]*big.Rat, len(jobs))
		for k, j := range perm {
			if cost[i][j] != nil {
				inst.cost[i][k] = new(big.Rat).Set(cost[i][j])
			}
		}
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}

// N returns the number of jobs.
func (in *Instance) N() int { return len(in.Jobs) }

// M returns the number of machines.
func (in *Instance) M() int { return len(in.Machines) }

// Cost returns c_{i,j} and whether it is finite.
func (in *Instance) Cost(i, j int) (*big.Rat, bool) {
	c := in.cost[i][j]
	if c == nil {
		return nil, false
	}
	return c, true //divflow:ratalias-ok the cost matrix is immutable after construction; callers get a read-only view
}

// CanRun reports whether job j may execute (even partially) on machine i.
func (in *Instance) CanRun(i, j int) bool { return in.cost[i][j] != nil }

// EligibleMachines returns the machines on which job j can run.
func (in *Instance) EligibleMachines(j int) []int {
	var out []int
	for i := range in.Machines {
		if in.cost[i][j] != nil {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks the structural invariants the algorithms rely on: sorted
// non-negative release dates, strictly positive weights, finite costs
// strictly positive, and every job executable on at least one machine.
func (in *Instance) Validate() error {
	if len(in.Jobs) == 0 {
		return errors.New("model: instance has no jobs")
	}
	if len(in.Machines) == 0 {
		return errors.New("model: instance has no machines")
	}
	var prev *big.Rat
	for j := range in.Jobs {
		job := &in.Jobs[j]
		if job.Release == nil || job.Release.Sign() < 0 {
			return fmt.Errorf("model: job %d (%s) needs Release >= 0", j, job.Name)
		}
		if job.Weight == nil || job.Weight.Sign() <= 0 {
			return fmt.Errorf("model: job %d (%s) needs Weight > 0", j, job.Name)
		}
		if prev != nil && job.Release.Cmp(prev) < 0 {
			return fmt.Errorf("model: jobs not sorted by release date at index %d", j)
		}
		prev = job.Release
		runnable := false
		for i := range in.Machines {
			if c := in.cost[i][j]; c != nil {
				if c.Sign() <= 0 {
					return fmt.Errorf("model: cost[%d][%d] must be > 0", i, j)
				}
				runnable = true
			}
		}
		if !runnable {
			return fmt.Errorf("model: job %d (%s) cannot run on any machine", j, job.Name)
		}
	}
	return nil
}

// WeightsForStretch overwrites every job weight with 1/Size, turning the max
// weighted flow objective into max stretch. (The paper's prose says
// "w_j = W_j", which contradicts its own definition F_weighted = w_j·F_j;
// stretch is F_j / W_j, hence w_j = 1/W_j.) It returns the instance for
// chaining.
func (in *Instance) WeightsForStretch() *Instance {
	for j := range in.Jobs {
		if in.Jobs[j].Size == nil || in.Jobs[j].Size.Sign() <= 0 {
			panic(fmt.Sprintf("model: job %d has no Size; cannot derive stretch weight", j))
		}
		in.Jobs[j].Weight = new(big.Rat).Inv(in.Jobs[j].Size)
	}
	return in
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{
		Jobs:     make([]Job, len(in.Jobs)),
		Machines: make([]Machine, len(in.Machines)),
		cost:     make([][]*big.Rat, len(in.cost)),
	}
	for j, job := range in.Jobs {
		out.Jobs[j] = Job{
			Name:      job.Name,
			Release:   new(big.Rat).Set(job.Release),
			Weight:    new(big.Rat).Set(job.Weight),
			Databanks: append([]string(nil), job.Databanks...),
			Tenant:    job.Tenant,
			SLAClass:  job.SLAClass,
		}
		if job.Size != nil {
			out.Jobs[j].Size = new(big.Rat).Set(job.Size)
		}
		if job.Deadline != nil {
			out.Jobs[j].Deadline = new(big.Rat).Set(job.Deadline)
		}
	}
	for i, mach := range in.Machines {
		out.Machines[i] = Machine{Name: mach.Name, Databanks: append([]string(nil), mach.Databanks...)}
		if mach.InverseSpeed != nil {
			out.Machines[i].InverseSpeed = new(big.Rat).Set(mach.InverseSpeed)
		}
	}
	for i := range in.cost {
		out.cost[i] = make([]*big.Rat, len(in.cost[i]))
		for j, c := range in.cost[i] {
			if c != nil {
				out.cost[i][j] = new(big.Rat).Set(c)
			}
		}
	}
	return out
}

// String renders a compact description of the instance.
func (in *Instance) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instance: %d jobs, %d machines (", in.N(), in.M())
	for i := range in.Machines {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(in.Machines[i].Name)
	}
	b.WriteString(")\n")
	for j := range in.Jobs {
		job := &in.Jobs[j]
		fmt.Fprintf(&b, "  J%d (%s): r=%s w=%s", j, job.Name, job.Release.RatString(), job.Weight.RatString())
		if job.Size != nil {
			fmt.Fprintf(&b, " W=%s", job.Size.RatString())
		}
		if len(job.Databanks) > 0 {
			fmt.Fprintf(&b, " banks=%v", job.Databanks)
		}
		b.WriteString(" cost=[")
		for i := range in.Machines {
			if i > 0 {
				b.WriteString(" ")
			}
			if c, ok := in.Cost(i, j); ok {
				b.WriteString(c.RatString())
			} else {
				b.WriteString("inf")
			}
		}
		b.WriteString("]\n")
	}
	return b.String()
}
