package model

import (
	"encoding/json"
	"math/big"
	"testing"
)

func r(a, b int64) *big.Rat { return big.NewRat(a, b) }

func twoByTwo(t *testing.T) *Instance {
	t.Helper()
	jobs := []Job{
		{Name: "J0", Release: r(0, 1), Weight: r(1, 1), Size: r(10, 1), Databanks: []string{"pdb"}},
		{Name: "J1", Release: r(2, 1), Weight: r(2, 1), Size: r(4, 1)},
	}
	machines := []Machine{
		{Name: "fast", InverseSpeed: r(1, 2), Databanks: []string{"pdb"}},
		{Name: "slow", InverseSpeed: r(2, 1)},
	}
	inst, err := NewInstance(jobs, machines)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestUniformCosts(t *testing.T) {
	inst := twoByTwo(t)
	// J0 needs "pdb": only machine 0 has it; c_{0,0} = 10 * 1/2 = 5.
	c, ok := inst.Cost(0, 0)
	if !ok || c.Cmp(r(5, 1)) != 0 {
		t.Errorf("cost[0][0] = %v,%v want 5", c, ok)
	}
	if _, ok := inst.Cost(1, 0); ok {
		t.Error("J0 must not run on the slow machine (missing databank)")
	}
	// J1 runs anywhere: c_{0,1} = 4*1/2 = 2, c_{1,1} = 4*2 = 8.
	if c, _ := inst.Cost(0, 1); c.Cmp(r(2, 1)) != 0 {
		t.Errorf("cost[0][1] = %v, want 2", c)
	}
	if c, _ := inst.Cost(1, 1); c.Cmp(r(8, 1)) != 0 {
		t.Errorf("cost[1][1] = %v, want 8", c)
	}
}

func TestSortByRelease(t *testing.T) {
	jobs := []Job{
		{Name: "late", Release: r(5, 1), Weight: r(1, 1), Size: r(1, 1)},
		{Name: "early", Release: r(1, 1), Weight: r(1, 1), Size: r(1, 1)},
	}
	machines := []Machine{{Name: "m", InverseSpeed: r(1, 1)}}
	inst, err := NewInstance(jobs, machines)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Jobs[0].Name != "early" || inst.Jobs[1].Name != "late" {
		t.Errorf("jobs not sorted by release: %v, %v", inst.Jobs[0].Name, inst.Jobs[1].Name)
	}
}

func TestUnrelatedSortPermutesCost(t *testing.T) {
	jobs := []Job{
		{Name: "late", Release: r(5, 1), Weight: r(1, 1)},
		{Name: "early", Release: r(1, 1), Weight: r(1, 1)},
	}
	machines := []Machine{{Name: "m0"}, {Name: "m1"}}
	cost := [][]*big.Rat{
		{r(7, 1), r(3, 1)},
		{nil, r(4, 1)},
	}
	inst, err := NewUnrelated(jobs, machines, cost)
	if err != nil {
		t.Fatal(err)
	}
	// After sorting, job 0 is "early" whose original column was 1.
	if c, _ := inst.Cost(0, 0); c.Cmp(r(3, 1)) != 0 {
		t.Errorf("cost[0][early] = %v, want 3", c)
	}
	if c, _ := inst.Cost(1, 0); c.Cmp(r(4, 1)) != 0 {
		t.Errorf("cost[1][early] = %v, want 4", c)
	}
	if _, ok := inst.Cost(1, 1); ok {
		t.Error("cost[1][late] should be +inf")
	}
}

func TestValidateRejects(t *testing.T) {
	m := []Machine{{Name: "m", InverseSpeed: r(1, 1)}}
	cases := []struct {
		name string
		jobs []Job
	}{
		{"negative release", []Job{{Release: r(-1, 1), Weight: r(1, 1), Size: r(1, 1)}}},
		{"zero weight", []Job{{Release: r(0, 1), Weight: r(0, 1), Size: r(1, 1)}}},
		{"zero size", []Job{{Release: r(0, 1), Weight: r(1, 1), Size: r(0, 1)}}},
		{"unrunnable", []Job{{Release: r(0, 1), Weight: r(1, 1), Size: r(1, 1), Databanks: []string{"missing"}}}},
	}
	for _, tc := range cases {
		if _, err := NewInstance(tc.jobs, m); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := NewInstance(nil, m); err == nil {
		t.Error("no jobs: expected error")
	}
	if _, err := NewInstance([]Job{{Release: r(0, 1), Weight: r(1, 1), Size: r(1, 1)}}, nil); err == nil {
		t.Error("no machines: expected error")
	}
}

func TestEligibleMachines(t *testing.T) {
	inst := twoByTwo(t)
	if got := inst.EligibleMachines(0); len(got) != 1 || got[0] != 0 {
		t.Errorf("eligible(J0) = %v, want [0]", got)
	}
	if got := inst.EligibleMachines(1); len(got) != 2 {
		t.Errorf("eligible(J1) = %v, want both", got)
	}
}

func TestWeightsForStretch(t *testing.T) {
	inst := twoByTwo(t)
	inst.WeightsForStretch()
	if inst.Jobs[0].Weight.Cmp(r(1, 10)) != 0 {
		t.Errorf("stretch weight J0 = %v, want 1/10", inst.Jobs[0].Weight)
	}
	if inst.Jobs[1].Weight.Cmp(r(1, 4)) != 0 {
		t.Errorf("stretch weight J1 = %v, want 1/4", inst.Jobs[1].Weight)
	}
}

func TestCloneIsDeep(t *testing.T) {
	inst := twoByTwo(t)
	cp := inst.Clone()
	cp.Jobs[0].Release.SetInt64(99)
	c, _ := cp.Cost(0, 0)
	c.SetInt64(77)
	if inst.Jobs[0].Release.Cmp(r(0, 1)) != 0 {
		t.Error("clone shares job release")
	}
	if c0, _ := inst.Cost(0, 0); c0.Cmp(r(5, 1)) != 0 {
		t.Error("clone shares cost matrix")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	inst := twoByTwo(t)
	data, err := json.Marshal(inst)
	if err != nil {
		t.Fatal(err)
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != inst.N() || back.M() != inst.M() {
		t.Fatalf("dimensions changed: %dx%d -> %dx%d", inst.N(), inst.M(), back.N(), back.M())
	}
	for i := 0; i < inst.M(); i++ {
		for j := 0; j < inst.N(); j++ {
			a, aok := inst.Cost(i, j)
			b, bok := back.Cost(i, j)
			if aok != bok || (aok && a.Cmp(b) != 0) {
				t.Errorf("cost[%d][%d] changed: %v,%v -> %v,%v", i, j, a, aok, b, bok)
			}
		}
	}
	if back.Jobs[1].Weight.Cmp(inst.Jobs[1].Weight) != 0 {
		t.Error("weights changed in round trip")
	}
}

func TestJSONWithoutCostDerivesUniform(t *testing.T) {
	doc := `{
	  "jobs": [
	    {"name":"a","release":"0","weight":"1","size":"6","databanks":["x"]},
	    {"name":"b","release":"1","weight":"1/2","size":"2"}
	  ],
	  "machines": [
	    {"name":"m0","inverseSpeed":"1/3","databanks":["x"]},
	    {"name":"m1","inverseSpeed":"1"}
	  ]
	}`
	var inst Instance
	if err := json.Unmarshal([]byte(doc), &inst); err != nil {
		t.Fatal(err)
	}
	if c, _ := inst.Cost(0, 0); c.Cmp(r(2, 1)) != 0 {
		t.Errorf("cost[0][a] = %v, want 2", c)
	}
	if _, ok := inst.Cost(1, 0); ok {
		t.Error("job a should not run on m1")
	}
}

func TestJSONBadRational(t *testing.T) {
	doc := `{"jobs":[{"name":"a","release":"zero","weight":"1"}],"machines":[{"name":"m"}]}`
	var inst Instance
	if err := json.Unmarshal([]byte(doc), &inst); err == nil {
		t.Error("expected parse error for bad rational")
	}
}

func TestHosts(t *testing.T) {
	m := Machine{Databanks: []string{"a", "b"}}
	if !m.Hosts(nil) {
		t.Error("empty requirement should always be hosted")
	}
	if !m.Hosts([]string{"a"}) || !m.Hosts([]string{"b", "a"}) {
		t.Error("subset requirement should be hosted")
	}
	if m.Hosts([]string{"c"}) || m.Hosts([]string{"a", "c"}) {
		t.Error("missing databank should not be hosted")
	}
}

func TestStringDump(t *testing.T) {
	s := twoByTwo(t).String()
	for _, want := range []string{"2 jobs", "inf", "fast", "J0"} {
		if !contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
