package model

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/big"

	"divflow/internal/obs"
	"divflow/internal/stats"
)

// Wire-format types of the divflowd HTTP API. All rationals travel as
// strings in big.Rat notation ("3/2", "10"), exactly like the instance and
// schedule encodings, so nothing is lost between client and scheduler.

// SubmitRequest is the body of POST /v1/jobs: one divisible request.
type SubmitRequest struct {
	Name string `json:"name,omitempty"`
	// Weight is the priority w_j of the max weighted flow objective;
	// optional, default 1.
	Weight string `json:"weight,omitempty"`
	// Size is the amount of work W_j; required (the service schedules under
	// the uniform cost model, c_{i,j} = Size · InverseSpeed_i).
	Size string `json:"size"`
	// Databanks lists the databanks the job needs; it may only run on
	// machines hosting all of them.
	Databanks []string `json:"databanks,omitempty"`
}

// maxWireRatBits bounds the numerator/denominator of submitted rationals:
// exact arithmetic makes every accepted digit a permanent cost in all later
// LP solves, so an unbounded "1e100000" would wedge the scheduling loop.
const maxWireRatBits = 256

func parseWireRat(s, what string) (*big.Rat, error) {
	r, err := parseRat(s, what)
	if err != nil {
		return nil, err
	}
	if r.Num().BitLen() > maxWireRatBits || r.Denom().BitLen() > maxWireRatBits {
		return nil, fmt.Errorf("model: %s %q exceeds %d bits", what, s, maxWireRatBits)
	}
	return r, nil
}

// Job converts the request into a model Job with no release date (the
// scheduler stamps the release when it admits the job).
func (r *SubmitRequest) Job() (Job, error) {
	job := Job{Name: r.Name, Databanks: r.Databanks}
	if r.Size == "" {
		return job, errors.New("model: submission needs a size")
	}
	size, err := parseWireRat(r.Size, "size")
	if err != nil {
		return job, err
	}
	if size.Sign() <= 0 {
		return job, errors.New("model: submission needs size > 0")
	}
	job.Size = size
	if r.Weight == "" {
		job.Weight = big.NewRat(1, 1)
	} else {
		w, err := parseWireRat(r.Weight, "weight")
		if err != nil {
			return job, err
		}
		if w.Sign() <= 0 {
			return job, errors.New("model: submission needs weight > 0")
		}
		job.Weight = w
	}
	return job, nil
}

// SubmitResponse is the body answering POST /v1/jobs.
type SubmitResponse struct {
	ID    int    `json:"id"`
	State string `json:"state"`
	// Warning is set when the job was accepted onto a degraded shard — the
	// only shard hosting its databanks has latched a scheduling error, so
	// the job will queue until the shard recovers. It carries that shard's
	// error text; healthy routings leave it empty.
	Warning string `json:"warning,omitempty"`
}

// JobStatus is the body of GET /v1/jobs/{id}. Rational fields are empty
// until known (Release until the scheduler admits the job; CompletedAt,
// Flow, WeightedFlow and Stretch until it completes).
type JobStatus struct {
	ID        int      `json:"id"`
	Name      string   `json:"name,omitempty"`
	State     string   `json:"state"`
	Weight    string   `json:"weight"`
	Size      string   `json:"size"`
	Databanks []string `json:"databanks,omitempty"`
	// Release is the submission time — the job's flow origin; queueing
	// delay before the scheduler admits the job counts against its flow.
	Release     string `json:"release,omitempty"`
	Remaining   string `json:"remaining,omitempty"`
	CompletedAt string `json:"completedAt,omitempty"`
	Flow        string `json:"flow,omitempty"`
	// WeightedFlow is Weight · Flow, the job's contribution to the service
	// objective; Stretch is Flow / Size.
	WeightedFlow string `json:"weightedFlow,omitempty"`
	Stretch      string `json:"stretch,omitempty"`
}

// ShardStats is the per-shard breakdown inside StatsResponse: one entry per
// scheduling shard of a partitioned divflowd instance. Counters have the
// same meaning as their aggregate counterparts; Backlog is the shard's exact
// residual work (accepted job sizes minus completed ones), the quantity the
// router minimizes when placing a submission eligible on several shards.
// JobsAccepted counts jobs submitted to the shard by the router (births
// only), so the fleet aggregate counts every job exactly once no matter how
// often it migrates; StolenJobs counts jobs this shard stole from overloaded
// shards and Migrations jobs stolen away from it.
type ShardStats struct {
	Shard int `json:"shard"`
	// Generation is the newest topology generation the shard is (or was) a
	// member of: kept shards advance with every reshard that keeps them,
	// retired shards stay at the generation their service ended in.
	Generation    int      `json:"generation"`
	Machines      []string `json:"machines"`
	Now           string   `json:"now"`
	JobsAccepted  int      `json:"jobsAccepted"`
	JobsQueued    int      `json:"jobsQueued"`
	JobsLive      int      `json:"jobsLive"`
	JobsCompleted int      `json:"jobsCompleted"`
	Events        int      `json:"events"`
	LPSolves      int      `json:"lpSolves"`
	PlanCacheHits int      `json:"planCacheHits"`
	// Solver is this shard's own hybrid-engine path breakdown (the aggregate
	// StatsResponse.Solver is the sum over shards): a single shard burning
	// exact fallbacks — a pathological workload shape, or a warm-start chain
	// gone stale — is visible here while the fleet aggregate still looks
	// healthy.
	Solver          stats.SolverTally `json:"solver"`
	ArrivalBatches  int               `json:"arrivalBatches"`
	BatchedArrivals int               `json:"batchedArrivals"`
	LargestBatch    int               `json:"largestBatch"`
	CompactedJobs   int               `json:"compactedJobs,omitempty"`
	StolenJobs      int               `json:"stolenJobs,omitempty"`
	Migrations      int               `json:"migrations,omitempty"`
	// ReshardedIn counts jobs a live reshard migrated onto this shard and
	// ReshardedOut jobs it migrated away; Retired marks a shard dropped from
	// the active topology by a reshard — it no longer schedules, but keeps
	// serving the records and executed trace of its generation.
	ReshardedIn  int  `json:"reshardedIn,omitempty"`
	ReshardedOut int  `json:"reshardedOut,omitempty"`
	Retired      bool `json:"retired,omitempty"`
	// Freed marks a retired shard whose fully-compacted history was released:
	// only the ID-decoding tombstone remains, so counters below it are the
	// aggregates frozen at the free.
	Freed   bool   `json:"freed,omitempty"`
	Backlog string `json:"backlog"`
	Stalled bool   `json:"stalled,omitempty"`
	// Panics counts loop panics the supervisor caught on this shard and
	// Restarts how often -restart-stalled rebuilt it from in-memory state.
	Panics    int    `json:"panics,omitempty"`
	Restarts  int    `json:"restarts,omitempty"`
	LastError string `json:"lastError,omitempty"`
}

// WALStats is the durability section of StatsResponse, present when the
// server runs with a write-ahead log.
type WALStats struct {
	// Appends counts records durably appended since startup; Snapshots the
	// fleet snapshots written. Replayed is the number of WAL records replayed
	// through the normal admission paths at the last startup.
	Appends   int `json:"appends"`
	Snapshots int `json:"snapshots,omitempty"`
	Replayed  int `json:"replayed,omitempty"`
	// Error is the latched WAL failure, if any: durability is frozen at a
	// consistent prefix while the service keeps scheduling.
	Error string `json:"error,omitempty"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Policy        string `json:"policy"`
	Now           string `json:"now"`
	JobsAccepted  int    `json:"jobsAccepted"`
	JobsLive      int    `json:"jobsLive"`
	JobsCompleted int    `json:"jobsCompleted"`
	// Events counts scheduling decision points (arrival batches, job
	// completions, plan review points); LPSolves counts exact inner solves
	// and PlanCacheHits the decision points served from the cached plan,
	// so Events - LPSolves is the work the batching/caching layer saved
	// (both are zero for solver-free policies).
	Events        int `json:"events"`
	LPSolves      int `json:"lpSolves"`
	PlanCacheHits int `json:"planCacheHits"`
	// Solver breaks the LP solves down by the hybrid engine's path: how
	// many were settled by the float simplex plus an exact verification,
	// how many needed exact crossover pivots or a full exact fallback, and
	// how often a previous optimal basis warm-started a re-solve. All paths
	// are exact; the split is a performance, not a correctness, signal.
	Solver stats.SolverTally `json:"solver"`
	// ArrivalBatches counts scheduler wake-ups that admitted submitted jobs
	// and BatchedArrivals the jobs admitted by them, so BatchedArrivals >
	// ArrivalBatches means several arrivals shared one re-solve;
	// LargestBatch is the biggest single admission. Only each job's *first*
	// admission counts — work-stealing re-admissions are excluded — so,
	// like JobsAccepted, these counters see every submission exactly once
	// no matter how often the job migrates.
	ArrivalBatches  int `json:"arrivalBatches"`
	BatchedArrivals int `json:"batchedArrivals"`
	LargestBatch    int `json:"largestBatch"`
	// MaxWeightedFlow and MaxStretch aggregate the completed jobs
	// (exact rationals); MeanFlow and P95Flow are float summaries.
	MaxWeightedFlow string  `json:"maxWeightedFlow,omitempty"`
	MaxStretch      string  `json:"maxStretch,omitempty"`
	MeanFlow        float64 `json:"meanFlow,omitempty"`
	P95Flow         float64 `json:"p95Flow,omitempty"`
	// CompactedJobs counts completed jobs whose records and schedule pieces
	// were dropped by the retention policy; their flow/stretch contributions
	// remain in the aggregates above. P95Flow is estimated from the same
	// fixed-bucket flow histogram GET /metrics exports
	// (divflow_flow_time{shard}), with the same linear-interpolation
	// estimator Prometheus's histogram_quantile uses — so the two surfaces
	// cannot disagree on the same percentile.
	CompactedJobs int `json:"compactedJobs,omitempty"`
	// StolenJobs counts cross-shard work-stealing migrations received
	// (jobs an idle shard pulled from an overloaded one) and Migrations the
	// donations; fleet-wide the two are equal — every migration has exactly
	// one donor and one thief — and both are zero with -steal=false.
	StolenJobs int    `json:"stolenJobs,omitempty"`
	Migrations int    `json:"migrations,omitempty"`
	Stalled    bool   `json:"stalled,omitempty"`
	LastError  string `json:"lastError,omitempty"`
	// ShardCount is the number of *active* scheduling shards the fleet is
	// currently partitioned into; Shards breaks the aggregate counters above
	// down per shard, retired generations included. Generation is the
	// current topology epoch (0 until the first structural reshard),
	// ReshardEvents the number of structural reshards performed, and
	// ReshardedJobs the number of job migrations those reshards made.
	ShardCount    int          `json:"shardCount"`
	Generation    int          `json:"generation"`
	ReshardEvents int          `json:"reshardEvents,omitempty"`
	ReshardedJobs int          `json:"reshardedJobs,omitempty"`
	Shards        []ShardStats `json:"shards,omitempty"`
	// WAL is the durability layer's counters, nil when the server runs
	// without a write-ahead log.
	WAL *WALStats `json:"wal,omitempty"`
}

// ReshardResponse is the body answering POST /v1/platform: the outcome of a
// live re-sharding request. A no-op reshard (the new platform induces the
// partition already running) keeps every shard, migrates nothing, and does
// not advance the generation.
type ReshardResponse struct {
	// Generation is the topology epoch after the reshard.
	Generation int `json:"generation"`
	// ShardCount is the number of active shards after the reshard.
	ShardCount int `json:"shardCount"`
	// Noop reports that the new platform left the partition unchanged.
	Noop bool `json:"noop,omitempty"`
	// MigratedJobs counts the queued and live jobs moved (with their exact
	// remaining fractions) off retired shards onto the new topology.
	MigratedJobs int `json:"migratedJobs"`
	// SpawnedShards and RetiredShards list the creation indices of shards
	// the reshard started and drained; KeptShards the ones carried over.
	SpawnedShards []int `json:"spawnedShards,omitempty"`
	RetiredShards []int `json:"retiredShards,omitempty"`
	KeptShards    []int `json:"keptShards,omitempty"`
	// Warning is set when some migrated job could only be placed on a shard
	// whose loop has latched a scheduling error (the only host of its
	// databanks): the repartition succeeded, but that job will queue until
	// the shard recovers — the same degraded-routing signal SubmitResponse
	// carries.
	Warning string `json:"warning,omitempty"`
}

// ScheduleResponse is the body of GET /v1/schedule: the executed Gantt so
// far (pieces reference job IDs). Pieces of completed work never change;
// the piece currently in execution extends as time advances.
type ScheduleResponse struct {
	Now      string          `json:"now"`
	Makespan string          `json:"makespan"`
	Schedule json.RawMessage `json:"schedule"`
}

// Platform is a parsed platform document: the machine fleet a divflowd
// instance owns, plus optional service-level scheduling configuration.
type Platform struct {
	Machines []Machine
	// Shards, when positive, fixes the number of scheduling shards the fleet
	// is split into (round-robin), overriding the default partition by
	// databank-connectivity components. Useful for uniform fleets where every
	// machine hosts everything and the connectivity partition degenerates to
	// a single shard.
	Shards int
}

// ParsePlatform decodes a platform document's machine fleet — encoded as
// {"machines":[{"name","inverseSpeed","databanks"}]}. Every machine needs a
// strictly positive inverseSpeed.
func ParsePlatform(data []byte) ([]Machine, error) {
	p, err := ParsePlatformConfig(data)
	if err != nil {
		return nil, err
	}
	return p.Machines, nil
}

// ParsePlatformConfig decodes a full platform document, including the
// optional {"shards": N} scheduling partition override.
func ParsePlatformConfig(data []byte) (*Platform, error) {
	var doc struct {
		Machines []jsonMachine `json:"machines"`
		Shards   int           `json:"shards"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("model: platform: %w", err)
	}
	if len(doc.Machines) == 0 {
		return nil, errors.New("model: platform has no machines")
	}
	if doc.Shards < 0 {
		return nil, fmt.Errorf("model: platform shards = %d, want >= 0", doc.Shards)
	}
	machines := make([]Machine, len(doc.Machines))
	for i, dm := range doc.Machines {
		machines[i] = Machine{Name: dm.Name, Databanks: dm.Databanks}
		if dm.InverseSpeed == "" {
			return nil, fmt.Errorf("model: platform machine %d (%s) needs inverseSpeed", i, dm.Name)
		}
		s, err := parseRat(dm.InverseSpeed, "inverseSpeed")
		if err != nil {
			return nil, err
		}
		if s.Sign() <= 0 {
			return nil, fmt.Errorf("model: platform machine %d (%s) needs inverseSpeed > 0", i, dm.Name)
		}
		machines[i].InverseSpeed = s
	}
	return &Platform{Machines: machines, Shards: doc.Shards}, nil
}

// HealthResponse is the body of GET /healthz: "ok" with HTTP 200 while every
// active shard is healthy, "stalled" with HTTP 503 otherwise, naming the
// active shards whose loops latched a scheduling error. Retired shards are
// history, not health, and never appear here. A latched write-ahead-log
// failure degrades the status ("degraded", still HTTP 200 — the service
// keeps scheduling, only durability is frozen) and surfaces the error.
type HealthResponse struct {
	Status        string   `json:"status"`
	StalledShards []int    `json:"stalledShards,omitempty"`
	Errors        []string `json:"errors,omitempty"`
	WALError      string   `json:"walError,omitempty"`
}

// EventsResponse is the body of GET /v1/events: one page of the structured
// event journal. Next is the cursor to pass back as ?since= to see only
// newer events; Dropped counts events between the requested cursor and the
// oldest retained one that the bounded ring had already overwritten.
type EventsResponse struct {
	Events  []obs.Event `json:"events"`
	Next    int64       `json:"next"`
	Dropped int64       `json:"dropped,omitempty"`
}
