package model

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/big"

	"divflow/internal/obs"
	"divflow/internal/stats"
)

// Wire-format types of the divflowd HTTP API. All rationals travel as
// strings in big.Rat notation ("3/2", "10"), exactly like the instance and
// schedule encodings, so nothing is lost between client and scheduler.

// SubmitRequest is the body of POST /v1/jobs: one divisible request.
type SubmitRequest struct {
	Name string `json:"name,omitempty"`
	// Weight is the priority w_j of the max weighted flow objective;
	// optional, default 1.
	Weight string `json:"weight,omitempty"`
	// Size is the amount of work W_j; required (the service schedules under
	// the uniform cost model, c_{i,j} = Size · InverseSpeed_i).
	Size string `json:"size"`
	// Databanks lists the databanks the job needs; it may only run on
	// machines hosting all of them.
	Databanks []string `json:"databanks,omitempty"`
	// Deadline is an absolute virtual-time deadline (exact rational, same
	// timeline as Release/CompletedAt). When set, admission runs the paper's
	// deadline-feasibility LP (Lemma 1 / System (2)) against the routed
	// shard's residual workload and answers with an exact certificate — an
	// accept, or a typed reject carrying the best achievable counter-offer
	// deadline. Empty means no deadline.
	Deadline string `json:"deadline,omitempty"`
	// Tenant names the submitting tenant for weighted-fairness accounting
	// and isolation (per-tenant stats on GET /v1/tenants; a tenant over its
	// configured share is shed with a tenant_over_quota reject). Empty means
	// untracked legacy traffic, exempt from quota.
	Tenant string `json:"tenant,omitempty"`
	// SLAClass is the job's service class: "premium" (guaranteed — never
	// shed by tenant quota), "standard" (the default), or "batch"
	// (best-effort). It is carried end to end and reported per tenant.
	SLAClass string `json:"slaClass,omitempty"`
}

// SLA classes accepted on the wire. The empty string is normalized to
// SLAStandard at admission.
const (
	SLAPremium  = "premium"
	SLAStandard = "standard"
	SLABatch    = "batch"
)

// ValidSLAClass reports whether s names a known SLA class ("" included).
func ValidSLAClass(s string) bool {
	switch s {
	case "", SLAPremium, SLAStandard, SLABatch:
		return true
	}
	return false
}

// BatchSubmitRequest is the batch form of POST /v1/jobs: every job is
// admitted as one arrival batch and answered in order.
type BatchSubmitRequest struct {
	Jobs []SubmitRequest `json:"jobs"`
}

// BatchSubmitResult is one per-job outcome inside BatchSubmitResponse:
// either an accepted submission (ID/State/Warning/Admission, Error nil) or a
// typed rejection (Error set, the other fields zero).
type BatchSubmitResult struct {
	ID        int                   `json:"id,omitempty"`
	State     string                `json:"state,omitempty"`
	Warning   string                `json:"warning,omitempty"`
	Admission *AdmissionCertificate `json:"admission,omitempty"`
	Error     *WireError            `json:"error,omitempty"`
}

// BatchSubmitResponse answers a batch POST /v1/jobs, results in request
// order. The HTTP status is 202 when at least one job was accepted; the
// per-job Error fields carry individual rejections.
type BatchSubmitResponse struct {
	Results []BatchSubmitResult `json:"results"`
}

// maxWireRatBits bounds the numerator/denominator of submitted rationals:
// exact arithmetic makes every accepted digit a permanent cost in all later
// LP solves, so an unbounded "1e100000" would wedge the scheduling loop.
const maxWireRatBits = 256

func parseWireRat(s, what string) (*big.Rat, error) {
	r, err := parseRat(s, what)
	if err != nil {
		return nil, err
	}
	if r.Num().BitLen() > maxWireRatBits || r.Denom().BitLen() > maxWireRatBits {
		return nil, fmt.Errorf("model: %s %q exceeds %d bits", what, s, maxWireRatBits)
	}
	return r, nil
}

// Job converts the request into a model Job with no release date (the
// scheduler stamps the release when it admits the job).
func (r *SubmitRequest) Job() (Job, error) {
	job := Job{Name: r.Name, Databanks: r.Databanks}
	if r.Size == "" {
		return job, errors.New("model: submission needs a size")
	}
	size, err := parseWireRat(r.Size, "size")
	if err != nil {
		return job, err
	}
	if size.Sign() <= 0 {
		return job, errors.New("model: submission needs size > 0")
	}
	job.Size = size
	if r.Weight == "" {
		job.Weight = big.NewRat(1, 1)
	} else {
		w, err := parseWireRat(r.Weight, "weight")
		if err != nil {
			return job, err
		}
		if w.Sign() <= 0 {
			return job, errors.New("model: submission needs weight > 0")
		}
		job.Weight = w
	}
	if r.Deadline != "" {
		d, err := parseWireRat(r.Deadline, "deadline")
		if err != nil {
			return job, err
		}
		if d.Sign() <= 0 {
			return job, errors.New("model: submission needs deadline > 0")
		}
		job.Deadline = d
	}
	if !ValidSLAClass(r.SLAClass) {
		return job, fmt.Errorf("model: unknown slaClass %q (want premium, standard, or batch)", r.SLAClass)
	}
	job.Tenant = r.Tenant
	job.SLAClass = r.SLAClass
	if job.SLAClass == "" {
		job.SLAClass = SLAStandard
	}
	return job, nil
}

// AdmissionCertificate is the exact outcome of the deadline-feasibility
// check a shard ran for a submission. It rides SubmitResponse on accepted
// jobs and the error envelope on deadline_infeasible rejects.
type AdmissionCertificate struct {
	// Mode is the admission mode the check ran under: "strict" rejects
	// infeasible deadlines, "advisory" admits them but reports the
	// certificate.
	Mode string `json:"mode"`
	// Feasible is the exact LP verdict: the deadline (and every deadline
	// already admitted) can be met by some schedule of the shard's residual
	// workload.
	Feasible bool `json:"feasible"`
	// Deadline echoes the deadline that was checked.
	Deadline string `json:"deadline,omitempty"`
	// CounterOffer is the minimum feasible deadline for this job against the
	// same residual workload — the exact best the shard can promise — set
	// when the requested deadline is infeasible.
	CounterOffer string `json:"counterOffer,omitempty"`
	// ResidualJobs is the number of live + queued jobs the feasibility LP
	// covered (the submitted job included).
	ResidualJobs int `json:"residualJobs"`
}

// Typed error codes of the v1 error envelope (WireError.Code).
const (
	ErrCodeInvalidArgument    = "invalid_argument"
	ErrCodeNotFound           = "not_found"
	ErrCodeDeadlineInfeasible = "deadline_infeasible"
	ErrCodeTenantOverQuota    = "tenant_over_quota"
	ErrCodeShardStalled       = "shard_stalled"
	ErrCodeFleetClosed        = "fleet_closed"
	ErrCodeWALDegraded        = "wal_degraded"
	ErrCodeReshardDisabled    = "reshard_disabled"
	ErrCodeInternal           = "internal"
)

// WireError is the v1 error body: every non-2xx answer wraps one in an
// ErrorResponse envelope, {"error":{"code","message",...}}.
type WireError struct {
	// Code is one of the ErrCode* constants: a stable, machine-matchable
	// classification of the failure.
	Code    string `json:"code"`
	Message string `json:"message"`
	// Shard names the shard the failure is about (stalled-shard routing,
	// admission rejects), when one is.
	Shard *int `json:"shard,omitempty"`
	// RetryAfter is the server's retry hint in seconds, mirrored in the
	// Retry-After HTTP header (stalled shards, closed fleets).
	RetryAfter int `json:"retryAfter,omitempty"`
	// Admission carries the exact certificate on deadline_infeasible
	// rejects, counter-offer included.
	Admission *AdmissionCertificate `json:"admission,omitempty"`
}

// ErrorResponse is the versioned envelope every error body uses.
type ErrorResponse struct {
	Error WireError `json:"error"`
}

// SubmitResponse is the body answering POST /v1/jobs.
type SubmitResponse struct {
	ID    int    `json:"id"`
	State string `json:"state"`
	// Warning is set when the job was accepted onto a degraded shard — the
	// only shard hosting its databanks has latched a scheduling error, so
	// the job will queue until the shard recovers. It carries that shard's
	// error text; healthy routings leave it empty.
	Warning string `json:"warning,omitempty"`
	// Admission is the deadline-feasibility certificate for submissions that
	// carried a deadline (nil for deadline-free jobs and -admission=off).
	Admission *AdmissionCertificate `json:"admission,omitempty"`
}

// JobStatus is the body of GET /v1/jobs/{id}. Rational fields are empty
// until known (Release until the scheduler admits the job; CompletedAt,
// Flow, WeightedFlow and Stretch until it completes).
type JobStatus struct {
	ID        int      `json:"id"`
	Name      string   `json:"name,omitempty"`
	State     string   `json:"state"`
	Weight    string   `json:"weight"`
	Size      string   `json:"size"`
	Databanks []string `json:"databanks,omitempty"`
	// Release is the submission time — the job's flow origin; queueing
	// delay before the scheduler admits the job counts against its flow.
	Release     string `json:"release,omitempty"`
	Remaining   string `json:"remaining,omitempty"`
	CompletedAt string `json:"completedAt,omitempty"`
	Flow        string `json:"flow,omitempty"`
	// WeightedFlow is Weight · Flow, the job's contribution to the service
	// objective; Stretch is Flow / Size.
	WeightedFlow string `json:"weightedFlow,omitempty"`
	Stretch      string `json:"stretch,omitempty"`
	// Deadline, Tenant, and SLAClass echo the submission's SLA fields.
	// DeadlineMet reports, once the job completes, whether CompletedAt <=
	// Deadline (nil while live or when no deadline was set).
	Deadline    string `json:"deadline,omitempty"`
	Tenant      string `json:"tenant,omitempty"`
	SLAClass    string `json:"slaClass,omitempty"`
	DeadlineMet *bool  `json:"deadlineMet,omitempty"`
}

// TenantStats is one tenant's row in GET /v1/tenants: exact per-tenant
// weighted-flow accounting merged across shards, plus the admission-control
// counters the router keeps.
type TenantStats struct {
	Tenant string `json:"tenant"`
	// Weight is the tenant's configured fair share weight ("1" when the
	// tenant is not in the -tenants config).
	Weight string `json:"weight"`
	// Submitted counts accepted submissions, Completed completed jobs, and
	// Shed submissions rejected with tenant_over_quota.
	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	Shed      int `json:"shed,omitempty"`
	// Backlog is the tenant's exact residual work across the fleet (admitted
	// sizes minus completed work).
	Backlog string `json:"backlog"`
	// MaxWeightedFlow is the exact max of w_j (C_j − r_j) over the tenant's
	// completed jobs; MeanFlow and P95WeightedFlow are float summaries (the
	// P95 is estimated from the per-tenant weighted-flow histogram exported
	// on /metrics, so the two surfaces agree).
	MaxWeightedFlow string  `json:"maxWeightedFlow,omitempty"`
	MeanFlow        float64 `json:"meanFlow,omitempty"`
	P95WeightedFlow float64 `json:"p95WeightedFlow,omitempty"`
	// ByClass counts accepted submissions per SLA class.
	ByClass map[string]int `json:"byClass,omitempty"`
}

// TenantsResponse is the body of GET /v1/tenants, sorted by tenant name.
type TenantsResponse struct {
	Tenants []TenantStats `json:"tenants"`
}

// TenantConfig is a parsed -tenants document: the fleet's tenant weight
// shares. A tenant's fair share of the fleet backlog is its weight divided
// by the total weight of currently-active tenants; submissions that would
// push a tenant past that share are shed with tenant_over_quota (premium
// traffic is exempt). Tenants absent from the config get weight 1.
type TenantConfig struct {
	// Weights maps tenant name to its exact share weight (> 0).
	Weights map[string]*big.Rat
}

// Weight returns the configured weight for tenant (default 1). A nil config
// defaults every tenant to 1.
func (tc *TenantConfig) Weight(tenant string) *big.Rat {
	if tc != nil {
		if w, ok := tc.Weights[tenant]; ok {
			return new(big.Rat).Set(w)
		}
	}
	return big.NewRat(1, 1)
}

// ParseTenantConfig decodes a tenant-weights document:
// {"tenants":[{"name":"acme","weight":"3"}, ...]}. Names must be unique and
// non-empty, weights exact positive rationals.
func ParseTenantConfig(data []byte) (*TenantConfig, error) {
	var doc struct {
		Tenants []struct {
			Name   string `json:"name"`
			Weight string `json:"weight"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("model: tenants: %w", err)
	}
	if len(doc.Tenants) == 0 {
		return nil, errors.New("model: tenants config names no tenants")
	}
	tc := &TenantConfig{Weights: make(map[string]*big.Rat, len(doc.Tenants))}
	for i, t := range doc.Tenants {
		if t.Name == "" {
			return nil, fmt.Errorf("model: tenants entry %d has no name", i)
		}
		if _, dup := tc.Weights[t.Name]; dup {
			return nil, fmt.Errorf("model: tenant %q configured twice", t.Name)
		}
		if t.Weight == "" {
			return nil, fmt.Errorf("model: tenant %q needs a weight", t.Name)
		}
		w, err := parseWireRat(t.Weight, "tenant weight")
		if err != nil {
			return nil, err
		}
		if w.Sign() <= 0 {
			return nil, fmt.Errorf("model: tenant %q needs weight > 0", t.Name)
		}
		tc.Weights[t.Name] = w
	}
	return tc, nil
}

// ShardStats is the per-shard breakdown inside StatsResponse: one entry per
// scheduling shard of a partitioned divflowd instance. Counters have the
// same meaning as their aggregate counterparts; Backlog is the shard's exact
// residual work (accepted job sizes minus completed ones), the quantity the
// router minimizes when placing a submission eligible on several shards.
// JobsAccepted counts jobs submitted to the shard by the router (births
// only), so the fleet aggregate counts every job exactly once no matter how
// often it migrates; StolenJobs counts jobs this shard stole from overloaded
// shards and Migrations jobs stolen away from it.
type ShardStats struct {
	Shard int `json:"shard"`
	// Generation is the newest topology generation the shard is (or was) a
	// member of: kept shards advance with every reshard that keeps them,
	// retired shards stay at the generation their service ended in.
	Generation    int      `json:"generation"`
	Machines      []string `json:"machines"`
	Now           string   `json:"now"`
	JobsAccepted  int      `json:"jobsAccepted"`
	JobsQueued    int      `json:"jobsQueued"`
	JobsLive      int      `json:"jobsLive"`
	JobsCompleted int      `json:"jobsCompleted"`
	Events        int      `json:"events"`
	LPSolves      int      `json:"lpSolves"`
	PlanCacheHits int      `json:"planCacheHits"`
	// Solver is this shard's own hybrid-engine path breakdown (the aggregate
	// StatsResponse.Solver is the sum over shards): a single shard burning
	// exact fallbacks — a pathological workload shape, or a warm-start chain
	// gone stale — is visible here while the fleet aggregate still looks
	// healthy.
	Solver          stats.SolverTally `json:"solver"`
	ArrivalBatches  int               `json:"arrivalBatches"`
	BatchedArrivals int               `json:"batchedArrivals"`
	LargestBatch    int               `json:"largestBatch"`
	CompactedJobs   int               `json:"compactedJobs,omitempty"`
	StolenJobs      int               `json:"stolenJobs,omitempty"`
	Migrations      int               `json:"migrations,omitempty"`
	// ReshardedIn counts jobs a live reshard migrated onto this shard and
	// ReshardedOut jobs it migrated away; Retired marks a shard dropped from
	// the active topology by a reshard — it no longer schedules, but keeps
	// serving the records and executed trace of its generation.
	ReshardedIn  int  `json:"reshardedIn,omitempty"`
	ReshardedOut int  `json:"reshardedOut,omitempty"`
	Retired      bool `json:"retired,omitempty"`
	// Freed marks a retired shard whose fully-compacted history was released:
	// only the ID-decoding tombstone remains, so counters below it are the
	// aggregates frozen at the free.
	Freed   bool   `json:"freed,omitempty"`
	Backlog string `json:"backlog"`
	Stalled bool   `json:"stalled,omitempty"`
	// Panics counts loop panics the supervisor caught on this shard and
	// Restarts how often -restart-stalled rebuilt it from in-memory state.
	Panics    int    `json:"panics,omitempty"`
	Restarts  int    `json:"restarts,omitempty"`
	LastError string `json:"lastError,omitempty"`
}

// WALStats is the durability section of StatsResponse, present when the
// server runs with a write-ahead log.
type WALStats struct {
	// Appends counts records durably appended since startup; Snapshots the
	// fleet snapshots written. Replayed is the number of WAL records replayed
	// through the normal admission paths at the last startup.
	Appends   int `json:"appends"`
	Snapshots int `json:"snapshots,omitempty"`
	Replayed  int `json:"replayed,omitempty"`
	// Error is the latched WAL failure, if any: durability is frozen at a
	// consistent prefix while the service keeps scheduling.
	Error string `json:"error,omitempty"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Policy        string `json:"policy"`
	Now           string `json:"now"`
	JobsAccepted  int    `json:"jobsAccepted"`
	JobsLive      int    `json:"jobsLive"`
	JobsCompleted int    `json:"jobsCompleted"`
	// Events counts scheduling decision points (arrival batches, job
	// completions, plan review points); LPSolves counts exact inner solves
	// and PlanCacheHits the decision points served from the cached plan,
	// so Events - LPSolves is the work the batching/caching layer saved
	// (both are zero for solver-free policies).
	Events        int `json:"events"`
	LPSolves      int `json:"lpSolves"`
	PlanCacheHits int `json:"planCacheHits"`
	// Solver breaks the LP solves down by the hybrid engine's path: how
	// many were settled by the float simplex plus an exact verification,
	// how many needed exact crossover pivots or a full exact fallback, and
	// how often a previous optimal basis warm-started a re-solve. All paths
	// are exact; the split is a performance, not a correctness, signal.
	Solver stats.SolverTally `json:"solver"`
	// ArrivalBatches counts scheduler wake-ups that admitted submitted jobs
	// and BatchedArrivals the jobs admitted by them, so BatchedArrivals >
	// ArrivalBatches means several arrivals shared one re-solve;
	// LargestBatch is the biggest single admission. Only each job's *first*
	// admission counts — work-stealing re-admissions are excluded — so,
	// like JobsAccepted, these counters see every submission exactly once
	// no matter how often the job migrates.
	ArrivalBatches  int `json:"arrivalBatches"`
	BatchedArrivals int `json:"batchedArrivals"`
	LargestBatch    int `json:"largestBatch"`
	// MaxWeightedFlow and MaxStretch aggregate the completed jobs
	// (exact rationals); MeanFlow and P95Flow are float summaries.
	MaxWeightedFlow string  `json:"maxWeightedFlow,omitempty"`
	MaxStretch      string  `json:"maxStretch,omitempty"`
	MeanFlow        float64 `json:"meanFlow,omitempty"`
	P95Flow         float64 `json:"p95Flow,omitempty"`
	// CompactedJobs counts completed jobs whose records and schedule pieces
	// were dropped by the retention policy; their flow/stretch contributions
	// remain in the aggregates above. P95Flow is estimated from the same
	// fixed-bucket flow histogram GET /metrics exports
	// (divflow_flow_time{shard}), with the same linear-interpolation
	// estimator Prometheus's histogram_quantile uses — so the two surfaces
	// cannot disagree on the same percentile.
	CompactedJobs int `json:"compactedJobs,omitempty"`
	// StolenJobs counts cross-shard work-stealing migrations received
	// (jobs an idle shard pulled from an overloaded one) and Migrations the
	// donations; fleet-wide the two are equal — every migration has exactly
	// one donor and one thief — and both are zero with -steal=false.
	StolenJobs int    `json:"stolenJobs,omitempty"`
	Migrations int    `json:"migrations,omitempty"`
	Stalled    bool   `json:"stalled,omitempty"`
	LastError  string `json:"lastError,omitempty"`
	// ShardCount is the number of *active* scheduling shards the fleet is
	// currently partitioned into; Shards breaks the aggregate counters above
	// down per shard, retired generations included. Generation is the
	// current topology epoch (0 until the first structural reshard),
	// ReshardEvents the number of structural reshards performed, and
	// ReshardedJobs the number of job migrations those reshards made.
	ShardCount    int          `json:"shardCount"`
	Generation    int          `json:"generation"`
	ReshardEvents int          `json:"reshardEvents,omitempty"`
	ReshardedJobs int          `json:"reshardedJobs,omitempty"`
	Shards        []ShardStats `json:"shards,omitempty"`
	// WAL is the durability layer's counters, nil when the server runs
	// without a write-ahead log.
	WAL *WALStats `json:"wal,omitempty"`
}

// ReshardResponse is the body answering POST /v1/platform: the outcome of a
// live re-sharding request. A no-op reshard (the new platform induces the
// partition already running) keeps every shard, migrates nothing, and does
// not advance the generation.
type ReshardResponse struct {
	// Generation is the topology epoch after the reshard.
	Generation int `json:"generation"`
	// ShardCount is the number of active shards after the reshard.
	ShardCount int `json:"shardCount"`
	// Noop reports that the new platform left the partition unchanged.
	Noop bool `json:"noop,omitempty"`
	// MigratedJobs counts the queued and live jobs moved (with their exact
	// remaining fractions) off retired shards onto the new topology.
	MigratedJobs int `json:"migratedJobs"`
	// SpawnedShards and RetiredShards list the creation indices of shards
	// the reshard started and drained; KeptShards the ones carried over.
	SpawnedShards []int `json:"spawnedShards,omitempty"`
	RetiredShards []int `json:"retiredShards,omitempty"`
	KeptShards    []int `json:"keptShards,omitempty"`
	// Warning is set when some migrated job could only be placed on a shard
	// whose loop has latched a scheduling error (the only host of its
	// databanks): the repartition succeeded, but that job will queue until
	// the shard recovers — the same degraded-routing signal SubmitResponse
	// carries.
	Warning string `json:"warning,omitempty"`
}

// ScheduleResponse is the body of GET /v1/schedule: the executed Gantt so
// far (pieces reference job IDs). Pieces of completed work never change;
// the piece currently in execution extends as time advances.
type ScheduleResponse struct {
	Now      string          `json:"now"`
	Makespan string          `json:"makespan"`
	Schedule json.RawMessage `json:"schedule"`
}

// Platform is a parsed platform document: the machine fleet a divflowd
// instance owns, plus optional service-level scheduling configuration.
type Platform struct {
	Machines []Machine
	// Shards, when positive, fixes the number of scheduling shards the fleet
	// is split into (round-robin), overriding the default partition by
	// databank-connectivity components. Useful for uniform fleets where every
	// machine hosts everything and the connectivity partition degenerates to
	// a single shard.
	Shards int
}

// ParsePlatform decodes a platform document's machine fleet — encoded as
// {"machines":[{"name","inverseSpeed","databanks"}]}. Every machine needs a
// strictly positive inverseSpeed.
func ParsePlatform(data []byte) ([]Machine, error) {
	p, err := ParsePlatformConfig(data)
	if err != nil {
		return nil, err
	}
	return p.Machines, nil
}

// ParsePlatformConfig decodes a full platform document, including the
// optional {"shards": N} scheduling partition override.
func ParsePlatformConfig(data []byte) (*Platform, error) {
	var doc struct {
		Machines []jsonMachine `json:"machines"`
		Shards   int           `json:"shards"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("model: platform: %w", err)
	}
	if len(doc.Machines) == 0 {
		return nil, errors.New("model: platform has no machines")
	}
	if doc.Shards < 0 {
		return nil, fmt.Errorf("model: platform shards = %d, want >= 0", doc.Shards)
	}
	machines := make([]Machine, len(doc.Machines))
	for i, dm := range doc.Machines {
		machines[i] = Machine{Name: dm.Name, Databanks: dm.Databanks}
		if dm.InverseSpeed == "" {
			return nil, fmt.Errorf("model: platform machine %d (%s) needs inverseSpeed", i, dm.Name)
		}
		s, err := parseRat(dm.InverseSpeed, "inverseSpeed")
		if err != nil {
			return nil, err
		}
		if s.Sign() <= 0 {
			return nil, fmt.Errorf("model: platform machine %d (%s) needs inverseSpeed > 0", i, dm.Name)
		}
		machines[i].InverseSpeed = s
	}
	return &Platform{Machines: machines, Shards: doc.Shards}, nil
}

// HealthResponse is the body of GET /healthz: "ok" with HTTP 200 while every
// active shard is healthy, "stalled" with HTTP 503 otherwise, naming the
// active shards whose loops latched a scheduling error. Retired shards are
// history, not health, and never appear here. A latched write-ahead-log
// failure degrades the status ("degraded", still HTTP 200 — the service
// keeps scheduling, only durability is frozen) and surfaces the error.
type HealthResponse struct {
	Status        string   `json:"status"`
	StalledShards []int    `json:"stalledShards,omitempty"`
	Errors        []string `json:"errors,omitempty"`
	WALError      string   `json:"walError,omitempty"`
}

// EventsResponse is the body of GET /v1/events: one page of the structured
// event journal. Next is the cursor to pass back as ?since= to see only
// newer events; Dropped counts events between the requested cursor and the
// oldest retained one that the bounded ring had already overwritten.
type EventsResponse struct {
	Events  []obs.Event `json:"events"`
	Next    int64       `json:"next"`
	Dropped int64       `json:"dropped,omitempty"`
}
