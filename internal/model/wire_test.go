package model

import (
	"strings"
	"testing"
)

func TestSubmitRequestJob(t *testing.T) {
	req := SubmitRequest{Name: "blast", Size: "40", Databanks: []string{"swissprot"}}
	job, err := req.Job()
	if err != nil {
		t.Fatal(err)
	}
	if job.Weight.Cmp(r(1, 1)) != 0 {
		t.Errorf("default weight = %v, want 1", job.Weight)
	}
	if job.Size.Cmp(r(40, 1)) != 0 || job.Name != "blast" {
		t.Errorf("job = %+v", job)
	}
	req.Weight = "3/2"
	job, err = req.Job()
	if err != nil {
		t.Fatal(err)
	}
	if job.Weight.Cmp(r(3, 2)) != 0 {
		t.Errorf("weight = %v, want 3/2", job.Weight)
	}

	bad := []SubmitRequest{
		{},                              // no size
		{Size: "0"},                     // zero size
		{Size: "-2"},                    // negative size
		{Size: "x"},                     // malformed size
		{Size: "1", Weight: "0"},        // zero weight
		{Size: "1", Weight: "nonsense"}, // malformed weight
		{Size: "1e100000"},              // rational magnitude bomb
		{Size: "1", Weight: "1/1e999"},  // denominator bomb
	}
	for _, req := range bad {
		if _, err := req.Job(); err == nil {
			t.Errorf("Job(%+v) should error", req)
		}
	}
}

func TestParsePlatform(t *testing.T) {
	doc := `{"machines":[
	  {"name":"cluster-a","inverseSpeed":"1/2","databanks":["swissprot","pdb"]},
	  {"name":"cluster-b","inverseSpeed":"1"}
	]}`
	machines, err := ParsePlatform([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(machines) != 2 {
		t.Fatalf("got %d machines", len(machines))
	}
	if machines[0].InverseSpeed.Cmp(r(1, 2)) != 0 || !machines[0].Hosts([]string{"pdb"}) {
		t.Errorf("machine 0 = %+v", machines[0])
	}

	bad := map[string]string{
		"no machines":   `{"machines":[]}`,
		"no speed":      `{"machines":[{"name":"m"}]}`,
		"zero speed":    `{"machines":[{"name":"m","inverseSpeed":"0"}]}`,
		"bad rational":  `{"machines":[{"name":"m","inverseSpeed":"fast"}]}`,
		"malformed doc": `{`,
	}
	for what, doc := range bad {
		if _, err := ParsePlatform([]byte(doc)); err == nil {
			t.Errorf("%s: expected error", what)
		}
	}
}

func TestSubmitRequestRoundTripsThroughJSON(t *testing.T) {
	// The wire format keeps rationals as strings; a weight like 10/3 must
	// survive exactly.
	req := SubmitRequest{Size: "100/7", Weight: "10/3"}
	job, err := req.Job()
	if err != nil {
		t.Fatal(err)
	}
	if job.Size.RatString() != "100/7" || job.Weight.RatString() != "10/3" {
		t.Errorf("lost exactness: size %s weight %s", job.Size.RatString(), job.Weight.RatString())
	}
	if !strings.Contains(job.Size.RatString(), "/") {
		t.Error("expected a non-integer rational")
	}
}
