package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event types emitted by the divflowd scheduling layer. The journal itself
// is type-agnostic; these constants are the shared vocabulary between the
// emitters in internal/server and consumers of GET /v1/events.
const (
	EventSubmit       = "submit"             // a job was accepted onto a shard
	EventAdmit        = "admit"              // the shard loop admitted a queued job
	EventSolve        = "solve"              // an inner exact residual solve settled
	EventPlanCacheHit = "plan-cache-hit"     // a decision point was served from the cached plan
	EventSteal        = "steal"              // an idle shard migrated work from a donor
	EventMigrate      = "migrate"            // one job moved between shards (steal or reshard)
	EventReshard      = "reshard-generation" // a structural reshard advanced the topology
	EventCompact      = "compact"            // retention dropped executed history
	EventReject       = "reject"             // a submission was refused, or shutdown drained a queued job
	EventShardStall   = "shard-stall"        // a shard latched a scheduling error
	EventShardPanic   = "shard-panic"        // a shard loop panicked; the supervisor latched it
	EventShardRestart = "shard-restart"      // the supervisor rebuilt a poisoned shard in place
	EventWALError     = "wal-error"          // the write-ahead log latched a failure; durability frozen
	EventSnapshot     = "snapshot"           // a fleet snapshot was written (WAL truncated behind it)
	EventRestore      = "restore"            // startup restored state from snapshot + WAL replay
)

// Event is one structured scheduling event. Every event carries both clocks:
// Wall is the real time the event was journaled (Unix nanoseconds) and VTime
// the exact virtual/engine time it describes (big.Rat notation), because the
// service runs equally on a wall clock in production and a virtual clock in
// tests and simulation-speed load runs.
type Event struct {
	// Seq is the journal-assigned strictly increasing sequence number; the
	// cursor for GET /v1/events?since=.
	Seq  int64  `json:"seq"`
	Wall int64  `json:"wall"`
	Type string `json:"type"`
	// Shard is the creation index of the shard the event happened on, -1 for
	// server-level events; Gen the topology generation it happened under.
	Shard int `json:"shard"`
	Gen   int `json:"gen"`
	// GID is the wire-visible global job ID for job-scoped events, -1
	// otherwise.
	GID    int    `json:"gid"`
	VTime  string `json:"vtime,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Journal is a bounded ring buffer of events plus an optional NDJSON sink.
// Appends take one short mutex (no allocation beyond the sink's encoder), so
// the scheduling hot paths can journal without noticeable cost; once the
// ring is full the oldest events are overwritten and readers paging through
// GET /v1/events see the dropped count.
type Journal struct {
	//divflow:locks name=journal
	mu      sync.Mutex
	buf     []Event
	next    int64 // seq of the next event appended
	sink    io.Writer
	sinkErr error
}

// DefJournalCapacity is the default ring size: enough to replay minutes of
// busy scheduling without unbounded memory.
const DefJournalCapacity = 8192

// NewJournal returns a journal holding the last capacity events (0 selects
// DefJournalCapacity). sink, when non-nil, additionally receives every event
// as one JSON line; a sink write error is latched and stops further sink
// writes, never the journal.
func NewJournal(capacity int, sink io.Writer) *Journal {
	if capacity <= 0 {
		capacity = DefJournalCapacity
	}
	return &Journal{buf: make([]Event, 0, capacity), sink: sink}
}

// Append journals one event, stamping its sequence number and wall time.
func (j *Journal) Append(e Event) {
	e.Wall = time.Now().UnixNano()
	j.mu.Lock()
	e.Seq = j.next
	j.next++
	if len(j.buf) < cap(j.buf) {
		j.buf = append(j.buf, e)
	} else {
		j.buf[int(e.Seq)%cap(j.buf)] = e
	}
	if j.sink != nil && j.sinkErr == nil {
		data, err := json.Marshal(&e)
		if err == nil {
			data = append(data, '\n')
			_, err = j.sink.Write(data)
		}
		j.sinkErr = err
	}
	j.mu.Unlock()
}

// SinkErr reports the latched sink write error, if any.
func (j *Journal) SinkErr() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sinkErr
}

// Filter selects events out of Since.
type Filter struct {
	// Type, when non-empty, keeps only events of that type.
	Type string
	// Shard, when >= 0, keeps only events of that shard.
	Shard int
	// Limit bounds the returned slice (0 means no bound beyond the ring).
	Limit int
}

// Since returns the retained events with Seq >= since that pass the filter,
// in sequence order, together with the cursor to resume from (pass it back
// as since to see only newer events) and how many matching-or-not events
// between since and the oldest retained one were already overwritten.
func (j *Journal) Since(since int64, f Filter) (events []Event, next int64, dropped int64) {
	if since < 0 {
		since = 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	oldest := j.next - int64(len(j.buf))
	if since < oldest {
		dropped = oldest - since
		since = oldest
	}
	for seq := since; seq < j.next; seq++ {
		e := j.buf[int(seq)%cap(j.buf)]
		if f.Type != "" && e.Type != f.Type {
			continue
		}
		if f.Shard >= 0 && e.Shard != f.Shard {
			continue
		}
		events = append(events, e)
		if f.Limit > 0 && len(events) == f.Limit {
			return events, seq + 1, dropped
		}
	}
	return events, j.next, dropped
}

// Len reports how many events are currently retained.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.buf)
}

// NextSeq reports the sequence number the next appended event will get.
func (j *Journal) NextSeq() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}
