package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestJournalAppendSince(t *testing.T) {
	j := NewJournal(16, nil)
	j.Append(Event{Type: EventSubmit, Shard: 0, GID: 7})
	j.Append(Event{Type: EventAdmit, Shard: 0, GID: 7})
	j.Append(Event{Type: EventSubmit, Shard: 1, GID: 8})

	all, next, dropped := j.Since(0, Filter{Shard: -1})
	if len(all) != 3 || next != 3 || dropped != 0 {
		t.Fatalf("Since(0) = %d events, next %d, dropped %d", len(all), next, dropped)
	}
	for i, e := range all {
		if e.Seq != int64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.Wall == 0 {
			t.Fatalf("event %d missing wall stamp", i)
		}
	}
	// Resuming from the cursor sees only newer events.
	j.Append(Event{Type: EventSteal, Shard: 1, GID: -1})
	newer, _, _ := j.Since(next, Filter{Shard: -1})
	if len(newer) != 1 || newer[0].Type != EventSteal {
		t.Fatalf("resume saw %+v", newer)
	}
	// Filters.
	subs, _, _ := j.Since(0, Filter{Type: EventSubmit, Shard: -1})
	if len(subs) != 2 {
		t.Fatalf("type filter saw %d, want 2", len(subs))
	}
	sh1, _, _ := j.Since(0, Filter{Shard: 1})
	if len(sh1) != 2 {
		t.Fatalf("shard filter saw %d, want 2", len(sh1))
	}
	limited, lnext, _ := j.Since(0, Filter{Shard: -1, Limit: 2})
	if len(limited) != 2 || lnext != 2 {
		t.Fatalf("limit saw %d events, next %d", len(limited), lnext)
	}
}

func TestJournalRingOverwrite(t *testing.T) {
	j := NewJournal(4, nil)
	for i := 0; i < 10; i++ {
		j.Append(Event{Type: EventSubmit, GID: i})
	}
	events, next, dropped := j.Since(0, Filter{Shard: -1})
	if len(events) != 4 || next != 10 || dropped != 6 {
		t.Fatalf("ring: %d events, next %d, dropped %d", len(events), next, dropped)
	}
	for i, e := range events {
		if e.GID != 6+i || e.Seq != int64(6+i) {
			t.Fatalf("ring kept %+v at %d", e, i)
		}
	}
}

func TestJournalNDJSONSink(t *testing.T) {
	var sb strings.Builder
	j := NewJournal(4, &sb)
	j.Append(Event{Type: EventMigrate, Shard: 2, Gen: 1, GID: 9, VTime: "3/2"})
	j.Append(Event{Type: EventCompact, Shard: 2, Gen: 1, GID: -1})
	if err := j.SinkErr(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var lines []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 2 || lines[0].Type != EventMigrate || lines[0].VTime != "3/2" || lines[1].Type != EventCompact {
		t.Fatalf("sink lines = %+v", lines)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk gone") }

func TestJournalSinkErrorLatches(t *testing.T) {
	j := NewJournal(4, failWriter{})
	j.Append(Event{Type: EventSubmit})
	j.Append(Event{Type: EventSubmit})
	if j.SinkErr() == nil {
		t.Fatal("sink error not latched")
	}
	// The journal itself keeps working.
	if events, _, _ := j.Since(0, Filter{Shard: -1}); len(events) != 2 {
		t.Fatalf("journal lost events after sink failure: %d", len(events))
	}
}

func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(128, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j.Append(Event{Type: EventSubmit, Shard: w, GID: i})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			events, _, _ := j.Since(0, Filter{Shard: -1})
			last := int64(-1)
			for _, e := range events {
				if e.Seq <= last {
					t.Errorf("non-increasing seq: %d after %d", e.Seq, last)
					return
				}
				last = e.Seq
			}
		}
	}()
	wg.Wait()
	<-done
	if j.NextSeq() != 1600 {
		t.Fatalf("next seq = %d, want 1600", j.NextSeq())
	}
}
