// Package obs is divflowd's zero-dependency telemetry layer: a metrics
// registry (counters, gauges, fixed-bucket histograms, all with label
// vectors) rendered in the Prometheus text exposition format, and a bounded
// structured journal of typed scheduling events (journal.go). It exists so
// the service's behavior under load — submit latency, solver-path mix,
// steal/reshard activity — is continuously measurable instead of visible
// only through point-in-time stats snapshots; the ROADMAP's load harness is
// expected to report its percentiles from these histograms.
//
// Everything is stdlib-only. Instruments are safe for concurrent use:
// counter/gauge/histogram updates are single atomic operations (histograms
// add one atomic per observation plus a CAS loop for the sum), so hot
// scheduling paths pay nanoseconds, not lock convoys. Rendering walks the
// registry under a read lock and never blocks writers for long.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"divflow/internal/stats"
)

// ExpBuckets returns n exponentially growing histogram bucket upper bounds:
// start, start·factor, start·factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefLatencyBuckets spans wall-clock latencies from 1µs to ~67s (factor 4):
// wide enough for a cache-hit decision and a from-scratch exact LP solve to
// land in distinct buckets.
var DefLatencyBuckets = ExpBuckets(1e-6, 4, 14)

// DefFlowBuckets spans virtual-time flows (factor 2 from 1/16): the
// scheduling objective's scale in every committed workload, with enough
// resolution for quantile interpolation to stay meaningful.
var DefFlowBuckets = ExpBuckets(1.0/16, 2, 24)

// metricKind discriminates the families a registry can hold.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric family: fixed label names, children keyed by
// their label values.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]any // key: joined label values
	order    []string       // insertion-ordered keys, sorted at render
}

// Registry holds metric families and renders them as Prometheus text.
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
	collect  []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// OnCollect registers a hook invoked at the start of every render: the
// server uses it to refresh scrape-time families (per-shard counters and
// gauges re-read from the authoritative shard counters, which keeps them
// exactly consistent with GET /v1/stats).
func (r *Registry) OnCollect(f func()) {
	r.mu.Lock()
	r.collect = append(r.collect, f)
	r.mu.Unlock()
}

func (r *Registry) register(name, help string, kind metricKind, buckets []float64, labels ...string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, buckets: buckets, children: map[string]any{}}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Counter registers (or returns) a counter family. Counters are monotone:
// expose only values that never decrease.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, nil, labels...)}
}

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, nil, labels...)}
}

// Histogram registers (or returns) a histogram family with the given bucket
// upper bounds (strictly increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: metric %q buckets not strictly increasing", name))
		}
	}
	return &HistogramVec{r.register(name, help, kindHistogram, buckets, labels...)}
}

// labelKey joins label values into a child key. Values are length-prefixed
// so no choice of values can collide across positions.
func labelKey(values []string) string {
	var b strings.Builder
	for _, v := range values {
		b.WriteString(strconv.Itoa(len(v)))
		b.WriteByte(':')
		b.WriteString(v)
	}
	return b.String()
}

func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := make()
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// Counter is one monotone sample. It supports both inline increments and
// scrape-time refresh (Set from an authoritative monotone source).
type Counter struct {
	labels []string
	v      atomic.Uint64
}

// Gauge is one instantaneous sample.
type Gauge struct {
	labels []string
	bits   atomic.Uint64 // float64 bits
}

// With returns the counter child for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return &Counter{labels: values} }).(*Counter)
}

// With returns the gauge child for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return &Gauge{labels: values} }).(*Gauge)
}

// With returns the histogram child for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() any { return NewHistogram(v.f.buckets, values...) }).(*Histogram)
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Set overwrites the counter with a value read from an authoritative
// monotone source (scrape-time collection). The caller owns monotonicity.
func (c *Counter) Set(v uint64) { c.v.Store(v) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is one fixed-bucket histogram sample. It can live inside a
// registry (HistogramVec.With) or standalone (NewHistogram): the shard flow
// histogram backs the /v1/stats P95 estimate even when the exporter is
// disabled, so stats and metrics can never disagree on the same quantile.
type Histogram struct {
	labels  []string
	buckets []float64 // upper bounds; counts has one extra slot for +Inf
	counts  []atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a standalone histogram with the given bucket upper
// bounds (strictly increasing; +Inf implicit).
func NewHistogram(buckets []float64, labels ...string) *Histogram {
	return &Histogram{
		labels:  labels,
		buckets: buckets,
		counts:  make([]atomic.Uint64, len(buckets)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bucket whose upper bound admits v.
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram: per-bucket
// (non-cumulative) counts, with the final slot counting observations above
// every finite bound.
type HistogramSnapshot struct {
	Buckets []float64 // upper bounds, finite
	Counts  []uint64  // len(Buckets)+1; last slot is the +Inf bucket
	Count   uint64
	Sum     float64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Buckets: h.buckets,
		Counts:  make([]uint64, len(h.counts)),
		Sum:     math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Restore replaces the histogram's contents with a snapshot's — the
// durability layer reloading a shard's flow histogram from a DIVSNAP1
// document before WAL replay re-observes the post-snapshot completions. The
// snapshot must share the receiver's bucket layout.
func (h *Histogram) Restore(s HistogramSnapshot) error {
	if len(s.Counts) != len(h.counts) {
		return fmt.Errorf("obs: restore: snapshot has %d count slots, histogram has %d", len(s.Counts), len(h.counts))
	}
	for i := range h.counts {
		h.counts[i].Store(s.Counts[i])
	}
	h.sumBits.Store(math.Float64bits(s.Sum))
	return nil
}

// Merge folds o's counts into s (same bucket layout required): the server
// merges per-shard flow histograms into the fleet-wide quantile estimate.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	if len(s.Counts) == 0 {
		s.Buckets, s.Counts = o.Buckets, append([]uint64(nil), o.Counts...)
		s.Count, s.Sum = o.Count, o.Sum
		return
	}
	if len(o.Counts) != len(s.Counts) {
		panic("obs: merging histograms with different bucket layouts")
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile estimates the p-th percentile (0–100) from the bucket counts,
// with linear interpolation inside the bucket — the same estimator
// Prometheus's histogram_quantile applies to the exported buckets, so a
// dashboard and GET /v1/stats answer the same number for the same quantile.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	return stats.HistogramQuantile(s.Buckets, s.Counts, p)
}

// formatFloat renders a sample value the way Prometheus text format wants.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {k="v",...} (empty string for no labels). extra, when
// non-empty, appends one more pair (the histogram le label).
func writeLabels(b *strings.Builder, names, values []string, extraK, extraV string) {
	if len(names) == 0 && extraK == "" {
		return
	}
	b.WriteByte('{')
	for i := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(names[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(extraV)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WriteText renders every family in the Prometheus text exposition format,
// families in registration order, children sorted by label values.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	collect := append([]func(){}, r.collect...)
	families := append([]*family{}, r.families...)
	r.mu.RUnlock()
	for _, f := range collect {
		f()
	}
	var b strings.Builder
	for _, f := range families {
		f.mu.Lock()
		keys := append([]string{}, f.order...)
		children := make([]any, len(keys))
		sort.Strings(keys)
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		if len(children) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range children {
			switch m := c.(type) {
			case *Counter:
				b.WriteString(f.name)
				writeLabels(&b, f.labels, m.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(m.Value(), 10))
				b.WriteByte('\n')
			case *Gauge:
				b.WriteString(f.name)
				writeLabels(&b, f.labels, m.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(formatFloat(m.Value()))
				b.WriteByte('\n')
			case *Histogram:
				snap := m.Snapshot()
				cum := uint64(0)
				for i, ub := range snap.Buckets {
					cum += snap.Counts[i]
					b.WriteString(f.name)
					b.WriteString("_bucket")
					writeLabels(&b, f.labels, m.labels, "le", formatFloat(ub))
					b.WriteByte(' ')
					b.WriteString(strconv.FormatUint(cum, 10))
					b.WriteByte('\n')
				}
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(&b, f.labels, m.labels, "le", "+Inf")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(snap.Count, 10))
				b.WriteByte('\n')
				b.WriteString(f.name)
				b.WriteString("_sum")
				writeLabels(&b, f.labels, m.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(formatFloat(snap.Sum))
				b.WriteByte('\n')
				b.WriteString(f.name)
				b.WriteString("_count")
				writeLabels(&b, f.labels, m.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(snap.Count, 10))
				b.WriteByte('\n')
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry at GET <path> in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
