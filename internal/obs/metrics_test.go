package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("divflow_submissions_total", "Jobs accepted.", "shard")
	c.With("0").Add(3)
	c.With("1").Inc()
	g := r.Gauge("divflow_backlog_work", "Residual work.", "shard")
	g.With("0").Set(2.5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP divflow_submissions_total Jobs accepted.",
		"# TYPE divflow_submissions_total counter",
		`divflow_submissions_total{shard="0"} 3`,
		`divflow_submissions_total{shard="1"} 1`,
		"# TYPE divflow_backlog_work gauge",
		`divflow_backlog_work{shard="0"} 2.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestCounterSetIsScrapeRefresh(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "x")
	refreshed := 0
	r.OnCollect(func() {
		refreshed++
		c.With().Set(uint64(10 * refreshed))
	})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "x_total 10") {
		t.Fatalf("collect hook not applied:\n%s", b.String())
	}
	b.Reset()
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "x_total 20") {
		t.Fatalf("second collect not applied:\n%s", b.String())
	}
}

func TestHistogramRenderAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10}, "shard")
	child := h.With("2")
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		child.Observe(v)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{shard="2",le="0.1"} 1`,
		`lat_seconds_bucket{shard="2",le="1"} 3`,
		`lat_seconds_bucket{shard="2",le="10"} 4`,
		`lat_seconds_bucket{shard="2",le="+Inf"} 5`,
		`lat_seconds_sum{shard="2"} 56.05`,
		`lat_seconds_count{shard="2"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	snap := child.Snapshot()
	if snap.Count != 5 || snap.Sum != 56.05 {
		t.Fatalf("snapshot count/sum = %d/%v, want 5/56.05", snap.Count, snap.Sum)
	}
	// Exactly-on-boundary observations land in the bucket whose upper bound
	// they equal (le semantics).
	hb := NewHistogram([]float64{1, 2})
	hb.Observe(1)
	if s := hb.Snapshot(); s.Counts[0] != 1 {
		t.Fatalf("boundary observation landed in bucket %v", s.Counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// 100 observations uniform over (0,4]: quartiles land mid-bucket.
	for i := 0; i < 25; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
		h.Observe(2.5)
		h.Observe(3.5)
	}
	s := h.Snapshot()
	if q := s.Quantile(50); q != 2 {
		t.Fatalf("P50 = %v, want 2 (bucket-edge interpolation)", q)
	}
	// Interpolation inside a bucket: half the mass sits in (2,4], so P75 is
	// halfway through it — the same answer Prometheus's histogram_quantile
	// gives for these buckets.
	if q := s.Quantile(75); q != 3 {
		t.Fatalf("P75 = %v, want 3", q)
	}
	if q := s.Quantile(62.5); q != 2.5 {
		t.Fatalf("P62.5 = %v, want 2.5", q)
	}
	if q := s.Quantile(100); q != 4 {
		t.Fatalf("P100 = %v, want 4", q)
	}
	// Overflow-only mass answers the top finite bound.
	ho := NewHistogram([]float64{1})
	ho.Observe(100)
	if q := ho.Snapshot().Quantile(95); q != 1 {
		t.Fatalf("overflow quantile = %v, want 1", q)
	}
	// Empty histogram: NaN.
	he := NewHistogram([]float64{1})
	if q := he.Snapshot().Quantile(95); !math.IsNaN(q) {
		t.Fatalf("empty quantile = %v, want NaN", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2}).Snapshot()
	h1 := NewHistogram([]float64{1, 2})
	h1.Observe(0.5)
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(1.5)
	h2.Observe(3)
	a.Merge(h1.Snapshot())
	a.Merge(h2.Snapshot())
	if a.Count != 3 || a.Counts[0] != 1 || a.Counts[1] != 1 || a.Counts[2] != 1 {
		t.Fatalf("merged = %+v", a)
	}
	if a.Sum != 5 {
		t.Fatalf("merged sum = %v, want 5", a.Sum)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c", "shard")
	h := r.Histogram("h_seconds", "h", DefLatencyBuckets, "shard")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.With("0").Inc()
				h.With("0").Observe(0.001)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WriteText(&b); err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()
	<-done
	if got := c.With("0").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := h.With("0").Snapshot().Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "g", "name").With(`a"b\c`).Set(1)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `g{name="a\"b\\c"} 1`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}
