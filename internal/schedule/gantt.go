package schedule

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Gantt renders an ASCII Gantt chart of the schedule, one row per machine,
// `width` character cells spanning [0, makespan]. Each cell shows the job
// occupying the majority of that cell's time slice on that machine ('0'-'9'
// then 'a'-'z' by job index, '.' for idle, '#' for jobs beyond index 35).
// Useful for eyeballing solver output in examples and the CLI.
func (s *Schedule) Gantt(width int) string {
	if width <= 0 {
		width = 60
	}
	ms := s.Makespan()
	if ms.Sign() == 0 || len(s.Pieces) == 0 {
		return "(empty schedule)\n"
	}
	maxMachine := 0
	for i := range s.Pieces {
		if s.Pieces[i].Machine > maxMachine {
			maxMachine = s.Pieces[i].Machine
		}
	}
	msF, _ := ms.Float64()
	cell := msF / float64(width)

	// For each machine, collect pieces sorted by start.
	byMachine := make([][]*Piece, maxMachine+1)
	for i := range s.Pieces {
		p := &s.Pieces[i]
		byMachine[p.Machine] = append(byMachine[p.Machine], p)
	}
	var b strings.Builder
	for m := 0; m <= maxMachine; m++ {
		pieces := byMachine[m]
		sort.Slice(pieces, func(a, c int) bool { return pieces[a].Start.Cmp(pieces[c].Start) < 0 })
		row := make([]byte, width)
		for k := range row {
			row[k] = '.'
		}
		for k := 0; k < width; k++ {
			lo := float64(k) * cell
			hi := lo + cell
			// Find the piece covering the majority of [lo, hi).
			bestJob, bestCover := -1, 0.0
			for _, p := range pieces {
				ps, _ := p.Start.Float64()
				pe, _ := p.End.Float64()
				cover := minF(pe, hi) - maxF(ps, lo)
				if cover > bestCover {
					bestCover = cover
					bestJob = p.Job
				}
			}
			if bestJob >= 0 && bestCover > cell/2 {
				row[k] = jobGlyph(bestJob)
			}
		}
		fmt.Fprintf(&b, "M%-2d |%s|\n", m, row)
	}
	fmt.Fprintf(&b, "    0%sT=%s\n", strings.Repeat(" ", width-len(ms.RatString())-1), ms.RatString())
	return b.String()
}

func jobGlyph(j int) byte {
	switch {
	case j < 10:
		return byte('0' + j)
	case j < 36:
		return byte('a' + j - 10)
	default:
		return '#'
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// TotalBusyTime returns the sum of all piece durations (machine-seconds of
// useful work), a utilization building block.
func (s *Schedule) TotalBusyTime() *big.Rat {
	total := new(big.Rat)
	for i := range s.Pieces {
		total.Add(total, s.Pieces[i].Duration())
	}
	return total
}

// Utilization returns TotalBusyTime / (machines × makespan) as a rational
// in [0, 1]; zero for an empty schedule.
func (s *Schedule) Utilization(machines int) *big.Rat {
	ms := s.Makespan()
	if ms.Sign() == 0 || machines <= 0 {
		return new(big.Rat)
	}
	denom := new(big.Rat).Mul(ms, big.NewRat(int64(machines), 1))
	return new(big.Rat).Quo(s.TotalBusyTime(), denom)
}
