package schedule

import (
	"strings"
	"testing"
)

func TestGanttRendering(t *testing.T) {
	var s Schedule
	s.Add(0, 0, r(0, 1), r(5, 1), r(1, 1))
	s.Add(1, 1, r(5, 1), r(10, 1), r(1, 1))
	out := s.Gantt(10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Machine 0 busy with job 0 in the first half, idle after.
	if !strings.Contains(lines[0], "00000.....") {
		t.Errorf("row 0 = %q", lines[0])
	}
	if !strings.Contains(lines[1], ".....11111") {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], "T=10") {
		t.Errorf("axis = %q", lines[2])
	}
}

func TestGanttEmpty(t *testing.T) {
	var s Schedule
	if out := s.Gantt(20); !strings.Contains(out, "empty") {
		t.Errorf("empty gantt = %q", out)
	}
}

func TestGanttDefaultWidth(t *testing.T) {
	var s Schedule
	s.Add(0, 0, r(0, 1), r(1, 1), r(1, 1))
	out := s.Gantt(0)
	if len(out) == 0 || !strings.Contains(out, "M0") {
		t.Errorf("default width gantt = %q", out)
	}
}

func TestJobGlyphs(t *testing.T) {
	if jobGlyph(3) != '3' || jobGlyph(10) != 'a' || jobGlyph(35) != 'z' || jobGlyph(36) != '#' {
		t.Error("glyph mapping broken")
	}
}

func TestBusyTimeAndUtilization(t *testing.T) {
	var s Schedule
	s.Add(0, 0, r(0, 1), r(4, 1), r(1, 1))
	s.Add(1, 1, r(0, 1), r(2, 1), r(1, 1))
	if got := s.TotalBusyTime(); got.Cmp(r(6, 1)) != 0 {
		t.Errorf("busy = %v, want 6", got)
	}
	// 6 machine-seconds over 2 machines x 4 seconds = 3/4.
	if got := s.Utilization(2); got.Cmp(r(3, 4)) != 0 {
		t.Errorf("utilization = %v, want 3/4", got)
	}
	var empty Schedule
	if got := empty.Utilization(2); got.Sign() != 0 {
		t.Errorf("empty utilization = %v", got)
	}
}
