package schedule

import (
	"encoding/json"
	"fmt"
	"math/big"
)

// The JSON encoding of a schedule keeps all times exact, mirroring the
// instance encoding of internal/model:
//
//	{"pieces":[{"machine":0,"job":1,"start":"3/2","end":"5/2","fraction":"1/4"}]}

type jsonPiece struct {
	Machine  int    `json:"machine"`
	Job      int    `json:"job"`
	Start    string `json:"start"`
	End      string `json:"end"`
	Fraction string `json:"fraction"`
}

type jsonSchedule struct {
	Pieces []jsonPiece `json:"pieces"`
}

// MarshalJSON encodes the schedule with exact rationals.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	doc := jsonSchedule{Pieces: make([]jsonPiece, len(s.Pieces))}
	for i := range s.Pieces {
		p := &s.Pieces[i]
		doc.Pieces[i] = jsonPiece{
			Machine:  p.Machine,
			Job:      p.Job,
			Start:    p.Start.RatString(),
			End:      p.End.RatString(),
			Fraction: p.Fraction.RatString(),
		}
	}
	return json.Marshal(doc)
}

// UnmarshalJSON decodes a schedule; it rejects malformed rationals but does
// not validate scheduling invariants (use Validate with an instance).
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var doc jsonSchedule
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	parse := func(v, what string, i int) (*big.Rat, error) {
		r, ok := new(big.Rat).SetString(v)
		if !ok {
			return nil, fmt.Errorf("schedule: piece %d: cannot parse %s %q", i, what, v)
		}
		return r, nil
	}
	out := Schedule{Pieces: make([]Piece, len(doc.Pieces))}
	for i, jp := range doc.Pieces {
		start, err := parse(jp.Start, "start", i)
		if err != nil {
			return err
		}
		end, err := parse(jp.End, "end", i)
		if err != nil {
			return err
		}
		frac, err := parse(jp.Fraction, "fraction", i)
		if err != nil {
			return err
		}
		out.Pieces[i] = Piece{Machine: jp.Machine, Job: jp.Job, Start: start, End: end, Fraction: frac}
	}
	*s = out
	return nil
}
