package schedule

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	var s Schedule
	s.Add(0, 1, r(3, 2), r(5, 2), r(1, 4))
	s.Add(1, 0, r(0, 1), r(1, 1), r(1, 1))
	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"3/2"`) {
		t.Errorf("expected exact rational encoding, got %s", data)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Pieces) != 2 {
		t.Fatalf("pieces = %d", len(back.Pieces))
	}
	for i := range s.Pieces {
		a, b := &s.Pieces[i], &back.Pieces[i]
		if a.Machine != b.Machine || a.Job != b.Job ||
			a.Start.Cmp(b.Start) != 0 || a.End.Cmp(b.End) != 0 || a.Fraction.Cmp(b.Fraction) != 0 {
			t.Errorf("piece %d changed: %+v -> %+v", i, a, b)
		}
	}
}

func TestScheduleJSONBadInput(t *testing.T) {
	var s Schedule
	if err := json.Unmarshal([]byte(`{"pieces":[{"start":"x"}]}`), &s); err == nil {
		t.Error("bad rational must error")
	}
	if err := json.Unmarshal([]byte(`{`), &s); err == nil {
		t.Error("bad JSON must error")
	}
}

func TestScheduleJSONValidatesWithInstance(t *testing.T) {
	inst := inst22(t)
	var s Schedule
	s.Add(0, 0, r(0, 1), r(4, 1), r(1, 1))
	s.Add(1, 1, r(1, 1), r(5, 1), r(1, 1))
	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(inst, Divisible, nil); err != nil {
		t.Errorf("round-tripped schedule fails validation: %v", err)
	}
}
