package schedule

import (
	"math/big"
	"testing"
	"testing/quick"

	"divflow/internal/model"
)

// TestMetricsQuick is a testing/quick property on metric consistency: for
// any set of non-overlapping single-machine pieces covering two jobs,
// MaxWeightedFlow dominates every job's weighted flow, Makespan dominates
// every completion, and SumFlow equals the sum of the individual flows.
func TestMetricsQuick(t *testing.T) {
	inst := inst22ForQuick()
	property := func(gapA, gapB uint8) bool {
		// Build: J0 runs [g, g+4) on m0; J1 runs [max(g+4, 1)+h, +2·?) on m1
		// (cost 4 on m1? c[1][1] = 8? use exact costs from inst22ForQuick:
		// c[0][0]=4, c[1][1]=4.
		g := big.NewRat(int64(gapA%8), 1)
		var s Schedule
		start0 := g
		end0 := new(big.Rat).Add(start0, big.NewRat(4, 1))
		s.Add(0, 0, start0, end0, big.NewRat(1, 1))
		start1 := new(big.Rat).Add(end0, big.NewRat(int64(gapB%8)+1, 1))
		end1 := new(big.Rat).Add(start1, big.NewRat(4, 1))
		s.Add(1, 1, start1, end1, big.NewRat(1, 1))

		flows, err := s.Flows(inst)
		if err != nil {
			return false
		}
		mwf, err := s.MaxWeightedFlow(inst)
		if err != nil {
			return false
		}
		sum, err := s.SumFlow(inst)
		if err != nil {
			return false
		}
		wantSum := new(big.Rat).Add(flows[0], flows[1])
		if sum.Cmp(wantSum) != 0 {
			return false
		}
		for j, f := range flows {
			wf := new(big.Rat).Mul(inst.Jobs[j].Weight, f)
			if wf.Cmp(mwf) > 0 {
				return false
			}
		}
		ms := s.Makespan()
		for _, c := range s.Completions(inst.N()) {
			if c.Cmp(ms) > 0 {
				return false
			}
		}
		return s.Validate(inst, Preemptive, nil) == nil
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func inst22ForQuick() *model.Instance {
	jobs := []model.Job{
		{Name: "J0", Release: big.NewRat(0, 1), Weight: big.NewRat(1, 1), Size: big.NewRat(4, 1)},
		{Name: "J1", Release: big.NewRat(1, 1), Weight: big.NewRat(2, 1), Size: big.NewRat(2, 1)},
	}
	machines := []model.Machine{
		{Name: "m0", InverseSpeed: big.NewRat(1, 1)},
		{Name: "m1", InverseSpeed: big.NewRat(2, 1)},
	}
	inst, err := model.NewInstance(jobs, machines)
	if err != nil {
		panic(err)
	}
	return inst
}
