// Package schedule represents the output of the offline solvers: a set of
// pieces, each assigning a fraction of a job to a machine over a time
// window, together with exact validators for the two execution models of
// RR-5386 (divisible load, and preemption without divisibility) and the
// metrics the paper discusses (makespan, flow, weighted flow, stretch).
package schedule

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"divflow/internal/model"
)

// Piece is a maximal run of one job on one machine.
type Piece struct {
	Machine int
	Job     int
	Start   *big.Rat
	End     *big.Rat
	// Fraction is the share of the whole job completed by this piece. In
	// both execution models machines run jobs at full speed, so Fraction
	// must equal (End − Start) / c_{machine,job}.
	Fraction *big.Rat
}

// Duration returns End − Start.
func (p *Piece) Duration() *big.Rat { return new(big.Rat).Sub(p.End, p.Start) }

// Schedule is an executable plan for an instance.
type Schedule struct {
	Pieces []Piece
}

// Add appends a piece; zero-duration pieces are dropped.
func (s *Schedule) Add(machine, job int, start, end, fraction *big.Rat) {
	if start.Cmp(end) >= 0 || fraction.Sign() == 0 {
		return
	}
	s.Pieces = append(s.Pieces, Piece{
		Machine:  machine,
		Job:      job,
		Start:    new(big.Rat).Set(start),
		End:      new(big.Rat).Set(end),
		Fraction: new(big.Rat).Set(fraction),
	})
}

// Completions returns C_j for every job: the latest piece end, or nil for a
// job with no piece.
func (s *Schedule) Completions(n int) []*big.Rat {
	out := make([]*big.Rat, n)
	for i := range s.Pieces {
		p := &s.Pieces[i]
		if out[p.Job] == nil || p.End.Cmp(out[p.Job]) > 0 {
			out[p.Job] = new(big.Rat).Set(p.End)
		}
	}
	return out
}

// Makespan returns max_j C_j (zero for an empty schedule).
func (s *Schedule) Makespan() *big.Rat {
	ms := new(big.Rat)
	for i := range s.Pieces {
		if s.Pieces[i].End.Cmp(ms) > 0 {
			ms.Set(s.Pieces[i].End)
		}
	}
	return ms
}

// Flows returns F_j = C_j − r_j for every job of the instance.
func (s *Schedule) Flows(inst *model.Instance) ([]*big.Rat, error) {
	cs := s.Completions(inst.N())
	out := make([]*big.Rat, inst.N())
	for j, c := range cs {
		if c == nil {
			return nil, fmt.Errorf("schedule: job %d has no piece", j)
		}
		out[j] = new(big.Rat).Sub(c, inst.Jobs[j].Release)
	}
	return out, nil
}

// MaxWeightedFlow returns max_j w_j (C_j − r_j).
func (s *Schedule) MaxWeightedFlow(inst *model.Instance) (*big.Rat, error) {
	flows, err := s.Flows(inst)
	if err != nil {
		return nil, err
	}
	best := new(big.Rat)
	for j, f := range flows {
		wf := new(big.Rat).Mul(inst.Jobs[j].Weight, f)
		if j == 0 || wf.Cmp(best) > 0 {
			best = wf
		}
	}
	return best, nil
}

// MaxStretch returns max_j (C_j − r_j)/W_j; it requires job sizes.
func (s *Schedule) MaxStretch(inst *model.Instance) (*big.Rat, error) {
	flows, err := s.Flows(inst)
	if err != nil {
		return nil, err
	}
	best := new(big.Rat)
	for j, f := range flows {
		if inst.Jobs[j].Size == nil || inst.Jobs[j].Size.Sign() <= 0 {
			return nil, fmt.Errorf("schedule: job %d has no Size; stretch undefined", j)
		}
		st := new(big.Rat).Quo(f, inst.Jobs[j].Size)
		if j == 0 || st.Cmp(best) > 0 {
			best = st
		}
	}
	return best, nil
}

// SumFlow returns Σ_j F_j.
func (s *Schedule) SumFlow(inst *model.Instance) (*big.Rat, error) {
	flows, err := s.Flows(inst)
	if err != nil {
		return nil, err
	}
	sum := new(big.Rat)
	for _, f := range flows {
		sum.Add(sum, f)
	}
	return sum, nil
}

// Since returns the sub-schedule of pieces still running at or after t
// (End > t), preserving order. Long-running services use it to answer
// windowed Gantt queries without shipping the whole history; pieces
// straddling t are kept whole so fractions stay consistent with durations.
func (s *Schedule) Since(t *big.Rat) *Schedule {
	out := &Schedule{}
	for i := range s.Pieces {
		if s.Pieces[i].End.Cmp(t) > 0 {
			out.Pieces = append(out.Pieces, s.Pieces[i])
		}
	}
	return out
}

// byStart sorts piece indices by start time.
func (s *Schedule) sortedByStart(idx []int) {
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := &s.Pieces[idx[a]], &s.Pieces[idx[b]]
		if c := pa.Start.Cmp(pb.Start); c != 0 {
			return c < 0
		}
		return pa.End.Cmp(pb.End) < 0
	})
}

// String renders a per-machine Gantt-like listing.
func (s *Schedule) String() string {
	byMachine := map[int][]int{}
	maxM := -1
	for i := range s.Pieces {
		m := s.Pieces[i].Machine
		byMachine[m] = append(byMachine[m], i)
		if m > maxM {
			maxM = m
		}
	}
	var b strings.Builder
	for m := 0; m <= maxM; m++ {
		fmt.Fprintf(&b, "M%d:", m)
		idx := byMachine[m]
		s.sortedByStart(idx)
		for _, i := range idx {
			p := &s.Pieces[i]
			fmt.Fprintf(&b, " J%d[%s,%s)", p.Job, p.Start.RatString(), p.End.RatString())
		}
		b.WriteString("\n")
	}
	return b.String()
}
