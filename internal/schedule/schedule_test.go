package schedule

import (
	"math/big"
	"strings"
	"testing"

	"divflow/internal/model"
)

func r(a, b int64) *big.Rat { return big.NewRat(a, b) }

// inst22 returns a 2-job, 2-machine instance with all costs finite:
// c[0] = {J0: 4, J1: 2}, c[1] = {J0: 8, J1: 4}. Releases 0 and 1, weights 1
// and 2, sizes 4 and 2 (machine 0 has inverse speed 1, machine 1 has 2).
func inst22(t *testing.T) *model.Instance {
	t.Helper()
	jobs := []model.Job{
		{Name: "J0", Release: r(0, 1), Weight: r(1, 1), Size: r(4, 1)},
		{Name: "J1", Release: r(1, 1), Weight: r(2, 1), Size: r(2, 1)},
	}
	machines := []model.Machine{
		{Name: "m0", InverseSpeed: r(1, 1)},
		{Name: "m1", InverseSpeed: r(2, 1)},
	}
	inst, err := model.NewInstance(jobs, machines)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestValidDivisibleSchedule(t *testing.T) {
	inst := inst22(t)
	var s Schedule
	// J0 split across both machines concurrently (allowed when divisible):
	// half on m0 during [0,2) (cost 4 -> fraction 1/2), half on m1 during
	// [0,4) (cost 8 -> fraction 1/2).
	s.Add(0, 0, r(0, 1), r(2, 1), r(1, 2))
	s.Add(1, 0, r(0, 1), r(4, 1), r(1, 2))
	// J1 entirely on m0 during [2,4) (cost 2 -> fraction 1).
	s.Add(0, 1, r(2, 1), r(4, 1), r(1, 1))
	if err := s.Validate(inst, Divisible, nil); err != nil {
		t.Fatalf("valid divisible schedule rejected: %v", err)
	}
	// The same schedule is invalid under Preemptive: J0 runs on two
	// machines at once.
	if err := s.Validate(inst, Preemptive, nil); err == nil {
		t.Fatal("preemptive validation must reject simultaneous execution")
	}
}

func TestValidPreemptiveSchedule(t *testing.T) {
	inst := inst22(t)
	var s Schedule
	// J0: [0,2) on m0 (1/2 done), then [2,6) on m1 (1/2 done).
	s.Add(0, 0, r(0, 1), r(2, 1), r(1, 2))
	s.Add(1, 0, r(2, 1), r(6, 1), r(1, 2))
	// J1: [2,4) on m0.
	s.Add(0, 1, r(2, 1), r(4, 1), r(1, 1))
	if err := s.Validate(inst, Preemptive, nil); err != nil {
		t.Fatalf("valid preemptive schedule rejected: %v", err)
	}
}

func TestValidateRejectsReleaseViolation(t *testing.T) {
	inst := inst22(t)
	var s Schedule
	s.Add(0, 1, r(0, 1), r(2, 1), r(1, 1)) // J1 released at 1, starts at 0
	s.Add(0, 0, r(2, 1), r(6, 1), r(1, 1))
	err := s.Validate(inst, Divisible, nil)
	if err == nil || !strings.Contains(err.Error(), "release") {
		t.Fatalf("want release violation, got %v", err)
	}
}

func TestValidateRejectsWrongFraction(t *testing.T) {
	inst := inst22(t)
	var s Schedule
	s.Add(0, 0, r(0, 1), r(4, 1), r(1, 2)) // duration 4, cost 4 -> should be 1
	s.Add(0, 1, r(4, 1), r(6, 1), r(1, 1))
	err := s.Validate(inst, Divisible, nil)
	if err == nil || !strings.Contains(err.Error(), "fraction") {
		t.Fatalf("want fraction violation, got %v", err)
	}
}

func TestValidateRejectsIncomplete(t *testing.T) {
	inst := inst22(t)
	var s Schedule
	s.Add(0, 0, r(0, 1), r(2, 1), r(1, 2)) // only half of J0
	s.Add(0, 1, r(2, 1), r(4, 1), r(1, 1))
	err := s.Validate(inst, Divisible, nil)
	if err == nil || !strings.Contains(err.Error(), "processed fraction") {
		t.Fatalf("want completion violation, got %v", err)
	}
}

func TestValidateRejectsMachineOverlap(t *testing.T) {
	inst := inst22(t)
	var s Schedule
	s.Add(0, 0, r(0, 1), r(4, 1), r(1, 1))
	s.Add(0, 1, r(3, 1), r(5, 1), r(1, 1)) // overlaps on m0
	err := s.Validate(inst, Divisible, nil)
	if err == nil || !strings.Contains(err.Error(), "machine 0") {
		t.Fatalf("want machine overlap violation, got %v", err)
	}
}

func TestValidateRejectsIneligibleMachine(t *testing.T) {
	jobs := []model.Job{{Name: "J0", Release: r(0, 1), Weight: r(1, 1), Size: r(2, 1), Databanks: []string{"x"}}}
	machines := []model.Machine{
		{Name: "has", InverseSpeed: r(1, 1), Databanks: []string{"x"}},
		{Name: "hasnot", InverseSpeed: r(1, 1)},
	}
	inst, err := model.NewInstance(jobs, machines)
	if err != nil {
		t.Fatal(err)
	}
	var s Schedule
	s.Add(1, 0, r(0, 1), r(2, 1), r(1, 1))
	if err := s.Validate(inst, Divisible, nil); err == nil {
		t.Fatal("want ineligible-machine violation")
	}
}

func TestValidateDeadlines(t *testing.T) {
	inst := inst22(t)
	var s Schedule
	s.Add(0, 0, r(0, 1), r(4, 1), r(1, 1))
	s.Add(1, 1, r(1, 1), r(5, 1), r(1, 1))
	dls := []*big.Rat{r(4, 1), r(5, 1)}
	if err := s.Validate(inst, Divisible, dls); err != nil {
		t.Fatalf("deadline-respecting schedule rejected: %v", err)
	}
	tight := []*big.Rat{r(4, 1), r(4, 1)}
	if err := s.Validate(inst, Divisible, tight); err == nil {
		t.Fatal("want deadline violation")
	}
}

func TestMetrics(t *testing.T) {
	inst := inst22(t)
	var s Schedule
	s.Add(0, 0, r(0, 1), r(4, 1), r(1, 1)) // C_0 = 4, F_0 = 4
	s.Add(1, 1, r(1, 1), r(5, 1), r(1, 1)) // C_1 = 5, F_1 = 4
	if ms := s.Makespan(); ms.Cmp(r(5, 1)) != 0 {
		t.Errorf("makespan = %v, want 5", ms)
	}
	flows, err := s.Flows(inst)
	if err != nil {
		t.Fatal(err)
	}
	if flows[0].Cmp(r(4, 1)) != 0 || flows[1].Cmp(r(4, 1)) != 0 {
		t.Errorf("flows = %v,%v want 4,4", flows[0], flows[1])
	}
	mwf, err := s.MaxWeightedFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	if mwf.Cmp(r(8, 1)) != 0 { // w_1 * F_1 = 2*4
		t.Errorf("max weighted flow = %v, want 8", mwf)
	}
	st, err := s.MaxStretch(inst)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cmp(r(2, 1)) != 0 { // F_1 / W_1 = 4/2
		t.Errorf("max stretch = %v, want 2", st)
	}
	sf, err := s.SumFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sf.Cmp(r(8, 1)) != 0 {
		t.Errorf("sum flow = %v, want 8", sf)
	}
}

func TestFlowsMissingJob(t *testing.T) {
	inst := inst22(t)
	var s Schedule
	s.Add(0, 0, r(0, 1), r(4, 1), r(1, 1))
	if _, err := s.Flows(inst); err == nil {
		t.Fatal("want error for job with no piece")
	}
}

func TestAddDropsEmptyPieces(t *testing.T) {
	var s Schedule
	s.Add(0, 0, r(2, 1), r(2, 1), r(1, 2)) // zero duration
	s.Add(0, 0, r(2, 1), r(3, 1), r(0, 1)) // zero fraction
	if len(s.Pieces) != 0 {
		t.Errorf("empty pieces must be dropped, got %d", len(s.Pieces))
	}
}

func TestStringGantt(t *testing.T) {
	var s Schedule
	s.Add(1, 0, r(0, 1), r(2, 1), r(1, 2))
	s.Add(0, 1, r(1, 1), r(3, 1), r(1, 1))
	out := s.String()
	if !strings.Contains(out, "M0: J1[1,3)") || !strings.Contains(out, "M1: J0[0,2)") {
		t.Errorf("unexpected gantt:\n%s", out)
	}
}
