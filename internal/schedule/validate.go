package schedule

import (
	"fmt"
	"math/big"

	"divflow/internal/model"
)

// Model selects which execution-model invariants Validate enforces.
type Model int

// Execution models.
const (
	// Divisible is the divisible-load model: fractions of a job may run
	// concurrently on different machines (Section 3, "Job divisibility").
	Divisible Model = iota
	// Preemptive forbids simultaneous execution of one job on several
	// machines but allows interruption (Section 4.4).
	Preemptive
)

// Validate checks that the schedule is a valid execution of the instance
// under the given model:
//
//  1. every piece runs a job on an eligible machine, at full speed
//     (Fraction == Duration / c_{i,j}), entirely after its release date;
//  2. pieces on one machine never overlap;
//  3. every job is fully processed: Σ fractions == 1;
//  4. under Preemptive, pieces of one job never overlap across machines.
//
// Deadlines, when non-nil, are additionally enforced: every piece of job j
// must end by deadlines[j].
func (s *Schedule) Validate(inst *model.Instance, m Model, deadlines []*big.Rat) error {
	done := make([]*big.Rat, inst.N())
	for j := range done {
		done[j] = new(big.Rat)
	}
	for i := range s.Pieces {
		p := &s.Pieces[i]
		if p.Job < 0 || p.Job >= inst.N() {
			return fmt.Errorf("schedule: piece %d has unknown job %d", i, p.Job)
		}
		if p.Machine < 0 || p.Machine >= inst.M() {
			return fmt.Errorf("schedule: piece %d has unknown machine %d", i, p.Machine)
		}
		if p.Start.Cmp(p.End) >= 0 {
			return fmt.Errorf("schedule: piece %d is empty or inverted [%v,%v)", i, p.Start, p.End)
		}
		if p.Start.Cmp(inst.Jobs[p.Job].Release) < 0 {
			return fmt.Errorf("schedule: piece %d starts at %v before release %v of job %d",
				i, p.Start, inst.Jobs[p.Job].Release.RatString(), p.Job)
		}
		c, ok := inst.Cost(p.Machine, p.Job)
		if !ok {
			return fmt.Errorf("schedule: piece %d runs job %d on ineligible machine %d", i, p.Job, p.Machine)
		}
		wantFrac := new(big.Rat).Quo(p.Duration(), c)
		if p.Fraction.Cmp(wantFrac) != 0 {
			return fmt.Errorf("schedule: piece %d fraction %v != duration/cost %v",
				i, p.Fraction.RatString(), wantFrac.RatString())
		}
		if deadlines != nil && deadlines[p.Job] != nil && p.End.Cmp(deadlines[p.Job]) > 0 {
			return fmt.Errorf("schedule: piece %d of job %d ends at %v after deadline %v",
				i, p.Job, p.End.RatString(), deadlines[p.Job].RatString())
		}
		done[p.Job].Add(done[p.Job], p.Fraction)
	}
	one := big.NewRat(1, 1)
	for j, d := range done {
		if d.Cmp(one) != 0 {
			return fmt.Errorf("schedule: job %d processed fraction %v, want 1", j, d.RatString())
		}
	}
	if err := s.checkNoOverlap(groupKeyMachine, inst.M(), "machine"); err != nil {
		return err
	}
	if m == Preemptive {
		if err := s.checkNoOverlap(groupKeyJob, inst.N(), "job"); err != nil {
			return err
		}
	}
	return nil
}

type groupKey int

const (
	groupKeyMachine groupKey = iota
	groupKeyJob
)

func (s *Schedule) checkNoOverlap(key groupKey, groups int, what string) error {
	byGroup := make([][]int, groups)
	for i := range s.Pieces {
		g := s.Pieces[i].Machine
		if key == groupKeyJob {
			g = s.Pieces[i].Job
		}
		byGroup[g] = append(byGroup[g], i)
	}
	for g, idx := range byGroup {
		s.sortedByStart(idx)
		for k := 1; k < len(idx); k++ {
			prev, cur := &s.Pieces[idx[k-1]], &s.Pieces[idx[k]]
			if cur.Start.Cmp(prev.End) < 0 {
				return fmt.Errorf("schedule: %s %d runs two pieces concurrently: [%v,%v) and [%v,%v)",
					what, g, prev.Start.RatString(), prev.End.RatString(),
					cur.Start.RatString(), cur.End.RatString())
			}
		}
	}
	return nil
}
