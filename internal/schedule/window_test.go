package schedule

import (
	"math/big"
	"testing"
)

func TestSince(t *testing.T) {
	s := &Schedule{}
	s.Add(0, 0, big.NewRat(0, 1), big.NewRat(2, 1), big.NewRat(1, 2))
	s.Add(1, 1, big.NewRat(1, 1), big.NewRat(3, 1), big.NewRat(1, 1))
	s.Add(0, 0, big.NewRat(4, 1), big.NewRat(5, 1), big.NewRat(1, 2))

	if got := len(s.Since(new(big.Rat)).Pieces); got != 3 {
		t.Errorf("Since(0) = %d pieces, want all 3", got)
	}
	// t=2 drops the first piece (End == 2 is not after 2) and keeps the
	// piece straddling the cut whole.
	win := s.Since(big.NewRat(2, 1))
	if len(win.Pieces) != 2 {
		t.Fatalf("Since(2) = %d pieces, want 2", len(win.Pieces))
	}
	if win.Pieces[0].Start.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("straddling piece truncated: start = %v", win.Pieces[0].Start)
	}
	if got := len(s.Since(big.NewRat(100, 1)).Pieces); got != 0 {
		t.Errorf("Since(100) = %d pieces, want 0", got)
	}
	// The original is untouched.
	if len(s.Pieces) != 3 {
		t.Errorf("source schedule mutated: %d pieces", len(s.Pieces))
	}
}
