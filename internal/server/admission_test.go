package server

import (
	"fmt"
	"math/big"
	"net/http/httptest"
	"testing"

	"divflow/internal/model"
	"divflow/internal/shardlink"
)

// TestDeadlineCounterOfferResubmit is the admission-control acceptance test:
// an infeasible deadline is rejected with an exact counter-offer, and a
// resubmission at exactly that counter-offer is accepted AND met in the
// executed trace. The feasibility model runs each job on one machine at a
// time (migration allowed), so on testFleet (fast speed 2, slow speed 1) a
// size-9 job cannot be promised before 9/2 — the executed trace, which may
// split a job across machines, then beats the promise.
func TestDeadlineCounterOfferResubmit(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: testFleet(), Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Infeasible: 9 units of work need 9/2 on the fastest machine.
	status, _, env := apiCall(t, ts, "POST", "/v1/jobs",
		`{"size":"9","weight":"3","deadline":"1","databanks":["swissprot"]}`)
	if status != 422 || env.Error.Code != model.ErrCodeDeadlineInfeasible {
		t.Fatalf("infeasible submit = %d %q, want 422 deadline_infeasible", status, env.Error.Code)
	}
	cert := env.Error.Admission
	if cert == nil || cert.Feasible {
		t.Fatalf("reject certificate = %+v, want an infeasible certificate", cert)
	}
	if cert.CounterOffer != "9/2" {
		t.Fatalf("counter-offer = %q, want the exact bound 9/2 (= 9 work / fastest speed 2)", cert.CounterOffer)
	}

	// Resubmit at exactly the counter-offer: accepted, with a feasible cert.
	resp1 := postJob(t, ts.URL, model.SubmitRequest{
		Size: "9", Weight: "3", Deadline: cert.CounterOffer, Databanks: []string{"swissprot"}})
	if resp1.Admission == nil || !resp1.Admission.Feasible || resp1.Admission.Deadline != "9/2" {
		t.Fatalf("accept certificate = %+v, want feasible at 9/2", resp1.Admission)
	}

	// A second deadline job must be checked against the residual workload
	// *including job 1's commitment*: the fast machine is pledged to job 1
	// through 9/2, so 9 more units cannot be promised before 9/2 + 9/2 = 9.
	status, _, env = apiCall(t, ts, "POST", "/v1/jobs",
		`{"size":"9","weight":"1","deadline":"9/2","databanks":["swissprot"]}`)
	if status != 422 || env.Error.Code != model.ErrCodeDeadlineInfeasible {
		t.Fatalf("second submit = %d %q, want 422 deadline_infeasible", status, env.Error.Code)
	}
	if env.Error.Admission == nil || env.Error.Admission.CounterOffer != "9" {
		t.Fatalf("residual-aware counter-offer = %+v, want 9", env.Error.Admission)
	}
	resp2 := postJob(t, ts.URL, model.SubmitRequest{
		Size: "9", Weight: "1", Deadline: "9", Databanks: []string{"swissprot"}})
	if resp2.Admission == nil || !resp2.Admission.Feasible {
		t.Fatalf("second accept certificate = %+v, want feasible", resp2.Admission)
	}

	// Execute: the max-weighted-flow objective equalizes weighted flows
	// (3·3 = 1·9), completing job 1 at 3 and job 2 at 9 — both inside their
	// promised deadlines.
	srv.Start()
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 2 })
	for _, want := range []struct {
		id               int
		deadline, doneAt string
	}{{resp1.ID, "9/2", "3"}, {resp2.ID, "9", "9"}} {
		var st model.JobStatus
		getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, want.id), &st)
		if st.State != StateDone || st.CompletedAt != want.doneAt {
			t.Errorf("job %d = %s @ %s, want done @ %s", want.id, st.State, st.CompletedAt, want.doneAt)
		}
		if st.Deadline != want.deadline || st.DeadlineMet == nil || !*st.DeadlineMet {
			t.Errorf("job %d deadline %q met %v, want %q met", want.id, st.Deadline, st.DeadlineMet, want.deadline)
		}
	}
	validateServer(t, srv)
}

// TestAdmissionModes pins the -admission axis: advisory admits an infeasible
// deadline but reports the same exact certificate, off skips the check (and
// the LP) entirely, and deadline-free traffic never gets a certificate in
// any mode.
func TestAdmissionModes(t *testing.T) {
	for _, mode := range []string{AdmissionStrict, AdmissionAdvisory, AdmissionOff} {
		t.Run(mode, func(t *testing.T) {
			srv, err := New(Config{Machines: testFleet(), Clock: NewVirtualClock(), Admission: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			plain, err := srv.Submit(&model.SubmitRequest{Size: "1", Databanks: []string{"swissprot"}})
			if err != nil || plain.Admission != nil {
				t.Fatalf("deadline-free submit = %+v, %v; want accepted with no certificate", plain, err)
			}
			resp, err := srv.Submit(&model.SubmitRequest{
				Size: "9", Deadline: "1", Databanks: []string{"swissprot"}})
			switch mode {
			case AdmissionStrict:
				if err == nil || resp.Admission == nil || resp.Admission.Feasible {
					t.Fatalf("strict infeasible submit = %+v, %v; want reject with certificate", resp, err)
				}
			case AdmissionAdvisory:
				if err != nil {
					t.Fatalf("advisory submit rejected: %v", err)
				}
				if resp.Admission == nil || resp.Admission.Feasible ||
					resp.Admission.Mode != AdmissionAdvisory || resp.Admission.CounterOffer == "" {
					t.Fatalf("advisory certificate = %+v, want infeasible with counter-offer", resp.Admission)
				}
			case AdmissionOff:
				if err != nil || resp.Admission != nil {
					t.Fatalf("admission=off submit = %+v, %v; want accepted with no certificate", resp, err)
				}
			}
		})
	}
	if _, err := New(Config{Machines: testFleet(), Admission: "bogus"}); err == nil {
		t.Error("unknown admission mode accepted")
	}
}

// TestTenantFlashCrowdIsolation is the weighted-fairness acceptance test: a
// noisy tenant flooding the fleet is shed with tenant_over_quota while the
// quiet tenant keeps its full weighted share — its submissions all land and
// its weighted-flow tail stays below the noisy tenant's. Premium traffic is
// quota-exempt even for the noisy tenant.
func TestTenantFlashCrowdIsolation(t *testing.T) {
	tc, err := model.ParseTenantConfig([]byte(`{"tenants":[
		{"name":"noisy","weight":"1"},{"name":"quiet","weight":"3"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: testFleet(), Clock: vc, Policy: "srpt", Tenants: tc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	submit := func(body string) (int, model.ErrorResponse) {
		st, hdr, env := apiCall(t, ts, "POST", "/v1/jobs", body)
		if st == 429 && hdr.Get("Retry-After") == "" {
			t.Error("tenant_over_quota reject carries no Retry-After header")
		}
		return st, env
	}

	// The flood: noisy lands its first burst (a lone tenant is never shed),
	// then every further submission exceeds its 1/4 weight share of the
	// fleet backlog while quiet keeps landing within its 3/4 share.
	noisyAccepted, noisyShed := 0, 0
	if st, _ := submit(`{"size":"5","tenant":"noisy","databanks":["swissprot"]}`); st != 202 {
		t.Fatalf("noisy's first submit = %d, want 202 (lone active tenant)", st)
	}
	noisyAccepted++
	for round := 0; round < 5; round++ {
		if st, _ := submit(`{"size":"1","tenant":"quiet","databanks":["swissprot"]}`); st != 202 {
			t.Fatalf("quiet round %d = %d, want 202 (within weighted share)", round, st)
		}
		st, env := submit(`{"size":"5","tenant":"noisy","databanks":["swissprot"]}`)
		switch st {
		case 202:
			noisyAccepted++
		case 429:
			if env.Error.Code != model.ErrCodeTenantOverQuota {
				t.Fatalf("shed code = %q, want tenant_over_quota", env.Error.Code)
			}
			noisyShed++
		default:
			t.Fatalf("noisy flood submit = %d, want 202 or 429", st)
		}
	}
	if noisyShed == 0 {
		t.Fatal("flooding tenant was never shed")
	}
	// Premium rides through the flood untouched by quota.
	if st, _ := submit(`{"size":"2","tenant":"noisy","slaClass":"premium","databanks":["swissprot"]}`); st != 202 {
		t.Fatalf("premium submit during flood = %d, want 202 (quota-exempt)", st)
	}
	noisyAccepted++

	srv.Start()
	total := noisyAccepted + 5
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == total })

	var tenants model.TenantsResponse
	getJSON(t, ts.URL+"/v1/tenants", &tenants)
	rows := map[string]model.TenantStats{}
	for _, row := range tenants.Tenants {
		rows[row.Tenant] = row
	}
	noisy, quiet := rows["noisy"], rows["quiet"]
	if noisy.Weight != "1" || quiet.Weight != "3" {
		t.Errorf("weights = %q/%q, want 1/3", noisy.Weight, quiet.Weight)
	}
	if noisy.Shed != noisyShed || noisy.Submitted != noisyAccepted || noisy.Completed != noisyAccepted {
		t.Errorf("noisy row = %+v, want submitted=completed=%d shed=%d", noisy, noisyAccepted, noisyShed)
	}
	if quiet.Shed != 0 || quiet.Submitted != 5 || quiet.Completed != 5 {
		t.Errorf("quiet row = %+v, want submitted=completed=5 shed=0", quiet)
	}
	if noisy.Backlog != "0" || quiet.Backlog != "0" {
		t.Errorf("final backlogs = %q/%q, want 0/0", noisy.Backlog, quiet.Backlog)
	}
	if noisy.ByClass[model.SLAPremium] != 1 || noisy.ByClass[model.SLAStandard] != noisyAccepted-1 {
		t.Errorf("noisy byClass = %v, want 1 premium, %d standard", noisy.ByClass, noisyAccepted-1)
	}
	// Isolation: the quiet tenant's weighted-flow tail stays below the
	// flooding tenant's (its small jobs finish ahead of the flood's backlog).
	if quiet.P95WeightedFlow <= 0 || noisy.P95WeightedFlow <= 0 {
		t.Fatalf("p95 weighted flows = %v/%v, want both positive", quiet.P95WeightedFlow, noisy.P95WeightedFlow)
	}
	if quiet.P95WeightedFlow >= noisy.P95WeightedFlow {
		t.Errorf("quiet p95 weighted flow %v not below noisy %v — no isolation",
			quiet.P95WeightedFlow, noisy.P95WeightedFlow)
	}
	validateServer(t, srv)
}

// TestAdmissionCertificatesOverRPC runs the strict admission flow with every
// router↔shard message crossing a loopback net/rpc+gob connection — the same
// CheckDeadline/Submit message set a -worker fleet answers — and requires
// bit-identical certificates to the in-process transport.
func TestAdmissionCertificatesOverRPC(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: testFleet(), Clock: vc, Shards: 1,
		Transport: shardlink.TransportRPC})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := srv.Submit(&model.SubmitRequest{
		Size: "9", Deadline: "1", Databanks: []string{"swissprot"}})
	if err == nil {
		t.Fatal("infeasible deadline accepted over RPC")
	}
	if resp.Admission == nil || resp.Admission.Feasible || resp.Admission.CounterOffer != "9/2" {
		t.Fatalf("RPC reject certificate = %+v, want infeasible with counter-offer 9/2", resp.Admission)
	}

	// The typed CheckDeadline message answers the same certificate directly.
	job, err := (&model.SubmitRequest{Size: "9", Deadline: "1", Databanks: []string{"swissprot"}}).Job()
	if err != nil {
		t.Fatal(err)
	}
	job.Release = big.NewRat(0, 1)
	rep, err := srv.active()[0].link.CheckDeadline(shardlink.CheckDeadlineArgs{Job: job})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible || rep.CounterOffer == nil || rep.CounterOffer.RatString() != "9/2" {
		t.Fatalf("CheckDeadline over RPC = %+v, want infeasible with counter-offer 9/2", rep)
	}

	// Resubmission at the counter-offer is accepted and met, with the whole
	// exchange serialized through gob.
	acc, err := srv.Submit(&model.SubmitRequest{
		Size: "9", Deadline: "9/2", Databanks: []string{"swissprot"}})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Admission == nil || !acc.Admission.Feasible {
		t.Fatalf("RPC accept certificate = %+v, want feasible", acc.Admission)
	}
	srv.Start()
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 1 })
	st, _ := srv.jobStatus(acc.ID)
	if st.CompletedAt != "3" || st.DeadlineMet == nil || !*st.DeadlineMet {
		t.Errorf("job over RPC = done @ %s met %v, want @ 3 met", st.CompletedAt, st.DeadlineMet)
	}
}
