package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"net/http"
	"strconv"

	"divflow/internal/model"
	"divflow/internal/stats"
)

// Handler returns the HTTP surface of the service:
//
//	POST /v1/jobs          submit a job (model.SubmitRequest)
//	GET  /v1/jobs/{id}     job status (model.JobStatus)
//	GET  /v1/schedule      executed Gantt so far (model.ScheduleResponse);
//	                       ?since=<rat> windows it to pieces ending after t
//	GET  /v1/stats         service counters (model.StatsResponse)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/schedule", s.handleSchedule)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// maxSubmitBytes bounds submission bodies: a single request must not be
// able to feed the exact solvers arbitrarily large rationals.
const maxSubmitBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req model.SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.Submit(&req)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusAccepted, model.SubmitResponse{ID: id, State: StateQueued})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	// Copy the status under the lock, write to the network after releasing
	// it: a slow client must never block the scheduling loop.
	s.mu.Lock()
	known := err == nil && id >= 0 && id < len(s.records) && s.records[id] != nil
	var st model.JobStatus
	if known {
		st = s.jobStatusLocked(id)
	}
	s.mu.Unlock()
	if !known {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// jobStatusLocked builds the wire status of one job. Callers hold s.mu.
func (s *Server) jobStatusLocked(id int) model.JobStatus {
	rec := s.records[id]
	st := model.JobStatus{
		ID:        rec.id,
		Name:      rec.name,
		State:     rec.state,
		Weight:    rec.weight.RatString(),
		Size:      rec.size.RatString(),
		Databanks: rec.databanks,
	}
	if rec.release != nil {
		st.Release = rec.release.RatString()
	}
	if rec.state == StateScheduled {
		if rem := s.eng.Remaining(rec.id); rem != nil {
			st.Remaining = rem.RatString()
		}
	}
	if rec.completed != nil {
		flow := new(big.Rat).Sub(rec.completed, rec.release)
		st.CompletedAt = rec.completed.RatString()
		st.Flow = flow.RatString()
		st.WeightedFlow = new(big.Rat).Mul(rec.weight, flow).RatString()
		st.Stretch = new(big.Rat).Quo(flow, rec.size).RatString()
	}
	return st
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var since *big.Rat
	if q := r.URL.Query().Get("since"); q != "" {
		t, ok := new(big.Rat).SetString(q)
		if !ok {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad since %q: want a rational like 3/2", q))
			return
		}
		since = t
	}
	// Serialize under the lock, write to the network after releasing it: a
	// slow client must never block the scheduling loop.
	s.mu.Lock()
	sched := s.eng.Schedule()
	makespan := sched.Makespan() // of the whole execution, not the window
	if since != nil {
		sched = sched.Since(since)
	}
	raw, err := json.Marshal(sched)
	now := s.eng.Now()
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, model.ScheduleResponse{
		Now:      now.RatString(),
		Makespan: makespan.RatString(),
		Schedule: raw,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats assembles the service counters and the exact/summary metrics over
// completed jobs.
func (s *Server) Stats() model.StatsResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := model.StatsResponse{
		Policy:          s.policy.Name(),
		Now:             s.eng.Now().RatString(),
		JobsAccepted:    len(s.records),
		JobsLive:        s.eng.Live(),
		JobsCompleted:   s.eng.CompletedCount(),
		Events:          s.eng.Decisions(),
		ArrivalBatches:  s.arrivalBatches,
		BatchedArrivals: s.batchedArrivals,
		LargestBatch:    s.largestBatch,
		Stalled:         s.stalled,
	}
	if s.mwf != nil {
		resp.LPSolves = s.mwf.Solves()
		resp.PlanCacheHits = s.mwf.CacheHits()
		resp.Solver = s.mwf.SolverTally()
	}
	if s.lastErr != nil {
		resp.LastError = s.lastErr.Error()
	}
	resp.CompactedJobs = s.compactedJobs
	if s.doneCount > 0 {
		resp.MaxWeightedFlow = s.maxWF.RatString()
		resp.MaxStretch = s.maxStretch.RatString()
		mean := new(big.Rat).Quo(s.flowSum, big.NewRat(int64(s.doneCount), 1))
		resp.MeanFlow, _ = mean.Float64()
		resp.P95Flow = stats.Percentile(s.recentFlows, 95)
	}
	return resp
}
