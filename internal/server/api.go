package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"sort"
	"strconv"

	"divflow/internal/model"
	"divflow/internal/obs"
	"divflow/internal/schedule"
	"divflow/internal/shardlink"
	"divflow/internal/stats"
)

// Handler returns the HTTP surface of the service:
//
//	POST /v1/jobs          submit a job (model.SubmitRequest)
//	GET  /v1/jobs/{id}     job status (model.JobStatus)
//	GET  /v1/schedule      executed Gantt so far (model.ScheduleResponse);
//	                       ?since=<rat> windows it to pieces ending after t
//	GET  /v1/stats         service counters (model.StatsResponse)
//	POST /v1/platform      admin: live re-shard against an updated platform
//	                       JSON (model.ReshardResponse)
//	GET  /healthz          200 while every active shard is healthy, 503
//	                       naming the stalled shards (model.HealthResponse)
//	GET  /metrics          Prometheus text exposition (absent with
//	                       telemetry disabled)
//	GET  /v1/events        structured event journal (model.EventsResponse);
//	                       ?since=&type=&shard=&limit= page and filter it
//	                       (absent with telemetry disabled)
//
// Reads merge the per-shard state: job IDs are shard-encoded, the schedule
// interleaves every shard's pieces over fleet machine indices, and stats
// carry both fleet aggregates and the per-shard breakdown (retired shards
// included — they keep serving the history executed before their
// generation ended).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/schedule", s.handleSchedule)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/platform", s.handlePlatform)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if s.tel.enabled {
		mux.Handle("GET /metrics", s.tel.reg.Handler())
		mux.HandleFunc("GET /v1/events", s.handleEvents)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// maxSubmitBytes bounds submission bodies: a single request must not be
// able to feed the exact solvers arbitrarily large rationals.
const maxSubmitBytes = 1 << 20

// maxPlatformBytes bounds platform documents on the admin surface. It is
// deliberately much larger than maxSubmitBytes: a fleet document scales with
// machine count, and the same file loads unbounded at daemon startup and via
// SIGHUP — the HTTP path must not be the one surface that rejects it.
const maxPlatformBytes = 64 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req model.SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.Submit(&req)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.NotFound(w, r)
		return
	}
	// The owning shard copies the status under its lock (with the forwarding
	// table chased for migrated jobs); the write to the network happens after
	// release: a slow client must never block a loop.
	st, known := s.jobStatus(id)
	if !known {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handlePlatform is the live re-sharding admin API: it accepts the same
// platform JSON the daemon was started with (machines plus the optional
// "shards" override) and repartitions the running fleet against it.
func (s *Server) handlePlatform(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPlatformBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	plat, err := model.ParsePlatformConfig(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.Reshard(plat)
	if err != nil {
		status := http.StatusUnprocessableEntity
		switch {
		case errors.Is(err, ErrReshardDisabled):
			status = http.StatusForbidden
		case errors.Is(err, ErrClosed):
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var since *big.Rat
	if q := r.URL.Query().Get("since"); q != "" {
		t, ok := new(big.Rat).SetString(q)
		if !ok {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad since %q: want a rational like 3/2", q))
			return
		}
		since = t
	}
	// Each shard deep-copies its window under its own lock; the merge and
	// the serialization run lock-free. Retired shards contribute the pieces
	// executed before their generation ended, so the merged Gantt stays the
	// whole execution history across reshards.
	var merged []schedule.Piece
	now := new(big.Rat)
	makespan := new(big.Rat) // of the whole execution, not the window
	for _, sh := range s.allShards() {
		rep, err := sh.link.Schedule(shardlink.ScheduleArgs{Since: since})
		if err != nil {
			// A shard whose transport failed contributes nothing: the merged
			// view degrades to the reachable fleet rather than erroring.
			continue
		}
		merged = append(merged, rep.Pieces...)
		if rep.Now != nil && rep.Now.Cmp(now) > 0 {
			now = rep.Now
		}
		if rep.Makespan != nil && rep.Makespan.Cmp(makespan) > 0 {
			makespan = rep.Makespan
		}
	}
	// Each shard's trace is already start-ordered; a stable sort interleaves
	// the shards without disturbing per-shard (and single-shard) order.
	sort.SliceStable(merged, func(a, b int) bool {
		if c := merged[a].Start.Cmp(merged[b].Start); c != 0 {
			return c < 0
		}
		return merged[a].Machine < merged[b].Machine
	})
	raw, err := json.Marshal(&schedule.Schedule{Pieces: merged})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, model.ScheduleResponse{
		Now:      now.RatString(),
		Makespan: makespan.RatString(),
		Schedule: raw,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleHealth is the liveness/readiness probe: 200 while every active shard
// is healthy, 503 naming the stalled shards. It reuses the latched-error
// state the router reads (routeInfo takes only backlogMu), so a probe never
// waits behind an in-flight exact solve. Retired shards are history, not
// health; they are not consulted.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := model.HealthResponse{Status: "ok"}
	for _, sh := range s.active() {
		ri, err := sh.link.RouteInfo(shardlink.RouteInfoArgs{})
		if err != nil {
			// An unreachable worker shard is as stalled as a latched one.
			resp.StalledShards = append(resp.StalledShards, sh.idx)
			resp.Errors = append(resp.Errors, err.Error())
			continue
		}
		if ri.Err != "" {
			resp.StalledShards = append(resp.StalledShards, sh.idx)
			resp.Errors = append(resp.Errors, ri.Err)
		}
	}
	if err := s.dur.latchedErr(); err != nil {
		// Frozen durability degrades the probe but does not fail it: the
		// scheduler is still serving, only crash recovery is gone.
		resp.Status = "degraded"
		resp.WALError = err.Error()
	}
	if len(resp.StalledShards) > 0 {
		resp.Status = "stalled"
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleEvents pages through the event journal: ?since= resumes from a
// cursor (the next field of the previous response), ?type= and ?shard=
// filter, ?limit= bounds the page.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since int64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad since %q: want a non-negative integer", v))
			return
		}
		since = n
	}
	f := obs.Filter{Type: q.Get("type"), Shard: -1}
	if v := q.Get("shard"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad shard %q: want a non-negative integer", v))
			return
		}
		f.Shard = n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q: want a positive integer", v))
			return
		}
		f.Limit = n
	}
	events, next, dropped := s.tel.journal.Since(since, f)
	if events == nil {
		events = []obs.Event{}
	}
	writeJSON(w, http.StatusOK, model.EventsResponse{Events: events, Next: next, Dropped: dropped})
}

// Stats merges the per-shard counters into fleet-wide aggregates plus the
// per-shard breakdown. Retired shards stay in the breakdown (marked
// retired): their counters are history the aggregates must keep.
func (s *Server) Stats() model.StatsResponse {
	s.topoMu.RLock()
	shardList := append([]*shard(nil), s.all...)
	generationNum := len(s.gens) - 1
	reshardEvents := s.reshards
	activeCount := len(s.gens[len(s.gens)-1].shards)
	s.topoMu.RUnlock()
	resp := model.StatsResponse{
		Policy:        s.policyName,
		ShardCount:    activeCount,
		Generation:    generationNum,
		ReshardEvents: reshardEvents,
	}
	if s.dur != nil {
		appends, snapshots, replayed, walErr := s.dur.counters()
		w := &model.WALStats{Appends: appends, Snapshots: snapshots, Replayed: replayed}
		if walErr != nil {
			w.Error = walErr.Error()
		}
		resp.WAL = w
	}
	now := new(big.Rat)
	var solver stats.SolverTally
	flowSum := new(big.Rat)
	var maxWF, maxStretch *big.Rat
	var flowAll obs.HistogramSnapshot
	doneCount := 0
	for _, sh := range shardList {
		// Every per-shard snapshot crosses the shardlink boundary — the
		// in-process transport serves it under the shard's lock exactly as
		// before, a worker shard over its RPC connection. A shard whose
		// transport fails is omitted from this response rather than failing
		// the whole read.
		snap, err := sh.link.Stats(shardlink.StatsArgs{})
		if err != nil {
			continue
		}
		resp.Shards = append(resp.Shards, snap.Wire)
		resp.JobsAccepted += snap.Wire.JobsAccepted
		resp.JobsLive += snap.Wire.JobsLive
		resp.JobsCompleted += snap.Wire.JobsCompleted
		resp.Events += snap.Wire.Events
		resp.LPSolves += snap.Wire.LPSolves
		resp.PlanCacheHits += snap.Wire.PlanCacheHits
		resp.ArrivalBatches += snap.Wire.ArrivalBatches
		resp.BatchedArrivals += snap.Wire.BatchedArrivals
		resp.CompactedJobs += snap.Wire.CompactedJobs
		resp.StolenJobs += snap.Wire.StolenJobs
		resp.Migrations += snap.Wire.Migrations
		resp.ReshardedJobs += snap.Wire.ReshardedIn
		if snap.Wire.LargestBatch > resp.LargestBatch {
			resp.LargestBatch = snap.Wire.LargestBatch
		}
		// A retired shard's latched error is history, not service health: its
		// jobs were migrated to live shards by the reshard that retired it.
		if snap.Wire.Stalled && !snap.Wire.Retired {
			resp.Stalled = true
		}
		if resp.LastError == "" && !snap.Wire.Retired {
			resp.LastError = snap.Wire.LastError
		}
		if snap.Now != nil && snap.Now.Cmp(now) > 0 {
			now = snap.Now
		}
		solver.Merge(snap.Wire.Solver)
		doneCount += snap.DoneCount
		flowSum.Add(flowSum, snap.FlowSum)
		if snap.MaxWF != nil && (maxWF == nil || snap.MaxWF.Cmp(maxWF) > 0) {
			maxWF = snap.MaxWF
		}
		if snap.MaxStretch != nil && (maxStretch == nil || snap.MaxStretch.Cmp(maxStretch) > 0) {
			maxStretch = snap.MaxStretch
		}
		flowAll.Merge(snap.Flow)
	}
	resp.Now = now.RatString()
	resp.Solver = solver
	if doneCount > 0 {
		resp.MaxWeightedFlow = maxWF.RatString()
		resp.MaxStretch = maxStretch.RatString()
		mean := new(big.Rat).Quo(flowSum, big.NewRat(int64(doneCount), 1))
		resp.MeanFlow, _ = mean.Float64()
		// The same bucket counts /metrics exports, the same estimator
		// Prometheus's histogram_quantile applies to them: the two surfaces
		// cannot disagree on the P95.
		resp.P95Flow = flowAll.Quantile(95)
	}
	return resp
}
