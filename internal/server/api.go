package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"sort"
	"strconv"

	"divflow/internal/model"
	"divflow/internal/obs"
	"divflow/internal/schedule"
	"divflow/internal/shardlink"
	"divflow/internal/stats"
)

// Handler returns the HTTP surface of the service:
//
//	POST /v1/jobs          submit a job (model.SubmitRequest), or a batch
//	                       ({"jobs":[...]}, model.BatchSubmitRequest) with
//	                       per-job results in order
//	GET  /v1/jobs/{id}     job status (model.JobStatus)
//	GET  /v1/schedule      executed Gantt so far (model.ScheduleResponse);
//	                       ?since=<rat> windows it to pieces ending after t
//	GET  /v1/stats         service counters (model.StatsResponse)
//	GET  /v1/tenants       per-tenant weighted-flow accounting
//	                       (model.TenantsResponse)
//	POST /v1/platform      admin: live re-shard against an updated platform
//	                       JSON (model.ReshardResponse)
//	GET  /healthz          200 while every active shard is healthy, 503
//	                       naming the stalled shards (model.HealthResponse)
//	GET  /metrics          Prometheus text exposition (absent with
//	                       telemetry disabled)
//	GET  /v1/events        structured event journal (model.EventsResponse);
//	                       ?since=&type=&shard=&limit= page and filter it
//	                       (absent with telemetry disabled)
//
// Every non-2xx answer is the versioned envelope
// {"error":{"code","message",...}} with a typed code (model.ErrCode*);
// retryable failures (fleet_closed, shard_stalled, tenant_over_quota)
// mirror their retryAfter hint in the Retry-After header.
//
// Reads merge the per-shard state: job IDs are shard-encoded, the schedule
// interleaves every shard's pieces over fleet machine indices, and stats
// carry both fleet aggregates and the per-shard breakdown (retired shards
// included — they keep serving the history executed before their
// generation ended).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/schedule", s.handleSchedule)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("POST /v1/platform", s.handlePlatform)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if s.tel.enabled {
		mux.Handle("GET /metrics", s.tel.reg.Handler())
		mux.HandleFunc("GET /v1/events", s.handleEvents)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// retryAfterSeconds is the retry hint on retryable rejections (fleet
// closed, shard stalled, tenant over quota), mirrored in the Retry-After
// header. The service resolves submissions immediately — a client retrying
// after one second observes post-recovery (or post-drain) state.
const retryAfterSeconds = 1

// writeError writes the versioned v1 error envelope. A RetryAfter hint is
// mirrored in the Retry-After header so standard HTTP clients back off
// without parsing the body.
func writeError(w http.ResponseWriter, status int, we model.WireError) {
	if we.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(we.RetryAfter))
	}
	writeJSON(w, status, model.ErrorResponse{Error: we})
}

// invalidArg is the envelope for malformed requests.
func invalidArg(err error) model.WireError {
	return model.WireError{Code: model.ErrCodeInvalidArgument, Message: err.Error()}
}

// submitWireError classifies a Submit failure into its HTTP status and wire
// envelope. resp is the (possibly zero) response the failed Submit returned;
// a strict deadline reject carries the exact certificate through it.
func submitWireError(err error, resp model.SubmitResponse) (int, model.WireError) {
	we := model.WireError{Code: model.ErrCodeInvalidArgument, Message: err.Error()}
	status := http.StatusUnprocessableEntity
	var stalled *shardStalledError
	switch {
	case errors.Is(err, errDeadline):
		we.Code = model.ErrCodeDeadlineInfeasible
		we.Admission = resp.Admission
	case errors.Is(err, errTenantQuota):
		we.Code = model.ErrCodeTenantOverQuota
		we.RetryAfter = retryAfterSeconds
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		we.Code = model.ErrCodeFleetClosed
		we.RetryAfter = retryAfterSeconds
		status = http.StatusServiceUnavailable
	case errors.As(err, &stalled):
		we.Code = model.ErrCodeShardStalled
		we.RetryAfter = retryAfterSeconds
		status = http.StatusServiceUnavailable
		if stalled.shard >= 0 {
			shard := stalled.shard
			we.Shard = &shard
		}
	}
	return status, we
}

// maxSubmitBytes bounds submission bodies: a single request must not be
// able to feed the exact solvers arbitrarily large rationals.
const maxSubmitBytes = 1 << 20

// maxPlatformBytes bounds platform documents on the admin surface. It is
// deliberately much larger than maxSubmitBytes: a fleet document scales with
// machine count, and the same file loads unbounded at daemon startup and via
// SIGHUP — the HTTP path must not be the one surface that rejects it.
const maxPlatformBytes = 64 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, invalidArg(err))
		return
	}
	if isBatchSubmit(body) {
		s.handleBatchSubmit(w, body)
		return
	}
	var req model.SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, invalidArg(err))
		return
	}
	resp, err := s.Submit(&req)
	if err != nil {
		status, we := submitWireError(err, resp)
		writeError(w, status, we)
		return
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// isBatchSubmit reports whether a POST /v1/jobs body is the batch form,
// {"jobs":[...]}. A single-job body never carries a "jobs" key, so the sniff
// cannot misclassify either form.
func isBatchSubmit(body []byte) bool {
	var probe struct {
		Jobs json.RawMessage `json:"jobs"`
	}
	return json.Unmarshal(body, &probe) == nil && probe.Jobs != nil
}

// handleBatchSubmit admits a batch submission in request order. The shard
// loops batch arrivals lazily — submissions landing within one wake-up share
// a single exact re-solve — so a batch submitted here lands as one arrival
// batch on the virtual clock without any extra coordination. The status is
// 202 when at least one job was accepted; per-job rejections travel in the
// results, each with the same typed envelope a single submit would get.
func (s *Server) handleBatchSubmit(w http.ResponseWriter, body []byte) {
	var req model.BatchSubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, invalidArg(err))
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, invalidArg(errors.New("batch submission needs at least one job")))
		return
	}
	resp := model.BatchSubmitResponse{Results: make([]model.BatchSubmitResult, len(req.Jobs))}
	accepted := false
	for i := range req.Jobs {
		sub, err := s.Submit(&req.Jobs[i])
		if err != nil {
			_, we := submitWireError(err, sub)
			resp.Results[i] = model.BatchSubmitResult{Error: &we}
			continue
		}
		accepted = true
		resp.Results[i] = model.BatchSubmitResult{
			ID: sub.ID, State: sub.State, Warning: sub.Warning, Admission: sub.Admission,
		}
	}
	status := http.StatusAccepted
	if !accepted {
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, model.WireError{
			Code: model.ErrCodeNotFound, Message: fmt.Sprintf("no job %q", r.PathValue("id"))})
		return
	}
	// The owning shard copies the status under its lock (with the forwarding
	// table chased for migrated jobs); the write to the network happens after
	// release: a slow client must never block a loop.
	st, known := s.jobStatus(id)
	if !known {
		writeError(w, http.StatusNotFound, model.WireError{
			Code: model.ErrCodeNotFound, Message: fmt.Sprintf("no job %d", id)})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleTenants serves the per-tenant weighted-flow accounting, merged
// across every shard (retired ones included) plus the router's shed counts.
func (s *Server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.TenantStats())
}

// handlePlatform is the live re-sharding admin API: it accepts the same
// platform JSON the daemon was started with (machines plus the optional
// "shards" override) and repartitions the running fleet against it.
func (s *Server) handlePlatform(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPlatformBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, invalidArg(err))
		return
	}
	plat, err := model.ParsePlatformConfig(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, invalidArg(err))
		return
	}
	resp, err := s.Reshard(plat)
	if err != nil {
		status := http.StatusUnprocessableEntity
		we := model.WireError{Code: model.ErrCodeInvalidArgument, Message: err.Error()}
		switch {
		case errors.Is(err, ErrReshardDisabled):
			status = http.StatusForbidden
			we.Code = model.ErrCodeReshardDisabled
		case errors.Is(err, ErrClosed):
			status = http.StatusServiceUnavailable
			we.Code = model.ErrCodeFleetClosed
			we.RetryAfter = retryAfterSeconds
		case errors.Is(err, errWALDegraded):
			status = http.StatusServiceUnavailable
			we.Code = model.ErrCodeWALDegraded
		}
		writeError(w, status, we)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var since *big.Rat
	if q := r.URL.Query().Get("since"); q != "" {
		t, ok := new(big.Rat).SetString(q)
		if !ok {
			writeError(w, http.StatusBadRequest, invalidArg(fmt.Errorf("bad since %q: want a rational like 3/2", q)))
			return
		}
		since = t
	}
	// Each shard deep-copies its window under its own lock; the merge and
	// the serialization run lock-free. Retired shards contribute the pieces
	// executed before their generation ended, so the merged Gantt stays the
	// whole execution history across reshards.
	var merged []schedule.Piece
	now := new(big.Rat)
	makespan := new(big.Rat) // of the whole execution, not the window
	for _, sh := range s.allShards() {
		rep, err := sh.link.Schedule(shardlink.ScheduleArgs{Since: since})
		if err != nil {
			// A shard whose transport failed contributes nothing: the merged
			// view degrades to the reachable fleet rather than erroring.
			continue
		}
		merged = append(merged, rep.Pieces...)
		if rep.Now != nil && rep.Now.Cmp(now) > 0 {
			now = rep.Now
		}
		if rep.Makespan != nil && rep.Makespan.Cmp(makespan) > 0 {
			makespan = rep.Makespan
		}
	}
	// Each shard's trace is already start-ordered; a stable sort interleaves
	// the shards without disturbing per-shard (and single-shard) order.
	sort.SliceStable(merged, func(a, b int) bool {
		if c := merged[a].Start.Cmp(merged[b].Start); c != 0 {
			return c < 0
		}
		return merged[a].Machine < merged[b].Machine
	})
	raw, err := json.Marshal(&schedule.Schedule{Pieces: merged})
	if err != nil {
		writeError(w, http.StatusInternalServerError, model.WireError{Code: model.ErrCodeInternal, Message: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, model.ScheduleResponse{
		Now:      now.RatString(),
		Makespan: makespan.RatString(),
		Schedule: raw,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleHealth is the liveness/readiness probe: 200 while every active shard
// is healthy, 503 naming the stalled shards. It reuses the latched-error
// state the router reads (routeInfo takes only backlogMu), so a probe never
// waits behind an in-flight exact solve. Retired shards are history, not
// health; they are not consulted.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := model.HealthResponse{Status: "ok"}
	for _, sh := range s.active() {
		ri, err := sh.link.RouteInfo(shardlink.RouteInfoArgs{})
		if err != nil {
			// An unreachable worker shard is as stalled as a latched one.
			resp.StalledShards = append(resp.StalledShards, sh.idx)
			resp.Errors = append(resp.Errors, err.Error())
			continue
		}
		if ri.Err != "" {
			resp.StalledShards = append(resp.StalledShards, sh.idx)
			resp.Errors = append(resp.Errors, ri.Err)
		}
	}
	if err := s.dur.latchedErr(); err != nil {
		// Frozen durability degrades the probe but does not fail it: the
		// scheduler is still serving, only crash recovery is gone.
		resp.Status = "degraded"
		resp.WALError = err.Error()
	}
	if len(resp.StalledShards) > 0 {
		resp.Status = "stalled"
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleEvents pages through the event journal: ?since= resumes from a
// cursor (the next field of the previous response), ?type= and ?shard=
// filter, ?limit= bounds the page.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since int64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, invalidArg(fmt.Errorf("bad since %q: want a non-negative integer", v)))
			return
		}
		since = n
	}
	f := obs.Filter{Type: q.Get("type"), Shard: -1}
	if v := q.Get("shard"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, invalidArg(fmt.Errorf("bad shard %q: want a non-negative integer", v)))
			return
		}
		f.Shard = n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, invalidArg(fmt.Errorf("bad limit %q: want a positive integer", v)))
			return
		}
		f.Limit = n
	}
	events, next, dropped := s.tel.journal.Since(since, f)
	if events == nil {
		events = []obs.Event{}
	}
	writeJSON(w, http.StatusOK, model.EventsResponse{Events: events, Next: next, Dropped: dropped})
}

// Stats merges the per-shard counters into fleet-wide aggregates plus the
// per-shard breakdown. Retired shards stay in the breakdown (marked
// retired): their counters are history the aggregates must keep.
func (s *Server) Stats() model.StatsResponse {
	s.topoMu.RLock()
	shardList := append([]*shard(nil), s.all...)
	generationNum := len(s.gens) - 1
	reshardEvents := s.reshards
	activeCount := len(s.gens[len(s.gens)-1].shards)
	s.topoMu.RUnlock()
	resp := model.StatsResponse{
		Policy:        s.policyName,
		ShardCount:    activeCount,
		Generation:    generationNum,
		ReshardEvents: reshardEvents,
	}
	if s.dur != nil {
		appends, snapshots, replayed, walErr := s.dur.counters()
		w := &model.WALStats{Appends: appends, Snapshots: snapshots, Replayed: replayed}
		if walErr != nil {
			w.Error = walErr.Error()
		}
		resp.WAL = w
	}
	now := new(big.Rat)
	var solver stats.SolverTally
	flowSum := new(big.Rat)
	var maxWF, maxStretch *big.Rat
	var flowAll obs.HistogramSnapshot
	doneCount := 0
	for _, sh := range shardList {
		// Every per-shard snapshot crosses the shardlink boundary — the
		// in-process transport serves it under the shard's lock exactly as
		// before, a worker shard over its RPC connection. A shard whose
		// transport fails is omitted from this response rather than failing
		// the whole read.
		snap, err := sh.link.Stats(shardlink.StatsArgs{})
		if err != nil {
			continue
		}
		resp.Shards = append(resp.Shards, snap.Wire)
		resp.JobsAccepted += snap.Wire.JobsAccepted
		resp.JobsLive += snap.Wire.JobsLive
		resp.JobsCompleted += snap.Wire.JobsCompleted
		resp.Events += snap.Wire.Events
		resp.LPSolves += snap.Wire.LPSolves
		resp.PlanCacheHits += snap.Wire.PlanCacheHits
		resp.ArrivalBatches += snap.Wire.ArrivalBatches
		resp.BatchedArrivals += snap.Wire.BatchedArrivals
		resp.CompactedJobs += snap.Wire.CompactedJobs
		resp.StolenJobs += snap.Wire.StolenJobs
		resp.Migrations += snap.Wire.Migrations
		resp.ReshardedJobs += snap.Wire.ReshardedIn
		if snap.Wire.LargestBatch > resp.LargestBatch {
			resp.LargestBatch = snap.Wire.LargestBatch
		}
		// A retired shard's latched error is history, not service health: its
		// jobs were migrated to live shards by the reshard that retired it.
		if snap.Wire.Stalled && !snap.Wire.Retired {
			resp.Stalled = true
		}
		if resp.LastError == "" && !snap.Wire.Retired {
			resp.LastError = snap.Wire.LastError
		}
		if snap.Now != nil && snap.Now.Cmp(now) > 0 {
			now = snap.Now
		}
		solver.Merge(snap.Wire.Solver)
		doneCount += snap.DoneCount
		flowSum.Add(flowSum, snap.FlowSum)
		if snap.MaxWF != nil && (maxWF == nil || snap.MaxWF.Cmp(maxWF) > 0) {
			maxWF = snap.MaxWF
		}
		if snap.MaxStretch != nil && (maxStretch == nil || snap.MaxStretch.Cmp(maxStretch) > 0) {
			maxStretch = snap.MaxStretch
		}
		flowAll.Merge(snap.Flow)
	}
	resp.Now = now.RatString()
	resp.Solver = solver
	if doneCount > 0 {
		resp.MaxWeightedFlow = maxWF.RatString()
		resp.MaxStretch = maxStretch.RatString()
		mean := new(big.Rat).Quo(flowSum, big.NewRat(int64(doneCount), 1))
		resp.MeanFlow, _ = mean.Float64()
		// The same bucket counts /metrics exports, the same estimator
		// Prometheus's histogram_quantile applies to them: the two surfaces
		// cannot disagree on the P95.
		resp.P95Flow = flowAll.Quantile(95)
	}
	return resp
}
