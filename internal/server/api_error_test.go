package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"divflow/internal/faults"
	"divflow/internal/model"
)

// apiCall issues one request against the test server and returns the status,
// headers, and decoded error envelope (zero-valued for 2xx answers).
func apiCall(t *testing.T, ts *httptest.Server, method, path, body string) (int, http.Header, model.ErrorResponse) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rdr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env model.ErrorResponse
	if resp.StatusCode >= 400 {
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("%s %s: non-2xx body is not the error envelope: %v\n%s", method, path, err, raw)
		}
		if env.Error.Code == "" {
			t.Fatalf("%s %s: error envelope has no code: %s", method, path, raw)
		}
	}
	return resp.StatusCode, resp.Header, env
}

// TestErrorEnvelopeTable pins the HTTP status and typed error code of every
// error path reachable on a healthy fleet: the versioned envelope
// {"error":{"code","message",...}} is the v1 error contract.
func TestErrorEnvelopeTable(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: testFleet(), Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"submit malformed JSON", "POST", "/v1/jobs", `{`, 400, model.ErrCodeInvalidArgument},
		{"submit zero size", "POST", "/v1/jobs", `{"size":"0"}`, 422, model.ErrCodeInvalidArgument},
		{"submit malformed rational", "POST", "/v1/jobs", `{"size":"fast"}`, 422, model.ErrCodeInvalidArgument},
		{"submit unknown databank", "POST", "/v1/jobs", `{"size":"1","databanks":["nosuch"]}`, 422, model.ErrCodeInvalidArgument},
		{"submit unknown slaClass", "POST", "/v1/jobs", `{"size":"1","slaClass":"platinum"}`, 422, model.ErrCodeInvalidArgument},
		{"submit negative deadline", "POST", "/v1/jobs", `{"size":"1","deadline":"-2"}`, 422, model.ErrCodeInvalidArgument},
		{"submit infeasible deadline", "POST", "/v1/jobs",
			`{"size":"9","deadline":"1","databanks":["swissprot"]}`, 422, model.ErrCodeDeadlineInfeasible},
		{"batch with no jobs", "POST", "/v1/jobs", `{"jobs":[]}`, 400, model.ErrCodeInvalidArgument},
		{"job id not a number", "GET", "/v1/jobs/abc", "", 404, model.ErrCodeNotFound},
		{"job never issued", "GET", "/v1/jobs/99", "", 404, model.ErrCodeNotFound},
		{"schedule bad since", "GET", "/v1/schedule?since=bogus", "", 400, model.ErrCodeInvalidArgument},
		{"events bad since", "GET", "/v1/events?since=-1", "", 400, model.ErrCodeInvalidArgument},
		{"events bad shard", "GET", "/v1/events?shard=x", "", 400, model.ErrCodeInvalidArgument},
		{"events bad limit", "GET", "/v1/events?limit=0", "", 400, model.ErrCodeInvalidArgument},
		{"platform malformed JSON", "POST", "/v1/platform", `{`, 400, model.ErrCodeInvalidArgument},
		{"platform with no machines", "POST", "/v1/platform", `{"machines":[]}`, 400, model.ErrCodeInvalidArgument},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, env := apiCall(t, ts, tc.method, tc.path, tc.body)
			if status != tc.wantStatus || env.Error.Code != tc.wantCode {
				t.Errorf("%s %s = %d %q, want %d %q (message %q)",
					tc.method, tc.path, status, env.Error.Code, tc.wantStatus, tc.wantCode, env.Error.Message)
			}
		})
	}

	// The deadline_infeasible envelope must carry the exact certificate with
	// the counter-offer a client can resubmit.
	status, _, env := apiCall(t, ts, "POST", "/v1/jobs", `{"size":"9","deadline":"1","databanks":["swissprot"]}`)
	if status != 422 || env.Error.Admission == nil {
		t.Fatalf("infeasible submit = %d admission %+v, want 422 with a certificate", status, env.Error.Admission)
	}
	cert := env.Error.Admission
	if cert.Feasible || cert.Mode != AdmissionStrict || cert.Deadline != "1" || cert.CounterOffer == "" {
		t.Errorf("reject certificate = %+v, want strict infeasible with a counter-offer", cert)
	}
}

// TestErrorEnvelopeClosedFleet pins the fleet_closed responses: a drained
// server answers 503 with a Retry-After hint on both the submit and the
// reshard surfaces.
func TestErrorEnvelopeClosedFleet(t *testing.T) {
	srv, err := New(Config{Machines: testFleet(), Clock: NewVirtualClock()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Close()

	status, hdr, env := apiCall(t, ts, "POST", "/v1/jobs", `{"size":"1","databanks":["swissprot"]}`)
	if status != 503 || env.Error.Code != model.ErrCodeFleetClosed {
		t.Errorf("submit on closed fleet = %d %q, want 503 fleet_closed", status, env.Error.Code)
	}
	if hdr.Get("Retry-After") == "" || env.Error.RetryAfter <= 0 {
		t.Errorf("closed-fleet reject carries no retry hint: header %q, body %d",
			hdr.Get("Retry-After"), env.Error.RetryAfter)
	}
	status, _, env = apiCall(t, ts, "POST", "/v1/platform",
		`{"machines":[{"name":"m","inverseSpeed":"1","databanks":["swissprot"]}]}`)
	if status != 503 || env.Error.Code != model.ErrCodeFleetClosed {
		t.Errorf("reshard on closed fleet = %d %q, want 503 fleet_closed", status, env.Error.Code)
	}
}

// TestErrorEnvelopeReshardDisabled pins the reshard_disabled response of a
// -reshard=false server.
func TestErrorEnvelopeReshardDisabled(t *testing.T) {
	srv, err := New(Config{Machines: testFleet(), Clock: NewVirtualClock(), DisableReshard: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, _, env := apiCall(t, ts, "POST", "/v1/platform",
		`{"machines":[{"name":"m","inverseSpeed":"1","databanks":["swissprot"]}]}`)
	if status != 403 || env.Error.Code != model.ErrCodeReshardDisabled {
		t.Errorf("reshard = %d %q, want 403 reshard_disabled", status, env.Error.Code)
	}
}

// TestErrorEnvelopeWALDegraded pins the wal_degraded refusal: once durability
// latches, a topology change the log cannot record is refused with 503 —
// restore would otherwise replay the suffix onto the wrong topology.
func TestErrorEnvelopeWALDegraded(t *testing.T) {
	t.Cleanup(faults.Reset)
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: testFleet(), Clock: vc, WALDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	faults.Arm(faults.WALAppend, 0)
	if _, err := srv.Submit(&model.SubmitRequest{Size: "4", Databanks: []string{"swissprot"}}); err != nil {
		t.Fatal(err) // scheduling survives the latch; only durability froze
	}
	status, _, env := apiCall(t, ts, "POST", "/v1/platform",
		`{"machines":[{"name":"m","inverseSpeed":"1","databanks":["swissprot"]}]}`)
	if status != 503 || env.Error.Code != model.ErrCodeWALDegraded {
		t.Errorf("reshard with latched WAL = %d %q, want 503 wal_degraded", status, env.Error.Code)
	}
}

// TestBatchSubmitMixedResults pins the batch form of POST /v1/jobs: per-job
// results in request order, typed per-job rejections, 202 while at least one
// job is accepted and 422 when none is.
func TestBatchSubmitMixedResults(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: testFleet(), Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"jobs":[
		{"name":"ok","size":"2","databanks":["swissprot"]},
		{"size":"0"},
		{"name":"ok2","size":"1","databanks":["pdb"]}
	]}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("mixed batch = %d, want 202", resp.StatusCode)
	}
	var out model.BatchSubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3 in request order", len(out.Results))
	}
	if out.Results[0].Error != nil || out.Results[2].Error != nil {
		t.Errorf("valid jobs rejected: %+v / %+v", out.Results[0].Error, out.Results[2].Error)
	}
	if out.Results[1].Error == nil || out.Results[1].Error.Code != model.ErrCodeInvalidArgument {
		t.Errorf("result 1 = %+v, want invalid_argument", out.Results[1].Error)
	}
	if out.Results[0].ID == out.Results[2].ID {
		t.Errorf("accepted jobs share ID %d", out.Results[0].ID)
	}
	// Both accepted jobs must resolve.
	for _, i := range []int{0, 2} {
		if _, known := srv.jobStatus(out.Results[i].ID); !known {
			t.Errorf("batch-accepted job %d does not resolve", out.Results[i].ID)
		}
	}

	// All-rejected batch: 422, every per-job result a typed envelope (the
	// body stays the results form, not a top-level error).
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"jobs":[{"size":"0"},{"size":"-1"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var rejected model.BatchSubmitResponse
	if err := json.NewDecoder(resp2.Body).Decode(&rejected); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusUnprocessableEntity || len(rejected.Results) != 2 {
		t.Errorf("all-rejected batch = %d with %d results, want 422 with 2", resp2.StatusCode, len(rejected.Results))
	}
	for i, r := range rejected.Results {
		if r.Error == nil || r.Error.Code != model.ErrCodeInvalidArgument {
			t.Errorf("rejected result %d = %+v, want invalid_argument", i, r.Error)
		}
	}
}

// TestBatchSubmitSingleArrivalBatch pins the batch-admission guarantee: a
// batch posted before the loops start is admitted as ONE arrival batch on the
// virtual clock — one exact re-solve for the whole batch.
func TestBatchSubmitSingleArrivalBatch(t *testing.T) {
	const n = 8
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: testFleet(), Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var req model.BatchSubmitRequest
	for i := 0; i < n; i++ {
		req.Jobs = append(req.Jobs, model.SubmitRequest{Size: "2", Databanks: []string{"swissprot"}})
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var out model.BatchSubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || len(out.Results) != n {
		t.Fatalf("batch = %d with %d results, want 202 with %d", resp.StatusCode, len(out.Results), n)
	}
	srv.Start()
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == n })
	st := srv.Stats()
	if st.ArrivalBatches != 1 || st.LargestBatch != n {
		t.Errorf("arrivalBatches=%d largestBatch=%d, want one batch of %d",
			st.ArrivalBatches, st.LargestBatch, n)
	}
}
