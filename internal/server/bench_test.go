package server

import (
	"fmt"
	"runtime"
	"testing"

	"divflow/internal/model"
)

// benchFleetSize and benchJobs shape the throughput benchmark: a uniform
// fleet (so the shard count is a free parameter) under a CPU-bound burst of
// exact solves. The burst arrives before the loops start, so every shard
// admits its whole share as one batch and solves one residual LP over it:
// the benchmark isolates how sharding shrinks the superlinear LP cost
// (P shards solve P concurrent LPs of ~jobs/P jobs each).
const (
	benchFleetSize = 4
	benchJobs      = 48
)

// BenchmarkServerStealImbalance measures the work-stealing win on an
// adversarially imbalanced workload: the whole burst is submitted directly
// onto shard 0 (bypassing the router, as a skewed routing history would),
// leaving shard 1 idle. With -steal=off the run is bounded by the hot
// shard grinding through everything alone; with stealing on the idle shard
// migrates half the queue (exact remaining fractions, original IDs) and the
// two shards drain it together. Recorded as BENCH_server.json via
// cmd/benchjson (scripts/bench.sh).
func BenchmarkServerStealImbalance(b *testing.B) {
	for _, steal := range []bool{true, false} {
		name := "steal=on"
		if !steal {
			name = "steal=off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				machines := make([]model.Machine, benchFleetSize)
				for m := range machines {
					machines[m] = model.Machine{
						Name:         fmt.Sprintf("u%d", m),
						InverseSpeed: rat(1, int64(1+m%2)),
						Databanks:    []string{"shared"},
					}
				}
				vc := NewVirtualClock()
				srv, err := New(Config{Machines: machines, Shards: 2, Clock: vc, DisableSteal: !steal})
				if err != nil {
					b.Fatal(err)
				}
				hot := srv.shards[0]
				jobs := make([]model.Job, benchJobs)
				for j := range jobs {
					req := model.SubmitRequest{
						Size:      fmt.Sprintf("%d", 1+(j*7)%13),
						Weight:    fmt.Sprintf("%d", 1+j%3),
						Databanks: []string{"shared"},
					}
					if jobs[j], err = req.Job(); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				for j := range jobs {
					if _, err := hot.submit(jobs[j]); err != nil {
						b.Fatal(err)
					}
				}
				srv.Start()
				for {
					st := srv.Stats()
					if st.LastError != "" {
						b.Fatal(st.LastError)
					}
					if st.JobsCompleted == benchJobs {
						break
					}
					if !vc.AdvanceToNextTimer() {
						runtime.Gosched()
					}
				}
				b.StopTimer()
				if steal {
					if st := srv.Stats(); st.StolenJobs == 0 {
						b.Fatal("imbalanced run with stealing on migrated nothing")
					}
				}
				srv.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(benchJobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkServerThroughput measures end-to-end virtual-clock throughput of
// the sharded service under the default exact policy (online-mwf-lazy) for
// P = 1, 2, 4 shards. Recorded as BENCH_server.json via cmd/benchjson
// (scripts/bench.sh).
func BenchmarkServerThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				machines := make([]model.Machine, benchFleetSize)
				for m := range machines {
					machines[m] = model.Machine{
						Name:         fmt.Sprintf("u%d", m),
						InverseSpeed: rat(1, int64(1+m%2)),
						Databanks:    []string{"shared"},
					}
				}
				vc := NewVirtualClock()
				srv, err := New(Config{Machines: machines, Shards: shards, Clock: vc})
				if err != nil {
					b.Fatal(err)
				}
				reqs := make([]model.SubmitRequest, benchJobs)
				for j := range reqs {
					reqs[j] = model.SubmitRequest{
						Size:      fmt.Sprintf("%d", 1+(j*7)%13),
						Weight:    fmt.Sprintf("%d", 1+j%3),
						Databanks: []string{"shared"},
					}
				}
				b.StartTimer()
				for j := range reqs {
					if _, err := srv.Submit(&reqs[j]); err != nil {
						b.Fatal(err)
					}
				}
				srv.Start()
				for {
					st := srv.Stats()
					if st.LastError != "" {
						b.Fatal(st.LastError)
					}
					if st.JobsCompleted == benchJobs {
						break
					}
					if !vc.AdvanceToNextTimer() {
						runtime.Gosched()
					}
				}
				b.StopTimer()
				srv.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(benchJobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}
