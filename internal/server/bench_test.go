package server

import (
	"fmt"
	"math/big"
	"os"
	"runtime"
	"testing"

	"divflow/internal/model"
	"divflow/internal/shardlink"
)

// benchFleetSize and benchJobs shape the throughput benchmark: a uniform
// fleet (so the shard count is a free parameter) under a CPU-bound burst of
// exact solves. The burst arrives before the loops start, so every shard
// admits its whole share as one batch and solves one residual LP over it:
// the benchmark isolates how sharding shrinks the superlinear LP cost
// (P shards solve P concurrent LPs of ~jobs/P jobs each).
const (
	benchFleetSize = 4
	benchJobs      = 48
)

// BenchmarkServerStealImbalance measures the work-stealing win on an
// adversarially imbalanced workload: the whole burst is submitted directly
// onto shard 0 (bypassing the router, as a skewed routing history would),
// leaving shard 1 idle. With -steal=off the run is bounded by the hot
// shard grinding through everything alone; with stealing on the idle shard
// migrates half the queue (exact remaining fractions, original IDs) and the
// two shards drain it together. Recorded as BENCH_server.json via
// cmd/benchjson (scripts/bench.sh).
func BenchmarkServerStealImbalance(b *testing.B) {
	for _, steal := range []bool{true, false} {
		name := "steal=on"
		if !steal {
			name = "steal=off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				machines := make([]model.Machine, benchFleetSize)
				for m := range machines {
					machines[m] = model.Machine{
						Name:         fmt.Sprintf("u%d", m),
						InverseSpeed: rat(1, int64(1+m%2)),
						Databanks:    []string{"shared"},
					}
				}
				vc := NewVirtualClock()
				srv, err := New(Config{Machines: machines, Shards: 2, Clock: vc, DisableSteal: !steal})
				if err != nil {
					b.Fatal(err)
				}
				hot := srv.active()[0]
				jobs := make([]model.Job, benchJobs)
				for j := range jobs {
					req := model.SubmitRequest{
						Size:      fmt.Sprintf("%d", 1+(j*7)%13),
						Weight:    fmt.Sprintf("%d", 1+j%3),
						Databanks: []string{"shared"},
					}
					if jobs[j], err = req.Job(); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				for j := range jobs {
					if _, _, err := hot.submit(jobs[j]); err != nil {
						b.Fatal(err)
					}
				}
				srv.Start()
				for {
					st := srv.Stats()
					if st.LastError != "" {
						b.Fatal(st.LastError)
					}
					if st.JobsCompleted == benchJobs {
						break
					}
					if !vc.AdvanceToNextTimer() {
						runtime.Gosched()
					}
				}
				b.StopTimer()
				if steal {
					if st := srv.Stats(); st.StolenJobs == 0 {
						b.Fatal("imbalanced run with stealing on migrated nothing")
					}
				}
				srv.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(benchJobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkServerReshard measures the live re-sharding win on the workload
// shape the feature exists for: a structural, databank-constrained imbalance
// that work stealing cannot touch. Two machines host bankA, two host bankB;
// nearly the whole burst needs bankA, so the bankB island drains its few
// jobs and then sits idle — it cannot steal bankA work it cannot host. Mid-
// burst, a replication event (the bankB machines gain bankA) is applied with
// Reshard: the partition collapses to one four-machine shard, the unfinished
// bankA jobs migrate with their exact remaining fractions, and the formerly
// idle half of the fleet joins in. The static arm never learns about the
// replication and grinds the burst out on two machines.
//
// Two metrics matter and they pull apart on a virtual clock. vclock-makespan
// is the service-level win: the virtual time at which the burst finishes —
// re-sharding roughly halves it, because half the fleet stops idling.
// jobs/s is the solver-side cost of that win: wall-clock simulation
// throughput, which pays for the merged shard's larger LPs (4 machines × a
// migrated live set with non-unit remaining fractions). A real deployment
// experiences the makespan axis; the wall-clock axis prices the extra exact
// solving the repartition buys it with. Recorded as BENCH_server.json via
// cmd/benchjson (scripts/bench.sh).
func BenchmarkServerReshard(b *testing.B) {
	fleet := func(replicated bool) []model.Machine {
		machines := make([]model.Machine, benchFleetSize)
		for m := range machines {
			banks := []string{"bankA"}
			if m >= benchFleetSize/2 {
				banks = []string{"bankB"}
				if replicated {
					banks = []string{"bankB", "bankA"}
				}
			}
			machines[m] = model.Machine{
				Name:         fmt.Sprintf("u%d", m),
				InverseSpeed: rat(1, int64(1+m%2)),
				Databanks:    banks,
			}
		}
		return machines
	}
	for _, reshard := range []bool{true, false} {
		name := "reshard=mid"
		if !reshard {
			name = "static"
		}
		b.Run(name, func(b *testing.B) {
			makespanSum := 0.0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				vc := NewVirtualClock()
				srv, err := New(Config{Machines: fleet(false), Clock: vc})
				if err != nil {
					b.Fatal(err)
				}
				if srv.ShardCount() != 2 {
					b.Fatalf("island fleet partitioned into %d shards, want 2", srv.ShardCount())
				}
				reqs := make([]model.SubmitRequest, benchJobs)
				for j := range reqs {
					bank := "bankA"
					if j%(benchJobs/4) == 0 {
						bank = "bankB" // a few jobs keep the B island defined
					}
					reqs[j] = model.SubmitRequest{
						Size:      fmt.Sprintf("%d", 1+(j*7)%13),
						Weight:    fmt.Sprintf("%d", 1+j%3),
						Databanks: []string{bank},
					}
				}
				b.StartTimer()
				for j := range reqs {
					if _, err := srv.Submit(&reqs[j]); err != nil {
						b.Fatal(err)
					}
				}
				srv.Start()
				resharded := false
				for {
					st := srv.Stats()
					if st.LastError != "" {
						b.Fatal(st.LastError)
					}
					if st.JobsCompleted == benchJobs {
						break
					}
					if reshard && !resharded && st.JobsCompleted >= benchJobs/4 {
						resharded = true
						if _, err := srv.Reshard(&model.Platform{Machines: fleet(true)}); err != nil {
							b.Fatal(err)
						}
					}
					if !vc.AdvanceToNextTimer() {
						runtime.Gosched()
					}
				}
				b.StopTimer()
				if reshard {
					if st := srv.Stats(); st.ReshardEvents != 1 || st.ReshardedJobs == 0 {
						b.Fatalf("mid-burst run resharded %d times, migrated %d jobs", st.ReshardEvents, st.ReshardedJobs)
					}
				}
				// The virtual time the whole burst took: the fleet-level
				// outcome a deployment would feel. Max over every shard,
				// retired islands included.
				ms := new(big.Rat)
				for _, sh := range srv.allShards() {
					sh.mu.Lock()
					if m := sh.makespan(); m.Cmp(ms) > 0 {
						ms = m
					}
					sh.mu.Unlock()
				}
				msf, _ := ms.Float64()
				makespanSum += msf
				srv.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(benchJobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
			b.ReportMetric(makespanSum/float64(b.N), "vclock-makespan")
		})
	}
}

// BenchmarkServerThroughputObserved prices the telemetry layer: the same
// 48-job burst as BenchmarkServerThroughput (P=2), once with the default
// instrumentation (journal appends, latency histograms, scrape-time
// registry) and once with -metrics=false. The two jobs/s numbers bound the
// observability overhead on the hottest path; the instrumented arm must
// stay within a few percent of the kill-switch arm. Recorded as
// BENCH_server.json via cmd/benchjson (scripts/bench.sh).
func BenchmarkServerThroughputObserved(b *testing.B) {
	for _, instrumented := range []bool{true, false} {
		name := "obs=on"
		if !instrumented {
			name = "obs=off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				machines := make([]model.Machine, benchFleetSize)
				for m := range machines {
					machines[m] = model.Machine{
						Name:         fmt.Sprintf("u%d", m),
						InverseSpeed: rat(1, int64(1+m%2)),
						Databanks:    []string{"shared"},
					}
				}
				vc := NewVirtualClock()
				srv, err := New(Config{Machines: machines, Shards: 2, Clock: vc, DisableObs: !instrumented})
				if err != nil {
					b.Fatal(err)
				}
				reqs := make([]model.SubmitRequest, benchJobs)
				for j := range reqs {
					reqs[j] = model.SubmitRequest{
						Size:      fmt.Sprintf("%d", 1+(j*7)%13),
						Weight:    fmt.Sprintf("%d", 1+j%3),
						Databanks: []string{"shared"},
					}
				}
				b.StartTimer()
				for j := range reqs {
					if _, err := srv.Submit(&reqs[j]); err != nil {
						b.Fatal(err)
					}
				}
				srv.Start()
				for {
					st := srv.Stats()
					if st.LastError != "" {
						b.Fatal(st.LastError)
					}
					if st.JobsCompleted == benchJobs {
						break
					}
					if !vc.AdvanceToNextTimer() {
						runtime.Gosched()
					}
				}
				b.StopTimer()
				if instrumented {
					if n := srv.tel.journal.NextSeq(); n == 0 {
						b.Fatal("instrumented run journaled nothing")
					}
				}
				srv.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(benchJobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkServerThroughputWAL prices the durability layer: the same 48-job
// burst as BenchmarkServerThroughput (P=2), once with the write-ahead log on
// (no fsync — the daemon's default durability mode) and once fully in
// memory. Every submission, admission batch, and completion appends one
// framed record, so the pair bounds the WAL overhead on the hottest path;
// the durable arm must stay within ~15% of the in-memory arm. Recorded as
// BENCH_server.json via cmd/benchjson (scripts/bench.sh).
// benchWALDir returns a fresh log directory for one durable benchmark
// iteration, on tmpfs when the host has one. Without -fsync the WAL never
// waits for the disk — durability is bounded by the OS page cache — so the
// pair should price the append path itself, not whatever writeback storms
// the rest of the benchmark suite has queued up on the test disk.
func benchWALDir(b *testing.B) string {
	if st, err := os.Stat("/dev/shm"); err == nil && st.IsDir() {
		dir, err := os.MkdirTemp("/dev/shm", "divflow-bench-wal-")
		if err == nil {
			b.Cleanup(func() { os.RemoveAll(dir) })
			return dir
		}
	}
	return b.TempDir()
}

func BenchmarkServerThroughputWAL(b *testing.B) {
	for _, durable := range []bool{true, false} {
		name := "wal=on"
		if !durable {
			name = "wal=off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				machines := make([]model.Machine, benchFleetSize)
				for m := range machines {
					machines[m] = model.Machine{
						Name:         fmt.Sprintf("u%d", m),
						InverseSpeed: rat(1, int64(1+m%2)),
						Databanks:    []string{"shared"},
					}
				}
				cfg := Config{Machines: machines, Shards: 2, Clock: NewVirtualClock()}
				if durable {
					cfg.WALDir = benchWALDir(b)
				}
				vc := cfg.Clock.(*VirtualClock)
				srv, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				reqs := make([]model.SubmitRequest, benchJobs)
				for j := range reqs {
					reqs[j] = model.SubmitRequest{
						Size:      fmt.Sprintf("%d", 1+(j*7)%13),
						Weight:    fmt.Sprintf("%d", 1+j%3),
						Databanks: []string{"shared"},
					}
				}
				b.StartTimer()
				for j := range reqs {
					if _, err := srv.Submit(&reqs[j]); err != nil {
						b.Fatal(err)
					}
				}
				srv.Start()
				for {
					st := srv.Stats()
					if st.LastError != "" {
						b.Fatal(st.LastError)
					}
					if st.JobsCompleted == benchJobs {
						break
					}
					if !vc.AdvanceToNextTimer() {
						runtime.Gosched()
					}
				}
				b.StopTimer()
				if durable {
					st := srv.Stats()
					if st.WAL == nil || st.WAL.Error != "" || st.WAL.Appends == 0 {
						b.Fatalf("durable run WAL stats = %+v", st.WAL)
					}
				}
				srv.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(benchJobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkServerAdmissionDeadline prices deadline admission control: the
// same 48-job burst as BenchmarkServerThroughput (P=2) with every job
// carrying a (generously feasible) deadline, once under -admission=strict —
// every submission runs the exact feasibility LP against the shard's residual
// workload, deadlines accumulating into later checks — and once with
// -admission=off, which skips the solve entirely. The gap is the per-submit
// cost of the admission certificate. Recorded as BENCH_server.json via
// cmd/benchjson (scripts/bench.sh).
func BenchmarkServerAdmissionDeadline(b *testing.B) {
	for _, mode := range []string{AdmissionStrict, AdmissionOff} {
		b.Run("admission="+mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				machines := make([]model.Machine, benchFleetSize)
				for m := range machines {
					machines[m] = model.Machine{
						Name:         fmt.Sprintf("u%d", m),
						InverseSpeed: rat(1, int64(1+m%2)),
						Databanks:    []string{"shared"},
					}
				}
				vc := NewVirtualClock()
				srv, err := New(Config{Machines: machines, Shards: 2, Clock: vc, Admission: mode})
				if err != nil {
					b.Fatal(err)
				}
				reqs := make([]model.SubmitRequest, benchJobs)
				for j := range reqs {
					reqs[j] = model.SubmitRequest{
						Size:      fmt.Sprintf("%d", 1+(j*7)%13),
						Weight:    fmt.Sprintf("%d", 1+j%3),
						Deadline:  "10000",
						Databanks: []string{"shared"},
					}
				}
				b.StartTimer()
				for j := range reqs {
					resp, err := srv.Submit(&reqs[j])
					if err != nil {
						b.Fatal(err)
					}
					if (mode == AdmissionStrict) != (resp.Admission != nil) {
						b.Fatalf("admission=%s submit returned certificate %+v", mode, resp.Admission)
					}
				}
				srv.Start()
				for {
					st := srv.Stats()
					if st.LastError != "" {
						b.Fatal(st.LastError)
					}
					if st.JobsCompleted == benchJobs {
						break
					}
					if !vc.AdvanceToNextTimer() {
						runtime.Gosched()
					}
				}
				b.StopTimer()
				srv.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(benchJobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkServerThroughput measures end-to-end virtual-clock throughput of
// the sharded service under the default exact policy (online-mwf-lazy) for
// P = 1, 2, 4 shards. Recorded as BENCH_server.json via cmd/benchjson
// (scripts/bench.sh).
func BenchmarkServerThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				machines := make([]model.Machine, benchFleetSize)
				for m := range machines {
					machines[m] = model.Machine{
						Name:         fmt.Sprintf("u%d", m),
						InverseSpeed: rat(1, int64(1+m%2)),
						Databanks:    []string{"shared"},
					}
				}
				vc := NewVirtualClock()
				srv, err := New(Config{Machines: machines, Shards: shards, Clock: vc})
				if err != nil {
					b.Fatal(err)
				}
				reqs := make([]model.SubmitRequest, benchJobs)
				for j := range reqs {
					reqs[j] = model.SubmitRequest{
						Size:      fmt.Sprintf("%d", 1+(j*7)%13),
						Weight:    fmt.Sprintf("%d", 1+j%3),
						Databanks: []string{"shared"},
					}
				}
				b.StartTimer()
				for j := range reqs {
					if _, err := srv.Submit(&reqs[j]); err != nil {
						b.Fatal(err)
					}
				}
				srv.Start()
				for {
					st := srv.Stats()
					if st.LastError != "" {
						b.Fatal(st.LastError)
					}
					if st.JobsCompleted == benchJobs {
						break
					}
					if !vc.AdvanceToNextTimer() {
						runtime.Gosched()
					}
				}
				b.StopTimer()
				srv.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(benchJobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkServerThroughputTransport prices the shardlink boundary: the same
// 48-job burst as BenchmarkServerThroughput (P=2), once over the in-process
// transport (direct handler calls under the shard mu) and once over the
// loopback net/rpc transport (every operation gob-encoded through a net.Pipe
// and dispatched by the rpc server). The gap is the per-operation cost of
// message-passing shards — what a distributed fleet pays before any real
// network latency. Recorded as BENCH_server.json via cmd/benchjson
// (scripts/bench.sh).
func BenchmarkServerThroughputTransport(b *testing.B) {
	for _, tr := range []string{shardlink.TransportInproc, shardlink.TransportRPC} {
		b.Run("transport="+tr, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				machines := make([]model.Machine, benchFleetSize)
				for m := range machines {
					machines[m] = model.Machine{
						Name:         fmt.Sprintf("u%d", m),
						InverseSpeed: rat(1, int64(1+m%2)),
						Databanks:    []string{"shared"},
					}
				}
				vc := NewVirtualClock()
				srv, err := New(Config{Machines: machines, Shards: 2, Clock: vc, Transport: tr})
				if err != nil {
					b.Fatal(err)
				}
				reqs := make([]model.SubmitRequest, benchJobs)
				for j := range reqs {
					reqs[j] = model.SubmitRequest{
						Size:      fmt.Sprintf("%d", 1+(j*7)%13),
						Weight:    fmt.Sprintf("%d", 1+j%3),
						Databanks: []string{"shared"},
					}
				}
				b.StartTimer()
				for j := range reqs {
					if _, err := srv.Submit(&reqs[j]); err != nil {
						b.Fatal(err)
					}
				}
				srv.Start()
				for {
					st := srv.Stats()
					if st.LastError != "" {
						b.Fatal(st.LastError)
					}
					if st.JobsCompleted == benchJobs {
						break
					}
					if !vc.AdvanceToNextTimer() {
						runtime.Gosched()
					}
				}
				b.StopTimer()
				srv.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(benchJobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}
