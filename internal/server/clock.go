package server

import (
	"math/big"
	"sync"
	"time"
)

// Clock abstracts time for the scheduling loop: the daemon runs on a wall
// clock, tests on a virtual one, so the whole service is deterministically
// drivable at high job counts. Times are absolute seconds since the clock's
// epoch, as exact rationals — event times computed by the engine stay exact
// even when the wall clock only approximates when they are acted upon.
type Clock interface {
	// Now returns the current time.
	Now() *big.Rat
	// At returns a channel that is closed once the clock reaches t
	// (immediately when t is already past), and a cancel function that
	// releases the timer's resources; after cancel the channel may never
	// fire. Cancel is idempotent.
	At(t *big.Rat) (<-chan struct{}, func())
}

// RealClock is the wall clock, with its epoch at construction time. A
// restored daemon shifts the epoch back by the recovered virtual time
// (NewRealClockAt), so the restored engines continue on the same time axis
// they snapshotted under.
type RealClock struct {
	epoch  time.Time
	offset *big.Rat // added to every reading; nil means zero
}

// NewRealClock returns a wall clock starting now.
func NewRealClock() *RealClock { return &RealClock{epoch: time.Now()} }

// NewRealClockAt returns a wall clock whose current reading is start: the
// restore path hands it the recovered fleet's virtual now, and wall time
// advances from there.
func NewRealClockAt(start *big.Rat) *RealClock {
	c := &RealClock{epoch: time.Now()}
	if start != nil && start.Sign() > 0 {
		c.offset = new(big.Rat).Set(start)
	}
	return c
}

// Now implements Clock with nanosecond resolution.
func (c *RealClock) Now() *big.Rat {
	now := big.NewRat(time.Since(c.epoch).Nanoseconds(), int64(time.Second))
	if c.offset != nil {
		now.Add(now, c.offset)
	}
	return now
}

// At implements Clock. The sleep duration is rounded to the nanosecond and
// capped at an hour — the loop re-computes its next event after every wake,
// so rounding never skips an event and far-future deadlines (which would
// overflow time.Duration) just wake the loop periodically.
func (c *RealClock) At(t *big.Rat) (<-chan struct{}, func()) {
	ch := make(chan struct{})
	dt := new(big.Rat).Sub(t, c.Now())
	if dt.Sign() <= 0 {
		close(ch)
		return ch, func() {}
	}
	const maxSleep = time.Hour
	d := maxSleep
	f, _ := new(big.Rat).Mul(dt, big.NewRat(int64(time.Second), 1)).Float64()
	if f < float64(maxSleep) {
		d = time.Duration(f) + time.Nanosecond
	}
	timer := time.AfterFunc(d, func() { close(ch) })
	return ch, func() { timer.Stop() }
}

// VirtualClock is a manually driven clock: Now only moves when Advance (or
// AdvanceToNextTimer) is called, firing every timer the move crosses. It is
// safe for concurrent use.
type VirtualClock struct {
	mu      sync.Mutex
	now     *big.Rat
	waiters []*virtualTimer
}

type virtualTimer struct {
	at *big.Rat
	ch chan struct{}
}

// NewVirtualClock returns a virtual clock at time zero.
func NewVirtualClock() *VirtualClock { return &VirtualClock{now: new(big.Rat)} }

// Now implements Clock.
func (c *VirtualClock) Now() *big.Rat {
	c.mu.Lock()
	defer c.mu.Unlock()
	return new(big.Rat).Set(c.now)
}

// At implements Clock.
func (c *VirtualClock) At(t *big.Rat) (<-chan struct{}, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan struct{})
	if t.Cmp(c.now) <= 0 {
		close(ch)
		return ch, func() {}
	}
	w := &virtualTimer{at: new(big.Rat).Set(t), ch: ch}
	c.waiters = append(c.waiters, w)
	cancel := func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		for i, x := range c.waiters {
			if x == w {
				c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
				break
			}
		}
	}
	return ch, cancel
}

// Advance moves the clock forward to t (no-op when t is in the past) and
// fires every timer with deadline <= t.
func (c *VirtualClock) Advance(t *big.Rat) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Cmp(c.now) > 0 {
		c.now = new(big.Rat).Set(t)
	}
	c.fireDue()
}

// AdvanceToNextTimer jumps to the earliest pending timer deadline and fires
// it, reporting whether there was one. Test drivers call it in a loop to
// step the scheduling service event by event.
func (c *VirtualClock) AdvanceToNextTimer() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *big.Rat
	for _, w := range c.waiters {
		if next == nil || w.at.Cmp(next) < 0 {
			next = w.at
		}
	}
	if next == nil {
		return false
	}
	if next.Cmp(c.now) > 0 {
		c.now = new(big.Rat).Set(next)
	}
	c.fireDue()
	return true
}

// fireDue closes and removes every waiter with deadline <= now. Callers
// hold c.mu.
func (c *VirtualClock) fireDue() {
	live := c.waiters[:0]
	for _, w := range c.waiters {
		if w.at.Cmp(c.now) <= 0 {
			close(w.ch)
		} else {
			live = append(live, w)
		}
	}
	// Drop references so fired timers can be collected.
	for i := len(live); i < len(c.waiters); i++ {
		c.waiters[i] = nil
	}
	c.waiters = live
}
