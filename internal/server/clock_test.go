package server

import (
	"math/big"
	"testing"
	"time"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func fired(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

func TestVirtualClockAt(t *testing.T) {
	c := NewVirtualClock()
	if c.Now().Sign() != 0 {
		t.Fatalf("virtual clock starts at %v, want 0", c.Now())
	}
	past, _ := c.At(rat(0, 1))
	if !fired(past) {
		t.Error("timer at the current time must fire immediately")
	}
	future, _ := c.At(rat(3, 2))
	if fired(future) {
		t.Error("future timer fired early")
	}
	c.Advance(rat(1, 1))
	if fired(future) {
		t.Error("timer fired before its deadline")
	}
	c.Advance(rat(2, 1))
	if !fired(future) {
		t.Error("timer did not fire after its deadline passed")
	}
	if c.Now().Cmp(rat(2, 1)) != 0 {
		t.Errorf("now = %v, want 2", c.Now())
	}
	// Advancing backwards is a no-op.
	c.Advance(rat(1, 1))
	if c.Now().Cmp(rat(2, 1)) != 0 {
		t.Errorf("now = %v after backwards advance, want 2", c.Now())
	}
}

func TestVirtualClockAdvanceToNextTimer(t *testing.T) {
	c := NewVirtualClock()
	late, _ := c.At(rat(5, 1))
	early, _ := c.At(rat(2, 1))
	if !c.AdvanceToNextTimer() {
		t.Fatal("expected a pending timer")
	}
	if c.Now().Cmp(rat(2, 1)) != 0 {
		t.Fatalf("now = %v, want the earliest deadline 2", c.Now())
	}
	if !fired(early) || fired(late) {
		t.Fatal("only the earliest timer should have fired")
	}
	if !c.AdvanceToNextTimer() {
		t.Fatal("expected the second timer")
	}
	if !fired(late) {
		t.Fatal("second timer did not fire")
	}
	if c.AdvanceToNextTimer() {
		t.Fatal("no timers left, AdvanceToNextTimer must report false")
	}
}

func TestRealClock(t *testing.T) {
	c := NewRealClock()
	a := c.Now()
	if a.Sign() < 0 {
		t.Fatalf("negative time %v", a)
	}
	past, _ := c.At(rat(0, 1))
	if !fired(past) {
		t.Error("past deadline must fire immediately")
	}
	soon, cancel := c.At(new(big.Rat).Add(c.Now(), rat(1, 1000)))
	select {
	case <-soon:
	case <-time.After(2 * time.Second):
		t.Fatal("1ms timer did not fire within 2s")
	}
	cancel() // idempotent after firing
	if c.Now().Cmp(a) < 0 {
		t.Error("real clock moved backwards")
	}
	// A deadline beyond time.Duration's range must not fire immediately
	// (it would hot-loop the scheduler); it sleeps in capped chunks.
	far, cancelFar := c.At(rat(1<<62, 1))
	if fired(far) {
		t.Error("far-future timer fired immediately (duration overflow)")
	}
	cancelFar()
}

func TestVirtualClockCancel(t *testing.T) {
	c := NewVirtualClock()
	_, cancel := c.At(rat(4, 1))
	cancel()
	cancel() // idempotent
	if c.AdvanceToNextTimer() {
		t.Fatal("cancelled timer still pending")
	}
	kept, _ := c.At(rat(6, 1))
	if !c.AdvanceToNextTimer() || !fired(kept) {
		t.Fatal("surviving timer did not fire")
	}
}
