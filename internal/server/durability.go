package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"sync"
	"time"

	"divflow/internal/model"
	"divflow/internal/obs"
	"divflow/internal/sim"
	"divflow/internal/stats"
	"divflow/internal/wal"
)

// Durable crash recovery. With Config.WALDir set, every state mutation of the
// fleet is logged write-ahead: submissions (with their exact rational size,
// weight, and release), admission batches (the virtual time the loop admitted
// them at — the one input the executed trace is a deterministic function of),
// steal and reshard migrations, topology-generation installs, and — as pure
// truncation markers — completions and compaction horizons. Periodic
// snapshots capture the whole fleet exactly (per-shard engine states with the
// live jobs' remaining fractions, the forwarding table, the generation list,
// all counters); the log is truncated behind each. On startup the newest
// valid snapshot is loaded (torn ones skipped), and the WAL suffix past its
// watermark is replayed through the normal admission paths at the recorded
// virtual times — so the restored fleet's merged trace validates exactly and
// matches an uninterrupted run bit for bit.
//
// The failure policy is freeze-and-serve: the first WAL append, fsync, or
// snapshot failure latches an error, after which no further appends or
// snapshots happen — the on-disk state stays a consistent prefix of the
// execution — while the daemon keeps scheduling. GET /healthz reports the
// degraded state ("degraded", still HTTP 200).

// WAL record types.
const (
	walTypeSubmit   = "submit"
	walTypeAdmit    = "admit"
	walTypeComplete = "complete"
	walTypeMigrate  = "migrate"
	walTypeTopo     = "topology"
	walTypeCompact  = "compact"
)

// recSubmit logs one accepted submission. Rationals marshal as exact "p/q"
// strings (big.Rat implements TextMarshaler/TextUnmarshaler).
type recSubmit struct {
	Shard     int      `json:"shard"` // creation index
	Local     int      `json:"local"`
	GID       int      `json:"gid"`
	Name      string   `json:"name,omitempty"`
	Weight    *big.Rat `json:"weight"`
	Size      *big.Rat `json:"size"`
	Release   *big.Rat `json:"release"`
	Databanks []string `json:"databanks,omitempty"`
	// SLA fields: absent in pre-deadline logs, which replay as deadline-free
	// untracked traffic — exactly what they were.
	Deadline *big.Rat `json:"deadline,omitempty"`
	Tenant   string   `json:"tenant,omitempty"`
	SLAClass string   `json:"slaClass,omitempty"`
}

// recAdmit logs one admission batch: the virtual time the loop admitted the
// listed pending jobs at. The executed trace is a deterministic function of
// these times, so replaying admissions at them reproduces it exactly.
type recAdmit struct {
	Shard  int      `json:"shard"`
	At     *big.Rat `json:"at"`
	Locals []int    `json:"locals"`
}

// recComplete is a truncation marker: the completion replays for free when
// the engine is advanced across it, but the record moves the restored
// virtual-time watermark forward.
type recComplete struct {
	Shard int      `json:"shard"`
	Local int      `json:"local"`
	GID   int      `json:"gid"`
	At    *big.Rat `json:"at"`
}

// recMigrate logs one job moving between shards (steal or reshard), at the
// donor's exact engine time of the extraction. Decide marks the migrate that
// triggered the donor's post-steal re-plan, so replay reproduces the same
// decision count.
type recMigrate struct {
	From      int      `json:"from"`
	FromLocal int      `json:"fromLocal"`
	To        int      `json:"to"`
	ToLocal   int      `json:"toLocal"`
	GID       int      `json:"gid"`
	Remaining *big.Rat `json:"remaining,omitempty"`
	At        *big.Rat `json:"at"`
	Reason    string   `json:"reason"` // "steal" | "reshard"
	Decide    bool     `json:"decide,omitempty"`
}

// walMachine is one machine in a WAL or snapshot document.
type walMachine struct {
	Name         string   `json:"name"`
	InverseSpeed *big.Rat `json:"inverseSpeed"`
	Databanks    []string `json:"databanks,omitempty"`
}

func encodeMachines(ms []model.Machine) []walMachine {
	out := make([]walMachine, len(ms))
	for i := range ms {
		out[i] = walMachine{Name: ms[i].Name, InverseSpeed: copyRat(ms[i].InverseSpeed), Databanks: ms[i].Databanks}
	}
	return out
}

func decodeMachines(ms []walMachine) ([]model.Machine, error) {
	out := make([]model.Machine, len(ms))
	for i := range ms {
		if ms[i].InverseSpeed == nil || ms[i].InverseSpeed.Sign() <= 0 {
			return nil, fmt.Errorf("server: restore: machine %d (%s) needs InverseSpeed > 0", i, ms[i].Name)
		}
		out[i] = model.Machine{Name: ms[i].Name, InverseSpeed: copyRat(ms[i].InverseSpeed), Databanks: ms[i].Databanks}
	}
	return out, nil
}

// walTopoShard is one member of a recTopo generation, in position order.
type walTopoShard struct {
	Idx        int          `json:"idx"`
	Kept       bool         `json:"kept,omitempty"`
	Machines   []walMachine `json:"machines,omitempty"` // spawned shards only
	MachineIdx []int        `json:"machineIdx"`
}

// recTopo logs one structural reshard: everything needed to rebuild the new
// generation — appended before the migrations that reference its spawned
// shards, and before the topology publish.
type recTopo struct {
	Gen       int            `json:"gen"`
	Base      int            `json:"base"`
	Stride    int            `json:"stride"`
	Shards    []walTopoShard `json:"shards"`
	Retired   []int          `json:"retired,omitempty"`
	Fleet     []walMachine   `json:"fleet"`
	ShardsCfg int            `json:"shardsCfg,omitempty"`
	At        *big.Rat       `json:"at"`
}

// recCompact logs one retention compaction (the horizon is derived from Now
// exactly as the live path derives it, but recording both keeps the document
// self-describing).
type recCompact struct {
	Shard   int      `json:"shard"`
	Now     *big.Rat `json:"now"`
	Horizon *big.Rat `json:"horizon"`
}

// durability is the server's write-ahead-log state: the open log, the
// append/snapshot counters, the latched error, and the snapshot trigger.
// Appends always happen under some shard's mu (or under reshardMu plus every
// shard mu, for topology records), with d.mu innermost — so a snapshot, which
// holds every shard mu, observes an exact watermark.
type durability struct {
	tel       *telemetry
	dir       string
	snapEvery int

	//divflow:locks name=dmu before=journal
	mu        sync.Mutex
	log       *wal.Log
	appends   int
	snapshots int
	replayed  int
	sinceSnap int
	err       error
	replaying bool

	snapReq chan struct{}
	stop    chan struct{}
	once    sync.Once
}

// defaultSnapshotEvery is the snapshot cadence (appends between snapshots)
// when Config.SnapshotEvery is zero.
const defaultSnapshotEvery = 1024

// counters returns the durability counters for /v1/stats and /metrics.
func (d *durability) counters() (appends, snapshots, replayed int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.appends, d.snapshots, d.replayed, d.err
}

// latchedErr returns the frozen WAL failure, nil while durable.
func (d *durability) latchedErr() error {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// latchLocked freezes durability at the first failure. Callers hold d.mu.
//
//divflow:locks requires=dmu
func (d *durability) latchLocked(err error) {
	if d.err != nil {
		return
	}
	d.err = err
	if d.tel.enabled {
		d.tel.walErrors.Inc()
		d.tel.event(obs.EventWALError, -1, -1, err.Error())
	}
}

// append logs one record. Failures latch; callers never see them — the
// scheduling paths must keep running when durability freezes.
func (d *durability) append(typ string, v any) {
	if d == nil {
		return
	}
	d.mu.Lock()
	if d.replaying || d.err != nil || d.log == nil {
		d.mu.Unlock()
		return
	}
	if _, err := d.log.Append(typ, v); err != nil {
		d.latchLocked(err)
		d.mu.Unlock()
		return
	}
	d.appends++
	d.sinceSnap++
	due := d.snapEvery > 0 && d.sinceSnap >= d.snapEvery
	d.mu.Unlock()
	if due {
		select {
		case d.snapReq <- struct{}{}:
		default:
		}
	}
}

// appendSubmit logs one accepted submission write-ahead. Callers hold sh.mu.
//
//divflow:locks requires=shard
func (d *durability) appendSubmit(sh *shard, rec *jobRecord) {
	if d == nil {
		return
	}
	d.append(walTypeSubmit, &recSubmit{
		Shard: sh.idx, Local: rec.id, GID: rec.gid, Name: rec.name,
		Weight: copyRat(rec.weight), Size: copyRat(rec.size), Release: copyRat(rec.release),
		Databanks: rec.databanks,
		Deadline:  copyRat(rec.deadline), Tenant: rec.tenant, SLAClass: rec.slaClass,
	})
}

// appendAdmit logs one admission batch write-ahead. Callers hold sh.mu.
//
//divflow:locks requires=shard
func (d *durability) appendAdmit(sh *shard, at *big.Rat, batch []*jobRecord) {
	if d == nil {
		return
	}
	locals := make([]int, len(batch))
	for i, rec := range batch {
		locals[i] = rec.id
	}
	d.append(walTypeAdmit, &recAdmit{Shard: sh.idx, At: copyRat(at), Locals: locals})
}

// appendComplete logs one completion marker. Callers hold sh.mu.
//
//divflow:locks requires=shard
func (d *durability) appendComplete(sh *shard, rec *jobRecord) {
	if d == nil {
		return
	}
	d.append(walTypeComplete, &recComplete{Shard: sh.idx, Local: rec.id, GID: rec.gid, At: copyRat(rec.completed)})
}

// appendCompact logs one retention compaction. Callers hold sh.mu.
//
//divflow:locks requires=shard
func (d *durability) appendCompact(sh *shard, now, horizon *big.Rat) {
	if d == nil {
		return
	}
	d.append(walTypeCompact, &recCompact{Shard: sh.idx, Now: copyRat(now), Horizon: copyRat(horizon)})
}

// appendMigrate logs one cross-shard migration. Callers hold both shards'
// mus.
//
//divflow:locks requires=shard
func (d *durability) appendMigrate(from, to *shard, fromLocal, toLocal, gid int, remaining, at *big.Rat, reason string, decide bool) {
	if d == nil {
		return
	}
	d.append(walTypeMigrate, &recMigrate{
		From: from.idx, FromLocal: fromLocal, To: to.idx, ToLocal: toLocal,
		GID: gid, Remaining: copyRat(remaining), At: copyRat(at), Reason: reason, Decide: decide,
	})
}

// --- Snapshots ---------------------------------------------------------

// snapRecord is one jobRecord in a snapshot document.
type snapRecord struct {
	ID         int      `json:"id"`
	GID        int      `json:"gid"`
	Name       string   `json:"name,omitempty"`
	Weight     *big.Rat `json:"weight"`
	Size       *big.Rat `json:"size"`
	Databanks  []string `json:"databanks,omitempty"`
	State      string   `json:"state"`
	Release    *big.Rat `json:"release"`
	Completed  *big.Rat `json:"completed,omitempty"`
	Remaining  *big.Rat `json:"remaining,omitempty"`
	Stolen     bool     `json:"stolen,omitempty"`
	Counted    bool     `json:"counted,omitempty"`
	MigratedAt *big.Rat `json:"migratedAt,omitempty"`
	Deadline   *big.Rat `json:"deadline,omitempty"`
	Tenant     string   `json:"tenant,omitempty"`
	SLAClass   string   `json:"slaClass,omitempty"`
}

// snapTenant is one tenant's per-shard accounting in a snapshot document:
// the aggregates and histogram live in telemetry rather than the engine, so
// a restored fleet would otherwise answer /v1/tenants from post-crash
// completions only.
type snapTenant struct {
	Submitted int                    `json:"submitted,omitempty"`
	Completed int                    `json:"completed,omitempty"`
	FlowSum   *big.Rat               `json:"flowSum,omitempty"`
	MaxWF     *big.Rat               `json:"maxWF,omitempty"`
	ByClass   map[string]int         `json:"byClass,omitempty"`
	WFlow     *obs.HistogramSnapshot `json:"wflow,omitempty"`
	Backlog   *big.Rat               `json:"backlog,omitempty"`
}

// snapShard is one shard's full exported state.
type snapShard struct {
	Idx        int               `json:"idx"`
	Pos        int               `json:"pos"`
	Stride     int               `json:"stride"`
	GidBase    int               `json:"gidBase"`
	Gen        int               `json:"gen"`
	Retired    bool              `json:"retired,omitempty"`
	Freed      bool              `json:"freed,omitempty"`
	Machines   []walMachine      `json:"machines"`
	MachineIdx []int             `json:"machineIdx"`
	Records    []*snapRecord     `json:"records,omitempty"` // aligned; null = compacted
	PendingIDs []int             `json:"pendingIds,omitempty"`
	Engine     *sim.EngineState  `json:"engine,omitempty"`
	Plan       *sim.MWFPlanState `json:"plan,omitempty"`

	ArrivalBatches  int   `json:"arrivalBatches,omitempty"`
	BatchedArrivals int   `json:"batchedArrivals,omitempty"`
	LargestBatch    int   `json:"largestBatch,omitempty"`
	StolenIn        int   `json:"stolenIn,omitempty"`
	MigratedOut     int   `json:"migratedOut,omitempty"`
	ReshardIn       int   `json:"reshardIn,omitempty"`
	ReshardOut      int   `json:"reshardOut,omitempty"`
	MigratedIDs     []int `json:"migratedIds,omitempty"`
	DoneCount       int   `json:"doneCount,omitempty"`
	// Flow is the shard's completed-flow histogram. The counts are the one
	// piece of shard state that lives in telemetry rather than the engine,
	// and without them a restored fleet would answer /v1/stats p95Flow from
	// post-crash completions only.
	Flow          *obs.HistogramSnapshot `json:"flow,omitempty"`
	FlowSum       *big.Rat               `json:"flowSum,omitempty"`
	MaxWF         *big.Rat               `json:"maxWF,omitempty"`
	MaxStretch    *big.Rat               `json:"maxStretch,omitempty"`
	LastCompact   *big.Rat               `json:"lastCompact,omitempty"`
	CompactedJobs int                    `json:"compactedJobs,omitempty"`
	MakespanHW    *big.Rat               `json:"makespanHW,omitempty"`
	Backlog       *big.Rat               `json:"backlog"`
	Panics        int                    `json:"panics,omitempty"`
	Restarts      int                    `json:"restarts,omitempty"`
	LastErr       string                 `json:"lastErr,omitempty"`
	Stalled       bool                   `json:"stalled,omitempty"`
	Tenants       map[string]*snapTenant `json:"tenants,omitempty"`

	FrozenNow       *big.Rat          `json:"frozenNow,omitempty"`
	FrozenCompleted int               `json:"frozenCompleted,omitempty"`
	FrozenDecisions int               `json:"frozenDecisions,omitempty"`
	FrozenAccepted  int               `json:"frozenAccepted,omitempty"`
	FrozenSolves    int               `json:"frozenSolves,omitempty"`
	FrozenCacheHits int               `json:"frozenCacheHits,omitempty"`
	FrozenSolver    stats.SolverTally `json:"frozenSolver,omitempty"`
}

// snapGen is one topology generation in a snapshot (shards by creation
// index, in position order).
type snapGen struct {
	Base   int   `json:"base"`
	Stride int   `json:"stride"`
	Shards []int `json:"shards"`
}

// snapFwd is one forwarding-table entry.
type snapFwd struct {
	GID   int `json:"gid"`
	Shard int `json:"shard"`
	Local int `json:"local"`
}

// snapDoc is the whole fleet's snapshot document.
type snapDoc struct {
	Policy    string      `json:"policy"`
	ShardsCfg int         `json:"shardsCfg,omitempty"`
	Reshards  int         `json:"reshards,omitempty"`
	Gens      []snapGen   `json:"gens"`
	Forward   []snapFwd   `json:"forward,omitempty"`
	Shards    []snapShard `json:"shards"`
}

func encodeRecord(rec *jobRecord) *snapRecord {
	if rec == nil {
		return nil
	}
	return &snapRecord{
		ID: rec.id, GID: rec.gid, Name: rec.name, Weight: copyRat(rec.weight),
		Size: copyRat(rec.size), Databanks: rec.databanks, State: rec.state,
		Release: copyRat(rec.release), Completed: copyRat(rec.completed), Remaining: copyRat(rec.remaining),
		Stolen: rec.stolen, Counted: rec.counted, MigratedAt: copyRat(rec.migratedAt),
		Deadline: copyRat(rec.deadline), Tenant: rec.tenant, SLAClass: rec.slaClass,
	}
}

func decodeRecord(sr *snapRecord) (*jobRecord, error) {
	if sr.Weight == nil || sr.Size == nil || sr.Release == nil {
		return nil, fmt.Errorf("server: restore: record %d missing fields", sr.GID)
	}
	return &jobRecord{
		id: sr.ID, gid: sr.GID, name: sr.Name, weight: copyRat(sr.Weight),
		size: copyRat(sr.Size), databanks: sr.Databanks, state: sr.State,
		release: copyRat(sr.Release), completed: copyRat(sr.Completed), remaining: copyRat(sr.Remaining),
		stolen: sr.Stolen, counted: sr.Counted, migratedAt: copyRat(sr.MigratedAt),
		deadline: copyRat(sr.Deadline), tenant: sr.Tenant, slaClass: sr.SLAClass,
	}, nil
}

// exportShardLocked builds one shard's snapshot entry. Callers hold sh.mu.
//
//divflow:locks requires=shard
func exportShardLocked(sh *shard) snapShard {
	ss := snapShard{
		Idx: sh.idx, Pos: sh.pos, Stride: sh.stride, GidBase: sh.gidBase,
		Gen: sh.gen, Retired: sh.retired, Freed: sh.freed,
		Machines:   encodeMachines(sh.machines),
		MachineIdx: append([]int(nil), sh.machineIdx...),

		ArrivalBatches: sh.arrivalBatches, BatchedArrivals: sh.batchedArrivals,
		LargestBatch: sh.largestBatch, StolenIn: sh.stolenIn,
		MigratedOut: sh.migratedOut, ReshardIn: sh.reshardIn, ReshardOut: sh.reshardOut,
		MigratedIDs: append([]int(nil), sh.migratedIDs...),
		DoneCount:   sh.doneCount, FlowSum: copyRat(sh.flowSum), MaxWF: copyRat(sh.maxWF),
		MaxStretch: copyRat(sh.maxStretch), LastCompact: copyRat(sh.lastCompact),
		CompactedJobs: sh.compactedJobs, MakespanHW: copyRat(sh.makespanHW),
		Panics: sh.panics, Restarts: sh.restarts, Stalled: sh.stalled,

		FrozenNow: copyRat(sh.frozenNow), FrozenCompleted: sh.frozenCompleted,
		FrozenDecisions: sh.frozenDecisions, FrozenAccepted: sh.frozenAccepted,
		FrozenSolves: sh.frozenSolves, FrozenCacheHits: sh.frozenCacheHits,
		FrozenSolver: sh.frozenSolver,
	}
	for _, rec := range sh.records {
		ss.Records = append(ss.Records, encodeRecord(rec))
	}
	for _, rec := range sh.pending {
		ss.PendingIDs = append(ss.PendingIDs, rec.id)
	}
	if flow := sh.obs.flow.Snapshot(); flow.Count > 0 {
		ss.Flow = &flow
	}
	if !sh.freed {
		ss.Engine = sh.eng.ExportState()
		if sh.mwf != nil {
			ss.Plan = sh.mwf.ExportPlanState()
		}
	}
	if sh.lastErr != nil {
		ss.LastErr = sh.lastErr.Error()
	}
	sh.backlogMu.Lock()
	ss.Backlog = new(big.Rat).Set(sh.backlog)
	for t, b := range sh.tenantBacklog {
		if ss.Tenants == nil {
			ss.Tenants = make(map[string]*snapTenant)
		}
		ss.Tenants[t] = &snapTenant{Backlog: copyRat(b)}
	}
	sh.backlogMu.Unlock()
	for t, ta := range sh.tenants {
		st := ss.Tenants[t]
		if st == nil {
			if ss.Tenants == nil {
				ss.Tenants = make(map[string]*snapTenant)
			}
			st = &snapTenant{}
			ss.Tenants[t] = st
		}
		st.Submitted = ta.submitted
		st.Completed = ta.completed
		st.FlowSum = copyRat(ta.flowSum)
		st.MaxWF = copyRat(ta.maxWF)
		if len(ta.byClass) > 0 {
			st.ByClass = make(map[string]int, len(ta.byClass))
			for c, n := range ta.byClass {
				st.ByClass[c] = n
			}
		}
		if wf := sh.obs.tenantWFlow(t).Snapshot(); wf.Count > 0 {
			snap := wf
			st.WFlow = &snap
		}
	}
	return ss
}

// Snapshot writes one fleet snapshot now (the same path the cadence-driven
// background snapshots take) and truncates the WAL behind its watermark.
func (s *Server) Snapshot() error {
	s.reshardMu.Lock()
	defer s.reshardMu.Unlock()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return s.snapshotLocked()
}

// snapshotLocked exports and writes one snapshot. Callers hold reshardMu (so
// no topology change is in flight); it takes every shard's mu in idx order,
// freezing every append source, so the watermark is exact.
//
//divflow:locks requires=reshard ascending=shard
func (s *Server) snapshotLocked() error {
	d := s.dur
	if d == nil {
		return nil
	}
	if err := d.latchedErr(); err != nil {
		// Durability already froze: a snapshot of the diverged in-memory
		// state must never replace the consistent on-disk prefix.
		return err
	}
	all := s.allShards()
	sort.Slice(all, func(a, b int) bool { return all[a].idx < all[b].idx })
	for _, sh := range all {
		sh.mu.Lock()
	}
	doc := snapDoc{Policy: s.policyCfg, ShardsCfg: s.shardsCfg}
	s.topoMu.RLock()
	doc.Reshards = s.reshards
	for _, gen := range s.gens {
		sg := snapGen{Base: gen.base, Stride: gen.stride}
		for _, sh := range gen.shards {
			sg.Shards = append(sg.Shards, sh.idx)
		}
		doc.Gens = append(doc.Gens, sg)
	}
	s.topoMu.RUnlock()
	s.fwdMu.RLock()
	for gid, loc := range s.forward {
		doc.Forward = append(doc.Forward, snapFwd{GID: gid, Shard: loc.sh.idx, Local: loc.local})
	}
	s.fwdMu.RUnlock()
	sort.Slice(doc.Forward, func(a, b int) bool { return doc.Forward[a].GID < doc.Forward[b].GID })
	for _, sh := range all {
		doc.Shards = append(doc.Shards, exportShardLocked(sh))
	}
	d.mu.Lock()
	seq := d.log.LastSeq()
	d.mu.Unlock()
	for i := len(all) - 1; i >= 0; i-- {
		all[i].mu.Unlock()
	}

	payload, err := json.Marshal(&doc)
	if err == nil {
		err = wal.WriteSnapshot(d.dir, seq, payload)
	}
	if err == nil {
		// Read the snapshot back before truncating the log behind it: a write
		// torn by a crash (or disk fault) publishes a file whose CRC cannot
		// validate, and truncating on its strength would drop records the
		// fallback snapshot still needs.
		if gotSeq, _, ok := wal.LoadSnapshot(d.dir); !ok || gotSeq != seq {
			err = fmt.Errorf("snapshot at watermark %d failed verification after write", seq)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err != nil {
		d.latchLocked(fmt.Errorf("server: snapshot: %w", err))
		return d.err
	}
	// Segments wholly at or below the watermark are folded into the
	// snapshot; the suffix past it stays for replay.
	if terr := d.log.TruncateBefore(seq + 1); terr != nil {
		d.latchLocked(terr)
		return d.err
	}
	d.snapshots++
	d.sinceSnap = 0
	if d.tel.enabled {
		d.tel.event(obs.EventSnapshot, -1, -1, fmt.Sprintf("watermark %d", seq))
	}
	return nil
}

// snapshotLoop is the cadence-driven snapshot goroutine: append sites signal
// it (non-blocking) every SnapshotEvery appends.
func (s *Server) snapshotLoop() {
	d := s.dur
	for {
		select {
		case <-d.stop:
			return
		case <-d.snapReq:
			if err := s.Snapshot(); err != nil && !errors.Is(err, ErrClosed) {
				// Latched and reported through /healthz; nothing to do here.
				continue
			}
		}
	}
}

// --- Restore ------------------------------------------------------------

// restoreState is what openWAL recovered from disk, handed to New's restore
// branch.
type restoreState struct {
	log     *wal.Log
	doc     *snapDoc // nil when no valid snapshot existed
	suffix  []wal.Record
	now     *big.Rat // watermark virtual time of the restored state
	started time.Time
}

// openWAL loads the newest valid snapshot and the WAL suffix past its
// watermark. A torn snapshot or torn log tail is skipped/truncated by the
// wal package; a snapshot that fails to decode is an error (the disk state
// claims validity but cannot be interpreted — refusing to guess beats
// silently dropping history).
func openWAL(dir string, fsync bool) (*restoreState, error) {
	//divflow:wallclock-ok recovery wall time only annotates the recovery-duration histogram; no Server clock exists yet while the WAL is being opened
	st := &restoreState{started: time.Now(), now: new(big.Rat)}
	snapSeq, payload, haveSnap := wal.LoadSnapshot(dir)
	log, recs, err := wal.Open(dir, wal.Options{Fsync: fsync})
	if err != nil {
		return nil, err
	}
	if haveSnap {
		var doc snapDoc
		if err := json.Unmarshal(payload, &doc); err != nil {
			log.Close()
			return nil, fmt.Errorf("server: restore: snapshot decode: %w", err)
		}
		st.doc = &doc
		for i := range doc.Shards {
			ss := &doc.Shards[i]
			if ss.Engine != nil && ss.Engine.Now != nil && ss.Engine.Now.Cmp(st.now) > 0 {
				st.now.Set(ss.Engine.Now)
			}
			if ss.FrozenNow != nil && ss.FrozenNow.Cmp(st.now) > 0 {
				st.now.Set(ss.FrozenNow)
			}
		}
	}
	for _, rec := range recs {
		if haveSnap && rec.Seq <= snapSeq {
			continue
		}
		st.suffix = append(st.suffix, rec)
		if t := recordTime(rec); t != nil && t.Cmp(st.now) > 0 {
			st.now.Set(t)
		}
	}
	st.log = log
	return st, nil
}

// recordTime extracts the virtual time a record describes, nil when it
// carries none (or fails to decode — replay will surface that properly).
func recordTime(rec wal.Record) *big.Rat {
	var probe struct {
		At      *big.Rat `json:"at"`
		Release *big.Rat `json:"release"`
		Now     *big.Rat `json:"now"`
	}
	if json.Unmarshal(rec.Data, &probe) != nil {
		return nil
	}
	switch {
	case probe.At != nil:
		return copyRat(probe.At)
	case probe.Now != nil:
		return copyRat(probe.Now)
	default:
		return copyRat(probe.Release)
	}
}

// hasState reports whether the disk held anything to restore.
func (st *restoreState) hasState() bool { return st.doc != nil || len(st.suffix) > 0 }

// restoreShard rebuilds one shard from its snapshot entry.
func (s *Server) restoreShard(ss *snapShard) (*shard, error) {
	machines, err := decodeMachines(ss.Machines)
	if err != nil {
		return nil, err
	}
	pol, err := NewPolicy(s.policyCfg)
	if err != nil {
		return nil, err
	}
	sh := s.wireShard(newShard(ss.Idx, ss.Pos, ss.Stride, ss.GidBase, s.clock, machines, ss.MachineIdx, pol, s.retention, s.admission))
	sh.gen = ss.Gen
	sh.retired = ss.Retired
	for _, sr := range ss.Records {
		if sr == nil {
			sh.records = append(sh.records, nil)
			continue
		}
		rec, err := decodeRecord(sr)
		if err != nil {
			return nil, err
		}
		if rec.id != len(sh.records) {
			return nil, fmt.Errorf("server: restore: shard %d record %d out of order", ss.Idx, rec.id)
		}
		sh.records = append(sh.records, rec)
		if rec.state == StateQueued || rec.state == StateScheduled || rec.state == StateDone {
			for i := range sh.machines {
				if sh.machines[i].Hosts(rec.databanks) {
					sh.eligible[i][rec.id] = true
				}
			}
		}
	}
	for _, id := range ss.PendingIDs {
		if id < 0 || id >= len(sh.records) || sh.records[id] == nil {
			return nil, fmt.Errorf("server: restore: shard %d pending %d unknown", ss.Idx, id)
		}
		sh.pending = append(sh.pending, sh.records[id])
	}
	if ss.Freed {
		sh.frozenNow = copyRat(ss.FrozenNow)
		sh.frozenCompleted = ss.FrozenCompleted
		sh.frozenDecisions = ss.FrozenDecisions
		sh.frozenAccepted = ss.FrozenAccepted
		sh.frozenSolves = ss.FrozenSolves
		sh.frozenCacheHits = ss.FrozenCacheHits
		sh.frozenSolver = ss.FrozenSolver
		sh.makespanHW = copyRat(ss.MakespanHW)
		sh.freed = true
		sh.records = nil
		sh.pending = nil
		sh.eligible = nil
		sh.eng = nil
		sh.policy = nil
		sh.mwf = nil
	} else {
		if ss.Engine == nil {
			return nil, fmt.Errorf("server: restore: shard %d has no engine state", ss.Idx)
		}
		if err := sh.eng.RestoreState(ss.Engine); err != nil {
			return nil, fmt.Errorf("server: restore: shard %d: %w", ss.Idx, err)
		}
		if sh.mwf != nil && ss.Plan != nil {
			sh.mwf.RestorePlanState(ss.Plan)
		}
	}
	sh.arrivalBatches = ss.ArrivalBatches
	sh.batchedArrivals = ss.BatchedArrivals
	sh.largestBatch = ss.LargestBatch
	sh.stolenIn = ss.StolenIn
	sh.migratedOut = ss.MigratedOut
	sh.reshardIn = ss.ReshardIn
	sh.reshardOut = ss.ReshardOut
	sh.migratedIDs = append([]int(nil), ss.MigratedIDs...)
	sh.doneCount = ss.DoneCount
	if ss.Flow != nil {
		if err := sh.obs.flow.Restore(*ss.Flow); err != nil {
			return nil, fmt.Errorf("server: restore: shard %d: %w", ss.Idx, err)
		}
	}
	if ss.FlowSum != nil {
		sh.flowSum = copyRat(ss.FlowSum)
	}
	sh.maxWF = copyRat(ss.MaxWF)
	sh.maxStretch = copyRat(ss.MaxStretch)
	if ss.LastCompact != nil {
		sh.lastCompact = copyRat(ss.LastCompact)
	}
	sh.compactedJobs = ss.CompactedJobs
	if !ss.Freed {
		sh.makespanHW = copyRat(ss.MakespanHW)
	}
	sh.panics = ss.Panics
	sh.restarts = ss.Restarts
	if ss.Backlog != nil {
		sh.backlog = copyRat(ss.Backlog)
	}
	for t, st := range ss.Tenants {
		if st == nil {
			continue
		}
		if st.Backlog != nil && st.Backlog.Sign() != 0 {
			sh.tenantBacklog[t] = copyRat(st.Backlog)
		}
		if st.Submitted != 0 || st.Completed != 0 || len(st.ByClass) != 0 {
			ta := sh.tenantFor(t) //divflow:emitmu-ok restore builds a private shard that is not yet published; no other goroutine can reach its mu
			ta.submitted = st.Submitted
			ta.completed = st.Completed
			if st.FlowSum != nil {
				ta.flowSum = copyRat(st.FlowSum)
			}
			ta.maxWF = copyRat(st.MaxWF)
			for c, n := range st.ByClass {
				ta.byClass[c] = n
			}
		}
		if st.WFlow != nil {
			if err := sh.obs.tenantWFlow(t).Restore(*st.WFlow); err != nil { //divflow:emitmu-ok restore builds a private shard that is not yet published; no other goroutine can reach its mu
				return nil, fmt.Errorf("server: restore: shard %d tenant %q: %w", ss.Idx, t, err)
			}
		}
	}
	if ss.LastErr != "" {
		sh.lastErr = errors.New(ss.LastErr)
		sh.stalled = true
		sh.publishRouteErr() //divflow:emitmu-ok restore builds a private shard that is not yet published; no other goroutine can reach its mu
	} else {
		sh.stalled = ss.Stalled
	}
	return sh, nil
}

// restore rebuilds the server's whole topology from a snapshot document (or
// the fresh-start topology the caller built when none existed) and replays
// the WAL suffix through the normal admission paths. Called from New, before
// any loop starts, so it is single-threaded; the shard locks it takes are
// for the helpers' documented invariants.
func (s *Server) restore(st *restoreState) error {
	if st.doc != nil {
		if st.doc.Policy != s.policyCfg && !(st.doc.Policy == "" && s.policyCfg == "") {
			// The policy is part of the recorded execution: replaying an
			// online-mwf history through srpt would "validate" into a
			// different run.
			return fmt.Errorf("server: restore: snapshot taken under policy %q, server configured with %q",
				st.doc.Policy, s.policyCfg)
		}
		if st.doc.ShardsCfg > 0 {
			s.shardsCfg = st.doc.ShardsCfg
		}
		byIdx := make(map[int]*shard, len(st.doc.Shards))
		s.all = nil
		for i := range st.doc.Shards {
			sh, err := s.restoreShard(&st.doc.Shards[i])
			if err != nil {
				return err
			}
			byIdx[sh.idx] = sh
			s.all = append(s.all, sh)
		}
		s.gens = nil
		for _, sg := range st.doc.Gens {
			gen := &generation{base: sg.Base, stride: sg.Stride}
			for _, idx := range sg.Shards {
				sh, ok := byIdx[idx]
				if !ok {
					return fmt.Errorf("server: restore: generation names unknown shard %d", idx)
				}
				gen.shards = append(gen.shards, sh)
			}
			s.gens = append(s.gens, gen)
		}
		if len(s.gens) == 0 {
			return errors.New("server: restore: snapshot has no generations")
		}
		s.reshards = st.doc.Reshards
		for _, fw := range st.doc.Forward {
			sh, ok := byIdx[fw.Shard]
			if !ok {
				return fmt.Errorf("server: restore: forwarding entry names unknown shard %d", fw.Shard)
			}
			s.forward[fw.GID] = fwdLoc{sh: sh, local: fw.Local}
		}
	}
	if err := s.replay(st.suffix); err != nil {
		return err
	}
	s.repairRetired(st.now)
	return nil
}

// shardByIdx resolves a creation index during replay.
func (s *Server) shardByIdx(idx int) (*shard, error) {
	for _, sh := range s.all {
		if sh.idx == idx {
			return sh, nil
		}
	}
	return nil, fmt.Errorf("server: replay: unknown shard %d", idx)
}

// replay re-executes the WAL suffix through the normal admission paths at
// the recorded virtual times. The write-ahead hooks are gated off for its
// duration, so replay never re-logs what the log already holds.
func (s *Server) replay(recs []wal.Record) error {
	if len(recs) == 0 {
		return nil
	}
	s.dur.mu.Lock()
	s.dur.replaying = true
	s.dur.mu.Unlock()
	defer func() {
		s.dur.mu.Lock()
		s.dur.replaying = false
		s.dur.replayed = len(recs)
		s.dur.mu.Unlock()
	}()
	for _, rec := range recs {
		var err error
		switch rec.Type {
		case walTypeSubmit:
			var r recSubmit
			if err = json.Unmarshal(rec.Data, &r); err == nil {
				err = s.replaySubmit(&r)
			}
		case walTypeAdmit:
			var r recAdmit
			if err = json.Unmarshal(rec.Data, &r); err == nil {
				err = s.replayAdmit(&r)
			}
		case walTypeComplete:
			var r recComplete
			if err = json.Unmarshal(rec.Data, &r); err == nil {
				err = s.replayComplete(&r)
			}
		case walTypeMigrate:
			var r recMigrate
			if err = json.Unmarshal(rec.Data, &r); err == nil {
				err = s.replayMigrate(&r)
			}
		case walTypeTopo:
			var r recTopo
			if err = json.Unmarshal(rec.Data, &r); err == nil {
				err = s.replayTopo(&r)
			}
		case walTypeCompact:
			var r recCompact
			if err = json.Unmarshal(rec.Data, &r); err == nil {
				err = s.replayCompact(&r)
			}
		default:
			err = fmt.Errorf("unknown record type %q", rec.Type)
		}
		if err != nil {
			return fmt.Errorf("server: replay: record %d (%s): %w", rec.Seq, rec.Type, err)
		}
	}
	return nil
}

func (s *Server) replaySubmit(r *recSubmit) error {
	sh, err := s.shardByIdx(r.Shard)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.records) != r.Local {
		return fmt.Errorf("shard %d expects local %d, record says %d", sh.idx, len(sh.records), r.Local)
	}
	if r.Weight == nil || r.Size == nil || r.Release == nil {
		return fmt.Errorf("submit %d missing fields", r.GID)
	}
	rec := &jobRecord{
		id: r.Local, gid: r.GID, name: r.Name, weight: copyRat(r.Weight),
		size: copyRat(r.Size), databanks: r.Databanks, state: StateQueued,
		release:  copyRat(r.Release),
		deadline: copyRat(r.Deadline), tenant: r.Tenant, slaClass: r.SLAClass,
	}
	sh.records = append(sh.records, rec)
	sh.pending = append(sh.pending, rec)
	if rec.tenant != "" {
		ta := sh.tenantFor(rec.tenant)
		ta.submitted++
		ta.byClass[rec.slaClass]++
	}
	sh.backlogMu.Lock()
	sh.backlog.Add(sh.backlog, rec.size)
	sh.tenantBacklogAdd(rec.tenant, rec.size)
	sh.backlogMu.Unlock()
	hosted := false
	for i := range sh.machines {
		if sh.machines[i].Hosts(rec.databanks) {
			sh.eligible[i][rec.id] = true
			hosted = true
		}
	}
	if !hosted {
		return fmt.Errorf("submit %d: no machine of shard %d hosts %v", r.GID, sh.idx, r.Databanks)
	}
	sh.obs.event(obs.EventSubmit, rec.gid, rec.release, "replayed")
	return nil
}

func (s *Server) replayAdmit(r *recAdmit) error {
	sh, err := s.shardByIdx(r.Shard)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if r.At == nil {
		return errors.New("admit record missing time")
	}
	if len(sh.pending) != len(r.Locals) {
		return fmt.Errorf("shard %d has %d pending, admit record lists %d", sh.idx, len(sh.pending), len(r.Locals))
	}
	for i, rec := range sh.pending {
		if rec.id != r.Locals[i] {
			return fmt.Errorf("shard %d pending[%d] = %d, admit record says %d", sh.idx, i, rec.id, r.Locals[i])
		}
	}
	// The same admission path the live loop runs, at the recorded virtual
	// time: catch the engine up, then admit the batch. Completions crossed on
	// the way replay implicitly.
	if _, ok := sh.catchUpTo(r.At); !ok {
		return nil // the original run latched here too; the error is restored
	}
	sh.admitAll(r.At)
	return nil
}

func (s *Server) replayComplete(r *recComplete) error {
	sh, err := s.shardByIdx(r.Shard)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if r.At == nil {
		return errors.New("complete record missing time")
	}
	// Advancing across the completion's exact event time executes it through
	// step(): the record itself carries no state the engine does not rederive.
	sh.catchUpTo(r.At)
	return nil
}

func (s *Server) replayCompact(r *recCompact) error {
	sh, err := s.shardByIdx(r.Shard)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if r.Now == nil {
		return errors.New("compact record missing time")
	}
	if _, ok := sh.catchUpTo(r.Now); !ok {
		return nil
	}
	sh.compact(r.Now)
	return nil
}

//divflow:locks ascending=shard
func (s *Server) replayMigrate(r *recMigrate) error {
	from, err := s.shardByIdx(r.From)
	if err != nil {
		return err
	}
	to, err := s.shardByIdx(r.To)
	if err != nil {
		return err
	}
	if r.At == nil {
		return errors.New("migrate record missing time")
	}
	first, second := from, to
	if to.idx < from.idx {
		first, second = to, from
	}
	first.mu.Lock()
	second.mu.Lock()
	defer second.mu.Unlock()
	defer first.mu.Unlock()
	// The donor's engine time at the extraction is part of the recorded
	// execution: migratedAt drives the record's later compaction.
	from.catchUpTo(r.At)
	if r.FromLocal < 0 || r.FromLocal >= len(from.records) || from.records[r.FromLocal] == nil {
		return fmt.Errorf("shard %d has no record %d", from.idx, r.FromLocal)
	}
	rec := from.records[r.FromLocal]
	var remaining *big.Rat
	if rj, err := from.eng.Remove(rec.id); err == nil {
		remaining = rj.Remaining
	} else {
		pending := from.pending[:0]
		found := false
		for _, p := range from.pending {
			if p == rec {
				found = true
				continue
			}
			pending = append(pending, p)
		}
		from.pending = pending
		if !found {
			return fmt.Errorf("job %d neither live nor pending on shard %d", r.GID, from.idx)
		}
		remaining = rec.remaining
	}
	from.orphanRecord(rec)
	nrec := to.adoptRecord(rec, remaining)
	if nrec.id != r.ToLocal {
		return fmt.Errorf("job %d landed at local %d on shard %d, record says %d", r.GID, nrec.id, to.idx, r.ToLocal)
	}
	if r.Reason == "reshard" {
		from.reshardOut++
		to.reshardIn++
	} else {
		from.migratedOut++
		to.stolenIn++
	}
	s.fwdMu.Lock()
	s.forward[rec.gid] = fwdLoc{sh: to, local: nrec.id}
	s.fwdMu.Unlock()
	from.backlogMu.Lock()
	from.backlog.Sub(from.backlog, rec.size)
	from.tenantBacklogSub(rec.tenant, rec.size)
	from.backlogMu.Unlock()
	to.backlogMu.Lock()
	to.backlog.Add(to.backlog, rec.size)
	to.tenantBacklogAdd(rec.tenant, rec.size)
	to.backlogMu.Unlock()
	to.obs.event(obs.EventMigrate, rec.gid, nil, fmt.Sprintf("replayed %s from shard %d", r.Reason, from.idx))
	// The live steal re-plans the donor once per steal batch; the flagged
	// record reproduces that single decision at the same point.
	if r.Decide && from.lastErr == nil {
		from.decide()
	}
	return nil
}

func (s *Server) replayTopo(r *recTopo) error {
	if r.Stride != len(r.Shards) || r.Stride == 0 {
		return fmt.Errorf("topology record stride %d over %d shards", r.Stride, len(r.Shards))
	}
	var gen2 []*shard
	for pos, ts := range r.Shards {
		if ts.Kept {
			sh, err := s.shardByIdx(ts.Idx)
			if err != nil {
				return err
			}
			sh.gidBase, sh.stride, sh.pos = r.Base, r.Stride, pos
			sh.machineIdx = append([]int(nil), ts.MachineIdx...)
			sh.gen = r.Gen
			gen2 = append(gen2, sh)
			continue
		}
		machines, err := decodeMachines(ts.Machines)
		if err != nil {
			return err
		}
		pol, err := NewPolicy(s.policyCfg)
		if err != nil {
			return err
		}
		nsh := s.wireShard(newShard(ts.Idx, pos, r.Stride, r.Base, s.clock, machines, append([]int(nil), ts.MachineIdx...), pol, s.retention, s.admission))
		nsh.gen = r.Gen
		s.all = append(s.all, nsh)
		gen2 = append(gen2, nsh)
	}
	for _, idx := range r.Retired {
		sh, err := s.shardByIdx(idx)
		if err != nil {
			return err
		}
		sh.retired = true
	}
	if r.ShardsCfg > 0 {
		s.shardsCfg = r.ShardsCfg
	}
	s.gens = append(s.gens, &generation{base: r.Base, stride: r.Stride, shards: gen2})
	s.reshards++
	fleet, err := decodeMachines(r.Fleet)
	if err != nil {
		return err
	}
	s.renumberRetired(fleet, gen2)
	return nil
}

// repairRetired finishes an interrupted reshard: a crash between the
// topology record and the last migration record leaves queued or live jobs
// on retired shards. They are re-migrated through the normal paths — with
// the write-ahead hooks live again, so the repair itself is durable — using
// the same least-residual-work placement the reshard would have used, in the
// same order, so the repaired run matches the uninterrupted one.
func (s *Server) repairRetired(now *big.Rat) {
	act := s.gens[len(s.gens)-1].shards
	resid := make(map[*shard]*big.Rat, len(act))
	for _, sh := range act {
		resid[sh] = sh.residualWork()
	}
	for _, donor := range s.all {
		if !donor.retired || donor.freed {
			continue
		}
		donor.mu.Lock()
		// Catch the donor up to the restored virtual time before extracting:
		// the lost migrate records are what carried the original donor's
		// catch-up to the reshard time, so without this the work it executed
		// since its last replayed record would be retroactively discarded and
		// the repaired remainings would not match the uninterrupted run's.
		if donor.lastErr == nil {
			donor.catchUpTo(now)
		}
		var stranded []*jobRecord
		stranded = append(stranded, donor.pending...)
		donor.pending = nil
		type liveJob struct {
			rec       *jobRecord
			remaining *big.Rat
		}
		var live []liveJob
		for _, br := range donor.eng.RemoveAll() {
			live = append(live, liveJob{rec: donor.records[br.ID], remaining: copyRat(br.Job.Remaining)})
		}
		//divflow:locks requires=shard ascending=shard
		migrate := func(rec *jobRecord, remaining *big.Rat) {
			donor.orphanRecord(rec)
			donor.reshardOut++
			var dest, destStalled *shard
			for _, sh := range act {
				if !sh.hosts(rec.databanks) {
					continue
				}
				if sh.lastErr != nil {
					if destStalled == nil || resid[sh].Cmp(resid[destStalled]) < 0 {
						destStalled = sh
					}
					continue
				}
				if dest == nil || resid[sh].Cmp(resid[dest]) < 0 {
					dest = sh
				}
			}
			if dest == nil {
				dest = destStalled
			}
			if dest == nil {
				// No host on the current topology: the job is lost to the
				// crash window. Leave it migrated-away and surface the gap.
				s.tel.event(obs.EventReject, -1, rec.gid, "restore: no shard hosts the stranded job")
				return
			}
			dest.mu.Lock()
			nrec := dest.adoptRecord(rec, remaining)
			dest.reshardIn++
			s.dur.appendMigrate(donor, dest, rec.id, nrec.id, rec.gid, remaining, donor.eng.Now(), "reshard", false)
			dest.mu.Unlock()
			s.fwdMu.Lock()
			s.forward[rec.gid] = fwdLoc{sh: dest, local: nrec.id}
			s.fwdMu.Unlock()
			resid[dest].Add(resid[dest], rec.size)
			donor.backlogMu.Lock()
			donor.backlog.Sub(donor.backlog, rec.size)
			donor.tenantBacklogSub(rec.tenant, rec.size)
			donor.backlogMu.Unlock()
			dest.backlogMu.Lock()
			dest.backlog.Add(dest.backlog, rec.size)
			dest.tenantBacklogAdd(rec.tenant, rec.size)
			dest.backlogMu.Unlock()
		}
		for _, rec := range stranded {
			migrate(rec, rec.remaining)
		}
		for _, lj := range live {
			migrate(lj.rec, lj.remaining)
		}
		donor.mu.Unlock()
	}
}

// --- Shard restart ------------------------------------------------------

// maxShardRestarts caps in-place restarts per shard: a deterministic failure
// restarts into itself, and after the cap the shard stays latched for an
// operator to look at.
const maxShardRestarts = 5

// restartShard rebuilds a latched shard in place from its intact engine
// state: fresh policy, fresh engine, exact state restored, error cleared.
// The plan cache is deliberately not carried over — the failure may live in
// it. It reports whether the shard came back healthy.
func (s *Server) restartShard(sh *shard) bool {
	start := s.tel.now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.lastErr == nil || sh.closed || sh.retired || sh.freed {
		return false
	}
	if sh.restarts >= maxShardRestarts {
		return false
	}
	st := sh.eng.ExportState()
	pol, err := NewPolicy(s.policyCfg)
	if err != nil {
		return false
	}
	eng := sim.NewEngine(len(sh.machines), sh.cost, pol)
	if err := eng.RestoreState(st); err != nil {
		// The panic caught the engine mid-mutation: its exported state does
		// not validate, so an in-place rebuild would run from garbage.
		return false
	}
	sh.restarts++
	sh.eng, sh.policy = eng, pol
	sh.mwf, _ = pol.(*sim.OnlineMWF)
	if sh.mwf != nil {
		sh.mwf.Observer = sh.obs
	}
	sh.lastErr = nil
	sh.stalled = false
	sh.backlogMu.Lock()
	sh.routeErr = ""
	sh.backlogMu.Unlock()
	sh.obs.event(obs.EventShardRestart, -1, eng.Now(), fmt.Sprintf("restart %d of %d", sh.restarts, maxShardRestarts))
	sh.decide()
	if !start.IsZero() {
		s.tel.recoverySecs.Observe(s.tel.sinceSeconds(start))
	}
	return sh.lastErr == nil
}

// RestoredNow returns the virtual time the fleet was restored at (zero for a
// fresh start or a server without a WAL).
func (s *Server) RestoredNow() *big.Rat {
	if s.restoredNow == nil {
		return new(big.Rat)
	}
	return new(big.Rat).Set(s.restoredNow)
}

// ReplayedRecords returns how many WAL records the last startup replayed.
func (s *Server) ReplayedRecords() int {
	if s.dur == nil {
		return 0
	}
	_, _, replayed, _ := s.dur.counters()
	return replayed
}
