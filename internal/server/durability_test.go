package server

import (
	"fmt"
	"math/big"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"divflow/internal/faults"
	"divflow/internal/model"
	"divflow/internal/workload"
)

// reopenServer simulates a restart: it opens a fresh server over the same
// configuration (and hence the same WAL directory) on a new virtual clock,
// advanced to the restored virtual time so the recovered engines resume on
// the time axis they froze at. The crashed predecessor is simply abandoned —
// its loops stay asleep on the old clock, exactly like a dead process.
func reopenServer(t *testing.T, cfg Config) (*Server, *VirtualClock) {
	t.Helper()
	vc := NewVirtualClock()
	cfg.Clock = vc
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vc.Advance(srv.RestoredNow())
	return srv, vc
}

// quiesce waits until every active healthy shard has admitted its pending
// queue and processed every engine event due at or before now — the state a
// crash must strike in for the restored run to be bit-for-bit comparable to
// an uninterrupted one (and for the next routing decision to read exact,
// fully settled backlogs in both runs).
func quiesce(t *testing.T, srv *Server, now *big.Rat) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		settled := true
		for _, sh := range srv.active() {
			sh.mu.Lock()
			if sh.lastErr == nil && !sh.freed {
				if len(sh.pending) > 0 {
					settled = false
				}
				if next := sh.eng.NextEvent(); next != nil && next.Cmp(now) <= 0 {
					settled = false
				}
			}
			sh.mu.Unlock()
		}
		if settled {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("quiesce: shards did not settle in 30s")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestWALCleanShutdownRestoresWithZeroReplay pins the graceful-drain
// guarantee: Close writes a final snapshot, so a clean restart restores the
// whole fleet from it with zero WAL records replayed, job history intact.
func TestWALCleanShutdownRestoresWithZeroReplay(t *testing.T) {
	cfg := Config{Machines: testFleet(), WALDir: t.TempDir()}
	vc := NewVirtualClock()
	first := cfg
	first.Clock = vc
	srv, err := New(first)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []struct{ size, bank string }{{"4", "swissprot"}, {"6", "pdb"}} {
		if _, err := srv.Submit(&model.SubmitRequest{Size: spec.size, Databanks: []string{spec.bank}}); err != nil {
			t.Fatal(err)
		}
	}
	srv.Start()
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 2 })
	want0, _ := srv.jobStatus(0)
	want1, _ := srv.jobStatus(1)
	srv.Close()

	srv2, vc2 := reopenServer(t, cfg)
	defer srv2.Close()
	if n := srv2.ReplayedRecords(); n != 0 {
		t.Fatalf("clean shutdown replayed %d WAL records, want 0 (final snapshot covers everything)", n)
	}
	if srv2.RestoredNow().Sign() <= 0 {
		t.Fatal("restored virtual time is zero after a run that completed jobs")
	}
	for id, want := range map[int]model.JobStatus{0: want0, 1: want1} {
		got, known := srv2.jobStatus(id)
		if !known {
			t.Fatalf("job %d unknown after restore", id)
		}
		if got.State != StateDone || got.CompletedAt != want.CompletedAt || got.Flow != want.Flow {
			t.Errorf("job %d restored as %s @ %s flow %s, want %s @ %s flow %s",
				id, got.State, got.CompletedAt, got.Flow, want.State, want.CompletedAt, want.Flow)
		}
	}
	st := srv2.Stats()
	if st.JobsCompleted != 2 {
		t.Errorf("restored jobsCompleted = %d, want 2", st.JobsCompleted)
	}
	if st.WAL == nil || st.WAL.Replayed != 0 {
		t.Errorf("restored WAL stats = %+v, want replayed 0", st.WAL)
	}
	// The restored service is live: new work schedules and completes.
	srv2.Start()
	if _, err := srv2.Submit(&model.SubmitRequest{Size: "3", Databanks: []string{"swissprot"}}); err != nil {
		t.Fatal(err)
	}
	drive(t, vc2, func() bool { return srv2.Stats().JobsCompleted == 3 })
	validateServer(t, srv2)
}

// scriptState carries a scripted workload across a simulated crash: which
// jobs have been submitted so far and the global IDs they were assigned.
type scriptState struct {
	ids  []int
	next int
}

// runScript submits inst's jobs at their exact release dates over the virtual
// clock, with a full quiescence barrier before each release group (so routing
// reads settled exact backlogs — the property that makes two runs of the same
// script bit-for-bit comparable). With stopAfter >= 0 it returns right after
// the release group containing that index is admitted; otherwise it drives
// the whole workload to completion.
func runScript(t *testing.T, srv *Server, vc *VirtualClock, inst *model.Instance, st *scriptState, stopAfter int) {
	t.Helper()
	if st.ids == nil {
		st.ids = make([]int, inst.N())
	}
	for st.next < inst.N() {
		r := inst.Jobs[st.next].Release
		vc.Advance(r)
		quiesce(t, srv, r)
		for st.next < inst.N() && inst.Jobs[st.next].Release.Cmp(r) == 0 {
			j := st.next
			resp, err := srv.Submit(&model.SubmitRequest{
				Name:   inst.Jobs[j].Name,
				Weight: inst.Jobs[j].Weight.RatString(),
				Size:   inst.Jobs[j].Size.RatString(),
				// Hosted everywhere: the router is free to balance, the
				// adversarial case for routing determinism.
				Databanks: []string{"shared"},
			})
			if err != nil {
				t.Fatal(err)
			}
			st.ids[j] = resp.ID
			st.next++
		}
		submitted := st.next
		waitStats(t, srv, func(s model.StatsResponse) bool {
			return s.BatchedArrivals >= submitted
		})
		quiesce(t, srv, r)
		if stopAfter >= 0 && st.next > stopAfter {
			return
		}
	}
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == inst.N() })
}

// TestWALCrashRestartEquivalence is the headline recovery guarantee: a
// scripted multi-shard workload interrupted by a crash mid-run and restored
// from the WAL must finish with exactly the state an uninterrupted run
// reaches — same global IDs, same exact completion times and flows, same
// objective value, and a merged trace that validates exactly.
func TestWALCrashRestartEquivalence(t *testing.T) {
	for _, policy := range []string{"online-mwf-lazy", "srpt"} {
		for _, cut := range []int{3, 7} {
			t.Run(fmt.Sprintf("%s/cut=%d", policy, cut), func(t *testing.T) {
				testCrashRestartEquivalence(t, policy, cut)
			})
		}
	}
}

func testCrashRestartEquivalence(t *testing.T, policy string, cut int) {
	wcfg := workload.Default()
	wcfg.Jobs = 10
	wcfg.Machines = 4
	wcfg.Seed = 7
	inst := workload.MustGenerate(wcfg)

	// Reference: the same script uninterrupted.
	refVC := NewVirtualClock()
	refSrv, err := New(Config{Machines: uniformFleet(4), Policy: policy, Shards: 2,
		DisableSteal: true, Clock: refVC})
	if err != nil {
		t.Fatal(err)
	}
	defer refSrv.Close()
	refSrv.Start()
	refState := &scriptState{}
	runScript(t, refSrv, refVC, inst, refState, -1)

	// Interrupted: identical script, crash after the cut group is settled.
	cfg := Config{Machines: uniformFleet(4), Policy: policy, Shards: 2,
		DisableSteal: true, WALDir: t.TempDir()}
	crashCfg := cfg
	vc1 := NewVirtualClock()
	crashCfg.Clock = vc1
	srv1, err := New(crashCfg)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Start()
	state := &scriptState{}
	runScript(t, srv1, vc1, inst, state, cut)
	if state.next >= inst.N() {
		t.Fatalf("cut %d consumed the whole script; pick an earlier cut", cut)
	}
	// Crash: srv1 is abandoned, not closed — no final snapshot, pure replay.
	srv2, vc2 := reopenServer(t, cfg)
	defer srv2.Close()
	if srv2.ReplayedRecords() == 0 {
		t.Fatal("crash restore replayed no WAL records")
	}
	srv2.Start()
	runScript(t, srv2, vc2, inst, state, -1)

	for j := 0; j < inst.N(); j++ {
		if state.ids[j] != refState.ids[j] {
			t.Fatalf("job %d got global ID %d across the crash, reference %d", j, state.ids[j], refState.ids[j])
		}
		got, knownGot := srv2.jobStatus(state.ids[j])
		want, knownWant := refSrv.jobStatus(refState.ids[j])
		if !knownGot || !knownWant {
			t.Fatalf("job %d unknown (restored %v, reference %v)", j, knownGot, knownWant)
		}
		if got.State != want.State || got.CompletedAt != want.CompletedAt || got.Flow != want.Flow {
			t.Errorf("job %d restored run: %s @ %s flow %s; uninterrupted: %s @ %s flow %s",
				j, got.State, got.CompletedAt, got.Flow, want.State, want.CompletedAt, want.Flow)
		}
	}
	gotStats, wantStats := srv2.Stats(), refSrv.Stats()
	if gotStats.MaxWeightedFlow != wantStats.MaxWeightedFlow {
		t.Errorf("maxWeightedFlow across crash = %s, uninterrupted %s",
			gotStats.MaxWeightedFlow, wantStats.MaxWeightedFlow)
	}
	validateServer(t, srv2)
}

// TestWALCrashAfterStealRestoresExactly crashes right after a cross-shard
// steal migrated a half-executed job and checks the restored fleet finishes
// with the exact closed-form completions of the uninterrupted scenario
// (TestStealMigratesHalfExecutedJob): the migrate records replay the recorded
// placements and the donor's re-plan, and the merged trace still validates.
func TestWALCrashAfterStealRestoresExactly(t *testing.T) {
	cfg := Config{Machines: hotSharedFleet(), Shards: 2, Policy: "srpt", WALDir: t.TempDir()}
	vc := NewVirtualClock()
	crashCfg := cfg
	crashCfg.Clock = vc
	srv, err := New(crashCfg)
	if err != nil {
		t.Fatal(err)
	}
	idD := submitTo(t, srv.active()[0], "2", "shared")
	idA := submitTo(t, srv.active()[0], "6", "shared")
	idC := submitTo(t, srv.active()[0], "10", "hot")
	idB := submitTo(t, srv.active()[1], "3", "shared")
	srv.Start()
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.BatchedArrivals >= 4 })
	vc.Advance(rat(2, 1))
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.JobsCompleted == 1 })
	// t=3: B completes, shard 1 idles and steals the half-executed A. Wait for
	// the thief to admit it so the whole steal batch (and the admission) is in
	// the WAL, then crash.
	vc.Advance(rat(3, 1))
	waitStats(t, srv, func(st model.StatsResponse) bool {
		return st.Migrations == 1 && st.Shards[1].JobsLive == 1
	})
	quiesce(t, srv, rat(3, 1))

	srv2, vc2 := reopenServer(t, cfg)
	defer srv2.Close()
	if now := srv2.RestoredNow(); now.Cmp(rat(3, 1)) != 0 {
		t.Fatalf("restored virtual time = %s, want 3 (the steal time)", now.RatString())
	}
	st := srv2.Stats()
	if st.Migrations != 1 || st.StolenJobs != 1 {
		t.Fatalf("restored steal counters = %d migrations / %d stolen, want 1/1", st.Migrations, st.StolenJobs)
	}
	// The stolen record's local slot decodes to the never-issued global ID 3;
	// it must stay unknown after restore, not leak A under a phantom ID.
	if _, known := srv2.jobStatus(3); known {
		t.Error("phantom global ID 3 resolves after restore")
	}
	srv2.Start()
	drive(t, vc2, func() bool { return srv2.Stats().JobsCompleted == 4 })
	for id, want := range map[int]string{idD: "2", idB: "3", idA: "6", idC: "12"} {
		got, known := srv2.jobStatus(id)
		if !known || got.State != StateDone || got.CompletedAt != want {
			t.Errorf("job %d = %s @ %s (known %v), want done @ %s", id, got.State, got.CompletedAt, known, want)
		}
	}
	validateServer(t, srv2)
}

// reshardScript drives the islandFleet replication scenario to its quiesced
// pre-reshard state: four jobs submitted at t=0, the bankB island done at
// t=2, bankA still grinding.
func reshardScript(t *testing.T, srv *Server, vc *VirtualClock) []int {
	t.Helper()
	var ids []int
	for _, spec := range []struct{ size, bank string }{
		{"8", "bankA"}, {"8", "bankA"}, {"8", "bankA"}, {"2", "bankB"},
	} {
		resp, err := srv.Submit(&model.SubmitRequest{Size: spec.size, Databanks: []string{spec.bank}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, resp.ID)
	}
	srv.Start()
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.BatchedArrivals >= 4 })
	vc.Advance(rat(2, 1))
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.JobsCompleted == 1 })
	quiesce(t, srv, rat(2, 1))
	return ids
}

// finishReshardScenario drives a post-reshard server to completion and
// returns each job's final status keyed by global ID.
func finishReshardScenario(t *testing.T, srv *Server, vc *VirtualClock, ids []int) map[int]model.JobStatus {
	t.Helper()
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 4 })
	out := make(map[int]model.JobStatus, len(ids))
	for _, id := range ids {
		st, known := srv.jobStatus(id)
		if !known {
			t.Fatalf("job %d unknown", id)
		}
		out[id] = st
	}
	return out
}

// TestWALCrashAfterReshardRestoresExactly crashes right after a completed
// live reshard (topology generation 1, jobs migrated onto the merged shard)
// and checks the restored fleet comes back in the new topology and finishes
// exactly like the uninterrupted run.
func TestWALCrashAfterReshardRestoresExactly(t *testing.T) {
	// Reference: the reshard scenario uninterrupted.
	refVC := NewVirtualClock()
	refSrv, err := New(Config{Machines: islandFleet(), Policy: "srpt", Clock: refVC})
	if err != nil {
		t.Fatal(err)
	}
	defer refSrv.Close()
	refIDs := reshardScript(t, refSrv, refVC)
	if _, err := refSrv.Reshard(&model.Platform{Machines: replicatedFleet()}); err != nil {
		t.Fatal(err)
	}
	want := finishReshardScenario(t, refSrv, refVC, refIDs)

	cfg := Config{Machines: islandFleet(), Policy: "srpt", WALDir: t.TempDir()}
	vc := NewVirtualClock()
	crashCfg := cfg
	crashCfg.Clock = vc
	srv, err := New(crashCfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := reshardScript(t, srv, vc)
	resp, err := srv.Reshard(&model.Platform{Machines: replicatedFleet()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Generation != 1 || resp.MigratedJobs != 3 {
		t.Fatalf("reshard = generation %d, %d migrated, want 1 and 3", resp.Generation, resp.MigratedJobs)
	}
	// Let the spawned shard admit the migrated jobs so the whole reshard is
	// durable, then crash.
	quiesce(t, srv, rat(2, 1))

	srv2, vc2 := reopenServer(t, cfg)
	defer srv2.Close()
	if srv2.Generation() != 1 || srv2.ShardCount() != 1 {
		t.Fatalf("restored topology = generation %d, %d shards, want generation 1 with 1 shard",
			srv2.Generation(), srv2.ShardCount())
	}
	srv2.Start()
	got := finishReshardScenario(t, srv2, vc2, ids)
	for id, w := range want {
		g := got[id]
		if g.State != w.State || g.CompletedAt != w.CompletedAt || g.Flow != w.Flow {
			t.Errorf("job %d restored: %s @ %s, uninterrupted: %s @ %s", id, g.State, g.CompletedAt, w.State, w.CompletedAt)
		}
	}
	validateServer(t, srv2)
}

// TestWALCrashDuringReshardRepairsStranded crashes *inside* a reshard: the
// topology record is durable but every migrate record after it is lost. The
// restored server must come up in the new topology, notice the unfinished
// jobs stranded on retired shards, re-migrate them itself (repairRetired),
// and still finish exactly like an uninterrupted run.
func TestWALCrashDuringReshardRepairsStranded(t *testing.T) {
	t.Cleanup(faults.Reset)
	refVC := NewVirtualClock()
	refSrv, err := New(Config{Machines: islandFleet(), Policy: "srpt", Clock: refVC})
	if err != nil {
		t.Fatal(err)
	}
	defer refSrv.Close()
	refIDs := reshardScript(t, refSrv, refVC)
	if _, err := refSrv.Reshard(&model.Platform{Machines: replicatedFleet()}); err != nil {
		t.Fatal(err)
	}
	want := finishReshardScenario(t, refSrv, refVC, refIDs)

	cfg := Config{Machines: islandFleet(), Policy: "srpt", WALDir: t.TempDir()}
	vc := NewVirtualClock()
	crashCfg := cfg
	crashCfg.Clock = vc
	srv, err := New(crashCfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := reshardScript(t, srv, vc)
	// The very next WAL append is the reshard's topology record: it lands
	// durably, then the simulated crash strikes — every migrate record after
	// it is lost, exactly a crash halfway through writing the reshard.
	faults.Arm(faults.CrashAfterAppend, 0)
	if _, err := srv.Reshard(&model.Platform{Machines: replicatedFleet()}); err != nil {
		t.Fatal(err)
	}
	if err := srv.dur.latchedErr(); err == nil {
		t.Fatal("simulated crash did not latch durability")
	}
	faults.Reset()

	srv2, vc2 := reopenServer(t, cfg)
	defer srv2.Close()
	if srv2.Generation() != 1 || srv2.ShardCount() != 1 {
		t.Fatalf("restored topology = generation %d, %d shards, want the durable post-reshard topology",
			srv2.Generation(), srv2.ShardCount())
	}
	// Every unfinished job must be off the retired shards before any loop runs.
	for _, sh := range srv2.allShards() {
		if !sh.retired {
			continue
		}
		sh.mu.Lock()
		stranded := len(sh.pending) + sh.eng.Live()
		sh.mu.Unlock()
		if stranded != 0 {
			t.Fatalf("retired shard %d still holds %d unfinished jobs after repair", sh.idx, stranded)
		}
	}
	srv2.Start()
	got := finishReshardScenario(t, srv2, vc2, ids)
	for id, w := range want {
		g := got[id]
		if g.State != w.State || g.CompletedAt != w.CompletedAt {
			t.Errorf("job %d repaired run: %s @ %s, uninterrupted: %s @ %s", id, g.State, g.CompletedAt, w.State, w.CompletedAt)
		}
	}
	validateServer(t, srv2)
}

// TestWALCrashAfterAppendLosesNoAcknowledgedSubmission pins the write-ahead
// contract: a submission acknowledged to the client is durable even when the
// process dies immediately after the append, and the restored run completes
// it at exactly the time the uninterrupted run would have.
func TestWALCrashAfterAppendLosesNoAcknowledgedSubmission(t *testing.T) {
	t.Cleanup(faults.Reset)
	cfg := Config{Machines: testFleet(), WALDir: t.TempDir()}
	vc := NewVirtualClock()
	crashCfg := cfg
	crashCfg.Clock = vc
	srv, err := New(crashCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(&model.SubmitRequest{Size: "4", Databanks: []string{"swissprot"}}); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 1 })
	quiesce(t, srv, vc.Now())

	// The crash strikes on the very next append: the submit record of job 1
	// is durable (the client got its ID), everything after is lost.
	faults.Arm(faults.CrashAfterAppend, 0)
	resp, err := srv.Submit(&model.SubmitRequest{Size: "6", Databanks: []string{"swissprot"}})
	if err != nil {
		t.Fatal(err)
	}
	// The in-memory server keeps scheduling past the crash latch.
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 2 })
	want, _ := srv.jobStatus(resp.ID)
	faults.Reset()

	srv2, vc2 := reopenServer(t, cfg)
	defer srv2.Close()
	got, known := srv2.jobStatus(resp.ID)
	if !known {
		t.Fatalf("acknowledged job %d lost across the crash", resp.ID)
	}
	if got.State != StateQueued {
		t.Fatalf("restored job %d state = %s, want queued (admission was not durable)", resp.ID, got.State)
	}
	srv2.Start()
	drive(t, vc2, func() bool { return srv2.Stats().JobsCompleted == 2 })
	got, _ = srv2.jobStatus(resp.ID)
	if got.CompletedAt != want.CompletedAt || got.Flow != want.Flow {
		t.Errorf("restored job completes @ %s flow %s, uninterrupted @ %s flow %s",
			got.CompletedAt, got.Flow, want.CompletedAt, want.Flow)
	}
	validateServer(t, srv2)
}

// TestWALFaultLatchesAndKeepsServing pins the durability failure policy for
// injected append and fsync failures: the first failure latches durability
// at a consistent on-disk prefix, the daemon keeps scheduling, /healthz
// degrades without failing, snapshots refuse to run, and a restart recovers
// exactly the pre-latch prefix.
func TestWALFaultLatchesAndKeepsServing(t *testing.T) {
	for _, pt := range []string{faults.WALAppend, faults.WALFsync} {
		t.Run(pt, func(t *testing.T) {
			t.Cleanup(faults.Reset)
			cfg := Config{Machines: testFleet(), WALDir: t.TempDir(), Fsync: pt == faults.WALFsync}
			vc := NewVirtualClock()
			runCfg := cfg
			runCfg.Clock = vc
			srv, err := New(runCfg)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			// First append (job 0's submit) lands, the second fails.
			faults.Arm(pt, 1)
			id0resp, err := srv.Submit(&model.SubmitRequest{Size: "4", Databanks: []string{"swissprot"}})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := srv.Submit(&model.SubmitRequest{Size: "6", Databanks: []string{"swissprot"}}); err != nil {
				t.Fatal(err)
			}
			srv.Start()
			// The scheduler is unaffected: both jobs complete in memory.
			drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 2 })
			st := srv.Stats()
			if st.WAL == nil || st.WAL.Error == "" {
				t.Fatalf("WAL stats after injected %s = %+v, want a latched error", pt, st.WAL)
			}
			var health model.HealthResponse
			getJSON(t, ts.URL+"/healthz", &health)
			if health.Status != "degraded" || health.WALError == "" {
				t.Errorf("healthz = %+v, want degraded with walError", health)
			}
			if err := srv.Snapshot(); err == nil {
				t.Error("snapshot after latched durability must refuse")
			}
			srv.Close()

			// Restart: only the pre-latch prefix (job 0's submission) survives.
			faults.Reset()
			srv2, vc2 := reopenServer(t, cfg)
			defer srv2.Close()
			if n := srv2.ReplayedRecords(); n != 1 {
				t.Fatalf("replayed %d records, want 1 (the pre-latch submit)", n)
			}
			if _, known := srv2.jobStatus(id0resp.ID); !known {
				t.Fatal("pre-latch submission lost")
			}
			srv2.Start()
			drive(t, vc2, func() bool { return srv2.Stats().JobsCompleted == 1 })
		})
	}
}

// TestWALTornSnapshotFallsBack pins two halves of torn-snapshot handling: the
// snapshot path detects the corrupt file it just published (and refuses to
// truncate the log on its strength), and restore skips the torn file, falling
// back to the previous snapshot plus the full WAL suffix — no history lost.
func TestWALTornSnapshotFallsBack(t *testing.T) {
	t.Cleanup(faults.Reset)
	cfg := Config{Machines: testFleet(), WALDir: t.TempDir()}
	vc := NewVirtualClock()
	runCfg := cfg
	runCfg.Clock = vc
	srv, err := New(runCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(&model.SubmitRequest{Size: "4", Databanks: []string{"swissprot"}}); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 1 })
	if err := srv.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(&model.SubmitRequest{Size: "6", Databanks: []string{"swissprot"}}); err != nil {
		t.Fatal(err)
	}
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 2 })
	want1, _ := srv.jobStatus(1)

	faults.Arm(faults.TornSnapshot, 0)
	if err := srv.Snapshot(); err == nil {
		t.Fatal("torn snapshot write must fail verification, not truncate the WAL")
	}
	faults.Reset()

	// Crash. Restore must skip the torn snapshot and rebuild job 1 from the
	// previous snapshot plus the untruncated WAL suffix.
	srv2, _ := reopenServer(t, cfg)
	defer srv2.Close()
	if srv2.ReplayedRecords() == 0 {
		t.Fatal("no WAL records replayed; the torn snapshot was trusted")
	}
	got1, known := srv2.jobStatus(1)
	if !known || got1.State != StateDone || got1.CompletedAt != want1.CompletedAt {
		t.Fatalf("job 1 restored as %+v (known %v), want done @ %s", got1, known, want1.CompletedAt)
	}
	if st := srv2.Stats(); st.JobsCompleted != 2 {
		t.Errorf("restored jobsCompleted = %d, want 2", st.JobsCompleted)
	}
	validateServer(t, srv2)
}

// TestShardPanicSupervised pins the supervisor: an injected panic inside one
// shard's scheduling decision latches that shard as stalled — counted,
// journaled, /healthz naming it — while the rest of the fleet keeps serving
// and the process survives.
func TestShardPanicSupervised(t *testing.T) {
	t.Cleanup(faults.Reset)
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: uniformFleet(4), Shards: 2, DisableSteal: true, Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Start()

	faults.Arm(faults.PanicInPolicy, 0)
	if _, err := srv.Submit(&model.SubmitRequest{Size: "4", Databanks: []string{"shared"}}); err != nil {
		t.Fatal(err)
	}
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.Stalled })
	st := srv.Stats()
	var panicked *model.ShardStats
	for i := range st.Shards {
		if st.Shards[i].Panics > 0 {
			panicked = &st.Shards[i]
		}
	}
	if panicked == nil || !panicked.Stalled || panicked.LastError == "" {
		t.Fatalf("no shard reports the caught panic: %+v", st.Shards)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz with a stalled shard = %d, want 503", resp.StatusCode)
	}
	// The healthy shard still serves: the router skips the poisoned one.
	if _, err := srv.Submit(&model.SubmitRequest{Size: "2", Databanks: []string{"shared"}}); err != nil {
		t.Fatal(err)
	}
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 1 })
}

// TestRestartStalledRecoversPanickedShard pins -restart-stalled: the
// supervisor rebuilds the panicked shard in place from its intact engine
// state, the interrupted decision is retried, every job completes, and (with
// a WAL) a crash after the recovery restores the same final state.
func TestRestartStalledRecoversPanickedShard(t *testing.T) {
	t.Cleanup(faults.Reset)
	cfg := Config{Machines: uniformFleet(4), Shards: 2, DisableSteal: true,
		RestartStalled: true, WALDir: t.TempDir()}
	vc := NewVirtualClock()
	runCfg := cfg
	runCfg.Clock = vc
	srv, err := New(runCfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	faults.Arm(faults.PanicInPolicy, 0)
	resp, err := srv.Submit(&model.SubmitRequest{Size: "4", Databanks: []string{"shared"}})
	if err != nil {
		t.Fatal(err)
	}
	// The panic latches the shard; the restart hook rebuilds it and the job
	// completes without any external intervention.
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 1 })
	st := srv.Stats()
	if st.Stalled {
		t.Fatal("fleet still stalled after a supervised restart")
	}
	restarted := false
	for _, ss := range st.Shards {
		if ss.Panics == 1 && ss.Restarts == 1 && !ss.Stalled {
			restarted = true
		}
	}
	if !restarted {
		t.Fatalf("no shard shows panics=1 restarts=1: %+v", st.Shards)
	}
	want, _ := srv.jobStatus(resp.ID)
	faults.Reset()

	// Crash after recovery: replay admits the job normally (the fault is
	// gone) and must land on the identical completion.
	srv2, vc2 := reopenServer(t, cfg)
	defer srv2.Close()
	srv2.Start()
	drive(t, vc2, func() bool { return srv2.Stats().JobsCompleted == 1 })
	got, known := srv2.jobStatus(resp.ID)
	if !known || got.CompletedAt != want.CompletedAt {
		t.Errorf("restored completion = %s (known %v), want %s", got.CompletedAt, known, want.CompletedAt)
	}
}

// TestRetiredShardFreedAfterCompaction is the regression test for retired-
// shard memory: once a retired shard's whole history compacts away, its
// records, queues, engine, and policy are released — only the ID-decoding
// tombstone stays, old global IDs answer not-found, frozen counters keep the
// history, and the tombstone survives snapshot/restore.
func TestRetiredShardFreedAfterCompaction(t *testing.T) {
	cfg := Config{Machines: islandFleet(), Policy: "srpt", Retention: rat(5, 1), WALDir: t.TempDir()}
	vc := NewVirtualClock()
	runCfg := cfg
	runCfg.Clock = vc
	srv, err := New(runCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, bank := range []string{"bankA", "bankB"} {
		if _, err := srv.Submit(&model.SubmitRequest{Size: "2", Databanks: []string{bank}}); err != nil {
			t.Fatal(err)
		}
	}
	srv.Start()
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 2 })
	if _, err := srv.Reshard(&model.Platform{Machines: replicatedFleet()}); err != nil {
		t.Fatal(err)
	}
	// The retired islands hold only completed history; their low-duty loops
	// wake once per retention window, compact it away, and free themselves.
	drive(t, vc, func() bool {
		freed := 0
		for _, ss := range srv.Stats().Shards {
			if ss.Freed {
				freed++
			}
		}
		return freed == 2
	})
	for _, sh := range srv.allShards() {
		if !sh.retired {
			continue
		}
		sh.mu.Lock()
		if !sh.freed || sh.eng != nil || sh.policy != nil || sh.records != nil || sh.eligible != nil {
			t.Errorf("retired shard %d not fully freed: freed=%v eng=%v records=%d", sh.idx, sh.freed, sh.eng != nil, len(sh.records))
		}
		sh.mu.Unlock()
	}
	// Old global IDs decode through the tombstone to not-found — no panic, no
	// phantom status.
	for id := 0; id < 2; id++ {
		if _, known := srv.jobStatus(id); known {
			t.Errorf("compacted job %d still resolves", id)
		}
	}
	// Frozen counters keep the aggregate history.
	st := srv.Stats()
	if st.JobsCompleted != 2 || st.JobsAccepted != 2 {
		t.Errorf("aggregates after free = %d completed / %d accepted, want 2/2", st.JobsCompleted, st.JobsAccepted)
	}
	// The tombstones survive snapshot + crash + restore.
	if err := srv.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(&model.SubmitRequest{Size: "2", Databanks: []string{"bankA"}}); err != nil {
		t.Fatal(err)
	}
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 3 })

	srv2, vc2 := reopenServer(t, cfg)
	defer srv2.Close()
	st2 := srv2.Stats()
	freed := 0
	for _, ss := range st2.Shards {
		if ss.Freed {
			freed++
		}
	}
	if freed != 2 {
		t.Fatalf("restored fleet has %d freed tombstones, want 2", freed)
	}
	if _, known := srv2.jobStatus(0); known {
		t.Error("compacted job resolves after restore")
	}
	if st2.JobsCompleted != 3 {
		t.Errorf("restored jobsCompleted = %d, want 3", st2.JobsCompleted)
	}
	// The restored fleet still schedules.
	srv2.Start()
	if _, err := srv2.Submit(&model.SubmitRequest{Size: "2", Databanks: []string{"bankB"}}); err != nil {
		t.Fatal(err)
	}
	drive(t, vc2, func() bool { return srv2.Stats().JobsCompleted == 4 })
}

// TestWALUnderConcurrentTraffic runs free-running concurrent submitters over
// a real clock with the WAL, cadence snapshots, and stealing all on — the
// -race exercise for the durability layer's locking — then closes cleanly and
// checks a restart restores the full fleet state.
func TestWALUnderConcurrentTraffic(t *testing.T) {
	cfg := Config{Machines: uniformFleet(4), Shards: 2, WALDir: t.TempDir(), SnapshotEvery: 16}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	const workers, perWorker = 4, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := srv.Submit(&model.SubmitRequest{Size: "1/100", Databanks: []string{"shared"}}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	waitStats(t, srv, func(st model.StatsResponse) bool {
		return st.JobsCompleted == workers*perWorker
	})
	if err := srv.Snapshot(); err != nil {
		t.Fatal(err)
	}
	want := srv.Stats()
	srv.Close()

	vc := NewVirtualClock()
	cfg.Clock = vc
	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	got := srv2.Stats()
	if got.JobsCompleted != want.JobsCompleted || got.JobsAccepted != want.JobsAccepted {
		t.Errorf("restored %d completed / %d accepted, want %d / %d",
			got.JobsCompleted, got.JobsAccepted, want.JobsCompleted, want.JobsAccepted)
	}
	if want.WAL != nil && want.WAL.Snapshots == 0 {
		t.Error("cadence snapshots never ran despite SnapshotEvery=16")
	}
	validateServer(t, srv2)
}

// TestWALRestorePreservesFlowHistogram pins the snapshot's telemetry
// carriage: per-shard completed-flow histograms ride in the DIVSNAP1
// document and are restored before WAL replay re-observes post-snapshot
// completions, so /v1/stats answers the same p95Flow before a crash and
// after the restore. Without the Flow field a restored fleet would estimate
// quantiles from post-crash completions only.
func TestWALRestorePreservesFlowHistogram(t *testing.T) {
	cfg := Config{Machines: testFleet(), WALDir: t.TempDir()}
	vc := NewVirtualClock()
	first := cfg
	first.Clock = vc
	srv, err := New(first)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []struct{ size, bank string }{
		{"4", "swissprot"}, {"6", "pdb"}, {"2", "swissprot"},
	} {
		if _, err := srv.Submit(&model.SubmitRequest{Size: spec.size, Databanks: []string{spec.bank}}); err != nil {
			t.Fatal(err)
		}
	}
	srv.Start()
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 3 })
	// Force a snapshot now: the first three flows must survive through the
	// document, not through replay.
	if err := srv.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for _, spec := range []struct{ size, bank string }{{"3", "pdb"}, {"5", "swissprot"}} {
		if _, err := srv.Submit(&model.SubmitRequest{Size: spec.size, Databanks: []string{spec.bank}}); err != nil {
			t.Fatal(err)
		}
	}
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 5 })
	want := srv.Stats().P95Flow
	if want <= 0 {
		t.Fatalf("pre-crash p95Flow = %v, want positive", want)
	}

	// Crash: srv is abandoned, not closed — restore = snapshot + WAL suffix.
	srv2, _ := reopenServer(t, cfg)
	defer srv2.Close()
	if srv2.ReplayedRecords() == 0 {
		t.Fatal("crash restore replayed no WAL records; the post-snapshot completions should be in the suffix")
	}
	if got := srv2.Stats().P95Flow; got != want {
		t.Errorf("restored p95Flow = %v, pre-crash %v; flow histogram not carried through the snapshot", got, want)
	}
}
