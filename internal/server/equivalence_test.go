package server

import (
	"fmt"
	"testing"

	"divflow/internal/model"
	"divflow/internal/schedule"
	"divflow/internal/sim"
	"divflow/internal/workload"
)

// TestSingleShardEquivalence pins the sharding refactor to the pre-shard
// behavior: a one-shard server driven over a virtual clock — each job
// submitted exactly at its release date — must execute event-for-event the
// same trace as the closed-world simulator (sim.Run) on the identical
// instance: the same pieces (machine, job, window, fraction) in the same
// order, hence the same completions and flows.
func TestSingleShardEquivalence(t *testing.T) {
	for _, policy := range []string{"online-mwf-lazy", "mct", "srpt"} {
		for _, seed := range []int64{1, 4, 9} {
			t.Run(fmt.Sprintf("%s/seed=%d", policy, seed), func(t *testing.T) {
				cfg := workload.Default()
				cfg.Jobs = 12
				cfg.Machines = 3
				cfg.Seed = seed
				inst := workload.MustGenerate(cfg)

				refPol, err := NewPolicy(policy)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := sim.Run(inst, refPol)
				if err != nil {
					t.Fatal(err)
				}

				vc := NewVirtualClock()
				srv, err := New(Config{Machines: inst.Machines, Policy: policy, Clock: vc, Shards: 1})
				if err != nil {
					t.Fatal(err)
				}
				defer srv.Close()
				srv.Start()

				// Submit each job at exactly its release date, waiting for
				// admission before moving the clock again — the service then
				// sees the same arrival sequence as the simulator.
				submitted := 0
				for j := 0; j < inst.N(); {
					r := inst.Jobs[j].Release
					vc.Advance(r)
					for j < inst.N() && inst.Jobs[j].Release.Cmp(r) == 0 {
						id, err := srv.Submit(&model.SubmitRequest{
							Name:      inst.Jobs[j].Name,
							Weight:    inst.Jobs[j].Weight.RatString(),
							Size:      inst.Jobs[j].Size.RatString(),
							Databanks: inst.Jobs[j].Databanks,
						})
						if err != nil {
							t.Fatal(err)
						}
						if id != j {
							t.Fatalf("job %d got global ID %d; one shard must keep IDs dense", j, id)
						}
						j++
						submitted++
					}
					waitStats(t, srv, func(st model.StatsResponse) bool {
						return st.BatchedArrivals >= submitted
					})
				}
				drive(t, vc, func() bool { return srv.Stats().JobsCompleted == inst.N() })

				sh := srv.shards[0]
				sh.mu.Lock()
				got := append([]schedule.Piece(nil), sh.eng.Schedule().Pieces...)
				completions := make([]string, inst.N())
				for id, rec := range sh.records {
					completions[id] = rec.completed.RatString()
				}
				sh.mu.Unlock()

				want := ref.Schedule.Pieces
				if len(got) != len(want) {
					t.Fatalf("trace has %d pieces, simulator has %d\nserver:\n%v\nsim:\n%v",
						len(got), len(want), (&schedule.Schedule{Pieces: got}).String(), ref.Schedule.String())
				}
				for k := range want {
					g, w := &got[k], &want[k]
					if g.Machine != w.Machine || g.Job != w.Job ||
						g.Start.Cmp(w.Start) != 0 || g.End.Cmp(w.End) != 0 ||
						g.Fraction.Cmp(w.Fraction) != 0 {
						t.Fatalf("piece %d diverges: server M%d J%d [%s,%s) f=%s, sim M%d J%d [%s,%s) f=%s",
							k, g.Machine, g.Job, g.Start.RatString(), g.End.RatString(), g.Fraction.RatString(),
							w.Machine, w.Job, w.Start.RatString(), w.End.RatString(), w.Fraction.RatString())
					}
				}
				refCompletions := ref.Schedule.Completions(inst.N())
				for id := range completions {
					if completions[id] != refCompletions[id].RatString() {
						t.Errorf("job %d completes at %s, simulator at %s",
							id, completions[id], refCompletions[id].RatString())
					}
				}
				if st := srv.Stats(); st.MaxWeightedFlow != ref.MaxWeightedFlow.RatString() {
					t.Errorf("maxWeightedFlow = %s, simulator %s", st.MaxWeightedFlow, ref.MaxWeightedFlow.RatString())
				}
			})
		}
	}
}
