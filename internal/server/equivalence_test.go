package server

import (
	"fmt"
	"math/big"
	"testing"

	"divflow/internal/model"
	"divflow/internal/schedule"
	"divflow/internal/sim"
	"divflow/internal/workload"
)

// TestSingleShardEquivalence pins the sharding refactor to the pre-shard
// behavior: a one-shard server driven over a virtual clock — each job
// submitted exactly at its release date — must execute event-for-event the
// same trace as the closed-world simulator (sim.Run) on the identical
// instance: the same pieces (machine, job, window, fraction) in the same
// order, hence the same completions and flows. Both steal settings are
// driven: with P=1 stealing is vacuous (there is no other shard to steal
// from), so steal=on must replay exactly like steal=off.
func TestSingleShardEquivalence(t *testing.T) {
	for _, policy := range []string{"online-mwf-lazy", "mct", "srpt"} {
		for _, seed := range []int64{1, 4, 9} {
			for _, steal := range []bool{true, false} {
				t.Run(fmt.Sprintf("%s/seed=%d/steal=%v", policy, seed, steal), func(t *testing.T) {
					testSingleShardEquivalence(t, policy, seed, steal)
				})
			}
		}
	}
}

func testSingleShardEquivalence(t *testing.T, policy string, seed int64, steal bool) {
	cfg := workload.Default()
	cfg.Jobs = 12
	cfg.Machines = 3
	cfg.Seed = seed
	inst := workload.MustGenerate(cfg)

	refPol, err := NewPolicy(policy)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.Run(inst, refPol)
	if err != nil {
		t.Fatal(err)
	}

	vc := NewVirtualClock()
	srv, err := New(Config{Machines: inst.Machines, Policy: policy, Clock: vc, Shards: 1, DisableSteal: !steal})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Start()

	// Submit each job at exactly its release date, waiting for
	// admission before moving the clock again — the service then
	// sees the same arrival sequence as the simulator.
	submitted := 0
	for j := 0; j < inst.N(); {
		r := inst.Jobs[j].Release
		vc.Advance(r)
		for j < inst.N() && inst.Jobs[j].Release.Cmp(r) == 0 {
			resp, err := srv.Submit(&model.SubmitRequest{
				Name:      inst.Jobs[j].Name,
				Weight:    inst.Jobs[j].Weight.RatString(),
				Size:      inst.Jobs[j].Size.RatString(),
				Databanks: inst.Jobs[j].Databanks,
			})
			if err != nil {
				t.Fatal(err)
			}
			if resp.ID != j {
				t.Fatalf("job %d got global ID %d; one shard must keep IDs dense", j, resp.ID)
			}
			j++
			submitted++
		}
		waitStats(t, srv, func(st model.StatsResponse) bool {
			return st.BatchedArrivals >= submitted
		})
	}
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == inst.N() })

	sh := srv.active()[0]
	sh.mu.Lock()
	got := append([]schedule.Piece(nil), sh.eng.Schedule().Pieces...)
	completions := make([]string, inst.N())
	for id, rec := range sh.records {
		completions[id] = rec.completed.RatString()
	}
	sh.mu.Unlock()

	comparePieces(t, got, ref.Schedule.Pieces)
	refCompletions := ref.Schedule.Completions(inst.N())
	for id := range completions {
		if completions[id] != refCompletions[id].RatString() {
			t.Errorf("job %d completes at %s, simulator at %s",
				id, completions[id], refCompletions[id].RatString())
		}
	}
	if st := srv.Stats(); st.MaxWeightedFlow != ref.MaxWeightedFlow.RatString() {
		t.Errorf("maxWeightedFlow = %s, simulator %s", st.MaxWeightedFlow, ref.MaxWeightedFlow.RatString())
	}
}

// comparePieces requires two executed traces to match piece-for-piece.
func comparePieces(t *testing.T, got, want []schedule.Piece) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trace has %d pieces, reference has %d\nserver:\n%v\nref:\n%v",
			len(got), len(want), (&schedule.Schedule{Pieces: got}).String(), (&schedule.Schedule{Pieces: want}).String())
	}
	for k := range want {
		g, w := &got[k], &want[k]
		if g.Machine != w.Machine || g.Job != w.Job ||
			g.Start.Cmp(w.Start) != 0 || g.End.Cmp(w.End) != 0 ||
			g.Fraction.Cmp(w.Fraction) != 0 {
			t.Fatalf("piece %d diverges: server M%d J%d [%s,%s) f=%s, ref M%d J%d [%s,%s) f=%s",
				k, g.Machine, g.Job, g.Start.RatString(), g.End.RatString(), g.Fraction.RatString(),
				w.Machine, w.Job, w.Start.RatString(), w.End.RatString(), w.Fraction.RatString())
		}
	}
}

// TestStealOffShardEquivalence pins the -steal=false code path to PR 3
// behavior on a *multi*-shard fleet: with stealing disabled each shard is an
// independent scheduling loop over exactly the jobs the router gave it, so
// its trace must replay event-for-event like the closed-world simulator run
// on that shard's machines and routed jobs. (With stealing enabled the
// same workload may migrate — the point of the feature; this test is the
// control group proving the flag really pins the old behavior.)
func TestStealOffShardEquivalence(t *testing.T) {
	for _, policy := range []string{"online-mwf-lazy", "srpt"} {
		t.Run(policy, func(t *testing.T) {
			cfg := workload.Default()
			cfg.Jobs = 14
			cfg.Machines = 4
			cfg.Seed = 3
			base := workload.MustGenerate(cfg)

			vc := NewVirtualClock()
			srv, err := New(Config{Machines: uniformFleet(4), Policy: policy, Clock: vc, Shards: 2, DisableSteal: true})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			srv.Start()

			submitted := 0
			for j := 0; j < base.N(); {
				r := base.Jobs[j].Release
				vc.Advance(r)
				for j < base.N() && base.Jobs[j].Release.Cmp(r) == 0 {
					if _, err := srv.Submit(&model.SubmitRequest{
						Name:   base.Jobs[j].Name,
						Weight: base.Jobs[j].Weight.RatString(),
						Size:   base.Jobs[j].Size.RatString(),
						// Hosted by every machine: the router is free to
						// balance, and (were stealing on) any shard could
						// steal — the adversarial case for the flag.
						Databanks: []string{"shared"},
					}); err != nil {
						t.Fatal(err)
					}
					j++
					submitted++
				}
				waitStats(t, srv, func(st model.StatsResponse) bool {
					return st.BatchedArrivals >= submitted
				})
			}
			drive(t, vc, func() bool { return srv.Stats().JobsCompleted == base.N() })

			st := srv.Stats()
			if st.Migrations != 0 || st.StolenJobs != 0 {
				t.Fatalf("steal=off migrated %d/%d jobs", st.Migrations, st.StolenJobs)
			}
			// Per shard: rebuild the instance the router effectively gave it
			// (records in local-ID order are release-ordered) and require the
			// shard's trace to match the closed-world simulator exactly.
			for _, sh := range srv.allShards() {
				sh.mu.Lock()
				jobs := make([]model.Job, len(sh.records))
				for i, rec := range sh.records {
					jobs[i] = model.Job{
						Name:      rec.name,
						Release:   new(big.Rat).Set(rec.release),
						Weight:    new(big.Rat).Set(rec.weight),
						Size:      new(big.Rat).Set(rec.size),
						Databanks: rec.databanks,
					}
				}
				got := append([]schedule.Piece(nil), sh.eng.Schedule().Pieces...)
				machines := sh.machines
				sh.mu.Unlock()
				if len(jobs) == 0 {
					t.Fatalf("shard %d got no jobs; routing starved it", sh.idx)
				}
				inst, err := model.NewInstance(jobs, machines)
				if err != nil {
					t.Fatal(err)
				}
				refPol, err := NewPolicy(policy)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := sim.Run(inst, refPol)
				if err != nil {
					t.Fatalf("shard %d reference run: %v", sh.idx, err)
				}
				comparePieces(t, got, ref.Schedule.Pieces)
			}
		})
	}
}
