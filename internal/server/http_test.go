package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/big"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"divflow/internal/model"
	"divflow/internal/schedule"
	"divflow/internal/workload"
)

func postJob(t *testing.T, url string, req model.SubmitRequest) model.SubmitResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d", resp.StatusCode)
	}
	var out model.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// submitRequests converts generated jobs into wire submissions.
func submitRequests(inst *model.Instance) []model.SubmitRequest {
	reqs := make([]model.SubmitRequest, inst.N())
	for j := range reqs {
		reqs[j] = model.SubmitRequest{
			Name:      inst.Jobs[j].Name,
			Weight:    inst.Jobs[j].Weight.RatString(),
			Size:      inst.Jobs[j].Size.RatString(),
			Databanks: inst.Jobs[j].Databanks,
		}
	}
	return reqs
}

// validateService rebuilds the offline instance from the served job
// statuses and checks the executed trace against the exact validator.
func validateService(t *testing.T, baseURL string, machines []model.Machine, n int) {
	t.Helper()
	jobs := make([]model.Job, n)
	for id := 0; id < n; id++ {
		var st model.JobStatus
		getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", baseURL, id), &st)
		if st.State != StateDone {
			t.Fatalf("job %d state = %s, want done", id, st.State)
		}
		release, ok := new(big.Rat).SetString(st.Release)
		if !ok {
			t.Fatalf("job %d release %q", id, st.Release)
		}
		weight, _ := new(big.Rat).SetString(st.Weight)
		size, _ := new(big.Rat).SetString(st.Size)
		jobs[id] = model.Job{Name: st.Name, Release: release, Weight: weight, Size: size, Databanks: st.Databanks}
	}
	// Admission order is non-decreasing in time, so instance job indices
	// coincide with service job IDs after the model's stable sort.
	inst, err := model.NewInstance(jobs, machines)
	if err != nil {
		t.Fatal(err)
	}
	var schedResp model.ScheduleResponse
	getJSON(t, baseURL+"/v1/schedule", &schedResp)
	var sched schedule.Schedule
	if err := json.Unmarshal(schedResp.Schedule, &sched); err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(inst, schedule.Divisible, nil); err != nil {
		t.Fatalf("served schedule invalid: %v", err)
	}
}

// TestOnlineMWFBatchingAndCaching is the acceptance test of the divflowd
// subsystem: 100 jobs submitted concurrently over HTTP before the loop
// starts land in a single admission batch at virtual t=0, so the exact
// solver runs once; every later event (completions, plan reviews) is served
// from the cached plan, so stats must show far fewer LP solves than events.
func TestOnlineMWFBatchingAndCaching(t *testing.T) {
	cfg := workload.Default()
	cfg.Jobs = 100
	cfg.Machines = 3
	cfg.Databanks = 3
	cfg.Seed = 7
	inst := workload.MustGenerate(cfg)

	vc := NewVirtualClock()
	srv, err := New(Config{Machines: inst.Machines, Policy: "online-mwf-lazy", Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// 20 concurrent clients submit 5 jobs each while the clock sits at 0.
	reqs := submitRequests(inst)
	var wg sync.WaitGroup
	for c := 0; c < 20; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				postJob(t, ts.URL, reqs[c*5+k])
			}
		}(c)
	}
	wg.Wait()

	srv.Start()
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == cfg.Jobs })

	var stats model.StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.JobsAccepted != cfg.Jobs || stats.JobsCompleted != cfg.Jobs {
		t.Fatalf("accepted %d completed %d, want %d", stats.JobsAccepted, stats.JobsCompleted, cfg.Jobs)
	}
	// All jobs were pending when the loop started: one admission batch,
	// hence exactly one exact LP solve.
	if stats.ArrivalBatches != 1 || stats.LargestBatch != cfg.Jobs {
		t.Errorf("arrivalBatches=%d largestBatch=%d, want 1 batch of %d",
			stats.ArrivalBatches, stats.LargestBatch, cfg.Jobs)
	}
	if stats.LPSolves != 1 {
		t.Errorf("lpSolves = %d, want exactly 1 (batching amortizes the LP)", stats.LPSolves)
	}
	if stats.LPSolves >= stats.Events {
		t.Errorf("lpSolves = %d not fewer than events = %d", stats.LPSolves, stats.Events)
	}
	if stats.PlanCacheHits == 0 {
		t.Error("expected plan-cache hits at completion/review events")
	}
	if stats.Stalled || stats.LastError != "" {
		t.Fatalf("service unhealthy: stalled=%v err=%q", stats.Stalled, stats.LastError)
	}
	validateService(t, ts.URL, inst.Machines, cfg.Jobs)
}

// TestSecondWaveResolves drives a first wave to completion, then submits a
// second wave at a later virtual time: the scheduler must re-solve (the
// fingerprint no longer matches) yet keep solves below events.
func TestSecondWaveResolves(t *testing.T) {
	cfg := workload.Default()
	cfg.Jobs = 12
	cfg.Machines = 2
	cfg.Seed = 3
	inst := workload.MustGenerate(cfg)
	reqs := submitRequests(inst)

	vc := NewVirtualClock()
	srv, err := New(Config{Machines: inst.Machines, Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, req := range reqs[:6] {
		postJob(t, ts.URL, req)
	}
	srv.Start()
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 6 })
	for _, req := range reqs[6:] {
		postJob(t, ts.URL, req)
	}
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == len(reqs) })

	stats := srv.Stats()
	if stats.LPSolves < 2 {
		t.Errorf("lpSolves = %d, want >= 2 (second wave must re-solve)", stats.LPSolves)
	}
	if stats.LPSolves >= stats.Events {
		t.Errorf("lpSolves = %d not fewer than events = %d", stats.LPSolves, stats.Events)
	}
	validateService(t, ts.URL, inst.Machines, len(reqs))
}

// TestConcurrentSubmissionUnderRace hammers a live server — tens of
// concurrent HTTP clients submitting generator-driven jobs while a driver
// goroutine advances the virtual clock — and verifies every accepted job
// completes and the reported schedule passes the exact validator. Run with
// -race this doubles as the data-race check on the service boundary.
func TestConcurrentSubmissionUnderRace(t *testing.T) {
	const clients, perClient = 30, 4
	cfg := workload.Default()
	cfg.Jobs = clients * perClient
	cfg.Machines = 4
	cfg.Databanks = 4
	cfg.Replication = 2
	cfg.Seed = 11
	inst := workload.MustGenerate(cfg)
	reqs := submitRequests(inst)

	vc := NewVirtualClock()
	// MCT involves no LP, so heavy live-set sizes stay cheap: this test is
	// about the concurrent service boundary, not the solver.
	srv, err := New(Config{Machines: inst.Machines, Policy: "mct", Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Start()

	stop := make(chan struct{})
	var driver sync.WaitGroup
	driver.Add(1)
	go func() {
		defer driver.Done()
		for {
			select {
			case <-stop:
				return
			default:
				vc.AdvanceToNextTimer()
			}
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				postJob(t, ts.URL, reqs[c*perClient+k])
			}
		}(c)
	}
	wg.Wait()
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == cfg.Jobs })
	close(stop)
	driver.Wait()

	stats := srv.Stats()
	if stats.JobsCompleted != cfg.Jobs || stats.Stalled {
		t.Fatalf("completed %d/%d, stalled=%v, lastError=%q",
			stats.JobsCompleted, cfg.Jobs, stats.Stalled, stats.LastError)
	}
	validateService(t, ts.URL, inst.Machines, cfg.Jobs)
}

func TestHTTPErrorsAndWindowing(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: testFleet(), Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(`{"size":"0"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("invalid submission = %d, want 422", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/99")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/schedule?since=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad since = %d, want 400", resp.StatusCode)
	}

	postJob(t, ts.URL, model.SubmitRequest{Size: "3", Databanks: []string{"swissprot"}})
	srv.Start()
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 1 })

	var full, empty model.ScheduleResponse
	getJSON(t, ts.URL+"/v1/schedule", &full)
	getJSON(t, ts.URL+"/v1/schedule?since=1000", &empty)
	var fullSched, emptySched schedule.Schedule
	if err := json.Unmarshal(full.Schedule, &fullSched); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(empty.Schedule, &emptySched); err != nil {
		t.Fatal(err)
	}
	if len(fullSched.Pieces) == 0 || len(emptySched.Pieces) != 0 {
		t.Errorf("windowing: full=%d pieces, since-1000=%d pieces", len(fullSched.Pieces), len(emptySched.Pieces))
	}
}
