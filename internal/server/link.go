package server

import (
	"fmt"
	"math/big"
	"net/rpc"

	"divflow/internal/obs"
	"divflow/internal/shardlink"
)

// This file is the server side of the shardlink boundary: the shard-level
// handlers behind every transport, plus the two Link implementations —
// localLink (direct in-process calls, today's behavior bit-for-bit) and
// rpcLink (net/rpc over a loopback pipe or a worker's TCP socket). The
// router holds exactly one Link per shard and speaks to the shard only
// through it; which transport sits behind the Link is invisible above this
// file.

// Migration reasons carried in shardlink.AdmitArgs and the WAL.
const (
	migrateSteal   = "steal"
	migrateReshard = "reshard"
)

// Operation labels of the divflow_shardlink_calls_total counter and the
// divflow_shardlink_rpc_seconds histogram.
const (
	opSubmit        = "submit"
	opCheckDeadline = "check_deadline"
	opJobStatus     = "job_status"
	opSchedule      = "schedule"
	opStats         = "stats"
	opRouteInfo     = "route_info"
	opPoke          = "poke"
	opExtract       = "extract"
	opAdmit         = "admit"
	opCommit        = "commit"
	opAbort         = "abort"
)

var linkOps = []string{
	opSubmit, opCheckDeadline, opJobStatus, opSchedule, opStats, opRouteInfo, opPoke,
	opExtract, opAdmit, opCommit, opAbort,
}

// ---------------------------------------------------------------------------
// Shard-side operation handlers. These are what both transports ultimately
// invoke; each takes the shard's own mu and nothing beyond it.

// submitOp is shard.submit in message form: the error cases the router keys
// its control flow on (retired → re-route, closed → 503, no-host → 422,
// infeasible deadline → typed reject with the certificate) travel as a
// closed outcome enum, so they survive any transport.
func (sh *shard) submitOp(args shardlink.SubmitArgs) shardlink.SubmitReply {
	gid, cert, err := sh.submit(args.Job)
	switch {
	case err == nil:
		return shardlink.SubmitReply{GID: gid, Outcome: shardlink.OutcomeOK, Admission: cert}
	case err == errRetired:
		return shardlink.SubmitReply{Outcome: shardlink.OutcomeRetired}
	case err == ErrClosed:
		return shardlink.SubmitReply{Outcome: shardlink.OutcomeClosed}
	case err == errDeadline:
		return shardlink.SubmitReply{Outcome: shardlink.OutcomeDeadline, Admission: cert}
	default:
		return shardlink.SubmitReply{Outcome: shardlink.OutcomeNoHost, Err: err.Error()}
	}
}

// submitErr maps a SubmitReply back to the router's error vocabulary,
// restoring sentinel identity so Submit's retry loop and the HTTP status
// mapping behave identically on every transport.
func submitErr(rep shardlink.SubmitReply) (int, error) {
	switch rep.Outcome {
	case shardlink.OutcomeOK:
		return rep.GID, nil
	case shardlink.OutcomeRetired:
		return 0, errRetired
	case shardlink.OutcomeClosed:
		return 0, ErrClosed
	case shardlink.OutcomeDeadline:
		return 0, errDeadline
	default:
		return 0, fmt.Errorf("%s", rep.Err)
	}
}

// extractJobs is the reserve phase of a two-phase migration, on the donor:
// catch up, take the steal census against the thief's machines, and pull the
// selected jobs out of the engine and the pending queue. The extracted
// records are *reserved*, not yet migrated — they stay readable at their
// pre-move state (no not-found window while the messages are in flight) and
// their work stays in the donor's backlog until commitExtract, so the
// router's view of fleet-wide residual work never dips mid-exchange.
func (sh *shard) extractJobs(args shardlink.ExtractArgs) shardlink.ExtractReply {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed || sh.retired || sh.freed || sh.lastErr != nil {
		return shardlink.ExtractReply{}
	}
	// Same reason as the in-process path: remaining fractions must reflect
	// everything (notionally) executed up to the present, and the catch-up's
	// re-solve must happen before the census reads the engine.
	if _, ok := sh.catchUp(); !ok {
		return shardlink.ExtractReply{}
	}
	items := sh.stealCensus(func(databanks []string) bool {
		return hostsAny(args.ThiefMachines, databanks)
	})
	var rep shardlink.ExtractReply
	for _, it := range items {
		rec := it.rec
		remaining := rec.remaining
		if it.live {
			rj, err := sh.eng.Remove(rec.id)
			if err != nil {
				// Unreachable while the census runs under the same lock; skip
				// rather than poison the migration.
				continue
			}
			remaining = rj.Remaining
			rep.RemovedLive = true
		} else {
			pending := sh.pending[:0]
			for _, p := range sh.pending {
				if p != rec {
					pending = append(pending, p)
				}
			}
			sh.pending = pending
		}
		// Reserve: out of the engine and the queue, eligibility scrubbed so
		// no local re-admission can resurrect it, exact remaining stored on
		// the record for the abort give-back.
		for i := range sh.eligible {
			delete(sh.eligible[i], rec.id)
		}
		rec.remaining = copyRat(remaining)
		rep.Jobs = append(rep.Jobs, shardlink.MigratedJob{
			FromLocal: rec.id,
			GID:       rec.gid,
			Name:      rec.name,
			Weight:    copyRat(rec.weight),
			Size:      copyRat(rec.size),
			Release:   copyRat(rec.release),
			Remaining: copyRat(remaining),
			Databanks: rec.databanks,
			Counted:   rec.counted,
			Deadline:  copyRat(rec.deadline),
			Tenant:    rec.tenant,
			SLAClass:  rec.slaClass,
		})
	}
	// Re-plan immediately: the extraction invalidated the plan cache, and the
	// machines that ran the extracted jobs must not idle for a whole message
	// round-trip waiting for the commit.
	if rep.RemovedLive && sh.lastErr == nil {
		sh.decide()
	}
	return rep
}

// admitMigrated is the adoption phase on the destination: the mirrored
// adoptRecord over wire-form jobs. Accepted=false — the shard retired,
// closed, or latched an error while the exchange was in flight, or (for a
// steal) went busy — tells the router to abort the donor's reservation.
func (sh *shard) admitMigrated(args shardlink.AdmitArgs) shardlink.AdmitReply {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed || sh.retired || sh.lastErr != nil {
		return shardlink.AdmitReply{}
	}
	// Same rule the locked path enforces on the thief: stealing onto a shard
	// that already has work helps nobody — a submission raced the exchange.
	if args.Reason == migrateSteal && (sh.eng.Live() > 0 || len(sh.pending) > 0) {
		return shardlink.AdmitReply{}
	}
	rep := shardlink.AdmitReply{Accepted: true}
	added := new(big.Rat)
	addedTenants := make(map[string]*big.Rat)
	for _, mj := range args.Jobs {
		nrec := &jobRecord{
			id:        len(sh.records),
			gid:       mj.GID, // the global ID survives the move
			name:      mj.Name,
			weight:    copyRat(mj.Weight),
			size:      copyRat(mj.Size),
			databanks: mj.Databanks,
			state:     StateQueued,
			release:   copyRat(mj.Release), // flow origin: still the first submission
			remaining: copyRat(mj.Remaining),
			deadline:  copyRat(mj.Deadline),
			tenant:    mj.Tenant,
			slaClass:  mj.SLAClass,
			stolen:    true,
			counted:   mj.Counted,
		}
		sh.records = append(sh.records, nrec)
		sh.pending = append(sh.pending, nrec)
		for i := range sh.machines {
			if sh.machines[i].Hosts(nrec.databanks) {
				sh.eligible[i][nrec.id] = true
			}
		}
		if args.Reason == migrateReshard {
			sh.reshardIn++
		} else {
			sh.stolenIn++
		}
		added.Add(added, nrec.size)
		if nrec.tenant != "" {
			if addedTenants[nrec.tenant] == nil {
				addedTenants[nrec.tenant] = new(big.Rat)
			}
			addedTenants[nrec.tenant].Add(addedTenants[nrec.tenant], nrec.size)
		}
		rep.Locals = append(rep.Locals, nrec.id)
		sh.obs.event(obs.EventMigrate, nrec.gid, nil, fmt.Sprintf("%s migration admitted", args.Reason))
	}
	if added.Sign() > 0 {
		sh.backlogMu.Lock()
		sh.backlog.Add(sh.backlog, added)
		for t, v := range addedTenants {
			sh.tenantBacklogAdd(t, v)
		}
		sh.backlogMu.Unlock()
		sh.obs.event(obs.EventSteal, -1, sh.eng.Now(),
			fmt.Sprintf("%d jobs admitted by %s migration", len(args.Jobs), args.Reason))
	}
	return rep
}

// commitExtract finishes a two-phase migration on the donor: the reserved
// records flip to the migrated state (readable only through the forwarding
// table, which the router updated before committing) and the moved work
// finally leaves the donor's backlog.
func (sh *shard) commitExtract(args shardlink.CommitArgs) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.freed {
		return
	}
	moved := new(big.Rat)
	movedTenants := make(map[string]*big.Rat)
	for _, local := range args.Locals {
		if local < 0 || local >= len(sh.records) || sh.records[local] == nil {
			continue
		}
		rec := sh.records[local]
		if rec.state == StateMigrated {
			continue
		}
		sh.orphanRecord(rec)
		sh.migratedOut++
		moved.Add(moved, rec.size)
		if rec.tenant != "" {
			if movedTenants[rec.tenant] == nil {
				movedTenants[rec.tenant] = new(big.Rat)
			}
			movedTenants[rec.tenant].Add(movedTenants[rec.tenant], rec.size)
		}
	}
	if moved.Sign() == 0 {
		return
	}
	sh.backlogMu.Lock()
	sh.backlog.Sub(sh.backlog, moved)
	for t, v := range movedTenants {
		sh.tenantBacklogSub(t, v)
	}
	sh.backlogMu.Unlock()
}

// abortExtract is the give-back path: the destination refused (or the
// transport failed before adoption), so the reserved records re-enter the
// pending queue with their exact remaining fractions — re-admission through
// admitAll conserves every piece of executed work, under the record's
// original local ID (the engine accepts a removed ID back).
func (sh *shard) abortExtract(args shardlink.AbortArgs) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.freed {
		return
	}
	readmitted := false
	for _, local := range args.Locals {
		if local < 0 || local >= len(sh.records) || sh.records[local] == nil {
			continue
		}
		rec := sh.records[local]
		if rec.state == StateMigrated {
			continue
		}
		sh.pending = append(sh.pending, rec)
		for i := range sh.machines {
			if sh.machines[i].Hosts(rec.databanks) {
				sh.eligible[i][rec.id] = true
			}
		}
		readmitted = true
	}
	if readmitted {
		sh.poke()
	}
}

// ---------------------------------------------------------------------------
// In-process transport.

// localLink is the in-process transport: direct calls into the shard under
// its own mutex, exactly the pre-boundary code path, plus the per-transport
// call counters. It never returns an error.
type localLink struct {
	sh    *shard
	calls map[string]*obs.Counter // op → prebuilt child; read-only after build
}

// linkCallCounters prebuilds one transport's counter children, so the hot
// paths increment an atomic instead of locking the family map per call.
func linkCallCounters(t *telemetry, transport string) map[string]*obs.Counter {
	m := make(map[string]*obs.Counter, len(linkOps))
	for _, op := range linkOps {
		m[op] = t.linkCalls.With(transport, op)
	}
	return m
}

func newLocalLink(t *telemetry, sh *shard) *localLink {
	return &localLink{sh: sh, calls: linkCallCounters(t, shardlink.TransportInproc)}
}

func (l *localLink) Transport() string { return shardlink.TransportInproc }

func (l *localLink) Submit(args shardlink.SubmitArgs) (shardlink.SubmitReply, error) {
	l.calls[opSubmit].Inc()
	return l.sh.submitOp(args), nil
}

func (l *localLink) CheckDeadline(args shardlink.CheckDeadlineArgs) (shardlink.CheckDeadlineReply, error) {
	l.calls[opCheckDeadline].Inc()
	return l.sh.checkDeadline(args), nil
}

func (l *localLink) JobStatus(args shardlink.JobStatusArgs) (shardlink.JobStatusReply, error) {
	l.calls[opJobStatus].Inc()
	st, known, migrated := l.sh.jobStatus(args.Local, args.GID)
	return shardlink.JobStatusReply{Status: st, Known: known, Migrated: migrated}, nil
}

func (l *localLink) Schedule(args shardlink.ScheduleArgs) (shardlink.ScheduleReply, error) {
	l.calls[opSchedule].Inc()
	pieces, now, makespan := l.sh.scheduleSnapshot(args.Since)
	return shardlink.ScheduleReply{Pieces: pieces, Now: now, Makespan: makespan}, nil
}

func (l *localLink) Stats(shardlink.StatsArgs) (shardlink.StatsSnapshot, error) {
	l.calls[opStats].Inc()
	return l.sh.statsSnapshot(), nil
}

func (l *localLink) RouteInfo(shardlink.RouteInfoArgs) (shardlink.RouteInfoReply, error) {
	l.calls[opRouteInfo].Inc()
	backlog, routeErr, tenants := l.sh.routeInfo()
	return shardlink.RouteInfoReply{Backlog: backlog, Err: routeErr, TenantBacklog: tenants}, nil
}

func (l *localLink) Poke(shardlink.PokeArgs) error {
	l.calls[opPoke].Inc()
	l.sh.poke()
	return nil
}

func (l *localLink) ExtractJobs(args shardlink.ExtractArgs) (shardlink.ExtractReply, error) {
	l.calls[opExtract].Inc()
	return l.sh.extractJobs(args), nil
}

func (l *localLink) AdmitMigrated(args shardlink.AdmitArgs) (shardlink.AdmitReply, error) {
	l.calls[opAdmit].Inc()
	return l.sh.admitMigrated(args), nil
}

func (l *localLink) CommitExtract(args shardlink.CommitArgs) error {
	l.calls[opCommit].Inc()
	l.sh.commitExtract(args)
	return nil
}

func (l *localLink) AbortExtract(args shardlink.AbortArgs) error {
	l.calls[opAbort].Inc()
	l.sh.abortExtract(args)
	return nil
}

// ---------------------------------------------------------------------------
// RPC transport.

// shardRPC is one shard's net/rpc service ("Shard<idx>"): the gob-decoded
// mirror of localLink, registered per shard on the loopback server and in
// worker processes. A handler is pinned to its own shard at registration —
// no message can name another shard, so no handler can ever need a second
// shard's mutex; the lockorder analyzer enforces that shape through the
// boundary facts below.
type shardRPC struct {
	sh *shard
}

//divflow:locks boundary=shardlink
func (r *shardRPC) Submit(args *shardlink.SubmitArgs, reply *shardlink.SubmitReply) error {
	*reply = r.sh.submitOp(*args)
	return nil
}

//divflow:locks boundary=shardlink
func (r *shardRPC) CheckDeadline(args *shardlink.CheckDeadlineArgs, reply *shardlink.CheckDeadlineReply) error {
	*reply = r.sh.checkDeadline(*args)
	return nil
}

//divflow:locks boundary=shardlink
func (r *shardRPC) JobStatus(args *shardlink.JobStatusArgs, reply *shardlink.JobStatusReply) error {
	st, known, migrated := r.sh.jobStatus(args.Local, args.GID)
	*reply = shardlink.JobStatusReply{Status: st, Known: known, Migrated: migrated}
	return nil
}

//divflow:locks boundary=shardlink
func (r *shardRPC) Schedule(args *shardlink.ScheduleArgs, reply *shardlink.ScheduleReply) error {
	pieces, now, makespan := r.sh.scheduleSnapshot(args.Since)
	*reply = shardlink.ScheduleReply{Pieces: pieces, Now: now, Makespan: makespan}
	return nil
}

//divflow:locks boundary=shardlink
func (r *shardRPC) Stats(_ *shardlink.StatsArgs, reply *shardlink.StatsSnapshot) error {
	*reply = r.sh.statsSnapshot()
	return nil
}

//divflow:locks boundary=shardlink
func (r *shardRPC) RouteInfo(_ *shardlink.RouteInfoArgs, reply *shardlink.RouteInfoReply) error {
	backlog, routeErr, tenants := r.sh.routeInfo()
	*reply = shardlink.RouteInfoReply{Backlog: backlog, Err: routeErr, TenantBacklog: tenants}
	return nil
}

//divflow:locks boundary=shardlink
func (r *shardRPC) Poke(_ *shardlink.PokeArgs, _ *shardlink.PokeReply) error {
	r.sh.poke()
	return nil
}

//divflow:locks boundary=shardlink
func (r *shardRPC) ExtractJobs(args *shardlink.ExtractArgs, reply *shardlink.ExtractReply) error {
	*reply = r.sh.extractJobs(*args)
	return nil
}

//divflow:locks boundary=shardlink
func (r *shardRPC) AdmitMigrated(args *shardlink.AdmitArgs, reply *shardlink.AdmitReply) error {
	*reply = r.sh.admitMigrated(*args)
	return nil
}

//divflow:locks boundary=shardlink
func (r *shardRPC) CommitExtract(args *shardlink.CommitArgs, _ *shardlink.CommitReply) error {
	r.sh.commitExtract(*args)
	return nil
}

//divflow:locks boundary=shardlink
func (r *shardRPC) AbortExtract(args *shardlink.AbortArgs, _ *shardlink.AbortReply) error {
	r.sh.abortExtract(*args)
	return nil
}

// rpcLink speaks to a shardRPC service over one net/rpc client — a loopback
// pipe in Transport="rpc" mode, a worker's TCP socket in -worker fleets. The
// client multiplexes concurrent calls over the single connection.
type rpcLink struct {
	c     *rpc.Client
	svc   string // registered service name: "Shard<idx>"
	tel   *telemetry
	calls map[string]*obs.Counter
	lat   map[string]*obs.Histogram
}

func newRPCLink(t *telemetry, c *rpc.Client, svc string) *rpcLink {
	l := &rpcLink{
		c:     c,
		svc:   svc,
		tel:   t,
		calls: linkCallCounters(t, shardlink.TransportRPC),
		lat:   make(map[string]*obs.Histogram, len(linkOps)),
	}
	for _, op := range linkOps {
		l.lat[op] = t.rpcSeconds.With(op)
	}
	return l
}

func (l *rpcLink) Transport() string { return shardlink.TransportRPC }

// call is every RPC operation's round trip: counted per transport, timed
// into the RPC latency histogram (wall clock read only with telemetry on).
func (l *rpcLink) call(op, method string, args, reply any) error {
	l.calls[op].Inc()
	start := l.tel.now()
	err := l.c.Call(l.svc+"."+method, args, reply)
	if !start.IsZero() {
		l.lat[op].Observe(l.tel.sinceSeconds(start))
	}
	return err
}

func (l *rpcLink) Submit(args shardlink.SubmitArgs) (shardlink.SubmitReply, error) {
	var rep shardlink.SubmitReply
	err := l.call(opSubmit, "Submit", &args, &rep)
	return rep, err
}

func (l *rpcLink) CheckDeadline(args shardlink.CheckDeadlineArgs) (shardlink.CheckDeadlineReply, error) {
	var rep shardlink.CheckDeadlineReply
	err := l.call(opCheckDeadline, "CheckDeadline", &args, &rep)
	return rep, err
}

func (l *rpcLink) JobStatus(args shardlink.JobStatusArgs) (shardlink.JobStatusReply, error) {
	var rep shardlink.JobStatusReply
	err := l.call(opJobStatus, "JobStatus", &args, &rep)
	return rep, err
}

func (l *rpcLink) Schedule(args shardlink.ScheduleArgs) (shardlink.ScheduleReply, error) {
	var rep shardlink.ScheduleReply
	err := l.call(opSchedule, "Schedule", &args, &rep)
	return rep, err
}

func (l *rpcLink) Stats(args shardlink.StatsArgs) (shardlink.StatsSnapshot, error) {
	var rep shardlink.StatsSnapshot
	err := l.call(opStats, "Stats", &args, &rep)
	return rep, err
}

func (l *rpcLink) RouteInfo(args shardlink.RouteInfoArgs) (shardlink.RouteInfoReply, error) {
	var rep shardlink.RouteInfoReply
	err := l.call(opRouteInfo, "RouteInfo", &args, &rep)
	if err == nil && rep.Backlog == nil {
		// gob drops zero-value rationals; the router compares uncondition-
		// ally, so restore the exact zero here at the boundary.
		rep.Backlog = new(big.Rat)
	}
	return rep, err
}

func (l *rpcLink) Poke(args shardlink.PokeArgs) error {
	var rep shardlink.PokeReply
	return l.call(opPoke, "Poke", &args, &rep)
}

func (l *rpcLink) ExtractJobs(args shardlink.ExtractArgs) (shardlink.ExtractReply, error) {
	var rep shardlink.ExtractReply
	err := l.call(opExtract, "ExtractJobs", &args, &rep)
	return rep, err
}

func (l *rpcLink) AdmitMigrated(args shardlink.AdmitArgs) (shardlink.AdmitReply, error) {
	var rep shardlink.AdmitReply
	err := l.call(opAdmit, "AdmitMigrated", &args, &rep)
	return rep, err
}

func (l *rpcLink) CommitExtract(args shardlink.CommitArgs) error {
	var rep shardlink.CommitReply
	return l.call(opCommit, "CommitExtract", &args, &rep)
}

func (l *rpcLink) AbortExtract(args shardlink.AbortArgs) error {
	var rep shardlink.AbortReply
	return l.call(opAbort, "AbortExtract", &args, &rep)
}
