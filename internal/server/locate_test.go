package server

import (
	"math/big"
	"sync"
	"sync/atomic"
	"testing"

	"divflow/internal/model"
)

// TestLocateMultiHopForwardingChain is the direct test of Server.locate's
// forwarding-chain traversal: a job migrates twice (birth shard 0 → shard 1
// → back to shard 0 under a fresh local ID) while concurrent readers hammer
// its global ID, and afterwards retention compaction erases the whole chain.
// Invariants pinned:
//
//   - at every moment between submission and compaction, the global ID
//     resolves — the jobStatus retry loop absorbs the window in which an
//     arithmetic decode lands on a record the migration just vacated;
//   - after the second hop the forwarding table points at the *final* owner
//     (entries are overwritten, not chained — each read is O(1) hops);
//   - compaction releases the forwarding entry via the job's current owner
//     only, and a post-compaction read misses definitively in one attempt.
func TestLocateMultiHopForwardingChain(t *testing.T) {
	vc := NewVirtualClock()
	// Stealing is disabled so the two migrations below are the only ones:
	// the hops are driven explicitly through the same stealFrom machinery
	// the automatic protocol uses. Retention 4 bounds the history.
	srv, err := New(Config{
		Machines:     uniformFleet(4),
		Shards:       2,
		Policy:       "srpt",
		Clock:        vc,
		DisableSteal: true,
		Retention:    rat(4, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sh0, sh1 := srv.active()[0], srv.active()[1]

	idJ0 := submitTo(t, sh0, "6", "shared")
	idJ1 := submitTo(t, sh0, "2", "shared")
	srv.Start()
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.BatchedArrivals >= 2 })

	// Concurrent readers: until the migration phase ends, the ID must
	// resolve on every single attempt, no matter which hop is in flight.
	var stopAsserting atomic.Bool
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, known := srv.jobStatus(idJ0)
				if !known && !stopAsserting.Load() {
					t.Errorf("global ID %d failed to resolve mid-migration", idJ0)
					return
				}
			}
		}()
	}

	// Hop 1 at t=1: shard 1 (idle) takes J0, the largest remaining work
	// (5/6 of size 6 after the donor catch-up, vs 1/2 of size 2 for J1).
	// stealFrom catches the donor up to the clock itself; the thief is
	// poked manually, standing in for the loop-side steal it would have
	// initiated itself with stealing enabled.
	vc.Advance(rat(1, 1))
	if !srv.stealFrom(sh1, sh0) {
		t.Fatal("hop 1 moved nothing")
	}
	sh1.poke()
	if sh, _, ok := srv.locate(idJ0); !ok || sh != sh1 {
		t.Fatalf("after hop 1, locate(%d) = %v, want shard 1", idJ0, sh)
	}
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.Shards[1].JobsLive == 1 })

	// J1 finishes on shard 0 at t=2; J2 lands on shard 1 so its census
	// reaches two jobs (a donor never gives up its only job).
	vc.Advance(rat(2, 1))
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.JobsCompleted == 1 })
	idJ2 := submitTo(t, sh1, "3", "shared")
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.BatchedArrivals >= 3 })

	// Hop 2 at t=3: shard 0 (idle again) takes J0 back — at 1/2 of size 6
	// it still outweighs J2's 2/3 of size 3. The forwarding entry must now
	// name shard 0 with J0's *new* local slot, not chain through shard 1.
	vc.Advance(rat(3, 1))
	if !srv.stealFrom(sh0, sh1) {
		t.Fatal("hop 2 moved nothing")
	}
	sh0.poke()
	sh, local, ok := srv.locate(idJ0)
	if !ok || sh != sh0 {
		t.Fatalf("after hop 2, locate(%d) = %v, want shard 0 again", idJ0, sh)
	}
	if local == idJ0 {
		t.Fatalf("after hop 2, local slot %d equals the birth slot: the job did not get a fresh record", local)
	}
	st, known := srv.jobStatus(idJ0)
	if !known || st.ID != idJ0 || st.State == StateMigrated {
		t.Fatalf("after two hops, jobStatus(%d) = %+v known=%v", idJ0, st, known)
	}

	// Drain the workload, then let the retention horizon swallow the whole
	// chain; the readers keep racing the compaction (without asserting —
	// a compacted record is a legitimate definitive miss).
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 3 })
	_, _ = idJ1, idJ2
	stopAsserting.Store(true)
	vc.Advance(rat(20, 1))
	sh0.poke()
	sh1.poke()
	waitStats(t, srv, func(st model.StatsResponse) bool {
		// Five records: J0's birth + intermediate + final, J1, J2.
		return st.CompactedJobs == 5
	})
	close(stop)
	readers.Wait()

	if st, known := srv.jobStatus(idJ0); known {
		t.Fatalf("compacted job %d still resolves: %+v", idJ0, st)
	}
	srv.fwdMu.RLock()
	entries := len(srv.forward)
	srv.fwdMu.RUnlock()
	if entries != 0 {
		t.Errorf("forwarding table holds %d entries after compaction, want 0", entries)
	}
}

// TestLocateChasesReshardThenSteal layers the two migration sources: a job
// stolen onto another shard is then swept up by a structural reshard that
// retires every generation-0 shard. Its global ID — issued under the old
// encoding, forwarded twice, finally owned by a generation-1 shard — must
// resolve throughout, and the merged trace must account for every fraction.
func TestLocateChasesReshardThenSteal(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: uniformFleet(4), Shards: 2, Policy: "srpt", Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sh0 := srv.active()[0]

	// Shard 0 is loaded, shard 1 idle: the steal protocol moves the bigger
	// job over as soon as the loops run.
	idBig := submitTo(t, sh0, "8", "shared")
	idSmall := submitTo(t, sh0, "2", "shared")
	srv.Start()
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.StolenJobs >= 1 })

	// Mid-flight structural reshard: 2 shards → 4. Every generation-0 shard
	// retires (singleton groups match nothing), so the stolen job migrates a
	// second time, onto a generation-1 shard.
	vc.Advance(rat(1, 1))
	resp, err := srv.Reshard(&model.Platform{Machines: uniformFleet(4), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.RetiredShards) != 2 || len(resp.SpawnedShards) != 4 {
		t.Fatalf("reshard = %+v, want 2 retired / 4 spawned", resp)
	}
	for _, id := range []int{idBig, idSmall} {
		if _, known := srv.jobStatus(id); !known {
			t.Errorf("ID %d lost across steal+reshard", id)
		}
	}
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 2 })
	for _, id := range []int{idBig, idSmall} {
		st, known := srv.jobStatus(id)
		if !known || st.State != StateDone {
			t.Errorf("job %d = %+v known=%v, want done", id, st, known)
		}
		flow, ok := new(big.Rat).SetString(st.Flow)
		if !ok || flow.Sign() <= 0 {
			t.Errorf("job %d flow = %q, want positive", id, st.Flow)
		}
	}
	validateServer(t, srv)
}
