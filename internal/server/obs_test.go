package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"divflow/internal/model"
	"divflow/internal/obs"
	"divflow/internal/stats"
	"divflow/internal/workload"
)

// scrapeMetrics GETs /metrics and parses every sample line into a
// name{labels} → value map; the raw text comes back for format checks.
func scrapeMetrics(t *testing.T, base string) (map[string]float64, string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out, string(body)
}

func getEvents(t *testing.T, base, query string) model.EventsResponse {
	t.Helper()
	var resp model.EventsResponse
	getJSON(t, base+"/v1/events"+query, &resp)
	return resp
}

// monotoneSample reports whether a parsed metrics key is a monotone series:
// a counter, or a histogram bucket/count/sum (observations are nonnegative).
func monotoneSample(key string) bool {
	base := key
	if i := strings.IndexByte(key, '{'); i >= 0 {
		base = key[:i]
	}
	for _, suffix := range []string{"_total", "_bucket", "_count", "_sum"} {
		if strings.HasSuffix(base, suffix) {
			return true
		}
	}
	return false
}

// TestMetricsMatchStatsSingleShard pins the single-source rule: with one
// shard there is no aggregation ambiguity, so every counter GET /metrics
// exports must equal the corresponding GET /v1/stats field *exactly* — both
// surfaces render the same shard snapshot, not parallel bookkeeping that
// could drift. The exported flow histogram must also reproduce the stats
// P95 through the shared histogram_quantile estimator.
func TestMetricsMatchStatsSingleShard(t *testing.T) {
	cfg := workload.Default()
	cfg.Jobs = 12
	cfg.Machines = 2
	cfg.Databanks = 2
	cfg.Seed = 21
	inst := workload.MustGenerate(cfg)

	vc := NewVirtualClock()
	srv, err := New(Config{Machines: inst.Machines, Policy: "online-mwf", Shards: 1, Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Two waves so the counters cover solves, cache hits, and completions.
	reqs := submitRequests(inst)
	for _, req := range reqs[:6] {
		postJob(t, ts.URL, req)
	}
	srv.Start()
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 6 })
	for _, req := range reqs[6:] {
		postJob(t, ts.URL, req)
	}
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == cfg.Jobs })

	var st model.StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	m, raw := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"# TYPE divflow_submissions_total counter",
		"# TYPE divflow_flow_time histogram",
		"# TYPE divflow_jobs_live gauge",
	} {
		if !strings.Contains(raw, want) {
			t.Errorf("metrics text missing %q", want)
		}
	}

	exact := map[string]int{
		`divflow_submissions_total{shard="0"}`:                       st.JobsAccepted,
		`divflow_jobs_completed_total{shard="0"}`:                    st.JobsCompleted,
		`divflow_engine_events_total{shard="0"}`:                     st.Events,
		`divflow_lp_solves_total{shard="0"}`:                         st.LPSolves,
		`divflow_plan_cache_hits_total{shard="0"}`:                   st.PlanCacheHits,
		`divflow_arrival_batches_total{shard="0"}`:                   st.ArrivalBatches,
		`divflow_batched_arrivals_total{shard="0"}`:                  st.BatchedArrivals,
		`divflow_solver_path_total{shard="0",path="float_verified"}`: st.Solver.FloatVerified,
		`divflow_solver_path_total{shard="0",path="crossover"}`:      st.Solver.Crossovers,
		`divflow_solver_path_total{shard="0",path="exact_fallback"}`: st.Solver.Fallbacks,
		`divflow_solver_warm_total{shard="0",result="hit"}`:          st.Solver.WarmHits,
		`divflow_solver_warm_total{shard="0",result="miss"}`:         st.Solver.WarmMisses,
		`divflow_flow_time_count{shard="0"}`:                         st.JobsCompleted,
		`divflow_jobs_live{shard="0"}`:                               st.JobsLive,
		`divflow_jobs_queued{shard="0"}`:                             0,
		`divflow_shard_stalled{shard="0"}`:                           0,
		`divflow_topology_generation`:                                st.Generation,
		`divflow_active_shards`:                                      st.ShardCount,
	}
	for key, want := range exact {
		got, ok := m[key]
		if !ok {
			t.Errorf("metric %s missing from the scrape", key)
			continue
		}
		if got != float64(want) {
			t.Errorf("%s = %v, /v1/stats says %d", key, got, want)
		}
	}

	// Rebuild the flow histogram from the exported cumulative buckets and
	// run the shared estimator over it: /metrics and /v1/stats must answer
	// the identical P95 (satellite: the two surfaces cannot disagree).
	bounds := obs.DefFlowBuckets
	counts := make([]uint64, len(bounds)+1)
	var prev float64
	for i, ub := range bounds {
		key := fmt.Sprintf(`divflow_flow_time_bucket{shard="0",le="%s"}`,
			strconv.FormatFloat(ub, 'g', -1, 64))
		cum, ok := m[key]
		if !ok {
			t.Fatalf("bucket %s missing from the scrape", key)
		}
		counts[i] = uint64(cum - prev)
		prev = cum
	}
	counts[len(bounds)] = uint64(m[`divflow_flow_time_bucket{shard="0",le="+Inf"}`] - prev)
	if got := stats.HistogramQuantile(bounds, counts, 95); got != st.P95Flow {
		t.Errorf("histogram_quantile over exported buckets = %v, /v1/stats p95Flow = %v", got, st.P95Flow)
	}

	// The journal counter agrees with the events cursor.
	ev := getEvents(t, ts.URL, "")
	if got := m[`divflow_journal_events_total`]; got != float64(ev.Next) {
		t.Errorf("divflow_journal_events_total = %v, /v1/events next = %d", got, ev.Next)
	}
	if len(ev.Events) == 0 {
		t.Error("journal empty after a full run")
	}
}

// TestHealthzReportsStalledShards: /healthz must answer 200 ok while every
// active shard is healthy and flip to 503 naming the stalled shards — off
// the same latched-error state the router reads — once a loop poisons. The
// stall must also be journaled and exported as a gauge.
func TestHealthzReportsStalledShards(t *testing.T) {
	vc := NewVirtualClock()
	machines := []model.Machine{
		{Name: "h0", InverseSpeed: rat(1, 1), Databanks: []string{"shared", "only0"}},
		{Name: "h1", InverseSpeed: rat(1, 1), Databanks: []string{"shared"}},
	}
	srv, err := New(Config{Machines: machines, Shards: 2, Clock: vc, DisableSteal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var healthy model.HealthResponse
	getJSON(t, ts.URL+"/healthz", &healthy)
	if healthy.Status != "ok" || len(healthy.StalledShards) != 0 {
		t.Fatalf("healthy probe = %+v, want status ok with no stalled shards", healthy)
	}

	// Fault injection (as in TestSubmitSkipsStalledShard): revoke the routed
	// job's eligibility so shard 0's loop latches a rejected admit.
	resp, err := srv.Submit(&model.SubmitRequest{Size: "2", Databanks: []string{"shared"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID%2 != 0 {
		t.Fatalf("first job routed to shard %d, want 0 (tie-break)", resp.ID%2)
	}
	sh := srv.active()[0]
	sh.mu.Lock()
	for i := range sh.eligible {
		delete(sh.eligible[i], resp.ID/2)
	}
	sh.mu.Unlock()
	srv.Start()
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.LastError != "" })

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stalled probe = %d, want 503", hresp.StatusCode)
	}
	var sick model.HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&sick); err != nil {
		t.Fatal(err)
	}
	if sick.Status != "stalled" {
		t.Errorf("status = %q, want stalled", sick.Status)
	}
	if len(sick.StalledShards) != 1 || sick.StalledShards[0] != 0 {
		t.Errorf("stalledShards = %v, want [0]", sick.StalledShards)
	}
	if len(sick.Errors) != 1 || sick.Errors[0] == "" {
		t.Errorf("errors = %v, want the shard's latched error", sick.Errors)
	}

	ev := getEvents(t, ts.URL, "?type="+obs.EventShardStall)
	if len(ev.Events) == 0 {
		t.Error("no shard-stall event journaled")
	}
	for _, e := range ev.Events {
		if e.Shard != 0 {
			t.Errorf("shard-stall event on shard %d, want 0", e.Shard)
		}
	}
	m, _ := scrapeMetrics(t, ts.URL)
	if m[`divflow_shard_stalled{shard="0"}`] != 1 {
		t.Errorf(`divflow_shard_stalled{shard="0"} = %v, want 1`, m[`divflow_shard_stalled{shard="0"}`])
	}
	if m[`divflow_shard_stalled{shard="1"}`] != 0 {
		t.Errorf(`divflow_shard_stalled{shard="1"} = %v, want 0`, m[`divflow_shard_stalled{shard="1"}`])
	}
}

// TestPerShardSolverTallySumsToAggregate is the regression test for the
// per-shard solver breakdown: each shard's stats must carry its own
// SolverTally, and the per-shard tallies must sum field-by-field to the
// fleet aggregate — an aggregate kept separately from the breakdown would
// eventually drift.
func TestPerShardSolverTallySumsToAggregate(t *testing.T) {
	// Two disconnected databank components → two shards, each running the
	// exact solver on its own workload.
	machines := []model.Machine{
		{Name: "a0", InverseSpeed: rat(1, 1), Databanks: []string{"banka"}},
		{Name: "a1", InverseSpeed: rat(1, 2), Databanks: []string{"banka"}},
		{Name: "b0", InverseSpeed: rat(1, 1), Databanks: []string{"bankb"}},
		{Name: "b1", InverseSpeed: rat(1, 3), Databanks: []string{"bankb"}},
	}
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: machines, Policy: "online-mwf", Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.ShardCount() != 2 {
		t.Fatalf("shards = %d, want 2 (connectivity partition)", srv.ShardCount())
	}

	submitWave := func(n int) {
		for j := 0; j < n; j++ {
			bank := "banka"
			if j%2 == 1 {
				bank = "bankb"
			}
			req := model.SubmitRequest{Size: fmt.Sprintf("%d", 1+j%5), Databanks: []string{bank}}
			if _, err := srv.Submit(&req); err != nil {
				t.Fatal(err)
			}
		}
	}
	submitWave(6)
	srv.Start()
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 6 })
	// A second wave forces completion-perturbed re-solves on both shards.
	submitWave(6)
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 12 })

	st := srv.Stats()
	var sum stats.SolverTally
	solving := 0
	for _, shst := range st.Shards {
		sum.Merge(shst.Solver)
		if shst.Solver.Total() > 0 {
			solving++
		}
	}
	if solving != 2 {
		t.Errorf("per-shard solver tallies on %d shards, want both", solving)
	}
	if sum != st.Solver {
		t.Errorf("per-shard tallies sum to %+v, aggregate says %+v", sum, st.Solver)
	}
}

// TestEventJournalReplaysStealAndReshard drives the deterministic steal
// scenario (TestStealMigratesHalfExecutedJob's fixture), then a structural
// reshard, and replays the run from GET /v1/events: submissions, admissions,
// the per-job migrate and steal summary, and the reshard-generation event
// must come back in exact order, filterable and pageable, with every event
// mirrored to the NDJSON sink.
func TestEventJournalReplaysStealAndReshard(t *testing.T) {
	var sink bytes.Buffer
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: hotSharedFleet(), Shards: 2, Policy: "srpt", Clock: vc, EventSink: &sink})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	idD := submitTo(t, srv.active()[0], "2", "shared")
	idA := submitTo(t, srv.active()[0], "6", "shared")
	idC := submitTo(t, srv.active()[0], "10", "hot")
	idB := submitTo(t, srv.active()[1], "3", "shared")
	srv.Start()
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.BatchedArrivals >= 4 })

	// t=2: D completes; t=3: B completes, shard 1 goes idle and steals A.
	vc.Advance(big.NewRat(2, 1))
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.JobsCompleted == 1 })
	vc.Advance(big.NewRat(3, 1))
	waitStats(t, srv, func(st model.StatsResponse) bool {
		return st.Migrations == 1 && st.Shards[1].JobsLive == 1
	})

	// Structural reshard to one shard: the survivors (A on shard 1, C on
	// shard 0) migrate onto the spawned shard, generation 1.
	resp, err := srv.Reshard(&model.Platform{Machines: hotSharedFleet(), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Generation != 1 || resp.MigratedJobs != 2 {
		t.Fatalf("reshard = generation %d, %d migrated, want 1 and 2", resp.Generation, resp.MigratedJobs)
	}
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 4 })

	all := getEvents(t, ts.URL, "")
	if all.Dropped != 0 {
		t.Fatalf("journal dropped %d events under capacity", all.Dropped)
	}
	for i := 1; i < len(all.Events); i++ {
		if all.Events[i].Seq <= all.Events[i-1].Seq {
			t.Fatalf("journal out of order at %d: %d after %d", i, all.Events[i].Seq, all.Events[i-1].Seq)
		}
	}
	find := func(typ string, pred func(obs.Event) bool) obs.Event {
		for _, e := range all.Events {
			if e.Type == typ && (pred == nil || pred(e)) {
				return e
			}
		}
		t.Fatalf("no %s event in the journal", typ)
		return obs.Event{}
	}
	for _, gid := range []int{idD, idA, idC, idB} {
		find(obs.EventSubmit, func(e obs.Event) bool { return e.GID == gid })
	}
	submitA := find(obs.EventSubmit, func(e obs.Event) bool { return e.GID == idA })
	admitA := find(obs.EventAdmit, func(e obs.Event) bool { return e.GID == idA })
	stolenA := find(obs.EventMigrate, func(e obs.Event) bool {
		return e.GID == idA && strings.Contains(e.Detail, "stolen from shard 0")
	})
	steal := find(obs.EventSteal, nil)
	reshard := find(obs.EventReshard, nil)
	if !(submitA.Seq < admitA.Seq && admitA.Seq < stolenA.Seq &&
		stolenA.Seq < steal.Seq && steal.Seq < reshard.Seq) {
		t.Errorf("event order broken: submit=%d admit=%d migrate=%d steal=%d reshard=%d",
			submitA.Seq, admitA.Seq, stolenA.Seq, steal.Seq, reshard.Seq)
	}
	if steal.Shard != 1 || !strings.Contains(steal.Detail, "1 jobs from shard 0") {
		t.Errorf("steal event = %+v, want thief shard 1 taking 1 job from shard 0", steal)
	}
	if reshard.Shard != -1 || reshard.Gen != 1 || !strings.Contains(reshard.Detail, "2 jobs migrated") {
		t.Errorf("reshard event = %+v, want server-level, generation 1, 2 jobs migrated", reshard)
	}
	for _, gid := range []int{idA, idC} {
		e := find(obs.EventMigrate, func(e obs.Event) bool {
			return e.GID == gid && strings.Contains(e.Detail, "resharded from shard")
		})
		if e.Gen != 1 {
			t.Errorf("reshard migrate of job %d under generation %d, want 1", gid, e.Gen)
		}
	}

	// Filters: by type, and by shard (server-level events carry shard -1 and
	// must not leak into a shard-filtered view).
	typed := getEvents(t, ts.URL, "?type="+obs.EventSteal)
	if len(typed.Events) != 1 || typed.Events[0].Type != obs.EventSteal {
		t.Errorf("type filter returned %d events, want exactly the steal", len(typed.Events))
	}
	byShard := getEvents(t, ts.URL, "?shard=1")
	if len(byShard.Events) == 0 {
		t.Error("shard filter returned nothing")
	}
	for _, e := range byShard.Events {
		if e.Shard != 1 {
			t.Errorf("shard=1 filter leaked event %+v", e)
		}
	}

	// Pagination: walking ?since= with limit=3 reassembles the full journal.
	var paged []obs.Event
	cursor := int64(0)
	for {
		page := getEvents(t, ts.URL, fmt.Sprintf("?since=%d&limit=3", cursor))
		paged = append(paged, page.Events...)
		if page.Next == cursor {
			break
		}
		cursor = page.Next
	}
	if len(paged) < len(all.Events) {
		t.Fatalf("pagination lost events: %d < %d", len(paged), len(all.Events))
	}
	for i, e := range all.Events {
		if paged[i].Seq != e.Seq {
			t.Fatalf("pagination diverges at %d: seq %d vs %d", i, paged[i].Seq, e.Seq)
		}
	}

	// NDJSON sink: quiesce the loops, then every journaled event must have
	// been mirrored as one decodable JSON line.
	srv.Close()
	if err := srv.tel.journal.SinkErr(); err != nil {
		t.Fatal(err)
	}
	want := srv.tel.journal.NextSeq()
	dec := json.NewDecoder(&sink)
	var lines int64
	for dec.More() {
		var e obs.Event
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("sink line %d: %v", lines, err)
		}
		if e.Seq != lines {
			t.Fatalf("sink line %d carries seq %d", lines, e.Seq)
		}
		lines++
	}
	if lines != want {
		t.Errorf("sink holds %d events, journal appended %d", lines, want)
	}
}

// TestObsHammerUnderRace hammers the telemetry read surface while the
// service is busiest: concurrent HTTP submitters, two /metrics scrapers, a
// /v1/events poller, and a reshard storm, on a driven virtual clock. Run
// with -race this is the data-race check on the observability layer. The
// scrapers assert no monotone sample ever regresses between scrapes; the
// poller asserts the journal pages in strict sequence order; afterwards
// every journaled job ID must still resolve through the forwarding table,
// and the exported totals must equal the workload.
func TestObsHammerUnderRace(t *testing.T) {
	const clients, perClient = 8, 6
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: uniformFleet(4), Shards: 1, Policy: "mct", Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Start()

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				vc.AdvanceToNextTimer()
			}
		}
	}()
	for s := 0; s < 2; s++ {
		aux.Add(1)
		go func() {
			defer aux.Done()
			prev := make(map[string]float64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				m, _ := scrapeMetrics(t, ts.URL)
				for k, v := range m {
					if !monotoneSample(k) {
						continue
					}
					if pv, ok := prev[k]; ok && v < pv {
						t.Errorf("monotone sample %s regressed between scrapes: %v -> %v", k, pv, v)
					}
					prev[k] = v
				}
			}
		}()
	}
	aux.Add(1)
	go func() {
		defer aux.Done()
		cursor, last := int64(0), int64(-1)
		for {
			page := getEvents(t, ts.URL, fmt.Sprintf("?since=%d", cursor))
			if page.Dropped != 0 {
				t.Errorf("journal dropped %d events well under capacity", page.Dropped)
			}
			for _, e := range page.Events {
				if e.Seq <= last {
					t.Errorf("event seq %d paged after %d", e.Seq, last)
				}
				last = e.Seq
			}
			cursor = page.Next
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				postJob(t, ts.URL, model.SubmitRequest{
					Size:      fmt.Sprintf("%d", 1+(c+k)%5),
					Databanks: []string{"shared"},
				})
			}
		}(c)
	}
	// Reshard storm concurrent with the submissions and the scrapers.
	for _, shards := range []int{4, 2, 3} {
		if _, err := srv.Reshard(&model.Platform{Machines: uniformFleet(4), Shards: shards}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	waitStats(t, srv, func(st model.StatsResponse) bool {
		return st.JobsCompleted == clients*perClient
	})
	close(stop)
	aux.Wait()

	// Replay the full journal: every event must name a shard and generation
	// inside the topology history, and every job-scoped event a global ID
	// that still resolves (through the forwarding table, across three
	// re-encodings of the ID space).
	var events []obs.Event
	cursor := int64(0)
	for {
		page := getEvents(t, ts.URL, fmt.Sprintf("?since=%d", cursor))
		events = append(events, page.Events...)
		if page.Next == cursor {
			break
		}
		cursor = page.Next
	}
	if len(events) == 0 {
		t.Fatal("journal empty after the storm")
	}
	total := len(srv.allShards())
	gen := srv.Generation()
	if gen != 3 {
		t.Errorf("generation = %d, want 3", gen)
	}
	for _, e := range events {
		if e.Shard < -1 || e.Shard >= total {
			t.Errorf("event %d (%s) names shard %d outside [-1, %d)", e.Seq, e.Type, e.Shard, total)
		}
		if e.Gen < 0 || e.Gen > gen {
			t.Errorf("event %d (%s) names generation %d outside [0, %d]", e.Seq, e.Type, e.Gen, gen)
		}
		if e.GID >= 0 {
			if _, known := srv.jobStatus(e.GID); !known {
				t.Errorf("event %d (%s) names job %d that no longer resolves", e.Seq, e.Type, e.GID)
			}
		}
	}

	// The exported totals agree with the workload: every submission and
	// completion appears exactly once across the shard labels.
	m, _ := scrapeMetrics(t, ts.URL)
	sum := func(name string) (s float64) {
		for k, v := range m {
			if strings.HasPrefix(k, name+"{") {
				s += v
			}
		}
		return s
	}
	if got := sum("divflow_submissions_total"); got != clients*perClient {
		t.Errorf("divflow_submissions_total sums to %v across shards, want %d", got, clients*perClient)
	}
	if got := sum("divflow_jobs_completed_total"); got != clients*perClient {
		t.Errorf("divflow_jobs_completed_total sums to %v across shards, want %d", got, clients*perClient)
	}
	if m[`divflow_topology_generation`] != 3 {
		t.Errorf("divflow_topology_generation = %v, want 3", m[`divflow_topology_generation`])
	}
}

// TestObsDisabledKeepsServiceSurface: -metrics=false must remove /metrics
// and /v1/events and stop journaling, while /healthz keeps answering and
// the flow histogram keeps backing the /v1/stats P95 estimate.
func TestObsDisabledKeepsServiceSurface(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: testFleet(), Clock: vc, DisableObs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/metrics", "/v1/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s with telemetry disabled = %d, want 404", path, resp.StatusCode)
		}
	}
	var h model.HealthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "ok" {
		t.Errorf("healthz = %+v, want ok (liveness is not telemetry)", h)
	}

	for _, size := range []string{"1", "2", "4"} {
		postJob(t, ts.URL, model.SubmitRequest{Size: size, Databanks: []string{"swissprot"}})
	}
	srv.Start()
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 3 })
	st := srv.Stats()
	if st.P95Flow <= 0 {
		t.Errorf("p95Flow = %v with telemetry disabled; the flow histogram must keep backing /v1/stats", st.P95Flow)
	}
	if n := srv.tel.journal.NextSeq(); n != 0 {
		t.Errorf("journal appended %d events with telemetry disabled", n)
	}
}
