package server

import (
	"fmt"
	"sort"
	"strings"

	"divflow/internal/sim"
)

// DefaultPolicy is the policy a Server runs when none is configured: the
// paper's online max-weighted-flow adaptation with the lazy plan cache, so
// the exact solver runs only when the residual workload actually changes.
const DefaultPolicy = "online-mwf-lazy"

// policyFactories maps API/flag names to constructors. Each Server gets a
// fresh policy instance (policies carry per-run state).
var policyFactories = map[string]func() sim.Policy{
	"online-mwf-lazy":    func() sim.Policy { return sim.NewOnlineMWFLazy() },
	"online-mwf":         func() sim.Policy { return sim.NewOnlineMWF() },
	"online-mwf-preempt": func() sim.Policy { return sim.NewOnlineMWFPreemptive() },
	"mct":                func() sim.Policy { return sim.NewMCT() },
	"srpt":               func() sim.Policy { return sim.NewSRPT() },
	"greedy-wflow":       func() sim.Policy { return sim.NewGreedyWeightedFlow() },
	"fcfs":               func() sim.Policy { return sim.NewFCFS() },
}

// Policies lists the selectable policy names, sorted.
func Policies() []string {
	out := make([]string, 0, len(policyFactories))
	for name := range policyFactories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewPolicy builds the named policy ("" selects DefaultPolicy).
func NewPolicy(name string) (sim.Policy, error) {
	if name == "" {
		name = DefaultPolicy
	}
	mk, ok := policyFactories[name]
	if !ok {
		return nil, fmt.Errorf("server: unknown policy %q (have %s)", name, strings.Join(Policies(), ", "))
	}
	return mk(), nil
}
