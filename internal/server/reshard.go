package server

import (
	"errors"
	"fmt"
	"math/big"
	"sort"
	"strconv"
	"strings"

	"divflow/internal/model"
	"divflow/internal/obs"
	"divflow/internal/sim"
)

// Live re-sharding. The databank-connectivity partition is computed from the
// platform document, and until now it was computed exactly once, at startup:
// a replication or migration event that changes which hosts carry which
// databanks silently invalidated the sharding (work stealing softens load
// imbalance, but it cannot change shard *membership*). Reshard closes that
// gap by re-solving the partition quasi-statically, at runtime, against an
// updated platform:
//
//  1. recompute the partition over the new platform's machines;
//  2. diff it against the live shard set — a new group whose ordered
//     machine list (name, speed, databanks) is identical to a running
//     shard's keeps that shard untouched, engine, executed trace, plan
//     cache, warm-start basis chain and all;
//  3. retire every unmatched shard, migrating its queued and live jobs —
//     exact remaining fractions, original global IDs and flow origins —
//     onto the new topology with the same machinery work stealing uses
//     (Engine.RemoveAll / AddPartial plus the forwarding table);
//  4. spawn loops for the new groups and advance the topology generation,
//     so new global IDs decode through the new shard count while old IDs
//     keep resolving through the generation that issued them.
//
// A reshard whose platform induces the partition already running is a no-op:
// nothing migrates, the generation does not advance, and the server is
// pinned trace-identical to one that never resharded.

// sigField appends one field in a length-prefixed encoding, so no choice of
// machine or databank name (nothing validates them against delimiter
// characters) can make two different configurations encode identically.
func sigField(b *strings.Builder, s string) {
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte(':')
	b.WriteString(s)
}

// machineSignature is one machine's scheduling-relevant identity: a shard
// may only be kept across a reshard if its machines are pairwise identical
// under this signature (same name, same exact speed, same databank list in
// the same order — a databank permutation is treated as a change, which
// costs at most a spurious respawn, never a wrong keep).
func machineSignature(b *strings.Builder, m *model.Machine) {
	sigField(b, m.Name)
	sigField(b, m.InverseSpeed.RatString())
	b.WriteString(strconv.Itoa(len(m.Databanks)))
	b.WriteByte(';')
	for _, d := range m.Databanks {
		sigField(b, d)
	}
}

// groupSignature is the ordered identity of a whole machine group.
func groupSignature(machines []model.Machine) string {
	var b strings.Builder
	for i := range machines {
		machineSignature(&b, &machines[i])
	}
	return b.String()
}

// hostsAny reports whether some machine of the slice hosts every databank.
func hostsAny(machines []model.Machine, databanks []string) bool {
	for i := range machines {
		if machines[i].Hosts(databanks) {
			return true
		}
	}
	return false
}

// renumberRetired rewrites every non-active shard's machine indices into the
// new fleet, matching machines by name: the merged /v1/schedule interprets
// all pieces against the current platform, and without the remap a retired
// shard's history would keep indices into a fleet document that no longer
// exists — one response mixing two numbering schemes. Machines absent from
// the new platform keep their historical index (there is no right answer for
// a machine that left). Each mu is taken alone, after the topology publish,
// so lock ordering is trivial; active shards were renumbered by the caller.
func (s *Server) renumberRetired(newFleet []model.Machine, active []*shard) {
	nameIdx := make(map[string]int, len(newFleet))
	for i := range newFleet {
		if _, dup := nameIdx[newFleet[i].Name]; !dup {
			nameIdx[newFleet[i].Name] = i
		}
	}
	isActive := make(map[*shard]bool, len(active))
	for _, sh := range active {
		isActive[sh] = true
	}
	for _, sh := range s.allShards() {
		if isActive[sh] {
			continue
		}
		sh.mu.Lock()
		for i := range sh.machineIdx {
			if ni, ok := nameIdx[sh.machines[i].Name]; ok {
				sh.machineIdx[i] = ni
			}
		}
		sh.mu.Unlock()
	}
}

// Reshard repartitions the running fleet against an updated platform
// document (the POST /v1/platform admin API and the daemon's SIGHUP reload
// both land here). It is atomic: either the whole new topology is installed
// with every affected job migrated, or — when some queued or live job's
// databanks are hosted by no machine of the new platform — nothing changes
// and an error describes the stranded job. Reads racing the reshard stay
// exact: every migrated job's forwarding entry is written while the donor's
// mutex is held, so a read that decoded the job's birth shard arithmetically
// retries through the forwarding table exactly like a read racing a steal.
//
//divflow:locks ascending=shard
func (s *Server) Reshard(p *model.Platform) (model.ReshardResponse, error) {
	var resp model.ReshardResponse
	if s.noReshard {
		return resp, ErrReshardDisabled
	}
	if len(s.workers) > 0 {
		// A worker-hosted shard's engine lives in another process: retiring
		// it would need a cross-process drain-and-migrate protocol this
		// release does not have (ROADMAP: partial-fleet failure semantics).
		// Refusing keeps the invariant that remote shards never retire, which
		// the two-phase steal path relies on.
		return resp, errors.New("server: live re-sharding is not supported with worker-hosted shards; restart the fleet to repartition")
	}
	if p == nil || len(p.Machines) == 0 {
		return resp, errors.New("server: reshard: no machines")
	}
	for i := range p.Machines {
		if p.Machines[i].InverseSpeed == nil || p.Machines[i].InverseSpeed.Sign() <= 0 {
			return resp, fmt.Errorf("server: reshard: machine %d (%s) needs InverseSpeed > 0", i, p.Machines[i].Name)
		}
	}
	// One topology change at a time; Close takes the same lock, so a closing
	// server cannot race a reshard spawning loops the shutdown would miss.
	// s.shardsCfg is read and written under it too.
	s.reshardMu.Lock()
	defer s.reshardMu.Unlock()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return resp, ErrClosed
	}
	if err := s.dur.latchedErr(); err != nil {
		// Freeze-and-serve: scheduling continues on a latched WAL, but a
		// topology change the log cannot record would make the next restore
		// replay onto the wrong topology.
		return resp, fmt.Errorf("%w: %v", errWALDegraded, err)
	}

	// A platform without its own "shards" field inherits the server's
	// standing override (Config.Shards, or the last explicit reshard
	// override), exactly as the startup platform did: an operator
	// re-POSTing the daemon's own unchanged platform file to a `-shards N`
	// server must get a no-op, not a surprise repartition to connectivity
	// components. An explicit "shards" in the document always wins, and
	// becomes the new standing override once the reshard succeeds.
	shardCount := p.Shards
	if shardCount == 0 {
		shardCount = s.shardsCfg
	}
	groups, err := partitionFleet(p.Machines, shardCount)
	if err != nil {
		return resp, err
	}

	act := s.active()

	newFleet := append([]model.Machine(nil), p.Machines...)
	groupMachines := make([][]model.Machine, len(groups))
	for gi, group := range groups {
		ms := make([]model.Machine, len(group))
		for k, fi := range group {
			ms[k] = newFleet[fi]
		}
		groupMachines[gi] = ms
	}

	// Diff the new partition against the live shard set: first-fit matching
	// on identical ordered machine signatures. Matched shards are kept
	// as-is; unmatched running shards retire; unmatched groups spawn.
	keep := make([]*shard, len(groups))
	used := make([]bool, len(act))
	for gi := range groups {
		sig := groupSignature(groupMachines[gi])
		for ai, sh := range act {
			if !used[ai] && groupSignature(sh.machines) == sig {
				used[ai], keep[gi] = true, sh
				break
			}
		}
	}
	var retiring []*shard
	for ai, sh := range act {
		if !used[ai] {
			retiring = append(retiring, sh)
		}
	}
	spawnCount := 0
	for _, sh := range keep {
		if sh == nil {
			spawnCount++
		}
	}

	if spawnCount == 0 && len(retiring) == 0 {
		// No-op: the new platform induces the partition already running.
		// Refresh the fleet numbering (the document may reorder machines)
		// and touch nothing else — no generation bump, no migration, so the
		// server stays trace-identical to one that never resharded.
		for gi, sh := range keep {
			sh.mu.Lock()
			sh.machineIdx = append([]int(nil), groups[gi]...)
			sh.mu.Unlock()
		}
		if p.Shards > 0 {
			s.shardsCfg = p.Shards // under reshardMu, like every reader
		}
		s.topoMu.Lock()
		resp.Generation = len(s.gens) - 1
		s.topoMu.Unlock()
		s.renumberRetired(newFleet, act)
		resp.ShardCount = len(act)
		resp.Noop = true
		for _, sh := range act {
			resp.KeptShards = append(resp.KeptShards, sh.idx)
		}
		return resp, nil
	}

	// Structural reshard, timed end to end (catch-ups, migration, topology
	// publish) for the divflow_reshard_migration_seconds histogram.
	start := s.tel.now()

	// Catch every retiring shard up to the present
	// first, each under its own mu alone: its engine may be asleep at its
	// last event with an allocation that has been (notionally) executing
	// since, and extracting remaining fractions at that stale time would
	// retroactively discard all of that work. Doing it here keeps the
	// event-driven exact re-solves this can trigger out of the all-shards
	// critical section below, exactly as stealFrom keeps them out of its
	// two-shard section — the repeat catch-up inside the section then has
	// at most the sliver since this one to cover.
	for _, sh := range retiring {
		sh.mu.Lock()
		if !sh.closed && sh.lastErr == nil {
			sh.catchUp()
		}
		sh.mu.Unlock()
	}

	// Lock every active shard in creation order — the same global
	// acquisition order the steal protocol uses, so a racing steal and the
	// reshard cannot deadlock.
	byIdx := append([]*shard(nil), act...)
	sort.Slice(byIdx, func(a, b int) bool { return byIdx[a].idx < byIdx[b].idx })
	for _, sh := range byIdx {
		sh.mu.Lock()
	}
	locked := append([]*shard(nil), byIdx...)
	unlock := func() {
		for i := len(locked) - 1; i >= 0; i-- {
			locked[i].mu.Unlock()
		}
	}
	for _, sh := range retiring {
		if !sh.closed && sh.lastErr == nil {
			sh.catchUp()
		}
	}

	// Atomic placement check before any mutation: every queued or live job
	// on a retiring shard must fit somewhere on the new topology.
	for _, donor := range retiring {
		census := append([]*jobRecord(nil), donor.pending...)
		for _, id := range donor.eng.LiveIDs() {
			census = append(census, donor.records[id])
		}
		for _, rec := range census {
			ok := false
			for gi := range groups {
				if hostsAny(groupMachines[gi], rec.databanks) {
					ok = true
					break
				}
			}
			if !ok {
				unlock()
				return resp, fmt.Errorf(
					"server: reshard rejected: job %d needs databanks %v, hosted by no machine of the new platform",
					rec.gid, rec.databanks)
			}
		}
	}

	// The new generation's ID base: strictly above every global ID any
	// current shard could have issued, so the newest-generation-whose-base-
	// fits decode rule stays unambiguous.
	base := 0
	for _, sh := range byIdx {
		if b := sh.gidBase + len(sh.records)*sh.stride + sh.pos + 1; b > base {
			base = b
		}
	}
	newStride := len(groups)

	// Construct every spawned shard's policy before mutating anything: a
	// constructor failure must leave the running topology untouched, not
	// kept shards half re-encoded under a generation that never publishes.
	policies := make(map[int]sim.Policy)
	for gi := range groups {
		if keep[gi] != nil {
			continue
		}
		pol, perr := NewPolicy(s.policyCfg)
		if perr != nil {
			unlock()
			return resp, perr
		}
		policies[gi] = pol
	}

	// Build the new shard list: re-encode kept shards in place, spawn fresh
	// loops for new groups. Spawned shards are locked immediately — their
	// records fill in below, and the moment a forwarding entry names them a
	// concurrent read may knock on their mutex. Creation indices continue
	// past every shard ever made, preserving the idx lock order (spawned
	// shards sort after every shard currently locked).
	nextIdx := len(s.allShards())
	var gen2, spawned []*shard
	for gi := range groups {
		if sh := keep[gi]; sh != nil {
			sh.gidBase, sh.stride, sh.pos = base, newStride, gi
			sh.machineIdx = append([]int(nil), groups[gi]...)
			gen2 = append(gen2, sh)
			resp.KeptShards = append(resp.KeptShards, sh.idx)
			continue
		}
		nsh := s.wireShard(newShard(nextIdx, gi, newStride, base, s.clock,
			groupMachines[gi], append([]int(nil), groups[gi]...), policies[gi], s.retention, s.admission))
		nextIdx++
		nsh.mu.Lock()
		locked = append(locked, nsh)
		gen2 = append(gen2, nsh)
		spawned = append(spawned, nsh)
		resp.SpawnedShards = append(resp.SpawnedShards, nsh.idx)
	}

	// Stamp the new generation on every member (all mus are held): events
	// and stats emitted from here on carry it. Retiring shards keep the
	// generation their service ended in. s.gens is stable under reshardMu,
	// so reading its length without topoMu is safe — we are its only writer.
	newGen := len(s.gens)
	for _, sh := range gen2 {
		sh.gen = newGen
	}

	// The topology record lands in the WAL before any migration that
	// references the new generation's shards, and before the publish: replay
	// rebuilds the generation first, then applies the recorded placements. A
	// crash in between leaves stranded jobs on retired donors, which restore
	// re-migrates with the same placement rule (repairRetired).
	if s.dur != nil {
		topoRec := &recTopo{
			Gen:       newGen,
			Base:      base,
			Stride:    newStride,
			Fleet:     encodeMachines(newFleet),
			ShardsCfg: p.Shards,
			At:        s.clock.Now(),
		}
		for gi, sh := range gen2 {
			ts := walTopoShard{Idx: sh.idx, MachineIdx: append([]int(nil), groups[gi]...)}
			if keep[gi] != nil {
				ts.Kept = true
			} else {
				ts.Machines = encodeMachines(groupMachines[gi])
			}
			topoRec.Shards = append(topoRec.Shards, ts)
		}
		for _, sh := range retiring {
			topoRec.Retired = append(topoRec.Retired, sh.idx)
		}
		s.dur.append(walTypeTopo, topoRec)
	}

	// Migrate every queued and live job off the retiring shards, exactly as
	// a steal would: donor record flips to migrated (its executed pieces
	// stay, translated by the record), the destination gets a fresh record
	// with the original global ID, flow origin, and exact remaining
	// fraction, and the forwarding table points reads at the new owner.
	// Destinations are chosen least-residual-work-first among the new
	// topology's hosts, the same rule the router applies to submissions.
	resid := make(map[*shard]*big.Rat, len(gen2))
	for _, sh := range gen2 {
		resid[sh] = sh.residualWork()
	}
	//divflow:locks requires=shard
	migrate := func(donor *shard, rec *jobRecord, remaining *big.Rat) {
		donor.orphanRecord(rec)
		donor.reshardOut++
		// Like the router, a kept shard with a latched scheduling error only
		// takes the job when no healthy host exists — a poisoned loop has
		// the smallest backlog precisely because it stopped executing, and
		// parking migrated jobs there would strand them silently. (Every
		// shard's mu is held, so lastErr reads are stable; spawned shards
		// are always healthy.)
		var dest, destStalled *shard
		for _, sh := range gen2 {
			if !sh.hosts(rec.databanks) {
				continue
			}
			if sh.lastErr != nil {
				if destStalled == nil || resid[sh].Cmp(resid[destStalled]) < 0 {
					destStalled = sh
				}
				continue
			}
			if dest == nil || resid[sh].Cmp(resid[dest]) < 0 {
				dest = sh
			}
		}
		if dest == nil {
			dest = destStalled
			if resp.Warning == "" {
				resp.Warning = fmt.Sprintf(
					"job %d migrated to stalled shard %d (no healthy shard hosts databanks %v): %v",
					rec.gid, dest.idx, rec.databanks, dest.lastErr)
			}
		}
		// dest is non-nil: the placement check above covered this record.
		nrec := dest.adoptRecord(rec, remaining)
		dest.reshardIn++
		s.fwdMu.Lock()
		s.forward[rec.gid] = fwdLoc{sh: dest, local: nrec.id}
		s.fwdMu.Unlock()
		// Logged with the recorded placement (never re-derived on replay) at
		// the donor's exact engine time, which fixes the record's later
		// compaction horizon. Every active shard's mu is held.
		s.dur.appendMigrate(donor, dest, rec.id, nrec.id, rec.gid, remaining,
			donor.eng.Now(), "reshard", false)
		dest.obs.event(obs.EventMigrate, rec.gid, nil, fmt.Sprintf("resharded from shard %d", donor.idx))
		resid[dest].Add(resid[dest], rec.size)
		// Backlog conservation; one backlogMu at a time, never nested.
		donor.backlogMu.Lock()
		donor.backlog.Sub(donor.backlog, rec.size)
		donor.backlogMu.Unlock()
		dest.backlogMu.Lock()
		dest.backlog.Add(dest.backlog, rec.size)
		dest.backlogMu.Unlock()
		resp.MigratedJobs++
	}
	for _, donor := range retiring {
		donor.retired = true
		pend := donor.pending
		donor.pending = nil
		for _, rec := range pend {
			migrate(donor, rec, rec.remaining)
		}
		for _, br := range donor.eng.RemoveAll() {
			migrate(donor, donor.records[br.ID], br.Job.Remaining)
		}
		resp.RetiredShards = append(resp.RetiredShards, donor.idx)
	}

	// Publish the new topology before releasing any shard mutex: the first
	// ID a re-encoded shard issues must already decode through the new
	// generation.
	if p.Shards > 0 {
		s.shardsCfg = p.Shards // under reshardMu, like every reader
	}
	s.topoMu.Lock()
	s.gens = append(s.gens, &generation{base: base, stride: newStride, shards: gen2})
	s.all = append(s.all, spawned...)
	s.reshards++
	resp.Generation = len(s.gens) - 1
	s.topoMu.Unlock()
	resp.ShardCount = len(gen2)
	unlock()

	s.tel.event(obs.EventReshard, newGen, -1, fmt.Sprintf(
		"%d shards (%d kept, %d spawned, %d retired), %d jobs migrated",
		len(gen2), len(resp.KeptShards), len(spawned), len(retiring), resp.MigratedJobs))
	if !start.IsZero() {
		s.tel.reshardSeconds.Observe(s.tel.sinceSeconds(start))
	}

	s.renumberRetired(newFleet, gen2)

	// Retiring shards' queues are empty and their live sets migrated; their
	// records keep serving reads of the pre-reshard history. Without a
	// retention policy nothing of that history will ever be released, so the
	// loop stops now; under retention the loop instead stays alive at one
	// wake-up per retention window, compacting the history down (and
	// releasing forwarding entries) until nothing is left, then exits on its
	// own — `-retention` keeps bounding memory across reshards. Spawned
	// loops start (or, on a not-yet-started server, wait for Start), and
	// every new-topology shard is poked: migrated jobs are pending on some
	// of them.
	for _, sh := range retiring {
		if s.retention == nil {
			sh.close()
		} else {
			sh.poke()
		}
	}
	// Re-read started *after* the topology publish: a Start racing this
	// reshard may have snapshotted the shard list before the spawned shards
	// were in it, and the stale value read at entry would then leave their
	// loops forever unlaunched. After the publish the race is benign in both
	// directions — shard.start is idempotent.
	//divflow:lockorder-ok unlock() above already dropped every shard mu; the checker cannot see through the stored func value
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if started {
		for _, sh := range spawned {
			sh.start()
		}
	}
	for _, sh := range gen2 {
		sh.poke()
	}
	return resp, nil
}
