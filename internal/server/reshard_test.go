package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/big"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"divflow/internal/model"
	"divflow/internal/sim"
	"divflow/internal/workload"
)

// islandFleet is two databank islands: machines 0/1 host only "bankA",
// machines 2/3 only "bankB", so the connectivity partition is two shards.
func islandFleet() []model.Machine {
	return []model.Machine{
		{Name: "a0", InverseSpeed: rat(1, 1), Databanks: []string{"bankA"}},
		{Name: "a1", InverseSpeed: rat(1, 1), Databanks: []string{"bankA"}},
		{Name: "b0", InverseSpeed: rat(1, 1), Databanks: []string{"bankB"}},
		{Name: "b1", InverseSpeed: rat(1, 1), Databanks: []string{"bankB"}},
	}
}

// replicatedFleet is islandFleet after a replication event: the bankB hosts
// now also carry bankA, joining everything into one connectivity component.
// Databank sets only grow, so pieces executed before the event stay valid
// against the updated machines.
func replicatedFleet() []model.Machine {
	return []model.Machine{
		{Name: "a0", InverseSpeed: rat(1, 1), Databanks: []string{"bankA"}},
		{Name: "a1", InverseSpeed: rat(1, 1), Databanks: []string{"bankA"}},
		{Name: "b0", InverseSpeed: rat(1, 1), Databanks: []string{"bankB", "bankA"}},
		{Name: "b1", InverseSpeed: rat(1, 1), Databanks: []string{"bankB", "bankA"}},
	}
}

// TestReshardDatabankReplication is the headline live re-sharding scenario:
// a replication event changes which hosts can reach bankA mid-workload, the
// admin repartitions the running fleet, and no work is lost — half-executed
// jobs migrate with their exact remaining fractions, global IDs keep
// resolving across shard generations, and the merged executed trace still
// validates exactly.
func TestReshardDatabankReplication(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: islandFleet(), Policy: "srpt", Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.ShardCount() != 2 {
		t.Fatalf("island fleet partitioned into %d shards, want 2", srv.ShardCount())
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// bankA island: three jobs (8+8+8 over two machines); bankB island: one
	// small job. The imbalance is structural — bankB machines cannot host
	// bankA jobs, so work stealing cannot fix it. Only re-sharding can.
	var ids []int
	for _, spec := range []struct{ size, bank string }{
		{"8", "bankA"}, {"8", "bankA"}, {"8", "bankA"}, {"2", "bankB"},
	} {
		resp, err := srv.Submit(&model.SubmitRequest{Size: spec.size, Databanks: []string{spec.bank}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, resp.ID)
	}
	srv.Start()
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.BatchedArrivals >= 4 })

	// t=2: the bankB job is done, its island idle; bankA still grinding
	// (srpt runs two of the three jobs, the third waits).
	vc.Advance(rat(2, 1))
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.JobsCompleted == 1 })

	// Replication event: bankB hosts gain bankA. The partition collapses to
	// one shard over all four machines; both island shards retire.
	resp, err := srv.Reshard(&model.Platform{Machines: replicatedFleet()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Noop {
		t.Fatal("structural reshard reported as no-op")
	}
	if resp.ShardCount != 1 || len(resp.SpawnedShards) != 1 || len(resp.RetiredShards) != 2 || len(resp.KeptShards) != 0 {
		t.Fatalf("reshard outcome = %+v, want 1 shard spawned, 2 retired, none kept", resp)
	}
	if resp.Generation != 1 {
		t.Errorf("generation = %d, want 1", resp.Generation)
	}
	// Exactly the unfinished bankA jobs move (two live, one queued or live
	// depending on srpt's assignment — all three are unfinished at t=2).
	if resp.MigratedJobs != 3 {
		t.Errorf("migrated %d jobs, want 3 (the unfinished bankA jobs)", resp.MigratedJobs)
	}
	if srv.ShardCount() != 1 || srv.Generation() != 1 {
		t.Fatalf("post-reshard topology = %d shards gen %d, want 1 shard gen 1", srv.ShardCount(), srv.Generation())
	}

	// Every original global ID still resolves, mid-flight jobs included.
	for _, id := range ids {
		var st model.JobStatus
		getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id), &st)
		if st.ID != id {
			t.Errorf("job %d reads back as %d across the reshard", id, st.ID)
		}
	}

	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 4 })
	validateServer(t, srv)

	st := srv.Stats()
	if st.Generation != 1 || st.ReshardEvents != 1 || st.ReshardedJobs != 3 {
		t.Errorf("stats generation/events/jobs = %d/%d/%d, want 1/1/3",
			st.Generation, st.ReshardEvents, st.ReshardedJobs)
	}
	if st.JobsAccepted != 4 {
		t.Errorf("jobsAccepted = %d, want 4 (migrated records must not double-count)", st.JobsAccepted)
	}
	retired := 0
	for _, sh := range st.Shards {
		if sh.Retired {
			retired++
			if sh.JobsLive != 0 {
				t.Errorf("retired shard %d still has %d live jobs", sh.Shard, sh.JobsLive)
			}
		}
	}
	if retired != 2 {
		t.Errorf("%d retired shards in the breakdown, want 2", retired)
	}
	// 24 units of bankA work over two machines would finish at 12+; over
	// four (post-replication) the tail must finish strictly earlier. The
	// bankA jobs all complete by t=8: 22 remaining units at t=2 on 4
	// machines. Just pin that the makespan beat the two-machine bound.
	var schedResp model.ScheduleResponse
	getJSON(t, ts.URL+"/v1/schedule", &schedResp)
	makespan, ok := new(big.Rat).SetString(schedResp.Makespan)
	if !ok || makespan.Cmp(rat(12, 1)) >= 0 {
		t.Errorf("makespan = %s, want < 12 (the replicated hosts must have helped)", schedResp.Makespan)
	}

	// The spawned shard keeps issuing IDs that resolve through the new
	// generation.
	post, err := srv.Submit(&model.SubmitRequest{Size: "3", Databanks: []string{"bankA"}})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 5 })
	var stPost model.JobStatus
	getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, post.ID), &stPost)
	if stPost.ID != post.ID || stPost.State != StateDone {
		t.Errorf("post-reshard job %d = %+v, want done under its own ID", post.ID, stPost)
	}
	for _, id := range ids {
		if id == post.ID {
			t.Fatalf("post-reshard ID %d collides with a generation-0 ID", post.ID)
		}
	}
}

// TestReshardKeepsUntouchedShard pins the diff step: a reshard that leaves
// one connectivity component identical must keep that shard — engine, trace,
// and records untouched, its jobs never migrated — while the changed
// component is retired and respawned.
func TestReshardKeepsUntouchedShard(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: islandFleet(), Policy: "srpt", Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	keptBefore := srv.active()[0] // the bankA island
	srv.Start()

	for _, spec := range []struct{ size, bank string }{
		{"6", "bankA"}, {"6", "bankB"}, {"4", "bankB"},
	} {
		if _, err := srv.Submit(&model.SubmitRequest{Size: spec.size, Databanks: []string{spec.bank}}); err != nil {
			t.Fatal(err)
		}
	}
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.BatchedArrivals >= 3 })
	vc.Advance(rat(1, 1))

	// The bankB island gains a machine; the bankA island is untouched.
	grown := append(islandFleet(), model.Machine{
		Name: "b2", InverseSpeed: rat(1, 1), Databanks: []string{"bankB"}})
	resp, err := srv.Reshard(&model.Platform{Machines: grown})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.KeptShards) != 1 || resp.KeptShards[0] != keptBefore.idx {
		t.Fatalf("kept shards = %v, want exactly the bankA shard %d", resp.KeptShards, keptBefore.idx)
	}
	if len(resp.RetiredShards) != 1 || len(resp.SpawnedShards) != 1 {
		t.Fatalf("retired/spawned = %v/%v, want one of each", resp.RetiredShards, resp.SpawnedShards)
	}
	if srv.active()[0] != keptBefore {
		t.Fatal("kept shard object was replaced, not carried over")
	}
	keptBefore.mu.Lock()
	keptStats := keptBefore.reshardOut
	keptBefore.mu.Unlock()
	if keptStats != 0 {
		t.Errorf("kept shard migrated %d jobs, want 0", keptStats)
	}

	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 3 })
	validateServer(t, srv)

	// A post-reshard submission to the *kept* shard gets a new-generation ID
	// that must resolve back to it.
	post, err := srv.Submit(&model.SubmitRequest{Size: "2", Databanks: []string{"bankA"}})
	if err != nil {
		t.Fatal(err)
	}
	sh, _, ok := srv.locate(post.ID)
	if !ok || sh != keptBefore {
		t.Fatalf("new-generation ID %d located on %v, want the kept shard", post.ID, sh)
	}
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 4 })
	if st, known := srv.jobStatus(post.ID); !known || st.State != StateDone {
		t.Errorf("post-reshard job on kept shard = %+v known=%v, want done", st, known)
	}
}

// TestReshardNoopTraceIdentical pins the no-op guarantee of the equivalence
// suite: re-submitting the identical platform mid-workload must not advance
// the generation, migrate anything, or perturb the executed trace — the
// server replays event-for-event like the closed-world simulator, exactly as
// if the reshard never happened.
func TestReshardNoopTraceIdentical(t *testing.T) {
	for _, policy := range []string{"online-mwf-lazy", "srpt"} {
		t.Run(policy, func(t *testing.T) {
			cfg := workload.Default()
			cfg.Jobs = 12
			cfg.Machines = 3
			cfg.Seed = 9
			inst := workload.MustGenerate(cfg)

			refPol, err := NewPolicy(policy)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := sim.Run(inst, refPol)
			if err != nil {
				t.Fatal(err)
			}

			vc := NewVirtualClock()
			srv, err := New(Config{Machines: inst.Machines, Policy: policy, Clock: vc, Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			srv.Start()

			platform := &model.Platform{Machines: inst.Machines, Shards: 1}
			submitted := 0
			for j := 0; j < inst.N(); {
				r := inst.Jobs[j].Release
				vc.Advance(r)
				for j < inst.N() && inst.Jobs[j].Release.Cmp(r) == 0 {
					if _, err := srv.Submit(&model.SubmitRequest{
						Name:      inst.Jobs[j].Name,
						Weight:    inst.Jobs[j].Weight.RatString(),
						Size:      inst.Jobs[j].Size.RatString(),
						Databanks: inst.Jobs[j].Databanks,
					}); err != nil {
						t.Fatal(err)
					}
					j++
					submitted++
				}
				waitStats(t, srv, func(st model.StatsResponse) bool {
					return st.BatchedArrivals >= submitted
				})
				// A no-op reshard after every admission wave: maximum
				// opportunity to perturb mid-flight state if it ever touched
				// anything it shouldn't.
				resp, err := srv.Reshard(platform)
				if err != nil {
					t.Fatal(err)
				}
				if !resp.Noop || resp.Generation != 0 || resp.MigratedJobs != 0 {
					t.Fatalf("identical platform produced %+v, want a generation-0 no-op", resp)
				}
			}
			drive(t, vc, func() bool { return srv.Stats().JobsCompleted == inst.N() })

			if g := srv.Generation(); g != 0 {
				t.Errorf("generation after no-op reshards = %d, want 0", g)
			}
			sh := srv.active()[0]
			sh.mu.Lock()
			pieces := append(ref.Schedule.Pieces[:0:0], sh.eng.Schedule().Pieces...)
			sh.mu.Unlock()
			comparePieces(t, pieces, ref.Schedule.Pieces)
			if st := srv.Stats(); st.MaxWeightedFlow != ref.MaxWeightedFlow.RatString() {
				t.Errorf("maxWeightedFlow = %s, simulator %s", st.MaxWeightedFlow, ref.MaxWeightedFlow.RatString())
			}
		})
	}
}

// TestReshardRenumbersFleet pins the machine-numbering contract across a
// platform document that reorders the same machines: the partition is
// unchanged (a no-op — every group matches a running shard by signature),
// but /v1/schedule's machine indices must follow the *new* document, on kept
// and previously-retired shards alike.
func TestReshardRenumbersFleet(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: islandFleet(), Policy: "srpt", Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Start()
	for _, bank := range []string{"bankA", "bankB"} {
		if _, err := srv.Submit(&model.SubmitRequest{Size: "2", Databanks: []string{bank}}); err != nil {
			t.Fatal(err)
		}
	}
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 2 })

	// Same four machines, islands swapped in the document: bankB hosts are
	// now fleet indices 0/1 and bankA hosts 2/3.
	orig := islandFleet()
	reordered := append(append([]model.Machine(nil), orig[2:]...), orig[:2]...)
	resp, err := srv.Reshard(&model.Platform{Machines: reordered})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Noop {
		t.Fatalf("pure reorder produced %+v, want a no-op (same partition)", resp)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var schedResp model.ScheduleResponse
	getJSON(t, ts.URL+"/v1/schedule", &schedResp)
	var sched struct {
		Pieces []struct {
			Machine int `json:"machine"`
			Job     int `json:"job"`
		} `json:"pieces"`
	}
	if err := json.Unmarshal(schedResp.Schedule, &sched); err != nil {
		t.Fatal(err)
	}
	if len(sched.Pieces) == 0 {
		t.Fatal("no executed pieces")
	}
	for _, pc := range sched.Pieces {
		// Job 0 needed bankA (now machines 2/3), job 1 bankB (now 0/1).
		if pc.Job == 0 && pc.Machine != 2 && pc.Machine != 3 {
			t.Errorf("bankA piece reports machine %d under the reordered fleet, want 2 or 3", pc.Machine)
		}
		if pc.Job == 1 && pc.Machine != 0 && pc.Machine != 1 {
			t.Errorf("bankB piece reports machine %d under the reordered fleet, want 0 or 1", pc.Machine)
		}
	}
}

// TestReshardRetentionCompactsRetiredShards pins that `-retention` keeps
// bounding memory across reshards: a retired shard's loop stays alive at one
// wake-up per retention window, compacting its frozen history — records,
// donor-side migrated entries, forwarding-table entries owned by its stolen
// records — until nothing is left, then exits. Without this, every reshard
// would freeze its retired shards' history forever and retention would stop
// being a real bound on a long-running daemon.
func TestReshardRetentionCompactsRetiredShards(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: islandFleet(), Policy: "srpt", Clock: vc, Retention: rat(4, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Start()
	for _, spec := range []struct{ size, bank string }{{"6", "bankA"}, {"2", "bankB"}} {
		if _, err := srv.Submit(&model.SubmitRequest{Size: spec.size, Databanks: []string{spec.bank}}); err != nil {
			t.Fatal(err)
		}
	}
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.BatchedArrivals >= 2 })
	vc.Advance(rat(1, 1))
	if _, err := srv.Reshard(&model.Platform{Machines: replicatedFleet()}); err != nil {
		t.Fatal(err)
	}
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 2 })

	// Sail the retention horizon past every completion and migration time;
	// the retired loops wake on their own retention timers, the active
	// shard on a poke.
	vc.Advance(rat(30, 1))
	deadline := time.Now().Add(30 * time.Second)
	for {
		for _, sh := range srv.active() {
			sh.poke()
		}
		vc.AdvanceToNextTimer() // any retention timer re-armed mid-compaction
		empty := true
		for _, sh := range srv.allShards() {
			sh.mu.Lock()
			if !sh.historyEmpty() {
				empty = false
			}
			sh.mu.Unlock()
		}
		srv.fwdMu.RLock()
		entries := len(srv.forward)
		srv.fwdMu.RUnlock()
		if empty && entries == 0 {
			break
		}
		if time.Now().After(deadline) {
			st := srv.Stats()
			t.Fatalf("retired history never fully compacted: %d forward entries, compactedJobs=%d", entries, st.CompactedJobs)
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Fully forgotten IDs now answer definitively in bounded attempts.
	if _, known := srv.jobStatus(0); known {
		t.Error("compacted job 0 still resolves")
	}
}

// TestReshardInheritsShardsOverride pins the override precedence: a server
// running under a `-shards N` round-robin override must treat a platform
// document without its own "shards" field as inheriting N — re-POSTing the
// daemon's startup platform is a no-op, not a silent repartition to
// connectivity components — while an explicit "shards" both wins and
// becomes the new standing override.
func TestReshardInheritsShardsOverride(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: uniformFleet(4), Shards: 2, Policy: "mct", Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Start()

	resp, err := srv.Reshard(&model.Platform{Machines: uniformFleet(4)})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Noop || resp.ShardCount != 2 {
		t.Fatalf("no-shards-field platform on a -shards 2 server = %+v, want a 2-shard no-op", resp)
	}
	// Explicit override wins and sticks: later documents without the field
	// inherit the last explicit choice.
	resp, err = srv.Reshard(&model.Platform{Machines: uniformFleet(4), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Noop || resp.ShardCount != 4 {
		t.Fatalf("explicit shards:4 = %+v, want a structural reshard to 4", resp)
	}
	resp, err = srv.Reshard(&model.Platform{Machines: uniformFleet(4)})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Noop || resp.ShardCount != 4 {
		t.Fatalf("no-shards-field platform after explicit 4 = %+v, want a 4-shard no-op", resp)
	}
}

// TestReshardRejectsStrandedJob pins atomicity: a platform update that drops
// the only databank a queued or live job needs must be rejected wholesale —
// no migration, no generation bump, no retired shard — and the job still
// completes on the unchanged topology.
func TestReshardRejectsStrandedJob(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: islandFleet(), Policy: "srpt", Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Start()
	if _, err := srv.Submit(&model.SubmitRequest{Size: "5", Databanks: []string{"bankB"}}); err != nil {
		t.Fatal(err)
	}
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.BatchedArrivals >= 1 })

	// The new platform forgets bankB entirely.
	noB := []model.Machine{
		{Name: "a0", InverseSpeed: rat(1, 1), Databanks: []string{"bankA"}},
		{Name: "a1", InverseSpeed: rat(1, 1), Databanks: []string{"bankA"}},
	}
	if _, err := srv.Reshard(&model.Platform{Machines: noB}); err == nil {
		t.Fatal("reshard stranding a live bankB job must be rejected")
	}
	if g, p := srv.Generation(), srv.ShardCount(); g != 0 || p != 2 {
		t.Fatalf("rejected reshard left generation %d, %d shards; want 0, 2", g, p)
	}
	st := srv.Stats()
	if st.ReshardEvents != 0 || st.ReshardedJobs != 0 {
		t.Errorf("rejected reshard recorded events=%d jobs=%d, want 0/0", st.ReshardEvents, st.ReshardedJobs)
	}
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 1 })
}

// TestReshardDisabledGate pins the -reshard=false escape hatch.
func TestReshardDisabledGate(t *testing.T) {
	srv, err := New(Config{Machines: testFleet(), Clock: NewVirtualClock(), DisableReshard: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Reshard(&model.Platform{Machines: testFleet()}); err != ErrReshardDisabled {
		t.Fatalf("Reshard on a gated server = %v, want ErrReshardDisabled", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body, _ := json.Marshal(map[string]any{"machines": []map[string]any{
		{"name": "fast", "inverseSpeed": "1/2", "databanks": []string{"swissprot"}},
		{"name": "slow", "inverseSpeed": "1", "databanks": []string{"swissprot", "pdb"}},
	}})
	resp, err := http.Post(ts.URL+"/v1/platform", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("POST /v1/platform on a gated server = %d, want 403", resp.StatusCode)
	}
}

// TestReshardAdminAPI drives a structural reshard end to end over HTTP: the
// same platform JSON format the daemon loads at startup, POSTed to the
// running service.
func TestReshardAdminAPI(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: uniformFleet(4), Shards: 1, Policy: "mct", Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 6; i++ {
		if _, err := srv.Submit(&model.SubmitRequest{Size: "4", Databanks: []string{"shared"}}); err != nil {
			t.Fatal(err)
		}
	}
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.BatchedArrivals >= 6 })

	platform := map[string]any{"shards": 4, "machines": []map[string]any{}}
	for i := 0; i < 4; i++ {
		platform["machines"] = append(platform["machines"].([]map[string]any), map[string]any{
			"name": fmt.Sprintf("u%d", i), "inverseSpeed": "1", "databanks": []string{"shared"},
		})
	}
	body, _ := json.Marshal(platform)
	httpResp, err := http.Post(ts.URL+"/v1/platform", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var resp model.ReshardResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/platform = %d, want 200", httpResp.StatusCode)
	}
	if resp.Noop || resp.ShardCount != 4 || resp.Generation != 1 {
		t.Fatalf("reshard over HTTP = %+v, want 4 shards at generation 1", resp)
	}
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 6 })
	validateServer(t, srv)

	// A malformed document is a 400, not a topology change.
	bad, err := http.Post(ts.URL+"/v1/platform", "application/json", bytes.NewReader([]byte(`{"machines": []}`)))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("empty platform = %d, want 400", bad.StatusCode)
	}
	if srv.Generation() != 1 {
		t.Errorf("bad request moved the generation to %d", srv.Generation())
	}
}

// TestReshardUnderConcurrentTraffic is the race check on the dynamic
// topology: HTTP clients keep submitting and reading while the topology is
// repartitioned repeatedly (1 → 4 → 2 → 3 shards); every accepted job must
// complete, every ID must resolve at every moment, and the merged trace must
// validate exactly at the end. Run under -race this exercises the
// topoMu/forwarding/retired-shard interleavings.
func TestReshardUnderConcurrentTraffic(t *testing.T) {
	const clients, perClient = 8, 6
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: uniformFleet(4), Shards: 1, Policy: "mct", Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Start()

	stop := make(chan struct{})
	var driver sync.WaitGroup
	driver.Add(1)
	go func() {
		defer driver.Done()
		for {
			select {
			case <-stop:
				return
			default:
				vc.AdvanceToNextTimer()
			}
		}
	}()

	ids := make([][]int, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				resp, err := srv.Submit(&model.SubmitRequest{
					Size:      fmt.Sprintf("%d", 1+(c+k)%5),
					Databanks: []string{"shared"},
				})
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				ids[c] = append(ids[c], resp.ID)
				// Immediately read the job back: the ID must resolve no
				// matter which side of a racing reshard issued it.
				if _, known := srv.jobStatus(resp.ID); !known {
					t.Errorf("client %d: fresh ID %d does not resolve", c, resp.ID)
				}
			}
		}(c)
	}
	// Reshard storm concurrent with the submissions.
	machines := uniformFleet(4)
	for _, shards := range []int{4, 2, 3} {
		if _, err := srv.Reshard(&model.Platform{Machines: machines, Shards: shards}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	waitStats(t, srv, func(st model.StatsResponse) bool {
		return st.JobsCompleted == clients*perClient
	})
	close(stop)
	driver.Wait()

	seen := make(map[int]bool)
	for c := range ids {
		for _, id := range ids[c] {
			if seen[id] {
				t.Errorf("global ID %d issued twice across generations", id)
			}
			seen[id] = true
			st, known := srv.jobStatus(id)
			if !known || st.State != StateDone {
				t.Errorf("job %d = %+v known=%v, want done", id, st, known)
			}
		}
	}
	st := srv.Stats()
	if st.JobsAccepted != clients*perClient {
		t.Errorf("jobsAccepted = %d, want %d", st.JobsAccepted, clients*perClient)
	}
	if st.Generation != 3 || st.ReshardEvents != 3 {
		t.Errorf("generation/events = %d/%d, want 3/3", st.Generation, st.ReshardEvents)
	}
	validateServer(t, srv)
}
