package server

import (
	"encoding/json"
	"fmt"
	"math/big"
	"net/http"
	"net/http/httptest"
	"testing"

	"divflow/internal/model"
	"divflow/internal/schedule"
)

// TestRetentionCompaction drives a retention-bounded server through many
// waves of traffic on a virtual clock: executed pieces and job records from
// before the retention window must be compacted away (bounding memory),
// while the all-time aggregates keep reporting the compacted jobs' flows.
func TestRetentionCompaction(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{
		Machines:  testFleet(),
		Clock:     vc,
		Retention: big.NewRat(10, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Start()

	// Each wave: one size-4 job shared by both machines (rate 3), flow 4/3,
	// then 20 virtual seconds of quiet — far past the 10s retention, so by
	// the time the next wave arrives the previous one is compactable.
	const waves = 8
	for w := 0; w < waves; w++ {
		postJob(t, ts.URL, model.SubmitRequest{Size: "4", Databanks: []string{"swissprot"}})
		drive(t, vc, func() bool { return srv.Stats().JobsCompleted == w+1 })
		vc.Advance(big.NewRat(int64((w+1)*20), 1))
	}
	// One trailing submission wakes the loop at t = 8*20 so the final
	// compaction pass runs, then let it finish.
	postJob(t, ts.URL, model.SubmitRequest{Size: "4", Databanks: []string{"swissprot"}})
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == waves+1 })

	var st model.StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.JobsCompleted != waves+1 {
		t.Fatalf("jobsCompleted = %d, want %d", st.JobsCompleted, waves+1)
	}
	if st.CompactedJobs < waves-1 {
		t.Errorf("compactedJobs = %d, want >= %d", st.CompactedJobs, waves-1)
	}
	// Aggregates survive compaction: every wave contributed flow 4/3.
	if st.MaxWeightedFlow != "4/3" || st.MaxStretch != "1/3" {
		t.Errorf("maxWeightedFlow=%s maxStretch=%s, want 4/3 and 1/3", st.MaxWeightedFlow, st.MaxStretch)
	}
	if want := 4.0 / 3.0; st.MeanFlow < want-1e-9 || st.MeanFlow > want+1e-9 {
		t.Errorf("meanFlow = %v, want %v", st.MeanFlow, want)
	}

	// Compacted jobs are gone from the per-job API...
	resp, err := http.Get(ts.URL + "/v1/jobs/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET compacted job = %d, want 404", resp.StatusCode)
	}
	// ...and their pieces from the schedule: memory is bounded by the
	// retention window, not by service lifetime.
	var schedResp model.ScheduleResponse
	getJSON(t, ts.URL+"/v1/schedule", &schedResp)
	var sched schedule.Schedule
	if err := json.Unmarshal(schedResp.Schedule, &sched); err != nil {
		t.Fatal(err)
	}
	if len(sched.Pieces) > 2*len(testFleet()) {
		t.Errorf("%d pieces retained, want at most the last wave's", len(sched.Pieces))
	}
	horizon := new(big.Rat).Sub(vc.Now(), big.NewRat(10, 1))
	for _, pc := range sched.Pieces {
		if pc.End.Cmp(horizon) <= 0 {
			t.Errorf("piece ending at %v predates the retention horizon %v", pc.End, horizon)
		}
	}

	sh := srv.active()[0]
	sh.mu.Lock()
	retained := 0
	for _, rec := range sh.records {
		if rec != nil {
			retained++
		}
	}
	sh.mu.Unlock()
	if retained > 2 {
		t.Errorf("%d job records retained, want memory bounded by the retention window", retained)
	}
}

// TestRetentionKeepsRecentWork: jobs inside the retention window must stay
// queryable even while older ones are being compacted.
func TestRetentionKeepsRecentWork(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: testFleet(), Clock: vc, Retention: big.NewRat(1000, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Start()

	id := postJob(t, ts.URL, model.SubmitRequest{Size: "4", Databanks: []string{"swissprot"}})
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 1 })

	var st model.JobStatus
	getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id.ID), &st)
	if st.State != StateDone || st.Flow != "4/3" {
		t.Errorf("recent job: state=%s flow=%s, want done 4/3", st.State, st.Flow)
	}
	if srv.Stats().CompactedJobs != 0 {
		t.Errorf("compactedJobs = %d inside the window, want 0", srv.Stats().CompactedJobs)
	}
}
