// Package server is the divflowd scheduling service: a long-running,
// concurrent boundary around the exact solvers of this repository. It owns
// a machine fleet loaded at startup, admits divisible-job submissions over
// HTTP, and runs an event-driven loop that steps the same sim.Policy
// machinery as the offline/online simulator — by default the paper's online
// max-weighted-flow adaptation with lazy re-solving, so arrivals landing
// within one wake-up are batched into a single exact solve and every other
// event is served from the cached plan.
//
// The loop is single-owner: one goroutine mutates the engine, guarded by a
// mutex that HTTP handlers take only to enqueue submissions or read state.
// Time comes from a pluggable Clock — the wall clock in the daemon, a
// virtual clock in tests, making the whole service deterministically
// testable at high job counts.
package server

import (
	"errors"
	"fmt"
	"math/big"
	"sync"

	"divflow/internal/model"
	"divflow/internal/sim"
)

// ErrClosed is returned by Submit once the server is shutting down.
var ErrClosed = errors.New("server: shutting down")

// Job lifecycle states reported by the API.
const (
	StateQueued    = "queued"    // accepted, not yet admitted by the loop
	StateScheduled = "scheduled" // live: the policy is scheduling it
	StateDone      = "done"
)

// Config parameterizes a Server.
type Config struct {
	// Machines is the fleet (every machine needs InverseSpeed > 0).
	Machines []model.Machine
	// Policy is one of Policies(); empty selects DefaultPolicy.
	Policy string
	// Clock defaults to a fresh RealClock.
	Clock Clock
	// Retention, when positive, bounds the execution history kept in
	// memory: executed schedule pieces that ended more than Retention ago
	// and the records of jobs completed more than Retention ago are
	// compacted away, with the aggregate flow/stretch statistics they
	// contributed cached so GET /v1/stats keeps reporting all-time values.
	// Compacted jobs vanish from GET /v1/jobs/{id} and their pieces from
	// GET /v1/schedule. Nil (or zero) keeps everything forever — a
	// long-running daemon under sustained traffic should set it.
	Retention *big.Rat
}

// jobRecord is the server-side state of one submitted job.
type jobRecord struct {
	id        int
	name      string
	weight    *big.Rat
	size      *big.Rat
	databanks []string
	state     string
	release   *big.Rat // submission time: the job's flow origin
	completed *big.Rat // completion time; nil until done
}

// Server is one divflowd instance. Create with New, start the scheduling
// loop with Start, serve Handler over HTTP, stop with Close.
type Server struct {
	clock    Clock
	machines []model.Machine
	policy   sim.Policy
	mwf      *sim.OnlineMWF // non-nil when policy is an OnlineMWF variant

	mu      sync.Mutex
	eng     *sim.Engine
	records []*jobRecord
	pending []*jobRecord // accepted but not yet admitted
	// hosts[i] caches which job IDs machine i can serve (databank check
	// done once at acceptance, not on every cost lookup).
	eligible []map[int]bool

	arrivalBatches  int
	batchedArrivals int
	largestBatch    int
	stalled         bool
	lastErr         error

	// Completed-job statistics are accumulated at completion time, not
	// recomputed from records, so compaction can forget the records without
	// losing the all-time aggregates.
	doneCount  int
	flowSum    *big.Rat
	maxWF      *big.Rat
	maxStretch *big.Rat
	// recentFlows is a bounded ring of the latest completions' float flows,
	// backing the P95 estimate with bounded memory.
	recentFlows []float64
	flowPos     int

	retention     *big.Rat
	lastCompact   *big.Rat // horizon of the last compaction
	compactedJobs int

	started bool
	closed  bool
	wake    chan struct{}
	done    chan struct{}
	stopped chan struct{}
}

// New builds a server over the fleet. The scheduling loop is not started
// yet — submissions queue until Start.
func New(cfg Config) (*Server, error) {
	if len(cfg.Machines) == 0 {
		return nil, errors.New("server: no machines")
	}
	for i := range cfg.Machines {
		if cfg.Machines[i].InverseSpeed == nil || cfg.Machines[i].InverseSpeed.Sign() <= 0 {
			return nil, fmt.Errorf("server: machine %d (%s) needs InverseSpeed > 0", i, cfg.Machines[i].Name)
		}
	}
	pol, err := NewPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	clock := cfg.Clock
	if clock == nil {
		clock = NewRealClock()
	}
	s := &Server{
		clock:    clock,
		machines: append([]model.Machine(nil), cfg.Machines...),
		policy:   pol,
		flowSum:  new(big.Rat),
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	if cfg.Retention != nil && cfg.Retention.Sign() > 0 {
		s.retention = new(big.Rat).Set(cfg.Retention)
		s.lastCompact = new(big.Rat)
	}
	s.mwf, _ = pol.(*sim.OnlineMWF)
	s.eligible = make([]map[int]bool, len(s.machines))
	for i := range s.eligible {
		s.eligible[i] = make(map[int]bool)
	}
	s.eng = sim.NewEngine(len(s.machines), s.cost, pol)
	return s, nil
}

// cost is the engine's CostFunc: the uniform model over the fleet,
// c_{i,j} = Size_j · InverseSpeed_i where machine i hosts job j's databanks.
func (s *Server) cost(machine, jobID int) (*big.Rat, bool) {
	if !s.eligible[machine][jobID] {
		return nil, false
	}
	return new(big.Rat).Mul(s.records[jobID].size, s.machines[machine].InverseSpeed), true
}

// Start launches the scheduling loop. Safe to call once.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	go s.loop()
}

// Close stops accepting submissions and terminates the loop.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	started := s.started
	s.mu.Unlock()
	close(s.done)
	if started {
		<-s.stopped
	}
}

// Submit accepts one job, stamping its flow origin (release) now. It
// returns the assigned ID; the scheduling loop admits the job at its next
// wake-up, so submissions racing one re-solve share it.
func (s *Server) Submit(req *model.SubmitRequest) (int, error) {
	job, err := req.Job()
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	var hosts []int
	for i := range s.machines {
		if s.machines[i].Hosts(job.Databanks) {
			hosts = append(hosts, i)
		}
	}
	if len(hosts) == 0 {
		return 0, fmt.Errorf("server: no machine hosts databanks %v", job.Databanks)
	}
	rec := &jobRecord{
		id:        len(s.records),
		name:      job.Name,
		weight:    job.Weight,
		size:      job.Size,
		databanks: job.Databanks,
		state:     StateQueued,
		// The flow origin is the submission time: queueing delay before
		// the loop admits the job counts against its flow, exactly like
		// the paper's online adaptation measures flows from submission.
		release: s.clock.Now(),
	}
	if rec.name == "" {
		rec.name = fmt.Sprintf("job-%d", rec.id)
	}
	s.records = append(s.records, rec)
	s.pending = append(s.pending, rec)
	for _, i := range hosts {
		s.eligible[i][rec.id] = true
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return rec.id, nil
}

// loop is the scheduling event loop: process everything due, arm a timer
// for the next engine event, sleep until the timer or a submission wakes it.
func (s *Server) loop() {
	defer close(s.stopped)
	for {
		s.mu.Lock()
		s.process()
		next := s.eng.NextEvent()
		s.mu.Unlock()

		var timer <-chan struct{}
		cancel := func() {}
		if next != nil {
			timer, cancel = s.clock.At(next)
		}
		select {
		case <-s.done:
			cancel()
			return
		case <-s.wake:
		case <-timer:
		}
		// Release the timer before re-arming: wake-ups during a long-lived
		// event would otherwise pile up pending timers until its deadline.
		cancel()
	}
}

// process catches the engine up with the clock — executing the current
// allocation through every completion/review event that is due — and then
// admits all pending submissions as one batch. Callers hold s.mu.
func (s *Server) process() {
	now := s.clock.Now()
	if now.Cmp(s.eng.Now()) < 0 {
		// A timer fired marginally early (wall-clock rounding): treat the
		// engine's exact time as authoritative.
		now = s.eng.Now()
	}
	for {
		next := s.eng.NextEvent()
		if next == nil || next.Cmp(now) > 0 {
			break
		}
		if !s.step(next) {
			return
		}
	}
	// Partial progress up to the present, crossing no event.
	if _, err := s.eng.AdvanceTo(now); err != nil {
		s.fail(err)
		return
	}
	s.compact(now)
	if len(s.pending) == 0 {
		return
	}
	batch := s.pending
	s.pending = nil
	for _, rec := range batch {
		rec.state = StateScheduled
		if err := s.eng.Add(rec.id, rec.release, rec.weight, rec.size); err != nil {
			s.fail(err)
			return
		}
	}
	s.arrivalBatches++
	s.batchedArrivals += len(batch)
	if len(batch) > s.largestBatch {
		s.largestBatch = len(batch)
	}
	s.decide()
}

// step advances the engine to the event at t, completes jobs, and re-runs
// the policy. Callers hold s.mu.
func (s *Server) step(t *big.Rat) bool {
	done, err := s.eng.AdvanceTo(t)
	if err != nil {
		s.fail(err)
		return false
	}
	for _, id := range done {
		s.records[id].state = StateDone
		s.records[id].completed = s.eng.Completion(id)
		s.recordCompletion(s.records[id])
	}
	return s.decide()
}

// maxRecentFlows bounds the sample backing the P95 flow estimate.
const maxRecentFlows = 4096

// recordCompletion folds one finished job into the all-time aggregates, so
// later compaction of its record loses no statistics. Callers hold s.mu.
func (s *Server) recordCompletion(rec *jobRecord) {
	s.doneCount++
	flow := new(big.Rat).Sub(rec.completed, rec.release)
	s.flowSum.Add(s.flowSum, flow)
	wf := new(big.Rat).Mul(rec.weight, flow)
	if s.maxWF == nil || wf.Cmp(s.maxWF) > 0 {
		s.maxWF = wf
	}
	st := new(big.Rat).Quo(flow, rec.size)
	if s.maxStretch == nil || st.Cmp(s.maxStretch) > 0 {
		s.maxStretch = st
	}
	f, _ := flow.Float64()
	if len(s.recentFlows) < maxRecentFlows {
		s.recentFlows = append(s.recentFlows, f)
	} else {
		s.recentFlows[s.flowPos] = f
		s.flowPos = (s.flowPos + 1) % maxRecentFlows
	}
}

// compact enforces the retention bound: everything that finished more than
// retention before now is dropped from the engine's executed trace and from
// the per-job records (their statistics were already aggregated at
// completion). Callers hold s.mu.
func (s *Server) compact(now *big.Rat) {
	if s.retention == nil {
		return
	}
	horizon := new(big.Rat).Sub(now, s.retention)
	if horizon.Sign() <= 0 || horizon.Cmp(s.lastCompact) <= 0 {
		return
	}
	s.lastCompact = horizon
	for _, id := range s.eng.Compact(horizon) {
		s.records[id] = nil
		s.compactedJobs++
		for i := range s.eligible {
			delete(s.eligible[i], id)
		}
	}
}

// decide runs the policy and flags a stall (live work but no upcoming
// event: the policy idled, or its inner solver failed). Callers hold s.mu.
func (s *Server) decide() bool {
	if err := s.eng.Decide(); err != nil {
		s.fail(err)
		return false
	}
	// Once fail() recorded an engine error the flag stays latched: later
	// decisions on a poisoned engine must not report the service healthy.
	s.stalled = s.lastErr != nil || (s.eng.Live() > 0 && s.eng.NextEvent() == nil)
	if s.stalled && s.lastErr == nil {
		err := fmt.Errorf("server: policy %s idles with %d live jobs", s.policy.Name(), s.eng.Live())
		if s.mwf != nil && s.mwf.Err() != nil {
			err = s.mwf.Err()
		}
		s.lastErr = err
	}
	return true
}

// fail records a loop error; the service keeps serving reads.
func (s *Server) fail(err error) {
	if s.lastErr == nil {
		s.lastErr = err
	}
	s.stalled = true
}
