// Package server is the divflowd scheduling service: a long-running,
// concurrent boundary around the exact solvers of this repository. It owns
// a machine fleet loaded at startup, admits divisible-job submissions over
// HTTP, and schedules them online with the same sim.Policy machinery as the
// offline/online simulator — by default the paper's online
// max-weighted-flow adaptation with lazy re-solving, so arrivals landing
// within one wake-up are batched into a single exact solve and every other
// event is served from the cached plan.
//
// The service is sharded: the fleet is partitioned into scheduling shards
// (by databank-connectivity components, or a fixed count for uniform
// fleets), each with its own mutex, goroutine, engine, and policy instance.
// The Server routes every submission to the eligible shard with the least
// exact residual work and merges per-shard state for reads. Each shard's
// loop is single-owner: one goroutine mutates its engine, guarded by a
// mutex that HTTP handlers take only to enqueue submissions or read state.
// Time comes from a pluggable Clock — the wall clock in the daemon, a
// virtual clock in tests, making the whole service deterministically
// testable at high job counts.
package server

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"divflow/internal/model"
	"divflow/internal/obs"
	"divflow/internal/shardlink"
)

// ErrClosed is returned by Submit once the server is shutting down.
var ErrClosed = errors.New("server: shutting down")

// ErrReshardDisabled is returned by Reshard when the server was configured
// with DisableReshard (the -reshard=false gate).
var ErrReshardDisabled = errors.New("server: live re-sharding is disabled")

// errRetired is the internal signal that a submission reached a shard
// between its retirement by a reshard and the router observing the new
// topology; the router re-routes against the fresh active set.
var errRetired = errors.New("server: shard retired by re-sharding")

// errDeadline is the strict-admission reject: the submitted deadline is
// infeasible against the routed shard's residual workload. The submit
// response still carries the exact certificate, counter-offer included.
var errDeadline = errors.New("server: deadline infeasible against the shard's residual workload")

// errTenantQuota is the weighted-fairness reject: the submission would push
// its tenant past its weight share of the active-tenant fleet backlog.
var errTenantQuota = errors.New("server: tenant over its weighted share of the fleet backlog")

// errWALDegraded refuses topology changes once durability has latched: the
// on-disk state is frozen at a consistent prefix, and a reshard it cannot
// record would make the next restore replay onto the wrong topology.
var errWALDegraded = errors.New("server: durability latched; refusing topology change")

// shardStalledError is a submission failure tied to one shard — the chosen
// shard's transport failed mid-submit, or routing kept racing reshards. It
// maps to the shard_stalled wire code with a Retry-After hint.
type shardStalledError struct {
	shard int // creation index, -1 when no single shard is to blame
	err   error
}

func (e *shardStalledError) Error() string {
	if e.shard >= 0 {
		return fmt.Sprintf("server: shard %d unreachable: %v", e.shard, e.err)
	}
	return e.err.Error()
}

func (e *shardStalledError) Unwrap() error { return e.err }

// Job lifecycle states reported by the API.
const (
	StateQueued    = "queued"    // accepted, not yet admitted by the loop
	StateScheduled = "scheduled" // live: the policy is scheduling it
	StateDone      = "done"
	// StateRejected marks jobs the service accepted but shut down before
	// admitting: Close drains every shard's pending queue into this terminal
	// state so post-shutdown reads are truthful.
	StateRejected = "rejected"
	// StateMigrated marks a donor-side record whose job was stolen by
	// another shard. It is internal: the forwarding table routes every read
	// of the job's global ID to the shard that now owns it, so the state is
	// never visible on the wire. The record stays behind to translate the
	// donor trace's pre-migration pieces to the global ID.
	StateMigrated = "migrated"
)

// Config parameterizes a Server.
type Config struct {
	// Machines is the fleet (every machine needs InverseSpeed > 0).
	Machines []model.Machine
	// Policy is one of Policies(); empty selects DefaultPolicy.
	Policy string
	// Clock defaults to a fresh RealClock. All shards share it.
	Clock Clock
	// Shards, when positive, splits the fleet into that many scheduling
	// shards round-robin (at most one shard per machine). Zero partitions
	// by databank-connectivity components: machines sharing a databank land
	// in the same shard, so a databank-restricted job's eligible machines
	// fall inside one shard; machines hosting no databanks pool into one
	// shared component (a fully databank-less fleet stays a single loop).
	// A job eligible on several shards (uniform fleets, or jobs without
	// databank requirements) is routed to the shard with the least exact
	// residual work and scheduled on that shard's machines only.
	Shards int
	// DisableSteal turns cross-shard work stealing off, pinning the
	// pre-stealing behavior: a job stays on the shard it was routed to for
	// its whole life. By default an idle shard (no live or pending jobs)
	// steals queued or live jobs it can host from the largest-backlog shard,
	// migrating their exact remaining fractions so no work is lost or
	// duplicated and keeping their global IDs and flow origins.
	DisableSteal bool
	// Retention, when positive, bounds the execution history kept in
	// memory: executed schedule pieces that ended more than Retention ago
	// and the records of jobs completed more than Retention ago are
	// compacted away, with the aggregate flow/stretch statistics they
	// contributed cached so GET /v1/stats keeps reporting all-time values.
	// Compacted jobs vanish from GET /v1/jobs/{id} and their pieces from
	// GET /v1/schedule. Nil (or zero) keeps everything forever — a
	// long-running daemon under sustained traffic should set it.
	Retention *big.Rat
	// DisableReshard turns the live re-sharding admin surface off: Reshard
	// (and POST /v1/platform) answer ErrReshardDisabled and the partition
	// computed at startup stays fixed for the server's whole life, pinning
	// the pre-reshard behavior.
	DisableReshard bool
	// DisableObs turns telemetry off (the -metrics=false kill switch):
	// GET /metrics and GET /v1/events answer 404, no events are journaled,
	// and the scheduling paths skip every telemetry-only wall-clock read.
	// GET /healthz and the /v1/stats percentiles keep working.
	DisableObs bool
	// EventSink, when non-nil, additionally receives every journaled event
	// as one NDJSON line (the -events-log file). A write error is latched
	// and stops further sink writes, never the scheduling paths.
	EventSink io.Writer
	// EventBufferSize overrides the event journal's ring capacity
	// (obs.DefJournalCapacity when zero).
	EventBufferSize int
	// WALDir, when non-empty, turns on durable crash recovery (the -wal-dir
	// flag): every submission, admission batch, migration, topology change,
	// and compaction horizon is appended to a write-ahead log in this
	// directory, with periodic fleet snapshots truncating the log behind
	// them. On startup, existing durable state in the directory is
	// authoritative: the newest valid snapshot is loaded and the WAL suffix
	// replayed through the normal admission paths, and Machines is then only
	// used for a fresh start. The first WAL failure latches: durability
	// freezes (the on-disk state stays a consistent prefix) while the daemon
	// keeps scheduling, and /healthz reports "degraded".
	WALDir string
	// Fsync syncs the WAL after every append (the -fsync flag). Off,
	// durability of the tail is bounded by the OS page cache; a clean Close
	// still flushes everything.
	Fsync bool
	// SnapshotEvery is the snapshot cadence in WAL appends (default 1024).
	SnapshotEvery int
	// RestartStalled wires the in-place restart supervisor (the
	// -restart-stalled flag): a shard whose loop latched an error or
	// panicked is rebuilt from its intact engine state — fresh policy, fresh
	// engine, exact state restored — up to a per-shard restart cap.
	RestartStalled bool
	// Transport selects how the router talks to its shards:
	// shardlink.TransportInproc (or empty) calls straight into the shard
	// under its mutex — bit-for-bit the pre-link behavior — while
	// shardlink.TransportRPC keeps every shard colocated and local (real
	// engines, so trace-exact tests still apply) but routes all router
	// traffic through a loopback net/rpc connection, serializing every
	// message with gob exactly as a worker socket would. Shards listed in
	// Workers use RPC regardless of this setting.
	Transport string
	// Workers maps startup-partition positions to worker addresses
	// (divflowd -worker listeners): shard pos of the initial topology is
	// provisioned inside that process and driven entirely over net/rpc.
	// Incompatible with WALDir (two-phase migrations are not write-ahead
	// logged, so a replay would diverge) and with live re-sharding.
	Workers map[int]string
	// Admission selects the deadline-admission mode every shard runs
	// (the -admission flag): shardlink.AdmissionStrict (the default, "" too)
	// rejects infeasible deadlines with the exact certificate and counter-
	// offer, AdmissionAdvisory admits them but still reports the certificate,
	// AdmissionOff skips the feasibility LP entirely. Deadline-free
	// submissions never run the check in any mode.
	Admission string
	// Tenants, when non-nil, arms weighted-fairness admission control (the
	// -tenants flag): a non-premium submission whose tenant backlog would
	// exceed its weight share of the active-tenant fleet backlog is shed
	// with a tenant_over_quota reject before reaching any shard. Nil admits
	// every tenant unconditionally; per-tenant accounting is kept either way.
	Tenants *model.TenantConfig
}

// Admission mode names for Config.Admission, re-exported so callers (the
// divflowd -admission flag) need not import the transport package.
const (
	AdmissionStrict   = shardlink.AdmissionStrict
	AdmissionAdvisory = shardlink.AdmissionAdvisory
	AdmissionOff      = shardlink.AdmissionOff
)

// generation is one epoch of the shard topology: the shards active between
// two reshards, together with the global-ID encoding they issued under.
// A global ID id born in this generation satisfies id >= base and decodes as
// shards[(id-base)%stride] with local ID (id-base)/stride; bases strictly
// increase across generations, so the issuing generation of any ID is the
// newest one whose base does not exceed it. Shards kept across a reshard
// appear in every generation they served in.
type generation struct {
	base   int
	stride int
	shards []*shard
}

// Server is one divflowd instance: a router over independent scheduling
// shards. Create with New, start the shard loops with Start, serve Handler
// over HTTP, stop with Close. The shard topology is dynamic: Reshard (the
// POST /v1/platform admin API) recomputes the databank-connectivity
// partition against an updated platform at runtime, migrating live work onto
// the new shards while every read keeps resolving exactly.
type Server struct {
	policyName   string
	policyCfg    string // Config.Policy verbatim, for spawning reshard shards
	shardsCfg    int    // Config.Shards verbatim: the standing partition override
	clock        Clock
	retention    *big.Rat
	disableSteal bool
	noReshard    bool
	dropForward  func(gid int)
	tel          *telemetry
	admission    string              // normalized Config.Admission
	tenants      *model.TenantConfig // nil: no quota enforcement

	// shedMu guards shed, the per-tenant tenant_over_quota reject counts.
	// Shed submissions never reach a shard, so the router is the only place
	// they can be counted; GET /v1/tenants merges them into the rows.
	//divflow:locks name=shed
	shedMu sync.Mutex
	shed   map[string]int

	// dur is the durability layer (nil without Config.WALDir); restoredNow
	// the virtual time startup restored the fleet at (nil on a fresh start).
	dur            *durability
	restoredNow    *big.Rat
	restartStalled bool

	// transport is the normalized Config.Transport; rpcSrv/rpcClient are the
	// loopback pair every colocated rpc-transport shard is served over (one
	// net.Pipe, one multiplexing client — nil under the in-process
	// transport). rpcConns collects every connection Close must release:
	// the loopback pair and one dialed client per worker. workers is
	// Config.Workers verbatim; stealStop stops the worker steal ticker.
	transport string
	rpcSrv    *rpc.Server
	rpcClient *rpc.Client
	rpcConns  []io.Closer
	workers   map[int]string
	stealStop chan struct{}

	// topoMu guards the shard topology: the generation list and the flat
	// list of every shard ever created. Readers snapshot under RLock; only
	// Reshard (serialized by reshardMu) writes, while holding every active
	// shard's mu — so no lock path ever acquires a shard mu while holding
	// topoMu.
	//divflow:locks name=topo before=fwd
	topoMu   sync.RWMutex
	gens     []*generation
	all      []*shard // every shard ever created, in creation (idx) order
	reshards int      // completed structural reshards (generation count - 1)

	// reshardMu serializes topology changes (Reshard, and Close — which
	// must not race a reshard spawning shards it would miss).
	//divflow:locks name=reshard before=collect
	reshardMu sync.Mutex

	// forward maps the global ID of every migrated job to its current
	// location; IDs never migrated resolve arithmetically through their
	// birth generation. Entries are written under both involved shards' mus
	// (see stealFrom) or under every active shard's mu (Reshard), so a read
	// that misses the table and lands on the donor mid-migration finds the
	// table updated by the time the donor's mu is free.
	//divflow:locks name=fwd before=backlog
	fwdMu   sync.RWMutex
	forward map[int]fwdLoc

	//divflow:locks name=servermu before=shard
	mu      sync.Mutex
	started bool
	closed  bool
}

// fwdLoc is one forwarding-table entry: the shard that currently owns a
// migrated job and the job's local ID there.
type fwdLoc struct {
	sh    *shard
	local int
}

// New builds a server over the fleet, partitioned into scheduling shards.
// The loops are not started yet — submissions queue until Start.
func New(cfg Config) (*Server, error) {
	if len(cfg.Machines) == 0 {
		return nil, errors.New("server: no machines")
	}
	for i := range cfg.Machines {
		if cfg.Machines[i].InverseSpeed == nil || cfg.Machines[i].InverseSpeed.Sign() <= 0 {
			return nil, fmt.Errorf("server: machine %d (%s) needs InverseSpeed > 0", i, cfg.Machines[i].Name)
		}
	}
	// Validate the policy name once up front; every shard then gets its own
	// fresh instance (policies carry per-run state: plan caches, warm-start
	// basis chains).
	pol, err := NewPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	groups, err := partitionFleet(cfg.Machines, cfg.Shards)
	if err != nil {
		return nil, err
	}
	transport := cfg.Transport
	switch transport {
	case "", shardlink.TransportInproc:
		transport = shardlink.TransportInproc
	case shardlink.TransportRPC:
	default:
		return nil, fmt.Errorf("server: unknown transport %q (want %q or %q)",
			cfg.Transport, shardlink.TransportInproc, shardlink.TransportRPC)
	}
	if cfg.WALDir != "" && (transport == shardlink.TransportRPC || len(cfg.Workers) > 0) {
		// Two-phase migrations deliberately bypass the WAL (reserve/commit
		// spans processes; logging either side alone would replay into a state
		// neither process was ever in), so durability and the rpc transport
		// exclude each other rather than silently diverge on restore.
		return nil, errors.New("server: WALDir is incompatible with the rpc transport and worker shards")
	}
	for pos := range cfg.Workers {
		if pos < 0 || pos >= len(groups) {
			return nil, fmt.Errorf("server: worker position %d out of range (the fleet partitions into %d shards)",
				pos, len(groups))
		}
	}
	admission := cfg.Admission
	switch admission {
	case "", shardlink.AdmissionStrict:
		admission = shardlink.AdmissionStrict
	case shardlink.AdmissionAdvisory, shardlink.AdmissionOff:
	default:
		return nil, fmt.Errorf("server: unknown admission mode %q (want %q, %q or %q)",
			cfg.Admission, shardlink.AdmissionStrict, shardlink.AdmissionAdvisory, shardlink.AdmissionOff)
	}
	s := &Server{
		policyName:     pol.Name(),
		policyCfg:      cfg.Policy,
		shardsCfg:      cfg.Shards,
		disableSteal:   cfg.DisableSteal,
		noReshard:      cfg.DisableReshard,
		restartStalled: cfg.RestartStalled,
		forward:        make(map[int]fwdLoc),
		tel:            newTelemetry(!cfg.DisableObs, cfg.EventSink, cfg.EventBufferSize),
		transport:      transport,
		workers:        cfg.Workers,
		stealStop:      make(chan struct{}),
		admission:      admission,
		tenants:        cfg.Tenants,
		shed:           make(map[string]int),
	}
	if transport == shardlink.TransportRPC {
		// One loopback pipe serves every colocated shard: wireShard registers
		// each as a named service on rpcSrv, and every link shares rpcClient
		// (net/rpc multiplexes concurrent calls over one connection). The
		// pipe is synchronous and in-memory — the full gob round-trip with
		// none of the kernel.
		s.rpcSrv = rpc.NewServer()
		cliConn, srvConn := net.Pipe()
		go s.rpcSrv.ServeConn(srvConn)
		s.rpcClient = rpc.NewClient(cliConn)
		s.rpcConns = append(s.rpcConns, s.rpcClient)
	}
	if cfg.Retention != nil && cfg.Retention.Sign() > 0 {
		s.retention = new(big.Rat).Set(cfg.Retention)
	}
	s.dropForward = func(gid int) {
		s.fwdMu.Lock()
		delete(s.forward, gid)
		s.fwdMu.Unlock()
	}
	// Open durable state before the clock exists: a restore resumes the real
	// clock at the restored virtual time, so the fleet's time never jumps
	// backwards across a restart.
	var st *restoreState
	if cfg.WALDir != "" {
		if st, err = openWAL(cfg.WALDir, cfg.Fsync); err != nil {
			return nil, err
		}
	}
	clock := cfg.Clock
	if clock == nil {
		if st != nil && st.hasState() {
			clock = NewRealClockAt(st.now)
		} else {
			clock = NewRealClock()
		}
	}
	s.clock = clock
	if st != nil {
		snapEvery := cfg.SnapshotEvery
		if snapEvery <= 0 {
			snapEvery = defaultSnapshotEvery
		}
		s.dur = &durability{
			tel:       s.tel,
			dir:       cfg.WALDir,
			snapEvery: snapEvery,
			log:       st.log,
			snapReq:   make(chan struct{}, 1),
			stop:      make(chan struct{}),
		}
	}
	if st == nil || st.doc == nil {
		// Fresh topology from the configured fleet. (With durable state but no
		// snapshot yet, the WAL suffix below replays onto this topology — the
		// same one the original run built, since the log began under it.)
		fleet := append([]model.Machine(nil), cfg.Machines...)
		stride := len(groups)
		var shards []*shard
		for idx, group := range groups {
			machines := make([]model.Machine, len(group))
			for k, gi := range group {
				machines[k] = fleet[gi]
			}
			shardPol := pol
			if idx > 0 {
				if shardPol, err = NewPolicy(cfg.Policy); err != nil {
					return nil, err
				}
			}
			sh := newShard(idx, idx, stride, 0, clock, machines, group, shardPol, s.retention, s.admission)
			if addr, ok := cfg.Workers[idx]; ok {
				// Worker-hosted shard: the real engine lives in the worker
				// process; this struct stays behind as the router-side handle
				// (identity, topology, backlog bookkeeping) with its loop
				// never started.
				if err := s.dialWorker(sh, addr, cfg.Policy); err != nil {
					for _, c := range s.rpcConns {
						c.Close()
					}
					return nil, err
				}
			}
			shards = append(shards, s.wireShard(sh))
		}
		s.gens = []*generation{{base: 0, stride: stride, shards: shards}}
		s.all = shards
	}
	if st != nil && st.hasState() {
		if err := s.restore(st); err != nil {
			st.log.Close()
			return nil, err
		}
		s.restoredNow = new(big.Rat).Set(st.now)
		s.tel.event(obs.EventRestore, len(s.gens)-1, -1, fmt.Sprintf(
			"%d records replayed at virtual time %s", len(st.suffix), st.now.RatString()))
		if s.tel.enabled {
			s.tel.recoverySecs.Observe(s.tel.sinceSeconds(st.started))
		}
	}
	if s.dur != nil {
		go s.snapshotLoop()
	}
	// Scrape-time metric collection reads the same per-shard snapshots
	// /v1/stats merges; registered once the topology exists.
	s.tel.reg.OnCollect(s.collectMetrics)
	return s, nil
}

// wireShard installs the server-side hooks on a freshly built shard. The
// steal hook is wired even on a momentarily-singleton topology: a later
// reshard may grow the active set, and stealFor is a cheap no-op until it
// does. dropForward is wired unconditionally — reshard migrations write
// forwarding entries even with stealing disabled, and retention compaction
// must be able to release them either way. Hooks are set before the shard's
// loop starts and never change.
func (s *Server) wireShard(sh *shard) *shard {
	if !s.disableSteal {
		sh.steal = func() bool { return s.stealFor(sh) }
	}
	if s.restartStalled {
		sh.restart = func() bool { return s.restartShard(sh) }
	}
	sh.wal = s.dur
	sh.dropForward = s.dropForward
	sh.obs = s.tel.newShardObs(sh)
	if sh.mwf != nil {
		sh.mwf.Observer = sh.obs
	}
	// Install the router's transport handle. Worker-hosted shards arrive
	// with their link already dialed; colocated shards get the loopback rpc
	// link (registered as a per-shard named service — creation indices never
	// repeat, reshard-spawned shards included) or the direct in-process one.
	if sh.link == nil {
		if s.transport == shardlink.TransportRPC {
			svc := fmt.Sprintf("Shard%d", sh.idx)
			if err := s.rpcSrv.RegisterName(svc, &shardRPC{sh: sh}); err != nil {
				// Unreachable (shardRPC's method set is fixed and names are
				// unique); degrade to the in-process link rather than ship a
				// shard the router cannot reach.
				sh.link = newLocalLink(s.tel, sh)
			} else {
				sh.link = newRPCLink(s.tel, s.rpcClient, svc)
			}
		} else {
			sh.link = newLocalLink(s.tel, sh)
		}
	}
	return sh
}

// active returns the current generation's shard list. The slice is immutable
// once published, so it stays valid after the lock is released; a racing
// reshard is caught by the errRetired re-route in Submit.
func (s *Server) active() []*shard {
	s.topoMu.RLock()
	defer s.topoMu.RUnlock()
	return s.gens[len(s.gens)-1].shards
}

// allShards returns every shard ever created, retired ones included —
// the set reads merge (historical traces and records live on retired
// shards). The slice is copied; the shard pointers are stable.
func (s *Server) allShards() []*shard {
	s.topoMu.RLock()
	defer s.topoMu.RUnlock()
	return append([]*shard(nil), s.all...)
}

// partitionFleet splits the fleet into shard groups of global machine
// indices. n > 0 deals machines round-robin into n groups; n == 0 groups by
// databank-connectivity components (union-find over "shares a databank"),
// ordered by smallest member index. Every group preserves fleet order.
//
// The round-robin override is validated: a databank whose hosts land in
// several shards with only *partial* coverage of one of them is a
// configuration error, because a job restricted to it would be pinned to a
// shard where some machines cannot serve it while full hosts idle in other
// shards — silently squandering both the divisible-load flexibility and the
// work-stealing escape hatch. Databanks hosted by every machine of each
// shard they touch (the uniform-fleet shape round-robin sharding exists
// for) stay legal: a restricted job can then use the whole of whichever
// shard it routes to, and any shard can steal it.
func partitionFleet(machines []model.Machine, n int) ([][]int, error) {
	if n < 0 {
		return nil, fmt.Errorf("server: shards = %d, want >= 0", n)
	}
	if n > len(machines) {
		return nil, fmt.Errorf("server: %d shards over %d machines (at most one shard per machine)", n, len(machines))
	}
	if n > 0 {
		groups := make([][]int, n)
		for i := range machines {
			groups[i%n] = append(groups[i%n], i)
		}
		if err := checkNoDatabankSplit(machines, n); err != nil {
			return nil, err
		}
		return groups, nil
	}
	// Union-find over machines; two machines join when they share a databank.
	// Machines hosting no databanks at all can only serve unrestricted jobs
	// (which may run anywhere), so they pool into one shared group instead of
	// shattering into singleton shards: a fully databank-less fleet stays a
	// single loop, exactly the pre-shard behavior.
	parent := make([]int, len(machines))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	byBank := make(map[string]int)
	bare := -1
	for i := range machines {
		if len(machines[i].Databanks) == 0 {
			if bare >= 0 {
				union(i, bare)
			} else {
				bare = i
			}
			continue
		}
		for _, d := range machines[i].Databanks {
			if first, ok := byBank[d]; ok {
				union(i, first)
			} else {
				byBank[d] = i
			}
		}
	}
	// Components in order of their smallest member, members in fleet order.
	index := make(map[int]int)
	var groups [][]int
	for i := range machines {
		root := find(i)
		g, ok := index[root]
		if !ok {
			g = len(groups)
			index[root] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], i)
	}
	return groups, nil
}

// checkNoDatabankSplit rejects a round-robin sharding (machine i → shard
// i%n) that scatters a databank's hosts over several shards while leaving
// some touched shard only partially able to serve it.
func checkNoDatabankSplit(machines []model.Machine, n int) error {
	type spread struct {
		shards map[int]bool // shards holding at least one host
		hosts  map[int]bool // machines hosting the databank
	}
	banks := make(map[string]*spread)
	order := []string{} // deterministic error choice: first databank seen
	for i := range machines {
		for _, d := range machines[i].Databanks {
			sp := banks[d]
			if sp == nil {
				sp = &spread{shards: make(map[int]bool), hosts: make(map[int]bool)}
				banks[d] = sp
				order = append(order, d)
			}
			sp.shards[i%n] = true
			sp.hosts[i] = true
		}
	}
	for _, d := range order {
		sp := banks[d]
		if len(sp.shards) < 2 {
			continue // all hosts in one shard: restricted jobs keep every host
		}
		for i := range machines {
			if sp.shards[i%n] && !sp.hosts[i] {
				return fmt.Errorf(
					"server: %d shards split databank %q across shards with partial coverage (machine %d (%s) in a shard serving it cannot host it); use the databank-connectivity partition (shards=0) or regroup the fleet",
					n, d, i, machines[i].Name)
			}
		}
	}
	return nil
}

// ShardCount returns the number of active scheduling shards the fleet is
// currently partitioned into.
func (s *Server) ShardCount() int { return len(s.active()) }

// Generation returns the current topology generation (0 until the first
// structural reshard).
func (s *Server) Generation() int {
	s.topoMu.RLock()
	defer s.topoMu.RUnlock()
	return len(s.gens) - 1
}

// Start launches every shard's scheduling loop. Safe to call once.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started || s.closed {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	for _, sh := range s.allShards() {
		sh.start()
	}
	if len(s.workers) > 0 && !s.disableSteal {
		// A worker-hosted shard has no router-side loop to run the steal
		// hook, so a ticker stands in for it: whenever a remote shard's
		// backlog reads zero, try to steal on its behalf. Local shards keep
		// the event-driven hook — this loop is only for remote thieves.
		go s.workerStealLoop()
	}
}

// workerStealInterval is the polling cadence of the worker steal ticker —
// coarse on purpose: steals only matter when a shard has been idle a while,
// and every tick costs one RouteInfo RPC per remote shard.
const workerStealInterval = 250 * time.Millisecond

// workerStealLoop polls every remote shard's backlog and steals for the idle
// ones, until Close. It runs only in fleets with worker-hosted shards.
func (s *Server) workerStealLoop() {
	t := time.NewTicker(workerStealInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stealStop:
			return
		case <-t.C:
		}
		for _, sh := range s.active() {
			if !sh.remote {
				continue
			}
			ri, err := sh.link.RouteInfo(shardlink.RouteInfoArgs{})
			if err != nil || ri.Err != "" || ri.Backlog.Sign() != 0 {
				continue
			}
			s.stealFor(sh)
		}
	}
}

// Close stops accepting submissions and terminates the shard loops. It
// serializes against Reshard so a topology change can never spawn a loop the
// shutdown misses.
func (s *Server) Close() {
	s.reshardMu.Lock()
	defer s.reshardMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stealStop)
	for _, sh := range s.allShards() {
		sh.close()
	}
	// Release the transport connections after the loops are down: the
	// loopback pipe pair and any dialed worker clients. In-flight calls on a
	// closing client fail with rpc.ErrShutdown, which every link caller
	// treats as a transport failure and skips.
	for _, c := range s.rpcConns {
		c.Close()
	}
	if s.dur != nil {
		// Stop the cadence goroutine first (it cannot be inside a snapshot:
		// that needs reshardMu, which we hold), then write the final snapshot —
		// the loops are drained, so a clean shutdown restores with zero replay.
		// snapshotLocked refuses to run once durability latched, keeping the
		// on-disk state a consistent prefix.
		s.dur.once.Do(func() { close(s.dur.stop) })
		s.snapshotLocked()
		s.dur.mu.Lock()
		if s.dur.log != nil {
			s.dur.log.Close()
		}
		s.dur.mu.Unlock()
	}
}

// Submit accepts one job, routing it to the eligible *healthy* shard with
// the least exact residual work (ties to the lowest shard index) and
// stamping its flow origin (release) there. Shards whose loop has latched an
// error are skipped — a poisoned loop would queue the job forever — unless
// no healthy shard hosts the databanks, in which case the least-loaded
// stalled shard takes it and the response carries that shard's error as a
// warning. The shard's loop admits the job at its next wake-up, so
// submissions racing one re-solve share it. A submission that loses the race
// against a concurrent reshard (the chosen shard retired between the
// topology snapshot and the enqueue) transparently re-routes against the new
// topology.
func (s *Server) Submit(req *model.SubmitRequest) (model.SubmitResponse, error) {
	job, err := req.Job()
	if err != nil {
		s.tel.rejections.Inc()
		s.tel.event(obs.EventReject, s.Generation(), -1, err.Error())
		return model.SubmitResponse{}, err
	}
	// Each attempt that fails with errRetired raced one completed reshard;
	// the retry bound only guards against a pathological reshard storm.
	for attempt := 0; attempt < 8; attempt++ {
		resp, err := s.submitRouted(job)
		if errors.Is(err, errRetired) {
			continue
		}
		return resp, err
	}
	return model.SubmitResponse{}, &shardStalledError{
		shard: -1, err: errors.New("server: submission kept racing re-sharding; retry")}
}

// submitRouted is one routing attempt of Submit against a snapshot of the
// active topology.
func (s *Server) submitRouted(job model.Job) (model.SubmitResponse, error) {
	shards := s.active()
	// The weighted-fairness quota reads every shard's per-tenant backlog off
	// the same RouteInfo replies routing consumes anyway; only shards that
	// cannot host the job cost an extra call, and only while quota is armed.
	quota := s.tenants != nil && job.Tenant != "" && job.SLAClass != model.SLAPremium
	var tenantBack map[string]*big.Rat
	addBacklogs := func(m map[string]*big.Rat) {
		for t, b := range m {
			if b == nil || b.Sign() == 0 {
				continue
			}
			if cur, ok := tenantBack[t]; ok {
				cur.Add(cur, b)
			} else {
				tenantBack[t] = new(big.Rat).Set(b)
			}
		}
	}
	if quota {
		tenantBack = make(map[string]*big.Rat)
	}
	var best, bestStalled *shard
	var bestWork, bestStalledWork *big.Rat
	var stalledErr string
	var idle []*shard     // zero-backlog shards seen during routing
	var nonHosts []*shard // shards that cannot host this job
	for _, sh := range shards {
		if !sh.hosts(job.Databanks) {
			nonHosts = append(nonHosts, sh)
			if quota {
				if ri, lerr := sh.link.RouteInfo(shardlink.RouteInfoArgs{}); lerr == nil {
					addBacklogs(ri.TenantBacklog)
				}
			}
			continue
		}
		ri, lerr := sh.link.RouteInfo(shardlink.RouteInfoArgs{})
		if lerr != nil {
			continue // transport failure: route around the unreachable shard
		}
		if quota {
			addBacklogs(ri.TenantBacklog)
		}
		work, routeErr := ri.Backlog, ri.Err
		if routeErr != "" {
			if bestStalled == nil || work.Cmp(bestStalledWork) < 0 {
				bestStalled, bestStalledWork, stalledErr = sh, work, routeErr
			}
			continue
		}
		if work.Sign() == 0 {
			idle = append(idle, sh)
		}
		if best == nil || work.Cmp(bestWork) < 0 {
			best, bestWork = sh, work
		}
	}
	if quota {
		if err := s.tenantOverQuota(job, tenantBack); err != nil {
			s.shedMu.Lock()
			s.shed[job.Tenant]++
			s.shedMu.Unlock()
			s.tel.tenantShed.With(job.Tenant).Inc()
			s.tel.rejections.Inc()
			s.tel.event(obs.EventReject, s.Generation(), -1, err.Error())
			return model.SubmitResponse{}, err
		}
	}
	resp := model.SubmitResponse{State: StateQueued}
	if best == nil {
		if bestStalled == nil {
			s.tel.rejections.Inc()
			s.tel.event(obs.EventReject, s.Generation(), -1,
				fmt.Sprintf("no machine hosts databanks %v", job.Databanks))
			return resp, fmt.Errorf("server: no machine hosts databanks %v", job.Databanks)
		}
		best = bestStalled
		resp.Warning = fmt.Sprintf("routed to stalled shard %d (no healthy shard hosts the databanks): %s", best.idx, stalledErr)
	}
	rep, lerr := best.link.Submit(shardlink.SubmitArgs{Job: job})
	if lerr != nil {
		return model.SubmitResponse{}, &shardStalledError{shard: best.idx, err: lerr}
	}
	gid, err := submitErr(rep)
	if err != nil {
		if errors.Is(err, errDeadline) {
			// The strict reject carries the exact certificate (with the
			// counter-offer deadline, when one exists) back to the client.
			s.tel.rejections.Inc()
			return model.SubmitResponse{Admission: rep.Admission}, err
		}
		return model.SubmitResponse{}, err
	}
	resp.ID = gid
	resp.Admission = rep.Admission
	// New work on one shard is a steal opportunity for every idle one: poke
	// every zero-backlog shard so its loop re-runs the steal check instead
	// of sleeping until the next direct submission. Shards that cannot host
	// *this* job are poked too — the submission can still push the chosen
	// shard past the donor-keeps-one threshold and make its *other* jobs
	// stealable by them. (Idleness was read before best.submit, but a poke
	// is just a wake-up — a shard that meanwhile found work ignores it.)
	if !s.disableSteal && len(shards) > 1 {
		for _, sh := range idle {
			if sh != best {
				_ = sh.link.Poke(shardlink.PokeArgs{})
			}
		}
		for _, sh := range nonHosts {
			if ri, lerr := sh.link.RouteInfo(shardlink.RouteInfoArgs{}); lerr == nil && ri.Backlog.Sign() == 0 {
				_ = sh.link.Poke(shardlink.PokeArgs{})
			}
		}
	}
	return resp, nil
}

// tenantOverQuota applies the weighted-fairness rule to one submission:
// with backlogs the fleet-wide per-tenant residual work (zero entries
// absent), the active tenants are those with positive backlog plus the
// submitter, and the submission is shed iff admitting it would leave its
// tenant above its weight share of the active-tenant backlog —
// exactly, (B_T + W) · Σ_active w  >  w_T · (B_total + W). A lone active
// tenant owns the whole share and is never shed, so quota only ever bites
// under actual contention.
func (s *Server) tenantOverQuota(job model.Job, backlogs map[string]*big.Rat) error {
	mine := backlogs[job.Tenant]
	if mine == nil {
		mine = new(big.Rat)
	}
	myWeight := s.tenants.Weight(job.Tenant)
	sumW := new(big.Rat).Set(myWeight)
	total := new(big.Rat).Set(mine)
	for t, b := range backlogs {
		if t == job.Tenant || b.Sign() <= 0 {
			continue
		}
		total.Add(total, b)
		sumW.Add(sumW, s.tenants.Weight(t))
	}
	after := new(big.Rat).Add(mine, job.Size)
	totalAfter := new(big.Rat).Add(total, job.Size)
	lhs := new(big.Rat).Mul(after, sumW)
	rhs := new(big.Rat).Mul(myWeight, totalAfter)
	if lhs.Cmp(rhs) > 0 {
		share := new(big.Rat).Quo(myWeight, sumW)
		return fmt.Errorf("%w: tenant %q backlog %s + size %s exceeds share %s of fleet backlog %s",
			errTenantQuota, job.Tenant, mine.RatString(), job.Size.RatString(),
			share.RatString(), totalAfter.RatString())
	}
	return nil
}

// TenantStats merges the per-shard tenant accounting into the GET
// /v1/tenants rows, sorted by tenant name. Retired shards contribute their
// history like every other read; router-side shed counts (quota rejects
// never reach a shard) are folded in last.
func (s *Server) TenantStats() model.TenantsResponse {
	type agg struct {
		submitted, completed, shed int
		backlog, flowSum           *big.Rat
		maxWF                      *big.Rat
		byClass                    map[string]int
		wflow                      obs.HistogramSnapshot
	}
	tenants := make(map[string]*agg)
	at := func(name string) *agg {
		a := tenants[name]
		if a == nil {
			a = &agg{backlog: new(big.Rat), flowSum: new(big.Rat), byClass: make(map[string]int)}
			tenants[name] = a
		}
		return a
	}
	for _, sh := range s.allShards() {
		snap, err := sh.link.Stats(shardlink.StatsArgs{})
		if err != nil {
			continue
		}
		for name, ts := range snap.Tenants {
			a := at(name)
			a.submitted += ts.Submitted
			a.completed += ts.Completed
			// Nil-guard the exact fields: gob drops zero big.Rat struct
			// fields on the rpc transport.
			if ts.Backlog != nil {
				a.backlog.Add(a.backlog, ts.Backlog)
			}
			if ts.FlowSum != nil {
				a.flowSum.Add(a.flowSum, ts.FlowSum)
			}
			if ts.MaxWF != nil && (a.maxWF == nil || ts.MaxWF.Cmp(a.maxWF) > 0) {
				a.maxWF = new(big.Rat).Set(ts.MaxWF)
			}
			for c, n := range ts.ByClass {
				a.byClass[c] += n
			}
			a.wflow.Merge(ts.WFlow)
		}
	}
	s.shedMu.Lock()
	for name, n := range s.shed {
		at(name).shed = n
	}
	s.shedMu.Unlock()
	names := make([]string, 0, len(tenants))
	for name := range tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	resp := model.TenantsResponse{Tenants: make([]model.TenantStats, 0, len(names))}
	for _, name := range names {
		a := tenants[name]
		row := model.TenantStats{
			Tenant:    name,
			Weight:    s.tenants.Weight(name).RatString(),
			Submitted: a.submitted,
			Completed: a.completed,
			Shed:      a.shed,
			Backlog:   a.backlog.RatString(),
		}
		if len(a.byClass) > 0 {
			row.ByClass = a.byClass
		}
		if a.completed > 0 {
			row.MaxWeightedFlow = a.maxWF.RatString()
			mean := new(big.Rat).Quo(a.flowSum, big.NewRat(int64(a.completed), 1))
			row.MeanFlow, _ = mean.Float64()
			// Same buckets, same estimator as /metrics: the two surfaces
			// agree on the per-tenant P95.
			row.P95WeightedFlow = a.wflow.Quantile(95)
		}
		resp.Tenants = append(resp.Tenants, row)
	}
	return resp
}

// locate resolves a global job ID to the shard that currently owns it and
// the job's local ID there: migrated jobs through the forwarding table,
// everything else by the arithmetic encoding of the generation that issued
// the ID — the newest generation whose base does not exceed it (bases
// strictly increase, and each generation only issues IDs at or above its
// base, so the match is unique).
func (s *Server) locate(id int) (*shard, int, bool) {
	if id < 0 {
		return nil, 0, false
	}
	s.fwdMu.RLock()
	loc, ok := s.forward[id]
	s.fwdMu.RUnlock()
	if ok {
		return loc.sh, loc.local, true
	}
	s.topoMu.RLock()
	defer s.topoMu.RUnlock()
	for g := len(s.gens) - 1; g >= 0; g-- {
		gen := s.gens[g]
		if id < gen.base {
			continue
		}
		off := id - gen.base
		return gen.shards[off%gen.stride], off / gen.stride, true
	}
	return nil, 0, false // unreachable: generation 0 has base 0
}

// jobStatus reads one job's wire status by global ID, chasing the forwarding
// table: a read that decoded the birth shard arithmetically while a
// migration was in flight finds a migrated-away record and retries, by which
// time the table (written under the donor's lock) names the new owner.
// Never-issued IDs and compacted records answer not-found; a miss on a nil
// record is only definitive after re-resolving the ID to the same place,
// because a slow read can land on a stale location whose record was both
// migrated away *and* compacted in the meantime — the forwarding table then
// already names the live owner, and answering 404 would vanish a live job.
// (Location pairs are never reused — records only append — so a re-resolve
// that still matches really means the record is gone for good.) Each retry
// can only miss again if the job migrated yet another time in between.
func (s *Server) jobStatus(id int) (model.JobStatus, bool) {
	var prevSh *shard
	prevLocal := -1
	for attempt := 0; attempt < 6; attempt++ {
		sh, local, ok := s.locate(id)
		if !ok {
			return model.JobStatus{}, false
		}
		// The same location twice in a row means nothing moved between the
		// attempts — the miss is permanent. This is the terminal state of a
		// fully compacted migration chain: the dangling donor record keeps
		// answering "migrated away" while the forwarding entry it once had
		// is gone, and without this check every read of the dead ID would
		// burn all its attempts re-chasing it. (A migration in flight always
		// changes the resolved location, because records are never reused.)
		if sh == prevSh && local == prevLocal {
			return model.JobStatus{}, false
		}
		prevSh, prevLocal = sh, local
		rep, lerr := sh.link.JobStatus(shardlink.JobStatusArgs{Local: local, GID: id})
		if lerr != nil {
			return model.JobStatus{}, false
		}
		if rep.Known {
			return rep.Status, true
		}
		if rep.Migrated {
			continue
		}
		if sh2, local2, ok2 := s.locate(id); ok2 && (sh2 != sh || local2 != local) {
			continue // stale location: the job moved while we were reading
		}
		return model.JobStatus{}, false
	}
	return model.JobStatus{}, false
}
