// Package server is the divflowd scheduling service: a long-running,
// concurrent boundary around the exact solvers of this repository. It owns
// a machine fleet loaded at startup, admits divisible-job submissions over
// HTTP, and schedules them online with the same sim.Policy machinery as the
// offline/online simulator — by default the paper's online
// max-weighted-flow adaptation with lazy re-solving, so arrivals landing
// within one wake-up are batched into a single exact solve and every other
// event is served from the cached plan.
//
// The service is sharded: the fleet is partitioned into scheduling shards
// (by databank-connectivity components, or a fixed count for uniform
// fleets), each with its own mutex, goroutine, engine, and policy instance.
// The Server routes every submission to the eligible shard with the least
// exact residual work and merges per-shard state for reads. Each shard's
// loop is single-owner: one goroutine mutates its engine, guarded by a
// mutex that HTTP handlers take only to enqueue submissions or read state.
// Time comes from a pluggable Clock — the wall clock in the daemon, a
// virtual clock in tests, making the whole service deterministically
// testable at high job counts.
package server

import (
	"errors"
	"fmt"
	"math/big"
	"sync"

	"divflow/internal/model"
)

// ErrClosed is returned by Submit once the server is shutting down.
var ErrClosed = errors.New("server: shutting down")

// Job lifecycle states reported by the API.
const (
	StateQueued    = "queued"    // accepted, not yet admitted by the loop
	StateScheduled = "scheduled" // live: the policy is scheduling it
	StateDone      = "done"
)

// Config parameterizes a Server.
type Config struct {
	// Machines is the fleet (every machine needs InverseSpeed > 0).
	Machines []model.Machine
	// Policy is one of Policies(); empty selects DefaultPolicy.
	Policy string
	// Clock defaults to a fresh RealClock. All shards share it.
	Clock Clock
	// Shards, when positive, splits the fleet into that many scheduling
	// shards round-robin (at most one shard per machine). Zero partitions
	// by databank-connectivity components: machines sharing a databank land
	// in the same shard, so a databank-restricted job's eligible machines
	// fall inside one shard; machines hosting no databanks pool into one
	// shared component (a fully databank-less fleet stays a single loop).
	// A job eligible on several shards (uniform fleets, or jobs without
	// databank requirements) is routed to the shard with the least exact
	// residual work and scheduled on that shard's machines only.
	Shards int
	// Retention, when positive, bounds the execution history kept in
	// memory: executed schedule pieces that ended more than Retention ago
	// and the records of jobs completed more than Retention ago are
	// compacted away, with the aggregate flow/stretch statistics they
	// contributed cached so GET /v1/stats keeps reporting all-time values.
	// Compacted jobs vanish from GET /v1/jobs/{id} and their pieces from
	// GET /v1/schedule. Nil (or zero) keeps everything forever — a
	// long-running daemon under sustained traffic should set it.
	Retention *big.Rat
}

// Server is one divflowd instance: a router over independent scheduling
// shards. Create with New, start the shard loops with Start, serve Handler
// over HTTP, stop with Close.
type Server struct {
	policyName string
	shards     []*shard

	mu      sync.Mutex
	started bool
	closed  bool
}

// New builds a server over the fleet, partitioned into scheduling shards.
// The loops are not started yet — submissions queue until Start.
func New(cfg Config) (*Server, error) {
	if len(cfg.Machines) == 0 {
		return nil, errors.New("server: no machines")
	}
	for i := range cfg.Machines {
		if cfg.Machines[i].InverseSpeed == nil || cfg.Machines[i].InverseSpeed.Sign() <= 0 {
			return nil, fmt.Errorf("server: machine %d (%s) needs InverseSpeed > 0", i, cfg.Machines[i].Name)
		}
	}
	// Validate the policy name once up front; every shard then gets its own
	// fresh instance (policies carry per-run state: plan caches, warm-start
	// basis chains).
	pol, err := NewPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	clock := cfg.Clock
	if clock == nil {
		clock = NewRealClock()
	}
	groups, err := partitionFleet(cfg.Machines, cfg.Shards)
	if err != nil {
		return nil, err
	}
	s := &Server{policyName: pol.Name()}
	fleet := append([]model.Machine(nil), cfg.Machines...)
	stride := len(groups)
	for idx, group := range groups {
		machines := make([]model.Machine, len(group))
		for k, gi := range group {
			machines[k] = fleet[gi]
		}
		shardPol := pol
		if idx > 0 {
			if shardPol, err = NewPolicy(cfg.Policy); err != nil {
				return nil, err
			}
		}
		s.shards = append(s.shards, newShard(idx, stride, clock, machines, group, shardPol, cfg.Retention))
	}
	return s, nil
}

// partitionFleet splits the fleet into shard groups of global machine
// indices. n > 0 deals machines round-robin into n groups; n == 0 groups by
// databank-connectivity components (union-find over "shares a databank"),
// ordered by smallest member index. Every group preserves fleet order.
func partitionFleet(machines []model.Machine, n int) ([][]int, error) {
	if n < 0 {
		return nil, fmt.Errorf("server: shards = %d, want >= 0", n)
	}
	if n > len(machines) {
		return nil, fmt.Errorf("server: %d shards over %d machines (at most one shard per machine)", n, len(machines))
	}
	if n > 0 {
		groups := make([][]int, n)
		for i := range machines {
			groups[i%n] = append(groups[i%n], i)
		}
		return groups, nil
	}
	// Union-find over machines; two machines join when they share a databank.
	// Machines hosting no databanks at all can only serve unrestricted jobs
	// (which may run anywhere), so they pool into one shared group instead of
	// shattering into singleton shards: a fully databank-less fleet stays a
	// single loop, exactly the pre-shard behavior.
	parent := make([]int, len(machines))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	byBank := make(map[string]int)
	bare := -1
	for i := range machines {
		if len(machines[i].Databanks) == 0 {
			if bare >= 0 {
				union(i, bare)
			} else {
				bare = i
			}
			continue
		}
		for _, d := range machines[i].Databanks {
			if first, ok := byBank[d]; ok {
				union(i, first)
			} else {
				byBank[d] = i
			}
		}
	}
	// Components in order of their smallest member, members in fleet order.
	index := make(map[int]int)
	var groups [][]int
	for i := range machines {
		root := find(i)
		g, ok := index[root]
		if !ok {
			g = len(groups)
			index[root] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], i)
	}
	return groups, nil
}

// ShardCount returns the number of scheduling shards the fleet is
// partitioned into.
func (s *Server) ShardCount() int { return len(s.shards) }

// Start launches every shard's scheduling loop. Safe to call once.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started || s.closed {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	for _, sh := range s.shards {
		sh.start()
	}
}

// Close stops accepting submissions and terminates the shard loops.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	for _, sh := range s.shards {
		sh.close()
	}
}

// Submit accepts one job, routing it to the eligible shard with the least
// exact residual work (ties to the lowest shard index) and stamping its flow
// origin (release) there. It returns the assigned global ID; the shard's
// loop admits the job at its next wake-up, so submissions racing one
// re-solve share it.
func (s *Server) Submit(req *model.SubmitRequest) (int, error) {
	job, err := req.Job()
	if err != nil {
		return 0, err
	}
	var best *shard
	var bestWork *big.Rat
	for _, sh := range s.shards {
		if !sh.hosts(job.Databanks) {
			continue
		}
		work := sh.residualWork()
		if best == nil || work.Cmp(bestWork) < 0 {
			best, bestWork = sh, work
		}
	}
	if best == nil {
		return 0, fmt.Errorf("server: no machine hosts databanks %v", job.Databanks)
	}
	local, err := best.submit(job)
	if err != nil {
		return 0, err
	}
	return best.globalID(local), nil
}

// locate decodes a global job ID into its shard and local ID.
func (s *Server) locate(id int) (*shard, int, bool) {
	if id < 0 {
		return nil, 0, false
	}
	p := len(s.shards)
	return s.shards[id%p], id / p, true
}
