package server

import (
	"math/big"
	"strings"
	"testing"
	"time"

	"divflow/internal/model"
)

// testFleet is two heterogeneous machines sharing one databank; the second
// also hosts a rare one.
func testFleet() []model.Machine {
	return []model.Machine{
		{Name: "fast", InverseSpeed: rat(1, 2), Databanks: []string{"swissprot"}},
		{Name: "slow", InverseSpeed: rat(1, 1), Databanks: []string{"swissprot", "pdb"}},
	}
}

// drive advances the virtual clock event by event until pred holds (or the
// deadline passes). It tolerates the scheduling loop having not yet armed
// its next timer by polling.
func drive(t *testing.T, vc *VirtualClock, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatal("drive: condition not reached in 30s")
		}
		if !vc.AdvanceToNextTimer() {
			time.Sleep(100 * time.Microsecond)
		}
	}
}

func TestPolicies(t *testing.T) {
	names := Policies()
	if len(names) == 0 {
		t.Fatal("no policies")
	}
	for _, name := range names {
		p, err := NewPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() == "" {
			t.Errorf("%s: empty policy name", name)
		}
	}
	if _, err := NewPolicy("nope"); err == nil {
		t.Error("unknown policy must error")
	}
	p, err := NewPolicy("")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != DefaultPolicy {
		t.Errorf("default policy = %s, want %s", p.Name(), DefaultPolicy)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty fleet must error")
	}
	if _, err := New(Config{Machines: []model.Machine{{Name: "m"}}}); err == nil {
		t.Error("machine without InverseSpeed must error")
	}
	if _, err := New(Config{Machines: testFleet(), Policy: "nope"}); err == nil {
		t.Error("unknown policy must error")
	}
}

func TestSubmitValidation(t *testing.T) {
	s, err := New(Config{Machines: testFleet(), Clock: NewVirtualClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cases := []struct {
		req  model.SubmitRequest
		want string
	}{
		{model.SubmitRequest{}, "size"},
		{model.SubmitRequest{Size: "0"}, "size"},
		{model.SubmitRequest{Size: "bogus"}, "size"},
		{model.SubmitRequest{Size: "4", Weight: "-1"}, "weight"},
		{model.SubmitRequest{Size: "4", Databanks: []string{"missing"}}, "databanks"},
	}
	for _, c := range cases {
		if _, err := s.Submit(&c.req); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Submit(%+v) = %v, want error mentioning %q", c.req, err, c.want)
		}
	}
}

func TestSingleJobLifecycle(t *testing.T) {
	vc := NewVirtualClock()
	s, err := New(Config{Machines: testFleet(), Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := s.Submit(&model.SubmitRequest{Name: "blast", Size: "4", Databanks: []string{"swissprot"}})
	if err != nil {
		t.Fatal(err)
	}
	id := resp.ID
	s.Start()
	drive(t, vc, func() bool { return s.Stats().JobsCompleted == 1 })

	st, known, _ := s.active()[0].jobStatus(id, id)
	if !known {
		t.Fatal("job unknown after completion")
	}
	if st.State != StateDone {
		t.Fatalf("state = %s, want done", st.State)
	}
	// Both machines share the divisible job: 4 units at rate 2+1=3 from
	// t=0, so the flow is exactly 4/3.
	if st.Flow != "4/3" {
		t.Errorf("flow = %s, want 4/3 (perfect split)", st.Flow)
	}
	if st.Stretch != "1/3" {
		t.Errorf("stretch = %s, want 1/3", st.Stretch)
	}
	stats := s.Stats()
	if stats.LPSolves != 1 {
		t.Errorf("lpSolves = %d, want exactly 1", stats.LPSolves)
	}
	if stats.MaxWeightedFlow != "4/3" {
		t.Errorf("maxWeightedFlow = %s, want 4/3", stats.MaxWeightedFlow)
	}
	if stats.Stalled {
		t.Error("server reports stalled")
	}
}

func TestDatabankRoutingUnderService(t *testing.T) {
	// A pdb-bound job may only run on the slow machine; the executed trace
	// must respect that even while a swissprot job competes.
	vc := NewVirtualClock()
	s, err := New(Config{Machines: testFleet(), Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	boundResp, err := s.Submit(&model.SubmitRequest{Size: "2", Databanks: []string{"pdb"}})
	if err != nil {
		t.Fatal(err)
	}
	bound := boundResp.ID
	if _, err := s.Submit(&model.SubmitRequest{Size: "6", Databanks: []string{"swissprot"}}); err != nil {
		t.Fatal(err)
	}
	s.Start()
	drive(t, vc, func() bool { return s.Stats().JobsCompleted == 2 })
	sh := s.active()[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, p := range sh.eng.Schedule().Pieces {
		if p.Job == bound && p.Machine == 0 {
			t.Fatal("pdb job ran on the machine without the databank")
		}
	}
}

func TestSubmitAfterClose(t *testing.T) {
	s, err := New(Config{Machines: testFleet(), Clock: NewVirtualClock()})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	s.Close()
	if _, err := s.Submit(&model.SubmitRequest{Size: "1"}); err == nil {
		t.Error("submit after close must error")
	}
	s.Close() // idempotent
}

func TestScheduleWindowing(t *testing.T) {
	vc := NewVirtualClock()
	s, err := New(Config{Machines: testFleet(), Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Submit(&model.SubmitRequest{Size: "3", Databanks: []string{"swissprot"}}); err != nil {
		t.Fatal(err)
	}
	s.Start()
	drive(t, vc, func() bool { return s.Stats().JobsCompleted == 1 })
	sh := s.active()[0]
	sh.mu.Lock()
	full := len(sh.eng.Schedule().Pieces)
	afterEnd := len(sh.eng.Schedule().Since(big.NewRat(100, 1)).Pieces)
	fromStart := len(sh.eng.Schedule().Since(new(big.Rat)).Pieces)
	sh.mu.Unlock()
	if full == 0 || fromStart != full || afterEnd != 0 {
		t.Errorf("windowing: full=%d fromStart=%d afterEnd=%d", full, fromStart, afterEnd)
	}
}
