package server

import (
	"fmt"
	"math/big"
	"runtime/debug"
	"sync"
	"time"

	"divflow/internal/core"
	"divflow/internal/faults"
	"divflow/internal/model"
	"divflow/internal/obs"
	"divflow/internal/schedule"
	"divflow/internal/shardlink"
	"divflow/internal/sim"
	"divflow/internal/stats"
)

// jobRecord is the shard-side state of one submitted job. IDs are shard-local
// (dense indices into shard.records); the wire-visible global ID gid encodes
// the *birth* shard and survives migration — a job stolen by another shard
// keeps its global ID, with the server's forwarding table pointing reads at
// the shard that now owns it.
type jobRecord struct {
	id        int // shard-local ID
	gid       int // wire-visible global ID (birth-shard encoding)
	name      string
	weight    *big.Rat
	size      *big.Rat
	databanks []string
	state     string
	release   *big.Rat // submission time: the job's flow origin
	completed *big.Rat // completion time; nil until done
	// remaining, when non-nil, is the unprocessed fraction the job arrived
	// with (a stolen job admitted mid-execution); nil means a whole job.
	remaining *big.Rat
	// deadline, when non-nil, is the job's absolute completion deadline:
	// admission control certified (or waved through) it, completed reads
	// report whether it was met, and it rides migrations and the WAL.
	deadline *big.Rat
	// tenant and slaClass are the job's service-level accounting labels
	// ("" = untracked traffic / default class).
	tenant   string
	slaClass string
	// stolen marks records created by a migration rather than a submission,
	// so accepted-job counts and merged validations see each job once.
	stolen bool
	// counted marks that the job's admission has been folded into some
	// shard's arrival-batch statistics; it migrates with the job, so every
	// submission is counted exactly once no matter where (or how often
	// re-)admitted.
	counted bool
	// migratedAt, on a donor-side record, is the engine time the job was
	// stolen away: every donor piece of the job ends at or before it, so
	// once the retention horizon passes it the record can be compacted.
	migratedAt *big.Rat
	// submittedWall is the wall-clock submission instant, feeding the
	// submit→admit latency histogram; zero with telemetry disabled (the
	// clock is never read then) and on migrated records (a re-admission on
	// the destination shard is not a fresh submission).
	submittedWall time.Time
}

// shard is one independent scheduling loop over a slice of the fleet: its own
// mutex, its own goroutine, its own sim.Engine, and its own policy instance
// (for OnlineMWF variants, its own plan cache and warm-start basis chain).
// P shards give P concurrent exact solves, each over only the shard's live
// jobs — so the superlinear residual LP cost is paid on P-times-smaller
// instances.
type shard struct {
	// idx is the shard's immutable creation index: unique across the whole
	// life of the server (re-sharding keeps spawning shards with fresh
	// indices), it names the shard in stats and errors and fixes the global
	// mutex-acquisition order for multi-shard operations (steals and
	// reshards lock mus in ascending idx).
	idx int

	clock    Clock
	machines []model.Machine // this shard's machines, in fleet order
	policy   sim.Policy
	mwf      *sim.OnlineMWF // non-nil when policy is an OnlineMWF variant
	// admission is the deadline-admission mode (shardlink.AdmissionStrict,
	// Advisory, or Off) Submit runs deadline checks under; immutable after
	// construction.
	admission string

	//divflow:locks name=shard before=topo
	mu      sync.Mutex
	eng     *sim.Engine
	records []*jobRecord
	pending []*jobRecord // accepted but not yet admitted
	// Global-ID encoding of this shard within the *current* generation:
	// gid = gidBase + local*stride + pos, where stride is the generation's
	// shard count and pos the shard's position in it. A reshard that keeps
	// the shard re-encodes it (new base/stride/pos, all under mu) so future
	// IDs decode through the new generation, while records born earlier keep
	// their stored gids and decode through the generation that issued them.
	gidBase int
	stride  int
	pos     int
	// machineIdx maps local machine indices to global fleet indices; a
	// reshard that keeps the shard rewrites it (under mu) when the fleet
	// document renumbers machines.
	machineIdx []int
	// gen is the newest topology generation the shard belongs (or belonged)
	// to: 0 at startup, advanced under mu by every reshard that keeps the
	// shard, frozen at retirement. Events and stats are tagged with it.
	gen int
	// obs is the shard's telemetry bundle (histogram children and journal
	// hookup). Always non-nil: newShard installs a detached bundle whose
	// flow histogram still backs the P95 estimate, and the server replaces
	// it with the registry-backed one before the loop starts.
	obs *shardObs
	// retired marks a shard dropped from the active topology by a reshard:
	// its jobs have been migrated away, its loop is about to stop, and it
	// only keeps serving reads of its historical records and trace. The
	// router and the steal protocol must never place new work on it.
	retired bool
	// eligible[i] caches which local job IDs local machine i can serve
	// (databank check done once at acceptance, not on every cost lookup).
	eligible []map[int]bool
	// backlog is the shard's exact residual work: accepted job sizes minus
	// completed ones (a partially processed job still counts whole, and a
	// job whose admit the engine later rejects keeps counting — the shard is
	// poisoned then, and steering new work elsewhere is the right outcome).
	// The router places a submission eligible on several shards onto the one
	// with the least backlog. It lives under its own mutex so routing reads
	// never contend with the loop's mu, which is held across whole exact
	// solves; writers hold mu first, then backlogMu (never the reverse).
	//divflow:locks name=backlog before=dmu
	backlogMu sync.Mutex
	backlog   *big.Rat
	// tenantBacklog splits backlog by tenant (untracked traffic absent, zero
	// entries pruned): the router sums it across shards for the weighted-
	// fairness quota check. Same lock, same conservation rules as backlog.
	tenantBacklog map[string]*big.Rat
	// routeErr mirrors lastErr's text under backlogMu so the router can skip
	// poisoned shards without contending on mu (empty while healthy).
	routeErr string

	// steal, when non-nil, asks the server to migrate work here from the
	// largest-backlog shard; the loop calls it (outside mu) whenever it goes
	// idle. Nil with stealing disabled or a single shard.
	steal func() bool
	// restart, when non-nil (-restart-stalled), asks the server to rebuild
	// this shard in place from its intact engine state after the loop latched
	// an error or panicked; the loop calls it outside mu.
	restart func() bool
	// wal, when non-nil, is the server's durability layer: submissions,
	// admission batches, completions, migrations, and compaction horizons are
	// appended to the write-ahead log at the point they mutate shard state.
	wal *durability

	arrivalBatches  int
	batchedArrivals int
	largestBatch    int
	stalled         bool
	lastErr         error
	stolenIn        int // jobs migrated here by work stealing
	migratedOut     int // jobs stolen away from here
	reshardIn       int // jobs migrated here by a live reshard
	reshardOut      int // jobs a live reshard migrated away from here
	// migratedIDs lists donor-side records awaiting retention compaction
	// (Engine.Compact cannot return them: the engine no longer knows them).
	migratedIDs []int
	// dropForward, when non-nil, releases the server's forwarding-table
	// entry for a compacted stolen record's global ID.
	dropForward func(gid int)
	// link is the router's transport handle on this shard: every piece of
	// router-side traffic — submits, job reads, trace windows, stats,
	// routing keys, migrations — crosses the shardlink boundary through it.
	// In-process shards carry a localLink (straight calls into this struct);
	// a worker-mode stub carries an rpcLink to the process that really runs
	// the shard.
	link shardlink.Link
	// remote marks a stub standing in for a shard hosted by a worker
	// process: its local engine is never started or consulted — the struct
	// exists only as the topology/identity handle (idx, gid encoding,
	// machine slice) behind its rpcLink.
	remote bool

	// Completed-job statistics are accumulated at completion time, not
	// recomputed from records, so compaction can forget the records without
	// losing the all-time aggregates.
	doneCount  int
	flowSum    *big.Rat
	maxWF      *big.Rat
	maxStretch *big.Rat
	// tenants accumulates per-tenant statistics the same way (at submission
	// and completion time, so compaction loses nothing). Keyed by tenant
	// name; untracked traffic is absent.
	tenants       map[string]*tenantAgg
	retention     *big.Rat
	lastCompact   *big.Rat // horizon of the last compaction
	compactedJobs int
	// makespanHW is the high-water mark of the executed trace's makespan,
	// folded in before every compaction: Engine.Compact drops old pieces, so
	// the makespan recomputed from the retained trace alone would move
	// backwards (to zero once everything is compacted).
	makespanHW *big.Rat

	// panics counts loop panics the supervisor caught; restarts in-place
	// rebuilds by the -restart-stalled supervisor.
	panics   int
	restarts int
	// freed marks a retired shard whose fully-compacted history was released:
	// records, queues, engine, and policy are gone, and only this struct —
	// the ID-decoding tombstone — remains, with the frozen aggregates below.
	freed bool
	// frozen* capture the last engine-derived stats before free() drops the
	// engine, so /v1/stats keeps reporting the retired shard's history.
	frozenNow       *big.Rat
	frozenCompleted int
	frozenDecisions int
	frozenAccepted  int
	frozenSolves    int
	frozenCacheHits int
	frozenSolver    stats.SolverTally

	started bool
	closed  bool
	wake    chan struct{}
	done    chan struct{}
	stopped chan struct{}
}

// copyRat returns a copy of r, passing nil through.
func copyRat(r *big.Rat) *big.Rat {
	if r == nil {
		return nil
	}
	return new(big.Rat).Set(r)
}

// tenantAgg is one tenant's all-time accounting on this shard, folded in at
// submission and completion time like the shard-level aggregates above it in
// the struct — compaction can forget records without losing it.
type tenantAgg struct {
	submitted int // birth submissions (migrations excluded)
	completed int
	flowSum   *big.Rat
	maxWF     *big.Rat
	byClass   map[string]int // birth submissions per SLA class
}

// tenantFor returns (creating on first use) the tenant's aggregate slot.
// Callers hold sh.mu.
//
//divflow:locks requires=shard
func (sh *shard) tenantFor(tenant string) *tenantAgg {
	if sh.tenants == nil {
		sh.tenants = make(map[string]*tenantAgg)
	}
	ta := sh.tenants[tenant]
	if ta == nil {
		ta = &tenantAgg{flowSum: new(big.Rat), byClass: make(map[string]int)}
		sh.tenants[tenant] = ta
	}
	return ta
}

// tenantBacklogAdd folds size into the tenant's residual-work entry;
// untracked traffic (empty tenant) is not split. Callers hold backlogMu.
//
//divflow:locks requires=backlog
func (sh *shard) tenantBacklogAdd(tenant string, size *big.Rat) {
	if tenant == "" || size.Sign() == 0 {
		return
	}
	if sh.tenantBacklog == nil {
		sh.tenantBacklog = make(map[string]*big.Rat)
	}
	cur := sh.tenantBacklog[tenant]
	if cur == nil {
		cur = new(big.Rat)
		sh.tenantBacklog[tenant] = cur
	}
	cur.Add(cur, size)
	if cur.Sign() == 0 {
		delete(sh.tenantBacklog, tenant)
	}
}

// tenantBacklogSub takes size back out of the tenant's residual-work entry,
// pruning it at zero. Callers hold backlogMu.
//
//divflow:locks requires=backlog
func (sh *shard) tenantBacklogSub(tenant string, size *big.Rat) {
	if tenant == "" || size.Sign() == 0 {
		return
	}
	cur := sh.tenantBacklog[tenant]
	if cur == nil {
		return
	}
	cur.Sub(cur, size)
	if cur.Sign() == 0 {
		delete(sh.tenantBacklog, tenant)
	}
}

// newShard builds one scheduling shard over the given slice of the fleet.
// idx is the immutable creation index; (gidBase, stride, pos) is the shard's
// global-ID encoding within its birth generation; machineIdx maps local
// machine indices to global fleet indices; admission is the deadline-
// admission mode ("" defaults to strict).
func newShard(idx, pos, stride, gidBase int, clock Clock, machines []model.Machine, machineIdx []int, pol sim.Policy, retention *big.Rat, admission string) *shard {
	if admission == "" {
		admission = shardlink.AdmissionStrict
	}
	sh := &shard{
		idx:        idx,
		pos:        pos,
		stride:     stride,
		gidBase:    gidBase,
		clock:      clock,
		machines:   machines,
		machineIdx: machineIdx,
		policy:     pol,
		admission:  admission,
		backlog:    new(big.Rat),
		flowSum:    new(big.Rat),
		wake:       make(chan struct{}, 1),
		done:       make(chan struct{}),
		stopped:    make(chan struct{}),
	}
	if retention != nil && retention.Sign() > 0 {
		sh.retention = new(big.Rat).Set(retention)
		sh.lastCompact = new(big.Rat)
	}
	sh.obs = detachedShardObs()
	sh.mwf, _ = pol.(*sim.OnlineMWF)
	sh.eligible = make([]map[int]bool, len(sh.machines))
	for i := range sh.eligible {
		sh.eligible[i] = make(map[int]bool)
	}
	sh.eng = sim.NewEngine(len(sh.machines), sh.cost, pol)
	return sh
}

// globalID encodes a shard-local job ID into the wire-visible global ID
// under the shard's current-generation encoding. With a single never-
// resharded shard the encoding is the identity. Callers hold sh.mu (a
// reshard that keeps the shard re-encodes these fields under it).
//
//divflow:locks requires=shard
func (sh *shard) globalID(local int) int { return sh.gidBase + local*sh.stride + sh.pos }

// hosts reports whether some machine of the shard hosts every databank.
func (sh *shard) hosts(databanks []string) bool {
	for i := range sh.machines {
		if sh.machines[i].Hosts(databanks) {
			return true
		}
	}
	return false
}

// cost is the shard engine's CostFunc: the uniform model over the shard's
// machines, c_{i,j} = Size_j · InverseSpeed_i where machine i hosts job j's
// databanks. The eligibility map normally implies a live record, but
// compaction severs that invariant for forgotten IDs — a stale ID must
// answer ok=false, not dereference a nil record and kill the loop goroutine.
func (sh *shard) cost(machine, jobID int) (*big.Rat, bool) {
	if machine < 0 || machine >= len(sh.eligible) || !sh.eligible[machine][jobID] {
		return nil, false
	}
	if jobID < 0 || jobID >= len(sh.records) || sh.records[jobID] == nil {
		return nil, false
	}
	return new(big.Rat).Mul(sh.records[jobID].size, sh.machines[machine].InverseSpeed), true
}

// start launches the shard's scheduling loop. Safe to call once. A remote
// stub has no loop: the worker process runs the real one.
func (sh *shard) start() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.started || sh.closed || sh.remote {
		return
	}
	sh.started = true
	go sh.loop()
}

// close stops accepting submissions, terminates the loop, and then drains
// every accepted-but-never-admitted job into the terminal StateRejected —
// with its size taken back out of the backlog — so post-shutdown job reads
// and stats are truthful instead of claiming a queue that will never move.
func (sh *shard) close() {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return
	}
	sh.closed = true
	started := sh.started
	sh.mu.Unlock()
	close(sh.done)
	if started {
		<-sh.stopped
	}
	// The loop is gone (or never ran): whatever is still pending can be
	// drained without racing an admission.
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.pending) == 0 {
		return
	}
	stranded := new(big.Rat)
	strandedTenants := make(map[string]*big.Rat)
	for _, rec := range sh.pending {
		rec.state = StateRejected
		stranded.Add(stranded, rec.size)
		if rec.tenant != "" {
			if strandedTenants[rec.tenant] == nil {
				strandedTenants[rec.tenant] = new(big.Rat)
			}
			strandedTenants[rec.tenant].Add(strandedTenants[rec.tenant], rec.size)
		}
		for i := range sh.eligible {
			delete(sh.eligible[i], rec.id)
		}
		sh.obs.event(obs.EventReject, rec.gid, nil, "shutdown drained the queued job")
	}
	sh.pending = nil
	sh.backlogMu.Lock()
	sh.backlog.Sub(sh.backlog, stranded)
	for t, v := range strandedTenants {
		sh.tenantBacklogSub(t, v)
	}
	sh.backlogMu.Unlock()
}

// submit accepts one job onto this shard, stamping its flow origin (release)
// now, under the shard lock — so per-shard release dates are non-decreasing
// in local ID order. It returns the wire-visible global ID; the loop admits
// the job at its next wake-up, so submissions racing one re-solve share it.
// A shard retired by a racing reshard answers errRetired: the router re-reads
// the active topology and routes again.
//
// A job carrying a deadline is first run through the deadline-feasibility LP
// against the shard's residual workload (unless the shard was installed with
// AdmissionOff): the returned certificate is exact, and under AdmissionStrict
// an infeasible deadline is refused with errDeadline — the certificate then
// names the best achievable counter-offer deadline — before any state (WAL
// included) is touched by this submission.
func (sh *shard) submit(job model.Job) (int, *model.AdmissionCertificate, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.retired {
		return 0, nil, errRetired
	}
	if sh.closed {
		return 0, nil, ErrClosed
	}
	var hosts []int
	for i := range sh.machines {
		if sh.machines[i].Hosts(job.Databanks) {
			hosts = append(hosts, i)
		}
	}
	if len(hosts) == 0 {
		return 0, nil, fmt.Errorf("server: no machine hosts databanks %v", job.Databanks)
	}
	// The flow origin is the submission time: queueing delay before the loop
	// admits the job counts against its flow, exactly like the paper's online
	// adaptation measures flows from submission.
	release := sh.clock.Now()
	var cert *model.AdmissionCertificate
	if job.Deadline != nil && sh.admission != shardlink.AdmissionOff {
		var err error
		cert, _, err = sh.admissionCheck(job, release)
		if err != nil {
			return 0, nil, err
		}
		if !cert.Feasible && sh.admission == shardlink.AdmissionStrict {
			sh.obs.event(obs.EventReject, -1, release,
				fmt.Sprintf("deadline %s infeasible against %d residual jobs", job.Deadline.RatString(), cert.ResidualJobs))
			return 0, cert, errDeadline
		}
	}
	rec := &jobRecord{
		id:        len(sh.records),
		gid:       sh.globalID(len(sh.records)),
		name:      job.Name,
		weight:    copyRat(job.Weight),
		size:      copyRat(job.Size),
		databanks: job.Databanks,
		state:     StateQueued,
		release:   release,
		deadline:  copyRat(job.Deadline),
		tenant:    job.Tenant,
		slaClass:  job.SLAClass,
	}
	if rec.name == "" {
		rec.name = fmt.Sprintf("job-%d", sh.globalID(rec.id))
	}
	// Write-ahead: the submission is logged before any shard state changes,
	// so a crash between the append and the mutation replays the job rather
	// than losing an acknowledged submission.
	sh.wal.appendSubmit(sh, rec)
	rec.submittedWall = sh.obs.now()
	sh.records = append(sh.records, rec)
	sh.pending = append(sh.pending, rec)
	if rec.tenant != "" {
		ta := sh.tenantFor(rec.tenant)
		ta.submitted++
		ta.byClass[rec.slaClass]++
	}
	sh.backlogMu.Lock()
	sh.backlog.Add(sh.backlog, rec.size)
	sh.tenantBacklogAdd(rec.tenant, rec.size)
	sh.backlogMu.Unlock()
	for _, i := range hosts {
		sh.eligible[i][rec.id] = true
	}
	sh.obs.event(obs.EventSubmit, rec.gid, rec.release, "")
	sh.poke()
	return rec.gid, cert, nil
}

// admissionCheck runs the deadline-feasibility LP for one candidate job
// against the shard's residual workload — everything live or queued, at its
// exact remaining work, released at now, with every stored deadline kept —
// and returns the exact certificate plus, when infeasible, the best
// achievable counter-offer deadline as a rational. A stalled shard cannot
// answer: the check degrades to an uncertified acceptance rather than
// wedging submissions on a poisoned engine. Callers hold sh.mu.
//
//divflow:locks requires=shard
func (sh *shard) admissionCheck(job model.Job, now *big.Rat) (*model.AdmissionCertificate, *big.Rat, error) {
	// Catch the engine up first: remaining fractions at a stale time would
	// overstate the residual workload. This is the same catch-up the loop
	// would run at its next wake-up, so no-deadline traffic (which never
	// reaches this function) keeps its trace bit-for-bit.
	if _, ok := sh.catchUp(); !ok {
		return &model.AdmissionCertificate{Mode: sh.admission, Feasible: true}, nil, nil
	}
	jobs, deadlines := sh.residualJobs(now)
	weight := job.Weight
	if weight == nil {
		weight = big.NewRat(1, 1)
	}
	// The candidate goes last: NewInstance sorts stably by release, every
	// release equals now, so the candidate keeps the last index.
	jobs = append(jobs, model.Job{
		Name:      job.Name,
		Release:   new(big.Rat).Set(now),
		Weight:    copyRat(weight),
		Size:      copyRat(job.Size),
		Databanks: job.Databanks,
	})
	deadlines = append(deadlines, copyRat(job.Deadline))
	k := len(jobs) - 1
	inst, err := model.NewInstance(jobs, sh.machines)
	if err != nil {
		return nil, nil, fmt.Errorf("server: shard %d: admission instance: %w", sh.idx, err)
	}
	mode := schedule.Divisible
	if sh.mwf != nil {
		mode = sh.mwf.Mode
	}
	cert := &model.AdmissionCertificate{
		Mode:         sh.admission,
		Deadline:     job.Deadline.RatString(),
		ResidualJobs: len(jobs),
	}
	feasible, _, err := core.DeadlineFeasible(inst, deadlines, mode)
	if err != nil {
		return nil, nil, fmt.Errorf("server: shard %d: deadline feasibility: %w", sh.idx, err)
	}
	cert.Feasible = feasible
	if feasible {
		return cert, nil, nil
	}
	counter, err := core.BestDeadline(inst, deadlines, k, mode)
	if err != nil {
		return nil, nil, fmt.Errorf("server: shard %d: counter-offer search: %w", sh.idx, err)
	}
	if counter != nil {
		cert.CounterOffer = counter.RatString()
	}
	return cert, counter, nil
}

// residualJobs extracts the shard's residual workload as instance jobs for
// the admission LP: every live engine job at its exact remaining work plus
// every pending submission, all released at now, each carrying its stored
// deadline (nil for none). Callers hold sh.mu with the engine caught up.
//
//divflow:locks requires=shard
func (sh *shard) residualJobs(now *big.Rat) ([]model.Job, []*big.Rat) {
	var jobs []model.Job
	var deadlines []*big.Rat
	add := func(rec *jobRecord, size, remaining *big.Rat) {
		work := new(big.Rat).Set(size)
		if remaining != nil {
			work.Mul(work, remaining)
		}
		if work.Sign() <= 0 {
			return
		}
		jobs = append(jobs, model.Job{
			Name:      rec.name,
			Release:   new(big.Rat).Set(now),
			Weight:    copyRat(rec.weight),
			Size:      work,
			Databanks: rec.databanks,
		})
		deadlines = append(deadlines, copyRat(rec.deadline))
	}
	for _, rj := range sh.eng.Residual() {
		add(sh.records[rj.ID], rj.Size, rj.Remaining)
	}
	for _, rec := range sh.pending {
		add(rec, rec.size, rec.remaining)
	}
	return jobs, deadlines
}

// checkDeadline answers the standalone feasibility probe (shardlink op
// check_deadline): the same exact certificate a Submit would compute, with
// nothing mutated beyond the engine catch-up. The probe runs even under
// AdmissionOff — asking explicitly overrides the mode.
func (sh *shard) checkDeadline(args shardlink.CheckDeadlineArgs) shardlink.CheckDeadlineReply {
	job := args.Job
	if job.Deadline == nil {
		return shardlink.CheckDeadlineReply{Err: "job carries no deadline"}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.retired || sh.closed || sh.freed {
		return shardlink.CheckDeadlineReply{Err: "shard retired or closed"}
	}
	if sh.lastErr != nil {
		return shardlink.CheckDeadlineReply{Err: sh.lastErr.Error()}
	}
	var hosted bool
	for i := range sh.machines {
		if sh.machines[i].Hosts(job.Databanks) {
			hosted = true
			break
		}
	}
	if !hosted {
		return shardlink.CheckDeadlineReply{Err: fmt.Sprintf("no machine hosts databanks %v", job.Databanks)}
	}
	cert, counter, err := sh.admissionCheck(job, sh.clock.Now())
	if err != nil {
		return shardlink.CheckDeadlineReply{Err: err.Error()}
	}
	return shardlink.CheckDeadlineReply{
		Feasible:     cert.Feasible,
		CounterOffer: counter,
		ResidualJobs: cert.ResidualJobs,
	}
}

// orphanRecord flips a donor-side record to the migrated state after its job
// was extracted (stolen or resharded away): eligibility scrubbed, the
// migration time stamped — every donor piece of the job ends by it, so
// retention can compact the record once the horizon passes — and the record
// queued for that compaction. Callers hold sh.mu.
//
//divflow:locks requires=shard
func (sh *shard) orphanRecord(rec *jobRecord) {
	for i := range sh.eligible {
		delete(sh.eligible[i], rec.id)
	}
	rec.state = StateMigrated
	rec.migratedAt = sh.eng.Now()
	sh.migratedIDs = append(sh.migratedIDs, rec.id)
}

// adoptRecord creates the destination-side record of a migrated job: a fresh
// local slot under the original global ID, flow origin, and exact remaining
// fraction, queued for admission at the shard's next wake-up. counted
// migrates with the job, so arrival statistics see each submission exactly
// once no matter how often it moves. Callers hold sh.mu.
//
//divflow:locks requires=shard
func (sh *shard) adoptRecord(rec *jobRecord, remaining *big.Rat) *jobRecord {
	nrec := &jobRecord{
		id:        len(sh.records),
		gid:       rec.gid, // the global ID survives the move
		name:      rec.name,
		weight:    copyRat(rec.weight),
		size:      copyRat(rec.size),
		databanks: rec.databanks,
		state:     StateQueued,
		release:   copyRat(rec.release), // flow origin: still the first submission
		remaining: copyRat(remaining),
		deadline:  copyRat(rec.deadline),
		tenant:    rec.tenant,
		slaClass:  rec.slaClass,
		stolen:    true,
		counted:   rec.counted,
	}
	sh.records = append(sh.records, nrec)
	sh.pending = append(sh.pending, nrec)
	for i := range sh.machines {
		if sh.machines[i].Hosts(nrec.databanks) {
			sh.eligible[i][nrec.id] = true
		}
	}
	return nrec
}

// residualWork returns the shard's current backlog (a copy): the routing
// key. It takes only backlogMu, so routing a submission never blocks behind
// an in-flight exact solve on a busy shard.
func (sh *shard) residualWork() *big.Rat {
	sh.backlogMu.Lock()
	defer sh.backlogMu.Unlock()
	return new(big.Rat).Set(sh.backlog)
}

// routeInfo returns the backlog (a copy), the shard's latched error text
// ("" while healthy), and the per-tenant backlog split (nil when no tracked
// tenant has residual work here) — everything the router's placement and
// quota decisions need, again without touching mu.
func (sh *shard) routeInfo() (*big.Rat, string, map[string]*big.Rat) {
	sh.backlogMu.Lock()
	defer sh.backlogMu.Unlock()
	var tb map[string]*big.Rat
	if len(sh.tenantBacklog) > 0 {
		tb = make(map[string]*big.Rat, len(sh.tenantBacklog))
		for t, v := range sh.tenantBacklog {
			tb[t] = new(big.Rat).Set(v)
		}
	}
	return new(big.Rat).Set(sh.backlog), sh.routeErr, tb
}

// poke wakes the shard's loop if it is sleeping; a no-op when a wake-up is
// already queued. The server pokes idle shards when work lands elsewhere so
// they re-run their steal check.
func (sh *shard) poke() {
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// historyEmpty reports whether every record has been compacted away and
// nothing is pending — a retired shard with no history left has nothing to
// serve and its loop can stop for good. Callers hold sh.mu.
//
//divflow:locks requires=shard
func (sh *shard) historyEmpty() bool {
	if len(sh.pending) != 0 {
		return false
	}
	for _, rec := range sh.records {
		if rec != nil {
			return false
		}
	}
	return true
}

// loop is the scheduling event loop: process everything due, arm a timer
// for the next engine event, sleep until the timer or a submission wakes it.
// A loop that finds itself idle — no live jobs, nothing pending, no latched
// error — first tries to steal work from an overloaded shard, and on success
// goes straight back to processing instead of sleeping. A *retired* shard
// under a retention policy keeps a low-duty-cycle loop alive purely to run
// compaction — one wake-up per retention window — so `-retention` keeps
// bounding memory (and releasing forwarding entries) across reshards; once
// its whole history is compacted the loop exits for good.
func (sh *shard) loop() {
	defer close(sh.stopped)
	for {
		res := sh.loopIter()
		if res.exit {
			return
		}

		// The steal call runs outside mu: it locks donor and thief shards in
		// index order, which must not nest inside an already-held mu. The
		// restart hook runs outside mu for the same reason (it re-takes it).
		if res.idle && sh.steal != nil && sh.steal() {
			continue
		}
		if res.stalled && sh.restart != nil && sh.restart() {
			continue
		}

		var timer <-chan struct{}
		cancel := func() {}
		if res.next != nil {
			timer, cancel = sh.clock.At(res.next)
		}
		select {
		case <-sh.done:
			cancel()
			return
		case <-sh.wake:
		case <-timer:
		}
		// Release the timer before re-arming: wake-ups during a long-lived
		// event would otherwise pile up pending timers until its deadline.
		cancel()
	}
}

// loopResult is what one supervised loop iteration tells the outer loop.
type loopResult struct {
	next    *big.Rat // next engine event to sleep toward (nil: no deadline)
	idle    bool     // healthy with nothing to do: try stealing
	stalled bool     // latched error or panic: try restarting
	exit    bool     // retired shard fully drained: stop for good
}

// loopIter is one supervised iteration of the scheduling loop: the locked
// body runs under a recover barrier, so a panic anywhere in the engine or
// policy latches the shard as stalled — counted, journaled, the daemon still
// serving — instead of killing the process. The mutex is released by its own
// defer before the recover handler runs, so a panicking iteration never
// leaves mu held.
func (sh *shard) loopIter() (res loopResult) {
	defer func() {
		if r := recover(); r != nil {
			sh.recoverPanic(r)
			res = loopResult{stalled: true}
		}
	}()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.freed {
		// A freed tombstone (restored from a snapshot taken after the free)
		// has no engine left; its loop has nothing to ever do.
		return loopResult{exit: true}
	}
	sh.process()
	res.next = sh.eng.NextEvent()
	// A retired shard must never pull work back onto itself: its loop is
	// only alive to finish compacting its history.
	res.idle = sh.lastErr == nil && sh.eng.Live() == 0 && len(sh.pending) == 0 && !sh.retired
	res.stalled = sh.lastErr != nil && !sh.retired && !sh.closed
	retiredDone := sh.retired && (sh.retention == nil || sh.historyEmpty())
	if sh.retired && !retiredDone && res.next == nil {
		res.next = new(big.Rat).Add(sh.clock.Now(), sh.retention)
	}
	if retiredDone {
		// Once a retired shard's history has fully compacted away there is
		// nothing left to serve: release everything but the ID-decoding
		// tombstone, so long-lived fleets do not accumulate dead shard state
		// across reshards.
		if sh.retention != nil {
			sh.free()
		}
		res.exit = true
	}
	return res
}

// recoverPanic latches a caught loop panic: the shard reports stalled (with
// the panic as its error), the panic is counted and journaled with its stack,
// and the loop goroutine survives. Callers must NOT hold mu.
func (sh *shard) recoverPanic(r any) {
	stack := debug.Stack()
	if len(stack) > 4096 {
		stack = stack[:4096]
	}
	err := fmt.Errorf("server: shard %d: loop panic: %v", sh.idx, r)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.panics++
	sh.fail(err)
	var vt *big.Rat
	if sh.eng != nil {
		vt = sh.eng.Now()
	}
	sh.obs.event(obs.EventShardPanic, -1, vt, fmt.Sprintf("%v\n%s", r, stack))
}

// free releases a fully-compacted retired shard's memory: records, queues,
// eligibility maps, engine, and policy all go, with the engine-derived stats
// frozen first so /v1/stats keeps the history. The struct itself stays in the
// topology as the tombstone that decodes this shard's global IDs (to
// not-found). Callers hold mu; the shard must be retired with empty history.
//
//divflow:locks requires=shard
func (sh *shard) free() {
	if sh.freed {
		return
	}
	sh.freed = true
	sh.frozenNow = sh.eng.Now()
	sh.frozenCompleted = sh.eng.CompletedCount()
	sh.frozenDecisions = sh.eng.Decisions()
	sh.frozenAccepted = len(sh.records) - sh.stolenIn - sh.reshardIn
	if sh.mwf != nil {
		sh.frozenSolves = sh.mwf.Solves()
		sh.frozenCacheHits = sh.mwf.CacheHits()
		sh.frozenSolver = sh.mwf.SolverTally()
	}
	sh.noteMakespan()
	sh.records = nil
	sh.pending = nil
	sh.migratedIDs = nil
	sh.eligible = nil
	sh.eng = nil
	sh.policy = nil
	sh.mwf = nil
}

// catchUp advances the engine through every completion/review event that is
// due and then to the present, executing the installed allocation — without
// admitting pending submissions. The steal protocol calls it on a donor
// before taking the census, so remaining fractions reflect everything the
// donor has (notionally) executed since its last event rather than a stale
// snapshot; admissions are deliberately left out, since pending jobs have
// no executed work to conserve and admitting them would force a full-size
// solve the steal is about to shrink. It reports whether the shard is still
// healthy. Callers hold sh.mu.
//
//divflow:locks requires=shard
func (sh *shard) catchUp() (*big.Rat, bool) {
	return sh.catchUpTo(sh.clock.Now())
}

// catchUpTo is catchUp against an explicit target time: the WAL replay path
// drives shards to recorded virtual times instead of the clock, so a restored
// engine retraces exactly the events the original crossed. Callers hold
// sh.mu.
//
//divflow:locks requires=shard
func (sh *shard) catchUpTo(now *big.Rat) (*big.Rat, bool) {
	if now.Cmp(sh.eng.Now()) < 0 {
		// A timer fired marginally early (wall-clock rounding): treat the
		// engine's exact time as authoritative.
		now = sh.eng.Now()
	}
	for {
		next := sh.eng.NextEvent()
		if next == nil || next.Cmp(now) > 0 {
			break
		}
		if !sh.step(next) {
			return now, false //divflow:ratalias-ok hands the caller back its own argument (or a fresh engine copy when raised); no second owner is created
		}
	}
	// Partial progress up to the present, crossing no event.
	if _, err := sh.eng.AdvanceTo(now); err != nil {
		sh.fail(err)
		return now, false //divflow:ratalias-ok hands the caller back its own argument (or a fresh engine copy when raised); no second owner is created
	}
	return now, true //divflow:ratalias-ok hands the caller back its own argument (or a fresh engine copy when raised); no second owner is created
}

// process catches the engine up with the clock and then admits all pending
// submissions as one batch. Callers hold sh.mu.
//
//divflow:locks requires=shard
func (sh *shard) process() {
	now, ok := sh.catchUp()
	if !ok {
		return
	}
	sh.compact(now)
	sh.admitAll(now)
}

// admitAll admits every pending submission as one batch at time now, logging
// the batch write-ahead. Callers hold sh.mu; the engine is caught up to now.
//
//divflow:locks requires=shard
func (sh *shard) admitAll(now *big.Rat) {
	if len(sh.pending) == 0 {
		return
	}
	sh.wal.appendAdmit(sh, now, sh.pending)
	batch := sh.pending
	sh.pending = nil
	// Arrival-batch statistics count each job's *first* admission only: a
	// job stolen after it was admitted once is not a new arrival, while one
	// stolen straight out of the pending queue is counted here, by its first
	// admitter. Fleet-wide, BatchedArrivals converges to exactly the
	// submission count no matter how often jobs migrate (the same
	// once-per-job rule JobsAccepted follows).
	native := 0
	flushBatchStats := func() {
		if native == 0 {
			return
		}
		sh.arrivalBatches++
		sh.batchedArrivals += native
		if native > sh.largestBatch {
			sh.largestBatch = native
		}
	}
	for k, rec := range batch {
		// Stolen jobs carry the unprocessed fraction they arrived with; the
		// release stays the original submission time in both cases, so flow
		// and stretch keep measuring from first contact with the service.
		if err := sh.eng.AddPartial(rec.id, rec.release, rec.weight, rec.size, rec.remaining); err != nil {
			// Keep the unadmitted tail (failed record included) in pending:
			// those jobs stay visible to the steal census — another shard can
			// still rescue them — and to the close() drain, which must mark
			// them rejected and return their sizes, not leave them "queued"
			// in limbo forever. The successfully admitted prefix still counts
			// toward the arrival statistics.
			sh.pending = batch[k:]
			flushBatchStats()
			sh.fail(err)
			return
		}
		// Only a successful admit makes the job "scheduled": a rejected Add
		// must leave the record queued, not claim scheduling that never
		// happened.
		rec.state = StateScheduled
		if !rec.submittedWall.IsZero() {
			sh.obs.submitAdmit.Observe(sh.obs.sinceSeconds(rec.submittedWall))
			rec.submittedWall = time.Time{}
		}
		sh.obs.event(obs.EventAdmit, rec.gid, now, "")
		if !rec.counted {
			rec.counted = true
			native++
		}
	}
	flushBatchStats()
	sh.decide()
}

// step advances the engine to the event at t, completes jobs, and re-runs
// the policy. Callers hold sh.mu.
//
//divflow:locks requires=shard
func (sh *shard) step(t *big.Rat) bool {
	done, err := sh.eng.AdvanceTo(t)
	if err != nil {
		sh.fail(err)
		return false
	}
	for _, id := range done {
		sh.records[id].state = StateDone
		sh.records[id].completed = sh.eng.Completion(id)
		sh.wal.appendComplete(sh, sh.records[id])
		sh.recordCompletion(sh.records[id])
	}
	return sh.decide()
}

// recordCompletion folds one finished job into the all-time aggregates, so
// later compaction of its record loses no statistics. Callers hold sh.mu.
//
//divflow:locks requires=shard
func (sh *shard) recordCompletion(rec *jobRecord) {
	sh.doneCount++
	sh.backlogMu.Lock()
	sh.backlog.Sub(sh.backlog, rec.size)
	sh.tenantBacklogSub(rec.tenant, rec.size)
	sh.backlogMu.Unlock()
	flow := new(big.Rat).Sub(rec.completed, rec.release)
	sh.flowSum.Add(sh.flowSum, flow)
	wf := new(big.Rat).Mul(rec.weight, flow)
	if sh.maxWF == nil || wf.Cmp(sh.maxWF) > 0 {
		sh.maxWF = wf
	}
	st := new(big.Rat).Quo(flow, rec.size)
	if sh.maxStretch == nil || st.Cmp(sh.maxStretch) > 0 {
		sh.maxStretch = st
	}
	if rec.tenant != "" {
		ta := sh.tenantFor(rec.tenant)
		ta.completed++
		ta.flowSum.Add(ta.flowSum, flow)
		if ta.maxWF == nil || wf.Cmp(ta.maxWF) > 0 {
			ta.maxWF = new(big.Rat).Set(wf)
		}
		// The per-tenant weighted-flow histogram backs the /v1/tenants P95,
		// like the shard flow histogram backs the /v1/stats one.
		wff, _ := wf.Float64()
		sh.obs.tenantWFlow(rec.tenant).Observe(wff)
	}
	// The flow histogram is observed unconditionally — it is the backing
	// store of the /v1/stats P95 estimate, not just an exported metric.
	f, _ := flow.Float64()
	sh.obs.flow.Observe(f)
}

// compact enforces the retention bound: everything that finished more than
// retention before now is dropped from the engine's executed trace and from
// the per-job records (their statistics were already aggregated at
// completion). Donor-side records of migrated jobs — which the engine never
// completes, so Engine.Compact never returns them — are dropped once the
// horizon passes their migration time (all their local pieces end by then),
// and compacted *stolen* records release their forwarding-table entry, so a
// retention-bounded service stays bounded under steady stealing. Callers
// hold sh.mu.
//
//divflow:locks requires=shard
func (sh *shard) compact(now *big.Rat) {
	if sh.retention == nil {
		return
	}
	horizon := new(big.Rat).Sub(now, sh.retention)
	if horizon.Sign() <= 0 || horizon.Cmp(sh.lastCompact) <= 0 {
		return
	}
	// Fold the pre-compaction makespan into the high-water mark first:
	// dropping pieces must never move the reported whole-execution makespan
	// backwards.
	sh.noteMakespan()
	sh.wal.appendCompact(sh, now, horizon)
	sh.lastCompact = horizon
	before := sh.compactedJobs
	drop := func(id int) {
		rec := sh.records[id]
		// Only the job's *current* owner releases the forwarding entry: a
		// record that is stolen but migrated onward describes a hop whose
		// entry already points at a later shard.
		if rec.stolen && rec.state != StateMigrated && sh.dropForward != nil {
			sh.dropForward(rec.gid)
		}
		sh.records[id] = nil
		sh.compactedJobs++
		for i := range sh.eligible {
			delete(sh.eligible[i], id)
		}
	}
	for _, id := range sh.eng.Compact(horizon) {
		drop(id)
	}
	keep := sh.migratedIDs[:0]
	for _, id := range sh.migratedIDs {
		if sh.records[id].migratedAt.Cmp(horizon) <= 0 {
			drop(id)
		} else {
			keep = append(keep, id)
		}
	}
	sh.migratedIDs = keep
	if n := sh.compactedJobs - before; n > 0 {
		sh.obs.event(obs.EventCompact, -1, horizon, fmt.Sprintf("%d records dropped", n))
	}
}

// noteMakespan raises the makespan high-water mark to the current executed
// trace's makespan. Callers hold sh.mu.
//
//divflow:locks requires=shard
func (sh *shard) noteMakespan() {
	ms := sh.eng.Schedule().Makespan()
	if sh.makespanHW == nil || ms.Cmp(sh.makespanHW) > 0 {
		sh.makespanHW = ms
	}
}

// makespan returns the whole-execution makespan: the maximum of the retained
// trace's makespan and the high-water mark from before compactions. Callers
// hold sh.mu.
//
//divflow:locks requires=shard
func (sh *shard) makespan() *big.Rat {
	if sh.eng == nil {
		if sh.makespanHW != nil {
			return new(big.Rat).Set(sh.makespanHW)
		}
		return new(big.Rat)
	}
	ms := sh.eng.Schedule().Makespan()
	if sh.makespanHW != nil && sh.makespanHW.Cmp(ms) > 0 {
		ms = new(big.Rat).Set(sh.makespanHW)
	}
	return ms
}

// decide runs the policy and flags a stall (live work but no upcoming
// event: the policy idled, or its inner solver failed). Callers hold sh.mu.
//
//divflow:locks requires=shard
func (sh *shard) decide() bool {
	// The fault-injection harness plants a panic here — inside the locked
	// loop body, exactly where a policy bug would blow up — to exercise the
	// supervisor's recover/latch/restart path.
	faults.MaybePanic(faults.PanicInPolicy)
	if err := sh.eng.Decide(); err != nil {
		sh.fail(err)
		return false
	}
	// Once fail() recorded an engine error the flag stays latched: later
	// decisions on a poisoned engine must not report the service healthy.
	sh.stalled = sh.lastErr != nil || (sh.eng.Live() > 0 && sh.eng.NextEvent() == nil)
	if sh.stalled && sh.lastErr == nil {
		err := fmt.Errorf("server: shard %d: policy %s idles with %d live jobs", sh.idx, sh.policy.Name(), sh.eng.Live())
		if sh.mwf != nil && sh.mwf.Err() != nil {
			err = sh.mwf.Err()
		}
		sh.lastErr = err
		sh.publishRouteErr()
		sh.obs.event(obs.EventShardStall, -1, sh.eng.Now(), err.Error())
	}
	return true
}

// fail records a loop error; the shard keeps serving reads. Callers hold
// sh.mu.
//
//divflow:locks requires=shard
func (sh *shard) fail(err error) {
	if sh.lastErr == nil {
		sh.lastErr = err
		sh.obs.event(obs.EventShardStall, -1, sh.eng.Now(), err.Error())
	}
	sh.stalled = true
	sh.publishRouteErr()
}

// publishRouteErr mirrors lastErr where the router can see it without
// taking mu. Callers hold sh.mu.
//
//divflow:locks requires=shard
func (sh *shard) publishRouteErr() {
	sh.backlogMu.Lock()
	sh.routeErr = sh.lastErr.Error()
	sh.backlogMu.Unlock()
}

// jobStatus builds the wire status of the shard-local job answering to the
// given global ID. known is false for unknown, compacted, or migrated-away
// records, and for records whose global ID is not the requested one: a
// stolen record occupies a local slot whose arithmetic encoding belongs to
// a different (possibly never-issued) global ID, which must not leak
// another job's status. migrated distinguishes the one retryable miss — the
// job left for another shard, so the caller should chase the forwarding
// table again — from definitive not-found answers.
func (sh *shard) jobStatus(local, gid int) (st model.JobStatus, known, migrated bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if local < 0 || local >= len(sh.records) || sh.records[local] == nil {
		return model.JobStatus{}, false, false
	}
	rec := sh.records[local]
	if rec.state == StateMigrated {
		return model.JobStatus{}, false, rec.gid == gid
	}
	if rec.gid != gid {
		return model.JobStatus{}, false, false
	}
	st = model.JobStatus{
		ID:        rec.gid,
		Name:      rec.name,
		State:     rec.state,
		Weight:    rec.weight.RatString(),
		Size:      rec.size.RatString(),
		Databanks: rec.databanks,
		Tenant:    rec.tenant,
		SLAClass:  rec.slaClass,
	}
	if rec.deadline != nil {
		st.Deadline = rec.deadline.RatString()
	}
	if rec.release != nil {
		st.Release = rec.release.RatString()
	}
	if rec.state == StateScheduled {
		if rem := sh.eng.Remaining(rec.id); rem != nil {
			st.Remaining = rem.RatString()
		}
	}
	if rec.completed != nil {
		flow := new(big.Rat).Sub(rec.completed, rec.release)
		st.CompletedAt = rec.completed.RatString()
		st.Flow = flow.RatString()
		st.WeightedFlow = new(big.Rat).Mul(rec.weight, flow).RatString()
		st.Stretch = new(big.Rat).Quo(flow, rec.size).RatString()
		if rec.deadline != nil {
			met := rec.completed.Cmp(rec.deadline) <= 0
			st.DeadlineMet = &met
		}
	}
	return st, true, false
}

// scheduleSnapshot copies the shard's executed trace (windowed to pieces
// ending after since, when non-nil) with machine indices and job IDs
// translated to fleet/global space, plus the shard's time and monotone
// makespan. The copies are deep: the caller serializes them after the lock
// is released, while the loop keeps extending the live pieces.
func (sh *shard) scheduleSnapshot(since *big.Rat) (pieces []schedule.Piece, now, makespan *big.Rat) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.freed {
		// A freed tombstone has no trace left; its makespan contribution
		// survives in the high-water mark.
		return nil, new(big.Rat).Set(sh.frozenNow), sh.makespan()
	}
	sched := sh.eng.Schedule()
	makespan = sh.makespan()
	if since != nil {
		sched = sched.Since(since)
	}
	pieces = make([]schedule.Piece, len(sched.Pieces))
	for k := range sched.Pieces {
		pc := &sched.Pieces[k]
		// Records outlive their pieces (compaction drops a job's pieces no
		// later than its record), so the translation to the global ID — which
		// for a migrated job is not the arithmetic encoding of the local ID —
		// always has a record to read.
		pieces[k] = schedule.Piece{
			Machine:  sh.machineIdx[pc.Machine],
			Job:      sh.records[pc.Job].gid,
			Start:    new(big.Rat).Set(pc.Start),
			End:      new(big.Rat).Set(pc.End),
			Fraction: new(big.Rat).Set(pc.Fraction),
		}
	}
	return pieces, sh.eng.Now(), makespan
}

// statsSnapshot captures the shard's counters under its lock, in the wire
// form every transport ships (shardlink.StatsSnapshot). A freed tombstone
// answers from the aggregates frozen when its history was released.
func (sh *shard) statsSnapshot() shardlink.StatsSnapshot {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	names := make([]string, len(sh.machines))
	for i := range sh.machines {
		names[i] = sh.machines[i].Name
	}
	engNow, live, completed, decisions, accepted := sh.frozenNow, 0, sh.frozenCompleted, sh.frozenDecisions, sh.frozenAccepted
	if !sh.freed {
		engNow = sh.eng.Now()
		live = sh.eng.Live()
		completed = sh.eng.CompletedCount()
		decisions = sh.eng.Decisions()
		accepted = len(sh.records) - sh.stolenIn - sh.reshardIn
	}
	snap := shardlink.StatsSnapshot{
		Wire: model.ShardStats{
			Shard:      sh.idx,
			Generation: sh.gen,
			Machines:   names,
			Now:        engNow.RatString(),
			// Births only: records created by a steal or reshard migration are
			// counted by their birth shard, so the fleet aggregate sees every
			// job exactly once.
			JobsAccepted:    accepted,
			JobsQueued:      len(sh.pending),
			JobsLive:        live,
			JobsCompleted:   completed,
			Events:          decisions,
			ArrivalBatches:  sh.arrivalBatches,
			BatchedArrivals: sh.batchedArrivals,
			LargestBatch:    sh.largestBatch,
			CompactedJobs:   sh.compactedJobs,
			StolenJobs:      sh.stolenIn,
			Migrations:      sh.migratedOut,
			ReshardedIn:     sh.reshardIn,
			ReshardedOut:    sh.reshardOut,
			Retired:         sh.retired,
			Freed:           sh.freed,
			Backlog:         sh.backlog.RatString(),
			Stalled:         sh.stalled,
			Panics:          sh.panics,
			Restarts:        sh.restarts,
		},
		Now:       copyRat(engNow),
		DoneCount: sh.doneCount,
		FlowSum:   new(big.Rat).Set(sh.flowSum),
		// Deep copies: these leave the lock (and possibly the process), and
		// nothing may alias live aggregate state out of it — recordCompletion
		// happens to replace rather than mutate the maxima today, but the
		// snapshot must not depend on that staying true.
		MaxWF:      copyRat(sh.maxWF),
		MaxStretch: copyRat(sh.maxStretch),
		Flow:       sh.obs.flow.Snapshot(),
	}
	// Per-tenant accounting: union of the aggregate slots (birth submissions,
	// completions) and the backlog split (which may name tenants that only
	// ever migrated work here).
	sh.backlogMu.Lock()
	tenantNames := make(map[string]bool, len(sh.tenants)+len(sh.tenantBacklog))
	for t := range sh.tenants {
		tenantNames[t] = true
	}
	for t := range sh.tenantBacklog {
		tenantNames[t] = true
	}
	if len(tenantNames) > 0 {
		snap.Tenants = make(map[string]shardlink.TenantShardSnapshot, len(tenantNames))
		for t := range tenantNames {
			ts := shardlink.TenantShardSnapshot{
				Backlog: new(big.Rat),
				FlowSum: new(big.Rat),
				WFlow:   sh.obs.tenantWFlow(t).Snapshot(),
			}
			if tb := sh.tenantBacklog[t]; tb != nil {
				ts.Backlog.Set(tb)
			}
			if ta := sh.tenants[t]; ta != nil {
				ts.Submitted = ta.submitted
				ts.Completed = ta.completed
				ts.FlowSum.Set(ta.flowSum)
				ts.MaxWF = copyRat(ta.maxWF)
				ts.ByClass = make(map[string]int, len(ta.byClass))
				for c, n := range ta.byClass {
					ts.ByClass[c] = n
				}
			}
			snap.Tenants[t] = ts
		}
	}
	sh.backlogMu.Unlock()
	snap.BacklogF, _ = sh.backlog.Float64()
	if sh.mwf != nil {
		snap.Wire.LPSolves = sh.mwf.Solves()
		snap.Wire.PlanCacheHits = sh.mwf.CacheHits()
		snap.Wire.Solver = sh.mwf.SolverTally()
	} else if sh.freed {
		snap.Wire.LPSolves = sh.frozenSolves
		snap.Wire.PlanCacheHits = sh.frozenCacheHits
		snap.Wire.Solver = sh.frozenSolver
	}
	if sh.lastErr != nil {
		snap.Wire.LastError = sh.lastErr.Error()
	}
	return snap
}
