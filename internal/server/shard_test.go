package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/big"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"divflow/internal/model"
	"divflow/internal/schedule"
)

// twoIslandFleet is four machines in two databank-connectivity components:
// {a0, a1} host "x", {b0, b1} host "y", and nothing bridges them.
func twoIslandFleet() []model.Machine {
	return []model.Machine{
		{Name: "a0", InverseSpeed: rat(1, 1), Databanks: []string{"x"}},
		{Name: "a1", InverseSpeed: rat(1, 2), Databanks: []string{"x"}},
		{Name: "b0", InverseSpeed: rat(1, 1), Databanks: []string{"y"}},
		{Name: "b1", InverseSpeed: rat(1, 2), Databanks: []string{"y"}},
	}
}

// uniformFleet is n identical machines all hosting one shared databank, the
// shape where the connectivity partition degenerates and -shards applies.
func uniformFleet(n int) []model.Machine {
	machines := make([]model.Machine, n)
	for i := range machines {
		machines[i] = model.Machine{
			Name:         fmt.Sprintf("u%d", i),
			InverseSpeed: rat(1, 1),
			Databanks:    []string{"shared"},
		}
	}
	return machines
}

// waitStats polls the merged stats until pred holds, without advancing the
// clock — for conditions the loops reach in real time (admissions, errors).
func waitStats(t *testing.T, srv *Server, pred func(model.StatsResponse) bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !pred(srv.Stats()) {
		if time.Now().After(deadline) {
			t.Fatal("waitStats: condition not reached in 30s")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestPartitionFleet(t *testing.T) {
	islands := twoIslandFleet()
	groups, err := partitionFleet(islands, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(groups[0]) != 2 || len(groups[1]) != 2 {
		t.Fatalf("connectivity partition = %v, want [[0 1] [2 3]]", groups)
	}
	if groups[0][0] != 0 || groups[0][1] != 1 || groups[1][0] != 2 || groups[1][1] != 3 {
		t.Fatalf("connectivity partition = %v, want [[0 1] [2 3]]", groups)
	}
	// The shared databank of testFleet joins both machines into one shard.
	groups, err = partitionFleet(testFleet(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Fatalf("connected fleet partition = %v, want one group of 2", groups)
	}
	// Round-robin override.
	groups, err = partitionFleet(uniformFleet(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(groups[0]) != 3 || len(groups[1]) != 2 {
		t.Fatalf("round-robin partition = %v, want sizes 3 and 2", groups)
	}
	// Machines with no databanks pool into one component, not one shard
	// each: a plain compute fleet keeps cross-machine divisibility.
	bare := []model.Machine{
		{Name: "c0", InverseSpeed: rat(1, 1)},
		{Name: "c1", InverseSpeed: rat(1, 1)},
		{Name: "c2", InverseSpeed: rat(1, 2), Databanks: []string{"x"}},
		{Name: "c3", InverseSpeed: rat(1, 2)},
	}
	groups, err = partitionFleet(bare, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(groups[0]) != 3 || len(groups[1]) != 1 {
		t.Fatalf("bare-machine partition = %v, want [[0 1 3] [2]]", groups)
	}
	// More shards than machines is a configuration error.
	if _, err := partitionFleet(uniformFleet(2), 3); err == nil {
		t.Error("3 shards over 2 machines must error")
	}
	if _, err := New(Config{Machines: uniformFleet(2), Shards: 3}); err == nil {
		t.Error("New with more shards than machines must error")
	}
}

// TestPartitionRejectsSplitDatabank is the regression test for the silent
// round-robin databank split: -shards used to deal machines out even when a
// databank's hosts landed in several shards with partial coverage, so a
// restricted job routed to such a shard could use only a subset of its
// machines while full hosts idled elsewhere — and work stealing could not
// rescue it either. That shape is now a configuration error naming the
// databank.
func TestPartitionRejectsSplitDatabank(t *testing.T) {
	// "x" is hosted by machines 0 and 1; shards=2 would put them in
	// different shards, each sitting next to a machine that cannot serve x.
	split := []model.Machine{
		{Name: "s0", InverseSpeed: rat(1, 1), Databanks: []string{"x"}},
		{Name: "s1", InverseSpeed: rat(1, 1), Databanks: []string{"x"}},
		{Name: "s2", InverseSpeed: rat(1, 1)},
		{Name: "s3", InverseSpeed: rat(1, 1)},
	}
	if _, err := partitionFleet(split, 2); err == nil || !strings.Contains(err.Error(), `"x"`) {
		t.Errorf("split databank partition = %v, want error naming databank x", err)
	}
	if _, err := New(Config{Machines: split, Shards: 2}); err == nil {
		t.Error("New must reject the split-databank round-robin config")
	}
	// The clean uniform-fleet path stays legal: every machine of every shard
	// hosts the shared databank, so a restricted job keeps a full shard (and
	// every shard can steal it).
	if _, err := partitionFleet(uniformFleet(5), 2); err != nil {
		t.Errorf("uniform fleet round-robin must stay legal: %v", err)
	}
	// A databank whose hosts all land in one shard is fine too, even when
	// other machines of that shard do not host it.
	oneShard := []model.Machine{
		{Name: "h0", InverseSpeed: rat(1, 1), Databanks: []string{"shared", "hot"}},
		{Name: "h1", InverseSpeed: rat(1, 1), Databanks: []string{"shared"}},
		{Name: "h2", InverseSpeed: rat(1, 1), Databanks: []string{"shared", "hot"}},
		{Name: "h3", InverseSpeed: rat(1, 1), Databanks: []string{"shared"}},
	}
	if _, err := partitionFleet(oneShard, 2); err != nil {
		t.Errorf("hot databank confined to shard 0 must stay legal: %v", err)
	}
}

// TestSubmitSkipsStalledShard is the regression test for routing new jobs
// onto poisoned shards: a shard whose loop latched an error used to keep
// winning least-backlog routing, accepting jobs that would queue forever.
func TestSubmitSkipsStalledShard(t *testing.T) {
	vc := NewVirtualClock()
	// Machine h0 (shard 0) is the sole host of "only0"; everything hosts
	// "shared".
	machines := []model.Machine{
		{Name: "h0", InverseSpeed: rat(1, 1), Databanks: []string{"shared", "only0"}},
		{Name: "h1", InverseSpeed: rat(1, 1), Databanks: []string{"shared"}},
	}
	srv, err := New(Config{Machines: machines, Shards: 2, Clock: vc, DisableSteal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	poisonResp, err := srv.Submit(&model.SubmitRequest{Size: "2", Databanks: []string{"shared"}})
	if err != nil {
		t.Fatal(err)
	}
	if poisonResp.ID%2 != 0 {
		t.Fatalf("first job routed to shard %d, want 0 (tie-break)", poisonResp.ID%2)
	}
	// Fault injection: revoke the job's eligibility so shard 0's loop latches
	// a rejected admit.
	sh := srv.active()[0]
	sh.mu.Lock()
	for i := range sh.eligible {
		delete(sh.eligible[i], poisonResp.ID/2)
	}
	sh.mu.Unlock()
	srv.Start()
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.LastError != "" })

	// Unrestricted job: shard 0 has the smaller backlog (2 vs whatever) but
	// is poisoned — the healthy shard 1 must take it, with no warning.
	resp, err := srv.Submit(&model.SubmitRequest{Size: "100", Databanks: []string{"shared"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID%2 != 1 {
		t.Errorf("unrestricted job routed to shard %d, want 1 (healthy beats stalled)", resp.ID%2)
	}
	if resp.Warning != "" {
		t.Errorf("healthy routing carries warning %q", resp.Warning)
	}
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 1 })

	// A job only shard 0 can host still lands there — with the shard's error
	// surfaced in the response.
	soleResp, err := srv.Submit(&model.SubmitRequest{Size: "1", Databanks: []string{"only0"}})
	if err != nil {
		t.Fatal(err)
	}
	if soleResp.ID%2 != 0 {
		t.Errorf("only0 job routed to shard %d, want 0 (sole host)", soleResp.ID%2)
	}
	if soleResp.Warning == "" || !strings.Contains(soleResp.Warning, "stalled shard 0") {
		t.Errorf("sole-host routing to a stalled shard must carry its error, got %q", soleResp.Warning)
	}
}

// TestFailedAdmitKeepsTailPending is the regression test for a failed admit
// silently discarding the rest of its batch: the unadmitted tail used to be
// detached from pending, leaving jobs invisible to the steal census and to
// the close() drain — "queued" forever with their sizes stuck in backlog.
// The successfully admitted prefix must still land in the arrival-batch
// statistics, or BatchedArrivals would fall short of the submission count
// forever.
func TestFailedAdmitKeepsTailPending(t *testing.T) {
	srv, err := New(Config{Machines: testFleet(), Clock: NewVirtualClock()})
	if err != nil {
		t.Fatal(err)
	}
	good, err := srv.Submit(&model.SubmitRequest{Size: "4", Databanks: []string{"swissprot"}})
	if err != nil {
		t.Fatal(err)
	}
	poisoned, err := srv.Submit(&model.SubmitRequest{Size: "2", Databanks: []string{"swissprot"}})
	if err != nil {
		t.Fatal(err)
	}
	tail, err := srv.Submit(&model.SubmitRequest{Size: "1", Databanks: []string{"swissprot"}})
	if err != nil {
		t.Fatal(err)
	}
	sh := srv.active()[0]
	sh.mu.Lock()
	for i := range sh.eligible {
		delete(sh.eligible[i], poisoned.ID)
	}
	sh.mu.Unlock()
	srv.Start()
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.LastError != "" })

	sh.mu.Lock()
	pendingLen := len(sh.pending)
	sh.mu.Unlock()
	if pendingLen != 2 {
		t.Errorf("pending after failed admit = %d records, want 2 (failed record and unadmitted tail)", pendingLen)
	}
	st := srv.Stats()
	if st.BatchedArrivals != 1 {
		t.Errorf("batchedArrivals = %d, want 1 (the admitted prefix must be counted despite the failure)", st.BatchedArrivals)
	}
	if st.JobsLive != 1 {
		t.Errorf("jobsLive = %d, want 1 (only the job admitted before the failure)", st.JobsLive)
	}
	srv.Close()
	for _, id := range []int{poisoned.ID, tail.ID} {
		jst, known := srv.jobStatus(id)
		if !known || jst.State != StateRejected {
			t.Errorf("job %d after Close = %+v, want known and %q", id, jst, StateRejected)
		}
	}
	if gst, _ := srv.jobStatus(good.ID); gst.State != StateScheduled {
		t.Errorf("admitted job after Close = %q, want still %q (close drains only the queue)", gst.State, StateScheduled)
	}
	// Backlog keeps only the live job's size; the drained tail gave back
	// 2 + 1.
	if got := srv.Stats().Shards[0].Backlog; got != "4" {
		t.Errorf("backlog after Close = %s, want 4 (rejected sizes subtracted, live job kept)", got)
	}
}

// TestCloseDrainsPendingToRejected is the regression test for Close
// stranding accepted-but-never-admitted jobs: they used to stay "queued"
// forever with their sizes still in the backlog. Close now drains them into
// the terminal "rejected" state and corrects the backlog.
func TestCloseDrainsPendingToRejected(t *testing.T) {
	srv, err := New(Config{Machines: testFleet(), Clock: NewVirtualClock()})
	if err != nil {
		t.Fatal(err)
	}
	// Never started: both submissions sit in pending when Close runs.
	first, err := srv.Submit(&model.SubmitRequest{Size: "4", Databanks: []string{"swissprot"}})
	if err != nil {
		t.Fatal(err)
	}
	second, err := srv.Submit(&model.SubmitRequest{Size: "3", Databanks: []string{"pdb"}})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()

	for _, id := range []int{first.ID, second.ID} {
		st, known := srv.jobStatus(id)
		if !known {
			t.Fatalf("job %d vanished after Close", id)
		}
		if st.State != StateRejected {
			t.Errorf("job %d state after Close = %q, want %q", id, st.State, StateRejected)
		}
	}
	st := srv.Stats()
	if st.JobsLive != 0 {
		t.Errorf("jobsLive after Close = %d, want 0", st.JobsLive)
	}
	for _, ss := range st.Shards {
		if ss.Backlog != "0" {
			t.Errorf("shard %d backlog after Close = %s, want 0 (stranded sizes subtracted)", ss.Shard, ss.Backlog)
		}
	}
}

// TestShardPartitionAndRouting: a two-island fleet yields two shards; jobs
// route by databank, IDs are shard-encoded, reads merge both shards, and a
// job needing databanks from both islands is rejected (no single machine
// hosts them).
func TestShardPartitionAndRouting(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: twoIslandFleet(), Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.ShardCount() != 2 {
		t.Fatalf("ShardCount = %d, want 2", srv.ShardCount())
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Start()

	idx := postJob(t, ts.URL, model.SubmitRequest{Size: "6", Databanks: []string{"x"}}).ID
	idy := postJob(t, ts.URL, model.SubmitRequest{Size: "3", Databanks: []string{"y"}}).ID
	if idx%2 != 0 {
		t.Errorf("x job got global ID %d, want even (shard 0)", idx)
	}
	if idy%2 != 1 {
		t.Errorf("y job got global ID %d, want odd (shard 1)", idy)
	}
	// No machine hosts both databanks: 422, not a mis-route.
	body := []byte(`{"size":"1","databanks":["x","y"]}`)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("cross-island job = %d, want 422", resp.StatusCode)
	}

	// Admission barrier before moving the clock: both loops must admit
	// their job at t=0 or the exact flows below would shift.
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.BatchedArrivals >= 2 })
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 2 })

	// Job status by global ID from either shard.
	var stx, sty model.JobStatus
	getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, idx), &stx)
	getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, idy), &sty)
	if stx.ID != idx || stx.State != StateDone {
		t.Errorf("x job status = %+v, want done with ID %d", stx, idx)
	}
	// Each island's rate is 1+2=3: size 6 → flow 2, size 3 → flow 1.
	if stx.Flow != "2" || sty.Flow != "1" {
		t.Errorf("flows = %s, %s, want 2 and 1", stx.Flow, sty.Flow)
	}

	// Merged schedule: global machine indices, island-respecting placement.
	var schedResp model.ScheduleResponse
	getJSON(t, ts.URL+"/v1/schedule", &schedResp)
	var sched schedule.Schedule
	if err := json.Unmarshal(schedResp.Schedule, &sched); err != nil {
		t.Fatal(err)
	}
	if len(sched.Pieces) == 0 {
		t.Fatal("merged schedule is empty")
	}
	for _, pc := range sched.Pieces {
		switch pc.Job {
		case idx:
			if pc.Machine > 1 {
				t.Errorf("x job ran on global machine %d, want 0 or 1", pc.Machine)
			}
		case idy:
			if pc.Machine < 2 {
				t.Errorf("y job ran on global machine %d, want 2 or 3", pc.Machine)
			}
		default:
			t.Errorf("merged schedule references unknown job %d", pc.Job)
		}
	}
	if schedResp.Makespan != "2" {
		t.Errorf("merged makespan = %s, want 2 (the slower island's completion)", schedResp.Makespan)
	}

	// Stats: fleet aggregates plus the per-shard breakdown.
	st := srv.Stats()
	if st.ShardCount != 2 || len(st.Shards) != 2 {
		t.Fatalf("shardCount=%d len(shards)=%d, want 2/2", st.ShardCount, len(st.Shards))
	}
	if st.Shards[0].JobsAccepted != 1 || st.Shards[1].JobsAccepted != 1 {
		t.Errorf("per-shard accepted = %d/%d, want 1/1",
			st.Shards[0].JobsAccepted, st.Shards[1].JobsAccepted)
	}
	if st.JobsAccepted != 2 || st.JobsCompleted != 2 {
		t.Errorf("aggregates accepted=%d completed=%d, want 2/2", st.JobsAccepted, st.JobsCompleted)
	}
	if got := st.Shards[0].Machines; len(got) != 2 || got[0] != "a0" || got[1] != "a1" {
		t.Errorf("shard 0 machines = %v, want [a0 a1]", got)
	}
	if st.MaxWeightedFlow != "2" {
		t.Errorf("merged maxWeightedFlow = %s, want 2", st.MaxWeightedFlow)
	}
}

// TestRoutingPicksLeastLoadedShard: with submissions queued before the loops
// start, backlog only grows, so the router's least-residual-work choice is
// fully deterministic.
func TestRoutingPicksLeastLoadedShard(t *testing.T) {
	srv, err := New(Config{Machines: uniformFleet(4), Shards: 2, Clock: NewVirtualClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	submit := func(size string) int {
		t.Helper()
		resp, err := srv.Submit(&model.SubmitRequest{Size: size, Databanks: []string{"shared"}})
		if err != nil {
			t.Fatal(err)
		}
		return resp.ID
	}
	// Ties go to shard 0; then the big job tilts the balance so the next
	// two small ones both land on shard 1 until it catches up.
	if id := submit("10"); id%2 != 0 {
		t.Errorf("first job → shard %d, want 0 (tie-break)", id%2)
	}
	if id := submit("4"); id%2 != 1 {
		t.Errorf("second job → shard %d, want 1 (backlog 0 < 10)", id%2)
	}
	if id := submit("4"); id%2 != 1 {
		t.Errorf("third job → shard %d, want 1 (backlog 4 < 10)", id%2)
	}
	if id := submit("4"); id%2 != 1 {
		t.Errorf("fourth job → shard %d, want 1 (backlog 8 < 10)", id%2)
	}
	if id := submit("4"); id%2 != 0 {
		t.Errorf("fifth job → shard %d, want 0 (backlog 10 < 12)", id%2)
	}
	st := srv.Stats()
	if st.Shards[0].Backlog != "14" || st.Shards[1].Backlog != "12" {
		t.Errorf("backlogs = %s/%s, want 14/12", st.Shards[0].Backlog, st.Shards[1].Backlog)
	}
}

// TestMakespanMonotoneUnderRetention is the regression test for the
// makespan-moves-backwards bug: GET /v1/schedule used to recompute the
// makespan from the compacted trace, so once retention dropped every piece
// the reported "whole execution" makespan collapsed to 0.
func TestMakespanMonotoneUnderRetention(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: testFleet(), Clock: vc, Retention: big.NewRat(10, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Start()

	// Size 4 shared by both machines at rate 3: completes at 4/3.
	postJob(t, ts.URL, model.SubmitRequest{Size: "4", Databanks: []string{"swissprot"}})
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 1 })
	var before model.ScheduleResponse
	getJSON(t, ts.URL+"/v1/schedule", &before)
	if before.Makespan != "4/3" {
		t.Fatalf("makespan before compaction = %s, want 4/3", before.Makespan)
	}

	// A long idle stretch, then a wake-up: the compaction horizon (t-10)
	// passes the whole first job, dropping all its pieces before the new
	// job has executed anything.
	vc.Advance(big.NewRat(100, 1))
	postJob(t, ts.URL, model.SubmitRequest{Size: "2", Databanks: []string{"swissprot"}})
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.CompactedJobs >= 1 })

	var during model.ScheduleResponse
	getJSON(t, ts.URL+"/v1/schedule", &during)
	var sched schedule.Schedule
	if err := json.Unmarshal(during.Schedule, &sched); err != nil {
		t.Fatal(err)
	}
	if len(sched.Pieces) != 0 {
		t.Fatalf("retained pieces = %d, want 0 (everything compacted)", len(sched.Pieces))
	}
	// The high-water mark must survive the empty trace.
	if during.Makespan != "4/3" {
		t.Errorf("makespan after compaction = %s, want 4/3 (must not move backwards)", during.Makespan)
	}

	// New execution pushes past the mark again: 100 + 2/3.
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 2 })
	var after model.ScheduleResponse
	getJSON(t, ts.URL+"/v1/schedule", &after)
	if after.Makespan != "302/3" {
		t.Errorf("final makespan = %s, want 302/3", after.Makespan)
	}
}

// TestQueuedUntilEngineAccepts is the regression test for the premature
// StateScheduled bug: the loop used to flip a record to "scheduled" before
// eng.Add could fail, so a poisoned admit left /v1/jobs/{id} claiming
// scheduling that never happened.
func TestQueuedUntilEngineAccepts(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: testFleet(), Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := srv.Submit(&model.SubmitRequest{Size: "4", Databanks: []string{"swissprot"}})
	if err != nil {
		t.Fatal(err)
	}
	id := resp.ID
	// Fault injection: revoke the job's eligibility before the loop starts,
	// so the engine rejects the admit ("cannot run on any machine").
	sh := srv.active()[0]
	sh.mu.Lock()
	for i := range sh.eligible {
		delete(sh.eligible[i], id)
	}
	sh.mu.Unlock()
	srv.Start()
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.LastError != "" })

	st, known, _ := sh.jobStatus(id, id)
	if !known {
		t.Fatal("job vanished")
	}
	if st.State != StateQueued {
		t.Errorf("state after rejected admit = %s, want %s", st.State, StateQueued)
	}
	stats := srv.Stats()
	if stats.JobsLive != 0 {
		t.Errorf("jobsLive = %d, want 0 (the engine never accepted the job)", stats.JobsLive)
	}
	if !stats.Stalled {
		t.Error("a rejected admit must flag the shard unhealthy")
	}
}

// TestCostGuardsCompactedRecords is the regression test for the nil-record
// panic vector: a compacted job ID reaching the cost function used to
// dereference a nil record and kill the loop goroutine. The eligibility-map
// invariant normally prevents it; the guard makes the invariant explicit so
// a breach answers ok=false instead of panicking the daemon.
func TestCostGuardsCompactedRecords(t *testing.T) {
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: testFleet(), Clock: vc, Retention: big.NewRat(10, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Start()
	resp, err := srv.Submit(&model.SubmitRequest{Size: "4", Databanks: []string{"swissprot"}})
	if err != nil {
		t.Fatal(err)
	}
	id := resp.ID
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 1 })
	vc.Advance(big.NewRat(100, 1))
	if _, err := srv.Submit(&model.SubmitRequest{Size: "2", Databanks: []string{"swissprot"}}); err != nil {
		t.Fatal(err)
	}
	waitStats(t, srv, func(st model.StatsResponse) bool { return st.CompactedJobs >= 1 })

	sh := srv.active()[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.records[id] != nil {
		t.Fatal("record not compacted; test setup broken")
	}
	// Simulate the invariant breach compaction normally prevents: a stale
	// eligibility entry pointing at the forgotten record.
	sh.eligible[0][id] = true
	if c, ok := sh.cost(0, id); ok || c != nil {
		t.Errorf("cost(compacted) = %v, %v, want nil, false", c, ok)
	}
	delete(sh.eligible[0], id)
	// Out-of-range IDs and machines answer false, never panic.
	if _, ok := sh.cost(0, len(sh.records)+7); ok {
		t.Error("cost(out-of-range job) = true, want false")
	}
	if _, ok := sh.cost(len(sh.machines), 0); ok {
		t.Error("cost(out-of-range machine) = true, want false")
	}
}

// validateShard rebuilds the shard's offline instance from its records and
// checks its executed trace against the exact validator. Per-shard local IDs
// are dense and release-ordered, so they coincide with instance indices.
func validateShard(t *testing.T, sh *shard) {
	t.Helper()
	sh.mu.Lock()
	jobs := make([]model.Job, len(sh.records))
	for i, rec := range sh.records {
		if rec == nil {
			t.Fatalf("shard %d: record %d compacted; validateShard needs full history", sh.idx, i)
		}
		jobs[i] = model.Job{
			Name:      rec.name,
			Release:   new(big.Rat).Set(rec.release),
			Weight:    new(big.Rat).Set(rec.weight),
			Size:      new(big.Rat).Set(rec.size),
			Databanks: rec.databanks,
		}
	}
	pieces := append([]schedule.Piece(nil), sh.eng.Schedule().Pieces...)
	machines := sh.machines
	sh.mu.Unlock()
	if len(jobs) == 0 {
		return
	}
	inst, err := model.NewInstance(jobs, machines)
	if err != nil {
		t.Fatalf("shard %d: %v", sh.idx, err)
	}
	sched := &schedule.Schedule{Pieces: pieces}
	if err := sched.Validate(inst, schedule.Divisible, nil); err != nil {
		t.Fatalf("shard %d: executed trace invalid: %v", sh.idx, err)
	}
}

// validateServer rebuilds the whole fleet's offline instance — every job
// counted once at its birth shard, machines in global order — and validates
// the *merged* executed trace against the exact validator. This is the
// correctness check for work stealing: a migrated job's pre-migration pieces
// (donor trace) and post-migration pieces (thief trace) must together
// process exactly fraction 1 under the original release date.
func validateServer(t *testing.T, srv *Server) {
	t.Helper()
	// The merge spans every shard ever created: after a reshard, retired and
	// active shards cover the same fleet indices, so the fleet is sized by
	// the largest index and later (newer) shards overwrite earlier ones —
	// pieces executed before a replication event stay valid against the
	// updated machine, whose databank set only ever grew in these tests.
	fleetSize := 0
	for _, sh := range srv.allShards() {
		for _, gi := range sh.machineIdx {
			if gi+1 > fleetSize {
				fleetSize = gi + 1
			}
		}
	}
	machines := make([]model.Machine, fleetSize)
	type gidJob struct {
		gid int
		job model.Job
	}
	var jobs []gidJob
	var pieces []schedule.Piece
	for _, sh := range srv.allShards() {
		sh.mu.Lock()
		for i := range sh.machines {
			machines[sh.machineIdx[i]] = sh.machines[i]
		}
		for _, rec := range sh.records {
			if rec == nil {
				sh.mu.Unlock()
				t.Fatalf("shard %d: compacted record; validateServer needs full history", sh.idx)
			}
			if rec.stolen {
				continue // counted at its birth shard
			}
			jobs = append(jobs, gidJob{gid: rec.gid, job: model.Job{
				Name:      rec.name,
				Release:   new(big.Rat).Set(rec.release),
				Weight:    new(big.Rat).Set(rec.weight),
				Size:      new(big.Rat).Set(rec.size),
				Databanks: rec.databanks,
			}})
		}
		for k := range sh.eng.Schedule().Pieces {
			pc := &sh.eng.Schedule().Pieces[k]
			pieces = append(pieces, schedule.Piece{
				Machine:  sh.machineIdx[pc.Machine],
				Job:      sh.records[pc.Job].gid,
				Start:    new(big.Rat).Set(pc.Start),
				End:      new(big.Rat).Set(pc.End),
				Fraction: new(big.Rat).Set(pc.Fraction),
			})
		}
		sh.mu.Unlock()
	}
	if len(jobs) == 0 {
		return
	}
	// NewInstance stably re-sorts by release; pre-sorting with the same
	// comparator keeps positions aligned with the gid → index map.
	sort.SliceStable(jobs, func(a, b int) bool {
		return jobs[a].job.Release.Cmp(jobs[b].job.Release) < 0
	})
	index := make(map[int]int, len(jobs))
	plain := make([]model.Job, len(jobs))
	for i := range jobs {
		index[jobs[i].gid] = i
		plain[i] = jobs[i].job
	}
	inst, err := model.NewInstance(plain, machines)
	if err != nil {
		t.Fatal(err)
	}
	for k := range pieces {
		idx, ok := index[pieces[k].Job]
		if !ok {
			t.Fatalf("merged trace references unknown global job %d", pieces[k].Job)
		}
		pieces[k].Job = idx
	}
	sched := &schedule.Schedule{Pieces: pieces}
	if err := sched.Validate(inst, schedule.Divisible, nil); err != nil {
		t.Fatalf("merged executed trace invalid: %v", err)
	}
}

// TestMultiShardConcurrentSubmissionUnderRace hammers a 4-shard server —
// tens of concurrent HTTP clients submitting across shards while a driver
// advances the virtual clock — and verifies every accepted job completes,
// global IDs stay unique, and each shard's executed trace passes the exact
// validator. Under -race this is the data-race check on the sharded
// boundary: four loop goroutines, the router, and the merged readers.
func TestMultiShardConcurrentSubmissionUnderRace(t *testing.T) {
	const clients, perClient = 24, 4
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: uniformFleet(4), Shards: 4, Policy: "mct", Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Start()

	stop := make(chan struct{})
	var driver sync.WaitGroup
	driver.Add(1)
	go func() {
		defer driver.Done()
		for {
			select {
			case <-stop:
				return
			default:
				vc.AdvanceToNextTimer()
			}
		}
	}()

	ids := make([][]int, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				size := fmt.Sprintf("%d", 1+(c+k)%7)
				resp := postJob(t, ts.URL, model.SubmitRequest{Size: size, Databanks: []string{"shared"}})
				ids[c] = append(ids[c], resp.ID)
			}
		}(c)
	}
	wg.Wait()
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == clients*perClient })
	close(stop)
	driver.Wait()

	stats := srv.Stats()
	if stats.JobsCompleted != clients*perClient || stats.Stalled {
		t.Fatalf("completed %d/%d, stalled=%v, lastError=%q",
			stats.JobsCompleted, clients*perClient, stats.Stalled, stats.LastError)
	}
	seen := make(map[int]bool)
	for _, batch := range ids {
		for _, id := range batch {
			if seen[id] {
				t.Fatalf("global ID %d assigned twice", id)
			}
			seen[id] = true
		}
	}
	perShard := 0
	for _, ss := range stats.Shards {
		// With stealing on, a shard may get all its work by stealing rather
		// than routing; starvation means neither path reached it.
		if ss.JobsAccepted == 0 && ss.StolenJobs == 0 {
			t.Errorf("shard %d got no jobs; neither routing nor stealing reached it", ss.Shard)
		}
		perShard += ss.JobsAccepted
	}
	if perShard != clients*perClient {
		t.Errorf("per-shard accepted sums to %d, want %d", perShard, clients*perClient)
	}
	if stats.StolenJobs != stats.Migrations {
		t.Errorf("stolen %d != migrated %d: a migration has exactly one donor and one thief",
			stats.StolenJobs, stats.Migrations)
	}
	validateServer(t, srv)
}

// TestMultiShardExactSolvesUnderRace runs the exact online-MWF policy on two
// shards with concurrent submissions: two warm-started solver chains living
// side by side must not share state.
func TestMultiShardExactSolvesUnderRace(t *testing.T) {
	const jobs = 20
	vc := NewVirtualClock()
	srv, err := New(Config{Machines: uniformFleet(4), Shards: 2, Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for c := 0; c < 5; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < jobs/5; k++ {
				postJob(t, ts.URL, model.SubmitRequest{Size: fmt.Sprintf("%d", 2+(c+k)%5)})
			}
		}(c)
	}
	wg.Wait()
	srv.Start()
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == jobs })

	stats := srv.Stats()
	if stats.Stalled || stats.LastError != "" {
		t.Fatalf("unhealthy: stalled=%v err=%q", stats.Stalled, stats.LastError)
	}
	if stats.LPSolves < 2 {
		t.Errorf("lpSolves = %d, want >= 2 (one per shard at least)", stats.LPSolves)
	}
	for _, ss := range stats.Shards {
		if ss.LPSolves == 0 {
			t.Errorf("shard %d never solved; routing starved it", ss.Shard)
		}
	}
	validateServer(t, srv)
}
