package server

import (
	"net/http/httptest"
	"testing"

	"divflow/internal/model"
	"divflow/internal/workload"
)

// TestSolverCountersOverHTTP: GET /v1/stats must break the exact LP solves
// down by hybrid-engine path (float-verified vs crossover vs exact
// fallback) and report warm-start basis reuse. The every-event online-mwf
// policy re-solves perturbed residual LPs constantly, so warm starts must
// land some of the time.
func TestSolverCountersOverHTTP(t *testing.T) {
	cfg := workload.Default()
	cfg.Jobs = 10
	cfg.Machines = 2
	cfg.Databanks = 2
	cfg.Seed = 21
	inst := workload.MustGenerate(cfg)

	vc := NewVirtualClock()
	srv, err := New(Config{Machines: inst.Machines, Policy: "online-mwf", Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Two waves so re-solves see both arrivals and completion-perturbed
	// residual workloads.
	reqs := submitRequests(inst)
	for _, req := range reqs[:5] {
		postJob(t, ts.URL, req)
	}
	srv.Start()
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == 5 })
	for _, req := range reqs[5:] {
		postJob(t, ts.URL, req)
	}
	drive(t, vc, func() bool { return srv.Stats().JobsCompleted == len(reqs) })

	var st model.StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Stalled || st.LastError != "" {
		t.Fatalf("service unhealthy: stalled=%v err=%q", st.Stalled, st.LastError)
	}
	tally := st.Solver
	if tally.Total() == 0 {
		t.Fatal("solver tally empty: hybrid accounting not wired to /v1/stats")
	}
	// Every policy-level solve runs >= 1 range LP, so the tally must cover
	// at least the reported LP solves, split across the recorded paths.
	if tally.Total() < st.LPSolves {
		t.Errorf("solver tally total %d < lpSolves %d", tally.Total(), st.LPSolves)
	}
	if got := tally.FloatVerified + tally.Crossovers + tally.Fallbacks + tally.WarmHits; got != tally.Total() {
		t.Errorf("tally inconsistent: %+v", tally)
	}
	if tally.FloatVerified == 0 {
		t.Errorf("no float-verified solves: the hybrid fast path never fired (%+v)", tally)
	}
	if tally.WarmHits == 0 {
		t.Errorf("no warm-start hits across %d solves of perturbed residual LPs (%+v)", st.LPSolves, tally)
	}
	validateService(t, ts.URL, inst.Machines, len(reqs))
}
