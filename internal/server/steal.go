package server

import (
	"fmt"
	"math/big"
	"sort"

	"divflow/internal/obs"
	"divflow/internal/shardlink"
)

// Cross-shard work stealing. PR 3's router pins a job to the shard it was
// routed to, so once load shifts an idle shard cannot help an overloaded
// one — exactly the flexibility the divisible-load model exists to exploit.
// The steal protocol closes that gap: an idle shard asks the server for
// work, and the server migrates jobs (queued or live, with their exact
// remaining fractions) from the largest-backlog shard whose databanks the
// thief hosts. Migrated jobs keep their global ID, flow origin, and every
// piece of work already executed; the forwarding table makes the move
// invisible on the wire.

// stealItem is one candidate job for migration out of a donor shard.
type stealItem struct {
	rec  *jobRecord
	work *big.Rat // size · remaining: the exact work that would move
	live bool     // live in the donor engine (vs still pending)
}

// stealFor migrates work onto an idle thief shard, trying donors in order
// of decreasing backlog. It reports whether any job moved. Donors come from
// the *active* topology: retired shards have nothing left to give, and a
// retired thief is rejected inside the locked critical section.
func (s *Server) stealFor(thief *shard) bool {
	type cand struct {
		sh   *shard
		work *big.Rat
	}
	var cands []cand
	for _, sh := range s.active() {
		if sh == thief {
			continue
		}
		// The routing key crosses the shardlink boundary: for an in-process
		// shard this is exactly residualWork (same exact value, no transport
		// on the path), for a worker-hosted shard it is the only way to see
		// the backlog at all.
		ri, err := sh.link.RouteInfo(shardlink.RouteInfoArgs{})
		if err != nil {
			continue
		}
		if ri.Backlog.Sign() > 0 {
			cands = append(cands, cand{sh, copyRat(ri.Backlog)})
		}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		return cands[a].work.Cmp(cands[b].work) > 0
	})
	for _, c := range cands {
		if s.stealFrom(thief, c.sh) {
			return true
		}
	}
	return false
}

// stealFrom moves up to half of the donor's jobs — those the thief can host,
// largest remaining work first — onto the thief. When both shards sit behind
// the in-process transport the migration runs as one dual-mutex critical
// section (stealInProc, today's behavior bit-for-bit); any other transport
// pairing runs the two-phase reserve→commit message exchange instead, which
// never holds two shard locks at once.
func (s *Server) stealFrom(thief, donor *shard) bool {
	if thief.link.Transport() == shardlink.TransportInproc &&
		donor.link.Transport() == shardlink.TransportInproc {
		return s.stealInProc(thief, donor)
	}
	return s.stealMessaged(thief, donor)
}

// stealInProc is the in-process migration: the whole exchange runs under
// both shards' mus, locked in index order (the global acquisition order, so
// concurrent steals in opposite directions cannot deadlock): extraction,
// insertion, the forwarding-table update, and the backlog transfer are one
// atomic step as far as every reader is concerned.
//
//divflow:locks ascending=shard
func (s *Server) stealInProc(thief, donor *shard) bool {
	// Timed end to end — donor catch-up included, since that catch-up (and
	// any exact re-solve it triggers) is the real cost of a steal.
	start := s.tel.now()
	// Catch the donor up to the present first, under its mu alone: its
	// engine may be asleep at its last event with an allocation that has
	// been (notionally) executing since — extracting remaining fractions at
	// that stale time would retroactively discard all of that work. Doing
	// it here also keeps any event-driven re-solve out of the two-shard
	// critical section.
	donor.mu.Lock()
	if !donor.closed && donor.lastErr == nil {
		donor.catchUp()
	}
	donor.mu.Unlock()

	first, second := thief, donor
	if donor.idx < thief.idx {
		first, second = donor, thief
	}
	first.mu.Lock()
	second.mu.Lock()
	moved := s.stealLocked(thief, donor)
	// The thief's mu is released first (release order is free; only the
	// acquisition order matters): the donor's re-plan below may be a whole
	// exact LP solve, and the thief — whose loop wants to admit the jobs it
	// just stole — must not wait behind it.
	thief.mu.Unlock()
	// Re-plan the donor while still under its mu: the extraction invalidated
	// its plan cache (Engine.Remove), and without a fresh decision the
	// machines that ran the stolen jobs would idle until the donor's next
	// natural event.
	if moved != nil && moved.removedLive && donor.lastErr == nil {
		donor.decide()
	}
	donor.mu.Unlock()
	if moved == nil {
		return false
	}
	if !start.IsZero() {
		thief.obs.steal.Observe(thief.obs.sinceSeconds(start))
	}
	// The donor's next event changed (stolen completions vanished): wake its
	// loop so it re-arms its timer instead of sleeping toward a stale one.
	donor.poke()
	return true
}

// stealOutcome reports what stealLocked moved.
type stealOutcome struct {
	removedLive bool
	moved       int
}

// stealLocked is the critical section of a migration. Callers hold both
// shards' mus.
//
//divflow:locks requires=shard ascending=backlog
func (s *Server) stealLocked(thief, donor *shard) *stealOutcome {
	// The thief must still be an idle, healthy, open, *active* shard: a
	// submission may have raced in while the locks were acquired, and
	// stealing onto a shard that already has work (or can never schedule it)
	// helps nobody. A closed donor is off limits too — during Server.Close a
	// still-running shard must not extract live jobs from an already-drained
	// one just to have its own close() mark them rejected — and so is either
	// side of a racing reshard: a retired thief's loop is about to stop, and
	// a retired donor's jobs are already being migrated by the reshard
	// itself.
	if thief.closed || donor.closed || thief.retired || donor.retired ||
		thief.lastErr != nil || thief.eng.Live() > 0 || len(thief.pending) > 0 {
		return nil
	}
	items := donor.stealCensus(thief.hosts)
	if len(items) == 0 {
		return nil
	}

	out := &stealOutcome{}
	movedSize := new(big.Rat)
	movedTenants := make(map[string]*big.Rat)
	type movedJob struct {
		fromLocal, toLocal, gid int
		remaining               *big.Rat
	}
	var movedJobs []movedJob
	for _, it := range items {
		rec := it.rec
		remaining := rec.remaining
		if it.live {
			rj, err := donor.eng.Remove(rec.id)
			if err != nil {
				// Unreachable while the live census is taken under the same
				// lock; skip rather than poison the migration.
				continue
			}
			remaining = rj.Remaining
			out.removedLive = true
		} else {
			pending := donor.pending[:0]
			for _, p := range donor.pending {
				if p != rec {
					pending = append(pending, p)
				}
			}
			donor.pending = pending
		}
		fromLocal := rec.id
		donor.orphanRecord(rec)
		donor.migratedOut++
		nrec := thief.adoptRecord(rec, remaining)
		thief.stolenIn++
		s.fwdMu.Lock()
		s.forward[rec.gid] = fwdLoc{sh: thief, local: nrec.id}
		s.fwdMu.Unlock()
		out.moved++
		movedJobs = append(movedJobs, movedJob{fromLocal: fromLocal, toLocal: nrec.id, gid: rec.gid, remaining: copyRat(remaining)})
		thief.obs.event(obs.EventMigrate, rec.gid, nil, fmt.Sprintf("stolen from shard %d", donor.idx))
		movedSize.Add(movedSize, rec.size)
		if rec.tenant != "" {
			if movedTenants[rec.tenant] == nil {
				movedTenants[rec.tenant] = new(big.Rat)
			}
			movedTenants[rec.tenant].Add(movedTenants[rec.tenant], rec.size)
		}
	}
	if movedSize.Sign() == 0 {
		return nil
	}
	// The whole batch is logged under both mus, at the donor's exact engine
	// time of the extraction; the last record carries the decide flag when the
	// caller will re-plan the donor, so replay reproduces that single decision.
	for i, mj := range movedJobs {
		s.dur.appendMigrate(donor, thief, mj.fromLocal, mj.toLocal, mj.gid, mj.remaining,
			donor.eng.Now(), "steal", i == len(movedJobs)-1 && out.removedLive)
	}
	// The backlog transfer is atomic with respect to the router: both
	// backlogMus are held (index order again) while the sizes move, so the
	// fleet-wide residual work is conserved at every instant.
	a, b := thief, donor
	if donor.idx < thief.idx {
		a, b = donor, thief
	}
	a.backlogMu.Lock()
	b.backlogMu.Lock()
	donor.backlog.Sub(donor.backlog, movedSize)
	thief.backlog.Add(thief.backlog, movedSize)
	for t, v := range movedTenants {
		donor.tenantBacklogSub(t, v)
		thief.tenantBacklogAdd(t, v)
	}
	b.backlogMu.Unlock()
	a.backlogMu.Unlock()
	// Journaled under both mus: the thief's generation read is stable and
	// the event lands before any reader can see the post-steal topology.
	thief.obs.event(obs.EventSteal, -1, donor.eng.Now(),
		fmt.Sprintf("%d jobs from shard %d", out.moved, donor.idx))
	return out
}

// stealCensus takes the census of the shard's stealable jobs — everything
// pending or live that the host predicate accepts — and selects the
// migration set: largest remaining work first (ties to the oldest job), and
// never more than half the shard's jobs, so the donor keeps at least as much
// as it gives away. Both migration paths (the locked in-process steal and
// the two-phase message exchange) select through this one helper, so a steal
// moves exactly the same jobs no matter which transport carries it. Callers
// hold sh.mu.
//
//divflow:locks requires=shard
func (sh *shard) stealCensus(hosts func([]string) bool) []stealItem {
	// The census counts everything pending plus everything live — including
	// jobs the thief cannot host, which still anchor the half-rule below.
	total := len(sh.pending) + sh.eng.Live()
	if total < 2 {
		// A donor running its only job gains nothing from losing it; moving
		// it would just relocate the same serial work (and invite the donor
		// to steal it straight back).
		return nil
	}
	var items []stealItem
	for _, rec := range sh.pending {
		if !hosts(rec.databanks) {
			continue
		}
		work := new(big.Rat).Set(rec.size)
		if rec.remaining != nil {
			work.Mul(work, rec.remaining)
		}
		items = append(items, stealItem{rec: rec, work: work})
	}
	for _, id := range sh.eng.LiveIDs() {
		rec := sh.records[id]
		if !hosts(rec.databanks) {
			continue
		}
		work := new(big.Rat).Mul(rec.size, sh.eng.Remaining(id))
		items = append(items, stealItem{rec: rec, work: work, live: true})
	}
	if len(items) == 0 {
		return nil
	}
	sort.SliceStable(items, func(a, b int) bool {
		if c := items[a].work.Cmp(items[b].work); c != 0 {
			return c > 0
		}
		return items[a].rec.id < items[b].rec.id
	})
	k := total / 2
	if k > len(items) {
		k = len(items)
	}
	return items[:k]
}

// stealMessaged is the transport-agnostic migration: a two-phase
// reserve→commit exchange of shardlink messages that never holds two shard
// mutexes at once, so it works identically whether the donor is a goroutine
// away or a process away. The donor reserves the extracted jobs (out of its
// engine, still readable at their pre-move state — no not-found window on
// the wire); the thief adopts them or, if it went busy/retired while the
// messages were in flight, the donor takes them back; the forwarding table
// is updated before the donor's records flip to migrated, so a read chasing
// a moved gid always lands somewhere that knows it.
//
// The exchange runs under a reshardMu TryLock: retired/closed only flip
// under reshardMu, so holding it pins both shards' dispositions across the
// multi-message window (the dual-mutex path gets the same stability from
// its locks alone). TryLock, not Lock — a shard loop must never block
// behind a reshard, and skipping one steal attempt is free.
func (s *Server) stealMessaged(thief, donor *shard) bool {
	if !s.reshardMu.TryLock() {
		return false
	}
	defer s.reshardMu.Unlock()
	// Timed end to end, like the in-process path: the donor-side catch-up
	// and any re-solve it triggers are the real cost of a steal.
	start := s.tel.now()
	ex, err := donor.link.ExtractJobs(shardlink.ExtractArgs{ThiefMachines: thief.machines})
	if err != nil || len(ex.Jobs) == 0 {
		return false
	}
	fromLocals := make([]int, len(ex.Jobs))
	for i := range ex.Jobs {
		fromLocals[i] = ex.Jobs[i].FromLocal
	}
	ad, aerr := thief.link.AdmitMigrated(shardlink.AdmitArgs{Jobs: ex.Jobs, Reason: migrateSteal})
	if aerr != nil || !ad.Accepted || len(ad.Locals) != len(ex.Jobs) {
		// Give-back: the donor re-queues the reserved jobs with their exact
		// remaining fractions; no work was lost or duplicated.
		_ = donor.link.AbortExtract(shardlink.AbortArgs{Locals: fromLocals})
		return false
	}
	// Forwarding entries land before the donor commits: between the admit
	// and the commit the job is readable on the donor (pre-move state) and
	// resolvable to the thief, never on neither.
	s.fwdMu.Lock()
	for i := range ex.Jobs {
		s.forward[ex.Jobs[i].GID] = fwdLoc{sh: thief, local: ad.Locals[i]}
	}
	s.fwdMu.Unlock()
	if err := donor.link.CommitExtract(shardlink.CommitArgs{Locals: fromLocals}); err != nil {
		// The transport died between admit and commit: the thief owns the
		// jobs (the forwarding table already says so); the donor keeps
		// reserved records it will re-orphan on its next extraction attempt.
		// Nothing to unwind that would not lose work.
		s.tel.event(obs.EventShardStall, -1, -1,
			fmt.Sprintf("steal commit to shard %d failed: %v", donor.idx, err))
	}
	if !start.IsZero() {
		thief.obs.steal.Observe(thief.obs.sinceSeconds(start))
	}
	// Both loops re-arm: the donor's next event changed (stolen completions
	// vanished), and the thief has fresh pending work to admit.
	_ = donor.link.Poke(shardlink.PokeArgs{})
	_ = thief.link.Poke(shardlink.PokeArgs{})
	return true
}
