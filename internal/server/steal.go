package server

import (
	"fmt"
	"math/big"
	"sort"

	"divflow/internal/obs"
)

// Cross-shard work stealing. PR 3's router pins a job to the shard it was
// routed to, so once load shifts an idle shard cannot help an overloaded
// one — exactly the flexibility the divisible-load model exists to exploit.
// The steal protocol closes that gap: an idle shard asks the server for
// work, and the server migrates jobs (queued or live, with their exact
// remaining fractions) from the largest-backlog shard whose databanks the
// thief hosts. Migrated jobs keep their global ID, flow origin, and every
// piece of work already executed; the forwarding table makes the move
// invisible on the wire.

// stealItem is one candidate job for migration out of a donor shard.
type stealItem struct {
	rec  *jobRecord
	work *big.Rat // size · remaining: the exact work that would move
	live bool     // live in the donor engine (vs still pending)
}

// stealFor migrates work onto an idle thief shard, trying donors in order
// of decreasing backlog. It reports whether any job moved. Donors come from
// the *active* topology: retired shards have nothing left to give, and a
// retired thief is rejected inside the locked critical section.
func (s *Server) stealFor(thief *shard) bool {
	type cand struct {
		sh   *shard
		work *big.Rat
	}
	var cands []cand
	for _, sh := range s.active() {
		if sh == thief {
			continue
		}
		if work := sh.residualWork(); work.Sign() > 0 {
			cands = append(cands, cand{sh, work})
		}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		return cands[a].work.Cmp(cands[b].work) > 0
	})
	for _, c := range cands {
		if s.stealFrom(thief, c.sh) {
			return true
		}
	}
	return false
}

// stealFrom moves up to half of the donor's jobs — those the thief can host,
// largest remaining work first — onto the thief. The whole migration runs
// under both shards' mus, locked in index order (the global acquisition
// order, so concurrent steals in opposite directions cannot deadlock):
// extraction, insertion, the forwarding-table update, and the backlog
// transfer are one atomic step as far as every reader is concerned.
//
//divflow:locks ascending=shard
func (s *Server) stealFrom(thief, donor *shard) bool {
	// Timed end to end — donor catch-up included, since that catch-up (and
	// any exact re-solve it triggers) is the real cost of a steal.
	start := s.tel.now()
	// Catch the donor up to the present first, under its mu alone: its
	// engine may be asleep at its last event with an allocation that has
	// been (notionally) executing since — extracting remaining fractions at
	// that stale time would retroactively discard all of that work. Doing
	// it here also keeps any event-driven re-solve out of the two-shard
	// critical section.
	donor.mu.Lock()
	if !donor.closed && donor.lastErr == nil {
		donor.catchUp()
	}
	donor.mu.Unlock()

	first, second := thief, donor
	if donor.idx < thief.idx {
		first, second = donor, thief
	}
	first.mu.Lock()
	second.mu.Lock()
	moved := s.stealLocked(thief, donor)
	// The thief's mu is released first (release order is free; only the
	// acquisition order matters): the donor's re-plan below may be a whole
	// exact LP solve, and the thief — whose loop wants to admit the jobs it
	// just stole — must not wait behind it.
	thief.mu.Unlock()
	// Re-plan the donor while still under its mu: the extraction invalidated
	// its plan cache (Engine.Remove), and without a fresh decision the
	// machines that ran the stolen jobs would idle until the donor's next
	// natural event.
	if moved != nil && moved.removedLive && donor.lastErr == nil {
		donor.decide()
	}
	donor.mu.Unlock()
	if moved == nil {
		return false
	}
	if !start.IsZero() {
		thief.obs.steal.Observe(thief.obs.sinceSeconds(start))
	}
	// The donor's next event changed (stolen completions vanished): wake its
	// loop so it re-arms its timer instead of sleeping toward a stale one.
	donor.poke()
	return true
}

// stealOutcome reports what stealLocked moved.
type stealOutcome struct {
	removedLive bool
	moved       int
}

// stealLocked is the critical section of a migration. Callers hold both
// shards' mus.
//
//divflow:locks requires=shard ascending=backlog
func (s *Server) stealLocked(thief, donor *shard) *stealOutcome {
	// The thief must still be an idle, healthy, open, *active* shard: a
	// submission may have raced in while the locks were acquired, and
	// stealing onto a shard that already has work (or can never schedule it)
	// helps nobody. A closed donor is off limits too — during Server.Close a
	// still-running shard must not extract live jobs from an already-drained
	// one just to have its own close() mark them rejected — and so is either
	// side of a racing reshard: a retired thief's loop is about to stop, and
	// a retired donor's jobs are already being migrated by the reshard
	// itself.
	if thief.closed || donor.closed || thief.retired || donor.retired ||
		thief.lastErr != nil || thief.eng.Live() > 0 || len(thief.pending) > 0 {
		return nil
	}
	// Census of the donor's jobs: everything pending plus everything live.
	total := len(donor.pending) + donor.eng.Live()
	if total < 2 {
		// A donor running its only job gains nothing from losing it; moving
		// it would just relocate the same serial work (and invite the donor
		// to steal it straight back).
		return nil
	}
	var items []stealItem
	for _, rec := range donor.pending {
		if !thief.hosts(rec.databanks) {
			continue
		}
		work := new(big.Rat).Set(rec.size)
		if rec.remaining != nil {
			work.Mul(work, rec.remaining)
		}
		items = append(items, stealItem{rec: rec, work: work})
	}
	for _, id := range donor.eng.LiveIDs() {
		rec := donor.records[id]
		if !thief.hosts(rec.databanks) {
			continue
		}
		work := new(big.Rat).Mul(rec.size, donor.eng.Remaining(id))
		items = append(items, stealItem{rec: rec, work: work, live: true})
	}
	if len(items) == 0 {
		return nil
	}
	// Largest remaining work first (ties to the oldest job), and never more
	// than half the donor's jobs: the donor keeps at least as much as it
	// gives away.
	sort.SliceStable(items, func(a, b int) bool {
		if c := items[a].work.Cmp(items[b].work); c != 0 {
			return c > 0
		}
		return items[a].rec.id < items[b].rec.id
	})
	k := total / 2
	if k > len(items) {
		k = len(items)
	}
	if k == 0 {
		return nil
	}

	out := &stealOutcome{}
	movedSize := new(big.Rat)
	type movedJob struct {
		fromLocal, toLocal, gid int
		remaining               *big.Rat
	}
	var movedJobs []movedJob
	for _, it := range items[:k] {
		rec := it.rec
		remaining := rec.remaining
		if it.live {
			rj, err := donor.eng.Remove(rec.id)
			if err != nil {
				// Unreachable while the live census is taken under the same
				// lock; skip rather than poison the migration.
				continue
			}
			remaining = rj.Remaining
			out.removedLive = true
		} else {
			pending := donor.pending[:0]
			for _, p := range donor.pending {
				if p != rec {
					pending = append(pending, p)
				}
			}
			donor.pending = pending
		}
		fromLocal := rec.id
		donor.orphanRecord(rec)
		donor.migratedOut++
		nrec := thief.adoptRecord(rec, remaining)
		thief.stolenIn++
		s.fwdMu.Lock()
		s.forward[rec.gid] = fwdLoc{sh: thief, local: nrec.id}
		s.fwdMu.Unlock()
		out.moved++
		movedJobs = append(movedJobs, movedJob{fromLocal: fromLocal, toLocal: nrec.id, gid: rec.gid, remaining: copyRat(remaining)})
		thief.obs.event(obs.EventMigrate, rec.gid, nil, fmt.Sprintf("stolen from shard %d", donor.idx))
		movedSize.Add(movedSize, rec.size)
	}
	if movedSize.Sign() == 0 {
		return nil
	}
	// The whole batch is logged under both mus, at the donor's exact engine
	// time of the extraction; the last record carries the decide flag when the
	// caller will re-plan the donor, so replay reproduces that single decision.
	for i, mj := range movedJobs {
		s.dur.appendMigrate(donor, thief, mj.fromLocal, mj.toLocal, mj.gid, mj.remaining,
			donor.eng.Now(), "steal", i == len(movedJobs)-1 && out.removedLive)
	}
	// The backlog transfer is atomic with respect to the router: both
	// backlogMus are held (index order again) while the sizes move, so the
	// fleet-wide residual work is conserved at every instant.
	a, b := thief, donor
	if donor.idx < thief.idx {
		a, b = donor, thief
	}
	a.backlogMu.Lock()
	b.backlogMu.Lock()
	donor.backlog.Sub(donor.backlog, movedSize)
	thief.backlog.Add(thief.backlog, movedSize)
	b.backlogMu.Unlock()
	a.backlogMu.Unlock()
	// Journaled under both mus: the thief's generation read is stable and
	// the event lands before any reader can see the post-steal topology.
	thief.obs.event(obs.EventSteal, -1, donor.eng.Now(),
		fmt.Sprintf("%d jobs from shard %d", out.moved, donor.idx))
	return out
}
